// Package repro's root benchmarks regenerate each of the paper's tables
// and figures at reduced scale (one bench per experiment; see
// EXPERIMENTS.md and cmd/sbsweep for full-scale runs), plus micro
// benchmarks of the simulator core.
package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/bfc"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/snapshot"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/validate"
)

// benchParams is the reduced sweep configuration used by the figure
// benchmarks.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Topologies = 2
	p.WarmupCycles = 200
	p.MeasureCycles = 1200
	return p
}

func BenchmarkFig2DeadlockProne(b *testing.B) {
	p := benchParams()
	p.Topologies = 10
	steps := map[topology.FaultKind][]int{
		topology.LinkFaults:   {1, 20, 50, 90},
		topology.RouterFaults: {1, 10, 25, 40},
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2(p, steps)
		experiments.PrintFig2(io.Discard, rows)
	}
}

func BenchmarkFig3DeadlockHeatmap(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(p, []int{5, 20}, []float64{0.10, 0.25})
		experiments.PrintFig3(io.Discard, rows)
	}
}

func BenchmarkPlacement(b *testing.B) {
	// Fig. 4: the placement rule plus full coverage verification on 8x8.
	topo := topology.NewMesh(8, 8)
	for i := 0; i < b.N; i++ {
		if len(core.Placement(8, 8)) != 21 || !core.VerifyCoverage(topo) {
			b.Fatal("placement broken")
		}
	}
}

func BenchmarkTable1BufferCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(experiments.Quick(), nil)
		experiments.PrintTable1(io.Discard, rows)
	}
}

func BenchmarkFig8LowLoadLatency(b *testing.B) {
	p := benchParams()
	steps := map[topology.FaultKind][]int{
		topology.LinkFaults:   {15},
		topology.RouterFaults: {8},
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(p, []string{"uniform_random"}, steps)
		experiments.PrintFig8(io.Discard, rows)
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	p := benchParams()
	steps := map[topology.FaultKind][]int{topology.LinkFaults: {10}}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(p, steps)
		experiments.PrintFig9(io.Discard, rows)
	}
}

func BenchmarkFig10Energy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(p, []int{7})
		experiments.PrintFig10(io.Discard, rows)
	}
}

func BenchmarkFig11ThresholdSweep(b *testing.B) {
	p := benchParams()
	p.MeasureCycles = 3000
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11(p, []int64{10, 60})
		experiments.PrintFig11(io.Discard, rows)
	}
}

func BenchmarkFig12Rodinia(b *testing.B) {
	p := benchParams()
	apps := []traffic.AppProfile{traffic.Rodinia()[4]} // BFS (lightest)
	steps := map[topology.FaultKind][]int{topology.LinkFaults: {4}}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(p, apps, steps)
		experiments.PrintFig12(io.Discard, rows)
	}
}

func BenchmarkFig13Parsec(b *testing.B) {
	p := benchParams()
	apps := []traffic.AppProfile{traffic.Parsec()[3]} // swaptions (lightest)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(p, apps)
		experiments.PrintFig13(io.Discard, rows)
	}
}

// --- simulator micro-benchmarks -------------------------------------------

// BenchmarkSimCycle measures raw simulation speed: cycles/second on a
// loaded 8x8 mesh with SB attached.
func BenchmarkSimCycle(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(sim, core.Options{})
	min := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), min,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.10, rand.New(rand.NewSource(2)))
	sim.Run(500) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Tick(sim)
		sim.Step()
	}
}

// BenchmarkRecoveryRing measures one full detect-and-recover episode on a
// guaranteed 2x2 ring deadlock.
func BenchmarkRecoveryRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := topology.NewMesh(2, 2)
		sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		core.Attach(sim, core.Options{TDD: 20})
		hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
		for _, n := range []geom.NodeID{0, 2, 3, 1} {
			d1 := hops[n]
			mid := topo.Neighbor(n, d1)
			d2 := hops[mid]
			dst := topo.Neighbor(mid, d2)
			for k := 0; k < 12; k++ {
				sim.Enqueue(sim.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
			}
		}
		for sim.InFlight()+sim.QueuedPackets() > 0 && sim.Now < 40000 {
			sim.Step()
		}
		if sim.Stats.DeadlockRecoveries == 0 {
			b.Fatal("no recovery happened")
		}
	}
}

func BenchmarkMinimalRoute(b *testing.B) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 20, 1)
	min := routing.NewMinimal(topo) // tables compile here, outside the timer
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := geom.NodeID(i % 64)
		dst := geom.NodeID((i * 31) % 64)
		min.Route(src, dst, rng)
	}
}

func BenchmarkUpDownConstruction(b *testing.B) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 20, 1)
	for i := 0; i < b.N; i++ {
		routing.NewUpDown(topo)
	}
}

func BenchmarkCoverageCheck(b *testing.B) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 20, 1)
	for i := 0; i < b.N; i++ {
		if !core.VerifyCoverage(topo) {
			b.Fatal("coverage violated")
		}
	}
}

func BenchmarkPlacementClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.PlacementCountClosedForm(64, 64) != core.PlacementCount(64, 64) {
			b.Fatal("closed form mismatch")
		}
	}
}

// --- extension benchmarks ---------------------------------------------------

// BenchmarkScaleStudy runs the beyond-the-paper mesh-size saturation
// comparison at reduced scale.
func BenchmarkScaleStudy(b *testing.B) {
	p := benchParams()
	p.MeasureCycles = 800
	for i := 0; i < b.N; i++ {
		rows := experiments.Scale(p, [][2]int{{4, 4}, {6, 6}})
		experiments.PrintScale(io.Discard, rows)
	}
}

// BenchmarkAblation runs the design-variant comparison.
func BenchmarkAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablation(p)
		experiments.PrintAblation(io.Discard, rows)
	}
}

// BenchmarkBFCRing measures ring traffic under bubble flow control.
func BenchmarkBFCRing(b *testing.B) {
	topo := topology.NewMesh(6, 6)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ring := bfc.BoundaryRing(topo)
	if _, err := bfc.Attach(sim, ring); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := ring.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Intn(n)
		src := ring.Nodes[idx]
		hops := 1 + rng.Intn(n/2)
		var route routing.Route
		cur := src
		for k := 0; k < hops; k++ {
			d := ring.Dirs[(idx+k)%n]
			route = append(route, d)
			cur = sim.Topo.Neighbor(cur, d)
		}
		sim.Enqueue(sim.NewPacket(src, cur, 0, 5, route))
		sim.Step()
	}
}

// BenchmarkReconfigGate measures one graceful gate cycle on an idle mesh.
func BenchmarkReconfigGate(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	mgr := reconfig.New(sim)
	victim := topo.ID(geom.Coord{X: 3, Y: 3})
	for i := 0; i < b.N; i++ {
		if err := mgr.RequestGate(victim); err != nil {
			b.Fatal(err)
		}
		if gated := mgr.TryCompleteGates(); len(gated) != 1 {
			b.Fatal("gate did not complete on idle network")
		}
		mgr.Ungate(victim)
	}
}

// BenchmarkValidateCheck measures the invariant oracle on a loaded sim.
func BenchmarkValidateCheck(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(sim, core.Options{})
	min := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), min,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.10, rand.New(rand.NewSource(2)))
	for c := 0; c < 1000; c++ {
		inj.Tick(sim)
		sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := validate.Check(sim, ctrl); len(vs) != 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
}

// BenchmarkSnapshotCapture measures diagnostic state capture.
func BenchmarkSnapshotCapture(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(sim, core.Options{})
	min := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), min,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.10, rand.New(rand.NewSource(2)))
	for c := 0; c < 1000; c++ {
		inj.Tick(sim)
		sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := snapshot.Capture(sim, ctrl)
		if st.Cycle == 0 {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkDeadlockAnalyze measures the exact drainability fixpoint.
func BenchmarkDeadlockAnalyze(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	min := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), min,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.15, rand.New(rand.NewSource(2)))
	for c := 0; c < 1500; c++ {
		inj.Tick(sim)
		sim.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadlock.Analyze(sim)
	}
}

// BenchmarkFailureTimeline runs the reconfiguration-downtime study at
// reduced scale.
func BenchmarkFailureTimeline(b *testing.B) {
	p := benchParams()
	p.MeasureCycles = 2500
	for i := 0; i < b.N; i++ {
		rows := experiments.FailureTimeline(p, 500, 2)
		experiments.PrintFailureTimeline(io.Discard, rows)
	}
}
