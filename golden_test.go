package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/network/refmodel"
	"repro/internal/routing"
	"repro/internal/topology"
)

// runGoldenScenario drives the pinned end-to-end scenario (seeded
// irregular 8x8 topology, mixed traffic, live SB recovery) for 6000
// cycles. step advances the simulation one cycle — either the
// event-driven Sim.Step or the refmodel full scan.
func runGoldenScenario(s *network.Sim, topo *topology.Topology, step func()) {
	core.Attach(s, core.Options{TDD: 24})
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(9))
	for cyc := 0; cyc < 6000; cyc++ {
		if cyc < 4000 {
			for n := 0; n < 64; n++ {
				if !topo.RouterAlive(geom.NodeID(n)) || rng.Float64() >= 0.09 {
					continue
				}
				dst := geom.NodeID(rng.Intn(64))
				r, ok := min.Route(geom.NodeID(n), dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
			}
		}
		step()
	}
}

// goldenWant is the pinned Stats for the scenario above. To regenerate
// after an intentional behaviour change, print the fresh counters and
// paste them here:
//
//	go test -run TestGoldenTrajectory -v .   (add a t.Logf("%+v", s.Stats))
//
// or simply read the got/want diff this test prints on mismatch.
var goldenWant = network.Stats{
	Offered:            22398,
	Injected:           13324,
	Delivered:          11237,
	DroppedUnreachable: 738,
	InjectedFlits:      39260,
	DeliveredFlits:     33169,
	SumLatency:         1852037,
	SumNetLatency:      1501978,
	MaxLatency:         3989,
	HopMoves:           62712,
	LinkCycles: [network.NumLinkClasses]int64{
		185812, 90849, 316, 698, 90,
	},
	ProbesSent:         2599,
	DisablesSent:       52,
	EnablesSent:        52,
	CheckProbesSent:    14,
	ProbesReturned:     52,
	DeadlockRecoveries: 15,
	BubbleOccupancies:  20,
	BubbleTransfers:    3,
}

// TestGoldenTrajectory pins the exact counters of one seeded end-to-end
// scenario (irregular topology, mixed traffic, live recovery) under the
// event-driven core. Any change to simulator timing, allocation,
// routing, or the recovery protocol will move these numbers: if a change
// is intentional, re-record the golden (see goldenWant); if not, this
// test just caught a behavioural regression.
func TestGoldenTrajectory(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	runGoldenScenario(s, topo, s.Step)
	if s.Stats != goldenWant {
		t.Fatalf("golden trajectory diverged:\n got %+v\nwant %+v", s.Stats, goldenWant)
	}
	if s.InFlight() != 2087 || s.QueuedPackets() != 9074 {
		t.Fatalf("golden occupancy diverged: inflight %d queued %d", s.InFlight(), s.QueuedPackets())
	}
}

// TestGoldenTrajectoryRefModel replays the identical scenario through
// the refmodel full-scan stepper: both cores must land on the same
// pinned counters, anchoring the differential harness to a known-good
// trajectory with live SB recovery.
func TestGoldenTrajectoryRefModel(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	ref := refmodel.New(s)
	runGoldenScenario(s, topo, ref.Step)
	if s.Stats != goldenWant {
		t.Fatalf("refmodel golden trajectory diverged:\n got %+v\nwant %+v", s.Stats, goldenWant)
	}
	if s.InFlight() != 2087 || s.QueuedPackets() != 9074 {
		t.Fatalf("refmodel golden occupancy diverged: inflight %d queued %d", s.InFlight(), s.QueuedPackets())
	}
}

// TestGoldenTrajectorySharded replays the identical scenario through
// the sharded parallel stepper at several shard counts: every core —
// refmodel, event, sharded — is pinned to the same golden counters, so
// a determinism break in the barrier/commit machinery shows up as a
// diff against known-good numbers rather than merely as cross-core
// disagreement.
func TestGoldenTrajectorySharded(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
		s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(7)))
		runGoldenScenario(s, topo, s.Step)
		if s.Stats != goldenWant {
			t.Fatalf("sharded(%d) golden trajectory diverged:\n got %+v\nwant %+v", shards, s.Stats, goldenWant)
		}
		if s.InFlight() != 2087 || s.QueuedPackets() != 9074 {
			t.Fatalf("sharded(%d) golden occupancy diverged: inflight %d queued %d",
				shards, s.InFlight(), s.QueuedPackets())
		}
	}
}
