// Power-gating scenario (paper Section I, Fig. 1b and the Fig. 10
// evaluation): routers are progressively switched off *while traffic is
// running* to save leakage as utilization drops. The reconfig.Manager
// performs each gate gracefully — new routes avoid the victim, transiting
// traffic drains, then it powers off — and Static Bubble keeps the
// surviving irregular topology deadlock-free under fully minimal routing
// at every gating level: no spanning-tree reconfiguration, no escape
// paths, no lost packets.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

func main() {
	const (
		rate        = 0.03 // light load: the regime where gating pays
		phaseCycles = 8000
	)
	// Gate four routers per phase, chosen from the mesh interior.
	victims := [][]geom.Coord{
		nil,
		{{X: 2, Y: 5}, {X: 5, Y: 2}, {X: 6, Y: 6}, {X: 1, Y: 2}},
		{{X: 3, Y: 4}, {X: 4, Y: 2}, {X: 2, Y: 6}, {X: 6, Y: 1}},
		{{X: 5, Y: 5}, {X: 2, Y: 3}, {X: 6, Y: 4}, {X: 4, Y: 6}},
	}

	topo := topology.NewMesh(8, 8)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(sim, core.Options{})
	mgr := reconfig.New(sim)
	model := energy.Default32nm()
	rng := rand.New(rand.NewSource(7))

	fullLeak := leakPerCycle(model, sim)

	fmt.Println("live router power-gating with Static Bubble recovery (8x8 mesh)")
	fmt.Printf("%-7s %-9s %-9s %-10s %-12s %-12s %-7s\n",
		"phase", "gated", "routers", "avgLat", "delivered", "leak(pJ/cy)", "saved")

	totalGated := 0
	for phase, vs := range victims {
		for _, v := range vs {
			if err := mgr.RequestGate(topo.ID(v)); err != nil {
				panic(err)
			}
		}
		startDelivered := sim.Stats.Delivered
		startLat := sim.Stats.SumLatency
		alive := topo.AliveRouters()
		for c := 0; c < phaseCycles; c++ {
			for _, src := range alive {
				if !topo.RouterAlive(src) || rng.Float64() >= rate/3 {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := mgr.Route(src, dst); ok {
					sim.Enqueue(sim.NewPacket(src, dst, rng.Intn(3), 5, r))
				}
			}
			sim.Step()
			mgr.TryCompleteGates()
		}
		totalGated += len(vs)
		delivered := sim.Stats.Delivered - startDelivered
		avgLat := float64(sim.Stats.SumLatency-startLat) / float64(max(delivered, 1))
		leak := leakPerCycle(model, sim)
		fmt.Printf("%-7d %-9d %-9d %-10.1f %-12d %-12.0f %.1f%%\n",
			phase, totalGated, topo.AliveRouterCount(), avgLat, delivered,
			leak, 100*(1-leak/fullLeak))
		if mgr.PendingGates() != 0 {
			fmt.Printf("        (%d gates still draining)\n", mgr.PendingGates())
		}
	}

	// Drain and verify nothing was lost.
	for i := 0; i < 40000 && sim.InFlight()+sim.QueuedPackets() > 0; i += 100 {
		sim.Run(100)
		mgr.TryCompleteGates()
	}
	fmt.Printf("\nall phases done: %d/%d packets delivered, %d lost, recoveries %d\n",
		sim.Stats.Delivered, sim.Stats.Offered, sim.Stats.Lost, sim.Stats.DeadlockRecoveries)
	fmt.Println("minimal routing stayed deadlock-free at every gating level — no tree, no escape VCs")
}

// leakPerCycle evaluates static power of the surviving network, including
// the static-bubble buffers at alive SB routers.
func leakPerCycle(m energy.Model, sim *network.Sim) float64 {
	extra := energy.SchemeOverheadBuffers(sim, "sb")
	b := m.Compute(sim, extra, 1)
	return b.RouterLeakage + b.LinkLeakage
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
