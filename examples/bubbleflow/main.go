// Bubble Flow Control demo (paper Section II-C): the classic ring
// technique whose theory Static Bubble generalizes. The same heavy ring
// workload is run twice on the mesh's boundary ring — once bare (it
// wedges solid) and once under BFC's injection rule (it can never wedge,
// because at least one buffer in the ring always stays free).
//
// Static Bubble is the same invariant applied dynamically: instead of
// *preserving* a bubble by refusing injections, it *creates* one after
// detecting that the chain closed.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/bfc"
	"repro/internal/deadlock"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	fmt.Println("bubble flow control on the 6x6 boundary ring (20 nodes)")

	run := func(withBFC bool) {
		topo := topology.NewMesh(6, 6)
		sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		ring := bfc.BoundaryRing(topo)
		var ctrl *bfc.Controller
		if withBFC {
			var err error
			ctrl, err = bfc.Attach(sim, ring)
			if err != nil {
				panic(err)
			}
		}

		// Every ring node streams packets halfway around the ring.
		rng := rand.New(rand.NewSource(2))
		n := ring.Len()
		offered := 0
		for cyc := 0; cyc < 12000; cyc++ {
			if cyc < 8000 {
				for i, src := range ring.Nodes {
					if rng.Float64() >= 0.08 {
						continue
					}
					hops := 1 + rng.Intn(n/2)
					var route routing.Route
					cur := src
					for k := 0; k < hops; k++ {
						d := ring.Dirs[(i+k)%n]
						route = append(route, d)
						cur = sim.Topo.Neighbor(cur, d)
					}
					sim.Enqueue(sim.NewPacket(src, cur, 0, 5, route))
					offered++
				}
			}
			sim.Step()
		}
		sim.Run(20000)

		label := "bare ring:    "
		if withBFC {
			label = "ring with BFC:"
		}
		fmt.Printf("%s offered %5d, delivered %5d, deadlocked: %v",
			label, offered, sim.Stats.Delivered, deadlock.IsDeadlocked(sim))
		if ctrl != nil {
			fmt.Printf(", injections gated %d times", ctrl.Denied)
		}
		fmt.Println()
	}

	run(false)
	run(true)

	fmt.Println("\nthe bubble invariant — one free buffer somewhere in every dependence")
	fmt.Println("cycle — is exactly what the static-bubble placement guarantees can be")
	fmt.Println("restored on demand anywhere in an irregular mesh.")
}
