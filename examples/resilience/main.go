// NoC resiliency scenario (paper Sections I–II): links fail over the
// chip's lifetime and the network must stay functional and deadlock-free.
// The example accumulates link failures and, at each failure level,
// compares the three schemes of the paper's evaluation — spanning-tree
// avoidance (Ariadne-style), escape-VC recovery (Router Parking-style),
// and Static Bubble — on latency and delivered throughput under the same
// traffic.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/topology"
)

func main() {
	faultLevels := []int{0, 8, 16, 24, 32, 40}
	const rate = 0.05
	p := experiments.Params{WarmupCycles: 1000, MeasureCycles: 8000, BaseSeed: 11}

	fmt.Println("lifetime link failures: scheme comparison at each failure level")
	fmt.Printf("%-8s %-12s | %-24s | %s\n", "", "", "avg latency (cycles)", "accepted (flits/node/cy)")
	fmt.Printf("%-8s %-12s | %-7s %-7s %-8s | %-7s %-7s %-7s\n",
		"faults", "connected", "tree", "eVC", "SB", "tree", "eVC", "SB")

	for _, faults := range faultLevels {
		topo := p.SampleTopology(topology.LinkFaults, faults, 0)
		var lat, thr [3]float64
		for _, sch := range experiments.Schemes {
			inst := p.Build(topo.Clone(), sch, int64(faults)*17+int64(sch))
			inj := inst.Injector(inst.Pattern("uniform_random"), rate, int64(faults)*19+int64(sch))
			sim := inst.Sim
			for c := 0; c < p.WarmupCycles+p.MeasureCycles; c++ {
				inj.Tick(sim)
				sim.Step()
			}
			lat[sch] = sim.Stats.AvgLatency()
			thr[sch] = float64(sim.Stats.DeliveredFlits) / float64(sim.Now) / float64(topo.AliveRouterCount())
		}
		comps := len(topo.ConnectedComponents())
		fmt.Printf("%-8d %-12s | %-7.1f %-7.1f %-8.1f | %-7.4f %-7.4f %-7.4f\n",
			faults, fmt.Sprintf("%d comp", comps),
			lat[experiments.SpanningTree], lat[experiments.EscapeVC], lat[experiments.StaticBubble],
			thr[experiments.SpanningTree], thr[experiments.EscapeVC], thr[experiments.StaticBubble])
	}

	fmt.Println("\nStatic Bubble needs no reconfiguration when a link dies: the design-time")
	fmt.Println("placement already covers every cycle of every derived topology, while the")
	fmt.Println("tree-based schemes must recompute their spanning tree on each failure")
	fmt.Println("(thousands of cycles in prior work, modeled as free here).")
}
