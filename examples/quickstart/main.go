// Quickstart: build an irregular topology from an 8×8 mesh, attach the
// Static Bubble recovery framework, drive deadlock-prone minimal-routed
// traffic into it, and watch a real deadlock get detected and recovered.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// findIntactSquare returns the four corners of a unit square whose links
// all survived, clockwise.
func findIntactSquare(topo *topology.Topology) [4]geom.NodeID {
	for y := 0; y < topo.Height()-1; y++ {
		for x := 0; x < topo.Width()-1; x++ {
			a := topo.ID(geom.Coord{X: x, Y: y})
			b := topo.ID(geom.Coord{X: x, Y: y + 1})
			c := topo.ID(geom.Coord{X: x + 1, Y: y + 1})
			d := topo.ID(geom.Coord{X: x + 1, Y: y})
			if topo.HasLink(a, geom.North) && topo.HasLink(b, geom.East) &&
				topo.HasLink(c, geom.South) && topo.HasLink(d, geom.West) {
				return [4]geom.NodeID{a, b, c, d}
			}
		}
	}
	panic("no intact square survived the fault injection")
}

func main() {
	// 1. An 8×8 mesh with 15 random link failures (or power-gated
	//    drivers): the resulting irregular topology is deadlock-prone
	//    under unrestricted minimal routing.
	topo := topology.NewMesh(8, 8)
	rng := rand.New(rand.NewSource(42))
	topology.RandomLinkFaults(topo, rng, 15)
	fmt.Println("topology:", topo)
	fmt.Println("deadlock-prone (has cycles):", topo.HasTopologyCycle())

	// 2. The design-time half of the framework: 21 of the 64 routers
	//    carry a static bubble, placed so that every possible dependency
	//    cycle in every derived topology crosses at least one of them.
	fmt.Printf("static-bubble routers: %d (placement verified: %v)\n",
		core.PlacementCount(8, 8), core.VerifyCoverage(topo))

	// 3. Build the simulator and attach the runtime half: the per-router
	//    recovery FSMs and the probe/disable/check_probe/enable protocol.
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(sim, core.Options{TDD: 34})

	// 4. Fully minimal, unrestricted source routing — the whole point of
	//    the framework is that no spanning tree or escape path is needed.
	minimal := routing.NewMinimal(topo)
	inj := traffic.NewInjector(topo.AliveRouters(), minimal,
		traffic.NewUniformRandom(topo.AliveRouters()), 0.12, rand.New(rand.NewSource(2)))

	// 5. Run background traffic, then fire an adversarial burst: every
	//    corner of an intact square streams packets two hops clockwise,
	//    which wedges the loop solid. The FSMs detect the cycle with
	//    probes and drain it through a bubble.
	sawDeadlock := false
	step := func(cycles int, inject bool) {
		for c := 0; c < cycles; c++ {
			if inject {
				inj.Tick(sim)
			}
			sim.Step()
			if c%50 == 49 && !sawDeadlock && deadlock.IsDeadlocked(sim) {
				sawDeadlock = true
			}
		}
	}
	step(8000, true) // background load: no deadlocks at this rate

	loop := findIntactSquare(topo)
	fmt.Printf("\nadversarial burst around square %v %v %v %v\n",
		topo.Coord(loop[0]), topo.Coord(loop[1]), topo.Coord(loop[2]), topo.Coord(loop[3]))
	for i, n := range loop {
		next, next2 := loop[(i+1)%4], loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < 12; k++ {
			sim.Enqueue(sim.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
		}
	}
	step(20000, false) // recovery happens in here; everything drains

	st := sim.Stats
	fmt.Printf("\ndelivered %d of %d offered packets (avg latency %.1f cycles)\n",
		st.Delivered, st.Offered, st.AvgLatency())
	fmt.Printf("deadlock observed mid-run: %v\n", sawDeadlock)
	fmt.Printf("probes sent %d, returned %d; recoveries %d; packets through bubbles %d\n",
		st.ProbesSent, st.ProbesReturned, st.DeadlockRecoveries, st.BubbleOccupancies)
	fmt.Printf("in flight at end: %d (queued %d)\n", sim.InFlight(), sim.QueuedPackets())

	// 6. Everything is observable: FSM states, fences, in-flight control
	//    messages.
	for _, n := range ctrl.BubbleRouters()[:5] {
		fmt.Printf("FSM at router %d %v: %v\n", n, topo.Coord(geom.NodeID(n)), ctrl.FSMState(n))
	}
}
