// Heterogeneous SoC scenario (paper Fig. 1a): a design-time irregular
// topology where big cores, a GPU, and accelerators occupy multi-tile
// footprints, removing the routers under them. Static Bubble makes the
// resulting topology deadlock-free by construction — the placement covers
// every cycle of anything derived from the mesh — so the SoC integrator
// gets minimal routing with no per-design deadlock analysis.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	// Floorplan on an 8×8 mesh substrate: a 2×2 big core, a 3×2 GPU, and
	// a 2×1 crypto accelerator, each attached through one surviving
	// router.
	tiles := []topology.Tile{
		{Origin: geom.Coord{X: 0, Y: 5}, Width: 2, Height: 2, Attach: geom.Coord{X: 1, Y: 5}},
		{Origin: geom.Coord{X: 4, Y: 0}, Width: 3, Height: 2, Attach: geom.Coord{X: 4, Y: 1}},
		{Origin: geom.Coord{X: 6, Y: 6}, Width: 2, Height: 1, Attach: geom.Coord{X: 6, Y: 6}},
	}
	topo, err := topology.HeterogeneousSoC(8, 8, tiles)
	if err != nil {
		panic(err)
	}

	fmt.Println("heterogeneous SoC floorplan (◉ = static bubble, □ = macro block, · = core):")
	for y := 7; y >= 0; y-- {
		fmt.Printf("%3d  ", y)
		for x := 0; x < 8; x++ {
			c := geom.Coord{X: x, Y: y}
			switch {
			case !topo.RouterAlive(topo.ID(c)):
				fmt.Print(" □")
			case core.HasStaticBubble(c):
				fmt.Print(" ◉")
			default:
				fmt.Print(" ·")
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nrouters: %d/%d alive, links: %d, deadlock-prone: %v\n",
		topo.AliveRouterCount(), topo.NumNodes(), topo.AliveLinkCount(), topo.HasTopologyCycle())
	fmt.Printf("coverage lemma holds on this SoC: %v\n", core.VerifyCoverage(topo))

	// Traffic model: cores talk uniformly; the accelerators' attach
	// points are hotspots (DMA streams).
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(sim, core.Options{})
	minimal := routing.NewMinimal(topo)
	alive := topo.AliveRouters()
	gpu := topo.ID(geom.Coord{X: 4, Y: 1})
	pattern := traffic.Hotspot{Spot: gpu, Fraction: 0.25, Uniform: traffic.NewUniformRandom(alive)}
	inj := traffic.NewInjector(alive, minimal, pattern, 0.05, rand.New(rand.NewSource(2)))

	for c := 0; c < 20000; c++ {
		if c < 15000 {
			inj.Tick(sim)
		}
		sim.Step()
	}
	st := sim.Stats
	fmt.Printf("\nafter 20k cycles at 0.05 flits/node/cycle with a GPU hotspot:\n")
	fmt.Printf("delivered %d/%d packets, avg latency %.1f cycles, max %d\n",
		st.Delivered, st.Offered, st.AvgLatency(), st.MaxLatency)
	fmt.Printf("recoveries: %d (probes %d)\n", st.DeadlockRecoveries, st.ProbesSent)
	fmt.Printf("in flight at end: %d\n", sim.InFlight())
}
