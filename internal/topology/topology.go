// Package topology models the physical substrate of the NoC: an n×m mesh
// of routers and bidirectional links from which irregular topologies are
// derived by disabling routers and links (failures or power-gating), or by
// carving out heterogeneous accelerator tiles at design time.
//
// The package also provides the graph analyses the paper's evaluation
// rests on: connected components, shortest-path distances, undirected
// cycle detection ("deadlock-prone" in Fig. 2), and detection of cycles in
// the no-U-turn channel-dependency graph, which is the exact structure the
// static-bubble coverage lemma quantifies over.
package topology

import (
	"fmt"

	"repro/internal/geom"
)

// Topology is a mesh-derived network graph. Routers and directed links can
// be individually disabled. The zero value is not usable; construct with
// NewMesh.
type Topology struct {
	width, height int
	routerAlive   []bool
	// linkAlive[n][d] records whether the directed link from router n in
	// direction d is intact. Bidirectional faults clear both directions;
	// unidirectional faults (uDIREC-style) clear one.
	linkAlive [][geom.NumLinkDirs]bool
}

// NewMesh returns a fully healthy width×height mesh.
func NewMesh(width, height int) *Topology {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("topology: invalid mesh size %dx%d", width, height))
	}
	n := width * height
	t := &Topology{
		width:       width,
		height:      height,
		routerAlive: make([]bool, n),
		linkAlive:   make([][geom.NumLinkDirs]bool, n),
	}
	for id := 0; id < n; id++ {
		t.routerAlive[id] = true
		c := geom.NodeID(id).CoordOf(width)
		for _, d := range geom.LinkDirs {
			t.linkAlive[id][d] = t.InBounds(c.Add(d))
		}
	}
	return t
}

// Clone returns an independent deep copy.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		width:       t.width,
		height:      t.height,
		routerAlive: append([]bool(nil), t.routerAlive...),
		linkAlive:   append([][geom.NumLinkDirs]bool(nil), t.linkAlive...),
	}
	return c
}

// Width returns the mesh width (routers per row).
func (t *Topology) Width() int { return t.width }

// Height returns the mesh height (routers per column).
func (t *Topology) Height() int { return t.height }

// NumNodes returns the total router count of the underlying mesh,
// including disabled routers.
func (t *Topology) NumNodes() int { return t.width * t.height }

// InBounds reports whether c lies on the underlying mesh.
func (t *Topology) InBounds(c geom.Coord) bool {
	return c.X >= 0 && c.X < t.width && c.Y >= 0 && c.Y < t.height
}

// Coord returns the coordinate of node n.
func (t *Topology) Coord(n geom.NodeID) geom.Coord { return n.CoordOf(t.width) }

// ID returns the NodeID at coordinate c; it panics if c is out of bounds.
func (t *Topology) ID(c geom.Coord) geom.NodeID {
	if !t.InBounds(c) {
		panic(fmt.Sprintf("topology: coordinate %v outside %dx%d mesh", c, t.width, t.height))
	}
	return c.IDOf(t.width)
}

// Neighbor returns the node one hop from n in direction d, or InvalidNode
// if that position is off-mesh. It does not consider faults; see HasLink.
func (t *Topology) Neighbor(n geom.NodeID, d geom.Direction) geom.NodeID {
	if !d.IsLink() {
		return geom.InvalidNode
	}
	c := t.Coord(n).Add(d)
	if !t.InBounds(c) {
		return geom.InvalidNode
	}
	return c.IDOf(t.width)
}

// RouterAlive reports whether router n is present and on.
func (t *Topology) RouterAlive(n geom.NodeID) bool {
	return n >= 0 && int(n) < len(t.routerAlive) && t.routerAlive[n]
}

// DisableRouter removes router n (fault or power-gating). All its links
// become unusable implicitly via HasLink.
func (t *Topology) DisableRouter(n geom.NodeID) { t.routerAlive[n] = false }

// EnableRouter restores router n (e.g. power-gating wake-up).
func (t *Topology) EnableRouter(n geom.NodeID) { t.routerAlive[n] = true }

// DisableLink removes the bidirectional link between n and its neighbor in
// direction d. It is a no-op if no such link position exists.
func (t *Topology) DisableLink(n geom.NodeID, d geom.Direction) {
	nb := t.Neighbor(n, d)
	if nb == geom.InvalidNode {
		return
	}
	t.linkAlive[n][d] = false
	t.linkAlive[nb][d.Opposite()] = false
}

// EnableLink restores the bidirectional link between n and its neighbor in
// direction d.
func (t *Topology) EnableLink(n geom.NodeID, d geom.Direction) {
	nb := t.Neighbor(n, d)
	if nb == geom.InvalidNode {
		return
	}
	t.linkAlive[n][d] = true
	t.linkAlive[nb][d.Opposite()] = true
}

// DisableDirectedLink removes only the n→neighbor direction of a link
// (unidirectional failure, the uDIREC fault model).
func (t *Topology) DisableDirectedLink(n geom.NodeID, d geom.Direction) {
	if t.Neighbor(n, d) != geom.InvalidNode {
		t.linkAlive[n][d] = false
	}
}

// HasLink reports whether the directed channel from n in direction d is
// usable: both endpoint routers alive and the directed link intact.
func (t *Topology) HasLink(n geom.NodeID, d geom.Direction) bool {
	if !t.RouterAlive(n) || !d.IsLink() {
		return false
	}
	nb := t.Neighbor(n, d)
	return nb != geom.InvalidNode && t.routerAlive[nb] && t.linkAlive[n][d]
}

// LinkIntact reports whether the directed link from n toward d is
// itself intact, ignoring router liveness at either end. HasLink
// conflates a dead endpoint with a severed link; reconfig needs the
// distinction to make fail/recover-link events idempotent (failing a
// link whose endpoint router is down must still sever the wire, and
// recovering it must not double-apply).
func (t *Topology) LinkIntact(n geom.NodeID, d geom.Direction) bool {
	if !d.IsLink() || n < 0 || int(n) >= len(t.linkAlive) {
		return false
	}
	return t.Neighbor(n, d) != geom.InvalidNode && t.linkAlive[n][d]
}

// HasUndirectedLink reports whether traffic can flow in at least one
// direction between n and its neighbor in direction d.
func (t *Topology) HasUndirectedLink(n geom.NodeID, d geom.Direction) bool {
	nb := t.Neighbor(n, d)
	if nb == geom.InvalidNode {
		return false
	}
	return t.HasLink(n, d) || t.HasLink(nb, d.Opposite())
}

// AliveRouters returns the ids of all alive routers in ascending order.
func (t *Topology) AliveRouters() []geom.NodeID {
	out := make([]geom.NodeID, 0, len(t.routerAlive))
	for id, alive := range t.routerAlive {
		if alive {
			out = append(out, geom.NodeID(id))
		}
	}
	return out
}

// AliveRouterCount returns the number of alive routers.
func (t *Topology) AliveRouterCount() int {
	n := 0
	for _, alive := range t.routerAlive {
		if alive {
			n++
		}
	}
	return n
}

// UndirectedLink identifies a link by its lower-coordinate endpoint and a
// direction of North or East (the canonical orientation).
type UndirectedLink struct {
	From geom.NodeID
	Dir  geom.Direction
}

// AliveUndirectedLinks returns every link usable in at least one
// direction, in canonical (From ascending, North before East) order.
func (t *Topology) AliveUndirectedLinks() []UndirectedLink {
	var out []UndirectedLink
	for id := 0; id < t.NumNodes(); id++ {
		n := geom.NodeID(id)
		for _, d := range []geom.Direction{geom.North, geom.East} {
			if t.HasUndirectedLink(n, d) {
				out = append(out, UndirectedLink{n, d})
			}
		}
	}
	return out
}

// AliveLinkCount returns the number of links usable in at least one
// direction.
func (t *Topology) AliveLinkCount() int { return len(t.AliveUndirectedLinks()) }

// Degree returns the number of usable outgoing channels of router n.
func (t *Topology) Degree(n geom.NodeID) int {
	deg := 0
	for _, d := range geom.LinkDirs {
		if t.HasLink(n, d) {
			deg++
		}
	}
	return deg
}

func (t *Topology) String() string {
	return fmt.Sprintf("Topology(%dx%d, %d/%d routers, %d links)",
		t.width, t.height, t.AliveRouterCount(), t.NumNodes(), t.AliveLinkCount())
}
