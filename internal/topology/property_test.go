package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Property suites over the topology graph algorithms (testing/quick).

// randomTopo derives a topology from compact fuzzable inputs.
func randomTopo(wRaw, hRaw uint8, seed int64, lfRaw, rfRaw uint8) *Topology {
	w := int(wRaw%10) + 2
	h := int(hRaw%10) + 2
	t := NewMesh(w, h)
	rng := rand.New(rand.NewSource(seed))
	RandomLinkFaults(t, rng, int(lfRaw)%(MaxFaults(w, h, LinkFaults)+1))
	RandomRouterFaults(t, rng, int(rfRaw)%(w*h/2+1))
	return t
}

func TestPropComponentsPartitionAliveRouters(t *testing.T) {
	f := func(w, h uint8, seed int64, lf, rf uint8) bool {
		topo := randomTopo(w, h, seed, lf, rf)
		seen := map[geom.NodeID]int{}
		for ci, comp := range topo.ConnectedComponents() {
			for _, n := range comp {
				if _, dup := seen[n]; dup {
					return false // node in two components
				}
				seen[n] = ci
				if !topo.RouterAlive(n) {
					return false // dead node in a component
				}
			}
		}
		return len(seen) == topo.AliveRouterCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropComponentsInternallyConnected(t *testing.T) {
	f := func(w, h uint8, seed int64, lf, rf uint8) bool {
		topo := randomTopo(w, h, seed, lf, rf)
		for _, comp := range topo.ConnectedComponents() {
			dist := topo.BFSDistances(comp[0])
			for _, n := range comp {
				if dist[n] < 0 {
					return false // member unreachable from its own component head
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropCycleCriterionMatchesEulerBound(t *testing.T) {
	// edges > nodes − components  ⇔  HasTopologyCycle (by construction);
	// cross-check against the directed no-U-turn search.
	f := func(w, h uint8, seed int64, lf, rf uint8) bool {
		topo := randomTopo(w, h, seed, lf, rf)
		return topo.HasTopologyCycle() == topo.HasNoUTurnCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropBFSTriangleInequality(t *testing.T) {
	f := func(w, h uint8, seed int64, lf uint8, aRaw, bRaw uint8) bool {
		topo := randomTopo(w, h, seed, lf, 0)
		n := topo.NumNodes()
		a := geom.NodeID(int(aRaw) % n)
		b := geom.NodeID(int(bRaw) % n)
		da := topo.BFSDistances(a)
		if da[b] < 0 {
			return true
		}
		db := topo.BFSDistances(b)
		// Symmetry on bidirectional topologies.
		if db[a] != da[b] {
			return false
		}
		// Triangle inequality through every alive midpoint.
		for m := 0; m < n; m++ {
			if da[m] >= 0 && db[m] >= 0 && da[m]+db[m] < da[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropFaultsOnlyShrinkGraph(t *testing.T) {
	f := func(w, h uint8, seed int64, lf, rf uint8) bool {
		topo := randomTopo(w, h, seed, lf, rf)
		links, routers := topo.AliveLinkCount(), topo.AliveRouterCount()
		rng := rand.New(rand.NewSource(seed + 1))
		if routers > 1 {
			RandomRouterFaults(topo, rng, 1)
		}
		return topo.AliveLinkCount() <= links && topo.AliveRouterCount() <= routers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
