package topology

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/geom"
)

// FlatGraph is an immutable CSR-style snapshot of a Topology's usable
// channel structure: every per-hop question the routing hot path asks
// (HasLink, Neighbor, RouterAlive) becomes a single array load with no
// coordinate arithmetic or multi-field branching. Routing compilation
// (internal/routing) walks FlatGraphs exclusively, so a compiled table
// can never observe a topology mutation made after the snapshot.
type FlatGraph struct {
	// W, H are the underlying mesh dimensions; N = W*H.
	W, H, N int
	// Alive[n] reports router n usable.
	Alive []bool
	// Next[4*n+d] is the neighbor reached over the usable directed
	// channel n→d, or -1 when the channel is dead, off-mesh, or either
	// endpoint router is down (exactly Topology.HasLink semantics).
	Next []int32
	// Adj[4*n+d] is the geometric mesh neighbor of n in direction d
	// regardless of faults, or -1 off-mesh (Topology.Neighbor semantics).
	Adj []int32
	// LinkMask[n] has bit d set iff Next[4*n+d] >= 0.
	LinkMask []uint8
}

// Flatten snapshots the topology's current state into a FlatGraph.
// Subsequent mutations of t are not reflected in the snapshot.
func (t *Topology) Flatten() *FlatGraph {
	n := t.NumNodes()
	g := &FlatGraph{
		W: t.width, H: t.height, N: n,
		Alive:    append([]bool(nil), t.routerAlive...),
		Next:     make([]int32, geom.NumLinkDirs*n),
		Adj:      make([]int32, geom.NumLinkDirs*n),
		LinkMask: make([]uint8, n),
	}
	for id := 0; id < n; id++ {
		for _, d := range geom.LinkDirs {
			i := geom.NumLinkDirs*id + int(d)
			g.Next[i], g.Adj[i] = -1, -1
			nb := t.Neighbor(geom.NodeID(id), d)
			if nb == geom.InvalidNode {
				continue
			}
			g.Adj[i] = int32(nb)
			if t.HasLink(geom.NodeID(id), d) {
				g.Next[i] = int32(nb)
				g.LinkMask[id] |= 1 << uint(d)
			}
		}
	}
	return g
}

// NeighborOf returns the usable-channel neighbor of n in direction d, or
// InvalidNode (mirrors Topology.HasLink + Neighbor on the snapshot).
func (g *FlatGraph) NeighborOf(n geom.NodeID, d geom.Direction) geom.NodeID {
	return geom.NodeID(g.Next[geom.NumLinkDirs*int(n)+int(d)])
}

// Bytes returns the heap footprint of the snapshot's arrays, for cache
// accounting.
func (g *FlatGraph) Bytes() int64 {
	return int64(len(g.Alive)) + 4*int64(len(g.Next)) + 4*int64(len(g.Adj)) + int64(len(g.LinkMask))
}

// FlatDelta describes the usable-channel and liveness differences between
// two FlatGraph snapshots of the same mesh. Channel entries are directed
// channel indices (geom.NumLinkDirs*node + dir); the geometric head of a
// channel is Adj[idx], which is identical in both snapshots (Adj depends
// only on the mesh dimensions). The routing package's incremental
// recompiler consumes deltas to repair only the table columns an epoch
// actually perturbed.
type FlatDelta struct {
	// Removed lists channels usable in old but not in cur.
	Removed []int32
	// Added lists channels usable in cur but not in old.
	Added []int32
	// AliveChanged lists routers whose liveness flipped.
	AliveChanged []int32
}

// Empty reports a delta with no differences.
func (d *FlatDelta) Empty() bool {
	return len(d.Removed) == 0 && len(d.Added) == 0 && len(d.AliveChanged) == 0
}

// Size is the total number of flipped channels and routers.
func (d *FlatDelta) Size() int {
	return len(d.Removed) + len(d.Added) + len(d.AliveChanged)
}

// DiffFlat computes the delta taking old to cur. ok=false when the
// snapshots are not comparable (nil or different mesh dimensions), in
// which case incremental consumers must fall back to a full rebuild.
func DiffFlat(old, cur *FlatGraph) (FlatDelta, bool) {
	if old == nil || cur == nil || old.W != cur.W || old.H != cur.H {
		return FlatDelta{}, false
	}
	var d FlatDelta
	for i := range cur.Next {
		was, is := old.Next[i] >= 0, cur.Next[i] >= 0
		switch {
		case was && !is:
			d.Removed = append(d.Removed, int32(i))
		case !was && is:
			d.Added = append(d.Added, int32(i))
		}
	}
	for n := range cur.Alive {
		if old.Alive[n] != cur.Alive[n] {
			d.AliveChanged = append(d.AliveChanged, int32(n))
		}
	}
	return d, true
}

// Fingerprint is a content hash of a topology's full connectivity state
// (dimensions, router liveness, directed link liveness). Two topologies
// with equal fingerprints are behaviorally identical for routing, so the
// fingerprint content-addresses compiled routing tables across sweep
// points, topology clones, and processes.
type Fingerprint [sha256.Size]byte

// String returns a short hex prefix for logs.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Fingerprint hashes the topology's current connectivity state.
func (t *Topology) Fingerprint() Fingerprint {
	h := sha256.New()
	var hdr [16]byte
	copy(hdr[:], "sb-topology\x00")
	binary.LittleEndian.PutUint16(hdr[12:], uint16(t.width))
	binary.LittleEndian.PutUint16(hdr[14:], uint16(t.height))
	h.Write(hdr[:])
	// One byte per router: liveness in bit 7, the four directed outgoing
	// link-alive bits below. linkAlive is the raw per-direction state, so
	// unidirectional faults hash differently from bidirectional ones.
	buf := make([]byte, t.NumNodes())
	for id := range buf {
		var b uint8
		if t.routerAlive[id] {
			b = 1 << 7
		}
		for _, d := range geom.LinkDirs {
			if t.linkAlive[id][d] {
				b |= 1 << uint(d)
			}
		}
		buf[id] = b
	}
	h.Write(buf)
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
