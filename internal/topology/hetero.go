package topology

import (
	"fmt"

	"repro/internal/geom"
)

// Tile describes a rectangular macro block (big core, GPU, accelerator)
// occupying several mesh positions at design time, as in Fig. 1(a) of the
// paper. The block consumes the routers inside its footprint; the whole
// block attaches to the network through a single surviving router.
type Tile struct {
	// Origin is the lower-left corner of the footprint.
	Origin geom.Coord
	// Width and Height are the footprint size in mesh positions; both must
	// be at least 1. A 1×1 tile is an ordinary core and removes nothing.
	Width, Height int
	// Attach is the coordinate inside the footprint whose router survives
	// and serves as the block's network interface.
	Attach geom.Coord
}

// Contains reports whether c lies inside the tile footprint.
func (tl Tile) Contains(c geom.Coord) bool {
	return c.X >= tl.Origin.X && c.X < tl.Origin.X+tl.Width &&
		c.Y >= tl.Origin.Y && c.Y < tl.Origin.Y+tl.Height
}

// Validate checks the tile is well formed.
func (tl Tile) Validate() error {
	if tl.Width < 1 || tl.Height < 1 {
		return fmt.Errorf("topology: tile %v has non-positive size %dx%d", tl.Origin, tl.Width, tl.Height)
	}
	if !tl.Contains(tl.Attach) {
		return fmt.Errorf("topology: tile attach point %v outside footprint at %v (%dx%d)",
			tl.Attach, tl.Origin, tl.Width, tl.Height)
	}
	return nil
}

// PlaceTile carves a heterogeneous block out of the mesh: every router in
// the footprint except the attach point is disabled (design-time
// irregularity). Links between removed routers disappear implicitly.
func PlaceTile(t *Topology, tl Tile) error {
	if err := tl.Validate(); err != nil {
		return err
	}
	for y := tl.Origin.Y; y < tl.Origin.Y+tl.Height; y++ {
		for x := tl.Origin.X; x < tl.Origin.X+tl.Width; x++ {
			c := geom.Coord{X: x, Y: y}
			if !t.InBounds(c) {
				return fmt.Errorf("topology: tile at %v (%dx%d) extends outside %dx%d mesh",
					tl.Origin, tl.Width, tl.Height, t.Width(), t.Height())
			}
			if c != tl.Attach {
				t.DisableRouter(t.ID(c))
			}
		}
	}
	return nil
}

// HeterogeneousSoC builds a width×height mesh with the given macro tiles
// carved out, returning an error if any tile is malformed, out of bounds,
// or overlaps another.
func HeterogeneousSoC(width, height int, tiles []Tile) (*Topology, error) {
	t := NewMesh(width, height)
	for i, tl := range tiles {
		for j := 0; j < i; j++ {
			if tilesOverlap(tiles[j], tl) {
				return nil, fmt.Errorf("topology: tiles %d and %d overlap", j, i)
			}
		}
		if err := PlaceTile(t, tl); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func tilesOverlap(a, b Tile) bool {
	return a.Origin.X < b.Origin.X+b.Width && b.Origin.X < a.Origin.X+a.Width &&
		a.Origin.Y < b.Origin.Y+b.Height && b.Origin.Y < a.Origin.Y+a.Height
}
