package topology

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNewMeshBasics(t *testing.T) {
	m := NewMesh(8, 8)
	if m.NumNodes() != 64 {
		t.Fatalf("NumNodes = %d, want 64", m.NumNodes())
	}
	if m.AliveRouterCount() != 64 {
		t.Fatalf("AliveRouterCount = %d, want 64", m.AliveRouterCount())
	}
	// 8x8 mesh has 2*8*7 = 112 links.
	if got := m.AliveLinkCount(); got != 112 {
		t.Fatalf("AliveLinkCount = %d, want 112", got)
	}
}

func TestMeshLinkCountsVariousSizes(t *testing.T) {
	cases := []struct{ w, h, links int }{
		{1, 1, 0}, {2, 1, 1}, {1, 5, 4}, {2, 2, 4}, {4, 4, 24}, {16, 16, 480}, {3, 7, 32},
	}
	for _, c := range cases {
		m := NewMesh(c.w, c.h)
		if got := m.AliveLinkCount(); got != c.links {
			t.Errorf("%dx%d mesh: links = %d, want %d", c.w, c.h, got, c.links)
		}
		if got := MaxFaults(c.w, c.h, LinkFaults); got != c.links {
			t.Errorf("MaxFaults(%d,%d,links) = %d, want %d", c.w, c.h, got, c.links)
		}
		if got := MaxFaults(c.w, c.h, RouterFaults); got != c.w*c.h {
			t.Errorf("MaxFaults(%d,%d,routers) = %d, want %d", c.w, c.h, got, c.w*c.h)
		}
	}
}

func TestNewMeshPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 mesh")
		}
	}()
	NewMesh(0, 3)
}

func TestNeighbor(t *testing.T) {
	m := NewMesh(4, 4)
	center := m.ID(geom.Coord{X: 1, Y: 1})
	wants := map[geom.Direction]geom.Coord{
		geom.North: {X: 1, Y: 2}, geom.East: {X: 2, Y: 1},
		geom.South: {X: 1, Y: 0}, geom.West: {X: 0, Y: 1},
	}
	for d, c := range wants {
		if got := m.Neighbor(center, d); got != m.ID(c) {
			t.Errorf("Neighbor(%v) = %v, want %v", d, got, m.ID(c))
		}
	}
	corner := m.ID(geom.Coord{X: 0, Y: 0})
	if m.Neighbor(corner, geom.South) != geom.InvalidNode {
		t.Error("south of (0,0) should be off-mesh")
	}
	if m.Neighbor(corner, geom.West) != geom.InvalidNode {
		t.Error("west of (0,0) should be off-mesh")
	}
	if m.Neighbor(corner, geom.Local) != geom.InvalidNode {
		t.Error("Local is not a link direction")
	}
}

func TestDisableRouterKillsItsChannels(t *testing.T) {
	m := NewMesh(4, 4)
	n := m.ID(geom.Coord{X: 1, Y: 1})
	m.DisableRouter(n)
	if m.RouterAlive(n) {
		t.Fatal("router should be dead")
	}
	for _, d := range geom.LinkDirs {
		if m.HasLink(n, d) {
			t.Errorf("dead router still has outgoing channel %v", d)
		}
		nb := m.Neighbor(n, d)
		if m.HasLink(nb, d.Opposite()) {
			t.Errorf("neighbor %v still has channel into dead router", nb)
		}
	}
	m.EnableRouter(n)
	for _, d := range geom.LinkDirs {
		if !m.HasLink(n, d) {
			t.Errorf("re-enabled router missing channel %v", d)
		}
	}
}

func TestDisableLinkBidirectional(t *testing.T) {
	m := NewMesh(4, 4)
	a := m.ID(geom.Coord{X: 1, Y: 1})
	b := m.Neighbor(a, geom.East)
	m.DisableLink(a, geom.East)
	if m.HasLink(a, geom.East) || m.HasLink(b, geom.West) {
		t.Fatal("link should be dead in both directions")
	}
	if m.HasUndirectedLink(a, geom.East) {
		t.Fatal("undirected link should be dead")
	}
	m.EnableLink(a, geom.East)
	if !m.HasLink(a, geom.East) || !m.HasLink(b, geom.West) {
		t.Fatal("link should be restored in both directions")
	}
}

func TestDisableDirectedLink(t *testing.T) {
	m := NewMesh(4, 4)
	a := m.ID(geom.Coord{X: 1, Y: 1})
	b := m.Neighbor(a, geom.East)
	m.DisableDirectedLink(a, geom.East)
	if m.HasLink(a, geom.East) {
		t.Fatal("a→b channel should be dead")
	}
	if !m.HasLink(b, geom.West) {
		t.Fatal("b→a channel should survive a unidirectional fault")
	}
	if !m.HasUndirectedLink(a, geom.East) {
		t.Fatal("undirected link should survive while one direction works")
	}
}

func TestDisableLinkOffMeshIsNoop(t *testing.T) {
	m := NewMesh(3, 3)
	m.DisableLink(m.ID(geom.Coord{X: 0, Y: 0}), geom.West) // off-mesh
	if m.AliveLinkCount() != 12 {
		t.Fatal("off-mesh disable should not change link count")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMesh(4, 4)
	c := m.Clone()
	c.DisableRouter(0)
	c.DisableLink(5, geom.North)
	if !m.RouterAlive(0) {
		t.Fatal("clone mutation leaked into original (router)")
	}
	if !m.HasLink(5, geom.North) {
		t.Fatal("clone mutation leaked into original (link)")
	}
}

func TestConnectedComponentsWholeMesh(t *testing.T) {
	m := NewMesh(5, 5)
	comps := m.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 25 {
		t.Fatalf("healthy mesh components = %d sets, want 1 of 25", len(comps))
	}
}

func TestConnectedComponentsSplit(t *testing.T) {
	// Cut a 1x4 mesh in the middle: two components of 2.
	m := NewMesh(4, 1)
	m.DisableLink(1, geom.East)
	comps := m.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 {
		t.Fatalf("component sizes = %d,%d, want 2,2", len(comps[0]), len(comps[1]))
	}
	if m.Connected(0, 3) {
		t.Error("0 and 3 should be disconnected")
	}
	if !m.Connected(0, 1) {
		t.Error("0 and 1 should stay connected")
	}
}

func TestLargestComponent(t *testing.T) {
	m := NewMesh(4, 1)
	m.DisableLink(0, geom.East)
	lc := m.LargestComponent()
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
}

func TestBFSDistancesHealthyMesh(t *testing.T) {
	m := NewMesh(8, 8)
	src := m.ID(geom.Coord{X: 0, Y: 0})
	dist := m.BFSDistances(src)
	for id := 0; id < m.NumNodes(); id++ {
		c := m.Coord(geom.NodeID(id))
		want := geom.ManhattanDistance(geom.Coord{}, c)
		if dist[id] != want {
			t.Fatalf("dist to %v = %d, want %d", c, dist[id], want)
		}
	}
}

func TestBFSDistancesRespectFaults(t *testing.T) {
	// 3x1 line: kill middle router; ends unreachable from each other.
	m := NewMesh(3, 1)
	m.DisableRouter(1)
	dist := m.BFSDistances(0)
	if dist[2] != -1 {
		t.Fatalf("dist to far end = %d, want -1", dist[2])
	}
	if dist[1] != -1 {
		t.Fatalf("dist to dead router = %d, want -1", dist[1])
	}
}

func TestBFSFromDeadRouter(t *testing.T) {
	m := NewMesh(3, 3)
	m.DisableRouter(4)
	dist := m.BFSDistances(4)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("distances from a dead router must all be -1")
		}
	}
}

func TestReverseBFSMatchesForwardOnBidirectional(t *testing.T) {
	m := NewMesh(6, 6)
	rng := rand.New(rand.NewSource(7))
	RandomLinkFaults(m, rng, 8)
	for _, dst := range []geom.NodeID{0, 17, 35} {
		if !m.RouterAlive(dst) {
			continue
		}
		fwd := m.BFSDistances(dst) // symmetric topology: dist(dst,·)==dist(·,dst)
		rev := m.ReverseBFSDistances(dst)
		for id := range fwd {
			if fwd[id] != rev[id] {
				t.Fatalf("dst %d node %d: forward %d != reverse %d", dst, id, fwd[id], rev[id])
			}
		}
	}
}

func TestReverseBFSWithUnidirectionalFault(t *testing.T) {
	// 2x1: kill 0→1 direction only. 0 can still be reached from... 1→0 works.
	m := NewMesh(2, 1)
	m.DisableDirectedLink(0, geom.East)
	rev := m.ReverseBFSDistances(1)
	if rev[0] != -1 {
		t.Fatalf("node 0 should not reach node 1 (channel dead), got %d", rev[0])
	}
	rev0 := m.ReverseBFSDistances(0)
	if rev0[1] != 1 {
		t.Fatalf("node 1 should reach node 0 in 1 hop, got %d", rev0[1])
	}
}

func TestHasTopologyCycle(t *testing.T) {
	if NewMesh(1, 8).HasTopologyCycle() {
		t.Error("a line has no cycle")
	}
	if !NewMesh(2, 2).HasTopologyCycle() {
		t.Error("2x2 mesh is a 4-cycle")
	}
	m := NewMesh(2, 2)
	m.DisableLink(0, geom.East)
	if m.HasTopologyCycle() {
		t.Error("2x2 minus one link is a tree")
	}
}

func TestNoUTurnCycleMatchesTopologyCycleOnMeshes(t *testing.T) {
	// For mesh-derived topologies with bidirectional channels, an
	// undirected cycle exists iff a no-U-turn directed cycle exists
	// (mesh girth is 4, so every undirected cycle is U-turn free).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := NewMesh(6, 6)
		RandomLinkFaults(m, rng, rng.Intn(50))
		RandomRouterFaults(m, rng, rng.Intn(10))
		a, b := m.HasTopologyCycle(), m.HasNoUTurnCycle()
		if a != b {
			t.Fatalf("trial %d: HasTopologyCycle=%v but HasNoUTurnCycle=%v for %v", trial, a, b, m)
		}
	}
}

func TestNoUTurnCycleExcluding(t *testing.T) {
	// 3x3 mesh: the 8-node ring around the center is a cycle avoiding the
	// center; excluding any single ring node still leaves the 4-cycles.
	m := NewMesh(3, 3)
	center := m.ID(geom.Coord{X: 1, Y: 1})
	if !m.HasNoUTurnCycleExcluding(func(n geom.NodeID) bool { return n == center }) {
		t.Error("outer ring cycle should survive excluding the center")
	}
	// Excluding all four edge-midpoint nodes leaves only corners+center:
	// a star with no cycles.
	mid := map[geom.NodeID]bool{
		m.ID(geom.Coord{X: 1, Y: 0}): true, m.ID(geom.Coord{X: 0, Y: 1}): true,
		m.ID(geom.Coord{X: 2, Y: 1}): true, m.ID(geom.Coord{X: 1, Y: 2}): true,
	}
	if m.HasNoUTurnCycleExcluding(func(n geom.NodeID) bool { return mid[n] }) {
		t.Error("no cycle should survive excluding all edge midpoints of 3x3")
	}
}

func TestFindNoUTurnCycleProducesValidCycle(t *testing.T) {
	m := NewMesh(4, 4)
	cyc := m.FindNoUTurnCycle(nil)
	if cyc == nil {
		t.Fatal("healthy 4x4 mesh must contain a cycle")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("cycle not closed: %v", cyc)
	}
	if len(cyc) < 5 {
		t.Fatalf("mesh cycle must have at least 4 hops, got %v", cyc)
	}
	// Validate adjacency and the no-U-turn property.
	var prev geom.Direction = geom.Invalid
	for i := 0; i+1 < len(cyc); i++ {
		d := geom.DirectionBetween(m.Coord(cyc[i]), m.Coord(cyc[i+1]))
		if d == geom.Invalid {
			t.Fatalf("cycle step %d: %v and %v not adjacent", i, cyc[i], cyc[i+1])
		}
		if !m.HasLink(cyc[i], d) {
			t.Fatalf("cycle uses dead channel %v→%v", cyc[i], cyc[i+1])
		}
		if prev != geom.Invalid && d == prev.Opposite() {
			t.Fatalf("cycle takes a U-turn at step %d", i)
		}
		prev = d
	}
}

func TestFindNoUTurnCycleNilOnTree(t *testing.T) {
	m := NewMesh(5, 1)
	if cyc := m.FindNoUTurnCycle(nil); cyc != nil {
		t.Fatalf("line topology returned cycle %v", cyc)
	}
}

func TestRandomLinkFaultsExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMesh(8, 8)
	removed := RandomLinkFaults(m, rng, 20)
	if len(removed) != 20 {
		t.Fatalf("removed %d links, want 20", len(removed))
	}
	if got := m.AliveLinkCount(); got != 92 {
		t.Fatalf("AliveLinkCount = %d, want 92", got)
	}
	seen := map[UndirectedLink]bool{}
	for _, l := range removed {
		if seen[l] {
			t.Fatalf("duplicate fault %v", l)
		}
		seen[l] = true
	}
}

func TestRandomRouterFaultsExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMesh(8, 8)
	removed := RandomRouterFaults(m, rng, 10)
	if len(removed) != 10 {
		t.Fatalf("removed %d routers, want 10", len(removed))
	}
	if got := m.AliveRouterCount(); got != 54 {
		t.Fatalf("AliveRouterCount = %d, want 54", got)
	}
}

func TestRandomFaultsPanicWhenTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomLinkFaults(NewMesh(2, 2), rand.New(rand.NewSource(3)), 5)
}

func TestRandomIrregularDeterministic(t *testing.T) {
	a := RandomIrregular(8, 8, LinkFaults, 15, 99)
	b := RandomIrregular(8, 8, LinkFaults, 15, 99)
	for id := 0; id < a.NumNodes(); id++ {
		n := geom.NodeID(id)
		for _, d := range geom.LinkDirs {
			if a.HasLink(n, d) != b.HasLink(n, d) {
				t.Fatal("same seed produced different topologies")
			}
		}
	}
	c := RandomIrregular(8, 8, LinkFaults, 15, 100)
	same := true
	for id := 0; id < a.NumNodes() && same; id++ {
		n := geom.NodeID(id)
		for _, d := range geom.LinkDirs {
			if a.HasLink(n, d) != c.HasLink(n, d) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical topologies (suspicious)")
	}
}

func TestFaultKindString(t *testing.T) {
	if LinkFaults.String() != "links" || RouterFaults.String() != "routers" {
		t.Error("unexpected FaultKind strings")
	}
}

func TestHeterogeneousSoC(t *testing.T) {
	tiles := []Tile{
		{Origin: geom.Coord{X: 0, Y: 0}, Width: 2, Height: 2, Attach: geom.Coord{X: 0, Y: 0}},
		{Origin: geom.Coord{X: 5, Y: 5}, Width: 3, Height: 2, Attach: geom.Coord{X: 6, Y: 5}},
	}
	m, err := HeterogeneousSoC(8, 8, tiles)
	if err != nil {
		t.Fatal(err)
	}
	// Tile 1 removes 3 routers, tile 2 removes 5.
	if got := m.AliveRouterCount(); got != 64-8 {
		t.Fatalf("alive routers = %d, want 56", got)
	}
	if !m.RouterAlive(m.ID(geom.Coord{X: 0, Y: 0})) {
		t.Error("attach router of tile 1 must survive")
	}
	if m.RouterAlive(m.ID(geom.Coord{X: 1, Y: 1})) {
		t.Error("interior router of tile 1 must be removed")
	}
	if !m.RouterAlive(m.ID(geom.Coord{X: 6, Y: 5})) {
		t.Error("attach router of tile 2 must survive")
	}
}

func TestHeterogeneousSoCRejectsOverlap(t *testing.T) {
	tiles := []Tile{
		{Origin: geom.Coord{X: 0, Y: 0}, Width: 3, Height: 3, Attach: geom.Coord{X: 0, Y: 0}},
		{Origin: geom.Coord{X: 2, Y: 2}, Width: 2, Height: 2, Attach: geom.Coord{X: 2, Y: 2}},
	}
	if _, err := HeterogeneousSoC(8, 8, tiles); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestHeterogeneousSoCRejectsOutOfBounds(t *testing.T) {
	tiles := []Tile{
		{Origin: geom.Coord{X: 7, Y: 7}, Width: 2, Height: 2, Attach: geom.Coord{X: 7, Y: 7}},
	}
	if _, err := HeterogeneousSoC(8, 8, tiles); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestTileValidate(t *testing.T) {
	bad := Tile{Origin: geom.Coord{X: 0, Y: 0}, Width: 0, Height: 2, Attach: geom.Coord{X: 0, Y: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-width tile should fail validation")
	}
	badAttach := Tile{Origin: geom.Coord{X: 0, Y: 0}, Width: 2, Height: 2, Attach: geom.Coord{X: 5, Y: 5}}
	if err := badAttach.Validate(); err == nil {
		t.Error("attach outside footprint should fail validation")
	}
}

func TestDegree(t *testing.T) {
	m := NewMesh(3, 3)
	if got := m.Degree(m.ID(geom.Coord{X: 1, Y: 1})); got != 4 {
		t.Errorf("center degree = %d, want 4", got)
	}
	if got := m.Degree(m.ID(geom.Coord{X: 0, Y: 0})); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	m.DisableLink(m.ID(geom.Coord{X: 1, Y: 1}), geom.North)
	if got := m.Degree(m.ID(geom.Coord{X: 1, Y: 1})); got != 3 {
		t.Errorf("center degree after fault = %d, want 3", got)
	}
}

func TestStringDescribes(t *testing.T) {
	m := NewMesh(2, 2)
	if m.String() != "Topology(2x2, 4/4 routers, 4 links)" {
		t.Errorf("String() = %q", m.String())
	}
}
