package topology

import (
	"repro/internal/geom"
)

// ConnectedComponents returns the alive routers grouped into undirected
// connected components (a link counts if usable in either direction),
// each sorted ascending, components ordered by their smallest member.
func (t *Topology) ConnectedComponents() [][]geom.NodeID {
	seen := make([]bool, t.NumNodes())
	var comps [][]geom.NodeID
	for id := 0; id < t.NumNodes(); id++ {
		n := geom.NodeID(id)
		if seen[id] || !t.RouterAlive(n) {
			continue
		}
		comp := []geom.NodeID{n}
		seen[id] = true
		for i := 0; i < len(comp); i++ {
			cur := comp[i]
			for _, d := range geom.LinkDirs {
				if !t.HasUndirectedLink(cur, d) {
					continue
				}
				nb := t.Neighbor(cur, d)
				if nb != geom.InvalidNode && t.RouterAlive(nb) && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the connected component with the most routers
// (ties broken by smallest member id), or nil if no routers are alive.
func (t *Topology) LargestComponent() []geom.NodeID {
	var best []geom.NodeID
	for _, c := range t.ConnectedComponents() {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// Connected reports whether a usable path (following directed channels)
// exists from a to b.
func (t *Topology) Connected(a, b geom.NodeID) bool {
	if !t.RouterAlive(a) || !t.RouterAlive(b) {
		return false
	}
	d := t.BFSDistances(a)
	return d[b] >= 0
}

// BFSDistances returns directed-hop distances from src to every node;
// unreachable or dead nodes get -1.
func (t *Topology) BFSDistances(src geom.NodeID) []int {
	dist := make([]int, t.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if !t.RouterAlive(src) {
		return dist
	}
	dist[src] = 0
	// Index cursor, not queue = queue[1:]: re-slicing would pin the whole
	// backing array alive for the life of the (cached) result.
	queue := []geom.NodeID{src}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, d := range geom.LinkDirs {
			if !t.HasLink(cur, d) {
				continue
			}
			nb := t.Neighbor(cur, d)
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// ReverseBFSDistances returns, for every node n, the directed-hop distance
// from n to dst (following channel directions), or -1 if unreachable.
func (t *Topology) ReverseBFSDistances(dst geom.NodeID) []int {
	dist := make([]int, t.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if !t.RouterAlive(dst) {
		return dist
	}
	dist[dst] = 0
	queue := []geom.NodeID{dst}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		// Predecessors of cur: nodes nb with a usable channel nb→cur.
		for _, d := range geom.LinkDirs {
			nb := t.Neighbor(cur, d)
			if nb == geom.InvalidNode || !t.HasLink(nb, d.Opposite()) {
				continue
			}
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// HasTopologyCycle reports whether the undirected alive graph contains a
// cycle. This is the paper's Fig. 2 "deadlock-prone" criterion: a topology
// with no cycle cannot form a cyclic buffer dependency, while one with a
// cycle can (minimal adaptive routing will eventually exercise it).
//
// An undirected graph has a cycle iff edges > nodes − components.
func (t *Topology) HasTopologyCycle() bool {
	nodes := t.AliveRouterCount()
	edges := t.AliveLinkCount()
	comps := len(t.ConnectedComponents())
	return edges > nodes-comps
}

// channelState is a node entered with a given heading; the vertices of the
// no-U-turn channel-dependency reachability graph.
type channelState struct {
	node    geom.NodeID
	heading geom.Direction
}

// HasNoUTurnCycleExcluding reports whether the directed channel graph
// contains a cycle that (a) never takes a 180° turn and (b) avoids every
// node for which exclude returns true. With a nil exclude it reports
// whether any potential cyclic buffer-dependency chain exists at all.
//
// This is the structure quantified by the static-bubble coverage lemma:
// placement is correct iff no such cycle survives when the SB routers are
// excluded.
func (t *Topology) HasNoUTurnCycleExcluding(exclude func(geom.NodeID) bool) bool {
	const (
		white = 0 // unvisited
		gray  = 1 // on DFS stack
		black = 2 // done
	)
	color := make(map[channelState]int8)

	allowed := func(n geom.NodeID) bool {
		return t.RouterAlive(n) && (exclude == nil || !exclude(n))
	}

	// Iterative DFS over (node, heading) states. A gray-state revisit is a
	// directed cycle; since transitions forbid heading reversal, the cycle
	// is a no-U-turn closed walk in the topology.
	type frame struct {
		st      channelState
		nextDir int
	}
	var stack []frame

	visit := func(start channelState) bool {
		if color[start] != white {
			return false
		}
		stack = stack[:0]
		color[start] = gray
		stack = append(stack, frame{start, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.nextDir < geom.NumLinkDirs {
				d := geom.LinkDirs[f.nextDir]
				f.nextDir++
				if d == f.st.heading.Opposite() {
					continue // no U-turns
				}
				if !t.HasLink(f.st.node, d) {
					continue
				}
				nb := t.Neighbor(f.st.node, d)
				if !allowed(nb) {
					continue
				}
				next := channelState{nb, d}
				switch color[next] {
				case gray:
					return true
				case white:
					color[next] = gray
					stack = append(stack, frame{next, 0})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.st] = black
				stack = stack[:len(stack)-1]
			}
		}
		return false
	}

	for id := 0; id < t.NumNodes(); id++ {
		n := geom.NodeID(id)
		if !allowed(n) {
			continue
		}
		for _, d := range geom.LinkDirs {
			// A state (n, d) is enterable if some allowed predecessor has a
			// channel into n with heading d.
			pred := t.Neighbor(n, d.Opposite())
			if pred == geom.InvalidNode || !allowed(pred) || !t.HasLink(pred, d) {
				continue
			}
			if visit(channelState{n, d}) {
				return true
			}
		}
	}
	return false
}

// HasNoUTurnCycle reports whether any no-U-turn directed cycle exists in
// the alive channel graph.
func (t *Topology) HasNoUTurnCycle() bool {
	return t.HasNoUTurnCycleExcluding(nil)
}

// FindNoUTurnCycle returns one no-U-turn directed cycle avoiding excluded
// nodes, as the sequence of nodes visited (first node repeated at the
// end), or nil if none exists. Used by tests to produce counterexamples.
func (t *Topology) FindNoUTurnCycle(exclude func(geom.NodeID) bool) []geom.NodeID {
	allowed := func(n geom.NodeID) bool {
		return t.RouterAlive(n) && (exclude == nil || !exclude(n))
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[channelState]int8)
	var path []channelState

	var dfs func(st channelState) []geom.NodeID
	dfs = func(st channelState) []geom.NodeID {
		color[st] = gray
		path = append(path, st)
		for _, d := range geom.LinkDirs {
			if d == st.heading.Opposite() || !t.HasLink(st.node, d) {
				continue
			}
			nb := t.Neighbor(st.node, d)
			if !allowed(nb) {
				continue
			}
			next := channelState{nb, d}
			switch color[next] {
			case gray:
				// Extract cycle from path.
				var cyc []geom.NodeID
				start := -1
				for i, p := range path {
					if p == next {
						start = i
						break
					}
				}
				for _, p := range path[start:] {
					cyc = append(cyc, p.node)
				}
				cyc = append(cyc, next.node)
				return cyc
			case white:
				if cyc := dfs(next); cyc != nil {
					return cyc
				}
			}
		}
		color[st] = black
		path = path[:len(path)-1]
		return nil
	}

	for id := 0; id < t.NumNodes(); id++ {
		n := geom.NodeID(id)
		if !allowed(n) {
			continue
		}
		for _, d := range geom.LinkDirs {
			pred := t.Neighbor(n, d.Opposite())
			if pred == geom.InvalidNode || !allowed(pred) || !t.HasLink(pred, d) {
				continue
			}
			st := channelState{n, d}
			if color[st] == white {
				path = path[:0]
				if cyc := dfs(st); cyc != nil {
					return cyc
				}
			}
		}
	}
	return nil
}
