package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// RandomLinkFaults disables k distinct alive links chosen uniformly at
// random (bidirectionally), matching the random fault model of the
// paper's evaluation (Section V-A). It returns the links removed.
// It panics if fewer than k alive links exist.
func RandomLinkFaults(t *Topology, rng *rand.Rand, k int) []UndirectedLink {
	links := t.AliveUndirectedLinks()
	if k > len(links) {
		panic(fmt.Sprintf("topology: cannot inject %d link faults, only %d links alive", k, len(links)))
	}
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	picked := links[:k]
	for _, l := range picked {
		t.DisableLink(l.From, l.Dir)
	}
	return picked
}

// RandomRouterFaults disables k distinct alive routers chosen uniformly at
// random. It returns the routers removed. It panics if fewer than k alive
// routers exist.
func RandomRouterFaults(t *Topology, rng *rand.Rand, k int) []geom.NodeID {
	routers := t.AliveRouters()
	if k > len(routers) {
		panic(fmt.Sprintf("topology: cannot inject %d router faults, only %d routers alive", k, len(routers)))
	}
	rng.Shuffle(len(routers), func(i, j int) { routers[i], routers[j] = routers[j], routers[i] })
	picked := routers[:k]
	for _, n := range picked {
		t.DisableRouter(n)
	}
	return picked
}

// FaultKind selects which component class a random fault sweep removes.
type FaultKind int

// The two fault classes swept in the paper's evaluation.
const (
	LinkFaults FaultKind = iota
	RouterFaults
)

func (k FaultKind) String() string {
	if k == LinkFaults {
		return "links"
	}
	return "routers"
}

// RandomIrregular builds a width×height mesh with k random faults of the
// given kind, seeded deterministically. This is the topology-space
// sampler used by every experiment sweep.
func RandomIrregular(width, height int, kind FaultKind, k int, seed int64) *Topology {
	t := NewMesh(width, height)
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case LinkFaults:
		RandomLinkFaults(t, rng, k)
	case RouterFaults:
		RandomRouterFaults(t, rng, k)
	}
	return t
}

// MaxFaults returns how many faults of the given kind a healthy
// width×height mesh can absorb (total link or router count).
func MaxFaults(width, height int, kind FaultKind) int {
	if kind == LinkFaults {
		return width*(height-1) + height*(width-1)
	}
	return width * height
}
