package topology

import (
	"testing"

	"repro/internal/geom"
)

// TestFlattenMatchesTopology: the CSR-style snapshot must agree with the
// live accessors on liveness, usable channels, and geometric adjacency
// for every (node, direction).
func TestFlattenMatchesTopology(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"mesh":     NewMesh(6, 6),
		"links":    RandomIrregular(8, 8, LinkFaults, 20, 13),
		"routers":  RandomIrregular(8, 8, RouterFaults, 9, 13),
		"tiny":     NewMesh(1, 1),
		"degraded": RandomIrregular(5, 5, LinkFaults, 24, 1),
	} {
		t.Run(name, func(t *testing.T) {
			g := topo.Flatten()
			if g.N != topo.NumNodes() || g.W != topo.Width() || g.H != topo.Height() {
				t.Fatalf("dims: got %dx%d (N=%d), want %dx%d (N=%d)",
					g.W, g.H, g.N, topo.Width(), topo.Height(), topo.NumNodes())
			}
			for id := 0; id < g.N; id++ {
				n := geom.NodeID(id)
				if g.Alive[id] != topo.RouterAlive(n) {
					t.Fatalf("Alive[%v] = %v, topology says %v", n, g.Alive[id], topo.RouterAlive(n))
				}
				for i, d := range geom.LinkDirs {
					geo := topo.Neighbor(n, d)
					adj := g.Adj[geom.NumLinkDirs*id+i]
					if (geo == geom.InvalidNode) != (adj < 0) || (adj >= 0 && geom.NodeID(adj) != geo) {
						t.Fatalf("Adj[%v,%v] = %d, Neighbor = %v", n, d, adj, geo)
					}
					next := g.Next[geom.NumLinkDirs*id+i]
					hasLink := topo.HasLink(n, d)
					if hasLink != (next >= 0) {
						t.Fatalf("Next[%v,%v] = %d, HasLink = %v", n, d, next, hasLink)
					}
					if hasLink && geom.NodeID(next) != geo {
						t.Fatalf("Next[%v,%v] = %d, Neighbor = %v", n, d, next, geo)
					}
					if hasLink != (g.LinkMask[id]&(1<<uint(i)) != 0) {
						t.Fatalf("LinkMask[%v] bit %d disagrees with HasLink(%v)", n, i, d)
					}
					if nb := g.NeighborOf(n, d); (hasLink && nb != geo) || (!hasLink && nb != geom.InvalidNode) {
						t.Fatalf("NeighborOf(%v,%v) = %v", n, d, nb)
					}
				}
			}
			if g.Bytes() <= 0 {
				t.Fatal("Bytes() reported nothing")
			}
		})
	}
}

// TestFingerprint: equal content (clones, identically resampled
// topologies) fingerprints equal; any liveness mutation changes it; the
// rendering is short hex.
func TestFingerprint(t *testing.T) {
	a := RandomIrregular(8, 8, LinkFaults, 15, 99)
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	if a.Fingerprint() != RandomIrregular(8, 8, LinkFaults, 15, 99).Fingerprint() {
		t.Fatal("identically sampled topology fingerprint differs")
	}
	if a.Fingerprint() == RandomIrregular(8, 8, LinkFaults, 15, 100).Fingerprint() {
		t.Fatal("different sample collided")
	}
	if a.Fingerprint() == RandomIrregular(8, 8, RouterFaults, 15, 99).Fingerprint() {
		t.Fatal("different fault kind collided")
	}

	link := a.Clone()
	link.DisableLink(link.AliveRouters()[0], firstUsableDir(link))
	if link.Fingerprint() == a.Fingerprint() {
		t.Fatal("link fault did not change the fingerprint")
	}
	router := a.Clone()
	router.DisableRouter(router.AliveRouters()[0])
	if router.Fingerprint() == a.Fingerprint() {
		t.Fatal("router fault did not change the fingerprint")
	}
	// Dimensions participate: a 4x2 and a 2x4 mesh have the same byte
	// count but different shapes.
	if NewMesh(4, 2).Fingerprint() == NewMesh(2, 4).Fingerprint() {
		t.Fatal("transposed meshes collided")
	}

	if s := a.Fingerprint().String(); len(s) != 16 {
		t.Fatalf("fingerprint rendering %q, want 16 hex chars", s)
	}
}

func firstUsableDir(t *Topology) geom.Direction {
	n := t.AliveRouters()[0]
	for _, d := range geom.LinkDirs {
		if t.HasLink(n, d) {
			return d
		}
	}
	panic("no usable link")
}
