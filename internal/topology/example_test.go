package topology_test

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// Deriving an irregular topology from the mesh substrate, as failures or
// power-gating would at runtime.
func ExampleNewMesh() {
	t := topology.NewMesh(8, 8)
	fmt.Println(t)
	topology.RandomLinkFaults(t, rand.New(rand.NewSource(1)), 10)
	t.DisableRouter(t.ID(geom.Coord{X: 3, Y: 3}))
	fmt.Println(t)
	fmt.Println("still deadlock-prone:", t.HasTopologyCycle())
	// Output:
	// Topology(8x8, 64/64 routers, 112 links)
	// Topology(8x8, 63/64 routers, 98 links)
	// still deadlock-prone: true
}

// Design-time heterogeneity: carving accelerator tiles out of the mesh
// (paper Fig. 1a).
func ExampleHeterogeneousSoC() {
	t, err := topology.HeterogeneousSoC(8, 8, []topology.Tile{
		{Origin: geom.Coord{X: 0, Y: 5}, Width: 2, Height: 2, Attach: geom.Coord{X: 1, Y: 5}},
		{Origin: geom.Coord{X: 4, Y: 0}, Width: 3, Height: 2, Attach: geom.Coord{X: 4, Y: 1}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("routers:", t.AliveRouterCount())
	fmt.Println("components:", len(t.ConnectedComponents()))
	// Output:
	// routers: 56
	// components: 1
}
