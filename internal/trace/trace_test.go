package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestRecorderBasics(t *testing.T) {
	r := New(8)
	hook := r.Hook()
	for i := 0; i < 5; i++ {
		hook(int64(i), geom.NodeID(i%2), "send probe")
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.Count("send") != 5 {
		t.Fatalf("count(send) = %d", r.Count("send"))
	}
	evs := r.Events()
	if len(evs) != 5 || evs[0].Cycle != 0 || evs[4].Cycle != 4 {
		t.Fatalf("events = %v", evs)
	}
}

func TestRecorderWrapsKeepingMostRecent(t *testing.T) {
	r := New(4)
	hook := r.Hook()
	for i := 0; i < 10; i++ {
		hook(int64(i), 0, "e")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(6+i) {
			t.Fatalf("chronology broken: %v", evs)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRecorderFilter(t *testing.T) {
	r := New(16)
	hook := r.Hook()
	hook(1, 3, "fence set in=N out=E src=9")
	hook(2, 4, "fence cleared by enable(src=9)")
	hook(3, 3, "send probe out=W")
	if got := len(r.Filter(3, "")); got != 2 {
		t.Fatalf("node filter = %d", got)
	}
	if got := len(r.Filter(-1, "fence")); got != 2 {
		t.Fatalf("substr filter = %d", got)
	}
	if got := len(r.Filter(3, "fence")); got != 1 {
		t.Fatalf("combined filter = %d", got)
	}
}

func TestRecorderDumpAndSummary(t *testing.T) {
	r := New(16)
	hook := r.Hook()
	hook(7, 2, "send enable out=S")
	var buf bytes.Buffer
	r.Dump(&buf)
	if !strings.Contains(buf.String(), "[7] R2: send enable out=S") {
		t.Fatalf("dump = %q", buf.String())
	}
	buf.Reset()
	r.Summary(&buf)
	if !strings.Contains(buf.String(), "send") || !strings.Contains(buf.String(), "1 events") {
		t.Fatalf("summary = %q", buf.String())
	}
}

func TestRecorderCapturesRealRecovery(t *testing.T) {
	rec := New(0) // default capacity
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{TDD: 20, Trace: rec.Hook()})
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := topo.Neighbor(mid, d2)
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
	}
	s.Run(20000)
	if rec.Total() == 0 {
		t.Fatal("no events recorded")
	}
	if len(rec.Filter(-1, "recovery started")) == 0 {
		t.Fatal("recovery start not captured")
	}
	if len(rec.Filter(-1, "enable returned")) == 0 {
		t.Fatal("recovery completion not captured")
	}
	if rec.Count("send") == 0 {
		t.Fatal("send counter empty")
	}
}
