// Package trace records recovery-protocol and simulator events for
// debugging and post-mortem analysis. It productizes the instrumentation
// used to harden the recovery protocol (DESIGN.md §6): a bounded ring
// buffer of structured events, filterable dumps, and per-event-kind
// counters.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// Event is one recorded protocol event.
type Event struct {
	Cycle int64
	Node  geom.NodeID
	Text  string
}

func (e Event) String() string {
	return fmt.Sprintf("[%d] R%d: %s", e.Cycle, e.Node, e.Text)
}

// Recorder is a bounded in-memory event log. Attach its Hook to
// core.Options.Trace. The zero value is unusable; construct with New.
type Recorder struct {
	events []Event
	// next is the write position once the buffer has wrapped.
	next    int
	wrapped bool
	cap     int
	total   int64
	// counts aggregates events by their leading word ("send", "probe",
	// "fence", ...).
	counts map[string]int64
}

// New builds a recorder keeping the most recent capacity events.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{
		events: make([]Event, 0, capacity),
		cap:    capacity,
		counts: make(map[string]int64),
	}
}

// Hook returns the callback to install as core.Options.Trace.
func (r *Recorder) Hook() func(now int64, node geom.NodeID, event string) {
	return func(now int64, node geom.NodeID, event string) {
		r.record(Event{Cycle: now, Node: node, Text: event})
	}
}

func (r *Recorder) record(e Event) {
	r.total++
	if key, _, ok := strings.Cut(e.Text, " "); ok {
		r.counts[strings.TrimSuffix(key, ":")]++
	} else {
		r.counts[e.Text]++
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % r.cap
	r.wrapped = true
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() int64 { return r.total }

// Count returns the number of events whose first word matched key.
func (r *Recorder) Count(key string) int64 { return r.counts[key] }

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns retained events matching the node (or any node when
// node < 0) and containing substr (or all when empty).
func (r *Recorder) Filter(node geom.NodeID, substr string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if node >= 0 && e.Node != node {
			continue
		}
		if substr != "" && !strings.Contains(e.Text, substr) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes retained events to w, most recent last.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// Summary writes the per-kind counters to w in deterministic order.
func (r *Recorder) Summary(w io.Writer) {
	keys := make([]string, 0, len(r.counts))
	for k := range r.counts {
		keys = append(keys, k)
	}
	// Insertion sort: the key set is tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	fmt.Fprintf(w, "trace: %d events (%d retained)\n", r.total, len(r.events))
	for _, k := range keys {
		fmt.Fprintf(w, "  %-14s %d\n", k, r.counts[k])
	}
}

// Verify the hook signature stays compatible with core.Options.
var _ = core.Options{Trace: New(1).Hook()}
