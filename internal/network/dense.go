package network

// The dense saturation stepper. The event scheduler (sched.go) makes
// quiescent routers free, but at saturation every router is active
// every cycle and the wheel is pure overhead: each busy router pays a
// collect-due drain, one to three wake pushes, and the allocGather
// bucket machinery — per cycle, forever. BENCH_sim.json showed the
// event core at or below parity with the naive full scan in that
// regime. Dense mode removes the overhead instead of amortizing it:
//
//   - The active set is rebuilt each cycle as a flat ascending sweep
//     over the struct-of-arrays activity counters (occ[id] != 0, or a
//     non-empty NI aggregate niPend[id]) — no wheel, no wake
//     bookkeeping. Wakes are suppressed for the whole dense period
//     (scheduler.suspended) and the invariant is restored on exit with
//     a reset + WakeAll (see exitDense).
//   - The allocation phase runs as a fused single pass per router
//     (denseAllocNode): candidate heads fold into per-output uint64
//     desire masks (candidate index in*slots+sl, the bubble at bit
//     `total`), round-robin arbitration walks the mask cyclically from
//     saPtr with TrailingZeros64, and downstream buffer availability is
//     memoized per (output, vnet) instead of re-scanned per candidate —
//     the dominant cost of gatherAllocate under congestion. The winner
//     moves through the very same tryGrant the sparse commit uses.
//   - Injection and bubble transfer reuse the sequential primitives
//     unchanged (they are cheap; only their wake calls are suppressed).
//
// Byte-identity argument. A dense cycle is the refmodel full scan with
// provably inert visits skipped: the active set is built after the
// PreCycle hooks, and a router outside it has occ==0 and empty NI rings
// at that instant, so the full scan's InjectNode there is a no-op (no
// queued packets) and its AllocateNode/TransferBubbleNode can only be
// reached by a packet *arriving* later in the same cycle from an
// earlier-id router — a packet whose ReadyAt lies in the future, for
// which both primitives do nothing but schedule a wake (suppressed).
// Phase order (all injects, then all allocations, then all bubble
// transfers, ascending id within each) matches the sequential core
// exactly. denseAllocNode itself is gatherAllocate+commitAllocate with
// the bucket indirection removed: the mask holds exactly the gather's
// candidate set (same fence, liveness, readiness and output filters, in
// the same ascending candidate order), the cyclic mask walk visits
// candidates in the same order commitAllocate's rotate-and-scan does,
// the memoized free-slot answer equals tryGrant's own re-scan (no
// mutation can intervene: within one router's pass each output port
// targets a distinct neighbor), and a candidate is skipped exactly when
// tryGrant would have returned false. The fused path is gated on no
// VCFilter/GrantFilter/OutputOverride/OnGrant being installed (each may
// consult per-packet or mid-phase state the fused pass does not
// reproduce); with any of them present the dense sweep calls the
// regular AllocateNode per active router and remains byte-identical by
// construction. The differential harness proves all of this cycle-exact
// against the refmodel with dense mode forced on, forced off, and
// hysteretic, at every shard count.
//
// Mode switching is hysteretic so a workload hovering at the threshold
// cannot flap: entering requires the due fraction to sit at or above
// denseEnterFrac for denseStreak consecutive sparse cycles, leaving
// requires the active fraction to drop below denseExitFrac (well under
// the entry threshold) for denseStreak consecutive dense cycles. Any
// activity level inside (denseExitFrac, denseEnterFrac) sustains
// whichever mode is current, so one workload transition costs at most
// one mode transition (TestDenseHysteresisNoFlap pins this down).
// Density is execution configuration like Shards: it never changes
// results, only speed, and StepperCounters exposes what ran.

import (
	"math/bits"

	"repro/internal/geom"
)

// DenseMode selects the stepper's density policy: the hysteretic
// automatic switch (default), or either mode pinned for tests,
// benchmarks and differential runs.
type DenseMode int

const (
	// DenseAuto lets the hysteretic activity policy pick the stepper.
	DenseAuto DenseMode = iota
	// DenseForcedOff pins the sparse event-driven stepper.
	DenseForcedOff
	// DenseForcedOn pins the dense full-sweep stepper.
	DenseForcedOn
)

// Dense policy defaults. Entry watches the sparse due count (the wheel
// already knows it); exit watches the dense active count (the bitmap
// popcount). The exit threshold sits well below the entry threshold so
// activity noise at either boundary cannot oscillate the mode.
const (
	denseEnterFrac = 0.35
	denseExitFrac  = 0.15
	denseStreak    = 8
)

// densePolicy is the hysteretic mode controller. It is plain state —
// observe methods are called once per cycle from the stepper — and is
// kept free of Sim dependencies so the hysteresis contract is unit
// testable on its own.
type densePolicy struct {
	mode DenseMode
	// on is the current stepper: true while dense.
	on bool
	// enterStreak / exitStreak count consecutive cycles beyond the
	// respective threshold; a cycle inside the hysteresis band resets
	// them.
	enterStreak int
	exitStreak  int
}

// observeSparse records a sparse cycle's due-set size and reports
// whether the stepper should switch to dense.
func (p *densePolicy) observeSparse(due, total int) bool {
	if p.mode != DenseAuto || total == 0 {
		return false
	}
	if float64(due) >= denseEnterFrac*float64(total) {
		p.enterStreak++
	} else {
		p.enterStreak = 0
	}
	if p.enterStreak >= denseStreak {
		p.enterStreak = 0
		return true
	}
	return false
}

// observeDense records a dense cycle's active-set size and reports
// whether the stepper should switch back to sparse.
func (p *densePolicy) observeDense(active, total int) bool {
	if p.mode != DenseAuto || total == 0 {
		return false
	}
	if float64(active) < denseExitFrac*float64(total) {
		p.exitStreak++
	} else {
		p.exitStreak = 0
	}
	if p.exitStreak >= denseStreak {
		p.exitStreak = 0
		return true
	}
	return false
}

// SetDenseMode selects the density policy. Forcing a mode applies
// immediately (between Steps); returning to DenseAuto keeps the current
// stepper and lets the activity policy take over. Like Shards, the mode
// is execution configuration: results are byte-identical under every
// policy, so this is a performance knob, not a simulation parameter.
func (s *Sim) SetDenseMode(m DenseMode) {
	s.dense.mode = m
	s.dense.enterStreak, s.dense.exitStreak = 0, 0
	switch {
	case m == DenseForcedOn && !s.dense.on:
		s.enterDense()
	case m == DenseForcedOff && s.dense.on:
		s.exitDense()
	}
}

// DenseActive reports whether the dense stepper is currently selected.
func (s *Sim) DenseActive() bool { return s.dense.on }

// enterDense switches the stepper to dense sweeps: wakes become no-ops
// for the duration (every active router is visited anyway). A detached
// Sim (refmodel-driven) never steps through the event loop, so density
// is meaningless there and the switch is refused.
func (s *Sim) enterDense() {
	if s.sched.detached {
		return
	}
	s.dense.on = true
	s.quietUntil = 0
	s.ctr.DenseEnters++
	s.sched.suspended = true
	for k := range s.shards {
		s.shards[k].sched.suspended = true
	}
}

// exitDense hands control back to the event scheduler. Wake state
// accumulated before or during the dense period is stale (wakes were
// suppressed), so every scheduler is reset and every router woken at
// the current cycle: each is visited once by the next sparse cycle and
// re-establishes its own forward wakes from its actual buffer state —
// pending NI queues re-poll, blocked heads re-arm the pending hammer,
// in-flight arrivals re-derive their ReadyAt wakes from gather's
// minFuture scan. That restores the scheduler invariant (if the full
// scan would change state at router R in cycle T, R has a wake at T)
// from nothing but current state.
func (s *Sim) exitDense() {
	s.dense.on = false
	s.ctr.DenseExits++
	s.sched.resumeReset(s.Now)
	for k := range s.shards {
		s.shards[k].sched.resumeReset(s.Now)
	}
	s.WakeAll()
}

// denseState is the dense stepper's per-Sim state: the hysteretic mode
// controller plus preallocated sweep scratch.
type denseState struct {
	densePolicy
	// ids is the per-cycle active router set in ascending order (the
	// phase sweeps' input).
	ids []int32
	// fastOK gates the fused allocation pass on the candidate space
	// fitting one uint64 mask (bubble included); larger configurations
	// take the generic AllocateNode per active router.
	fastOK bool
	// vnetBits[v] masks the candidate indices whose slot belongs to vnet
	// v (across all input ports; the bubble bit is excluded — its vnet is
	// the occupant's, resolved at arbitration time). Static for a given
	// Config, so the fused pass classifies grantability per vnet with one
	// AND instead of touching each candidate's packet.
	vnetBits []uint64
	// slots/total/slotMask cache SlotsPerPort-derived constants for the
	// per-router fused pass (valid only when fastOK).
	slots    int
	total    int
	slotMask uint64
	// occBits[id] mirrors router id's buffer occupancy at slot
	// granularity: bit ci (= in*slots+sl, bubble at NumPorts*slots) is
	// set iff that buffer holds a packet. Maintained by every fill/clear
	// site in the package (tryGrant, grantPar, injectNode, bubble
	// transfer, placement and removal helpers); nil when the candidate
	// space does not fit a word (fastOK false). The dense classification
	// walks only the set bits, so a barely-occupied router costs its
	// occupancy, not its capacity. SPIN rotations (core) move packets
	// between slots that stay occupied, so they preserve the bitmap
	// without knowing about it.
	occBits []uint64
}

func (d *denseState) init(numNodes int, cfg Config) {
	d.ids = make([]int32, 0, numNodes)
	slots := cfg.SlotsPerPort()
	d.fastOK = geom.NumPorts*slots+1 <= 64
	if !d.fastOK {
		return
	}
	d.slots = slots
	d.total = geom.NumPorts * slots
	d.slotMask = uint64(1)<<uint(slots) - 1
	d.vnetBits = make([]uint64, cfg.NumVnets)
	for v := 0; v < cfg.NumVnets; v++ {
		lane := (uint64(1)<<uint(cfg.VCsPerVnet) - 1) << uint(v*cfg.VCsPerVnet)
		for in := 0; in < geom.NumPorts; in++ {
			d.vnetBits[v] |= lane << uint(in*slots)
		}
	}
	d.occBits = make([]uint64, numNodes)
}

// occBitSet / occBitClear maintain the slot-occupancy mirror. bit is the
// candidate index of the buffer being filled or emptied. No-ops when the
// mirror is disabled (candidate space wider than a word).
func (s *Sim) occBitSet(id geom.NodeID, bit int) {
	if s.dense.occBits != nil {
		s.dense.occBits[id] |= 1 << uint(bit)
	}
}

func (s *Sim) occBitClear(id geom.NodeID, bit int) {
	if s.dense.occBits != nil {
		s.dense.occBits[id] &^= 1 << uint(bit)
	}
}

// occBitClearVC is occBitClear for callers holding only the buffer
// pointer (the rare out-of-band removal paths): the slot is recovered by
// scanning the port's VC array, falling back to the bubble bit.
func (s *Sim) occBitClearVC(id geom.NodeID, port geom.Direction, vc *VC) {
	if s.dense.occBits == nil {
		return
	}
	r := &s.Routers[id]
	if vc == &r.Bubble.VC {
		s.occBitClear(id, geom.NumPorts*s.Cfg.SlotsPerPort())
		return
	}
	vcs := r.In[port]
	for sl := range vcs {
		if &vcs[sl] == vc {
			s.occBitClear(id, int(port)*s.Cfg.SlotsPerPort()+sl)
			return
		}
	}
}

// OccupancyMirror returns the raw slot-occupancy word for router id
// (bit in*slots+sl per buffer, bubble at NumPorts*slots), with ok false
// when the mirror is disabled. Exposed for the validate package, which
// cross-checks the mirror against actual buffer contents — the mirror
// feeds the FSM scan fast path in both reference and event execution,
// so drift would not show up as a differential mismatch.
func (s *Sim) OccupancyMirror(id geom.NodeID) (uint64, bool) {
	if s.dense.occBits == nil {
		return 0, false
	}
	return s.dense.occBits[id], true
}

// OccupiedScanWord returns the router's non-local occupancy as a bit
// word in the deadlock-detection FSM's cyclic scan order — bit
// in*slots+sl is set iff link-input slot (in, sl) holds a packet, and
// bit NumLinkDirs*slots iff the static bubble is present and occupied —
// with ok true when the occupancy mirror is enabled. It lets the FSM's
// "next occupied VC after X" round-robin resolve with two
// TrailingZeros64 instead of a slot-by-slot scan; callers must keep the
// slot-scan fallback for configurations too wide for the mirror.
func (r *Router) OccupiedScanWord() (uint64, bool) {
	s := r.sim
	occBits := s.dense.occBits
	if occBits == nil {
		return 0, false
	}
	d := &s.dense
	link := uint(geom.NumLinkDirs * d.slots)
	w := occBits[r.ID] & (uint64(1)<<link - 1)
	if r.Bubble.Present && occBits[r.ID]>>uint(d.total)&1 != 0 {
		w |= 1 << link
	}
	return w, true
}

// denseMark reports whether router id must be visited this cycle: it
// holds buffered packets (occ covers regular VCs and the bubble) or has
// traffic queued at its NI (alive to inject, or dead and polling for a
// re-enable). Routers that become occupied later in the same cycle can
// only have gained a future-ReadyAt arrival, for which every phase
// primitive is inert — see the byte-identity argument above.
func (s *Sim) denseMark(id int) bool {
	return s.occ[id] != 0 || s.niPend[id] != 0
}

// denseCollect materializes the active id set in ascending order (the
// phase sweeps' input), returning the active count.
func (s *Sim) denseCollect() int {
	d := &s.dense
	ids := d.ids[:0]
	n := len(s.Routers)
	for id := 0; id < n; id++ {
		if s.occ[id] != 0 || s.niPend[id] != 0 {
			ids = append(ids, int32(id))
		}
	}
	d.ids = ids
	return len(ids)
}

// denseDueBand fills due with the active routers of the contiguous band
// [lo, hi) — the sharded dense stepper's per-shard due set. Reads only
// band-owned state (occupancy, NI rings), so shard workers collect
// concurrently.
func (s *Sim) denseDueBand(lo, hi int32, due []int32) []int32 {
	for id := lo; id < hi; id++ {
		if s.denseMark(int(id)) {
			due = append(due, id)
		}
	}
	return due
}

// denseAllocFast reports whether the fused allocation pass may run: no
// allocation hook that could veto or observe per-candidate decisions is
// installed, and the candidate space fits the mask.
func (s *Sim) denseAllocFast() bool {
	return s.dense.fastOK && s.VCFilter == nil && s.GrantFilter == nil &&
		s.OutputOverride == nil && s.OnGrant == nil
}

// stepDense advances one cycle on the dense stepper (sequential form;
// the sharded form rides stepSharded with dense due sets). Phase
// structure and ordering are the sequential core's; only the visit set
// and the allocation inner loop differ.
func (s *Sim) stepDense() {
	for _, f := range s.PreCycle {
		f(s)
	}
	active := s.denseCollect()
	ids := s.dense.ids
	var inj injectDelta
	for _, id := range ids {
		// injectNode is a pure no-op for a router with empty NI rings
		// (most of the active set at moderate load): skip the visit.
		if s.niPend[id] != 0 {
			s.injectNode(geom.NodeID(id), &inj)
		}
	}
	inj.apply(s)
	if s.denseAllocFast() {
		for _, id := range ids {
			s.denseAllocNode(geom.NodeID(id))
		}
	} else {
		for _, id := range ids {
			s.AllocateNode(geom.NodeID(id))
		}
	}
	if ob := s.dense.occBits; ob != nil {
		// The mirror's bubble bit is TransferBubbleNode's occupancy
		// early-out (b.VC.Pkt != nil): consult it from the flat word
		// array instead of striding through each Router struct.
		bb := uint64(1) << uint(s.dense.total)
		for _, id := range ids {
			if ob[id]&bb != 0 {
				s.TransferBubbleNode(geom.NodeID(id))
			}
		}
	} else {
		for _, id := range ids {
			s.TransferBubbleNode(geom.NodeID(id))
		}
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
	s.ctr.DenseCycles++
	if s.dense.observeDense(active, len(s.Routers)) {
		s.exitDense()
	}
}

// denseAllocNode is the fused switch-allocation pass for one router:
// gatherAllocate's candidate classification and commitAllocate's
// round-robin arbitration in a single sweep over bitmasks, with no
// bucket building and no per-candidate downstream re-scans. Only valid
// under denseAllocFast (no allocation hooks); produces bit-for-bit the
// grants, Stats mutations and pool releases of AllocateNode.
func (s *Sim) denseAllocNode(id geom.NodeID) {
	if s.occ[id] == 0 || !s.Topo.RouterAlive(id) {
		// A dead router's buffered traffic cannot move; the sparse core
		// polls for a re-enable, the dense core revisits every cycle.
		return
	}
	r := &s.Routers[id]
	now := s.Now
	d := &s.dense
	slots := d.slots
	total := d.total // bubble uses candidate index `total`
	fenceOut := geom.Invalid
	fenceIn := geom.Invalid
	if r.Fence.Active {
		fenceOut, fenceIn = r.Fence.Out, r.Fence.In
	}

	// Classification: fold every ready head into its output's desire
	// mask, candidate index in*slots+sl (ascending by construction —
	// the order commitAllocate's buckets carry). Only occupied slots are
	// visited, via the occBits mirror — a barely-occupied router costs
	// its occupancy, not its capacity. The packet's memoized route-cache
	// read is inlined (OutputOf's override branch is dead here: the
	// fused pass is gated on OutputOverride == nil).
	var desire [geom.NumPorts]uint64
	bubbleVnet := -1
	occw := d.occBits[id]
	slotMask := d.slotMask
	for in := 0; in < geom.NumPorts; in++ {
		base := in * slots
		wp := (occw >> uint(base)) & slotMask
		if wp == 0 {
			continue
		}
		vcs := r.In[in]
		for wp != 0 {
			sl := bits.TrailingZeros64(wp)
			wp &= wp - 1
			vc := &vcs[sl]
			p := vc.Pkt
			if vc.ReadyAt > now {
				continue
			}
			var out geom.Direction
			if p.cacheOK && int(p.cacheHop) == p.Hop {
				out = p.cacheOut
			} else {
				out = s.OutputOf(p, id)
			}
			if out == geom.Invalid || (out == fenceOut && geom.Direction(in) != fenceIn) {
				continue
			}
			desire[out] |= 1 << uint(base+sl)
		}
	}
	if b := &r.Bubble; b.Present && occw>>uint(total)&1 != 0 && b.VC.ReadyAt <= now {
		out := s.OutputOf(b.VC.Pkt, id)
		if out != geom.Invalid && !(out == fenceOut && b.InPort != fenceIn) {
			desire[out] |= 1 << uint(total)
			bubbleVnet = b.VC.Pkt.Vnet
		}
	}

	// Arbitration: per output, reduce the desire mask to the grantable
	// candidates (per-vnet downstream availability answered once per
	// vnet against the static vnetBits masks), then pick the first
	// grantable candidate in cyclic order from the round-robin pointer —
	// exactly the winner commitAllocate's rotate-and-scan converges on,
	// since the candidates it would skip are those tryGrant rejects.
	vnetBits := d.vnetBits
	bubbleBit := uint64(1) << uint(total)
	for _, out := range geom.AllPorts {
		m := desire[out]
		if m == 0 || r.OutFreeAt[out] > now {
			continue
		}
		eligible := m
		if out != geom.Local {
			if !s.Topo.HasLink(id, out) {
				continue
			}
			nb := s.Topo.Neighbor(id, out)
			in := out.Opposite()
			if !s.Routers[nb].Bubble.EligibleFor(in, now) {
				// No downstream bubble: a candidate is grantable iff its
				// vnet has a free downstream VC right now.
				eligible = 0
				for v, vb := range vnetBits {
					if m&vb != 0 && s.findFreeVCNoFilter(nb, in, v) >= 0 {
						eligible |= m & vb
					}
				}
				if m&bubbleBit != 0 && s.findFreeVCNoFilter(nb, in, bubbleVnet) >= 0 {
					eligible |= bubbleBit
				}
				if eligible == 0 {
					continue // every candidate blocked: no grant, pointer holds
				}
			}
		}
		hi := eligible & (^uint64(0) << uint(r.saPtr[out]))
		var ci int
		if hi != 0 {
			ci = bits.TrailingZeros64(hi)
		} else {
			ci = bits.TrailingZeros64(eligible)
		}
		vc, inPort := r.candVC(int32(ci), slots, total)
		if s.tryGrant(r, out, vc, vc.Pkt, inPort, ci) {
			r.saPtr[out] = (ci + 1) % (total + 1)
		}
	}
}
