package network

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/routing"
)

// Packet is the unit of transfer. With virtual cut-through and
// packet-sized VCs, buffer dependencies are packet-granular (paper
// Section IV-A); flit count only affects serialization latency and link
// bandwidth.
type Packet struct {
	ID   int64
	Src  geom.NodeID
	Dst  geom.NodeID
	Vnet int
	// Len is the packet length in flits (1 = control, 5 = data by
	// default).
	Len int
	// Route is the source route: one output port per hop. Hop counts how
	// many hops have been granted so far.
	Route routing.Route
	Hop   int
	// Escaped marks a packet that has moved to escape-VC routing (the
	// escape-VC baseline sets this on timeout).
	Escaped bool

	// CreatedAt is the cycle the packet entered the NI queue; InjectedAt
	// the cycle it entered the network (-1 while queued); DeliveredAt the
	// cycle its tail reached the destination NI (-1 until then).
	CreatedAt   int64
	InjectedAt  int64
	DeliveredAt int64

	// Memoized OutputOf answer for the current hop (valid while cacheOK
	// and cacheHop == Hop; see Sim.OutputOf).
	cacheOut geom.Direction
	cacheHop int32
	cacheOK  bool

	// gen is the recycling generation: bumped every time the owning
	// Sim's pool reclaims this packet, so a PacketRef taken before the
	// release can detect that the pointer now names a different packet.
	gen uint32
	// routeOwned marks Route as a span of the owning Sim's route arena
	// (returned to it on the next SetRoute/recycle). Packets built
	// outside the pool — refmodel runs, hand-built test packets — carry
	// plain heap routes and leave this false.
	routeOwned bool
}

// Gen returns the packet's recycling generation (see PacketRef).
func (p *Packet) Gen() uint32 { return p.gen }

// PacketRef is a use-after-release-checked reference to a pooled packet:
// it remembers the generation at capture time, and Get refuses to return
// the pointer once the pool has recycled the packet — even if the same
// memory is already hosting a new one. Holders that outlive a packet's
// delivery (timers, watchdogs, trace hooks) should hold a PacketRef, not
// a bare *Packet.
type PacketRef struct {
	p   *Packet
	gen uint32
}

// Ref captures a generation-checked reference to p.
func (p *Packet) Ref() PacketRef {
	if p == nil {
		return PacketRef{}
	}
	return PacketRef{p: p, gen: p.gen}
}

// Get returns the referenced packet, or ok=false if the reference is
// empty or the packet has since been recycled.
func (r PacketRef) Get() (*Packet, bool) {
	if r.p == nil || r.p.gen != r.gen {
		return nil, false
	}
	return r.p, true
}

// Valid reports whether the reference still names the original packet.
func (r PacketRef) Valid() bool {
	return r.p != nil && r.p.gen == r.gen
}

// InvalidateOutputCache discards the packet's memoized next-hop output.
// Required after rewriting Route in place (reconfig's reroutes), since
// the cache is keyed on Hop alone.
func (p *Packet) InvalidateOutputCache() { p.cacheOK = false }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d(%v→%v vnet%d len%d hop%d)", p.ID, p.Src, p.Dst, p.Vnet, p.Len, p.Hop)
}

// Latency returns total latency (queue + network), valid after delivery.
func (p *Packet) Latency() int64 { return p.DeliveredAt - p.CreatedAt }

// NetLatency returns in-network latency, valid after delivery.
func (p *Packet) NetLatency() int64 { return p.DeliveredAt - p.InjectedAt }

// VC is one virtual channel: a packet-sized buffer.
type VC struct {
	Pkt *Packet
	// ReadyAt is the cycle from which the resident packet's head may
	// compete in switch allocation (covers router+link arrival delay).
	ReadyAt int64
	// FreeAt is the cycle from which an emptied VC may be reallocated
	// (covers the tail streaming out).
	FreeAt int64
}

// Empty reports whether the VC can accept a new packet at cycle now.
func (v *VC) Empty(now int64) bool { return v.Pkt == nil && v.FreeAt <= now }

// HeadReady reports whether the VC holds a packet whose head may compete
// in switch allocation at cycle now.
func (v *VC) HeadReady(now int64) bool { return v.Pkt != nil && v.ReadyAt <= now }
