package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

func mkSim(t *topology.Topology, seed int64) *Sim {
	return New(t, Config{}, rand.New(rand.NewSource(seed)))
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.NumVnets != 3 || c.VCsPerVnet != 4 || c.VCDepth != 5 || c.RouterLatency != 1 || c.LinkLatency != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.SlotsPerPort() != 12 {
		t.Fatalf("SlotsPerPort = %d, want 12", c.SlotsPerPort())
	}
}

func TestSinglePacketLatency(t *testing.T) {
	// Latency of an uncontended packet over H hops with L flits is
	// 2H + L + 1 cycles (1-cycle injection, 1-cycle router + 1-cycle link
	// per hop, L-1 serialization + ejection).
	topo := topology.NewMesh(8, 1)
	for _, tc := range []struct {
		hops, lenFlits int
	}{
		{1, 1}, {1, 5}, {3, 5}, {7, 1}, {7, 5}, {0, 5},
	} {
		s := mkSim(topo, 1)
		route := make(routing.Route, tc.hops)
		for i := range route {
			route[i] = geom.East
		}
		p := s.NewPacket(0, geom.NodeID(tc.hops), 0, tc.lenFlits, route)
		s.Enqueue(p)
		s.Run(2*tc.hops + tc.lenFlits + 5)
		if p.DeliveredAt < 0 {
			t.Fatalf("hops=%d len=%d: packet not delivered", tc.hops, tc.lenFlits)
		}
		want := int64(2*tc.hops + tc.lenFlits + 1)
		if p.Latency() != want {
			t.Errorf("hops=%d len=%d: latency = %d, want %d", tc.hops, tc.lenFlits, p.Latency(), want)
		}
		if s.Stats.Delivered != 1 || s.Stats.Offered != 1 || s.Stats.Injected != 1 {
			t.Errorf("hops=%d: stats = %+v", tc.hops, s.Stats)
		}
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	// A stream of 5-flit packets over one link sustains 1 packet per 5
	// cycles in steady state.
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	const n = 40
	for i := 0; i < n; i++ {
		s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	}
	s.Run(5*n + 20)
	if s.Stats.Delivered != n {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, n)
	}
	// Flit link cycles on the 0→1 link: 5 per packet.
	if got := s.Stats.LinkCycles[ClassFlit]; got != 5*n {
		t.Fatalf("flit link cycles = %d, want %d", got, 5*n)
	}
	// Steady-state delivery cadence: last delivery no earlier than 5(n-1).
	var last int64
	_ = last
	if s.Now < 5*(n-1) {
		t.Fatalf("implausibly fast: now=%d", s.Now)
	}
}

func TestSingleFlitBackToBack(t *testing.T) {
	// 1-flit packets can use a link every cycle.
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	const n = 30
	for i := 0; i < n; i++ {
		s.Enqueue(s.NewPacket(0, 1, 0, 1, routing.Route{geom.East}))
	}
	s.Run(n + 10)
	if s.Stats.Delivered != n {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, n)
	}
	if got := s.Stats.LinkCycles[ClassFlit]; got != n {
		t.Fatalf("flit link cycles = %d, want %d", got, n)
	}
}

func TestNewPacketValidation(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { s.NewPacket(0, 1, 0, 6, nil) })
	mustPanic(func() { s.NewPacket(0, 1, 0, 0, nil) })
	mustPanic(func() { s.NewPacket(0, 1, 3, 1, nil) })
	mustPanic(func() { s.NewPacket(0, 1, -1, 1, nil) })
}

func TestConservationUnderLoad(t *testing.T) {
	// XY routing on a healthy mesh is deadlock-free: every offered packet
	// is eventually delivered and the conservation identity holds at all
	// times.
	topo := topology.NewMesh(4, 4)
	s := mkSim(topo, 7)
	xy := routing.NewXY(topo)
	rng := rand.New(rand.NewSource(9))
	offered := 0
	for cyc := 0; cyc < 600; cyc++ {
		if cyc < 400 {
			for n := 0; n < 16; n++ {
				if rng.Float64() < 0.05 {
					dst := geom.NodeID(rng.Intn(16))
					r, ok := xy.Route(geom.NodeID(n), dst, nil)
					if !ok {
						t.Fatal("XY route missing on healthy mesh")
					}
					ln := 1
					if rng.Intn(2) == 0 {
						ln = 5
					}
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
					offered++
				}
			}
		}
		s.Step()
		total := s.Stats.Delivered + s.InFlight() + s.QueuedPackets()
		if total != int64(offered) {
			t.Fatalf("cycle %d: conservation violated: %d accounted, %d offered",
				cyc, total, offered)
		}
	}
	if s.Stats.Delivered != int64(offered) {
		t.Fatalf("drain incomplete: %d of %d delivered (in flight %d, queued %d)",
			s.Stats.Delivered, offered, s.InFlight(), s.QueuedPackets())
	}
	if s.Stats.AvgLatency() <= 0 || s.Stats.AvgNetLatency() <= 0 {
		t.Fatal("latency stats should be positive")
	}
	if s.Stats.AvgNetLatency() > s.Stats.AvgLatency() {
		t.Fatal("network latency cannot exceed total latency")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		topo := topology.NewMesh(4, 4)
		s := mkSim(topo, 3)
		min := routing.NewMinimal(topo)
		rng := rand.New(rand.NewSource(5))
		for cyc := 0; cyc < 300; cyc++ {
			for n := 0; n < 16; n++ {
				if rng.Float64() < 0.08 {
					dst := geom.NodeID(rng.Intn(16))
					if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, 0, 5, r))
					}
				}
			}
			s.Step()
		}
		return s.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

// clockwiseRing builds a deadlock-primed workload on a 2x2 mesh: every
// node streams packets two hops clockwise, so all minimal routes chase
// each other around the ring.
func clockwiseRing(s *Sim, perNode int) {
	// 2x2 ids: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).
	// Clockwise: 0→2→3→1→0, i.e. 0 N, 2 E, 3 S, 1 W.
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	order := []geom.NodeID{0, 2, 3, 1}
	for i, n := range order {
		d1 := hops[n]
		mid := s.Topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := s.Topo.Neighbor(mid, d2)
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
		_ = i
	}
}

func TestRingWorkloadDeadlocksWithoutRecovery(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	clockwiseRing(s, 12)
	s.Run(2000)
	if s.InFlight() == 0 {
		t.Fatal("expected the ring workload to wedge, but network drained")
	}
	if s.Now-s.LastProgress < 500 {
		t.Fatalf("expected a hard deadlock; last progress at %d, now %d",
			s.LastProgress, s.Now)
	}
}

func TestFenceRestrictsSwitchAllocation(t *testing.T) {
	// 3x1 line: node 1 fences (West→East): traffic entering from its
	// Local port toward East must stall; traffic from West flows.
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	s.Routers[1].Fence = Fence{Active: true, In: geom.West, Out: geom.East, SrcID: 5}
	// Local packet at node 1 wants East: should be blocked by the fence.
	blocked := s.NewPacket(1, 2, 0, 1, routing.Route{geom.East})
	s.Enqueue(blocked)
	// Packet from node 0 through node 1 to node 2 enters on West: allowed.
	allowed := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	s.Enqueue(allowed)
	s.Run(40)
	if allowed.DeliveredAt < 0 {
		t.Fatal("fenced-in-port packet should be delivered")
	}
	if blocked.DeliveredAt >= 0 {
		t.Fatal("local packet should be blocked by the fence")
	}
	// Clearing the fence releases it.
	s.Routers[1].Fence = Fence{}
	s.Run(40)
	if blocked.DeliveredAt < 0 {
		t.Fatal("packet should be delivered after fence clears")
	}
}

func TestBubbleAcceptsOverflowPacket(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	// Stall ejection at node 1 far into the future.
	s.Routers[1].OutFreeAt[geom.Local] = 1 << 30
	// Fill the 4 VCs of vnet 0 at node 1's West port, plus one stuck at 0.
	for i := 0; i < 5; i++ {
		s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	}
	s.Run(100)
	if s.Routers[0].Occupied() == 0 {
		t.Fatal("expected the fifth packet stuck at node 0")
	}
	// Activate a bubble at node 1 on the West input port.
	s.Routers[1].Bubble.Present = true
	s.Routers[1].Bubble.Active = true
	s.Routers[1].Bubble.InPort = geom.West
	s.Run(20)
	if s.Routers[1].Bubble.VC.Pkt == nil {
		t.Fatal("bubble should have accepted the overflow packet")
	}
	if s.Stats.BubbleOccupancies != 1 {
		t.Fatalf("BubbleOccupancies = %d, want 1", s.Stats.BubbleOccupancies)
	}
	// Unstall ejection: everything drains, including from the bubble.
	s.Routers[1].OutFreeAt[geom.Local] = s.Now
	s.Run(100)
	if s.Stats.Delivered != 5 {
		t.Fatalf("delivered %d of 5 after unstall", s.Stats.Delivered)
	}
	if s.Routers[1].Bubble.VC.Pkt != nil {
		t.Fatal("bubble should have drained")
	}
}

func TestBubbleInactiveRejects(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	s.Routers[1].OutFreeAt[geom.Local] = 1 << 30
	s.Routers[1].Bubble.Present = true // present but not active
	s.Routers[1].Bubble.InPort = geom.West
	for i := 0; i < 5; i++ {
		s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	}
	s.Run(100)
	if s.Routers[1].Bubble.VC.Pkt != nil {
		t.Fatal("inactive bubble must not accept packets")
	}
	if s.Routers[0].Occupied() == 0 {
		t.Fatal("overflow packet should be stuck upstream")
	}
}

func TestVCFilterReservesChannels(t *testing.T) {
	// Veto VC index 0 of every vnet everywhere: injection and transit
	// still work using the remaining 3 VCs.
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	s.VCFilter = func(p *Packet, dst geom.NodeID, in geom.Direction, vcIdx int) bool {
		return vcIdx != 0
	}
	for i := 0; i < 10; i++ {
		s.Enqueue(s.NewPacket(0, 2, 0, 5, routing.Route{geom.East, geom.East}))
	}
	s.Run(200)
	if s.Stats.Delivered != 10 {
		t.Fatalf("delivered %d of 10", s.Stats.Delivered)
	}
	// VC slot 0 of vnet 0 must never have been used.
	for id := range s.Routers {
		for _, port := range geom.AllPorts {
			vc := &s.Routers[id].In[port][0]
			if vc.FreeAt != 0 || vc.Pkt != nil {
				t.Fatalf("router %d port %v slot 0 was used despite filter", id, port)
			}
		}
	}
}

func TestOutputOverrideRedirects(t *testing.T) {
	// A packet with an eastbound route is overridden to eject at node 1.
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	s.OutputOverride = func(q *Packet, at geom.NodeID) (geom.Direction, bool) {
		if q == p && at == 1 {
			return geom.Local, true
		}
		return geom.Invalid, false
	}
	s.Enqueue(p)
	s.Run(40)
	if p.DeliveredAt < 0 {
		t.Fatal("packet should have been delivered (at the override node)")
	}
	if p.Hop != 1 {
		t.Fatalf("packet took %d hops, want 1", p.Hop)
	}
}

func TestUseLinkBlocksFlitAndCounts(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	s.Enqueue(s.NewPacket(0, 1, 0, 1, routing.Route{geom.East}))
	// Occupy the 0→East link with probes for the first 10 cycles.
	s.PreCycle = append(s.PreCycle, func(sim *Sim) {
		if sim.Now < 10 {
			sim.UseLink(0, geom.East, ClassProbe)
		}
	})
	s.Run(30)
	if s.Stats.LinkCycles[ClassProbe] != 10 {
		t.Fatalf("probe link cycles = %d, want 10", s.Stats.LinkCycles[ClassProbe])
	}
	if s.Stats.Delivered != 1 {
		t.Fatal("packet should be delivered after probes stop")
	}
	// The flit could not have crossed before cycle 10.
	if s.Stats.SumLatency < 12 {
		t.Fatalf("latency %d implies the flit crossed a busy link", s.Stats.SumLatency)
	}
}

func TestPreAndPostCycleHooksRun(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	pre, post := 0, 0
	s.PreCycle = append(s.PreCycle, func(*Sim) { pre++ })
	s.PostCycle = append(s.PostCycle, func(*Sim) { post++ })
	s.Run(17)
	if pre != 17 || post != 17 {
		t.Fatalf("hooks ran pre=%d post=%d, want 17 each", pre, post)
	}
	if s.Now != 17 {
		t.Fatalf("Now = %d, want 17", s.Now)
	}
}

func TestDeadRouterDoesNotInject(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	topo.DisableRouter(0)
	s := mkSim(topo, 1)
	s.Enqueue(s.NewPacket(0, 1, 0, 1, routing.Route{geom.East}))
	s.Run(50)
	if s.Stats.Injected != 0 {
		t.Fatal("dead router must not inject")
	}
	if s.QueuedPackets() != 1 {
		t.Fatal("packet should remain queued")
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	if got := s.AliveDirectedLinkCount(); got != 2 {
		t.Fatalf("directed links = %d, want 2", got)
	}
	s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	s.Run(20)
	util := s.Stats.LinkUtilization(s.Now, s.AliveDirectedLinkCount())
	want := 5.0 / (20.0 * 2.0)
	if util[ClassFlit] != want {
		t.Fatalf("flit utilization = %v, want %v", util[ClassFlit], want)
	}
}

func TestStatsHelpersZeroSafe(t *testing.T) {
	var st Stats
	if st.AvgLatency() != 0 || st.AvgNetLatency() != 0 {
		t.Fatal("zero stats should give zero averages")
	}
	if st.ThroughputFlits(0, 0, 3) != 0 || st.ThroughputPackets(0, 0) != 0 {
		t.Fatal("zero horizon should give zero throughput")
	}
	u := st.LinkUtilization(0, 0)
	for _, v := range u {
		if v != 0 {
			t.Fatal("zero horizon should give zero utilization")
		}
	}
}

func TestLinkClassStrings(t *testing.T) {
	want := map[LinkClass]string{
		ClassFlit: "flit", ClassProbe: "probe", ClassDisable: "disable",
		ClassEnable: "enable", ClassCheckProbe: "check_probe", LinkClass(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestVnetIsolation(t *testing.T) {
	// Packets of vnet 1 must not occupy vnet 0 VCs even under pressure.
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	s.Routers[1].OutFreeAt[geom.Local] = 1 << 30
	for i := 0; i < 6; i++ {
		s.Enqueue(s.NewPacket(0, 1, 1, 5, routing.Route{geom.East}))
	}
	s.Run(100)
	r := &s.Routers[1]
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		if r.In[geom.West][i].Pkt != nil { // vnet 0 slots
			t.Fatal("vnet 1 packet in vnet 0 VC")
		}
		if r.In[geom.West][s.Cfg.VCsPerVnet+i].Pkt == nil { // vnet 1 slots
			t.Fatal("vnet 1 VCs should be full")
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two input streams (from West and from South) compete for the East
	// output of the center of a 3x3 mesh; both must make progress.
	topo := topology.NewMesh(3, 3)
	s := mkSim(topo, 1)
	center := topo.ID(geom.Coord{X: 1, Y: 1})
	west := topo.ID(geom.Coord{X: 0, Y: 1})
	south := topo.ID(geom.Coord{X: 1, Y: 0})
	east := topo.ID(geom.Coord{X: 2, Y: 1})
	_ = center
	var fromWest, fromSouth int
	for i := 0; i < 20; i++ {
		pw := s.NewPacket(west, east, 0, 5, routing.Route{geom.East, geom.East})
		ps := s.NewPacket(south, east, 0, 5, routing.Route{geom.North, geom.East})
		s.Enqueue(pw)
		s.Enqueue(ps)
	}
	s.Run(150)
	for id := range s.Routers {
		_ = id
	}
	// Count deliveries by source.
	fromWest = 0
	fromSouth = 0
	// Re-simulate is overkill; infer from stats: all 40 should be
	// eventually delivered, so fairness means neither side starves early.
	if s.Stats.Delivered < 20 {
		t.Fatalf("delivered %d, expected at least 20 by cycle 150", s.Stats.Delivered)
	}
	_ = fromWest
	_ = fromSouth
}

func TestDropAccounting(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	s.Drop()
	s.Drop()
	if s.Stats.DroppedUnreachable != 2 {
		t.Fatal("drop counter mismatch")
	}
}
