package network_test

// The zero-allocation steady-state gate, as a plain test: after warm-up,
// an inject→deliver→recycle loop at a below-saturation load must not
// allocate a single heap object under any of the three cores. The
// benchmark harness (internal/experiments, BENCH_sim.json) measures the
// same property with MemStats windows; this is the fast in-tree
// regression hook using testing.AllocsPerRun.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/network/refmodel"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// steadyLoop builds an 8x8 mesh with the static-bubble controller and a
// below-saturation uniform-random load, runs warmup cycles so every
// pool, arena, ring and scheduler reaches its steady size, and returns a
// one-cycle advance function.
func steadyLoop(shards int, useRef bool, mode network.DenseMode) func() {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(41)))
	s.SetDenseMode(mode)
	core.Attach(s, core.Options{})
	s.PrewarmPool(1024, 16, 32)
	// Routing tables are fully compiled at construction, so nothing
	// route-related can allocate inside the measured window.
	min := routing.NewMinimal(topo)
	alive := topo.AliveRouters()
	inj := traffic.NewInjector(alive, min,
		traffic.NewUniformRandom(alive), 0.15, rand.New(rand.NewSource(42)))
	step := s.Step
	if useRef {
		step = refmodel.New(s).Step
	}
	cycle := func() {
		inj.Tick(s)
		step()
	}
	for i := 0; i < 3000; i++ {
		cycle()
	}
	return cycle
}

// TestZeroAllocSteadyState drives ≥10k post-warmup cycles under the
// sequential event core, the sharded stepper and the refmodel full scan,
// and requires exactly zero heap allocations from each.
func TestZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state run")
	}
	cases := []struct {
		name   string
		shards int
		useRef bool
		mode   network.DenseMode
	}{
		{"event_sequential", 1, false, network.DenseAuto},
		{"event_dense_forced", 1, false, network.DenseForcedOn},
		{"sharded_2", 2, false, network.DenseAuto},
		{"sharded_4", 4, false, network.DenseAuto},
		{"sharded_4_dense_forced", 4, false, network.DenseForcedOn},
		{"refmodel_fullscan", 1, true, network.DenseAuto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycle := steadyLoop(tc.shards, tc.useRef, tc.mode)
			// AllocsPerRun runs the body once extra as its own warm-up, so
			// the measured pass covers cycles well past any growth.
			allocs := testing.AllocsPerRun(1, func() {
				for i := 0; i < 10000; i++ {
					cycle()
				}
			})
			if allocs != 0 {
				t.Errorf("steady state allocated %.0f objects per 10k cycles, want 0", allocs)
			}
		})
	}
}

// saturatedLoop is steadyLoop's past-saturation sibling: offered load
// well above the 8x8 uniform-random saturation point, so NI queues grow
// for the whole run and the live packet population never stabilizes.
// Zero-allocation here depends on prewarming for the run's *peak* live
// population and ring high-water (not just a steady-state size), on
// reserved NI rings surviving the full-drain/refill oscillation, and on
// pooled controller messages keeping their Turns capacity as probes
// consume turns hop by hop — the three regressions this test pins.
func saturatedLoop(shards int) func() {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(21)))
	core.Attach(s, core.Options{}).PrewarmMessages(4096)
	s.PrewarmPool(32768, 16, 1024)
	min := routing.NewMinimal(topo)
	alive := topo.AliveRouters()
	inj := traffic.NewInjector(alive, min,
		traffic.NewUniformRandom(alive), 0.35, rand.New(rand.NewSource(22)))
	cycle := func() {
		inj.Tick(s)
		s.Step()
	}
	for i := 0; i < 1000; i++ {
		cycle()
	}
	return cycle
}

// TestZeroAllocSaturation holds the event core — sequential and sharded
// — to the zero-allocation contract past the saturation point, where
// the historical leaks lived (ring release-on-drain churn, controller
// Turns-capacity erosion, under-sized prewarm). A handful of objects
// are tolerated per measured pass: the sharded stepper's worker
// goroutines occasionally make the runtime allocate park/unpark
// machinery, which is scheduler noise, not simulator state (the
// benchmark gate in internal/experiments applies the same budget).
func TestZeroAllocSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("long saturation run")
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards_%d", shards), func(t *testing.T) {
			cycle := saturatedLoop(shards)
			allocs := testing.AllocsPerRun(1, func() {
				for i := 0; i < 2500; i++ {
					cycle()
				}
			})
			if allocs > 8 {
				t.Errorf("saturated run allocated %.0f objects per 2.5k cycles, want ~0", allocs)
			}
		})
	}
}
