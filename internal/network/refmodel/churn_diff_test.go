package refmodel

// Churn differential scenarios: overlapping reconfiguration events —
// fails landing mid-drain, revoked power-offs, recoveries of routers
// hosting recovery state, flapping links, scheduled event queues — must
// leave every core (event, refmodel, sharded 1/2/4/8) cycle-exact. Each
// scenario mirrors the same Submit/SubmitAt/Tick calls into every
// unit's manager and additionally demands the *managers* agree:
// identical outcomes, identical epochs, identical pending queues, and
// identical gate completions, every cycle. A divergence here isolates
// either nondeterminism in the overlap state machine or a missing wake
// in a reconfiguration path.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// churnStep is one scripted reconfiguration action. With queueAt > 0 the
// event goes through SubmitAt(queueAt) at cycle cyc (exercising the
// scheduled queue); otherwise it is Submitted immediately at cyc.
type churnStep struct {
	cyc     int
	ev      reconfig.Event
	queueAt int64
}

// churnScenario is a scripted overlap scenario run on a fixed 6×6 mesh
// (node IDs are stable: node = y*6+x, so 14 = (2,2) is central).
type churnScenario struct {
	name   string
	seed   int64
	cycles int
	tdd    int64
	spin   bool
	steps  []churnStep
}

// runChurnScenario drives one scripted scenario through every core,
// comparing simulator state cycle-for-cycle and manager state
// action-for-action.
func runChurnScenario(sc churnScenario) error {
	hrng := rand.New(rand.NewSource(sc.seed))
	const w, h = 6, 6
	simSeed := hrng.Int63()

	units := []*unit{{name: "event"}, {name: "refmodel"}}
	for _, n := range diffShardCounts {
		units = append(units, &unit{name: fmt.Sprintf("shards%d", n)})
	}
	ctls := make([]*core.Controller, len(units))
	for i, u := range units {
		var cfg network.Config
		if i >= 2 {
			cfg.Shards = diffShardCounts[i-2]
		}
		topo := topology.NewMesh(w, h)
		u.sim = network.New(topo, cfg, rand.New(rand.NewSource(simSeed)))
		u.step = u.sim.Step
		if u.name == "refmodel" {
			u.step = New(u.sim).Step
			u.sim.SetPooling(false)
		}
		tdd := sc.tdd
		if tdd == 0 {
			tdd = 34
		}
		ctls[i] = core.Attach(u.sim, core.Options{TDD: tdd, Spin: sc.spin})
		u.mgr = reconfig.New(u.sim)
		u.mgr.SetScheme(ctls[i])
		u.delivered = make(map[int64]int64)
		d := u.delivered
		u.sim.OnDeliver = func(p *network.Packet) { d[p.ID] = p.DeliveredAt }
	}
	ev := units[0]

	// route mirrors the manager-table lookup across units, as in the main
	// differential harness.
	routeBuf := make([]routing.Route, len(units))
	route := func(src, dst geom.NodeID) ([]routing.Route, bool, error) {
		ok0 := false
		for i, u := range units {
			rt, ok := u.mgr.Route(src, dst)
			if i == 0 {
				ok0 = ok
			} else if ok != ok0 {
				return nil, false, fmt.Errorf("route tables diverged for %v->%v (%s vs %s)",
					src, dst, ev.name, u.name)
			}
			routeBuf[i] = rt
		}
		return routeBuf, ok0, nil
	}

	window := sc.cycles * 3 / 4
	const rate = 0.06
	for cyc := 0; cyc < sc.cycles; cyc++ {
		// Scripted actions, mirrored with outcome equality.
		for _, st := range sc.steps {
			if st.cyc != cyc {
				continue
			}
			if st.queueAt > 0 {
				for _, u := range units {
					u.mgr.SubmitAt(st.queueAt, st.ev)
				}
				continue
			}
			o0, e0 := ev.mgr.Submit(st.ev)
			for _, u := range units[1:] {
				if o, e := u.mgr.Submit(st.ev); o != o0 || (e == nil) != (e0 == nil) {
					return fmt.Errorf("cycle %d: %v outcome diverged: %s (%v,%v) vs %s (%v,%v)",
						cyc, st.ev, ev.name, o0, e0, u.name, o, e)
				}
			}
		}
		// The per-cycle pump, with manager-state equality.
		g0 := ev.mgr.Tick()
		for _, u := range units[1:] {
			gu := u.mgr.Tick()
			if len(gu) != len(g0) {
				return fmt.Errorf("cycle %d: gate completions diverged: %s %v vs %s %v",
					cyc, ev.name, g0, u.name, gu)
			}
			for i := range g0 {
				if gu[i] != g0[i] {
					return fmt.Errorf("cycle %d: gate completion order diverged: %s %v vs %s %v",
						cyc, ev.name, g0, u.name, gu)
				}
			}
			if u.mgr.Epoch() != ev.mgr.Epoch() {
				return fmt.Errorf("cycle %d: epoch diverged: %s %d vs %s %d",
					cyc, ev.name, ev.mgr.Epoch(), u.name, u.mgr.Epoch())
			}
			if u.mgr.PendingEvents() != ev.mgr.PendingEvents() || u.mgr.PendingGates() != ev.mgr.PendingGates() {
				return fmt.Errorf("cycle %d: pending queues diverged (%s): events %d vs %d, gates %d vs %d",
					cyc, u.name, ev.mgr.PendingEvents(), u.mgr.PendingEvents(),
					ev.mgr.PendingGates(), u.mgr.PendingGates())
			}
		}

		if cyc < window {
			alive := ev.sim.Topo.AliveRouters()
			for _, src := range alive {
				if hrng.Float64() >= rate {
					continue
				}
				dst := alive[hrng.Intn(len(alive))]
				if dst == src {
					continue
				}
				rts, ok, err := route(src, dst)
				if err != nil {
					return fmt.Errorf("cycle %d: %w", cyc, err)
				}
				if !ok {
					for _, u := range units {
						u.sim.Drop()
					}
					continue
				}
				ln := 1
				if hrng.Intn(2) == 0 {
					ln = 5
				}
				vnet := hrng.Intn(ev.sim.Cfg.NumVnets)
				for i, u := range units {
					u.sim.Enqueue(u.sim.NewPacket(src, dst, vnet, ln, rts[i]))
				}
			}
		}

		for _, u := range units {
			u.step()
		}

		for _, u := range units {
			s := u.sim
			if got := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost; got != s.Stats.Offered {
				return fmt.Errorf("cycle %d: %s conservation violated: %d != Offered %d",
					cyc, u.name, got, s.Stats.Offered)
			}
		}
		for _, u := range units[1:] {
			if u.sim.Stats != ev.sim.Stats {
				return fmt.Errorf("cycle %d: stats diverged\n%-9s %+v\n%-9s %+v",
					cyc, ev.name+":", ev.sim.Stats, u.name+":", u.sim.Stats)
			}
			if u.sim.InFlight() != ev.sim.InFlight() || u.sim.QueuedPackets() != ev.sim.QueuedPackets() {
				return fmt.Errorf("cycle %d: occupancy diverged (%s)", cyc, u.name)
			}
			if u.sim.LastProgress != ev.sim.LastProgress {
				return fmt.Errorf("cycle %d: LastProgress diverged (%s): %d vs %d",
					cyc, u.name, ev.sim.LastProgress, u.sim.LastProgress)
			}
		}
	}

	for _, u := range units[1:] {
		if len(u.delivered) != len(ev.delivered) {
			return fmt.Errorf("delivery count diverged (%s): %d vs %d", u.name, len(ev.delivered), len(u.delivered))
		}
		for id, at := range ev.delivered {
			if ut, ok := u.delivered[id]; !ok || ut != at {
				return fmt.Errorf("packet %d delivery time diverged: %s %d vs %s %d",
					id, ev.name, at, u.name, ut)
			}
		}
	}
	return nil
}

// TestDifferentialChurnOverlap runs the scripted overlapping-event
// scenarios cycle-exact across all six cores. Node numbering: 6×6 mesh,
// node = y*6 + x.
func TestDifferentialChurnOverlap(t *testing.T) {
	ev := func(k reconfig.EventKind, n geom.NodeID) reconfig.Event {
		return reconfig.Event{Kind: k, Node: n}
	}
	lnk := func(k reconfig.EventKind, n geom.NodeID, d geom.Direction) reconfig.Event {
		return reconfig.Event{Kind: k, Node: n, Dir: d}
	}
	scenarios := []churnScenario{
		{
			// A second failure lands while router 14's gate drain is in
			// progress; the drain must complete around the new hole.
			name: "gate_drain_with_concurrent_link_fail", seed: 201, cycles: 900,
			steps: []churnStep{
				{cyc: 100, ev: ev(reconfig.EvGate, 14)},
				{cyc: 110, ev: lnk(reconfig.EvFailLink, 20, geom.East)},
				{cyc: 400, ev: ev(reconfig.EvRecoverRouter, 14)},
			},
		},
		{
			// The power-off is revoked mid-drain: the router never dies, no
			// epoch advances for the revocation, and traffic resumes through it.
			name: "revoked_poweroff", seed: 202, cycles: 800,
			steps: []churnStep{
				{cyc: 100, ev: ev(reconfig.EvGate, 21)},
				{cyc: 104, ev: ev(reconfig.EvRecoverRouter, 21)},
				{cyc: 300, ev: ev(reconfig.EvGate, 21)},
				{cyc: 320, ev: ev(reconfig.EvUngate, 21)},
			},
		},
		{
			// An abrupt fail overrides the same router's graceful drain: the
			// in-progress gate must not complete later (no double power-off).
			name: "fail_overrides_gate_drain", seed: 203, cycles: 900,
			steps: []churnStep{
				{cyc: 100, ev: ev(reconfig.EvGate, 15)},
				{cyc: 103, ev: ev(reconfig.EvFailRouter, 15)},
				{cyc: 500, ev: ev(reconfig.EvRecoverRouter, 15)},
			},
		},
		{
			// Rapid fail→recover→fail on one router: FSM resets, fence
			// sweeps, and table invalidations must replay identically.
			name: "fail_recover_fail_same_router", seed: 204, cycles: 1000,
			steps: []churnStep{
				{cyc: 80, ev: ev(reconfig.EvFailRouter, 8)},
				{cyc: 240, ev: ev(reconfig.EvRecoverRouter, 8)},
				{cyc: 300, ev: ev(reconfig.EvFailRouter, 8)},
				{cyc: 600, ev: ev(reconfig.EvRecoverRouter, 8)},
			},
		},
		{
			// A link flaps while its endpoint router also fails and recovers:
			// idempotence (re-failing the dead link is a noop) plus correct
			// liveness once everything is back.
			name: "link_flap_with_router_overlap", seed: 205, cycles: 1000,
			steps: []churnStep{
				{cyc: 90, ev: lnk(reconfig.EvFailLink, 14, geom.North)},
				{cyc: 150, ev: ev(reconfig.EvFailRouter, 14)},
				{cyc: 160, ev: lnk(reconfig.EvFailLink, 14, geom.North)}, // noop: endpoint dead
				{cyc: 350, ev: ev(reconfig.EvRecoverRouter, 14)},
				{cyc: 360, ev: lnk(reconfig.EvRecoverLink, 14, geom.North)},
				{cyc: 420, ev: lnk(reconfig.EvRecoverLink, 14, geom.North)}, // noop: already intact
			},
		},
		{
			// The scheduled queue under overlap: recoveries queued behind
			// future cycles while more failures keep landing, including two
			// events due the same cycle (submission order must win in every
			// core).
			name: "scheduled_queue_overlap", seed: 206, cycles: 1100,
			steps: []churnStep{
				{cyc: 60, ev: ev(reconfig.EvFailRouter, 9)},
				{cyc: 60, ev: ev(reconfig.EvRecoverRouter, 9), queueAt: 500},
				{cyc: 120, ev: lnk(reconfig.EvFailLink, 27, geom.West)},
				{cyc: 120, ev: lnk(reconfig.EvRecoverLink, 27, geom.West), queueAt: 500},
				{cyc: 200, ev: ev(reconfig.EvFailRouter, 28)},
				{cyc: 200, ev: ev(reconfig.EvRecoverRouter, 28), queueAt: 700},
			},
		},
		{
			// A scheduled gate whose target dies before the gate is due: the
			// queued event must degrade to a noop identically everywhere.
			name: "stale_scheduled_gate", seed: 207, cycles: 900,
			steps: []churnStep{
				{cyc: 50, ev: ev(reconfig.EvGate, 22), queueAt: 400},
				{cyc: 200, ev: ev(reconfig.EvFailRouter, 22)},
				{cyc: 600, ev: ev(reconfig.EvRecoverRouter, 22)},
			},
		},
		{
			// Churn during a deadlock-recovery storm: a hair-trigger TDD keeps
			// SB rounds running while routers fail and recover under them.
			name: "churn_during_recovery_storm", seed: 208, cycles: 1200, tdd: 20,
			steps: []churnStep{
				{cyc: 150, ev: ev(reconfig.EvFailRouter, 14)},
				{cyc: 152, ev: lnk(reconfig.EvFailLink, 7, geom.East)},
				{cyc: 400, ev: ev(reconfig.EvRecoverRouter, 14)},
				{cyc: 402, ev: lnk(reconfig.EvRecoverLink, 7, geom.East)},
				{cyc: 500, ev: ev(reconfig.EvFailRouter, 21)},
				{cyc: 800, ev: ev(reconfig.EvRecoverRouter, 21)},
			},
		},
		{
			// The same storm under SPIN-mode recovery.
			name: "churn_during_spin_storm", seed: 209, cycles: 1200, tdd: 20, spin: true,
			steps: []churnStep{
				{cyc: 150, ev: ev(reconfig.EvFailRouter, 14)},
				{cyc: 400, ev: ev(reconfig.EvRecoverRouter, 14)},
				{cyc: 500, ev: lnk(reconfig.EvFailLink, 9, geom.North)},
				{cyc: 800, ev: lnk(reconfig.EvRecoverLink, 9, geom.North)},
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			if err := runChurnScenario(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}
