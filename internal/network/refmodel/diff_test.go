package refmodel

// The differential harness: every scenario builds a fleet of
// identically seeded simulations — topology, fault set, traffic
// schedule, recovery controller, runtime reconfiguration — and drives
// one through the event-driven Sim.Step, one through this package's
// full-scan Stepper, and one per requested shard count through the
// sharded parallel stepper, comparing the complete Stats struct,
// occupancy, and progress marker after EVERY cycle, plus per-packet
// delivery times at the end. All cores share the per-node movement
// primitives, so any divergence isolates a wake-scheduling bug in the
// event core or an ordering/raciness bug in the sharded stepper.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/perturb"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// diffShardCounts are the sharded-core variants every full scenario
// runs alongside the reference pair. 1 exercises the knob's sequential
// fallback; the rest exercise real parallel execution (counts above the
// mesh height clamp, which is itself part of the contract).
var diffShardCounts = []int{1, 2, 4, 8}

// unit is one core under differential comparison.
type unit struct {
	name      string
	sim       *network.Sim
	step      func()
	mgr       *reconfig.Manager
	delivered map[int64]int64
}

// runScenario derives a full scenario from seed (topology shape and
// faults, config, traffic, SB controller, mid-run kills or power-gating),
// runs it under every core, and returns an error describing the first
// divergence or conservation violation. checkEqual additionally demands
// cycle-exact equality between the cores (the conservation invariant is
// always checked, on all of them); shardCounts selects the sharded
// variants riding along with the event/refmodel pair.
func runScenario(seed int64, cycles int, checkEqual bool, shardCounts []int) error {
	return runScenarioKnobs(seed, cycles, checkEqual, shardCounts, perturb.Knobs{}, false)
}

// runScenarioKnobs is runScenario with a perturbed control plane: every
// unit gets its own identically seeded Perturber applying knobs to all
// SB controller messages, so perturbation decisions are part of the
// shared trajectory and the cores must stay cycle-exact through lost,
// delayed, reordered, and duplicated control messages. forceSpin pins
// SPIN recovery mode on (instead of the seed-derived draw), for
// perturbed SPIN-storm scenarios.
func runScenarioKnobs(seed int64, cycles int, checkEqual bool, shardCounts []int, knobs perturb.Knobs, forceSpin bool) error {
	hrng := rand.New(rand.NewSource(seed))
	w := 4 + hrng.Intn(5)
	h := 4 + hrng.Intn(5)
	kind := topology.LinkFaults
	if hrng.Intn(4) == 0 {
		kind = topology.RouterFaults
	}
	faults := hrng.Intn(1 + w*h/4)
	topoSeed := hrng.Int63()

	var cfg network.Config
	if hrng.Intn(4) == 0 {
		// Non-default pipeline latencies stress the scheduler's wake
		// horizons.
		cfg.RouterLatency = 1 + hrng.Intn(2)
		cfg.LinkLatency = 1 + hrng.Intn(3)
	}
	simSeed := hrng.Int63()

	// SB recovery on most scenarios (deadlock storms are the hard case
	// for wake scheduling); occasionally SPIN mode or no recovery at all
	// (wedged deadlocks must wedge identically).
	attachSB := hrng.Intn(5) != 0
	opt := core.Options{TDD: int64(16 + hrng.Intn(32))}
	opt.Spin = hrng.Intn(4) == 0
	var perturbSeed int64
	if !knobs.IsZero() {
		// Perturbing the control plane requires one: force the controller
		// on, and derive the per-unit perturber seed from the scenario so
		// every core sees the same drop/delay/reorder/duplicate decisions.
		attachSB = true
		perturbSeed = hrng.Int63()
	}
	if forceSpin {
		opt.Spin = true
	}

	units := []*unit{{name: "event"}, {name: "refmodel"}}
	for _, n := range shardCounts {
		units = append(units, &unit{name: fmt.Sprintf("shards%d", n)})
	}
	for i, u := range units {
		ucfg := cfg
		if i >= 2 {
			ucfg.Shards = shardCounts[i-2]
		}
		topo := topology.RandomIrregular(w, h, kind, faults, topoSeed)
		u.sim = network.New(topo, ucfg, rand.New(rand.NewSource(simSeed)))
		u.step = u.sim.Step
		if i >= 2 {
			// Exercise every sharded execution path across the corpus:
			// a third of the scenarios force the parallel phases (these
			// meshes are small enough that the live-count heuristic
			// would otherwise stay inline), a third force the inline
			// sequential path, and the rest leave the heuristic free to
			// mix paths cycle by cycle. Results must be identical on
			// every path — that is exactly what this harness proves.
			switch seed % 3 {
			case 0:
				u.sim.SetShardInlineThreshold(-1)
			case 1:
				u.sim.SetShardInlineThreshold(1 << 30)
			}
		}
		if u.name != "refmodel" {
			// Density is execution configuration like Shards: each unit
			// draws a different policy — hysteretic, pinned sparse, pinned
			// dense, rotating with the seed and the unit's position — and
			// the harness demands they all stay cycle-exact anyway. Across
			// the corpus this runs every scenario with dense forced on,
			// forced off, and free to switch mid-run, at every shard
			// count. (The refmodel is detached from the event loop, so
			// density does not apply there.)
			switch (seed + int64(i)) % 3 {
			case 1:
				u.sim.SetDenseMode(network.DenseForcedOff)
			case 2:
				u.sim.SetDenseMode(network.DenseForcedOn)
			}
		}
		if u.name == "refmodel" {
			u.step = New(u.sim).Step
			// The reference unit runs unpooled: a pooling bug in the
			// event/sharded cores (use-after-release, aliased route span)
			// then perturbs their trajectory but not the reference's, and
			// the divergence is caught cycle-for-cycle below.
			u.sim.SetPooling(false)
		}
		if attachSB {
			uopt := opt
			if !knobs.IsZero() {
				// A fresh, identically seeded perturber per unit: the
				// stream is stateful, so sharing one instance would let the
				// first-stepped core consume the other units' draws.
				uopt.Perturb = perturb.New(perturb.Config{Default: knobs, Seed: perturbSeed})
			}
			core.Attach(u.sim, uopt)
		}
		u.delivered = make(map[int64]int64)
		d := u.delivered
		u.sim.OnDeliver = func(p *network.Packet) { d[p.ID] = p.DeliveredAt }
	}
	ev := units[0]

	// Mid-run topology changes go through reconfig managers (mirrored
	// call for call); static scenarios route over a shared table.
	kills := hrng.Intn(10) < 3
	gating := !kills && hrng.Intn(10) < 2
	var min *routing.Minimal
	if kills || gating {
		for _, u := range units {
			u.mgr = reconfig.New(u.sim)
		}
	} else {
		min = routing.NewMinimal(ev.sim.Topo)
	}
	// route returns one route per unit (managers may rebuild tables
	// differently per instance only if the cores diverged — flagged).
	routeBuf := make([]routing.Route, len(units))
	route := func(src, dst geom.NodeID) ([]routing.Route, bool, error) {
		if ev.mgr != nil {
			ok0 := false
			for i, u := range units {
				rt, ok := u.mgr.Route(src, dst)
				if i == 0 {
					ok0 = ok
				} else if ok != ok0 {
					return nil, false, fmt.Errorf("route tables diverged for %v->%v (%s vs %s)",
						src, dst, ev.name, u.name)
				}
				routeBuf[i] = rt
			}
			return routeBuf, ok0, nil
		}
		r, ok := min.Route(src, dst, hrng)
		for i := range routeBuf {
			routeBuf[i] = r
		}
		return routeBuf, ok, nil
	}

	window := cycles * 2 / 3
	rate := 0.02 + 0.10*hrng.Float64()

	type killEvent struct {
		cyc    int
		router bool
	}
	var killPlan []killEvent
	if kills {
		for i := 0; i < 1+hrng.Intn(2); i++ {
			killPlan = append(killPlan, killEvent{cyc: 50 + hrng.Intn(window), router: hrng.Intn(2) == 0})
		}
	}
	gateAt, ungateAt := -1, -1
	var gateTarget geom.NodeID
	if gating {
		gateAt = 50 + hrng.Intn(window/2)
		ungateAt = gateAt + 100 + hrng.Intn(window/2)
	}

	for cyc := 0; cyc < cycles; cyc++ {
		for _, evt := range killPlan {
			if evt.cyc != cyc {
				continue
			}
			if evt.router {
				alive := ev.sim.Topo.AliveRouters()
				if len(alive) == 0 {
					continue
				}
				n := alive[hrng.Intn(len(alive))]
				for _, u := range units {
					u.mgr.FailRouter(n)
				}
			} else {
				links := ev.sim.Topo.AliveUndirectedLinks()
				if len(links) == 0 {
					continue
				}
				l := links[hrng.Intn(len(links))]
				for _, u := range units {
					u.mgr.FailLink(l.From, l.Dir)
				}
			}
		}
		if cyc == gateAt {
			alive := ev.sim.Topo.AliveRouters()
			gateTarget = alive[hrng.Intn(len(alive))]
			e0 := ev.mgr.RequestGate(gateTarget)
			for _, u := range units[1:] {
				if eu := u.mgr.RequestGate(gateTarget); (eu == nil) != (e0 == nil) {
					return fmt.Errorf("cycle %d: RequestGate(%v) mismatch: %s %v vs %s %v",
						cyc, gateTarget, ev.name, e0, u.name, eu)
				}
			}
		}
		if gating && cyc > gateAt && cyc < ungateAt {
			g0 := ev.mgr.TryCompleteGates()
			for _, u := range units[1:] {
				if gu := u.mgr.TryCompleteGates(); len(gu) != len(g0) {
					return fmt.Errorf("cycle %d: gate completion mismatch: %s %v vs %s %v",
						cyc, ev.name, g0, u.name, gu)
				}
			}
		}
		if cyc == ungateAt {
			for _, u := range units {
				u.mgr.Ungate(gateTarget)
			}
		}

		if cyc < window {
			alive := ev.sim.Topo.AliveRouters()
			for _, src := range alive {
				if hrng.Float64() >= rate {
					continue
				}
				dst := alive[hrng.Intn(len(alive))]
				if dst == src {
					continue
				}
				rts, ok, err := route(src, dst)
				if err != nil {
					return fmt.Errorf("cycle %d: %w", cyc, err)
				}
				if !ok {
					for _, u := range units {
						u.sim.Drop()
					}
					continue
				}
				ln := 1
				if hrng.Intn(2) == 0 {
					ln = 5
				}
				vnet := hrng.Intn(ev.sim.Cfg.NumVnets)
				for i, u := range units {
					u.sim.Enqueue(u.sim.NewPacket(src, dst, vnet, ln, rts[i]))
				}
			}
		}

		for _, u := range units {
			u.step()
		}

		for _, u := range units {
			s := u.sim
			if got := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost; got != s.Stats.Offered {
				return fmt.Errorf("cycle %d: %s core conservation violated: Delivered+InFlight+Queued+Lost=%d, Offered=%d",
					cyc, u.name, got, s.Stats.Offered)
			}
		}
		if !checkEqual {
			continue
		}
		for _, u := range units[1:] {
			if u.sim.Stats != ev.sim.Stats {
				return fmt.Errorf("cycle %d: stats diverged\n%-9s %+v\n%-9s %+v",
					cyc, ev.name+":", ev.sim.Stats, u.name+":", u.sim.Stats)
			}
			if u.sim.InFlight() != ev.sim.InFlight() || u.sim.QueuedPackets() != ev.sim.QueuedPackets() {
				return fmt.Errorf("cycle %d: occupancy diverged (%s): inflight %d vs %d, queued %d vs %d",
					cyc, u.name, ev.sim.InFlight(), u.sim.InFlight(), ev.sim.QueuedPackets(), u.sim.QueuedPackets())
			}
			if u.sim.LastProgress != ev.sim.LastProgress {
				return fmt.Errorf("cycle %d: LastProgress diverged (%s): %d vs %d",
					cyc, u.name, ev.sim.LastProgress, u.sim.LastProgress)
			}
		}
	}

	if checkEqual {
		for _, u := range units[1:] {
			if len(u.delivered) != len(ev.delivered) {
				return fmt.Errorf("delivery count diverged (%s): %d vs %d", u.name, len(ev.delivered), len(u.delivered))
			}
			for id, at := range ev.delivered {
				if ut, ok := u.delivered[id]; !ok || ut != at {
					return fmt.Errorf("packet %d delivery time diverged: event %d, %s %d (present %v)",
						id, at, u.name, ut, ok)
				}
			}
		}
	}
	return nil
}

// TestDifferentialEventVsRefModel proves the event-driven core AND the
// sharded parallel core cycle-exact against the full-scan reference
// across 60 seeded irregular-topology scenarios (20 under -short):
// mixed traffic, deadlock storms with SB (and SPIN) recovery,
// non-default pipeline latencies, mid-run link/router kills with
// in-place reroutes, and power-gating drains — comparing full Stats,
// occupancy and progress after every cycle and per-packet delivery
// times at the end, three-way: refmodel vs. event core vs. the sharded
// stepper at shard counts 1, 2, 4 and 8.
func TestDifferentialEventVsRefModel(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 20
	}
	for i := 0; i < seeds; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			if err := runScenario(int64(i)+1, 900+100*(i%6), true, diffShardCounts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialPerturbedControl extends the differential harness with
// perturbed-control scenarios: SB (and SPIN) recovery storms whose
// controller messages are randomly lost, delayed, reordered, and
// duplicated. The perturber draws from its own seeded stream inside the
// controller's fixed call order, so the decisions are part of the shared
// trajectory and all three cores — event, refmodel, sharded (1/2/4/8) —
// must remain cycle-exact through them. This pins down both the
// determinism contract of internal/perturb and the pooled-message
// discipline under duplication in every core.
func TestDifferentialPerturbedControl(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		cycles int
		knobs  perturb.Knobs
		spin   bool
	}{
		{"lossy_probes", 101, 900, perturb.Knobs{Loss: 0.25}, false},
		{"jittered_delivery", 102, 900, perturb.Knobs{Jitter: 0.5}, false},
		{"reordered_control", 103, 900, perturb.Knobs{Reorder: 0.4}, false},
		{"duplicated_control", 104, 900, perturb.Knobs{Dup: 0.35}, false},
		{"hostile_mix", 105, 1100, perturb.Knobs{Loss: 0.2, Jitter: 0.3, Reorder: 0.2, Dup: 0.2}, false},
		{"spin_storm_lossy", 106, 1100, perturb.Knobs{Loss: 0.2, Jitter: 0.3}, true},
		{"spin_storm_dup_reorder", 107, 1100, perturb.Knobs{Reorder: 0.3, Dup: 0.3}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := runScenarioKnobs(tc.seed, tc.cycles, true, diffShardCounts, tc.knobs, tc.spin); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropPacketConservationBothCores is the packet-conservation
// property test: for arbitrary seeded scenarios — random irregular
// topologies, fault schedules, recovery controllers —
//
//	Offered == Delivered + InFlight + QueuedPackets + Lost
//
// holds after every cycle under all cores (packets that never enter the
// system are counted by DroppedUnreachable separately, per the Stats
// contract). runScenario checks the invariant each cycle; this test
// feeds it quick-generated seeds, with one sharded variant riding
// along.
func TestPropPacketConservationBothCores(t *testing.T) {
	f := func(seed int64) bool {
		err := runScenario(seed, 600, false, []int{4})
		if err != nil {
			t.Log(err)
		}
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
