package refmodel

// The differential harness: every scenario builds TWO identically seeded
// simulations — topology, fault set, traffic schedule, recovery
// controller, runtime reconfiguration — and drives one through the
// event-driven Sim.Step and the other through this package's full-scan
// Stepper, comparing the complete Stats struct, occupancy, and progress
// marker after EVERY cycle, plus per-packet delivery times at the end.
// Both cores share the per-node movement primitives, so any divergence
// isolates a wake-scheduling bug in the event core.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// runScenario derives a full scenario from seed (topology shape and
// faults, config, traffic, SB controller, mid-run kills or power-gating),
// runs it under both cores, and returns an error describing the first
// divergence or conservation violation. checkEqual additionally demands
// cycle-exact equality between the cores (the conservation invariant is
// always checked, on both).
func runScenario(seed int64, cycles int, checkEqual bool) error {
	hrng := rand.New(rand.NewSource(seed))
	w := 4 + hrng.Intn(5)
	h := 4 + hrng.Intn(5)
	kind := topology.LinkFaults
	if hrng.Intn(4) == 0 {
		kind = topology.RouterFaults
	}
	faults := hrng.Intn(1 + w*h/4)
	topoSeed := hrng.Int63()
	ta := topology.RandomIrregular(w, h, kind, faults, topoSeed)
	tb := topology.RandomIrregular(w, h, kind, faults, topoSeed)

	var cfg network.Config
	if hrng.Intn(4) == 0 {
		// Non-default pipeline latencies stress the scheduler's wake
		// horizons.
		cfg.RouterLatency = 1 + hrng.Intn(2)
		cfg.LinkLatency = 1 + hrng.Intn(3)
	}
	simSeed := hrng.Int63()
	sa := network.New(ta, cfg, rand.New(rand.NewSource(simSeed)))
	sb := network.New(tb, cfg, rand.New(rand.NewSource(simSeed)))
	ref := New(sb)

	// SB recovery on most scenarios (deadlock storms are the hard case
	// for wake scheduling); occasionally SPIN mode or no recovery at all
	// (wedged deadlocks must wedge identically).
	if hrng.Intn(5) != 0 {
		opt := core.Options{TDD: int64(16 + hrng.Intn(32))}
		opt.Spin = hrng.Intn(4) == 0
		core.Attach(sa, opt)
		core.Attach(sb, opt)
	}

	deliveredA := make(map[int64]int64)
	deliveredB := make(map[int64]int64)
	sa.OnDeliver = func(p *network.Packet) { deliveredA[p.ID] = p.DeliveredAt }
	sb.OnDeliver = func(p *network.Packet) { deliveredB[p.ID] = p.DeliveredAt }

	// Mid-run topology changes go through reconfig managers (mirrored
	// call for call); static scenarios route over a shared table.
	kills := hrng.Intn(10) < 3
	gating := !kills && hrng.Intn(10) < 2
	var ma, mb *reconfig.Manager
	var min *routing.Minimal
	if kills || gating {
		ma, mb = reconfig.New(sa), reconfig.New(sb)
	} else {
		min = routing.NewMinimal(ta)
	}
	route := func(src, dst geom.NodeID) (routing.Route, routing.Route, bool, error) {
		if ma != nil {
			rta, oka := ma.Route(src, dst)
			rtb, okb := mb.Route(src, dst)
			if oka != okb {
				return nil, nil, false, fmt.Errorf("route tables diverged for %v->%v", src, dst)
			}
			return rta, rtb, oka, nil
		}
		r, ok := min.Route(src, dst, hrng)
		return r, r, ok, nil
	}

	window := cycles * 2 / 3
	rate := 0.02 + 0.10*hrng.Float64()

	type killEvent struct {
		cyc    int
		router bool
	}
	var killPlan []killEvent
	if kills {
		for i := 0; i < 1+hrng.Intn(2); i++ {
			killPlan = append(killPlan, killEvent{cyc: 50 + hrng.Intn(window), router: hrng.Intn(2) == 0})
		}
	}
	gateAt, ungateAt := -1, -1
	var gateTarget geom.NodeID
	if gating {
		gateAt = 50 + hrng.Intn(window/2)
		ungateAt = gateAt + 100 + hrng.Intn(window/2)
	}

	for cyc := 0; cyc < cycles; cyc++ {
		for _, ev := range killPlan {
			if ev.cyc != cyc {
				continue
			}
			if ev.router {
				alive := sa.Topo.AliveRouters()
				if len(alive) == 0 {
					continue
				}
				n := alive[hrng.Intn(len(alive))]
				ma.FailRouter(n)
				mb.FailRouter(n)
			} else {
				links := sa.Topo.AliveUndirectedLinks()
				if len(links) == 0 {
					continue
				}
				l := links[hrng.Intn(len(links))]
				ma.FailLink(l.From, l.Dir)
				mb.FailLink(l.From, l.Dir)
			}
		}
		if cyc == gateAt {
			alive := sa.Topo.AliveRouters()
			gateTarget = alive[hrng.Intn(len(alive))]
			ea := ma.RequestGate(gateTarget)
			eb := mb.RequestGate(gateTarget)
			if (ea == nil) != (eb == nil) {
				return fmt.Errorf("cycle %d: RequestGate(%v) mismatch: %v vs %v", cyc, gateTarget, ea, eb)
			}
		}
		if gating && cyc > gateAt && cyc < ungateAt {
			ga := ma.TryCompleteGates()
			gb := mb.TryCompleteGates()
			if len(ga) != len(gb) {
				return fmt.Errorf("cycle %d: gate completion mismatch: %v vs %v", cyc, ga, gb)
			}
		}
		if cyc == ungateAt {
			ma.Ungate(gateTarget)
			mb.Ungate(gateTarget)
		}

		if cyc < window {
			alive := sa.Topo.AliveRouters()
			for _, src := range alive {
				if hrng.Float64() >= rate {
					continue
				}
				dst := alive[hrng.Intn(len(alive))]
				if dst == src {
					continue
				}
				rta, rtb, ok, err := route(src, dst)
				if err != nil {
					return fmt.Errorf("cycle %d: %w", cyc, err)
				}
				if !ok {
					sa.Drop()
					sb.Drop()
					continue
				}
				ln := 1
				if hrng.Intn(2) == 0 {
					ln = 5
				}
				vnet := hrng.Intn(sa.Cfg.NumVnets)
				sa.Enqueue(sa.NewPacket(src, dst, vnet, ln, rta))
				sb.Enqueue(sb.NewPacket(src, dst, vnet, ln, rtb))
			}
		}

		sa.Step()
		ref.Step()

		for i, s := range []*network.Sim{sa, sb} {
			name := [2]string{"event", "refmodel"}[i]
			if got := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost; got != s.Stats.Offered {
				return fmt.Errorf("cycle %d: %s core conservation violated: Delivered+InFlight+Queued+Lost=%d, Offered=%d",
					cyc, name, got, s.Stats.Offered)
			}
		}
		if !checkEqual {
			continue
		}
		if sa.Stats != sb.Stats {
			return fmt.Errorf("cycle %d: stats diverged\nevent:    %+v\nrefmodel: %+v", cyc, sa.Stats, sb.Stats)
		}
		if sa.InFlight() != sb.InFlight() || sa.QueuedPackets() != sb.QueuedPackets() {
			return fmt.Errorf("cycle %d: occupancy diverged: inflight %d vs %d, queued %d vs %d",
				cyc, sa.InFlight(), sb.InFlight(), sa.QueuedPackets(), sb.QueuedPackets())
		}
		if sa.LastProgress != sb.LastProgress {
			return fmt.Errorf("cycle %d: LastProgress diverged: %d vs %d", cyc, sa.LastProgress, sb.LastProgress)
		}
	}

	if checkEqual {
		if len(deliveredA) != len(deliveredB) {
			return fmt.Errorf("delivery count diverged: %d vs %d", len(deliveredA), len(deliveredB))
		}
		for id, at := range deliveredA {
			if bt, ok := deliveredB[id]; !ok || bt != at {
				return fmt.Errorf("packet %d delivery time diverged: event %d, refmodel %d (present %v)", id, at, bt, ok)
			}
		}
	}
	return nil
}

// TestDifferentialEventVsRefModel proves the event-driven core
// cycle-exact against the full-scan reference across 60 seeded
// irregular-topology scenarios (20 under -short): mixed traffic,
// deadlock storms with SB (and SPIN) recovery, non-default pipeline
// latencies, mid-run link/router kills with in-place reroutes, and
// power-gating drains — comparing full Stats, occupancy and progress
// after every cycle and per-packet delivery times at the end.
func TestDifferentialEventVsRefModel(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 20
	}
	for i := 0; i < seeds; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			if err := runScenario(int64(i)+1, 900+100*(i%6), true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropPacketConservationBothCores is the packet-conservation
// property test: for arbitrary seeded scenarios — random irregular
// topologies, fault schedules, recovery controllers —
//
//	Offered == Delivered + InFlight + QueuedPackets + Lost
//
// holds after every cycle under both cores (packets that never enter the
// system are counted by DroppedUnreachable separately, per the Stats
// contract). runScenario checks the invariant each cycle; this test
// feeds it quick-generated seeds.
func TestPropPacketConservationBothCores(t *testing.T) {
	f := func(seed int64) bool {
		err := runScenario(seed, 600, false)
		if err != nil {
			t.Log(err)
		}
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
