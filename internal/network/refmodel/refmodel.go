// Package refmodel drives a network.Sim with the deliberately simple
// full-scan stepper that internal/network used before its core became
// event-driven: every cycle, every node runs the inject, allocate and
// bubble-transfer phases, whether or not anything could possibly happen
// there.
//
// The stepper exists as the reference half of a differential harness
// (see diff_test.go): both cores share the per-node movement primitives
// (Sim.InjectNode, Sim.AllocateNode, Sim.TransferBubbleNode), so any
// divergence between a refmodel-driven run and a Sim.Step-driven run
// isolates a bug in the event core's wake scheduling — the only layer
// that differs.
//
// Contract: a Sim handed to New is permanently detached from its event
// scheduler and must only be advanced through the returned Stepper.
// Ordering is the historical one — hooks, then per-phase ascending-id
// scans — which the event core reproduces by draining its due set in
// ascending id order under the same phase structure.
package refmodel

import (
	"repro/internal/geom"
	"repro/internal/network"
)

// Stepper advances a detached Sim one cycle at a time by full scans.
type Stepper struct {
	S *network.Sim
}

// New detaches s from its event scheduler and returns a full-scan
// stepper for it.
func New(s *network.Sim) *Stepper {
	s.DetachScheduler()
	return &Stepper{S: s}
}

// Step advances the simulation by one cycle, visiting every node in
// every phase.
func (st *Stepper) Step() {
	s := st.S
	for _, f := range s.PreCycle {
		f(s)
	}
	n := len(s.Routers)
	for id := 0; id < n; id++ {
		s.InjectNode(geom.NodeID(id))
	}
	for id := 0; id < n; id++ {
		s.AllocateNode(geom.NodeID(id))
	}
	for id := 0; id < n; id++ {
		s.TransferBubbleNode(geom.NodeID(id))
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
}

// Run advances the simulation by n cycles.
func (st *Stepper) Run(n int) {
	for i := 0; i < n; i++ {
		st.Step()
	}
}
