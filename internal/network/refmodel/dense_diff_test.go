package refmodel

// Dense-mode differential coverage at saturation — the regime the
// dense stepper exists for. The randomized harness (diff_test.go)
// rotates density policies across its 60 scenarios, but their offered
// loads sit mostly below the dense entry threshold; this test drives a
// mesh past saturation so the hysteretic policy must engage, and pins
// the counters: a forced-on unit executes every cycle dense, a
// forced-off unit none, and the auto unit enters exactly once under
// monotone load. Cycle-exactness against the refmodel and across shard
// counts is asserted throughout, so the assertion "density never
// changes results, only speed" is checked precisely where the dense
// code actually runs.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestDifferentialDenseSaturated(t *testing.T) {
	const (
		cycles = 2200
		window = 1600
		rate   = 0.30
	)
	mk := func(shards int) *network.Sim {
		topo := topology.NewMesh(8, 8)
		s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(7)))
		core.Attach(s, core.Options{})
		return s
	}
	type unit struct {
		name string
		sim  *network.Sim
		step func()
	}
	ref := mk(1)
	refUnit := &unit{name: "refmodel", sim: ref, step: New(ref).Step}
	ref.SetPooling(false)

	auto := mk(1)
	forcedOff := mk(1)
	forcedOn := mk(1)
	shAuto := mk(4)
	shOn := mk(4)
	forcedOff.SetDenseMode(network.DenseForcedOff)
	forcedOn.SetDenseMode(network.DenseForcedOn)
	shOn.SetDenseMode(network.DenseForcedOn)
	units := []*unit{
		refUnit,
		{name: "auto", sim: auto, step: auto.Step},
		{name: "forced_off", sim: forcedOff, step: forcedOff.Step},
		{name: "forced_on", sim: forcedOn, step: forcedOn.Step},
		{name: "sharded_auto", sim: shAuto, step: shAuto.Step},
		{name: "sharded_forced_on", sim: shOn, step: shOn.Step},
	}

	hrng := rand.New(rand.NewSource(8))
	min := routing.NewMinimal(ref.Topo)
	alive := ref.Topo.AliveRouters()
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc < window {
			for _, src := range alive {
				if hrng.Float64() >= rate {
					continue
				}
				dst := alive[hrng.Intn(len(alive))]
				if dst == src {
					continue
				}
				r, ok := min.Route(src, dst, hrng)
				if !ok {
					continue
				}
				vnet := hrng.Intn(ref.Cfg.NumVnets)
				var ln = 1 + 4*hrng.Intn(2)
				for _, u := range units {
					u.sim.Enqueue(u.sim.NewPacket(src, dst, vnet, ln, r))
				}
			}
		}
		for _, u := range units {
			u.step()
		}
		for _, u := range units[1:] {
			if u.sim.Stats != ref.Stats {
				t.Fatalf("cycle %d: stats diverged\nrefmodel: %+v\n%s: %+v",
					cyc, ref.Stats, u.name, u.sim.Stats)
			}
			if u.sim.InFlight() != ref.InFlight() || u.sim.QueuedPackets() != ref.QueuedPackets() {
				t.Fatalf("cycle %d: occupancy diverged (%s)", cyc, u.name)
			}
		}
	}

	if c := forcedOn.StepperCounters(); c.DenseCycles != cycles {
		t.Errorf("forced_on ran %d/%d cycles dense", c.DenseCycles, cycles)
	}
	if c := forcedOff.StepperCounters(); c.DenseCycles != 0 || c.DenseEnters != 0 {
		t.Errorf("forced_off ran %d cycles dense (%d enters)", c.DenseCycles, c.DenseEnters)
	}
	if c := auto.StepperCounters(); c.DenseEnters < 1 || c.DenseCycles == 0 {
		t.Errorf("auto policy never engaged at saturation: %+v", c)
	}
	if c := shOn.StepperCounters(); c.DenseCycles != cycles {
		t.Errorf("sharded forced_on ran %d/%d cycles dense", c.DenseCycles, cycles)
	}
	if c := shAuto.StepperCounters(); c.DenseEnters < 1 {
		t.Errorf("sharded auto policy never engaged at saturation: %+v", c)
	}
}
