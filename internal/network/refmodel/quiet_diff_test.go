package refmodel

// Quiet-epoch batching differential: the event and sharded cores may
// fast-forward through cycles in which no router state can change, but
// only when every attached hook has registered a quiescence horizon and
// that horizon is honored. These scenarios are built so the interesting
// transitions — SB probe returns, DD deadlines, disable/enable timers,
// SPIN storm rotations — land *inside* would-be quiet windows: traffic
// arrives in dense bursts that wedge the network into deadlock, then
// stops entirely while the controller's timer-driven recovery plays out
// over an otherwise idle fabric. The full-scan refmodel never skips a
// cycle, so cycle-exact Stats equality (which includes every controller
// counter: probes, disables, recoveries, spin rotations) proves the
// batched cores wake for exactly the cycles the timers demand. Each
// test additionally asserts via StepperCounters that quiet batching
// actually engaged, so the proof is not vacuous.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// runQuietScenario drives a bursty feast-and-famine workload through
// the refmodel, the event core, and sharded variants, demanding
// cycle-exact equality throughout, and returns the event core's stepper
// counters for vacuity checks. Traffic comes in short saturating bursts
// separated by long silences and ends with a drain tail several times
// longer than the controller's detection timeout.
func runQuietScenario(t *testing.T, seed int64, cycles int, spin bool, shardCounts []int) (network.StepperCounters, network.Stats) {
	t.Helper()
	hrng := rand.New(rand.NewSource(seed))
	w := 5 + hrng.Intn(4)
	h := 5 + hrng.Intn(4)
	faults := hrng.Intn(1 + w*h/3)
	topoSeed := hrng.Int63()
	simSeed := hrng.Int63()
	opt := core.Options{TDD: int64(16 + hrng.Intn(32)), Spin: spin}

	units := []*unit{{name: "event"}, {name: "refmodel"}}
	for _, n := range shardCounts {
		units = append(units, &unit{name: fmt.Sprintf("shards%d", n)})
	}
	for i, u := range units {
		var cfg network.Config
		if i >= 2 {
			cfg.Shards = shardCounts[i-2]
		}
		topo := topology.RandomIrregular(w, h, topology.LinkFaults, faults, topoSeed)
		u.sim = network.New(topo, cfg, rand.New(rand.NewSource(simSeed)))
		u.step = u.sim.Step
		if u.name == "refmodel" {
			u.step = New(u.sim).Step
			u.sim.SetPooling(false)
		}
		core.Attach(u.sim, opt)
		u.delivered = make(map[int64]int64)
		d := u.delivered
		u.sim.OnDeliver = func(p *network.Packet) { d[p.ID] = p.DeliveredAt }
	}
	ev := units[0]
	min := routing.NewMinimal(ev.sim.Topo)

	// Bursts cover the first 2/3 of the run; the last third is a pure
	// drain where only controller timers (and any SPIN storm they start)
	// can wake the network.
	period := 140 + hrng.Intn(60)
	burst := 15 + hrng.Intn(15)
	window := cycles * 2 / 3
	alive := ev.sim.Topo.AliveRouters()

	for cyc := 0; cyc < cycles; cyc++ {
		if cyc < window && cyc%period < burst {
			for _, src := range alive {
				if hrng.Float64() >= 0.55 {
					continue
				}
				dst := alive[hrng.Intn(len(alive))]
				if dst == src {
					continue
				}
				r, ok := min.Route(src, dst, hrng)
				if !ok {
					for _, u := range units {
						u.sim.Drop()
					}
					continue
				}
				ln := 5
				if hrng.Intn(3) == 0 {
					ln = 1
				}
				vnet := hrng.Intn(ev.sim.Cfg.NumVnets)
				for _, u := range units {
					u.sim.Enqueue(u.sim.NewPacket(src, dst, vnet, ln, r))
				}
			}
		}
		for _, u := range units {
			u.step()
		}
		for _, u := range units[1:] {
			if u.sim.Stats != ev.sim.Stats {
				t.Fatalf("seed %d cycle %d: stats diverged\n%-9s %+v\n%-9s %+v",
					seed, cyc, ev.name+":", ev.sim.Stats, u.name+":", u.sim.Stats)
			}
			if u.sim.InFlight() != ev.sim.InFlight() || u.sim.QueuedPackets() != ev.sim.QueuedPackets() {
				t.Fatalf("seed %d cycle %d: occupancy diverged (%s)", seed, cyc, u.name)
			}
			if u.sim.LastProgress != ev.sim.LastProgress {
				t.Fatalf("seed %d cycle %d: LastProgress diverged (%s): %d vs %d",
					seed, cyc, u.name, ev.sim.LastProgress, u.sim.LastProgress)
			}
		}
	}
	for _, u := range units[1:] {
		if len(u.delivered) != len(ev.delivered) {
			t.Fatalf("seed %d: delivery count diverged (%s): %d vs %d",
				seed, u.name, len(ev.delivered), len(u.delivered))
		}
		for id, at := range ev.delivered {
			if ut, ok := u.delivered[id]; !ok || ut != at {
				t.Fatalf("seed %d: packet %d delivery time diverged: event %d, %s %d (present %v)",
					seed, id, at, u.name, ut, ok)
			}
		}
	}
	return ev.sim.StepperCounters(), ev.sim.Stats
}

// TestDifferentialQuietBatching: bursty deadlock-prone scenarios with
// the SB controller attached, compared cycle-exact across refmodel,
// event and sharded (1/4) cores. Probe and disable timers must fire at
// their exact cycles even when the core was fast-forwarding, and the
// run as a whole must actually exercise both quiet batching and the SB
// timer machinery.
func TestDifferentialQuietBatching(t *testing.T) {
	// Seed 214 pairs a deadlock disable with quiet windows in a single
	// run; the others contribute heavy quiet, heavy probing, or extra
	// disables so the corpus-level machinery checks below can't go
	// vacuous if one scenario's trajectory shifts.
	seeds := []int64{200, 204, 206, 214, 215}
	if testing.Short() {
		seeds = []int64{200, 214}
	}
	var quiet, probes, disables int64
	for _, seed := range seeds {
		ctr, st := runQuietScenario(t, seed, 1200, false, []int{1, 4})
		quiet += ctr.QuietCycles
		probes += st.ProbesSent
		disables += st.DisablesSent
	}
	if quiet == 0 {
		t.Fatal("no quiet cycles across the corpus — batching never engaged")
	}
	if probes == 0 {
		t.Fatal("no SB probes across the corpus — the timer machinery never ran")
	}
	if disables == 0 {
		t.Fatal("no SB disables across the corpus — no deadlock recovery was exercised")
	}
}

// TestDifferentialQuietSpinStorm is the SPIN variant: storms started by
// a DD expiry mid-quiet-window must rotate on exactly the cycles the
// sequential semantics dictate. Sharded variants ride at 1, 4 and 8.
func TestDifferentialQuietSpinStorm(t *testing.T) {
	// 301 contributes long quiet stretches, 323/328 real storms, 329
	// probe traffic threaded through quiet windows.
	seeds := []int64{301, 323, 328, 329}
	if testing.Short() {
		seeds = []int64{301, 323}
	}
	var quiet, spins int64
	for _, seed := range seeds {
		ctr, st := runQuietScenario(t, seed, 1200, true, []int{1, 4, 8})
		quiet += ctr.QuietCycles
		spins += st.SpinRotations
	}
	if quiet == 0 {
		t.Fatal("no quiet cycles across the SPIN corpus — batching never engaged")
	}
	if spins == 0 {
		t.Fatal("no SPIN rotations across the corpus — no storm ever fired")
	}
}
