package network

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// runShardWorkload drives one seeded random workload on a fresh 8x6
// mesh sim with the given shard count and returns the final sim. The
// traffic schedule depends only on the seed, so two runs at different
// shard counts execute the identical offered load.
func runShardWorkload(t *testing.T, shards int, seed int64, cycles int) *Sim {
	t.Helper()
	topo := topology.RandomIrregular(8, 6, topology.LinkFaults, 8, seed)
	s := New(topo, Config{Shards: shards}, rand.New(rand.NewSource(seed)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(seed + 1))
	alive := topo.AliveRouters()
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc < cycles*2/3 {
			for _, src := range alive {
				if rng.Float64() >= 0.10 {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src {
					continue
				}
				r, ok := min.Route(src, dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1 + 4*rng.Intn(2)
				s.Enqueue(s.NewPacket(src, dst, rng.Intn(s.Cfg.NumVnets), ln, r))
			}
		}
		s.Step()
	}
	return s
}

// TestShardedStepMatchesSequential proves the sharded stepper lands on
// the sequential core's exact Stats and occupancy over seeded random
// workloads at several shard counts (the refmodel differential harness
// does the heavyweight three-way version; this is the fast in-package
// guard).
func TestShardedStepMatchesSequential(t *testing.T) {
	for _, seed := range []int64{3, 17, 40} {
		want := runShardWorkload(t, 1, seed, 700)
		for _, n := range []int{2, 3, 6} {
			got := runShardWorkload(t, n, seed, 700)
			if got.Stats != want.Stats {
				t.Fatalf("seed %d shards %d: stats diverged\n got %+v\nwant %+v",
					seed, n, got.Stats, want.Stats)
			}
			if got.InFlight() != want.InFlight() || got.QueuedPackets() != want.QueuedPackets() {
				t.Fatalf("seed %d shards %d: occupancy diverged", seed, n)
			}
		}
	}
}

// TestShardPartition checks the row-band partition: every router is
// owned by exactly one shard, bands are contiguous and ordered, and the
// requested count clamps to the mesh height.
func TestShardPartition(t *testing.T) {
	for _, tc := range []struct{ w, h, req, want int }{
		{8, 8, 4, 4},
		{8, 8, 64, 8},
		{4, 1, 8, 1},
		{16, 16, 3, 3},
		{5, 7, 0, 1},
		{5, 7, -2, 1},
	} {
		s := New(topology.NewMesh(tc.w, tc.h), Config{Shards: tc.req}, nil)
		if s.Shards() != tc.want {
			t.Fatalf("%dx%d Shards=%d: effective %d, want %d", tc.w, tc.h, tc.req, s.Shards(), tc.want)
		}
		if tc.want == 1 {
			continue
		}
		prev := int8(0)
		for id, k := range s.shardOf {
			if k < prev {
				t.Fatalf("%dx%d: shard ids not monotone at router %d", tc.w, tc.h, id)
			}
			prev = k
		}
		if int(prev) != tc.want-1 {
			t.Fatalf("%dx%d: highest shard %d, want %d", tc.w, tc.h, prev, tc.want-1)
		}
	}
}

// TestRequireUnshardedMigratesWakes collapses a sharded sim mid-run and
// checks nothing is lost: queued traffic still delivers, matching a
// sequential run byte for byte.
func TestRequireUnshardedMigratesWakes(t *testing.T) {
	run := func(collapseAt int) *Sim {
		topo := topology.NewMesh(6, 6)
		s := New(topo, Config{Shards: 4}, rand.New(rand.NewSource(5)))
		min := routing.NewMinimal(topo)
		rng := rand.New(rand.NewSource(6))
		for cyc := 0; cyc < 400; cyc++ {
			if cyc == collapseAt {
				s.RequireUnsharded()
			}
			if cyc < 200 {
				for n := 0; n < 36; n++ {
					if rng.Float64() >= 0.08 {
						continue
					}
					dst := geom.NodeID(rng.Intn(36))
					if dst == geom.NodeID(n) {
						continue
					}
					r, ok := min.Route(geom.NodeID(n), dst, rng)
					if !ok {
						continue
					}
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, 0, 5, r))
				}
			}
			s.Step()
		}
		return s
	}
	want := run(0) // collapses before any work: plain sequential run
	for _, at := range []int{1, 57, 199} {
		got := run(at)
		if got.Stats != want.Stats {
			t.Fatalf("collapse at %d: stats diverged\n got %+v\nwant %+v", at, got.Stats, want.Stats)
		}
		if got.Shards() != 1 {
			t.Fatalf("collapse at %d: still sharded", at)
		}
	}
	if want.Stats.Delivered == 0 {
		t.Fatal("workload delivered nothing — test is vacuous")
	}
}

// TestShardedDeterministicAcrossRuns re-runs the same sharded workload
// and demands bit-identical outcomes: goroutine scheduling must never
// leak into results.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	a := runShardWorkload(t, 4, 9, 500)
	b := runShardWorkload(t, 4, 9, 500)
	if a.Stats != b.Stats || a.InFlight() != b.InFlight() {
		t.Fatalf("sharded runs diverged:\n a %+v\n b %+v", a.Stats, b.Stats)
	}
}

// BenchmarkShardedStep measures the sharded stepper against the
// sequential one on a saturated 16x16 mesh (the scale16 experiment does
// the wall-clock comparison on the full recovery storm).
func BenchmarkShardedStep(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			topo := topology.NewMesh(16, 16)
			s := New(topo, Config{Shards: n}, rand.New(rand.NewSource(1)))
			min := routing.NewMinimal(topo)
			rng := rand.New(rand.NewSource(2))
			alive := topo.AliveRouters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, src := range alive {
					if rng.Float64() >= 0.3 {
						continue
					}
					dst := alive[rng.Intn(len(alive))]
					if dst == src {
						continue
					}
					r, ok := min.Route(src, dst, rng)
					if !ok {
						continue
					}
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
				}
				s.Step()
			}
		})
	}
}
