package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FuzzAllocateGrantInvariants throws randomized irregular topologies,
// traffic, fences, bubble states, and grant filters at the switch
// allocator and checks — via the OnGrant observation hook — that every
// grant it ever issues is legal:
//
//   - never onto a dead or missing link,
//   - never through an active fence except from the fenced-in port,
//   - never vetoed by the GrantFilter (bubble candidates are exempt by
//     design: the fence already constrains them and the paper's recovery
//     drains the bubble unconditionally),
//   - only for head-ready packets (the granted VC really holds the
//     packet and its ReadyAt has passed),
//
// and that the per-output round-robin pointers stay in bounds after
// every cycle.
func FuzzAllocateGrantInvariants(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(0), uint8(0))
	f.Add(int64(3), int64(4), uint8(5), uint8(1))
	f.Add(int64(42), int64(7), uint8(13), uint8(2))
	f.Add(int64(-9), int64(100), uint8(255), uint8(7))
	f.Fuzz(func(t *testing.T, topoSeed, trafficSeed int64, faultByte, modeByte uint8) {
		hrng := rand.New(rand.NewSource(trafficSeed))
		w := 4 + int(faultByte%3)
		h := 4 + int(faultByte/3%3)
		kind := topology.LinkFaults
		if modeByte&1 != 0 {
			kind = topology.RouterFaults
		}
		topo := topology.RandomIrregular(w, h, kind, int(faultByte%10), topoSeed)
		s := New(topo, Config{}, rand.New(rand.NewSource(trafficSeed)))

		// A deterministic, state-free filter so re-evaluating it inside
		// OnGrant gives the same verdict the allocator saw.
		switch modeByte % 3 {
		case 1:
			s.GrantFilter = func(p *Packet, at geom.NodeID, in, out geom.Direction) bool {
				return (p.ID+int64(at)+int64(in)+2*int64(out))%3 != 0
			}
		case 2:
			s.GrantFilter = func(p *Packet, at geom.NodeID, in, out geom.Direction) bool {
				return out == geom.Local || int64(at)%2 == 0
			}
		}

		s.OnGrant = func(p *Packet, vc *VC, at geom.NodeID, in, out geom.Direction) {
			r := &s.Routers[at]
			if out != geom.Local && !s.Topo.HasLink(at, out) {
				t.Fatalf("cycle %d: grant at %v onto dead link %v", s.Now, at, out)
			}
			if r.Fence.Active && out == r.Fence.Out && in != r.Fence.In {
				t.Fatalf("cycle %d: grant at %v from %v through fence %v->%v",
					s.Now, at, in, r.Fence.In, r.Fence.Out)
			}
			if vc.Pkt != p {
				t.Fatalf("cycle %d: granted VC at %v does not hold the granted packet", s.Now, at)
			}
			if vc.ReadyAt > s.Now {
				t.Fatalf("cycle %d: grant at %v for packet ready at %d", s.Now, at, vc.ReadyAt)
			}
			if s.GrantFilter != nil && vc != &r.Bubble.VC &&
				!s.GrantFilter(p, at, in, out) {
				t.Fatalf("cycle %d: grant at %v (%v->%v) vetoed by GrantFilter", s.Now, at, in, out)
			}
		}

		alive := topo.AliveRouters()
		if len(alive) < 2 {
			return
		}
		min := routing.NewMinimal(topo)

		// Random fences and bubble activations, reshuffled mid-run.
		mutate := func() {
			for i := 0; i < 3; i++ {
				n := alive[hrng.Intn(len(alive))]
				r := &s.Routers[n]
				if hrng.Intn(3) == 0 {
					r.Fence = Fence{}
				} else {
					r.Fence = Fence{
						Active: true,
						In:     geom.AllPorts[hrng.Intn(geom.NumPorts)],
						Out:    geom.AllPorts[hrng.Intn(geom.NumPorts)],
					}
				}
				if hrng.Intn(2) == 0 {
					b := &s.Routers[alive[hrng.Intn(len(alive))]].Bubble
					b.Present = true
					b.Active = hrng.Intn(2) == 0
					b.InPort = geom.LinkDirs[hrng.Intn(len(geom.LinkDirs))]
				}
			}
			s.WakeAll()
		}
		mutate()

		slots := s.Cfg.SlotsPerPort()
		total := geom.NumPorts * slots
		cycles := 200 + int(modeByte)
		for cyc := 0; cyc < cycles; cyc++ {
			if cyc%50 == 25 {
				mutate()
			}
			if cyc < cycles*3/4 {
				for i := 0; i < 4; i++ {
					src := alive[hrng.Intn(len(alive))]
					dst := alive[hrng.Intn(len(alive))]
					if dst == src {
						continue
					}
					if r, ok := min.Route(src, dst, hrng); ok {
						ln := 1 + 4*hrng.Intn(2)
						s.Enqueue(s.NewPacket(src, dst, hrng.Intn(s.Cfg.NumVnets), ln, r))
					}
				}
			}
			s.Step()
			for id := range s.Routers {
				for _, out := range geom.AllPorts {
					if ptr := s.Routers[id].saPtr[out]; ptr < 0 || ptr > total {
						t.Fatalf("cycle %d: router %d saPtr[%v] = %d out of [0,%d]",
							s.Now, id, out, ptr, total)
					}
				}
			}
		}
	})
}
