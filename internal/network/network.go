// Package network implements a deterministic, event-driven, flit-timed
// NoC simulator for mesh-derived irregular topologies: 5-port
// virtual-channel routers with virtual cut-through flow control
// (packet-sized VCs, as the paper assumes in Section IV-A),
// credit-accurate buffer reuse, 1-cycle routers and 1-cycle links,
// multiple virtual networks, and per-class link utilization accounting.
//
// Step is wakeup-driven: quiescent routers are skipped entirely, and a
// router is processed only in cycles for which a wake was scheduled (see
// sched.go for the wake rules and the equivalence invariant). The
// per-node phase primitives InjectNode, AllocateNode and
// TransferBubbleNode are exported so the deliberately naive full-scan
// stepper in internal/network/refmodel can drive the identical movement
// logic; a differential harness there proves the two cores cycle-exact.
//
// The simulator is scheme-agnostic: deadlock-recovery machinery (Static
// Bubble FSMs in internal/core, escape-VC timeouts in internal/escape)
// attaches through hooks — per-cycle callbacks, a VC allocation filter, an
// output override, injection fences (the is_deadlock mechanism), and an
// optional extra buffer per router (the static bubble).
package network

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Config sets the structural parameters of the simulated NoC. The zero
// value of any field selects the paper's Table II default.
type Config struct {
	// NumVnets is the number of virtual networks (message classes).
	// Default 3.
	NumVnets int
	// VCsPerVnet is the number of virtual channels per vnet per input
	// port. Default 4.
	VCsPerVnet int
	// VCDepth is the VC depth in flits; packets longer than this are
	// rejected (virtual cut-through requires packet-sized VCs). Default 5.
	VCDepth int
	// RouterLatency is the per-hop router pipeline delay in cycles.
	// Default 1.
	RouterLatency int
	// LinkLatency is the per-hop link traversal delay in cycles.
	// Default 1.
	LinkLatency int
	// Shards is the number of spatial shards (contiguous row bands) the
	// stepper advances on parallel goroutines. 0 or 1 selects the
	// sequential core; larger values are clamped to the mesh height. The
	// sharded stepper is byte-identical to the sequential one — same
	// Stats, same per-packet delivery cycles, same RNG draws — for any
	// value (see shard.go for the determinism argument), so Shards is
	// execution configuration, not a simulation parameter.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.NumVnets == 0 {
		c.NumVnets = 3
	}
	if c.VCsPerVnet == 0 {
		c.VCsPerVnet = 4
	}
	if c.VCDepth == 0 {
		c.VCDepth = 5
	}
	if c.RouterLatency == 0 {
		c.RouterLatency = 1
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	return c
}

// SlotsPerPort returns the number of VCs at each input port.
func (c Config) SlotsPerPort() int { return c.NumVnets * c.VCsPerVnet }

// Sim is one simulated network instance. Construct with New; advance with
// Step. All exported state may be read by scheme plugins; mutation outside
// the documented hooks voids determinism guarantees.
type Sim struct {
	Cfg     Config
	Topo    *topology.Topology
	Routers []Router
	// NIQueue[node][vnet] is the source-side injection FIFO.
	NIQueue [][]NIRing
	// Now is the current cycle (events of cycle Now happen during Step).
	Now int64
	// Rng drives all stochastic choices (traffic should share it for
	// reproducibility). The core itself never draws from it.
	Rng *rand.Rand

	// PreCycle hooks run at the start of each Step, before injection and
	// switch allocation. Control-message transport and FSMs live here.
	PreCycle []func(*Sim)
	// PostCycle hooks run at the end of each Step, after allocation.
	PostCycle []func(*Sim)
	// VCFilter, when non-nil, restricts which downstream VC slot a packet
	// may be allocated: return false to veto slot vcIdx (within the
	// packet's vnet) at router dst's input port in. Used by the escape-VC
	// scheme to reserve escape channels.
	VCFilter func(p *Packet, dst geom.NodeID, in geom.Direction, vcIdx int) bool
	// OutputOverride, when non-nil, may supply the desired output port for
	// a packet at a router, overriding its embedded source route. Used by
	// the escape-VC scheme once a packet moves to escape routing.
	OutputOverride func(p *Packet, at geom.NodeID) (geom.Direction, bool)
	// GrantFilter, when non-nil, may veto a switch-allocation candidate:
	// packet p buffered at router at's input port `in` asking for output
	// `out`. Flow-control policies (e.g. bubble flow control's injection
	// restriction) hook in here.
	GrantFilter func(p *Packet, at geom.NodeID, in, out geom.Direction) bool
	// OnDeliver, when non-nil, is called once per delivered packet (at
	// ejection grant time). Latency collectors hook in here.
	OnDeliver func(p *Packet)
	// OnGrant, when non-nil, observes every successful switch-allocation
	// grant immediately before the packet moves: p leaves router at's
	// input port `in` (vc is the buffer it occupied — compare against
	// &Routers[at].Bubble.VC to identify bubble departures) through
	// output `out`. Invariant checkers (the allocation fuzz test) hook in
	// here.
	OnGrant func(p *Packet, vc *VC, at geom.NodeID, in, out geom.Direction)

	Stats Stats
	// LastProgress is the last cycle any packet moved between buffers or
	// was delivered; the operational deadlock detector watches it.
	LastProgress int64

	nextPktID int64
	inFlight  int64
	// occ/occNL/grantN hold each router's buffer-occupancy counters and
	// grant count in struct-of-arrays layout, indexed by router id: the
	// allocator's early-out (occ), the SB controller's detection predicate
	// (occNL) and its progress witness (grantN) scan these every cycle, and
	// a contiguous int32/int64 array is far denser than striding through
	// ~1KB Router structs. Routers expose them via Occupied /
	// OccupiedNonLocal / Grants.
	occ    []int32
	occNL  []int32
	grantN []int64
	// niPend[id] counts packets queued across router id's NI rings —
	// the dense stepper's activity predicate reads it instead of
	// touching every ring. Maintained by Enqueue and injectNode; code
	// that edits NIQueue contents directly must call RecountNIPending.
	niPend []int32
	// pool recycles delivered/lost packets and their route spans (see
	// pool.go for the ownership rules).
	pool poolState
	// seqGather is the switch-allocation scratch of the sequential
	// stepper (and of the coordinator's plan decoding under the sharded
	// one); each shard worker owns its own.
	seqGather allocGather

	sched  scheduler
	dueBuf []int32

	// nshards is the effective shard count; 1 selects the sequential
	// Step path. shardOf maps a router id to its owning shard (nil when
	// unsharded); shards holds the per-shard schedulers and scratch.
	// shardWG is the per-cycle barrier; it lives on the Sim (not on the
	// stepper's stack) so the parallel phase does not allocate.
	nshards int
	shardOf []int8
	shards  []shardState
	shardWG sync.WaitGroup

	// quietUntil > Now means the simulator proved that no state can
	// change before cycle quietUntil: Step just advances Now (the
	// quiet-epoch fast-forward). Established by maybeQuiet at the end of
	// an empty-due cycle, torn down by any wake/mutation earlier than it
	// (see wakeNode, RemovePacket, DeliverOutOfBand).
	quietUntil int64
	// quiesced counts the attached PreCycle+PostCycle hooks covered by a
	// RegisterQuiescence call; quiet epochs engage only when every hook
	// is covered (an unregistered hook may act on any cycle, so skipping
	// cycles would change behavior).
	quiesced   int
	horizonFns []func(*Sim) int64
	// inlineThreshold selects the sharded stepper's inline sequential
	// path: when the total number of pending wakes across all shards is
	// at or below it, the cycle runs on the coordinator with no goroutine
	// handoff. See SetShardInlineThreshold.
	inlineThreshold int
	// parCommit is latched per cycle by the sharded stepper: true when
	// the commit phase may run fully parallel (GrantFilter and OnGrant
	// nil); false falls back to the sequential plan-decode commit.
	parCommit bool
	ctr       StepperCounters
	// dense holds the dense stepper's mode controller and sweep scratch
	// (see dense.go): at saturation the stepper drops the wakeup wheel
	// and runs flat phase sweeps over an active-router bitmap.
	dense denseState
	// xfillObs, when non-nil, observes cross-shard buffer fills at fold
	// time (SetXFillObserver) — seam-invariant test instrumentation.
	xfillObs func(src, dst geom.NodeID)
}

// StepperCounters returns the stepper path counters accumulated so far.
func (s *Sim) StepperCounters() StepperCounters { return s.ctr }

// RegisterQuiescence declares that nHooks of the attached
// PreCycle/PostCycle hooks belong to a scheme that is quiescent between
// its announced horizons: horizon (if non-nil) returns the earliest
// future cycle at which the scheme may act or observe state, given that
// no packet moves before it (return the current cycle to veto
// fast-forward). Quiet-epoch batching engages only when every attached
// hook is covered by a registration; schemes that cannot bound their
// next action simply do not register and cost nothing.
func (s *Sim) RegisterQuiescence(nHooks int, horizon func(*Sim) int64) {
	s.quiesced += nHooks
	if horizon != nil {
		s.horizonFns = append(s.horizonFns, horizon)
	}
}

// SetShardInlineThreshold tunes the sharded stepper's inline fallback:
// when the total pending-wake count across shards is at or below n, the
// cycle runs sequentially on the coordinator, skipping the parallel
// phase handoff (which costs more than the work itself on a near-idle
// network). n < 0 forces the parallel path every cycle; a very large n
// forces inline. The choice affects speed only — results are
// byte-identical on every path.
func (s *Sim) SetShardInlineThreshold(n int) { s.inlineThreshold = n }

// defaultInlineThreshold: a cycle with ≤32 active routers is cheaper to
// run inline than to fan out (two barrier crossings cost ~a few µs;
// 32 router visits cost well under that).
const defaultInlineThreshold = 32

// New builds a simulator over topo. The topology may be irregular; dead
// routers carry no state.
func New(topo *topology.Topology, cfg Config, rng *rand.Rand) *Sim {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	n := topo.NumNodes()
	s := &Sim{
		Cfg:     cfg,
		Topo:    topo,
		Routers: make([]Router, n),
		NIQueue: make([][]NIRing, n),
		Rng:     rng,
	}
	s.occ = make([]int32, n)
	s.occNL = make([]int32, n)
	s.grantN = make([]int64, n)
	s.niPend = make([]int32, n)
	slots := cfg.SlotsPerPort()
	for id := 0; id < n; id++ {
		r := &s.Routers[id]
		r.ID = geom.NodeID(id)
		r.sim = s
		for p := 0; p < geom.NumPorts; p++ {
			r.In[p] = make([]VC, slots)
		}
		s.NIQueue[id] = make([]NIRing, cfg.NumVnets)
	}
	s.seqGather.init(cfg)
	s.sched.init(n)
	s.dense.init(n, cfg)
	s.nshards = 1
	s.inlineThreshold = defaultInlineThreshold
	if k := effectiveShards(cfg.Shards, topo.Height()); k > 1 {
		s.initShards(k)
	}
	return s
}

// NewPacket allocates a packet with a fresh id. length is in flits and
// must fit the VC depth. Under pooling (the default) the packet may be a
// recycled one and route is COPIED into the Sim's arena — the caller
// keeps its buffer; with SetPooling(false) the route slice is stored
// as-is and ownership transfers to the packet.
func (s *Sim) NewPacket(src, dst geom.NodeID, vnet, length int, route routing.Route) *Packet {
	if length < 1 || length > s.Cfg.VCDepth {
		panic(fmt.Sprintf("network: packet length %d outside [1,%d]", length, s.Cfg.VCDepth))
	}
	if vnet < 0 || vnet >= s.Cfg.NumVnets {
		panic(fmt.Sprintf("network: vnet %d outside [0,%d)", vnet, s.Cfg.NumVnets))
	}
	s.nextPktID++
	if s.pool.disabled {
		return &Packet{
			ID:          s.nextPktID,
			Src:         src,
			Dst:         dst,
			Vnet:        vnet,
			Len:         length,
			Route:       route,
			CreatedAt:   s.Now,
			InjectedAt:  -1,
			DeliveredAt: -1,
		}
	}
	var p *Packet
	if n := len(s.pool.free); n > 0 {
		p = s.pool.free[n-1]
		s.pool.free[n-1] = nil
		s.pool.free = s.pool.free[:n-1]
		s.pool.stats.PacketReuses++
		// Reset everything except the recycling identity (gen) and the
		// arena span, which SetRoute below reuses in place when it fits.
		*p = Packet{gen: p.gen, Route: p.Route, routeOwned: p.routeOwned}
	} else {
		p = new(Packet)
		s.pool.stats.PacketAllocs++
	}
	p.ID = s.nextPktID
	p.Src, p.Dst = src, dst
	p.Vnet, p.Len = vnet, length
	p.CreatedAt = s.Now
	p.InjectedAt, p.DeliveredAt = -1, -1
	s.SetRoute(p, route)
	return p
}

// Enqueue places p into its source NI queue. The caller is responsible
// for having computed a valid route (or an OutputOverride).
func (s *Sim) Enqueue(p *Packet) {
	s.NIQueue[p.Src][p.Vnet].Push(p)
	s.niPend[p.Src]++
	s.Stats.Offered++
	s.wakeNode(p.Src, s.Now)
}

// NIPending returns the number of packets queued across router id's NI
// rings (the aggregate the dense activity predicate reads).
func (s *Sim) NIPending(id geom.NodeID) int { return int(s.niPend[id]) }

// RecountNIPending resynchronizes router id's NI-pending counter from
// its rings. Code that mutates NIQueue contents without going through
// Enqueue/injectNode (reconfig's reroute filter) must call it before
// the simulation steps again.
func (s *Sim) RecountNIPending(id geom.NodeID) {
	var n int32
	for v := range s.NIQueue[id] {
		n += int32(s.NIQueue[id][v].Len())
	}
	s.niPend[id] = n
}

// wakeNode routes a wake to the scheduler owning router id: the
// per-shard scheduler under the sharded stepper, the global one
// otherwise. Inside a parallel phase every caller targets its own
// shard (injection and gather only self-wake); cross-shard wakes
// happen only in sequential contexts (the commit pass, Enqueue,
// hooks), so no scheduler is ever touched concurrently.
func (s *Sim) wakeNode(id geom.NodeID, t int64) {
	if t < s.quietUntil {
		// A wake landing inside a proven-quiet window voids the proof
		// (e.g. Enqueue during fast-forward): resume cycle-by-cycle
		// stepping. On the hot path this is one always-false compare.
		s.quietUntil = 0
	}
	if s.shardOf != nil {
		s.shards[s.shardOf[id]].sched.wake(id, t)
		return
	}
	s.sched.wake(id, t)
}

// Wake schedules router n for processing in the current cycle (or the
// next one if this cycle's work already started). Step's wake rules
// cover every mutation the simulator or its documented hooks perform;
// call Wake after mutating router or VC state through any other channel
// — e.g. tests that hand-place packets into buffers, or re-enabling a
// router in the topology.
func (s *Sim) Wake(n geom.NodeID) { s.wakeNode(n, s.Now) }

// WakeAll schedules every router — the blunt form of Wake for callers
// that mutated state broadly.
func (s *Sim) WakeAll() {
	for id := range s.Routers {
		s.wakeNode(geom.NodeID(id), s.Now)
	}
}

// DetachScheduler permanently disables the event scheduler: every wake
// becomes a no-op and Sim.Step stops advancing simulation state. Used by
// the refmodel full-scan stepper, which visits every router every cycle
// and needs no (and must not accumulate) scheduling state.
func (s *Sim) DetachScheduler() {
	s.quietUntil = 0
	s.sched.detached = true
	for k := range s.shards {
		s.shards[k].sched.detached = true
	}
}

// Drop records a packet that could not be routed (destination
// unreachable); the paper's methodology drops such packets under
// synthetic traffic.
func (s *Sim) Drop() { s.Stats.DroppedUnreachable++ }

// RemovePacket destroys the packet buffered in vc at router at's input
// port — runtime failure handling (e.g. a router dying with traffic
// inside). Occupancy and conservation counters are adjusted; the VC is
// immediately reusable.
func (s *Sim) RemovePacket(vc *VC, at geom.NodeID, port geom.Direction) {
	p := vc.Pkt
	if p == nil {
		return
	}
	s.quietUntil = 0 // out-of-band mutation: void any quiet proof
	s.occBitClearVC(at, port, vc)
	vc.Pkt = nil
	vc.FreeAt = s.Now
	s.occ[at]--
	if port != geom.Local {
		s.occNL[at]--
	}
	s.inFlight--
	s.Stats.Lost++
	s.releasePacket(p)
}

// DiscardQueued records the loss of a queued (offered but not injected)
// packet and recycles it; the caller removes it from the NI queue first.
func (s *Sim) DiscardQueued(p *Packet) {
	s.Stats.Lost++
	s.releasePacket(p)
}

// PlacePacket installs p directly into slot `slot` of input port `in` at
// router id with its head immediately ready — a hook for tests that need
// a precise hand-built buffer state (e.g. the recovery-FSM transition
// table's dependence chains) without arranging traffic to produce it.
// Occupancy and conservation counters are adjusted as if the packet had
// been offered and injected, and the router is woken.
func (s *Sim) PlacePacket(id geom.NodeID, in geom.Direction, slot int, p *Packet) {
	vc := &s.Routers[id].In[in][slot]
	if vc.Pkt != nil {
		panic("network: PlacePacket into an occupied VC")
	}
	vc.Pkt = p
	vc.ReadyAt = s.Now
	s.occBitSet(id, int(in)*s.Cfg.SlotsPerPort()+slot)
	s.placeAccount(id, in, p)
}

// PlaceBubblePacket installs p as the static-bubble occupant of router
// id, arriving on input port in — PlacePacket's bubble-slot counterpart.
func (s *Sim) PlaceBubblePacket(id geom.NodeID, in geom.Direction, p *Packet) {
	b := &s.Routers[id].Bubble
	if b.VC.Pkt != nil {
		panic("network: PlaceBubblePacket into an occupied bubble")
	}
	b.InPort = in
	b.VC.Pkt = p
	b.VC.ReadyAt = s.Now
	s.occBitSet(id, geom.NumPorts*s.Cfg.SlotsPerPort())
	s.placeAccount(id, in, p)
}

func (s *Sim) placeAccount(id geom.NodeID, in geom.Direction, p *Packet) {
	s.occ[id]++
	if in != geom.Local {
		s.occNL[id]++
	}
	s.inFlight++
	s.Stats.Offered++
	s.Stats.Injected++
	s.Stats.InjectedFlits += int64(p.Len)
	p.InjectedAt = s.Now
	s.wakeNode(id, s.Now)
}

// DeliverOutOfBand removes the packet in vc (buffered at router at's
// input port) and counts it as delivered at the given cycle — modeling a
// dedicated side network that bypasses the regular datapath, such as
// DISHA's deadlock-buffer lane. deliverAt must not precede the current
// cycle.
func (s *Sim) DeliverOutOfBand(vc *VC, at geom.NodeID, port geom.Direction, deliverAt int64) {
	p := vc.Pkt
	if p == nil {
		return
	}
	if deliverAt < s.Now {
		deliverAt = s.Now
	}
	s.quietUntil = 0 // out-of-band mutation: void any quiet proof
	s.occBitClearVC(at, port, vc)
	vc.Pkt = nil
	vc.FreeAt = s.Now + int64(p.Len)
	s.occ[at]--
	if port != geom.Local {
		s.occNL[at]--
	}
	s.inFlight--
	p.DeliveredAt = deliverAt
	s.Stats.DeliveredFlits += int64(p.Len)
	s.Stats.recordDelivery(p)
	if s.OnDeliver != nil {
		s.OnDeliver(p)
	}
	s.LastProgress = s.Now
	s.releasePacket(p)
}

// Step advances the simulation by one cycle. Hooks run unconditionally
// (recovery FSM timers depend on it); the per-router phases run only
// over routers with a wake scheduled for this cycle, in ascending id
// order — the same order the naive stepper visits them, so the two
// cores are cycle-exact (proved by the refmodel differential harness).
// With Config.Shards > 1 the cycle runs on the sharded stepper
// (shard.go), which is byte-identical by construction.
//
// Quiet epochs: when a cycle ends with an empty due set, every hook is
// covered by a quiescence registration, and the earliest pending wake
// and every registered horizon lie strictly in the future, Step
// fast-forwards — subsequent calls only advance Now until the proven
// horizon (or until a wake/mutation lands inside the window and voids
// the proof). Skipped cycles are exactly the cycles in which neither
// the phases nor the registered hooks would have changed any state, so
// results stay byte-identical (the quiet-batching differential tests
// prove this against the full-scan refmodel).
func (s *Sim) Step() {
	if s.Now < s.quietUntil {
		s.Now++
		s.ctr.QuietCycles++
		return
	}
	if s.nshards > 1 {
		s.stepSharded()
		return
	}
	if s.dense.on {
		s.stepDense()
		return
	}
	for _, f := range s.PreCycle {
		f(s)
	}
	due := s.sched.collectDue(s.Now, s.dueBuf[:0])
	s.dueBuf = due
	for _, id := range due {
		s.InjectNode(geom.NodeID(id))
	}
	for _, id := range due {
		s.AllocateNode(geom.NodeID(id))
	}
	for _, id := range due {
		s.TransferBubbleNode(geom.NodeID(id))
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
	if len(due) == 0 {
		s.maybeQuiet()
	} else if s.dense.observeSparse(len(due), len(s.Routers)) {
		s.enterDense()
	}
}

// maybeQuiet attempts to open a quiet epoch after an empty-due cycle:
// compute the earliest cycle H at which anything can happen — the
// minimum over every shard scheduler's earliest pending wake and every
// registered hook horizon — and if H is still in the future, mark
// [Now, H) quiet. Hooks are skipped during the window; that is sound
// because each registered scheme promised (via its horizon) that with
// no packet movement before H it neither acts nor observes
// cycle-varying state before H. Packet movement before H is impossible
// because every potential mover has a wake (sched.go's invariant) and
// the earliest wake is ≥ H; mutations from outside the cycle loop
// (Enqueue, RemovePacket, reconfiguration) void the window.
func (s *Sim) maybeQuiet() {
	if s.sched.detached || s.quiesced != len(s.PreCycle)+len(s.PostCycle) {
		return
	}
	h := int64(wakeNever)
	if s.nshards > 1 {
		for k := range s.shards {
			if w := s.shards[k].sched.earliestWake(); w < h {
				h = w
			}
		}
	} else {
		h = s.sched.earliestWake()
	}
	for _, f := range s.horizonFns {
		if h <= s.Now {
			return
		}
		if v := f(s); v < h {
			h = v
		}
	}
	if h > s.Now {
		s.quietUntil = h
	}
}

// Run advances the simulation by n cycles.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// InFlight returns the number of packets currently inside the network
// (occupying VCs or bubbles), excluding NI queues.
func (s *Sim) InFlight() int64 { return s.inFlight }

// QueuedPackets returns the number of packets waiting in NI queues.
func (s *Sim) QueuedPackets() int64 {
	var n int64
	for id := range s.NIQueue {
		for vnet := range s.NIQueue[id] {
			n += int64(s.NIQueue[id][vnet].Len())
		}
	}
	return n
}

// InjectNode moves node id's NI-queue heads into free local-port VCs,
// one packet per vnet per cycle — the injection phase for a single
// node. Exported as a stepper building block; the event core invokes it
// for due routers, the refmodel for every router.
func (s *Sim) InjectNode(id geom.NodeID) {
	var d injectDelta
	s.injectNode(id, &d)
	d.apply(s)
}

// injectDelta accumulates the injection phase's contribution to the
// shared counters. Injection touches only node-local state (the node's
// NI queues, its local-port VCs, its occupancy) plus these three
// counters, so shard workers inject concurrently into private deltas
// and the coordinator folds the sums in shard order — the totals are
// identical to the sequential core's, and Stats is only observable at
// cycle boundaries.
type injectDelta struct {
	injected, flits, inFlight int64
}

func (d *injectDelta) apply(s *Sim) {
	s.Stats.Injected += d.injected
	s.Stats.InjectedFlits += d.flits
	s.inFlight += d.inFlight
	*d = injectDelta{}
}

func (s *Sim) injectNode(id geom.NodeID, d *injectDelta) {
	qs := s.NIQueue[id]
	if !s.Topo.RouterAlive(id) {
		// A dead router cannot inject, but its queue survives (the
		// router may be re-enabled): poll while anything is queued,
		// exactly what the naive core's full scan paid.
		for vnet := range qs {
			if qs[vnet].Len() > 0 {
				s.wakeNode(id, s.Now+1)
				return
			}
		}
		return
	}
	r := &s.Routers[id]
	pending := false
	for vnet := range qs {
		q := &qs[vnet]
		if q.Len() == 0 {
			continue
		}
		p := q.Front()
		slot := s.findFreeVC(id, geom.Local, p, vnet)
		if slot < 0 {
			pending = true // blocked on a free VC: retry next cycle
			continue
		}
		vc := &r.In[geom.Local][slot]
		vc.Pkt = p
		vc.ReadyAt = s.Now + int64(s.Cfg.RouterLatency)
		s.occBitSet(id, int(geom.Local)*s.Cfg.SlotsPerPort()+slot)
		p.InjectedAt = s.Now
		q.PopFront()
		s.niPend[id]--
		d.injected++
		d.flits += int64(p.Len)
		d.inFlight++
		s.occ[id]++
		if q.Len() > 0 {
			pending = true // one injection per vnet per cycle
		}
	}
	if pending {
		s.wakeNode(id, s.Now+1)
	}
	// A freshly injected packet's ReadyAt wake comes from AllocateNode,
	// which always runs in the same cycle for a due router.
}

// findFreeVC returns a free VC slot index (within the full slot array) at
// router node's input port `in` for packet p, or -1. Only slots of p's
// vnet are considered; VCFilter may veto individual slots.
func (s *Sim) findFreeVC(node geom.NodeID, in geom.Direction, p *Packet, vnet int) int {
	r := &s.Routers[node]
	base := vnet * s.Cfg.VCsPerVnet
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		slot := base + i
		vc := &r.In[in][slot]
		if !vc.Empty(s.Now) {
			continue
		}
		if s.VCFilter != nil && !s.VCFilter(p, node, in, i) {
			continue
		}
		return slot
	}
	return -1
}

// findFreeVCNoFilter is findFreeVC for callers that have already
// established VCFilter is nil (the dense fused allocation pass, which
// memoizes the answer per (output, vnet)): with no filter the result
// depends only on (node, in, vnet), not on the packet.
func (s *Sim) findFreeVCNoFilter(node geom.NodeID, in geom.Direction, vnet int) int {
	r := &s.Routers[node]
	base := vnet * s.Cfg.VCsPerVnet
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		slot := base + i
		if r.In[in][slot].Empty(s.Now) {
			return slot
		}
	}
	return -1
}

// OutputOf returns the output port packet p wants at router `at`: the
// override if installed, else the next hop of its source route, else
// Local (ejection) once the route is exhausted. The route-derived answer
// depends only on (Route, Hop) and is cached on the packet, so repeated
// allocation attempts don't re-derive it; rewriting Route in place
// requires InvalidateOutputCache.
func (s *Sim) OutputOf(p *Packet, at geom.NodeID) geom.Direction {
	if s.OutputOverride != nil {
		if d, ok := s.OutputOverride(p, at); ok {
			return d
		}
	}
	if p.cacheOK && int(p.cacheHop) == p.Hop {
		return p.cacheOut
	}
	d := geom.Local
	if p.Hop < len(p.Route) {
		d = p.Route[p.Hop]
	}
	p.cacheOut, p.cacheHop, p.cacheOK = d, int32(p.Hop), true
	return d
}

// UseLink records one cycle of control-message occupancy on the outgoing
// link of node n in direction d, blocking any flit grant on that link for
// the current cycle (control messages have priority over flits).
func (s *Sim) UseLink(n geom.NodeID, d geom.Direction, class LinkClass) {
	r := &s.Routers[n]
	if r.OutFreeAt[d] <= s.Now {
		r.OutFreeAt[d] = s.Now + 1
	}
	s.Stats.LinkCycles[class]++
}

// AliveDirectedLinkCount returns the number of usable directed channels,
// the denominator of link-utilization statistics.
func (s *Sim) AliveDirectedLinkCount() int {
	n := 0
	for id := 0; id < s.Topo.NumNodes(); id++ {
		for _, d := range geom.LinkDirs {
			if s.Topo.HasLink(geom.NodeID(id), d) {
				n++
			}
		}
	}
	return n
}
