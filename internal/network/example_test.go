package network_test

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// A minimal simulation: one packet across a healthy mesh.
func ExampleSim() {
	topo := topology.NewMesh(4, 4)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	min := routing.NewMinimal(topo)
	route, _ := min.Route(0, 15, nil)
	p := sim.NewPacket(0, 15, 0, 5, route)
	sim.Enqueue(p)
	sim.Run(30)
	fmt.Println("delivered:", p.DeliveredAt >= 0)
	fmt.Println("latency:", p.Latency(), "cycles") // 2 hops/step × 6 + serialization
	// Output:
	// delivered: true
	// latency: 18 cycles
}
