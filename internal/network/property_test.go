package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Property suite: whatever traffic is thrown at the simulator, the
// conservation and occupancy invariants hold at every step, and XY
// workloads always drain (testing/quick drives the workload shape).

// TestPropDenseSparseEquivalence is the in-package half of the dense
// byte-identity contract (the refmodel differential harness is the
// other): for arbitrary seeds — random irregular topology shape, fault
// kind and count, offered rate, flip period — a sparse-pinned sim, a
// dense-pinned sim, a hysteretic sim, and one whose mode is forcibly
// flipped mid-run must agree on Stats, occupancy and progress after
// every cycle.
func TestPropDenseSparseEquivalence(t *testing.T) {
	f := func(seed int64, rateRaw, flipRaw uint8) bool {
		hrng := rand.New(rand.NewSource(seed))
		w, h := 4+hrng.Intn(4), 4+hrng.Intn(4)
		kind := topology.LinkFaults
		if hrng.Intn(3) == 0 {
			kind = topology.RouterFaults
		}
		faults := hrng.Intn(1 + w*h/5)
		topoSeed := hrng.Int63()
		simSeed := hrng.Int63()
		mk := func() *Sim {
			return New(topology.RandomIrregular(w, h, kind, faults, topoSeed),
				Config{}, rand.New(rand.NewSource(simSeed)))
		}
		sparse, dense, auto, flip := mk(), mk(), mk(), mk()
		sparse.SetDenseMode(DenseForcedOff)
		dense.SetDenseMode(DenseForcedOn)
		units := []*Sim{sparse, dense, auto, flip}
		min := routing.NewMinimal(sparse.Topo)
		alive := sparse.Topo.AliveRouters()
		if len(alive) < 2 {
			return true
		}
		rate := 0.05 + float64(rateRaw%35)/100
		flipEvery := 20 + int(flipRaw%60)
		rng := rand.New(rand.NewSource(seed + 9))
		const cycles = 600
		for c := 0; c < cycles; c++ {
			if c%flipEvery == 0 {
				if (c/flipEvery)%2 == 0 {
					flip.SetDenseMode(DenseForcedOn)
				} else {
					flip.SetDenseMode(DenseForcedOff)
				}
			}
			if c < cycles*2/3 {
				for _, src := range alive {
					if rng.Float64() >= rate {
						continue
					}
					dst := alive[rng.Intn(len(alive))]
					if dst == src {
						continue
					}
					r, ok := min.Route(src, dst, rng)
					if !ok {
						for _, u := range units {
							u.Drop()
						}
						continue
					}
					ln := 1 + 4*rng.Intn(2)
					vnet := rng.Intn(sparse.Cfg.NumVnets)
					for _, u := range units {
						u.Enqueue(u.NewPacket(src, dst, vnet, ln, r))
					}
				}
			}
			for _, u := range units {
				u.Step()
			}
			for _, u := range units[1:] {
				if u.Stats != sparse.Stats || u.InFlight() != sparse.InFlight() ||
					u.QueuedPackets() != sparse.QueuedPackets() || u.LastProgress != sparse.LastProgress {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropConservationUnderArbitraryWorkloads(t *testing.T) {
	f := func(seed int64, rateRaw, lenSel uint8, cyclesRaw uint16) bool {
		topo := topology.NewMesh(4, 4)
		s := New(topo, Config{}, rand.New(rand.NewSource(seed)))
		xy := routing.NewXY(topo)
		rng := rand.New(rand.NewSource(seed + 1))
		rate := float64(rateRaw%40) / 100
		cycles := int(cyclesRaw%1500) + 200
		offered := int64(0)
		for c := 0; c < cycles; c++ {
			if c < cycles/2 {
				for n := 0; n < 16; n++ {
					if rng.Float64() >= rate {
						continue
					}
					dst := geom.NodeID(rng.Intn(16))
					r, ok := xy.Route(geom.NodeID(n), dst, nil)
					if !ok {
						return false
					}
					ln := 1
					if (lenSel+uint8(n))%2 == 0 {
						ln = 5
					}
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
					offered++
				}
			}
			s.Step()
			if s.Stats.Delivered+s.InFlight()+s.QueuedPackets() != offered {
				return false
			}
		}
		// XY on a healthy mesh is deadlock-free: drain completely.
		for i := 0; i < 40000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
			s.Run(100)
		}
		return s.Stats.Delivered == offered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropLatencyFormulaHolds(t *testing.T) {
	// For a lone packet: latency = (router+link)×hops + len + router.
	f := func(hopsRaw, lenRaw, rl, ll uint8) bool {
		hops := int(hopsRaw%7) + 1
		ln := int(lenRaw%5) + 1
		rLat := int(rl%3) + 1
		lLat := int(ll%3) + 1
		topo := topology.NewMesh(8, 1)
		s := New(topo, Config{RouterLatency: rLat, LinkLatency: lLat, VCDepth: 5},
			rand.New(rand.NewSource(1)))
		route := make(routing.Route, hops)
		for i := range route {
			route[i] = geom.East
		}
		p := s.NewPacket(0, geom.NodeID(hops), 0, ln, route)
		s.Enqueue(p)
		s.Run((rLat+lLat)*(hops+2) + ln + 20)
		if p.DeliveredAt < 0 {
			return false
		}
		// injection pipeline (rLat) + hops x (rLat+lLat) + ejection
		// pipeline (rLat) + serialization (ln-1)
		want := int64((rLat+lLat)*hops + 2*rLat + ln - 1)
		return p.Latency() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
