package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestBubbleTransferToFreedVC(t *testing.T) {
	// Footnote 6: a bubble occupant slides into a regular VC at the same
	// port as soon as one frees.
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	r := &s.Routers[1]
	r.Bubble.Present = true
	r.Bubble.InPort = geom.West
	// Fill all 4 vnet-0 VCs at West with stalled packets and put one in
	// the bubble.
	s.Routers[1].OutFreeAt[geom.Local] = 1 << 30
	stalled := make([]*Packet, 4)
	for i := range stalled {
		stalled[i] = s.NewPacket(0, 1, 0, 5, routing.Route{geom.East})
		stalled[i].Hop = 1
		r.In[geom.West][i].Pkt = stalled[i]
	}
	occupant := s.NewPacket(0, 1, 0, 5, routing.Route{geom.East})
	occupant.Hop = 1
	r.Bubble.VC.Pkt = occupant
	r.Bubble.Active = false // transfer works regardless of Active
	s.Wake(1)               // hand-placed packets: tell the event scheduler

	s.Run(3)
	if r.Bubble.VC.Pkt == nil {
		t.Fatal("no VC free yet: occupant must stay put")
	}
	// Free one VC.
	r.In[geom.West][2].Pkt = nil
	s.Run(3)
	if r.Bubble.VC.Pkt != nil {
		t.Fatal("occupant should have transferred into the freed VC")
	}
	if r.In[geom.West][2].Pkt != occupant {
		t.Fatal("occupant should occupy the freed slot")
	}
	if s.Stats.BubbleTransfers != 1 {
		t.Fatalf("BubbleTransfers = %d", s.Stats.BubbleTransfers)
	}
}

func TestBubbleTransferRespectsVnet(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	r := &s.Routers[1]
	r.Bubble.Present = true
	r.Bubble.InPort = geom.West
	// Occupant is vnet 1; only a vnet-0 VC is free.
	occupant := s.NewPacket(0, 1, 1, 5, routing.Route{geom.East})
	occupant.Hop = 1
	r.Bubble.VC.Pkt = occupant
	base := 1 * s.Cfg.VCsPerVnet
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		p := s.NewPacket(0, 1, 1, 5, routing.Route{geom.East})
		p.Hop = 1
		r.In[geom.West][base+i].Pkt = p
	}
	s.Routers[1].OutFreeAt[geom.Local] = 1 << 30
	s.Wake(1) // hand-placed packets: tell the event scheduler
	s.Run(5)
	if r.Bubble.VC.Pkt == nil {
		t.Fatal("occupant must not transfer into a different vnet's VC")
	}
}

func TestOccupancyInvariant(t *testing.T) {
	// occupied and occNonLocal must track reality through a busy run.
	topo := topology.NewMesh(4, 4)
	s := mkSim(topo, 3)
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(5))
	for cyc := 0; cyc < 600; cyc++ {
		if cyc < 400 {
			for n := 0; n < 16; n++ {
				if rng.Float64() < 0.1 {
					dst := geom.NodeID(rng.Intn(16))
					if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 5, r))
					}
				}
			}
		}
		s.Step()
		for id := range s.Routers {
			r := &s.Routers[id]
			total, nonLocal := 0, 0
			for _, port := range geom.AllPorts {
				for slot := range r.In[port] {
					if r.In[port][slot].Pkt != nil {
						total++
						if port != geom.Local {
							nonLocal++
						}
					}
				}
			}
			if r.Bubble.VC.Pkt != nil {
				total++
				nonLocal++
			}
			if r.Occupied() != total {
				t.Fatalf("cycle %d router %d: occupied=%d actual=%d", cyc, id, r.Occupied(), total)
			}
			if r.OccupiedNonLocal() != nonLocal {
				t.Fatalf("cycle %d router %d: occNonLocal=%d actual=%d",
					cyc, id, r.OccupiedNonLocal(), nonLocal)
			}
		}
	}
}

func TestSwitchAllocationRoundRobinRotates(t *testing.T) {
	// Two persistent competitors for one output must alternate grants.
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	mid := geom.NodeID(1)
	// Keep feeding packets into mid's West and Local ports, both wanting
	// East; count grants per source over time.
	var westGrants, localGrants int
	for cyc := 0; cyc < 400; cyc++ {
		r := &s.Routers[mid]
		if r.In[geom.West][0].Pkt == nil {
			p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
			p.Hop = 1
			r.In[geom.West][0].Pkt = p
			s.occ[mid]++
			s.occNL[mid]++
		}
		if r.In[geom.Local][0].Pkt == nil {
			p := s.NewPacket(1, 2, 0, 1, routing.Route{geom.East})
			r.In[geom.Local][0].Pkt = p
			s.occ[mid]++
		}
		wBefore := r.In[geom.West][0].Pkt
		lBefore := r.In[geom.Local][0].Pkt
		s.Wake(mid) // hand-placed packets: tell the event scheduler
		s.Step()
		if r.In[geom.West][0].Pkt == nil && wBefore != nil {
			westGrants++
		}
		if r.In[geom.Local][0].Pkt == nil && lBefore != nil {
			localGrants++
		}
	}
	if westGrants == 0 || localGrants == 0 {
		t.Fatalf("starvation: west=%d local=%d", westGrants, localGrants)
	}
	ratio := float64(westGrants) / float64(localGrants)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair arbitration: west=%d local=%d", westGrants, localGrants)
	}
}

func TestInFlightAccounting(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	if s.InFlight() != 0 || s.QueuedPackets() != 1 {
		t.Fatal("queued packet should not count as in flight")
	}
	s.Step()
	if s.InFlight() != 1 || s.QueuedPackets() != 0 {
		t.Fatal("injected packet should count as in flight")
	}
	s.Run(30)
	if s.InFlight() != 0 {
		t.Fatal("delivered packet should leave the in-flight count")
	}
}

func TestFenceDoesNotBlockOtherOutputs(t *testing.T) {
	// A fence on East must not affect traffic leaving North.
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	s.Routers[0].Fence = Fence{Active: true, In: geom.East, Out: geom.East, SrcID: 3}
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.North})
	s.Enqueue(p)
	s.Run(20)
	if p.DeliveredAt < 0 {
		t.Fatal("fence on East must not block North traffic")
	}
}

func TestBubbleHeadReadyParticipatesInSA(t *testing.T) {
	// A packet sitting in a bubble must be switched out like any VC.
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	r := &s.Routers[0]
	r.Bubble.Present = true
	r.Bubble.InPort = geom.East
	p := s.NewPacket(0, 1, 0, 1, routing.Route{geom.East})
	r.Bubble.VC.Pkt = p
	s.occ[0]++
	s.occNL[0]++
	s.Wake(0) // hand-placed packet: tell the event scheduler
	s.Run(20)
	if p.DeliveredAt < 0 {
		t.Fatal("bubble occupant should be forwarded and delivered")
	}
	if r.Bubble.VC.Pkt != nil {
		t.Fatal("bubble should be empty after forwarding")
	}
}

func TestVCAtHelper(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	r := &s.Routers[0]
	vc := r.VCAt(s.Cfg, geom.West, 2, 3)
	if vc != &r.In[geom.West][2*s.Cfg.VCsPerVnet+3] {
		t.Fatal("VCAt indexes wrong slot")
	}
}

func TestCustomConfigDimensions(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := New(topo, Config{NumVnets: 2, VCsPerVnet: 2, VCDepth: 8}, rand.New(rand.NewSource(1)))
	if s.Cfg.SlotsPerPort() != 4 {
		t.Fatalf("slots = %d", s.Cfg.SlotsPerPort())
	}
	// An 8-flit packet is legal under VCDepth 8.
	p := s.NewPacket(0, 1, 1, 8, routing.Route{geom.East})
	s.Enqueue(p)
	s.Run(30)
	if p.DeliveredAt < 0 {
		t.Fatal("packet not delivered under custom config")
	}
	if got := p.Latency(); got != int64(2*1+8+1) {
		t.Fatalf("latency = %d, want %d", got, 2*1+8+1)
	}
}

func TestGrantFilterVetoesCandidates(t *testing.T) {
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	blockEast := true
	s.GrantFilter = func(p *Packet, at geom.NodeID, in, out geom.Direction) bool {
		return !(blockEast && at == 0 && out == geom.East)
	}
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	s.Enqueue(p)
	s.Run(60)
	if p.DeliveredAt >= 0 {
		t.Fatal("filtered grant should hold the packet at its source")
	}
	blockEast = false
	s.Run(60)
	if p.DeliveredAt < 0 {
		t.Fatal("packet should flow once the filter allows it")
	}
}

func TestGrantFilterDoesNotAffectOtherOutputs(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := mkSim(topo, 1)
	s.GrantFilter = func(p *Packet, at geom.NodeID, in, out geom.Direction) bool {
		return out != geom.East
	}
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.North})
	s.Enqueue(p)
	s.Run(30)
	if p.DeliveredAt < 0 {
		t.Fatal("north-bound traffic must be unaffected")
	}
}

func TestRemovePacketAccounting(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := mkSim(topo, 1)
	p := s.NewPacket(0, 1, 0, 5, routing.Route{geom.East})
	s.Enqueue(p)
	s.Run(2)
	if s.InFlight() != 1 {
		t.Fatal("setup: packet should be in flight")
	}
	// Find its VC and remove it.
	removed := false
	for id := range s.Routers {
		r := &s.Routers[id]
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if r.In[port][slot].Pkt == p {
					s.RemovePacket(&r.In[port][slot], geom.NodeID(id), port)
					removed = true
				}
			}
		}
	}
	if !removed {
		t.Fatal("packet not found in any VC")
	}
	if s.InFlight() != 0 || s.Stats.Lost != 1 {
		t.Fatalf("accounting after removal: inflight=%d lost=%d", s.InFlight(), s.Stats.Lost)
	}
	for id := range s.Routers {
		if s.Routers[id].Occupied() != 0 {
			t.Fatal("occupancy not cleared")
		}
	}
	// Removing an empty VC is a no-op.
	s.RemovePacket(&s.Routers[0].In[geom.Local][0], 0, geom.Local)
	if s.Stats.Lost != 1 {
		t.Fatal("no-op removal changed Lost")
	}
}

func TestGrantsCounterAdvances(t *testing.T) {
	topo := topology.NewMesh(3, 1)
	s := mkSim(topo, 1)
	s.Enqueue(s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East}))
	s.Run(30)
	if s.Routers[0].Grants() == 0 || s.Routers[1].Grants() == 0 || s.Routers[2].Grants() == 0 {
		t.Fatalf("grants = %d,%d,%d; every router on the path should have granted",
			s.Routers[0].Grants(), s.Routers[1].Grants(), s.Routers[2].Grants())
	}
}
