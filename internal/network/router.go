package network

import (
	"math"

	"repro/internal/geom"
)

// Fence is the runtime injection restriction installed by a disable
// message (the is_deadlock mechanism, paper Section IV-A2): while active,
// only traffic from input port In may be switched to output port Out,
// fencing the detected dependency chain off from new packets.
type Fence struct {
	Active bool
	In     geom.Direction
	Out    geom.Direction
	// SrcID is the static-bubble router that installed the fence; only a
	// matching enable clears it.
	SrcID geom.NodeID
}

// Bubble is the optional extra packet buffer of a static-bubble router.
// It is off until the recovery FSM activates it, at which point it acts
// as one additional VC on input port InPort, usable by any vnet.
type Bubble struct {
	// Present marks this router as chosen by the placement algorithm.
	Present bool
	// Active is set while the FSM has the bubble switched on.
	Active bool
	// InPort is the input port the bubble serves while active (the input
	// side of the IO-priority buffer).
	InPort geom.Direction
	VC     VC
}

// EligibleFor reports whether the bubble can accept a packet arriving on
// input port `in` at cycle now.
func (b *Bubble) EligibleFor(in geom.Direction, now int64) bool {
	return b.Present && b.Active && b.InPort == in && b.VC.Empty(now)
}

// Router is the per-node switch state. In[port] holds the input VCs,
// indexed vnet*VCsPerVnet+vc. OutFreeAt[port] is the earliest cycle a new
// packet grant may start on that output (links and the ejection port are
// busy for Len cycles per packet).
type Router struct {
	ID        geom.NodeID
	In        [geom.NumPorts][]VC
	OutFreeAt [geom.NumPorts]int64
	Fence     Fence
	Bubble    Bubble

	saPtr [geom.NumPorts]int
	// sim points back to the owning Sim: the hot per-router counters
	// (occupancy, grants) live there in struct-of-arrays layout and are
	// reached through it by the accessors below.
	sim *Sim
}

// Occupied returns the number of packets buffered at this router
// (including the bubble).
func (r *Router) Occupied() int { return int(r.sim.occ[r.ID]) }

// OccupiedNonLocal returns the number of packets buffered at non-local
// input ports (including the bubble) — the candidates a detection FSM
// watches.
func (r *Router) OccupiedNonLocal() int { return int(r.sim.occNL[r.ID]) }

// Grants counts switch-allocation grants issued by this router over its
// lifetime (including ejections) — a local progress signal used by the
// recovery liveness guards.
func (r *Router) Grants() int64 { return r.sim.grantN[r.ID] }

// VCAt returns the VC at input port in, vnet, index vc.
func (r *Router) VCAt(cfg Config, in geom.Direction, vnet, vc int) *VC {
	return &r.In[in][vnet*cfg.VCsPerVnet+vc]
}

// AllocateNode performs one cycle of switch allocation at router id —
// the allocation phase for a single node: for each output port, at most
// one waiting packet is granted, chosen round-robin among eligible input
// VCs, subject to the fence, link bandwidth, and downstream buffer
// availability (virtual cut-through: the downstream VC must be able to
// hold the whole packet).
//
// The phase is split in two so the sharded stepper can parallelize it:
// gatherAllocate reads only state that is stable for the whole
// allocation phase and produces the candidate buckets; commitAllocate
// arbitrates and moves packets. The sequential core (and the refmodel
// full scan) runs both back to back, which is exactly the historical
// single-pass behaviour.
func (s *Sim) AllocateNode(id geom.NodeID) {
	if s.gatherAllocate(id, &s.seqGather) {
		s.commitAllocate(id, &s.seqGather)
	}
}

// allocGather is one router's switch-allocation plan: per-output
// candidate buckets (ascending candidate index: in*slots+sl, or
// NumPorts*slots for the bubble) plus the wake classification inputs.
type allocGather struct {
	cand      [geom.NumPorts][]int32
	headReady int
	minFuture int64
	// recordSlots, set by the sharded stepper's fully parallel commit
	// mode, makes the gather record each kept link candidate's free
	// downstream slot (slot[out][i] for cand[out][i]; -1 means the
	// static bubble). The availability-constancy argument in shard.go
	// proves the gather-time answer equals the commit-time answer, so
	// the parallel commit uses the recorded slot and never scans a
	// foreign router's (concurrently mutated) VC array.
	recordSlots bool
	slot        [geom.NumPorts][]int32
}

func (g *allocGather) init(cfg Config) {
	for i := range g.cand {
		g.cand[i] = make([]int32, 0, geom.NumPorts*cfg.SlotsPerPort()+1)
		g.slot[i] = make([]int32, 0, geom.NumPorts*cfg.SlotsPerPort()+1)
	}
}

// candVC resolves a candidate index to its buffer and input port.
func (r *Router) candVC(ci int32, slots, total int) (*VC, geom.Direction) {
	if int(ci) == total {
		return &r.Bubble.VC, r.Bubble.InPort
	}
	inPort := geom.Direction(ci / int32(slots))
	return &r.In[inPort][ci%int32(slots)], inPort
}

// gatherAllocate buckets router id's ready heads by desired output and
// prunes buckets that cannot possibly be granted, returning whether a
// commit pass is needed. It is the simulator's hottest loop and the
// parallel half of the allocation phase: everything it reads is stable
// across the whole phase — the router's own VCs and fence, its
// OutFreeAt and link state (only written by its own commit and by
// hooks), and downstream buffer occupancy, which is monotone during
// allocation (a VC emptied by a grant stays unusable until FreeAt, so
// "empty now" can only become false). Pruning on that monotone state is
// therefore conservative: a pruned candidate could never be granted by
// the sequential core either, and a kept candidate is re-validated at
// commit time, so the commit's grant decisions are bit-for-bit those of
// the sequential single pass.
//
// The pruning also carries the load: in a deadlock storm most ready
// heads have no free downstream buffer, and classifying them (plus the
// re-poll wake — a blocked router polls because fences, hooks and link
// state may change with no timestamped event) happens entirely in this
// parallel pass; such routers never reach the sequential commit.
func (s *Sim) gatherAllocate(id geom.NodeID, g *allocGather) bool {
	r := &s.Routers[id]
	if s.occ[id] == 0 {
		return false
	}
	if !s.Topo.RouterAlive(id) {
		// Buffered traffic at a dead router cannot move, but a re-enable
		// would free it with no event: poll, as the naive scan did.
		s.wakeNode(id, s.Now+1)
		return false
	}
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots // bubble uses index `total`
	g.headReady = 0
	g.minFuture = int64(math.MaxInt64)
	for i := range g.cand {
		g.cand[i] = g.cand[i][:0]
	}
	for in := 0; in < geom.NumPorts; in++ {
		vcs := r.In[in]
		for sl := range vcs {
			vc := &vcs[sl]
			if vc.Pkt == nil {
				continue
			}
			if vc.ReadyAt > s.Now {
				if vc.ReadyAt < g.minFuture {
					g.minFuture = vc.ReadyAt
				}
				continue
			}
			g.headReady++
			out := s.OutputOf(vc.Pkt, id)
			if out == geom.Invalid ||
				(r.Fence.Active && out == r.Fence.Out && geom.Direction(in) != r.Fence.In) {
				continue
			}
			g.cand[out] = append(g.cand[out], int32(in*slots+sl))
		}
	}
	if b := &r.Bubble; b.Present && b.VC.Pkt != nil {
		if b.VC.ReadyAt > s.Now {
			if b.VC.ReadyAt < g.minFuture {
				g.minFuture = b.VC.ReadyAt
			}
		} else {
			g.headReady++
			out := s.OutputOf(b.VC.Pkt, id)
			if out != geom.Invalid &&
				!(r.Fence.Active && out == r.Fence.Out && b.InPort != r.Fence.In) {
				g.cand[out] = append(g.cand[out], int32(total))
			}
		}
	}
	work := false
	for _, out := range geom.AllPorts {
		cands := g.cand[out]
		if len(cands) == 0 {
			continue
		}
		if r.OutFreeAt[out] > s.Now || (out != geom.Local && !s.Topo.HasLink(id, out)) {
			g.cand[out] = cands[:0]
			continue
		}
		if out != geom.Local {
			// Keep only candidates with a downstream buffer free right
			// now (ejection always has room once the port is idle).
			nb := s.Topo.Neighbor(id, out)
			in := out.Opposite()
			bubbleOK := s.Routers[nb].Bubble.EligibleFor(in, s.Now)
			keep := cands[:0]
			if g.recordSlots {
				ks := g.slot[out][:0]
				for _, ci := range cands {
					vc, _ := r.candVC(ci, slots, total)
					sl := s.findFreeVC(nb, in, vc.Pkt, vc.Pkt.Vnet)
					if sl >= 0 || bubbleOK {
						keep = append(keep, ci)
						ks = append(ks, int32(sl))
					}
				}
				g.slot[out] = ks
			} else {
				for _, ci := range cands {
					vc, _ := r.candVC(ci, slots, total)
					if bubbleOK || s.findFreeVC(nb, in, vc.Pkt, vc.Pkt.Vnet) >= 0 {
						keep = append(keep, ci)
					}
				}
			}
			g.cand[out] = keep
		}
		if len(g.cand[out]) > 0 {
			work = true
		}
	}
	if !work {
		// Nothing can be granted, so the wake decision needs no commit:
		// re-poll while a ready head is blocked, else sleep until the
		// earliest in-flight arrival.
		if g.headReady > 0 {
			s.wakeNode(id, s.Now+1)
		} else if g.minFuture < int64(math.MaxInt64) {
			s.wakeNode(id, g.minFuture)
		}
		return false
	}
	return true
}

// commitAllocate arbitrates router id's gathered candidate buckets and
// moves the winners — the sequential half of the allocation phase. Under
// the sharded stepper it runs on the coordinator in ascending global
// router id, the exact order the sequential core interleaves its
// per-router passes, so round-robin pointer movement, grant-filter
// consultation and every Stats mutation replay identically. Candidates
// another router's earlier commit has since starved are skipped by
// tryGrant's re-validation; skipping them cannot change the winner
// because the round-robin scan accepts the first candidate in cyclic
// index order from saPtr that passes both the grant filter and the
// downstream space check — the same packet whether or not doomed
// candidates before it remain in the bucket.
func (s *Sim) commitAllocate(id geom.NodeID, g *allocGather) {
	r := &s.Routers[id]
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots
	granted := 0
	for _, out := range geom.AllPorts {
		cands := g.cand[out]
		n := len(cands)
		if n == 0 {
			continue
		}
		// Rotate to the first candidate at or past the round-robin
		// pointer (candidates are in ascending index order).
		start := 0
		for i, ci := range cands {
			if int(ci) >= r.saPtr[out] {
				start = i
				break
			}
		}
		for k := 0; k < n; k++ {
			ci := cands[(start+k)%n]
			vc, inPort := r.candVC(ci, slots, total)
			if int(ci) != total && s.GrantFilter != nil &&
				!s.GrantFilter(vc.Pkt, id, inPort, out) {
				continue
			}
			if s.tryGrant(r, out, vc, vc.Pkt, inPort, int(ci)) {
				r.saPtr[out] = (int(ci) + 1) % (total + 1)
				granted++
				break
			}
		}
	}
	if g.headReady > granted {
		s.wakeNode(id, s.Now+1)
	} else if g.minFuture < int64(math.MaxInt64) {
		s.wakeNode(id, g.minFuture)
	}
}

// TransferBubbleNode slides router id's bubble occupant into a free
// regular VC of its vnet at the same input port, when one exists (paper
// footnote 6: a chain packet advancing vacates a VC at the port; the
// bubble occupant moves there, freeing the bubble for reclaim). Without
// this path a packet wedged in the bubble would block every later
// recovery at the router. While an occupant is present the router
// re-polls every cycle: the VC it waits for can be freed by any external
// actor (a neighbor's grant, RemovePacket, a hook).
func (s *Sim) TransferBubbleNode(id geom.NodeID) {
	b := &s.Routers[id].Bubble
	if !b.Present || b.VC.Pkt == nil {
		return
	}
	if b.VC.ReadyAt > s.Now {
		s.wakeNode(id, b.VC.ReadyAt)
		return
	}
	s.wakeNode(id, s.Now+1)
	p := b.VC.Pkt
	slot := s.findFreeVC(id, b.InPort, p, p.Vnet)
	if slot < 0 {
		return
	}
	vc := &s.Routers[id].In[b.InPort][slot]
	vc.Pkt = p
	vc.ReadyAt = s.Now + 1
	s.occBitSet(id, int(b.InPort)*s.Cfg.SlotsPerPort()+slot)
	b.VC.Pkt = nil
	b.VC.FreeAt = s.Now + 1
	s.occBitClear(id, geom.NumPorts*s.Cfg.SlotsPerPort())
	s.Stats.BubbleTransfers++
	s.LastProgress = s.Now
}

// tryGrant moves p out of vc through output port out: ejection when out is
// Local, else into a free downstream VC (or an eligible static bubble).
// inPort is the port vc lives on (for occupancy bookkeeping) and ci the
// candidate index of vc (for the slot-occupancy mirror). Returns false
// if no downstream buffer is available.
func (s *Sim) tryGrant(r *Router, out geom.Direction, vc *VC, p *Packet, inPort geom.Direction, ci int) bool {
	length := int64(p.Len)
	if out == geom.Local {
		if s.OnGrant != nil {
			s.OnGrant(p, vc, r.ID, inPort, out)
		}
		s.grantN[r.ID]++
		vc.Pkt = nil
		vc.FreeAt = s.Now + length
		s.occBitClear(r.ID, ci)
		r.OutFreeAt[geom.Local] = s.Now + length
		p.DeliveredAt = s.Now + int64(s.Cfg.RouterLatency) + length - 1
		s.Stats.DeliveredFlits += length
		s.Stats.recordDelivery(p)
		if s.OnDeliver != nil {
			s.OnDeliver(p)
		}
		s.inFlight--
		s.occ[r.ID]--
		if inPort != geom.Local {
			s.occNL[r.ID]--
		}
		s.LastProgress = s.Now
		s.releasePacket(p)
		return true
	}
	nb := s.Topo.Neighbor(r.ID, out)
	nbr := &s.Routers[nb]
	in := out.Opposite()
	var dst *VC
	if slot := s.findFreeVC(nb, in, p, p.Vnet); slot >= 0 {
		dst = &nbr.In[in][slot]
		s.occBitSet(nb, int(in)*s.Cfg.SlotsPerPort()+slot)
	} else if nbr.Bubble.EligibleFor(in, s.Now) {
		dst = &nbr.Bubble.VC
		s.occBitSet(nb, geom.NumPorts*s.Cfg.SlotsPerPort())
		s.Stats.BubbleOccupancies++
	} else {
		return false
	}
	if s.OnGrant != nil {
		s.OnGrant(p, vc, r.ID, inPort, out)
	}
	s.grantN[r.ID]++
	vc.Pkt = nil
	vc.FreeAt = s.Now + length
	s.occBitClear(r.ID, ci)
	dst.Pkt = p
	dst.ReadyAt = s.Now + int64(s.Cfg.RouterLatency+s.Cfg.LinkLatency)
	p.Hop++
	r.OutFreeAt[out] = s.Now + length
	s.Stats.LinkCycles[ClassFlit] += length
	s.Stats.HopMoves++
	s.occ[r.ID]--
	if inPort != geom.Local {
		s.occNL[r.ID]--
	}
	s.occ[nb]++
	s.occNL[nb]++ // arrivals always land on a link-side port
	s.wakeNode(nb, dst.ReadyAt)
	s.LastProgress = s.Now
	return true
}
