package network

import (
	"repro/internal/geom"
)

// Fence is the runtime injection restriction installed by a disable
// message (the is_deadlock mechanism, paper Section IV-A2): while active,
// only traffic from input port In may be switched to output port Out,
// fencing the detected dependency chain off from new packets.
type Fence struct {
	Active bool
	In     geom.Direction
	Out    geom.Direction
	// SrcID is the static-bubble router that installed the fence; only a
	// matching enable clears it.
	SrcID geom.NodeID
}

// Bubble is the optional extra packet buffer of a static-bubble router.
// It is off until the recovery FSM activates it, at which point it acts
// as one additional VC on input port InPort, usable by any vnet.
type Bubble struct {
	// Present marks this router as chosen by the placement algorithm.
	Present bool
	// Active is set while the FSM has the bubble switched on.
	Active bool
	// InPort is the input port the bubble serves while active (the input
	// side of the IO-priority buffer).
	InPort geom.Direction
	VC     VC
}

// EligibleFor reports whether the bubble can accept a packet arriving on
// input port `in` at cycle now.
func (b *Bubble) EligibleFor(in geom.Direction, now int64) bool {
	return b.Present && b.Active && b.InPort == in && b.VC.Empty(now)
}

// Router is the per-node switch state. In[port] holds the input VCs,
// indexed vnet*VCsPerVnet+vc. OutFreeAt[port] is the earliest cycle a new
// packet grant may start on that output (links and the ejection port are
// busy for Len cycles per packet).
type Router struct {
	ID        geom.NodeID
	In        [geom.NumPorts][]VC
	OutFreeAt [geom.NumPorts]int64
	Fence     Fence
	Bubble    Bubble

	saPtr       [geom.NumPorts]int
	occupied    int
	occNonLocal int
	grants      int64
}

// Occupied returns the number of packets buffered at this router
// (including the bubble).
func (r *Router) Occupied() int { return r.occupied }

// OccupiedNonLocal returns the number of packets buffered at non-local
// input ports (including the bubble) — the candidates a detection FSM
// watches.
func (r *Router) OccupiedNonLocal() int { return r.occNonLocal }

// Grants counts switch-allocation grants issued by this router over its
// lifetime (including ejections) — a local progress signal used by the
// recovery liveness guards.
func (r *Router) Grants() int64 { return r.grants }

// VCAt returns the VC at input port in, vnet, index vc.
func (r *Router) VCAt(cfg Config, in geom.Direction, vnet, vc int) *VC {
	return &r.In[in][vnet*cfg.VCsPerVnet+vc]
}

// allocate performs one cycle of switch allocation over every router:
// for each output port, at most one waiting packet is granted, chosen
// round-robin among eligible input VCs, subject to the fence, link
// bandwidth, and downstream buffer availability (virtual cut-through:
// the downstream VC must be able to hold the whole packet).
//
// Implementation: one gather pass per busy router buckets ready heads by
// desired output (the simulator's hottest loop), then each output
// arbitrates round-robin within its bucket starting at its saPtr.
func (s *Sim) allocate() {
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots // bubble uses index `total`
	for id := range s.Routers {
		r := &s.Routers[id]
		if r.occupied == 0 || !s.Topo.RouterAlive(r.ID) {
			continue
		}
		var nc [geom.NumPorts]int
		for i := range s.saCand {
			s.saCand[i] = s.saCand[i][:0]
		}
		for in := 0; in < geom.NumPorts; in++ {
			vcs := r.In[in]
			for sl := range vcs {
				vc := &vcs[sl]
				if !vc.HeadReady(s.Now) {
					continue
				}
				out := s.OutputOf(vc.Pkt, r.ID)
				if out == geom.Invalid ||
					(r.Fence.Active && out == r.Fence.Out && geom.Direction(in) != r.Fence.In) {
					continue
				}
				if s.GrantFilter != nil && !s.GrantFilter(vc.Pkt, r.ID, geom.Direction(in), out) {
					continue
				}
				s.saCand[out] = append(s.saCand[out], int32(in*slots+sl))
				nc[out]++
			}
		}
		if r.Bubble.Present && r.Bubble.VC.HeadReady(s.Now) {
			out := s.OutputOf(r.Bubble.VC.Pkt, r.ID)
			if out != geom.Invalid &&
				!(r.Fence.Active && out == r.Fence.Out && r.Bubble.InPort != r.Fence.In) {
				s.saCand[out] = append(s.saCand[out], int32(total))
				nc[out]++
			}
		}
		for _, out := range geom.AllPorts {
			n := nc[out]
			if n == 0 || r.OutFreeAt[out] > s.Now {
				continue
			}
			if out != geom.Local && !s.Topo.HasLink(r.ID, out) {
				continue
			}
			// Rotate to the first candidate at or past the round-robin
			// pointer (candidates are in ascending index order).
			cands := s.saCand[out]
			start := 0
			for i, ci := range cands {
				if int(ci) >= r.saPtr[out] {
					start = i
					break
				}
			}
			for k := 0; k < n; k++ {
				ci := cands[(start+k)%n]
				var vc *VC
				inPort := geom.Local
				if int(ci) == total {
					vc = &r.Bubble.VC
					inPort = r.Bubble.InPort
				} else {
					inPort = geom.Direction(ci / int32(slots))
					vc = &r.In[inPort][ci%int32(slots)]
				}
				if s.tryGrant(r, out, vc, vc.Pkt, inPort) {
					r.saPtr[out] = (int(ci) + 1) % (total + 1)
					break
				}
			}
		}
	}
}

// transferBubbles slides each bubble occupant into a free regular VC of
// its vnet at the same input port, when one exists (paper footnote 6: a
// chain packet advancing vacates a VC at the port; the bubble occupant
// moves there, freeing the bubble for reclaim). Without this path a
// packet wedged in the bubble would block every later recovery at the
// router.
func (s *Sim) transferBubbles() {
	for id := range s.Routers {
		b := &s.Routers[id].Bubble
		if !b.Present || b.VC.Pkt == nil || b.VC.ReadyAt > s.Now {
			continue
		}
		p := b.VC.Pkt
		slot := s.findFreeVC(geom.NodeID(id), b.InPort, p, p.Vnet)
		if slot < 0 {
			continue
		}
		vc := &s.Routers[id].In[b.InPort][slot]
		vc.Pkt = p
		vc.ReadyAt = s.Now + 1
		b.VC.Pkt = nil
		b.VC.FreeAt = s.Now + 1
		s.Stats.BubbleTransfers++
		s.LastProgress = s.Now
	}
}

// tryGrant moves p out of vc through output port out: ejection when out is
// Local, else into a free downstream VC (or an eligible static bubble).
// inPort is the port vc lives on (for occupancy bookkeeping). Returns
// false if no downstream buffer is available.
func (s *Sim) tryGrant(r *Router, out geom.Direction, vc *VC, p *Packet, inPort geom.Direction) bool {
	length := int64(p.Len)
	if out == geom.Local {
		r.grants++
		vc.Pkt = nil
		vc.FreeAt = s.Now + length
		r.OutFreeAt[geom.Local] = s.Now + length
		p.DeliveredAt = s.Now + int64(s.Cfg.RouterLatency) + length - 1
		s.Stats.DeliveredFlits += length
		s.Stats.recordDelivery(p)
		if s.OnDeliver != nil {
			s.OnDeliver(p)
		}
		s.inFlight--
		r.occupied--
		if inPort != geom.Local {
			r.occNonLocal--
		}
		s.LastProgress = s.Now
		return true
	}
	nb := s.Topo.Neighbor(r.ID, out)
	nbr := &s.Routers[nb]
	in := out.Opposite()
	var dst *VC
	if slot := s.findFreeVC(nb, in, p, p.Vnet); slot >= 0 {
		dst = &nbr.In[in][slot]
	} else if nbr.Bubble.EligibleFor(in, s.Now) {
		dst = &nbr.Bubble.VC
		s.Stats.BubbleOccupancies++
	} else {
		return false
	}
	r.grants++
	vc.Pkt = nil
	vc.FreeAt = s.Now + length
	dst.Pkt = p
	dst.ReadyAt = s.Now + int64(s.Cfg.RouterLatency+s.Cfg.LinkLatency)
	p.Hop++
	r.OutFreeAt[out] = s.Now + length
	s.Stats.LinkCycles[ClassFlit] += length
	s.Stats.HopMoves++
	r.occupied--
	if inPort != geom.Local {
		r.occNonLocal--
	}
	nbr.occupied++
	nbr.occNonLocal++ // arrivals always land on a link-side port
	s.LastProgress = s.Now
	return true
}
