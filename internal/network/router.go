package network

import (
	"math"

	"repro/internal/geom"
)

// Fence is the runtime injection restriction installed by a disable
// message (the is_deadlock mechanism, paper Section IV-A2): while active,
// only traffic from input port In may be switched to output port Out,
// fencing the detected dependency chain off from new packets.
type Fence struct {
	Active bool
	In     geom.Direction
	Out    geom.Direction
	// SrcID is the static-bubble router that installed the fence; only a
	// matching enable clears it.
	SrcID geom.NodeID
}

// Bubble is the optional extra packet buffer of a static-bubble router.
// It is off until the recovery FSM activates it, at which point it acts
// as one additional VC on input port InPort, usable by any vnet.
type Bubble struct {
	// Present marks this router as chosen by the placement algorithm.
	Present bool
	// Active is set while the FSM has the bubble switched on.
	Active bool
	// InPort is the input port the bubble serves while active (the input
	// side of the IO-priority buffer).
	InPort geom.Direction
	VC     VC
}

// EligibleFor reports whether the bubble can accept a packet arriving on
// input port `in` at cycle now.
func (b *Bubble) EligibleFor(in geom.Direction, now int64) bool {
	return b.Present && b.Active && b.InPort == in && b.VC.Empty(now)
}

// Router is the per-node switch state. In[port] holds the input VCs,
// indexed vnet*VCsPerVnet+vc. OutFreeAt[port] is the earliest cycle a new
// packet grant may start on that output (links and the ejection port are
// busy for Len cycles per packet).
type Router struct {
	ID        geom.NodeID
	In        [geom.NumPorts][]VC
	OutFreeAt [geom.NumPorts]int64
	Fence     Fence
	Bubble    Bubble

	saPtr       [geom.NumPorts]int
	occupied    int
	occNonLocal int
	grants      int64
}

// Occupied returns the number of packets buffered at this router
// (including the bubble).
func (r *Router) Occupied() int { return r.occupied }

// OccupiedNonLocal returns the number of packets buffered at non-local
// input ports (including the bubble) — the candidates a detection FSM
// watches.
func (r *Router) OccupiedNonLocal() int { return r.occNonLocal }

// Grants counts switch-allocation grants issued by this router over its
// lifetime (including ejections) — a local progress signal used by the
// recovery liveness guards.
func (r *Router) Grants() int64 { return r.grants }

// VCAt returns the VC at input port in, vnet, index vc.
func (r *Router) VCAt(cfg Config, in geom.Direction, vnet, vc int) *VC {
	return &r.In[in][vnet*cfg.VCsPerVnet+vc]
}

// AllocateNode performs one cycle of switch allocation at router id —
// the allocation phase for a single node: for each output port, at most
// one waiting packet is granted, chosen round-robin among eligible input
// VCs, subject to the fence, link bandwidth, and downstream buffer
// availability (virtual cut-through: the downstream VC must be able to
// hold the whole packet).
//
// Implementation: one gather pass buckets ready heads by desired output
// (the simulator's hottest loop), then each output arbitrates
// round-robin within its bucket starting at its saPtr. The gather pass
// doubles as the event core's wake classifier: a head-ready packet left
// ungranted means the router is blocked on state that may change
// without a timestamped event (a freed downstream VC, a cleared fence, a
// hook's veto), so it re-polls next cycle; a router whose packets are
// all still in flight sleeps until the earliest arrives.
func (s *Sim) AllocateNode(id geom.NodeID) {
	r := &s.Routers[id]
	if r.occupied == 0 {
		return
	}
	if !s.Topo.RouterAlive(id) {
		// Buffered traffic at a dead router cannot move, but a re-enable
		// would free it with no event: poll, as the naive scan did.
		s.sched.wake(id, s.Now+1)
		return
	}
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots // bubble uses index `total`
	headReady := 0
	minFuture := int64(math.MaxInt64)
	var nc [geom.NumPorts]int
	for i := range s.saCand {
		s.saCand[i] = s.saCand[i][:0]
	}
	for in := 0; in < geom.NumPorts; in++ {
		vcs := r.In[in]
		for sl := range vcs {
			vc := &vcs[sl]
			if vc.Pkt == nil {
				continue
			}
			if vc.ReadyAt > s.Now {
				if vc.ReadyAt < minFuture {
					minFuture = vc.ReadyAt
				}
				continue
			}
			headReady++
			out := s.OutputOf(vc.Pkt, id)
			if out == geom.Invalid ||
				(r.Fence.Active && out == r.Fence.Out && geom.Direction(in) != r.Fence.In) {
				continue
			}
			if s.GrantFilter != nil && !s.GrantFilter(vc.Pkt, id, geom.Direction(in), out) {
				continue
			}
			s.saCand[out] = append(s.saCand[out], int32(in*slots+sl))
			nc[out]++
		}
	}
	if b := &r.Bubble; b.Present && b.VC.Pkt != nil {
		if b.VC.ReadyAt > s.Now {
			if b.VC.ReadyAt < minFuture {
				minFuture = b.VC.ReadyAt
			}
		} else {
			headReady++
			out := s.OutputOf(b.VC.Pkt, id)
			if out != geom.Invalid &&
				!(r.Fence.Active && out == r.Fence.Out && b.InPort != r.Fence.In) {
				s.saCand[out] = append(s.saCand[out], int32(total))
				nc[out]++
			}
		}
	}
	granted := 0
	for _, out := range geom.AllPorts {
		n := nc[out]
		if n == 0 || r.OutFreeAt[out] > s.Now {
			continue
		}
		if out != geom.Local && !s.Topo.HasLink(id, out) {
			continue
		}
		// Rotate to the first candidate at or past the round-robin
		// pointer (candidates are in ascending index order).
		cands := s.saCand[out]
		start := 0
		for i, ci := range cands {
			if int(ci) >= r.saPtr[out] {
				start = i
				break
			}
		}
		for k := 0; k < n; k++ {
			ci := cands[(start+k)%n]
			var vc *VC
			inPort := geom.Local
			if int(ci) == total {
				vc = &r.Bubble.VC
				inPort = r.Bubble.InPort
			} else {
				inPort = geom.Direction(ci / int32(slots))
				vc = &r.In[inPort][ci%int32(slots)]
			}
			if s.tryGrant(r, out, vc, vc.Pkt, inPort) {
				r.saPtr[out] = (int(ci) + 1) % (total + 1)
				granted++
				break
			}
		}
	}
	if headReady > granted {
		s.sched.wake(id, s.Now+1)
	} else if minFuture < math.MaxInt64 {
		s.sched.wake(id, minFuture)
	}
}

// TransferBubbleNode slides router id's bubble occupant into a free
// regular VC of its vnet at the same input port, when one exists (paper
// footnote 6: a chain packet advancing vacates a VC at the port; the
// bubble occupant moves there, freeing the bubble for reclaim). Without
// this path a packet wedged in the bubble would block every later
// recovery at the router. While an occupant is present the router
// re-polls every cycle: the VC it waits for can be freed by any external
// actor (a neighbor's grant, RemovePacket, a hook).
func (s *Sim) TransferBubbleNode(id geom.NodeID) {
	b := &s.Routers[id].Bubble
	if !b.Present || b.VC.Pkt == nil {
		return
	}
	if b.VC.ReadyAt > s.Now {
		s.sched.wake(id, b.VC.ReadyAt)
		return
	}
	s.sched.wake(id, s.Now+1)
	p := b.VC.Pkt
	slot := s.findFreeVC(id, b.InPort, p, p.Vnet)
	if slot < 0 {
		return
	}
	vc := &s.Routers[id].In[b.InPort][slot]
	vc.Pkt = p
	vc.ReadyAt = s.Now + 1
	b.VC.Pkt = nil
	b.VC.FreeAt = s.Now + 1
	s.Stats.BubbleTransfers++
	s.LastProgress = s.Now
}

// tryGrant moves p out of vc through output port out: ejection when out is
// Local, else into a free downstream VC (or an eligible static bubble).
// inPort is the port vc lives on (for occupancy bookkeeping). Returns
// false if no downstream buffer is available.
func (s *Sim) tryGrant(r *Router, out geom.Direction, vc *VC, p *Packet, inPort geom.Direction) bool {
	length := int64(p.Len)
	if out == geom.Local {
		if s.OnGrant != nil {
			s.OnGrant(p, vc, r.ID, inPort, out)
		}
		r.grants++
		vc.Pkt = nil
		vc.FreeAt = s.Now + length
		r.OutFreeAt[geom.Local] = s.Now + length
		p.DeliveredAt = s.Now + int64(s.Cfg.RouterLatency) + length - 1
		s.Stats.DeliveredFlits += length
		s.Stats.recordDelivery(p)
		if s.OnDeliver != nil {
			s.OnDeliver(p)
		}
		s.inFlight--
		r.occupied--
		if inPort != geom.Local {
			r.occNonLocal--
		}
		s.LastProgress = s.Now
		return true
	}
	nb := s.Topo.Neighbor(r.ID, out)
	nbr := &s.Routers[nb]
	in := out.Opposite()
	var dst *VC
	if slot := s.findFreeVC(nb, in, p, p.Vnet); slot >= 0 {
		dst = &nbr.In[in][slot]
	} else if nbr.Bubble.EligibleFor(in, s.Now) {
		dst = &nbr.Bubble.VC
		s.Stats.BubbleOccupancies++
	} else {
		return false
	}
	if s.OnGrant != nil {
		s.OnGrant(p, vc, r.ID, inPort, out)
	}
	r.grants++
	vc.Pkt = nil
	vc.FreeAt = s.Now + length
	dst.Pkt = p
	dst.ReadyAt = s.Now + int64(s.Cfg.RouterLatency+s.Cfg.LinkLatency)
	p.Hop++
	r.OutFreeAt[out] = s.Now + length
	s.Stats.LinkCycles[ClassFlit] += length
	s.Stats.HopMoves++
	r.occupied--
	if inPort != geom.Local {
		r.occNonLocal--
	}
	nbr.occupied++
	nbr.occNonLocal++ // arrivals always land on a link-side port
	s.sched.wake(nb, dst.ReadyAt)
	s.LastProgress = s.Now
	return true
}
