package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// seamRouters computes, from the shard partition, the set of routers
// with at least one alive link to a router owned by another shard — the
// only routers allowed to exchange cross-shard state.
func seamRouters(s *Sim) map[geom.NodeID]bool {
	seam := make(map[geom.NodeID]bool)
	for id := range s.Routers {
		n := geom.NodeID(id)
		for _, d := range geom.LinkDirs {
			if !s.Topo.HasLink(n, d) {
				continue
			}
			if s.shardOf[s.Topo.Neighbor(n, d)] != s.shardOf[n] {
				seam[n] = true
				break
			}
		}
	}
	return seam
}

// driveSeamWorkload runs a seeded random workload with the parallel
// path forced and an xfill observer asserting the seam invariant: every
// cross-shard buffer fill happens between two seam routers in adjacent
// shards. Returns the sim and the number of observed crossings.
func driveSeamWorkload(t *testing.T, topo *topology.Topology, shards int, seed int64, cycles int, rate float64) (*Sim, int64) {
	t.Helper()
	s := New(topo, Config{Shards: shards}, rand.New(rand.NewSource(seed)))
	var crossings int64
	if s.Shards() > 1 {
		s.SetShardInlineThreshold(-1) // force the parallel phases
		seam := seamRouters(s)
		s.SetXFillObserver(func(src, dst geom.NodeID) {
			crossings++
			if s.shardOf[src] == s.shardOf[dst] {
				t.Fatalf("xfill %v->%v within one shard", src, dst)
			}
			if d := int(s.shardOf[src]) - int(s.shardOf[dst]); d != 1 && d != -1 {
				t.Fatalf("xfill %v->%v skips shards (%d -> %d)", src, dst, s.shardOf[src], s.shardOf[dst])
			}
			if !seam[src] || !seam[dst] {
				t.Fatalf("xfill %v->%v involves a non-seam router", src, dst)
			}
		})
	}
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(seed + 1))
	alive := topo.AliveRouters()
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc < cycles*2/3 {
			for _, src := range alive {
				if rng.Float64() >= rate {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src {
					continue
				}
				r, ok := min.Route(src, dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				s.Enqueue(s.NewPacket(src, dst, rng.Intn(s.Cfg.NumVnets), 1+4*rng.Intn(2), r))
			}
		}
		s.Step()
	}
	return s, crossings
}

// TestSeamInvariantSharded is the randomized seam property test: across
// random irregular topologies (link and router faults), every
// cross-shard exchange of the parallel commit happens between seam
// routers only, and Stats land byte-identical across shards 1/2/4/8.
func TestSeamInvariantSharded(t *testing.T) {
	totalCrossings := int64(0)
	for seed := int64(1); seed <= 8; seed++ {
		hrng := rand.New(rand.NewSource(seed * 101))
		w, h := 5+hrng.Intn(6), 5+hrng.Intn(6)
		kind := topology.LinkFaults
		if hrng.Intn(3) == 0 {
			kind = topology.RouterFaults
		}
		topo := topology.RandomIrregular(w, h, kind, hrng.Intn(1+w*h/5), seed)
		want, _ := driveSeamWorkload(t, topo, 1, seed, 600, 0.12)
		for _, n := range []int{2, 4, 8} {
			got, crossings := driveSeamWorkload(t, topo, n, seed, 600, 0.12)
			totalCrossings += crossings
			if got.Stats != want.Stats {
				t.Fatalf("seed %d %dx%d shards %d: stats diverged\n got %+v\nwant %+v",
					seed, w, h, n, got.Stats, want.Stats)
			}
			if got.InFlight() != want.InFlight() || got.QueuedPackets() != want.QueuedPackets() {
				t.Fatalf("seed %d shards %d: occupancy diverged", seed, n)
			}
		}
	}
	if totalCrossings == 0 {
		t.Fatal("no seam crossings observed — the invariant was never exercised")
	}
}

// TestShardedParity32x32 scales the parity check to the ROADMAP's 32x32
// target with the parallel commit forced: Stats byte-identical across
// shards 1/2/4/8 under a saturating workload on a faulted mesh. This is
// the CI 32x32 sharded differential tier's anchor test.
func TestShardedParity32x32(t *testing.T) {
	if testing.Short() {
		t.Skip("32x32 parity is the long-tier differential")
	}
	topo := topology.RandomIrregular(32, 32, topology.LinkFaults, 30, 7)
	want, _ := driveSeamWorkload(t, topo, 1, 7, 500, 0.15)
	if want.Stats.Delivered == 0 {
		t.Fatal("32x32 workload delivered nothing — test is vacuous")
	}
	for _, n := range []int{2, 4, 8} {
		got, crossings := driveSeamWorkload(t, topo, n, 7, 500, 0.15)
		if crossings == 0 {
			t.Fatalf("shards %d: no seam crossings on a saturated 32x32", n)
		}
		if got.Stats != want.Stats {
			t.Fatalf("32x32 shards %d: stats diverged\n got %+v\nwant %+v", n, got.Stats, want.Stats)
		}
		if got.InFlight() != want.InFlight() || got.QueuedPackets() != want.QueuedPackets() {
			t.Fatalf("32x32 shards %d: occupancy diverged", n)
		}
		ctr := got.StepperCounters()
		if ctr.ParallelCycles == 0 {
			t.Fatalf("shards %d: parallel path never engaged (counters %+v)", n, ctr)
		}
	}
}

// TestStepperPathCounters pins the path-selection machinery itself:
// under the default threshold a bursty workload must mix inline and
// parallel cycles, and a drained network with no hooks must
// fast-forward through quiet epochs.
func TestStepperPathCounters(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := New(topo, Config{Shards: 4}, rand.New(rand.NewSource(3)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(4))
	for cyc := 0; cyc < 2000; cyc++ {
		// Bursts saturate (parallel path), gaps drain to idle (inline,
		// then quiet once the last in-flight packet lands).
		if cyc%500 < 30 {
			for n := 0; n < 64; n++ {
				if rng.Float64() >= 0.4 {
					continue
				}
				dst := geom.NodeID(rng.Intn(64))
				if dst == geom.NodeID(n) {
					continue
				}
				r, ok := min.Route(geom.NodeID(n), dst, rng)
				if !ok {
					continue
				}
				s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 1, r))
			}
		}
		s.Step()
	}
	ctr := s.StepperCounters()
	if ctr.ParallelCycles == 0 || ctr.InlineCycles == 0 || ctr.QuietCycles == 0 {
		t.Fatalf("expected all three paths to engage, got %+v", ctr)
	}
	if ctr.SeqCommitCycles != 0 {
		t.Fatalf("no GrantFilter/OnGrant installed, yet %d sequential-commit cycles", ctr.SeqCommitCycles)
	}
	if got := ctr.QuietCycles + ctr.InlineCycles + ctr.ParallelCycles; got != 2000 {
		t.Fatalf("path counters don't partition the run: %+v sums to %d, want 2000", ctr, got)
	}
	// An OnGrant observer must force the commit off the parallel path.
	s2 := New(topo, Config{Shards: 4}, rand.New(rand.NewSource(3)))
	s2.SetShardInlineThreshold(-1)
	s2.OnGrant = func(p *Packet, vc *VC, at geom.NodeID, in, out geom.Direction) {}
	for n := 0; n < 64; n += 3 {
		r, ok := min.Route(geom.NodeID(n), geom.NodeID(63-n), rng)
		if !ok {
			continue
		}
		s2.Enqueue(s2.NewPacket(geom.NodeID(n), geom.NodeID(63-n), 0, 5, r))
	}
	s2.Run(50)
	c2 := s2.StepperCounters()
	if c2.SeqCommitCycles == 0 || c2.ParallelCycles != 0 {
		t.Fatalf("OnGrant should force the sequential commit fallback, got %+v", c2)
	}
}

// TestQuietEpochInvalidation proves the quiet window tears down on
// every out-of-band mutation channel: an Enqueue landing mid-window
// must be injected at exactly the cycle the sequential semantics
// dictate, not after the window.
func TestQuietEpochInvalidation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		topo := topology.NewMesh(6, 6)
		s := New(topo, Config{Shards: shards}, rand.New(rand.NewSource(11)))
		min := routing.NewMinimal(topo)
		rng := rand.New(rand.NewSource(12))
		// Drain fully, then fast-forward far.
		r0, _ := min.Route(0, 35, rng)
		s.Enqueue(s.NewPacket(0, 35, 0, 5, r0))
		s.Run(300)
		if s.StepperCounters().QuietCycles == 0 {
			t.Fatalf("shards=%d: drained network never went quiet", shards)
		}
		// Mid-quiet enqueue: the packet must inject this very cycle.
		r1, _ := min.Route(7, 28, rng)
		p := s.NewPacket(7, 28, 0, 1, r1)
		s.Enqueue(p)
		at := s.Now
		s.Step()
		if p.InjectedAt != at {
			t.Fatalf("shards=%d: packet enqueued during quiet injected at %d, want %d",
				shards, p.InjectedAt, at)
		}
		s.Run(100)
		if p.DeliveredAt < 0 {
			t.Fatalf("shards=%d: mid-quiet packet never delivered", shards)
		}
	}
}
