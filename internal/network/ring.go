package network

// NIRing is the source-side injection FIFO: a growable ring buffer of
// queued packets. It replaces the earlier `q = q[1:]` slice queue, which
// pinned the whole backing array (and every delivered packet in it) for
// as long as the queue stayed non-empty. PopFront nils the vacated slot
// immediately and the buffer is released outright once the queue drains,
// so a congestion burst cannot retain memory after it clears.
type NIRing struct {
	buf  []*Packet
	head int
	n    int
	// keep is the retain bound raised by Reserve: a drained ring keeps
	// buffers up to max(ringRetainCap, keep). Prewarmed simulations
	// (Sim.PrewarmPool) reserve rings to a scenario's high-water depth,
	// and at saturation rings oscillate between full and empty — without
	// the raised bound every drain would release the buffer and every
	// refill would re-run the grow chain, which is exactly the
	// allocation churn the prewarm exists to eliminate.
	keep int
}

// Len returns the number of queued packets.
func (q *NIRing) Len() int { return q.n }

// Front returns the oldest queued packet without removing it, or nil.
func (q *NIRing) Front() *Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th queued packet (0 = front). It panics if i is out
// of range, matching slice semantics.
func (q *NIRing) At(i int) *Packet {
	if i < 0 || i >= q.n {
		panic("network: NIRing index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Push appends p at the back.
func (q *NIRing) Push(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

// PopFront removes and returns the oldest packet. The vacated slot is
// nil'd so the packet is collectable as soon as the simulator drops its
// own references; an emptied queue keeps a small buffer for
// allocation-free refill and releases a large one (see release).
func (q *NIRing) PopFront() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.n == 0 {
		q.release()
	}
	return p
}

// Filter keeps only packets for which keep returns true, preserving
// order. Dropped slots are nil'd; a fully emptied queue is treated as a
// drain (see release).
func (q *NIRing) Filter(keep func(*Packet) bool) {
	w := 0
	for i := 0; i < q.n; i++ {
		p := q.buf[(q.head+i)%len(q.buf)]
		if keep(p) {
			q.buf[(q.head+w)%len(q.buf)] = p
			w++
		}
	}
	for i := w; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = nil
	}
	q.n = w
	if q.n == 0 {
		q.release()
	}
}

// ringRetainCap bounds the buffer kept across a full drain. Steady-state
// traffic drains NI queues every few cycles, and releasing the buffer
// each time meant reallocating on every refill; buffers up to this size
// are kept (slots already nil'd, so no packets are pinned). Anything
// larger is the tail of a congestion burst and is released outright so
// the burst cannot retain memory after it clears.
const ringRetainCap = 64

// release resets a drained queue, keeping a small backing buffer (or a
// reserved one up to the Reserve bound).
func (q *NIRing) release() {
	if len(q.buf) > max(ringRetainCap, q.keep) {
		q.buf = nil
	}
	q.head = 0
}

// Cap exposes the backing-buffer capacity (for the memory-release test).
func (q *NIRing) Cap() int { return len(q.buf) }

// Reserve grows the backing buffer so the ring holds at least n packets
// without further allocation (Sim.PrewarmPool moves first-touch and
// high-water ring growth out of measured windows), and raises the
// drain-time retain bound to n so the reserved buffer survives
// fill/drain oscillation. Buffers already at or above n are left alone.
func (q *NIRing) Reserve(n int) {
	if n > q.keep {
		q.keep = n
	}
	if n <= len(q.buf) {
		return
	}
	nb := make([]*Packet, n)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

func (q *NIRing) grow() {
	nb := make([]*Packet, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
