package network

// The sharded parallel stepper. The mesh is partitioned into contiguous
// row bands — one shard per band, each owning its routers' timing-wheel
// scheduler and scratch. A cycle picks one of three execution paths:
//
//   - Quiet fast-forward (Step, network.go): when a previous cycle
//     proved nothing can happen before a horizon, Step only advances
//     Now. Costs two compares per cycle; no shard machinery runs.
//   - Inline sequential: when the total pending-wake count across
//     shards is at or below the inline threshold, the coordinator runs
//     the sequential phases itself over the per-shard due sets in shard
//     order (= ascending router id). A near-idle network pays no
//     goroutine handoff — this is what fixes the sharded core being
//     *slower* than the sequential one on idle meshes.
//   - Parallel phases: PreCycle hooks, then one goroutine per shard
//     runs collect-due + inject + gather; after a barrier the
//     coordinator folds injection deltas; then the commit runs — fully
//     parallel (one goroutine per shard, private commit sinks, folded
//     in shard order) when no GrantFilter/OnGrant is installed, else
//     sequentially on the coordinator by plan decode. Bubble transfers
//     and PostCycle hooks close the cycle.
//
// Determinism contract — the sharded stepper is byte-identical to the
// sequential event core (and hence to the refmodel full scan) for any
// shard count and any path mix:
//
//   - The epoch is one cycle: no speculative lookahead, no dependence
//     on goroutine scheduling. Quiet epochs skip only cycles proven to
//     change nothing (see maybeQuiet), so skipping is unobservable.
//   - The parallel gather phase touches only node-local state; its
//     cross-shard *reads* (downstream buffer occupancy for pruning) see
//     phase-stable or monotone state, so pruning is conservative — the
//     argument lives with gatherAllocate.
//   - The parallel commit relies on availability constancy: the
//     destination pool of a grant through output `out` is (neighbor,
//     in=out.Opposite()), and the only router that ever *fills* a VC of
//     that pool is this router (its unique upstream on that port).
//     The pool's own commits only *empty* slots, and an emptied slot
//     advertises FreeAt = now+len, so Empty(now) stays false for the
//     rest of the cycle. Downstream availability observed at gather
//     time therefore equals availability at commit time, grant
//     decisions are order-independent across routers, and a kept
//     candidate's grant cannot fail. The gather records each kept
//     candidate's free slot (allocGather.recordSlots) and the commit
//     writes exactly that slot — it never re-scans a foreign VC array,
//     whose bookkeeping fields are being rewritten concurrently.
//     A same-cycle bubble destination is safe for the same reason: the
//     bubble serves exactly one input port (EligibleFor checks InPort),
//     so its writer is unique too.
//   - Writes crossing a seam during parallel commit are exactly: the
//     destination VC fill (unique writer, see above — the downstream
//     router's own commit only reads its *occupied* candidate slots,
//     which are different elements). Everything else the sequential
//     commit would do to a foreign-shard router — its occupancy
//     counters and its wake — is deferred into the shard's commit sink
//     (xfill records) and applied by the coordinator's fold. Own-shard
//     neighbors are updated directly. Global counters (Stats, inFlight,
//     LastProgress) accumulate in per-shard sinks and fold in shard
//     order; all are sums plus one max, so the totals match the
//     sequential core's bit for bit. Delivered packets are retained in
//     the sink and their OnDeliver callbacks + pool releases replay at
//     fold time in ascending-router-id order — the sequential core's
//     call and free-list order (at most one ejection per router per
//     cycle, so within-shard append order is ascending id).
//   - When a GrantFilter or OnGrant observer is installed, commit
//     decisions stop being provably order-independent (a filter may
//     consult arbitrary state mid-phase), so the cycle latches
//     parCommit=false and decodes the plans sequentially in ascending
//     router id through the very same commitAllocate the sequential
//     core runs. VCFilter is compatible with the parallel commit: it is
//     only ever consulted during gather (both cores prune and allocate
//     with gather-time answers), which requires it to be a pure
//     function of phase-stable state — already a documented obligation.
//   - Each shard's scheduler holds exactly the wakes of its own
//     routers. During parallel phases a worker wakes only its own
//     routers (inject/gather re-polls, commit tail wakes, own-shard
//     arrivals); cross-shard wakes ride the xfill records and are
//     issued by the coordinator's fold at the same cycle values the
//     sequential core would use, so due sets match cycle for cycle.
//   - RNG ownership: the simulator core draws nothing from Sim.Rng, and
//     traffic/hooks run only on the coordinator, so the draw sequence
//     is untouched by sharding.
//
// Shards is therefore execution configuration, like the sweep engine's
// worker count: it never enters a result cache key.

import (
	"repro/internal/geom"
)

// maxShards bounds the shard count; row-band partitions beyond this see
// no return on any plausible host.
const maxShards = 64

// effectiveShards clamps a requested shard count to the usable range
// (at most one shard per mesh row).
func effectiveShards(requested, height int) int {
	if requested < 1 {
		return 1
	}
	if requested > height {
		requested = height
	}
	if requested > maxShards {
		requested = maxShards
	}
	return requested
}

// shardState is one shard's private scheduler and per-cycle scratch.
// Workers never touch another shard's state, so none of it is locked.
type shardState struct {
	sched  scheduler
	due    []int32
	gather allocGather
	inj    injectDelta
	plan   shardPlan
	sink   commitSink
	// lo/hi delimit the shard's contiguous router-id band [lo, hi) —
	// bands are whole row groups, so the range is exact. The dense
	// stepper fills the due set by sweeping the band's occupancy state
	// instead of draining the (suspended) shard scheduler.
	lo, hi int32
	// worker/commitWorker are the shard's goroutine bodies, built once
	// at initShards: spawning a pre-bound func value (`go sh.worker()`)
	// costs no allocation per cycle, whereas a literal closure with
	// arguments would heap-allocate its context every Step.
	worker       func()
	commitWorker func()
}

// commitSink accumulates one shard's deferred commit effects for the
// coordinator's fold: delta Stats, conservation counters, packets
// delivered this cycle (OnDeliver + pool release replay in order at
// fold time), and cross-shard arrival records.
type commitSink struct {
	stats      Stats
	inFlight   int64
	progressed bool
	released   []*Packet
	xf         []xfill
}

// xfill records a grant that filled a buffer in a router owned by
// another shard: the destination's occupancy increments (counters and
// the slot-occupancy mirror, whose word would otherwise be written by
// two shards) and its wake at the arrival cycle are applied by the
// coordinator after the commit barrier. src rides along for the seam
// observability hook; bit is the filled buffer's candidate index.
type xfill struct {
	src, nb int32
	bit     int32
	at      int64
}

func (c *commitSink) reset() {
	c.stats = Stats{}
	c.inFlight = 0
	c.progressed = false
	for i := range c.released {
		c.released[i] = nil
	}
	c.released = c.released[:0]
	c.xf = c.xf[:0]
}

// shardPlan is the gather output a shard hands to the commit pass:
// for each router with at least one feasible candidate bucket, its wake
// classification and the buckets, flattened into one int32 stream
// (per bucket: a header out|len<<3, then the candidate indices). Under
// the parallel commit, slots carries the recorded free downstream slot
// for every link-bucket candidate, in stream order (-1 = bubble).
type shardPlan struct {
	ids     []int32
	heads   []int32
	futures []int64
	boff    []int32 // stream offsets, len(ids)+1
	stream  []int32
	slots   []int32
}

func (p *shardPlan) reset() {
	p.ids = p.ids[:0]
	p.heads = p.heads[:0]
	p.futures = p.futures[:0]
	p.stream = p.stream[:0]
	p.slots = p.slots[:0]
	p.boff = append(p.boff[:0], 0)
}

// reserve pre-grows the plan's slices for a band of n routers whose
// per-router stream never exceeds perRouter entries (PrewarmPool).
func (p *shardPlan) reserve(n, perRouter int) {
	p.ids = reserveInt32(p.ids, n)
	p.heads = reserveInt32(p.heads, n)
	p.boff = reserveInt32(p.boff, n+1)
	p.stream = reserveInt32(p.stream, n*perRouter)
	p.slots = reserveInt32(p.slots, n*perRouter)
	if cap(p.futures) < n {
		p.futures = append(make([]int64, 0, n), p.futures...)
	}
}

func (p *shardPlan) add(id int32, g *allocGather) {
	p.ids = append(p.ids, id)
	p.heads = append(p.heads, int32(g.headReady))
	p.futures = append(p.futures, g.minFuture)
	for _, out := range geom.AllPorts {
		c := g.cand[out]
		if len(c) == 0 {
			continue
		}
		p.stream = append(p.stream, int32(out)|int32(len(c))<<3)
		p.stream = append(p.stream, c...)
		if g.recordSlots && out != geom.Local {
			p.slots = append(p.slots, g.slot[out]...)
		}
	}
	p.boff = append(p.boff, int32(len(p.stream)))
}

// initShards switches the Sim onto the sharded stepper with n > 1
// shards: contiguous row bands of near-equal height (router ids are
// row-major, so each band is a contiguous id range and visiting shards
// in order visits routers in ascending global id).
func (s *Sim) initShards(n int) {
	w, h := s.Topo.Width(), s.Topo.Height()
	s.nshards = n
	s.shardOf = make([]int8, len(s.Routers))
	s.shards = make([]shardState, n)
	for k := 0; k < n; k++ {
		sh := &s.shards[k]
		sh.sched.init(len(s.Routers))
		sh.gather.init(s.Cfg)
		sh.plan.reset()
		sh.worker = func() {
			s.shardInjectGather(sh)
			s.shardWG.Done()
		}
		sh.commitWorker = func() {
			s.commitShardPar(sh)
			s.shardWG.Done()
		}
		sh.lo = int32(k * h / n * w)
		sh.hi = int32((k + 1) * h / n * w)
		for y := k * h / n; y < (k+1)*h/n; y++ {
			for x := 0; x < w; x++ {
				s.shardOf[y*w+x] = int8(k)
			}
		}
	}
}

// RequireUnsharded permanently collapses the simulation onto the
// sequential stepper, migrating pending wakes to the global scheduler.
// Hooks whose callbacks read other routers' state mid-phase call this
// at attach time: such reads are deterministic only under the strictly
// ordered sequential phases (the adaptive routing scheme's
// downstream-occupancy probe is the one in-tree example). Results are
// unchanged — the sharded stepper is byte-identical to the sequential
// one — so this is purely an execution-mode downgrade.
func (s *Sim) RequireUnsharded() {
	if s.nshards <= 1 {
		return
	}
	s.quietUntil = 0 // the quiet proof was computed over shard schedulers
	if s.sched.drained < s.Now-1 {
		s.sched.drained = s.Now - 1
	}
	for k := range s.shards {
		sh := &s.shards[k]
		for id, t := range sh.sched.wakeAt {
			if t != wakeNever {
				s.sched.wake(geom.NodeID(id), t)
			}
		}
	}
	s.nshards = 1
	s.shardOf = nil
	s.shards = nil
}

// Shards reports the effective shard count the stepper is running with.
func (s *Sim) Shards() int { return s.nshards }

// SetXFillObserver installs a callback invoked (on the coordinator, at
// fold time) for every cross-shard buffer fill with the granting and
// receiving router ids — observability for the seam-invariant tests.
// Pass nil to remove.
func (s *Sim) SetXFillObserver(f func(src, dst geom.NodeID)) { s.xfillObs = f }

// stepSharded advances one cycle on the sharded stepper. See the
// package comment above for the phase structure and the determinism
// argument.
func (s *Sim) stepSharded() {
	// Dense cycles always take the parallel phases: every shard's due set
	// is near its whole band, so the inline path's premise (barely any
	// work) cannot hold, and sched.live is meaningless while suspended.
	dense := s.dense.on
	if !dense && s.inlineThreshold >= 0 {
		live := 0
		for k := range s.shards {
			live += s.shards[k].sched.live
		}
		if live <= s.inlineThreshold {
			s.stepShardedInline()
			return
		}
	}
	s.parCommit = s.GrantFilter == nil && s.OnGrant == nil
	for k := range s.shards {
		s.shards[k].gather.recordSlots = s.parCommit
	}
	for _, f := range s.PreCycle {
		f(s)
	}
	s.shardWG.Add(s.nshards - 1)
	for k := 1; k < s.nshards; k++ {
		go s.shards[k].worker()
	}
	s.shardInjectGather(&s.shards[0])
	s.shardWG.Wait()
	totalDue, work := 0, false
	for k := range s.shards {
		sh := &s.shards[k]
		sh.inj.apply(s)
		totalDue += len(sh.due)
		if len(sh.plan.ids) > 0 {
			work = true
		}
	}
	if work {
		if s.parCommit {
			s.shardWG.Add(s.nshards - 1)
			for k := 1; k < s.nshards; k++ {
				go s.shards[k].commitWorker()
			}
			s.commitShardPar(&s.shards[0])
			s.shardWG.Wait()
			s.foldSinks()
		} else {
			for k := range s.shards {
				s.commitShard(&s.shards[k])
			}
		}
	}
	if s.parCommit {
		s.ctr.ParallelCycles++
	} else {
		s.ctr.SeqCommitCycles++
	}
	for k := range s.shards {
		for _, id := range s.shards[k].due {
			s.TransferBubbleNode(geom.NodeID(id))
		}
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
	if dense {
		s.ctr.DenseCycles++
		if s.dense.observeDense(totalDue, len(s.Routers)) {
			s.exitDense()
		}
		return
	}
	if totalDue == 0 {
		s.maybeQuiet()
	} else if s.dense.observeSparse(totalDue, len(s.Routers)) {
		s.enterDense()
	}
}

// stepShardedInline runs one sharded cycle entirely on the coordinator:
// the per-shard due sets are drained in shard order (= ascending global
// router id, bands being contiguous) and fed through the sequential
// phase primitives — literally the sequential core's cycle. Chosen when
// so few routers are pending that two barrier crossings would dominate.
func (s *Sim) stepShardedInline() {
	for _, f := range s.PreCycle {
		f(s)
	}
	totalDue := 0
	for k := range s.shards {
		sh := &s.shards[k]
		sh.due = sh.sched.collectDue(s.Now, sh.due[:0])
		totalDue += len(sh.due)
	}
	for k := range s.shards {
		for _, id := range s.shards[k].due {
			s.InjectNode(geom.NodeID(id))
		}
	}
	for k := range s.shards {
		for _, id := range s.shards[k].due {
			s.AllocateNode(geom.NodeID(id))
		}
	}
	for k := range s.shards {
		for _, id := range s.shards[k].due {
			s.TransferBubbleNode(geom.NodeID(id))
		}
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
	s.ctr.InlineCycles++
	if totalDue == 0 {
		s.maybeQuiet()
	} else if s.dense.observeSparse(totalDue, len(s.Routers)) {
		s.enterDense()
	}
}

// shardInjectGather is the parallel phase of one shard: drain the
// shard's due set for this cycle, inject at every due router
// (node-local; counter movements go to the shard's private delta), then
// gather allocation plans for the commit pass.
func (s *Sim) shardInjectGather(sh *shardState) {
	if s.dense.on {
		sh.due = s.denseDueBand(sh.lo, sh.hi, sh.due[:0])
	} else {
		sh.due = sh.sched.collectDue(s.Now, sh.due[:0])
	}
	for _, id := range sh.due {
		s.injectNode(geom.NodeID(id), &sh.inj)
	}
	sh.plan.reset()
	for _, id := range sh.due {
		if s.gatherAllocate(geom.NodeID(id), &sh.gather) {
			sh.plan.add(id, &sh.gather)
		}
	}
}

// commitShard replays one shard's plan through commitAllocate on the
// coordinator. Plans are decoded into the coordinator's scratch so the
// commit code is the very same the sequential core runs. This is the
// fallback for cycles with a GrantFilter or OnGrant installed.
func (s *Sim) commitShard(sh *shardState) {
	g := &s.seqGather
	p := &sh.plan
	for i, id := range p.ids {
		for o := range g.cand {
			g.cand[o] = g.cand[o][:0]
		}
		g.headReady = int(p.heads[i])
		g.minFuture = p.futures[i]
		seg := p.stream[p.boff[i]:p.boff[i+1]]
		for len(seg) > 0 {
			out := geom.Direction(seg[0] & 7)
			n := int(seg[0] >> 3)
			g.cand[out] = append(g.cand[out], seg[1:1+n]...)
			seg = seg[1+n:]
		}
		s.commitAllocate(geom.NodeID(id), g)
	}
}

// commitShardPar commits one shard's plan on the shard's own goroutine.
// With no GrantFilter, every candidate that survived the gather prune
// is grantable (availability constancy — see the package comment), so
// each bucket's winner is simply its first candidate at or past the
// round-robin pointer, moving into the slot recorded at gather time.
// All effects that cross the shard boundary or touch global accumulators
// are deferred into the shard's commit sink.
func (s *Sim) commitShardPar(sh *shardState) {
	p := &sh.plan
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots
	sc := 0 // cursor into p.slots, advanced per link bucket
	for i, id := range p.ids {
		r := &s.Routers[id]
		granted := 0
		seg := p.stream[p.boff[i]:p.boff[i+1]]
		for len(seg) > 0 {
			out := geom.Direction(seg[0] & 7)
			n := int(seg[0] >> 3)
			cands := seg[1 : 1+n]
			var dsts []int32
			if out != geom.Local {
				dsts = p.slots[sc : sc+n]
				sc += n
			}
			seg = seg[1+n:]
			// Rotate to the first candidate at or past the round-robin
			// pointer (candidates are in ascending index order) — the
			// winner, since no candidate can fail.
			start := 0
			for j, ci := range cands {
				if int(ci) >= r.saPtr[out] {
					start = j
					break
				}
			}
			ci := cands[start]
			vc, inPort := r.candVC(ci, slots, total)
			dstSlot := int32(-1)
			if out != geom.Local {
				dstSlot = dsts[start]
			}
			s.grantPar(sh, r, out, vc, vc.Pkt, inPort, int(ci), dstSlot)
			r.saPtr[out] = (int(ci) + 1) % (total + 1)
			granted++
		}
		if int(p.heads[i]) > granted {
			sh.sched.wake(geom.NodeID(id), s.Now+1)
		} else if f := p.futures[i]; f < wakeNever {
			sh.sched.wake(geom.NodeID(id), f)
		}
	}
}

// grantPar is tryGrant's parallel-commit counterpart: it performs the
// same buffer movement (the destination slot was recorded at gather
// time and cannot have changed), updates this shard's own routers
// directly, and defers everything else — Stats, inFlight, LastProgress,
// delivery callbacks, pool releases, and foreign-shard occupancy/wakes
// — into the shard's commit sink.
func (s *Sim) grantPar(sh *shardState, r *Router, out geom.Direction, vc *VC, p *Packet, inPort geom.Direction, ci int, dstSlot int32) {
	sink := &sh.sink
	length := int64(p.Len)
	if out == geom.Local {
		s.grantN[r.ID]++
		vc.Pkt = nil
		vc.FreeAt = s.Now + length
		s.occBitClear(r.ID, ci)
		r.OutFreeAt[geom.Local] = s.Now + length
		p.DeliveredAt = s.Now + int64(s.Cfg.RouterLatency) + length - 1
		sink.stats.DeliveredFlits += length
		sink.stats.recordDelivery(p)
		sink.inFlight--
		s.occ[r.ID]--
		if inPort != geom.Local {
			s.occNL[r.ID]--
		}
		sink.progressed = true
		sink.released = append(sink.released, p)
		return
	}
	nb := s.Topo.Neighbor(r.ID, out)
	nbr := &s.Routers[nb]
	in := out.Opposite()
	var dst *VC
	dstBit := geom.NumPorts * s.Cfg.SlotsPerPort()
	if dstSlot >= 0 {
		dst = &nbr.In[in][dstSlot]
		dstBit = int(in)*s.Cfg.SlotsPerPort() + int(dstSlot)
	} else {
		dst = &nbr.Bubble.VC
		sink.stats.BubbleOccupancies++
	}
	s.grantN[r.ID]++
	vc.Pkt = nil
	vc.FreeAt = s.Now + length
	s.occBitClear(r.ID, ci)
	dst.Pkt = p
	dst.ReadyAt = s.Now + int64(s.Cfg.RouterLatency+s.Cfg.LinkLatency)
	p.Hop++
	r.OutFreeAt[out] = s.Now + length
	sink.stats.LinkCycles[ClassFlit] += length
	sink.stats.HopMoves++
	s.occ[r.ID]--
	if inPort != geom.Local {
		s.occNL[r.ID]--
	}
	if s.shardOf[nb] == s.shardOf[r.ID] {
		s.occ[nb]++
		s.occNL[nb]++ // arrivals always land on a link-side port
		s.occBitSet(nb, dstBit)
		sh.sched.wake(nb, dst.ReadyAt)
	} else {
		sink.xf = append(sink.xf, xfill{src: int32(r.ID), nb: int32(nb), bit: int32(dstBit), at: dst.ReadyAt})
	}
	sink.progressed = true
}

// foldSinks applies every shard's deferred commit effects in shard
// order (= ascending router id): global accumulators (all sums plus one
// max), cross-shard occupancy and arrival wakes, then the delivery
// callbacks and pool releases in the sequential core's exact order.
func (s *Sim) foldSinks() {
	for k := range s.shards {
		sink := &s.shards[k].sink
		s.Stats.merge(&sink.stats)
		s.inFlight += sink.inFlight
		if sink.progressed {
			s.LastProgress = s.Now
		}
		s.ctr.XFills += int64(len(sink.xf))
		for _, x := range sink.xf {
			s.occ[x.nb]++
			s.occNL[x.nb]++
			s.occBitSet(geom.NodeID(x.nb), int(x.bit))
			s.wakeNode(geom.NodeID(x.nb), x.at)
			if s.xfillObs != nil {
				s.xfillObs(geom.NodeID(x.src), geom.NodeID(x.nb))
			}
		}
		for _, p := range sink.released {
			if s.OnDeliver != nil {
				s.OnDeliver(p)
			}
			s.releasePacket(p)
		}
		sink.reset()
	}
}
