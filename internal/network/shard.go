package network

// The sharded parallel stepper. The mesh is partitioned into contiguous
// row bands — one shard per band, each owning its routers' schedulers
// and scratch — and every cycle runs as:
//
//	PreCycle hooks                     (coordinator)
//	collect due + inject + gather      (parallel, one goroutine per shard)
//	fold injection deltas              (coordinator, shard order)
//	commit switch allocation           (coordinator, ascending router id)
//	bubble transfers                   (coordinator, ascending router id)
//	PostCycle hooks                    (coordinator)
//
// Determinism contract — the sharded stepper is byte-identical to the
// sequential event core (and hence to the refmodel full scan) for any
// shard count:
//
//   - The epoch is one cycle: shards join a barrier before any
//     cross-router state moves, so there is no speculative lookahead to
//     roll back and no dependence on goroutine scheduling.
//   - The parallel phase touches only node-local state. Injection
//     writes a node's own local-port VCs; gather writes only its
//     per-shard plan. Gather's cross-shard *reads* (downstream buffer
//     occupancy for pruning) see phase-stable or monotone state, so
//     pruning is conservative and cannot change any grant decision —
//     the argument lives with gatherAllocate/commitAllocate.
//   - Boundary exchange is the commit pass itself: all packet movement,
//     grant filters, Stats and delivery callbacks run sequentially in
//     ascending global router id — the sequential core's exact order —
//     regardless of which shard owns the routers involved.
//   - Each shard's timing-wheel scheduler holds exactly the wakes of
//     its own routers. During the parallel phase a worker only wakes
//     itself (inject re-polls, gather's blocked/sleep classification);
//     cross-shard wakes (a grant waking the downstream router) happen
//     only in the sequential commit. The per-shard wake streams union
//     to a superset of the sequential core's that preserves every
//     earliest-wake, so due sets match cycle for cycle.
//   - RNG ownership: the simulator core draws nothing from Sim.Rng, and
//     traffic/hooks run only on the coordinator, so the draw sequence
//     is untouched by sharding.
//
// Shards is therefore execution configuration, like the sweep engine's
// worker count: it never enters a result cache key.

import (
	"repro/internal/geom"
)

// maxShards bounds the shard count; row-band partitions beyond this see
// no return on any plausible host.
const maxShards = 64

// effectiveShards clamps a requested shard count to the usable range
// (at most one shard per mesh row).
func effectiveShards(requested, height int) int {
	if requested < 1 {
		return 1
	}
	if requested > height {
		requested = height
	}
	if requested > maxShards {
		requested = maxShards
	}
	return requested
}

// shardState is one shard's private scheduler and per-cycle scratch.
// Workers never touch another shard's state, so none of it is locked.
type shardState struct {
	sched  scheduler
	due    []int32
	gather allocGather
	inj    injectDelta
	plan   shardPlan
	// worker is the shard's goroutine body, built once at initShards:
	// spawning a pre-bound func value (`go sh.worker()`) costs no
	// allocation per cycle, whereas a literal closure with arguments
	// would heap-allocate its context every Step.
	worker func()
}

// shardPlan is the gather output a shard hands to the commit pass:
// for each router with at least one feasible candidate bucket, its wake
// classification and the buckets, flattened into one int32 stream
// (per bucket: a header out|len<<3, then the candidate indices).
type shardPlan struct {
	ids     []int32
	heads   []int32
	futures []int64
	boff    []int32 // stream offsets, len(ids)+1
	stream  []int32
}

func (p *shardPlan) reset() {
	p.ids = p.ids[:0]
	p.heads = p.heads[:0]
	p.futures = p.futures[:0]
	p.stream = p.stream[:0]
	p.boff = append(p.boff[:0], 0)
}

// reserve pre-grows the plan's slices for a band of n routers whose
// per-router stream never exceeds perRouter entries (PrewarmPool).
func (p *shardPlan) reserve(n, perRouter int) {
	p.ids = reserveInt32(p.ids, n)
	p.heads = reserveInt32(p.heads, n)
	p.boff = reserveInt32(p.boff, n+1)
	p.stream = reserveInt32(p.stream, n*perRouter)
	if cap(p.futures) < n {
		p.futures = append(make([]int64, 0, n), p.futures...)
	}
}

func (p *shardPlan) add(id int32, g *allocGather) {
	p.ids = append(p.ids, id)
	p.heads = append(p.heads, int32(g.headReady))
	p.futures = append(p.futures, g.minFuture)
	for _, out := range geom.AllPorts {
		c := g.cand[out]
		if len(c) == 0 {
			continue
		}
		p.stream = append(p.stream, int32(out)|int32(len(c))<<3)
		p.stream = append(p.stream, c...)
	}
	p.boff = append(p.boff, int32(len(p.stream)))
}

// initShards switches the Sim onto the sharded stepper with n > 1
// shards: contiguous row bands of near-equal height (router ids are
// row-major, so each band is a contiguous id range and visiting shards
// in order visits routers in ascending global id).
func (s *Sim) initShards(n int) {
	w, h := s.Topo.Width(), s.Topo.Height()
	s.nshards = n
	s.shardOf = make([]int8, len(s.Routers))
	s.shards = make([]shardState, n)
	for k := 0; k < n; k++ {
		sh := &s.shards[k]
		sh.sched.init(len(s.Routers))
		sh.gather.init(s.Cfg)
		sh.plan.reset()
		sh.worker = func() {
			s.shardInjectGather(sh)
			s.shardWG.Done()
		}
		for y := k * h / n; y < (k+1)*h/n; y++ {
			for x := 0; x < w; x++ {
				s.shardOf[y*w+x] = int8(k)
			}
		}
	}
}

// RequireUnsharded permanently collapses the simulation onto the
// sequential stepper, migrating pending wakes to the global scheduler.
// Hooks whose callbacks read other routers' state mid-phase call this
// at attach time: such reads are deterministic only under the strictly
// ordered sequential phases (the adaptive routing scheme's
// downstream-occupancy probe is the one in-tree example). Results are
// unchanged — the sharded stepper is byte-identical to the sequential
// one — so this is purely an execution-mode downgrade.
func (s *Sim) RequireUnsharded() {
	if s.nshards <= 1 {
		return
	}
	if s.sched.drained < s.Now-1 {
		s.sched.drained = s.Now - 1
	}
	for k := range s.shards {
		sh := &s.shards[k]
		for id, t := range sh.sched.wakeAt {
			if t != wakeNever {
				s.sched.wake(geom.NodeID(id), t)
			}
		}
	}
	s.nshards = 1
	s.shardOf = nil
	s.shards = nil
}

// Shards reports the effective shard count the stepper is running with.
func (s *Sim) Shards() int { return s.nshards }

// stepSharded advances one cycle on the sharded stepper. See the
// package comment above for the phase structure and the determinism
// argument.
func (s *Sim) stepSharded() {
	for _, f := range s.PreCycle {
		f(s)
	}
	s.shardWG.Add(s.nshards - 1)
	for k := 1; k < s.nshards; k++ {
		go s.shards[k].worker()
	}
	s.shardInjectGather(&s.shards[0])
	s.shardWG.Wait()
	for k := range s.shards {
		s.shards[k].inj.apply(s)
	}
	for k := range s.shards {
		s.commitShard(&s.shards[k])
	}
	for k := range s.shards {
		for _, id := range s.shards[k].due {
			s.TransferBubbleNode(geom.NodeID(id))
		}
	}
	for _, f := range s.PostCycle {
		f(s)
	}
	s.Now++
}

// shardInjectGather is the parallel phase of one shard: drain the
// shard's due set for this cycle, inject at every due router
// (node-local; counter movements go to the shard's private delta), then
// gather allocation plans for the commit pass.
func (s *Sim) shardInjectGather(sh *shardState) {
	sh.due = sh.sched.collectDue(s.Now, sh.due[:0])
	for _, id := range sh.due {
		s.injectNode(geom.NodeID(id), &sh.inj)
	}
	sh.plan.reset()
	for _, id := range sh.due {
		if s.gatherAllocate(geom.NodeID(id), &sh.gather) {
			sh.plan.add(id, &sh.gather)
		}
	}
}

// commitShard replays one shard's plan through commitAllocate. Plans
// are decoded into the coordinator's scratch so the commit code is the
// very same the sequential core runs.
func (s *Sim) commitShard(sh *shardState) {
	g := &s.seqGather
	p := &sh.plan
	for i, id := range p.ids {
		for o := range g.cand {
			g.cand[o] = g.cand[o][:0]
		}
		g.headReady = int(p.heads[i])
		g.minFuture = p.futures[i]
		seg := p.stream[p.boff[i]:p.boff[i+1]]
		for len(seg) > 0 {
			out := geom.Direction(seg[0] & 7)
			n := int(seg[0] >> 3)
			g.cand[out] = append(g.cand[out], seg[1:1+n]...)
			seg = seg[1+n:]
		}
		s.commitAllocate(geom.NodeID(id), g)
	}
}
