package network

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestDenseHysteresisNoFlap pins the hysteresis contract down at the
// exact threshold boundaries: entry needs a full streak of at-or-above
// cycles, any dip resets it, and once dense the band between the exit
// and entry thresholds sustains the mode — so activity hovering at a
// boundary costs at most one mode transition, never an oscillation.
func TestDenseHysteresisNoFlap(t *testing.T) {
	const total = 100
	enter := int(denseEnterFrac * total) // 35
	exit := int(denseExitFrac * total)   // 15

	t.Run("entry_requires_full_streak", func(t *testing.T) {
		var p densePolicy
		for i := 0; i < denseStreak-1; i++ {
			if p.observeSparse(enter, total) {
				t.Fatalf("entered after %d cycles, want %d", i+1, denseStreak)
			}
		}
		if !p.observeSparse(enter, total) {
			t.Fatalf("did not enter after %d at-threshold cycles", denseStreak)
		}
	})

	t.Run("dip_resets_entry_streak", func(t *testing.T) {
		var p densePolicy
		// Oscillating one packet above/below the threshold never
		// accumulates a streak: the policy cannot flap at the boundary.
		for i := 0; i < 10*denseStreak; i++ {
			due := enter
			if i%2 == 1 {
				due = enter - 1
			}
			if p.observeSparse(due, total) {
				t.Fatalf("entered during boundary oscillation at cycle %d", i)
			}
		}
	})

	t.Run("band_sustains_dense", func(t *testing.T) {
		var p densePolicy
		// Anything in [exit, enter) keeps the dense stepper: the same
		// activity that was too low to enter is too high to leave, so a
		// workload settling just under the entry threshold after one
		// transition stays put — at most one flip.
		for i := 0; i < 10*denseStreak; i++ {
			if p.observeDense(exit, total) || p.observeDense(enter-1, total) {
				t.Fatalf("exited inside the hysteresis band at cycle %d", i)
			}
		}
	})

	t.Run("exit_requires_full_streak", func(t *testing.T) {
		var p densePolicy
		for i := 0; i < denseStreak-1; i++ {
			if p.observeDense(exit-1, total) {
				t.Fatalf("exited after %d cycles, want %d", i+1, denseStreak)
			}
		}
		if !p.observeDense(exit-1, total) {
			t.Fatalf("did not exit after %d below-threshold cycles", denseStreak)
		}
	})

	t.Run("forced_modes_ignore_observations", func(t *testing.T) {
		for _, m := range []DenseMode{DenseForcedOff, DenseForcedOn} {
			p := densePolicy{mode: m}
			for i := 0; i < 2*denseStreak; i++ {
				if p.observeSparse(total, total) || p.observeDense(0, total) {
					t.Fatalf("mode %v acted on an observation", m)
				}
			}
		}
	})
}

// TestSetDenseModeTransitions checks the mode knob's immediate effect
// and its counter trail: forcing on enters once (idempotently), forcing
// off exits once, and returning to auto keeps the current stepper.
func TestSetDenseModeTransitions(t *testing.T) {
	s := New(topology.NewMesh(4, 4), Config{}, rand.New(rand.NewSource(1)))
	if s.DenseActive() {
		t.Fatal("new sim should start sparse")
	}
	s.SetDenseMode(DenseForcedOn)
	if !s.DenseActive() {
		t.Fatal("forced on should activate the dense stepper")
	}
	s.SetDenseMode(DenseForcedOn) // idempotent
	if c := s.StepperCounters(); c.DenseEnters != 1 {
		t.Fatalf("DenseEnters = %d, want 1", c.DenseEnters)
	}
	s.Step()
	if c := s.StepperCounters(); c.DenseCycles != 1 {
		t.Fatalf("DenseCycles = %d, want 1", c.DenseCycles)
	}
	s.SetDenseMode(DenseForcedOff)
	if s.DenseActive() {
		t.Fatal("forced off should deactivate the dense stepper")
	}
	s.SetDenseMode(DenseAuto) // keeps the current stepper
	if s.DenseActive() {
		t.Fatal("returning to auto must not flip the stepper")
	}
	if c := s.StepperCounters(); c.DenseEnters != 1 || c.DenseExits != 1 {
		t.Fatalf("counters = %+v, want one enter and one exit", c)
	}
}

// TestDenseExitRestoresWakes is the regression test for the dense
// period's wake suppression: traffic injected and moved entirely under
// the dense stepper (wakes suppressed throughout) must still drain to
// delivery after the mode is forced back to sparse — exitDense has to
// rebuild the scheduler invariant from current state alone.
func TestDenseExitRestoresWakes(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	s := New(topo, Config{}, rand.New(rand.NewSource(3)))
	xy := routing.NewXY(topo)
	rng := rand.New(rand.NewSource(4))
	n := topo.NumNodes()
	var offered int64
	s.SetDenseMode(DenseForcedOn)
	for c := 0; c < 200; c++ {
		for i := 0; i < n; i++ {
			if rng.Float64() >= 0.2 {
				continue
			}
			dst := geom.NodeID(rng.Intn(n))
			if dst == geom.NodeID(i) {
				continue
			}
			r, ok := xy.Route(geom.NodeID(i), dst, nil)
			if !ok {
				t.Fatal("XY route missing on a healthy mesh")
			}
			s.Enqueue(s.NewPacket(geom.NodeID(i), dst, rng.Intn(s.Cfg.NumVnets), 1, r))
			offered++
		}
		s.Step()
	}
	if s.InFlight()+s.QueuedPackets() == 0 {
		t.Fatal("test needs traffic still in flight at the mode flip")
	}
	s.SetDenseMode(DenseForcedOff)
	for i := 0; i < 20000 && s.InFlight()+s.QueuedPackets() > 0; i++ {
		s.Step()
	}
	if s.Stats.Delivered != offered {
		t.Fatalf("delivered %d of %d after dense exit (inflight %d, queued %d)",
			s.Stats.Delivered, offered, s.InFlight(), s.QueuedPackets())
	}
}
