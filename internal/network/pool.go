package network

import (
	"repro/internal/geom"
	"repro/internal/routing"
)

// Packet pooling: in steady state a simulator creates and destroys one
// packet per delivery, which under plain allocation costs two heap
// objects per packet (the Packet and its Route slice) and makes GC — not
// compute — the bound on long saturation sweeps. Each Sim therefore owns
// a packet free list and a routing.Arena: delivered and lost packets are
// recycled, and every route lives in an arena span that returns to a
// size-class free list with its packet. After warm-up the cycle loop
// allocates nothing (verified by TestZeroAllocSteadyState and gated in
// CI via BENCH_sim.json).
//
// Ownership rules:
//
//   - NewPacket COPIES the caller's route into the arena; the caller
//     keeps ownership of (and may immediately reuse) its buffer. This is
//     what makes scratch-route injection (traffic.Injector) and
//     cross-sim route sharing (the differential harness drives several
//     Sims off one route slice) safe.
//   - A *Packet obtained from NewPacket is owned by the Sim from
//     delivery/loss onward: tryGrant's local-ejection branch,
//     DeliverOutOfBand, RemovePacket and DiscardQueued all return it to
//     the pool. Holders that outlive delivery must use Packet.Ref.
//   - SetRoute is the only sanctioned way to replace a live packet's
//     route (reconfig's reroutes); it recycles the old span in place
//     when the new route fits.
//   - The sharded stepper is safe because packets are created by
//     injection tick code and released either by commitAllocate or by
//     the commit-sink fold, all of which run on the coordinator in the
//     sequential portion of the cycle (parallel commit workers only
//     *defer* releases into their sinks).
//
// The refmodel differential unit runs with SetPooling(false): it keeps
// plain new(Packet) allocation, so a pooling bug in the event/sharded
// cores (premature recycle, route-span aliasing) perturbs their
// trajectory but not the refmodel's and surfaces as a Stats divergence.

// PoolStats counts packet-pool and route-arena traffic; exposed for the
// allocation-observability harness and asserted by lifecycle tests.
type PoolStats struct {
	// PacketAllocs counts packets built fresh on the heap (pool empty).
	PacketAllocs int64
	// PacketReuses counts packets served from the free list.
	PacketReuses int64
	// PacketReleases counts packets returned to the free list.
	PacketReleases int64
	// RouteArena is the route-span allocator's traffic.
	RouteArena routing.ArenaStats
}

// poolState is the per-Sim recycling state (embedded in Sim).
type poolState struct {
	disabled bool
	free     []*Packet
	routes   routing.Arena
	stats    PoolStats
}

// PoolingEnabled reports whether this Sim recycles packets and routes.
func (s *Sim) PoolingEnabled() bool { return !s.pool.disabled }

// SetPooling enables or disables packet/route recycling. Pooling is on
// by default; the refmodel differential unit turns it off so that the
// two cores manage packet lifetime independently (see the package
// comment above). Must be called before any packet is created: flipping
// modes mid-run would mix arena-owned and heap routes on live packets.
func (s *Sim) SetPooling(on bool) {
	if s.nextPktID != 0 {
		panic("network: SetPooling after packets were created")
	}
	s.pool.disabled = !on
}

// PoolStats returns a snapshot of the recycling counters.
func (s *Sim) PoolStats() PoolStats {
	st := s.pool.stats
	st.RouteArena = s.pool.routes.Stats()
	return st
}

// PrewarmPool pre-sizes every growable structure the steady-state cycle
// loop touches, so a measurement window opened afterwards sees no heap
// allocation at all:
//
//   - `packets` recycled packets enter the free list, each already
//     holding an arena route span sized for routes up to routeLen hops
//     (cover the scenario's in-flight population ceiling and its longest
//     minimal route);
//   - every NI injection ring is reserved to niDepth entries (first-touch
//     and high-water ring growth otherwise land in the window);
//   - scheduler wheel buckets, the overflow heap and the due-set scratch
//     (per shard when sharded) are reserved to their practical bounds.
//
// The prewarm allocates deterministically, draws no randomness and moves
// no packets, so the simulated trajectory is byte-identical with or
// without it. It inflates PoolStats' alloc/release counters by `packets`.
// No-op when pooling is disabled.
func (s *Sim) PrewarmPool(packets, routeLen, niDepth int) {
	if s.pool.disabled {
		return
	}
	for i := 0; i < packets; i++ {
		p := &Packet{Route: s.pool.routes.Get(routeLen), routeOwned: true}
		s.pool.stats.PacketAllocs++
		s.releasePacket(p)
	}
	for id := range s.NIQueue {
		for v := range s.NIQueue[id] {
			s.NIQueue[id][v].Reserve(niDepth)
		}
	}
	n := len(s.Routers)
	// A wheel bucket or the heap holds live wakes plus a bounded tail of
	// superseded entries — 2× the owned router count is comfortable.
	perRouterPlan := geom.NumPorts*(s.Cfg.SlotsPerPort()+1) + 1
	if s.nshards > 1 {
		w := s.Topo.Width()
		for k := range s.shards {
			sh := &s.shards[k]
			band := 0
			for _, owner := range s.shardOf {
				if int(owner) == k {
					band++
				}
			}
			sh.sched.reserve(2 * band)
			sh.due = reserveInt32(sh.due, band)
			sh.plan.reserve(band, perRouterPlan)
			// Commit-sink bounds: at most one ejection per router per
			// cycle; cross-shard fills cross a band seam, of which a
			// shard touches at most two (2 rows × width links).
			if cap(sh.sink.released) < band {
				sh.sink.released = make([]*Packet, 0, band)
			}
			if cap(sh.sink.xf) < 2*w {
				sh.sink.xf = make([]xfill, 0, 2*w)
			}
		}
	} else {
		s.sched.reserve(2 * n)
		s.dueBuf = reserveInt32(s.dueBuf, n)
	}
}

// reserveInt32 returns s with capacity at least n, preserving contents.
func reserveInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s
	}
	return append(make([]int32, 0, n), s...)
}

// releasePacket returns p to the free list. The caller must have removed
// every live reference the simulator holds (VC slots, NI queues); stale
// references elsewhere are caught by the generation check.
func (s *Sim) releasePacket(p *Packet) {
	if p == nil || s.pool.disabled {
		return
	}
	p.gen++
	s.pool.stats.PacketReleases++
	s.pool.free = append(s.pool.free, p)
}

// SetRoute replaces p's route with a copy of r and rewinds it to hop 0
// (reconfig's in-place reroute). r must not alias p.Route. Under pooling
// the copy goes to the arena, reusing p's current span when it fits;
// without pooling it is a fresh heap slice, mirroring what reroute
// callers allocated historically.
func (s *Sim) SetRoute(p *Packet, r routing.Route) {
	p.Hop = 0
	p.cacheOK = false
	if s.pool.disabled {
		p.Route = append(routing.Route(nil), r...)
		p.routeOwned = false
		return
	}
	if p.routeOwned && cap(p.Route) >= len(r) {
		p.Route = p.Route[:len(r)]
		copy(p.Route, r)
		return
	}
	if p.routeOwned {
		s.pool.routes.Put(p.Route)
	}
	p.Route = s.pool.routes.Copy(r)
	p.routeOwned = true
}
