package network

// Microbenchmarks for the switch-allocation inner loops, sparse vs
// dense, plus the grant and bubble-transfer primitives they share. The
// trick making repeated calls honest: with s.Now frozen, one priming
// sweep performs whatever grants the cycle allows (marking each granted
// output busy via OutFreeAt and each wake deduplicated), after which
// every further sweep over the same state is the pure classify-and-
// reject inner loop — the dominant cost under congestion — with no
// state drift between iterations.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/routing"
	"repro/internal/topology"
)

// saturatedSim drives an 8x8 mesh past its saturation point for enough
// cycles that every router holds blocked traffic, then freezes it.
func saturatedSim(tb testing.TB) *Sim {
	tb.Helper()
	topo := topology.NewMesh(8, 8)
	s := New(topo, Config{}, rand.New(rand.NewSource(17)))
	xy := routing.NewXY(topo)
	rng := rand.New(rand.NewSource(18))
	n := topo.NumNodes()
	for c := 0; c < 600; c++ {
		for i := 0; i < n; i++ {
			if rng.Float64() >= 0.5 {
				continue
			}
			dst := geom.NodeID(rng.Intn(n))
			if dst == geom.NodeID(i) {
				continue
			}
			if r, ok := xy.Route(geom.NodeID(i), dst, nil); ok {
				s.Enqueue(s.NewPacket(geom.NodeID(i), dst, rng.Intn(s.Cfg.NumVnets), 5, r))
			}
		}
		s.Step()
	}
	return s
}

// prime runs one allocation sweep at the frozen cycle so the timed
// iterations see stable post-grant state (granted outputs busy).
func prime(s *Sim) {
	for id := range s.Routers {
		s.AllocateNode(geom.NodeID(id))
	}
}

// BenchmarkGatherAllocateSaturated times the sparse stepper's
// classification inner loop (candidate bucketing plus conservative
// pruning) over every router of a saturated mesh.
func BenchmarkGatherAllocateSaturated(b *testing.B) {
	s := saturatedSim(b)
	prime(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := range s.Routers {
			s.gatherAllocate(geom.NodeID(id), &s.seqGather)
		}
	}
}

// BenchmarkDenseAllocNodeSaturated times the dense stepper's fused
// classify-and-arbitrate pass over the same saturated state — the
// direct sparse-vs-dense inner-loop comparison.
func BenchmarkDenseAllocNodeSaturated(b *testing.B) {
	s := saturatedSim(b)
	if !s.denseAllocFast() {
		b.Skip("fused pass unavailable for this configuration")
	}
	prime(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := range s.Routers {
			s.denseAllocNode(geom.NodeID(id))
		}
	}
}

// BenchmarkTryGrantRejected times the grant primitive's rejection path
// (no free downstream buffer), the case congestion makes dominant.
func BenchmarkTryGrantRejected(b *testing.B) {
	s := saturatedSim(b)
	prime(s)
	slots := s.Cfg.SlotsPerPort()
	total := geom.NumPorts * slots
	// Find a ready candidate whose desired link output is up but whose
	// downstream vnet has no free buffer: tryGrant must reject it, and
	// rejection leaves no trace, so the call repeats indefinitely.
	for id := range s.Routers {
		r := &s.Routers[id]
		for ci := 0; ci < total; ci++ {
			vc, inPort := r.candVC(int32(ci), slots, total)
			p := vc.Pkt
			if p == nil || vc.ReadyAt > s.Now {
				continue
			}
			out := s.OutputOf(p, geom.NodeID(id))
			if out == geom.Invalid || out == geom.Local || !s.Topo.HasLink(geom.NodeID(id), out) {
				continue
			}
			nb := s.Topo.Neighbor(geom.NodeID(id), out)
			in := out.Opposite()
			if s.Routers[nb].Bubble.EligibleFor(in, s.Now) ||
				s.findFreeVCNoFilter(nb, in, p.Vnet) >= 0 {
				continue
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.tryGrant(r, out, vc, p, inPort, ci) {
					b.Fatal("blocked grant unexpectedly succeeded")
				}
			}
			return
		}
	}
	b.Skip("no blocked candidate found at saturation")
}

// BenchmarkTransferBubbleNodeBlocked times the bubble-transfer
// primitive against a saturated router: the occupant wants out of the
// bubble but every same-port VC is full, so the attempt repeats.
func BenchmarkTransferBubbleNodeBlocked(b *testing.B) {
	s := saturatedSim(b)
	// Occupy a bubble on a router whose West port is fully buffered, so
	// the transfer scan always comes back empty-handed.
	var target geom.NodeID = geom.InvalidNode
	for id := range s.Routers {
		r := &s.Routers[id]
		full := true
		for sl := range r.In[geom.West] {
			if r.In[geom.West][sl].Pkt == nil {
				full = false
				break
			}
		}
		if full && r.Bubble.VC.Pkt == nil {
			target = geom.NodeID(id)
			break
		}
	}
	if target == geom.InvalidNode {
		b.Skip("no fully buffered port found at saturation")
	}
	r := &s.Routers[target]
	r.Bubble.Present = true
	p := r.In[geom.West][0].Pkt
	occupant := s.NewPacket(p.Src, p.Dst, p.Vnet, 1, p.Route)
	s.PlaceBubblePacket(target, geom.West, occupant)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TransferBubbleNode(target)
	}
}
