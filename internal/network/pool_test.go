package network

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func newPoolSim(t *testing.T) *Sim {
	t.Helper()
	return New(topology.NewMesh(4, 4), Config{}, rand.New(rand.NewSource(1)))
}

// TestPacketRefGeneration proves the use-after-release check: a ref taken
// before the pool recycles a packet goes stale, and stays stale even when
// the same memory is already hosting a new packet.
func TestPacketRefGeneration(t *testing.T) {
	s := newPoolSim(t)
	p := s.NewPacket(0, 3, 0, 1, routing.Route{1, 1, 1})
	ref := p.Ref()
	if !ref.Valid() {
		t.Fatal("fresh ref invalid")
	}
	if got, ok := ref.Get(); !ok || got != p {
		t.Fatal("fresh ref does not resolve to its packet")
	}
	s.releasePacket(p)
	if ref.Valid() {
		t.Fatal("ref still valid after release")
	}
	if _, ok := ref.Get(); ok {
		t.Fatal("Get returned a released packet")
	}
	// The free list serves the same memory back; the stale ref must not
	// mistake the new tenant for the old packet.
	p2 := s.NewPacket(1, 2, 0, 1, routing.Route{0, 0})
	if p2 != p {
		t.Fatal("expected the pool to recycle the released packet")
	}
	if ref.Valid() {
		t.Fatal("stale ref validated against the recycled packet")
	}
	if !p2.Ref().Valid() {
		t.Fatal("new ref on the recycled packet invalid")
	}
	var zero PacketRef
	if zero.Valid() {
		t.Fatal("zero ref valid")
	}
	if (*Packet)(nil).Ref().Valid() {
		t.Fatal("nil-packet ref valid")
	}
}

// TestPoolLifecycleStats walks packets through create→release→create and
// checks every counter the observability harness exposes.
func TestPoolLifecycleStats(t *testing.T) {
	s := newPoolSim(t)
	r := routing.Route{1, 1}
	const n = 8
	pkts := make([]*Packet, n)
	for i := range pkts {
		pkts[i] = s.NewPacket(0, 3, 0, 1, r)
	}
	for _, p := range pkts {
		s.releasePacket(p)
	}
	for i := range pkts {
		pkts[i] = s.NewPacket(0, 3, 0, 1, r)
	}
	st := s.PoolStats()
	if st.PacketAllocs != n {
		t.Errorf("PacketAllocs = %d, want %d", st.PacketAllocs, n)
	}
	if st.PacketReuses != n {
		t.Errorf("PacketReuses = %d, want %d", st.PacketReuses, n)
	}
	if st.PacketReleases != n {
		t.Errorf("PacketReleases = %d, want %d", st.PacketReleases, n)
	}
	// The second generation reuses each packet's arena span in place, so
	// the arena saw exactly one Get per packet and no Puts.
	if st.RouteArena.Gets != n {
		t.Errorf("RouteArena.Gets = %d, want %d", st.RouteArena.Gets, n)
	}
	if st.RouteArena.Puts != 0 {
		t.Errorf("RouteArena.Puts = %d, want 0", st.RouteArena.Puts)
	}
}

// TestNewPacketCopiesRoute: under pooling the caller keeps its route
// buffer — mutating it after NewPacket must not disturb the packet.
func TestNewPacketCopiesRoute(t *testing.T) {
	s := newPoolSim(t)
	buf := routing.Route{1, 1, 2}
	p := s.NewPacket(0, 3, 0, 1, buf)
	buf[0] = 3
	if p.Route[0] != 1 {
		t.Fatal("packet route aliases the caller's buffer")
	}
}

// TestSetRouteReusesSpan: replacing a live packet's route with one that
// fits must rewrite the existing arena span rather than fetch a new one.
func TestSetRouteReusesSpan(t *testing.T) {
	s := newPoolSim(t)
	p := s.NewPacket(0, 3, 0, 1, routing.Route{1, 1, 2})
	old := &p.Route[0]
	p.Hop = 2
	s.SetRoute(p, routing.Route{2, 2})
	if p.Hop != 0 {
		t.Fatal("SetRoute did not rewind Hop")
	}
	if len(p.Route) != 2 || p.Route[0] != 2 {
		t.Fatalf("SetRoute content wrong: %v", p.Route)
	}
	if &p.Route[0] != old {
		t.Fatal("SetRoute replaced a span the new route fits in")
	}
	gets := s.PoolStats().RouteArena.Gets
	// A longer route must fetch a bigger span and recycle the old one.
	long := make(routing.Route, 16)
	s.SetRoute(p, long)
	st := s.PoolStats().RouteArena
	if st.Gets != gets+1 || st.Puts != 1 {
		t.Fatalf("grow reroute: Gets=%d Puts=%d, want Gets=%d Puts=1", st.Gets, st.Puts, gets+1)
	}
}

// TestSetPoolingContract: disabling must happen before the first packet,
// and a disabled pool really does hand out plain heap objects.
func TestSetPoolingContract(t *testing.T) {
	s := newPoolSim(t)
	s.SetPooling(false)
	if s.PoolingEnabled() {
		t.Fatal("PoolingEnabled after SetPooling(false)")
	}
	r := routing.Route{1, 1}
	p := s.NewPacket(0, 3, 0, 1, r)
	if &p.Route[0] != &r[0] {
		t.Fatal("unpooled NewPacket copied the route (must store as-is)")
	}
	s.releasePacket(p)
	p2 := s.NewPacket(0, 3, 0, 1, r)
	if p2 == p {
		t.Fatal("disabled pool recycled a packet")
	}
	if st := s.PoolStats(); st.PacketReleases != 0 {
		t.Fatalf("disabled pool counted a release: %+v", st)
	}

	s2 := newPoolSim(t)
	s2.NewPacket(0, 3, 0, 1, routing.Route{1})
	defer func() {
		if recover() == nil {
			t.Fatal("SetPooling after packet creation did not panic")
		}
	}()
	s2.SetPooling(false)
}

// TestGatherScratchStable gates the switch-allocator scratch-reuse
// invariant: allocGather's candidate buckets are sized once at init to
// their hard bound (every slot of every input plus the bubble), so no
// grant cycle may ever grow them. A regression that appends past the
// bound would show up here as a capacity change.
func TestGatherScratchStable(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := New(topo, Config{}, rand.New(rand.NewSource(2)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(3))
	alive := topo.AliveRouters()

	var caps [5]int
	for i := range s.seqGather.cand {
		caps[i] = cap(s.seqGather.cand[i])
		if caps[i] == 0 {
			t.Fatal("gather scratch not pre-sized at init")
		}
	}
	for cyc := 0; cyc < 2000; cyc++ {
		for _, src := range alive {
			if rng.Float64() >= 0.3 {
				continue
			}
			dst := alive[rng.Intn(len(alive))]
			if dst == src {
				continue
			}
			if r, ok := min.Route(src, dst, rng); ok {
				s.Enqueue(s.NewPacket(src, dst, rng.Intn(s.Cfg.NumVnets), 1, r))
			}
		}
		s.Step()
	}
	for i := range s.seqGather.cand {
		if cap(s.seqGather.cand[i]) != caps[i] {
			t.Fatalf("gather scratch bucket %d grew: cap %d -> %d",
				i, caps[i], cap(s.seqGather.cand[i]))
		}
	}
}

// TestPrewarmPoolNeutral: PrewarmPool must not change the simulated
// trajectory — identical seeds with and without prewarm land on
// identical Stats — while guaranteeing the free list can serve the
// requested population.
func TestPrewarmPoolNeutral(t *testing.T) {
	run := func(prewarm bool) *Sim {
		topo := topology.NewMesh(4, 4)
		s := New(topo, Config{}, rand.New(rand.NewSource(5)))
		if prewarm {
			s.PrewarmPool(64, 8, 16)
		}
		min := routing.NewMinimal(topo)
		rng := rand.New(rand.NewSource(6))
		alive := topo.AliveRouters()
		for cyc := 0; cyc < 800; cyc++ {
			for _, src := range alive {
				if rng.Float64() >= 0.2 {
					continue
				}
				dst := alive[rng.Intn(len(alive))]
				if dst == src {
					continue
				}
				if r, ok := min.Route(src, dst, rng); ok {
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(s.Cfg.NumVnets), 1, r))
				}
			}
			s.Step()
		}
		return s
	}
	plain, warmed := run(false), run(true)
	if plain.Stats != warmed.Stats {
		t.Fatalf("PrewarmPool changed the trajectory\nplain:  %+v\nwarmed: %+v",
			plain.Stats, warmed.Stats)
	}
	st := warmed.PoolStats()
	if st.PacketAllocs < 64 || st.PacketReleases < 64 {
		t.Fatalf("prewarm did not populate the free list: %+v", st)
	}
}
