package network

import (
	"fmt"
	"testing"
)

func ringPacket(id int) *Packet { return &Packet{ID: int64(id)} }

func TestRingFIFOOrder(t *testing.T) {
	var q NIRing
	for i := 0; i < 100; i++ {
		q.Push(ringPacket(i))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Front(); got.ID != int64(i) {
			t.Fatalf("Front = %d, want %d", got.ID, i)
		}
		if got := q.PopFront(); got.ID != int64(i) {
			t.Fatalf("PopFront = %d, want %d", got.ID, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestRingInterleavedPushPopWraps(t *testing.T) {
	// Push/pop in a pattern that forces head to wrap around the buffer
	// many times without growing it.
	var q NIRing
	next, want := 0, 0
	for i := 0; i < 10; i++ {
		q.Push(ringPacket(next))
		next++
	}
	capBefore := q.Cap()
	for round := 0; round < 200; round++ {
		q.Push(ringPacket(next))
		next++
		if got := q.PopFront(); got.ID != int64(want) {
			t.Fatalf("round %d: PopFront = %d, want %d", round, got.ID, want)
		}
		want++
	}
	if q.Cap() != capBefore {
		t.Fatalf("steady-state interleave grew the buffer: %d -> %d", capBefore, q.Cap())
	}
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i).ID; got != int64(want+i) {
			t.Fatalf("At(%d) = %d, want %d", i, got, want+i)
		}
	}
}

// TestRingReleasesMemory pins the fix for the old `q = q[1:]` NI queue:
// popped slots must be nil'd (no packet kept reachable behind the head)
// and a fully drained ring must release its buffer entirely.
func TestRingReleasesMemory(t *testing.T) {
	var q NIRing
	for i := 0; i < 1000; i++ {
		q.Push(ringPacket(i))
	}
	for i := 0; i < 999; i++ {
		q.PopFront()
	}
	// Every slot except the single live one must be nil.
	live := 0
	for _, p := range q.buf {
		if p != nil {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d non-nil slots retained for 1 live packet", live)
	}
	q.PopFront()
	if q.Cap() != 0 {
		t.Fatalf("drained ring retains %d-slot buffer", q.Cap())
	}
	// And it is reusable afterwards.
	q.Push(ringPacket(7))
	if q.Front().ID != 7 {
		t.Fatal("ring unusable after release")
	}
}

func TestRingFilter(t *testing.T) {
	var q NIRing
	// Pop a few first so the live region is offset (filter must handle
	// wrapped layouts).
	for i := -4; i < 20; i++ {
		q.Push(ringPacket(i))
	}
	for i := 0; i < 4; i++ {
		q.PopFront()
	}
	q.Filter(func(p *Packet) bool { return p.ID%2 == 0 })
	if q.Len() != 10 {
		t.Fatalf("Len after filter = %d, want 10", q.Len())
	}
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i).ID; got != int64(2*i) {
			t.Fatalf("At(%d) = %d, want %d", i, got, 2*i)
		}
	}
	// Dropped and tail slots are nil'd.
	live := 0
	for _, p := range q.buf {
		if p != nil {
			live++
		}
	}
	if live != q.Len() {
		t.Fatalf("%d non-nil slots for %d live packets after Filter", live, q.Len())
	}
	// Filtering everything away keeps the (small) buffer for refill but
	// no packets: every slot must be nil.
	q.Filter(func(*Packet) bool { return false })
	if q.Len() != 0 {
		t.Fatalf("empty filter left len=%d", q.Len())
	}
	if q.Cap() == 0 || q.Cap() > ringRetainCap {
		t.Fatalf("empty filter should retain a small buffer, got cap=%d", q.Cap())
	}
	for i, p := range q.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a packet after filter-all", i)
		}
	}
}

// TestRingDrainRetainsSmallCapacity pins the refill path: a drained
// ring keeps a small buffer (slots nil'd) so the steady-state
// fill/drain cycle of an NI queue never reallocates.
func TestRingDrainRetainsSmallCapacity(t *testing.T) {
	var q NIRing
	for i := 0; i < 32; i++ {
		q.Push(ringPacket(i))
	}
	capBefore := q.Cap()
	for q.Len() > 0 {
		q.PopFront()
	}
	if q.Cap() != capBefore {
		t.Fatalf("drain changed cap %d -> %d (want retained: %d <= ringRetainCap)",
			capBefore, q.Cap(), capBefore)
	}
	// Refill within the retained capacity must not allocate.
	ps := make([]*Packet, 32)
	for i := range ps {
		ps[i] = ringPacket(i)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, p := range ps {
			q.Push(p)
		}
		for q.Len() > 0 {
			q.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("drain/refill cycle allocates %.1f times per run, want 0", allocs)
	}
}

// TestRingReserveSurvivesDrain pins the prewarm contract: a ring
// reserved above ringRetainCap keeps its buffer across a full drain
// (saturation oscillates rings between full and empty, and releasing on
// each drain would re-run the grow chain on every refill), while an
// unreserved ring of the same size still releases.
func TestRingReserveSurvivesDrain(t *testing.T) {
	var q NIRing
	q.Reserve(512)
	for i := 0; i < 400; i++ {
		q.Push(ringPacket(i))
	}
	for q.Len() > 0 {
		q.PopFront()
	}
	if q.Cap() != 512 {
		t.Fatalf("reserved ring released on drain: cap %d, want 512", q.Cap())
	}
	ps := make([]*Packet, 400)
	for i := range ps {
		ps[i] = ringPacket(i)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, p := range ps {
			q.Push(p)
		}
		for q.Len() > 0 {
			q.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("reserved fill/drain cycle allocates %.1f times per run, want 0", allocs)
	}
	var u NIRing
	for i := 0; i < 400; i++ {
		u.Push(ringPacket(i))
	}
	for u.Len() > 0 {
		u.PopFront()
	}
	if u.Cap() != 0 {
		t.Fatalf("unreserved ring retained %d-slot buffer after drain", u.Cap())
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	var q NIRing
	q.Push(ringPacket(0))
	for _, i := range []int{-1, 1, 5} {
		i := i
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) on len-1 ring did not panic", i)
				}
			}()
			q.At(i)
		})
	}
}
