package network

import (
	"math"
	"math/bits"

	"repro/internal/geom"
)

// The event scheduler behind Sim.Step. Routers sleep by default; a
// router is processed in a cycle only if something scheduled a wake for
// it at that cycle:
//
//   - Enqueue wakes the source (non-empty NI queue);
//   - a grant wakes the downstream router at the packet's ReadyAt;
//   - InjectNode re-wakes itself while any vnet queue is non-empty;
//   - AllocateNode re-wakes itself next cycle while any head-ready
//     packet went ungranted (the "pending hammer": hooks, fences,
//     GrantFilters and link state may change arbitrarily between cycles,
//     so a blocked router polls — exactly what the naive core paid for
//     every router), or at the earliest future ReadyAt otherwise;
//   - TransferBubbleNode re-wakes itself while the bubble is occupied.
//
// The invariant maintained is: if the naive full-scan stepper would
// change any state at router R during cycle T, then R has a wake at T.
// Blocked routers therefore cost the same as under the naive core, and
// quiescent routers cost nothing.
//
// Implementation: a power-of-two timing wheel of (cycle, router) entries
// with an overflow min-heap for far-future wakes. wakeAt[id] holds the
// earliest scheduled wake per router; later duplicate pushes are
// suppressed there and stale wheel/heap entries (superseded by an
// earlier wake) are dropped lazily on drain by checking them against
// wakeAt.
type scheduler struct {
	wheel [][]wakeEntry
	mask  int64
	// wakeAt[id] is the earliest pending wake cycle for router id, or
	// wakeNever.
	wakeAt []int64
	// drained is the last cycle whose due set has been collected; wakes
	// for cycles <= drained clamp to drained+1 (a hook firing mid-cycle
	// cannot be processed earlier than the next cycle).
	drained  int64
	overflow wakeHeap
	// dueBits is collectDue's scratch bitmap: due routers are marked here
	// and swept in id order, yielding the naive stepper's ascending
	// iteration without a sort.
	dueBits []uint64
	// detached turns every wake into a no-op: set when the Sim is driven
	// by the refmodel full-scan stepper instead of the event loop.
	detached bool
	// suspended turns every wake into a no-op while the dense stepper is
	// active: a dense cycle visits every active router anyway, so
	// recording wakes would be pure overhead. Unlike detached it is
	// reversible — resumeReset clears the (now stale) wake state and the
	// dense exit path re-establishes the invariant with a WakeAll.
	suspended bool
	// live is the number of routers with a pending wake (wakeAt[id] !=
	// wakeNever). The sharded stepper uses it to decide between the inline
	// sequential path and the parallel phases, and earliestWake uses it to
	// answer O(1) when the wheel is empty.
	live int
}

type wakeEntry struct {
	t  int64
	id int32
}

const wakeNever = math.MaxInt64

// wheelSize must exceed RouterLatency+LinkLatency+1 for the common
// self-wakes to stay on the wheel; anything farther rides the overflow
// heap. 64 covers every configuration the repo uses with headroom.
const wheelSize = 64

func (sc *scheduler) init(numNodes int) {
	sc.wheel = make([][]wakeEntry, wheelSize)
	sc.mask = wheelSize - 1
	sc.wakeAt = make([]int64, numNodes)
	for i := range sc.wakeAt {
		sc.wakeAt[i] = wakeNever
	}
	sc.dueBits = make([]uint64, (numNodes+63)/64)
	sc.drained = -1
}

// reserve pre-grows every wheel bucket and the overflow heap to hold n
// entries each, so wake bursts inside a measured window never grow a
// bucket (Sim.PrewarmPool). Buckets hold at most a few stale entries per
// router on top of the live ones, so callers pass a small multiple of
// the router count.
func (sc *scheduler) reserve(n int) {
	for i := range sc.wheel {
		if cap(sc.wheel[i]) < n {
			nb := make([]wakeEntry, len(sc.wheel[i]), n)
			copy(nb, sc.wheel[i])
			sc.wheel[i] = nb
		}
	}
	if cap(sc.overflow) < n {
		nh := make(wakeHeap, len(sc.overflow), n)
		copy(nh, sc.overflow)
		sc.overflow = nh
	}
}

// wake schedules router id to be processed in cycle t (clamped to the
// next undrained cycle). A wake at or after an already-scheduled one is
// a no-op: when the router runs it reschedules itself as needed.
func (sc *scheduler) wake(id geom.NodeID, t int64) {
	if sc.detached || sc.suspended {
		return
	}
	if t <= sc.drained {
		t = sc.drained + 1
	}
	if sc.wakeAt[id] <= t {
		return
	}
	if sc.wakeAt[id] == wakeNever {
		sc.live++
	}
	sc.wakeAt[id] = t
	e := wakeEntry{t, int32(id)}
	if t-sc.drained <= wheelSize {
		b := t & sc.mask
		sc.wheel[b] = append(sc.wheel[b], e)
	} else {
		sc.overflow.push(e)
	}
}

// collectDue appends to due every router with a wake at cycle now (in
// ascending id order, matching the naive stepper's iteration order) and
// marks the cycle drained. Entries whose wake was superseded are
// discarded; entries for future cycles that alias into a visited bucket
// are kept.
func (sc *scheduler) collectDue(now int64, due []int32) []int32 {
	from := sc.drained + 1
	sc.drained = now
	if from < now-wheelSize+1 {
		from = now - wheelSize + 1 // a Now jump: visit every bucket once
	}
	for c := from; c <= now; c++ {
		b := c & sc.mask
		bucket := sc.wheel[b]
		keep := bucket[:0]
		for _, e := range bucket {
			switch {
			case e.t > now:
				keep = append(keep, e)
			case sc.wakeAt[e.id] == e.t:
				sc.dueBits[e.id>>6] |= 1 << (uint(e.id) & 63)
				sc.wakeAt[e.id] = wakeNever
				sc.live--
			}
		}
		sc.wheel[b] = keep
	}
	for len(sc.overflow) > 0 && sc.overflow[0].t <= now {
		e := sc.overflow.pop()
		if sc.wakeAt[e.id] == e.t {
			sc.dueBits[e.id>>6] |= 1 << (uint(e.id) & 63)
			sc.wakeAt[e.id] = wakeNever
			sc.live--
		}
	}
	for w, word := range sc.dueBits {
		for word != 0 {
			due = append(due, int32(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
		sc.dueBits[w] = 0
	}
	return due
}

// resumeReset clears suspension and discards every pending wake, wheel
// entry and overflow entry, re-anchoring the drain cursor at now-1 so
// wakes for cycle `now` are accepted again. Called when the dense
// stepper hands control back to the event loop: wake state accumulated
// before suspension is stale (wakes issued during the dense period were
// dropped), so the caller must follow with a WakeAll — every router is
// then visited once at `now` and re-establishes its own forward wakes
// from its actual buffer state, restoring the scheduler invariant.
// Bucket and heap capacities are retained, so a prewarmed simulation
// stays allocation-free across mode switches.
func (sc *scheduler) resumeReset(now int64) {
	sc.suspended = false
	for i := range sc.wheel {
		bucket := sc.wheel[i]
		for j := range bucket {
			bucket[j] = wakeEntry{}
		}
		sc.wheel[i] = bucket[:0]
	}
	sc.overflow = sc.overflow[:0]
	for i := range sc.wakeAt {
		sc.wakeAt[i] = wakeNever
	}
	sc.live = 0
	sc.drained = now - 1
}

// earliestWake returns the earliest pending wake cycle across all
// routers, or wakeNever when none is scheduled. O(1) when the scheduler
// is empty; otherwise a contiguous scan of wakeAt (cheap relative to the
// multi-cycle fast-forward it unlocks, and only attempted on cycles with
// an empty due set).
func (sc *scheduler) earliestWake() int64 {
	if sc.live == 0 {
		return wakeNever
	}
	min := int64(wakeNever)
	for _, t := range sc.wakeAt {
		if t < min {
			min = t
		}
	}
	return min
}

// wakeHeap is a plain min-heap on wake time (container/heap's interface
// indirection is not worth it for this hot path).
type wakeHeap []wakeEntry

func (h *wakeHeap) push(e wakeEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].t <= (*h)[i].t {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *wakeHeap) pop() wakeEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old[l].t < old[smallest].t {
			smallest = l
		}
		if r < n && old[r].t < old[smallest].t {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}
