package network

// LinkClass classifies link occupancy for utilization accounting
// (paper Fig. 11 breaks link utilization down by message class).
type LinkClass int

// The message classes that can occupy a link cycle.
const (
	ClassFlit LinkClass = iota
	ClassProbe
	ClassDisable
	ClassEnable
	ClassCheckProbe
	NumLinkClasses
)

func (c LinkClass) String() string {
	switch c {
	case ClassFlit:
		return "flit"
	case ClassProbe:
		return "probe"
	case ClassDisable:
		return "disable"
	case ClassEnable:
		return "enable"
	case ClassCheckProbe:
		return "check_probe"
	}
	return "unknown"
}

// StepperCounters reports how many cycles each execution path of the
// stepper has taken, plus cross-shard traffic and dense/sparse mode
// transitions, for tests and tuning. Counters are execution
// observability, not simulation state: they vary with Shards, mode
// policy and thresholds while Stats does not.
type StepperCounters struct {
	// QuietCycles is the number of cycles skipped by quiet-epoch
	// fast-forward (Step returned without running any phase).
	QuietCycles int64
	// InlineCycles counts sharded cycles run inline on the coordinator
	// (pending-wake count at or below the inline threshold).
	InlineCycles int64
	// ParallelCycles counts sharded cycles run with parallel gather and
	// parallel commit; SeqCommitCycles counts sharded cycles whose commit
	// fell back to the sequential plan-decode path (GrantFilter/OnGrant
	// installed). Sharded dense cycles increment these too (density
	// selects the due sets, not the commit structure).
	ParallelCycles  int64
	SeqCommitCycles int64
	// XFills counts grants that filled a VC in a router owned by another
	// shard — seam crossings. The seam property test asserts these occur
	// only at band-boundary routers.
	XFills int64
	// DenseCycles counts cycles executed by the dense stepper (flat
	// sweeps over the active-router bitmap, scheduler suspended).
	// DenseEnters/DenseExits count sparse→dense and dense→sparse mode
	// transitions; under the hysteretic auto policy a steady workload
	// produces at most one of each (see dense.go).
	DenseCycles int64
	DenseEnters int64
	DenseExits  int64
}

// Stats accumulates simulation counters. Scheme plugins increment the
// recovery counters; the simulator core maintains the rest.
type Stats struct {
	// Offered counts packets enqueued at NIs; Injected those that entered
	// the network; Delivered those that reached their destination NI.
	Offered   int64
	Injected  int64
	Delivered int64
	// DroppedUnreachable counts packets discarded at the source because
	// no route existed (disconnected topology). They are never offered.
	DroppedUnreachable int64
	// Lost counts offered packets destroyed by runtime failures
	// (conservation: Offered = Delivered + InFlight + Queued + Lost).
	Lost int64

	InjectedFlits  int64 // flits that entered the network
	DeliveredFlits int64 // flits that reached their destination NI

	SumLatency    int64 // total (queue+network) latency of delivered packets
	SumNetLatency int64 // in-network latency of delivered packets
	MaxLatency    int64
	HopMoves      int64 // buffer-to-buffer packet movements

	// LinkCycles[class] counts directed-link busy cycles per class.
	LinkCycles [NumLinkClasses]int64

	// Recovery-protocol counters (maintained by internal/core and
	// internal/escape).
	ProbesSent         int64
	DisablesSent       int64
	EnablesSent        int64
	CheckProbesSent    int64
	ProbesReturned     int64
	DeadlockRecoveries int64 // disable returned → bubble switched on
	BubbleOccupancies  int64 // packets that passed through a static bubble
	BubbleTransfers    int64 // bubble→same-port-VC occupant transfers
	EscapeTransfers    int64 // packets moved to escape routing
	SpinRotations      int64 // synchronized cycle rotations (SPIN mode)
}

func (st *Stats) recordDelivery(p *Packet) {
	st.Delivered++
	lat := p.Latency()
	st.SumLatency += lat
	st.SumNetLatency += p.NetLatency()
	if lat > st.MaxLatency {
		st.MaxLatency = lat
	}
}

// merge folds a shard commit sink's delta Stats into st. Every field is
// a sum except MaxLatency, which folds by max — both commutative and
// associative, so folding per-shard deltas in shard order reproduces the
// sequential core's totals exactly (the per-delivery interleaving is
// unobservable: Stats is only read at cycle boundaries).
func (st *Stats) merge(d *Stats) {
	st.Offered += d.Offered
	st.Injected += d.Injected
	st.Delivered += d.Delivered
	st.DroppedUnreachable += d.DroppedUnreachable
	st.Lost += d.Lost
	st.InjectedFlits += d.InjectedFlits
	st.DeliveredFlits += d.DeliveredFlits
	st.SumLatency += d.SumLatency
	st.SumNetLatency += d.SumNetLatency
	if d.MaxLatency > st.MaxLatency {
		st.MaxLatency = d.MaxLatency
	}
	st.HopMoves += d.HopMoves
	for c := range st.LinkCycles {
		st.LinkCycles[c] += d.LinkCycles[c]
	}
	st.ProbesSent += d.ProbesSent
	st.DisablesSent += d.DisablesSent
	st.EnablesSent += d.EnablesSent
	st.CheckProbesSent += d.CheckProbesSent
	st.ProbesReturned += d.ProbesReturned
	st.DeadlockRecoveries += d.DeadlockRecoveries
	st.BubbleOccupancies += d.BubbleOccupancies
	st.BubbleTransfers += d.BubbleTransfers
	st.EscapeTransfers += d.EscapeTransfers
	st.SpinRotations += d.SpinRotations
}

// AvgLatency returns mean total latency of delivered packets, or 0 when
// none were delivered.
func (st *Stats) AvgLatency() float64 {
	if st.Delivered == 0 {
		return 0
	}
	return float64(st.SumLatency) / float64(st.Delivered)
}

// AvgNetLatency returns mean in-network latency of delivered packets.
func (st *Stats) AvgNetLatency() float64 {
	if st.Delivered == 0 {
		return 0
	}
	return float64(st.SumNetLatency) / float64(st.Delivered)
}

// Throughput returns delivered flits per node per cycle over the given
// horizon, the paper's throughput metric.
func (st *Stats) ThroughputFlits(cycles int64, nodes int, avgFlitsPerPacket float64) float64 {
	if cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(st.Delivered) * avgFlitsPerPacket / float64(cycles) / float64(nodes)
}

// ThroughputPackets returns delivered packets per node per cycle.
func (st *Stats) ThroughputPackets(cycles int64, nodes int) float64 {
	if cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(st.Delivered) / float64(cycles) / float64(nodes)
}

// LinkUtilization returns, per class, the fraction of (alive directed
// link × cycle) slots occupied by that class.
func (st *Stats) LinkUtilization(cycles int64, aliveDirectedLinks int) [NumLinkClasses]float64 {
	var out [NumLinkClasses]float64
	denom := float64(cycles) * float64(aliveDirectedLinks)
	if denom == 0 {
		return out
	}
	for c := 0; c < int(NumLinkClasses); c++ {
		out[c] = float64(st.LinkCycles[c]) / denom
	}
	return out
}
