package network_test

// Property tests for packet accounting under randomized Poisson churn.
// These live in the external test package: they drive the simulator
// through internal/reconfig and internal/core, which import network.
//
// Two properties, over quick-generated seeds:
//
//   - Conservation: Offered == Delivered + InFlight + Queued + Lost
//     after every cycle, for abrupt router/link failures overlapping
//     with recoveries, at every shard count — and the full Stats are
//     byte-identical across shard counts 1/2/4/8.
//
//   - No-loss: under *graceful* churn (power-gate drains and
//     revocations only, no abrupt kills), not a single packet may be
//     lost, and after the drain every offered packet is delivered.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

// churnProp drives one seeded Poisson-churn workload and returns the
// final stats. Every decision — mesh size, event times, targets,
// traffic — derives from seed, so the run is reproducible at any shard
// count. graceful selects gate/revoke churn (no packet may die);
// otherwise abrupt fails overlap with scheduled recoveries.
func churnProp(seed int64, shards int, graceful bool) (network.Stats, error) {
	hrng := rand.New(rand.NewSource(seed))
	w := 4 + hrng.Intn(4)
	h := 4 + hrng.Intn(4)
	topo := topology.NewMesh(w, h)
	num := topo.NumNodes()
	s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(hrng.Int63())))
	ctl := core.Attach(s, core.Options{TDD: int64(24 + hrng.Intn(16))})
	mgr := reconfig.New(s)
	mgr.SetScheme(ctl)
	alg := mgr.Algorithm()

	erng := rand.New(rand.NewSource(hrng.Int63()))
	rng := rand.New(rand.NewSource(hrng.Int63()))
	cycles := 1000 + 100*hrng.Intn(5)
	meanFail := 120.0 + 40.0*hrng.Float64()
	meanRepair := 150.0 + 100.0*hrng.Float64()
	rate := 0.02 + 0.04*hrng.Float64()

	conserved := func(tag string) error {
		if got := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost; got != s.Stats.Offered {
			return fmt.Errorf("%s: conservation violated: Delivered+InFlight+Queued+Lost=%d, Offered=%d",
				tag, got, s.Stats.Offered)
		}
		return nil
	}

	nextFail := int64(1 + erng.ExpFloat64()*meanFail)
	window := int64(cycles) * 3 / 4
	for cyc := 0; cyc < cycles; cyc++ {
		now := s.Now
		mgr.Tick()
		if now >= nextFail {
			nextFail = now + 1 + int64(erng.ExpFloat64()*meanFail)
			recoverAt := now + 1 + int64(erng.ExpFloat64()*meanRepair)
			switch {
			case graceful:
				alive := topo.AliveRouters()
				if len(alive) > num*3/4 && mgr.PendingGates() < 3 {
					n := alive[erng.Intn(len(alive))]
					mgr.Submit(reconfig.Event{Kind: reconfig.EvGate, Node: n})
					mgr.SubmitAt(recoverAt, reconfig.Event{Kind: reconfig.EvRecoverRouter, Node: n})
				}
			case erng.Intn(3) == 0:
				alive := topo.AliveRouters()
				if len(alive) > num/2 {
					n := alive[erng.Intn(len(alive))]
					mgr.Submit(reconfig.Event{Kind: reconfig.EvFailRouter, Node: n})
					mgr.SubmitAt(recoverAt, reconfig.Event{Kind: reconfig.EvRecoverRouter, Node: n})
				}
			default:
				links := topo.AliveUndirectedLinks()
				if len(links) > num {
					l := links[erng.Intn(len(links))]
					mgr.Submit(reconfig.Event{Kind: reconfig.EvFailLink, Node: l.From, Dir: l.Dir})
					mgr.SubmitAt(recoverAt, reconfig.Event{Kind: reconfig.EvRecoverLink, Node: l.From, Dir: l.Dir})
				}
			}
		}
		if now < window {
			for n := 0; n < num; n++ {
				src := geom.NodeID(n)
				if rng.Float64() >= rate {
					continue
				}
				if !topo.RouterAlive(src) {
					continue
				}
				dst := geom.NodeID(rng.Intn(num))
				if dst == src || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := alg.Route(src, dst, rng); ok {
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 1+4*rng.Intn(2), r))
				} else {
					s.Drop()
				}
			}
		}
		s.Step()
		if err := conserved(fmt.Sprintf("cycle %d", cyc)); err != nil {
			return s.Stats, err
		}
	}
	// Drain: keep pumping the event queue so scheduled recoveries apply
	// on time (they can unblock a wedged region), then let traffic land.
	for i := 0; i < 20000; i++ {
		mgr.Tick()
		if mgr.PendingEvents() == 0 && s.InFlight()+s.QueuedPackets() == 0 {
			break
		}
		s.Step()
	}
	if err := conserved("post-drain"); err != nil {
		return s.Stats, err
	}
	return s.Stats, nil
}

// TestPropChurnGracefulNoLoss: graceful churn (drain-based power-offs,
// revocations, recoveries) must never lose a packet — every offered
// packet is eventually delivered.
func TestPropChurnGracefulNoLoss(t *testing.T) {
	f := func(seed int64) bool {
		st, err := churnProp(seed, 1, true)
		if err != nil {
			t.Log(err)
			return false
		}
		if st.Lost != 0 {
			t.Logf("seed %d: graceful churn lost %d packets", seed, st.Lost)
			return false
		}
		if st.Delivered != st.Offered {
			t.Logf("seed %d: %d offered packets never delivered", seed, st.Offered-st.Delivered)
			return false
		}
		return st.Delivered > 0
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropChurnConservationSharded: abrupt churn keeps conservation
// after every cycle, and the whole trajectory is byte-identical across
// shard counts 1/2/4/8.
func TestPropChurnConservationSharded(t *testing.T) {
	f := func(seed int64) bool {
		base, err := churnProp(seed, 1, false)
		if err != nil {
			t.Log(err)
			return false
		}
		if base.Delivered == 0 {
			t.Logf("seed %d: nothing delivered", seed)
			return false
		}
		for _, shards := range []int{2, 4, 8} {
			st, err := churnProp(seed, shards, false)
			if err != nil {
				t.Log(err)
				return false
			}
			if st != base {
				t.Logf("seed %d: stats diverged at shards=%d\nshards=1: %+v\nshards=%d: %+v",
					seed, shards, base, shards, st)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
