package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/network"
)

// Options configures the Static Bubble recovery controller.
type Options struct {
	// TDD is the deadlock-detection threshold in cycles (the only
	// configurable parameter of the design; Table II uses 34). Default 34.
	TDD int64
	// MaxTurns is the probe turn capacity; a probe that would exceed it
	// is dropped (Section IV-B computes 59 for 128-bit links on a 64-core
	// mesh). Default 59.
	MaxTurns int
	// Placement overrides the set of static-bubble routers; nil selects
	// the Section III placement algorithm for the attached mesh.
	Placement []geom.NodeID
	// DisableCheckProbe turns off the check_probe fast-path (an ablation:
	// recovery then re-detects residual deadlocks with fresh probes).
	DisableCheckProbe bool
	// Spin selects the follow-up work's recovery action (SPIN, HPCA'18):
	// when the disable returns, instead of switching a spare buffer on
	// and rotating the ring through it, every packet on the latched cycle
	// moves one hop forward *simultaneously* — the cycle's own buffers
	// provide the space, so no static bubble is needed and recovery
	// capacity can never be exhausted by stranded occupants. Detection,
	// probes, disables, and enables are identical to Static Bubble.
	Spin bool
	// Trace, when non-nil, receives protocol events (probe/disable/enable
	// sends, returns and drops, fence changes, FSM transitions) for
	// debugging and instrumentation.
	Trace func(now int64, node geom.NodeID, event string)
	// Perturb, when non-nil, intercepts every control-message
	// transmission (see Perturber): internal/perturb implements per-link
	// loss, delay jitter, reordering, and duplication knobs over it. Nil
	// keeps the transport exact, with zero overhead beyond one nil check.
	Perturb Perturber
}

func (o Options) withDefaults() Options {
	if o.TDD == 0 {
		o.TDD = 34
	}
	if o.MaxTurns == 0 {
		o.MaxTurns = 59
	}
	return o
}

// Controller binds Static Bubble recovery to a network simulator: it owns
// the per-SB-router FSMs and the in-flight control messages, and runs as
// simulator hooks (message transport before allocation, FSM counters
// after).
type Controller struct {
	sim *network.Sim
	opt Options
	// hopLatency is the per-hop cost of a bufferless control message:
	// router processing plus link traversal (2 cycles in the paper's
	// 1+1 configuration). t_DR = hopLatency × path length.
	hopLatency int64
	fsms       map[geom.NodeID]*fsm
	// placed is the full intended placement, including routers that were
	// dead at Attach time: if one recovers at runtime, RouterRecovered
	// arms its bubble and creates its FSM on the spot.
	placed map[geom.NodeID]bool
	// order is the deterministic FSM iteration order; fsmList holds the
	// FSMs in that order so the per-cycle tick and the quiescence horizon
	// iterate a dense slice instead of doing a map lookup per FSM.
	order   []geom.NodeID
	fsmList []*fsm
	msgs    []*Message
	// recoveryDurations records, per completed recovery round, the cycles
	// from the disable's return (bubble on) to the enable's return
	// (fences cleared) and the latched path length in hops.
	recoveryDurations []RecoveryRecord

	// Control messages are pooled like packets (pool.go in network):
	// probe storms during a recovery burst otherwise allocate a Message
	// plus a Turns slice per fork per hop. msgPool holds recycled
	// messages (Turns capacity retained); dueBuf/reqBuf/spinChain/
	// spinPkts are per-cycle scratch reused across Steps.
	msgPool   []*Message
	dueBuf    []*Message
	reqBuf    []outReq
	spinChain []spinLink
	spinPkts  []*network.Packet
}

// newMsg returns a message from the pool (or a fresh one), with all
// fields zero and Turns empty but its capacity retained.
func (c *Controller) newMsg() *Message {
	n := len(c.msgPool)
	if n == 0 {
		return &Message{}
	}
	m := c.msgPool[n-1]
	c.msgPool[n-1] = nil
	c.msgPool = c.msgPool[:n-1]
	return m
}

// freeMsg recycles a message that is no longer referenced: consumed at
// its destination, dropped (arbitration loss, dead link/router, receive
// rules), never forwarded. The caller must not retain m or m.Turns.
func (c *Controller) freeMsg(m *Message) {
	*m = Message{Turns: m.Turns[:0]}
	c.msgPool = append(c.msgPool, m)
}

// consumeTurn removes m's head turn in place. The obvious
// `m.Turns = m.Turns[1:]` advances the slice base past the backing
// array's start, so when freeMsg later recycles the message with
// `m.Turns[:0]` the pooled capacity has shrunk by every turn ever
// consumed — recycled messages erode until probe forks reallocate.
// Copying down keeps the base pointer (and the full pooled capacity)
// intact; the copy is at most MaxTurns tiny elements per consumed hop.
func consumeTurn(m *Message) {
	m.Turns = m.Turns[:copy(m.Turns, m.Turns[1:])]
}

// PrewarmMessages pre-populates the message pool with n messages whose
// Turns slices already hold MaxTurns capacity (the per-message maximum)
// and reserves every controller-side growable — the in-flight list, the
// per-cycle due/request scratch, and the recovery-record log — to the
// same bound. Probe storms then draw every fork from the pool instead
// of growing it (and its backing arrays) toward the storm's high-water
// inside a measured window. Like Sim.PrewarmPool this draws no
// randomness and moves no state, so the simulated trajectory is
// unchanged; benchmark scenarios with a zero-allocation contract call
// it at build time.
func (c *Controller) PrewarmMessages(n int) {
	ms := make([]*Message, n)
	for i := range ms {
		m := c.newMsg()
		if cap(m.Turns) < c.opt.MaxTurns {
			m.Turns = make([]geom.Turn, 0, c.opt.MaxTurns)
		}
		ms[i] = m
	}
	for _, m := range ms {
		c.freeMsg(m)
	}
	if cap(c.msgs) < n {
		c.msgs = append(make([]*Message, 0, n), c.msgs...)
	}
	if cap(c.dueBuf) < n {
		c.dueBuf = append(make([]*Message, 0, n), c.dueBuf...)
	}
	if cap(c.reqBuf) < n {
		c.reqBuf = append(make([]outReq, 0, n), c.reqBuf...)
	}
	if cap(c.recoveryDurations) < n {
		c.recoveryDurations = append(make([]RecoveryRecord, 0, n), c.recoveryDurations...)
	}
	if cap(c.spinChain) < n {
		c.spinChain = append(make([]spinLink, 0, n), c.spinChain...)
	}
	if cap(c.spinPkts) < n {
		c.spinPkts = append(make([]*network.Packet, 0, n), c.spinPkts...)
	}
	// Each FSM's Turn Buffer is filled by copying a returned probe's
	// turns (probeReturned); give it MaxTurns capacity up front so that
	// copy never grows it mid-run.
	for _, f := range c.fsmList {
		if cap(f.turnBuf) < c.opt.MaxTurns {
			f.turnBuf = append(make([]geom.Turn, 0, c.opt.MaxTurns), f.turnBuf...)
		}
	}
}

// RecoveryRecord describes one completed recovery round.
type RecoveryRecord struct {
	Node     geom.NodeID
	PathLen  int64 // hops of the latched dependency cycle
	Duration int64 // cycles from recovery start to enable return
}

// Attach installs Static Bubble on s: marks the placement routers as
// bubble-capable and registers the protocol hooks. The topology's bubble
// routers may themselves be faulty; their FSMs simply never run (the
// coverage corollary still holds: a dead router breaks every chain
// through it).
func Attach(s *network.Sim, opt Options) *Controller {
	opt = opt.withDefaults()
	placement := opt.Placement
	if placement == nil {
		placement = Placement(s.Topo.Width(), s.Topo.Height())
	}
	c := &Controller{
		sim:        s,
		opt:        opt,
		fsms:       make(map[geom.NodeID]*fsm),
		placed:     make(map[geom.NodeID]bool, len(placement)),
		hopLatency: int64(s.Cfg.RouterLatency + s.Cfg.LinkLatency),
	}
	for _, n := range placement {
		c.placed[n] = true
		if !s.Topo.RouterAlive(n) {
			continue
		}
		s.Routers[n].Bubble.Present = true
		c.fsms[n] = newFSM(n)
		c.order = append(c.order, n)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	for _, n := range c.order {
		c.fsmList = append(c.fsmList, c.fsms[n])
	}
	s.PreCycle = append(s.PreCycle, func(sim *network.Sim) { c.transport() })
	s.PostCycle = append(s.PostCycle, func(sim *network.Sim) { c.tickAll() })
	// Both hooks are quiescent between the horizons computed below, so
	// the simulator may fast-forward through cycles in which neither the
	// transport nor any FSM can act (quiet-epoch batching; see
	// Sim.RegisterQuiescence and the horizon method).
	s.RegisterQuiescence(2, func(sim *network.Sim) int64 { return c.horizon() })
	return c
}

// horizon returns the earliest future cycle at which the controller may
// act or observe cycle-varying state, assuming no packet moves before
// it (the simulator guarantees that assumption via its own wake
// horizon). Returning the current cycle vetoes fast-forward.
//
// Per source of activity:
//   - an in-flight control message is delivered exactly at its NextAt;
//   - StateOff parked behind a foreign fence waits for an enable (a
//     message, covered above), and with no non-local occupancy it has
//     nothing to watch: both skip. With occupancy it may enter
//     detection on the very next tick, so it vetoes;
//   - StateSBActive re-evaluates progress predicates (grant counters,
//     bubble occupancy, dependence existence) that can fire on any
//     tick, so it vetoes — a recovery in progress never fast-forwards;
//   - the remaining states (DD, Disable, CheckProbe, Enable) are pure
//     countdowns: between now and the deadline the tick either does
//     nothing or only re-checks packet state that cannot change while
//     the network is frozen. (StateDD's watched packet can only leave
//     via a grant — a wake — or RemovePacket, which voids the quiet
//     window explicitly.)
func (c *Controller) horizon() int64 {
	s := c.sim
	now := s.Now
	h := int64(math.MaxInt64)
	for _, m := range c.msgs {
		if m.NextAt < h {
			h = m.NextAt
		}
	}
	for _, f := range c.fsmList {
		switch f.state {
		case StateOff:
			r := &s.Routers[f.node]
			if r.Fence.Active && r.Fence.SrcID != f.node {
				continue
			}
			if r.OccupiedNonLocal() == 0 {
				continue
			}
			return now
		case StateSBActive:
			return now
		default:
			if f.deadline <= now {
				return now
			}
			if f.deadline < h {
				h = f.deadline
			}
		}
	}
	return h
}

// FSMState reports the recovery state of the FSM at node n (StateOff for
// non-SB routers), for tests and instrumentation.
func (c *Controller) FSMState(n geom.NodeID) State {
	if f, ok := c.fsms[n]; ok {
		return f.state
	}
	return StateOff
}

// InFlightMessages returns the number of control messages currently
// traversing the network.
func (c *Controller) InFlightMessages() int { return len(c.msgs) }

// RecoveryRecords returns one record per completed recovery round
// (disable return through enable return), for instrumentation of
// resolution latency versus deadlocked-path length (Table I).
func (c *Controller) RecoveryRecords() []RecoveryRecord {
	return append([]RecoveryRecord(nil), c.recoveryDurations...)
}

// BubbleRouters returns the attached static-bubble routers in id order.
func (c *Controller) BubbleRouters() []geom.NodeID {
	return append([]geom.NodeID(nil), c.order...)
}

// newFSM builds a fresh FSM for node n with its deterministic jitter
// seed (an LCG stream keyed by the node id).
func newFSM(n geom.NodeID) *fsm {
	return &fsm{node: n, rngState: uint64(n)*2654435761 + 0x9e3779b97f4a7c15}
}

// --- reconfig.SchemeHandler ------------------------------------------------
//
// The controller implements reconfig's SchemeHandler interface (duck
// typed — core must not import reconfig, whose tests import core) so a
// reconfig.Manager can keep the protocol state consistent under runtime
// failures and recoveries. Without these hooks a router dying
// mid-recovery leaves permanent residue: its FSM wedges in S_SB_ACTIVE
// (vetoing quiet-epoch fast-forward forever), and the fences its
// disable installed elsewhere have no enable left to clear them, so the
// fenced in→out turns block traffic until the end of the run.

// RouterFailed records that router n was powered off or died abruptly:
// its FSM resets to S_OFF, its local fence and bubble activation are
// cleared, and every fence its in-progress recovery round installed
// elsewhere is swept (the matching enable can never arrive). Swept
// routers are woken so previously fenced traffic re-arbitrates.
func (c *Controller) RouterFailed(n geom.NodeID) {
	s := c.sim
	r := &s.Routers[n]
	r.Fence = network.Fence{}
	r.Bubble.Active = false
	if f, ok := c.fsms[n]; ok {
		if c.opt.Trace != nil {
			c.trace(n, "router failed in %v: FSM reset", f.state)
		}
		f.reset()
	}
	c.sweepFences(n)
}

// RouterRecovered records that router n came back: any stale residue at
// the revived router is cleared, and if n is a placement router its
// bubble is re-armed and its FSM (re)created — including routers that
// were dead at Attach time and never had one.
func (c *Controller) RouterRecovered(n geom.NodeID) {
	s := c.sim
	r := &s.Routers[n]
	r.Fence = network.Fence{}
	r.Bubble.Active = false
	if !c.placed[n] {
		return
	}
	r.Bubble.Present = true
	if f, ok := c.fsms[n]; ok {
		f.reset()
		return
	}
	f := newFSM(n)
	c.fsms[n] = f
	// Keep the deterministic id-sorted iteration order intact.
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= n })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = n
	c.fsmList = append(c.fsmList, nil)
	copy(c.fsmList[i+1:], c.fsmList[i:])
	c.fsmList[i] = f
}

// LinkChanged records a link failure or recovery. Static Bubble needs
// no link-level action: sends and forwards already drop on a dead link
// and the FSM timeouts clean up the round, while a recovered link is
// simply used by the next transmission.
func (c *Controller) LinkChanged(n geom.NodeID, d geom.Direction, alive bool) {}

// sweepFences clears every fence installed by src's recovery rounds and
// wakes the affected routers. Used when src dies (RouterFailed) and
// when src abandons an enable whose latched path broke mid-round — in
// both cases no enable will ever traverse the path again, and a fence
// that nothing clears is a permanent partial deadlock.
func (c *Controller) sweepFences(src geom.NodeID) {
	s := c.sim
	for id := range s.Routers {
		r := &s.Routers[id]
		if r.Fence.Active && r.Fence.SrcID == src {
			// A parked FSM at id resumes detection on its next tick
			// (StateOff re-scans occupancy once the fence is gone).
			r.Fence = network.Fence{}
			if c.opt.Trace != nil {
				c.trace(geom.NodeID(id), "fence swept (src=%v gone)", src)
			}
			s.Wake(geom.NodeID(id))
		}
	}
}

// dependenceExists reports whether at least one VC of vnet at router
// node's input port `in` holds a packet that wants output port `out` —
// the buffer-dependence check used by disable and check_probe validation.
func (c *Controller) dependenceExists(node geom.NodeID, in geom.Direction, vnet int, out geom.Direction) bool {
	if !in.IsLink() {
		return false
	}
	r := &c.sim.Routers[node]
	base := vnet * c.sim.Cfg.VCsPerVnet
	for i := 0; i < c.sim.Cfg.VCsPerVnet; i++ {
		vc := &r.In[in][base+i]
		if vc.Pkt != nil && c.sim.OutputOf(vc.Pkt, node) == out {
			return true
		}
	}
	// A stale bubble occupant is part of the dependence picture too.
	if b := &r.Bubble; b.Present && b.InPort == in && b.VC.Pkt != nil &&
		c.sim.OutputOf(b.VC.Pkt, node) == out {
		return true
	}
	return false
}

// send originates a control message from a static-bubble router out of
// port `out` with the given remaining turns (copied — the caller keeps
// its buffer). Control messages occupy the link for one cycle with
// priority over flits and arrive at the neighbor after router + link
// latency.
func (c *Controller) send(src geom.NodeID, typ MsgType, vnet int, out geom.Direction, turns []geom.Turn, seq int64) {
	s := c.sim
	if !s.Topo.HasLink(src, out) {
		return // link died; the FSM timeout will clean up
	}
	s.UseLink(src, out, typ.linkClass())
	if c.opt.Trace != nil {
		c.trace(src, "send %v out=%v vnet=%d turns=%d seq=%d", typ, out, vnet, len(turns), seq)
	}
	m := c.newMsg()
	m.Type = typ
	m.Src = src
	m.Vnet = vnet
	m.At = s.Topo.Neighbor(src, out)
	m.Heading = out
	m.Turns = append(m.Turns[:0], turns...)
	m.NextAt = s.Now + c.hopLatency
	m.Seq = seq
	m.OutPort = out
	c.transmit(m, src, out)
}

// forward relays m (already updated with its remaining turns) out of
// router `at` through port `out`, reporting whether the message is still
// in flight (false means the link is dead and the caller must recycle m).
func (c *Controller) forward(m *Message, at geom.NodeID, out geom.Direction) bool {
	s := c.sim
	if !s.Topo.HasLink(at, out) {
		return false
	}
	s.UseLink(at, out, m.Type.linkClass())
	m.At = s.Topo.Neighbor(at, out)
	m.Heading = out
	m.NextAt = s.Now + c.hopLatency
	c.transmit(m, at, out)
	return true
}

// trace emits a protocol event to the Options.Trace hook, if installed.
func (c *Controller) trace(node geom.NodeID, format string, args ...any) {
	if c.opt.Trace != nil {
		c.opt.Trace(c.sim.Now, node, fmt.Sprintf(format, args...))
	}
}

// transport processes every control message due this cycle, router by
// router, applying the output-mux priority (check_probe > disable/enable
// > probe) and higher-node-id tie-breaking of Section IV-C.
func (c *Controller) transport() {
	s := c.sim
	now := s.Now
	due := c.dueBuf[:0]
	keep := c.msgs[:0]
	for _, m := range c.msgs {
		if m.NextAt == now {
			due = append(due, m)
		} else {
			keep = append(keep, m)
		}
	}
	c.msgs = keep
	c.dueBuf = due[:0]
	if len(due) == 0 {
		return
	}
	// Stable insertion sort by destination router: groups each router's
	// messages contiguously in ascending router-id order while keeping
	// their arrival (queue) order within a router — exactly the order the
	// previous map-partition + sorted-router walk produced, with no
	// per-cycle map or sort.Slice allocation. Due sets are tiny (a burst
	// of probe forks), so quadratic worst case is irrelevant.
	for i := 1; i < len(due); i++ {
		m := due[i]
		j := i
		for j > 0 && due[j-1].At > m.At {
			due[j] = due[j-1]
			j--
		}
		due[j] = m
	}
	for lo := 0; lo < len(due); {
		hi := lo + 1
		for hi < len(due) && due[hi].At == due[lo].At {
			hi++
		}
		c.processAt(due[lo].At, due[lo:hi])
		lo = hi
	}
}

// outReq is a forwarding request competing for an output port.
type outReq struct {
	out geom.Direction
	m   *Message
}

// processAt handles all messages arriving at router id this cycle.
//
// Pool accounting: every message in msgs plus every fork created by
// processOne is recycled exactly once here — forwarded winners go back
// on c.msgs and stay live; arbitration losers, dead-link winners, and
// messages consumed by the receive rules (absent from reqs) are freed.
func (c *Controller) processAt(id geom.NodeID, msgs []*Message) {
	s := c.sim
	if !s.Topo.RouterAlive(id) {
		// Router died with messages in flight: they are lost.
		for _, m := range msgs {
			c.freeMsg(m)
		}
		return
	}
	r := &s.Routers[id]
	f := c.fsms[id] // nil unless id is a static-bubble router
	reqs := c.reqBuf[:0]
	for _, m := range msgs {
		reqs = c.processOne(id, r, f, m, reqs)
	}
	// Output arbitration: one winner per port, losers dropped.
	var winners [geom.NumPorts]*Message
	for _, rq := range reqs {
		cur := winners[rq.out]
		if cur == nil || c.beats(rq.m, cur, r) {
			winners[rq.out] = rq.m
		}
	}
	if c.opt.Trace != nil {
		for _, rq := range reqs {
			if winners[rq.out] != rq.m {
				c.trace(id, "%v(src=%v turns=%d) lost arbitration at out=%v to %v(src=%v)",
					rq.m.Type, rq.m.Src, len(rq.m.Turns), rq.out, winners[rq.out].Type, winners[rq.out].Src)
			}
		}
	}
	for _, out := range geom.LinkDirs {
		if m := winners[out]; m != nil {
			if !c.forward(m, id, out) {
				c.freeMsg(m) // link died under the winner
			}
		}
	}
	for _, rq := range reqs {
		if winners[rq.out] != rq.m {
			c.freeMsg(rq.m) // arbitration loser
		}
	}
	// Messages consumed by the receive rules never made it into reqs;
	// recycle them (pointer scan — both slices are a handful of entries).
msgLoop:
	for _, m := range msgs {
		for _, rq := range reqs {
			if rq.m == m {
				continue msgLoop
			}
		}
		c.freeMsg(m)
	}
	c.reqBuf = reqs[:0]
}

// beats reports whether message a wins output arbitration against b at a
// router with fence state r.Fence.
func (c *Controller) beats(a, b *Message, r *network.Router) bool {
	pa, pb := a.Type.priority(), b.Type.priority()
	if pa != pb {
		return pa > pb
	}
	if a.Type != b.Type {
		// disable vs enable at the same priority: if the is_deadlock bit
		// is set the enable wins, else the disable (Section IV-C).
		if r.Fence.Active {
			return a.Type == MsgEnable
		}
		return a.Type == MsgDisable
	}
	return a.Src > b.Src
}

// processOne applies the per-type receive rules, appending any forwarding
// request for m (or probe forks) to reqs and returning it. A message
// absent from the returned reqs was consumed or dropped; processAt
// recycles it. Trace calls with arguments are gated on the hook being
// installed: the variadic boxing otherwise heap-allocates per event even
// when tracing is off, which would show up in the zero-alloc gates.
func (c *Controller) processOne(id geom.NodeID, r *network.Router, f *fsm, m *Message, reqs []outReq) []outReq {
	s := c.sim
	switch m.Type {
	case MsgProbe:
		if id == m.Src {
			// Back at the originator: a return in S_DD latches the path;
			// any other state means recovery is already underway and the
			// copy is dropped (Section IV-B).
			if f != nil && f.state == StateDD {
				c.probeReturned(f, m)
			} else if c.opt.Trace != nil {
				c.trace(id, "probe copy dropped at originator (state %v)", c.FSMState(id))
			}
			return reqs
		}
		if f != nil && m.Src < id && !f.state.inRecovery() && r.Bubble.VC.Pkt == nil {
			// A static-bubble router drops probes from lower-id SB
			// routers; its own probe will resolve the shared cycle. It
			// abstains — forwards them — when it cannot act itself (bubble
			// still holding a stale occupant, or committed to another
			// chain); otherwise a few wedged high-id routers would starve
			// every cycle they sit on.
			if c.opt.Trace != nil {
				c.trace(id, "probe(src=%v) dropped: lower-id SB", m.Src)
			}
			return reqs
		}
		return c.forkProbe(id, r, m, reqs)

	case MsgDisable:
		if len(m.Turns) == 0 {
			if f != nil && id == m.Src && f.state == StateDisable && m.Seq == f.seq {
				c.disableReturned(f, m)
			} else if c.opt.Trace != nil {
				c.trace(id, "disable(src=%v) dropped at end (state %v)", m.Src, c.FSMState(id))
			}
			return reqs
		}
		if f != nil && f.state.inRecovery() {
			if c.opt.Trace != nil {
				c.trace(id, "foreign disable(src=%v) dropped: in recovery", m.Src)
			}
			return reqs // SB router committed to its own recovery
		}
		turn := m.Turns[0]
		out := turn.Apply(m.Heading)
		if !out.IsLink() || !c.dependenceExists(id, m.inPort(), m.Vnet, out) {
			if c.opt.Trace != nil {
				c.trace(id, "disable(src=%v) dropped: dependence gone (in=%v out=%v)", m.Src, m.inPort(), out)
			}
			return reqs // dependence vanished: drop; sender times out
		}
		if r.Fence.Active {
			if c.opt.Trace != nil {
				c.trace(id, "disable(src=%v) dropped: fence already active (src=%v)", m.Src, r.Fence.SrcID)
			}
			return reqs // already part of another fenced chain
		}
		r.Fence = network.Fence{Active: true, In: m.inPort(), Out: out, SrcID: m.Src}
		if c.opt.Trace != nil {
			c.trace(id, "fence set in=%v out=%v src=%v", m.inPort(), out, m.Src)
		}
		if f != nil {
			// An SB router accepting a foreign (higher-id) disable parks
			// its own detection until the enable arrives (Section IV-B).
			f.state = StateOff
		}
		consumeTurn(m)
		return append(reqs, outReq{out, m})

	case MsgEnable:
		if len(m.Turns) == 0 {
			if f != nil && id == m.Src && f.state == StateEnable && m.Seq == f.seq {
				c.enableReturned(f)
			} else if c.opt.Trace != nil {
				c.trace(id, "enable(src=%v) consumed at end (state %v)", m.Src, c.FSMState(id))
			}
			return reqs
		}
		// Enables are always forwarded, even through a static-bubble
		// router busy with its own recovery. (The paper drops them there;
		// we found that wedges crossing chains — the dropped chain's
		// fences can block the very recovery the dropping router is
		// waiting on. Forwarding is safe: an enable only clears fences
		// whose source-id matches.)
		turn := m.Turns[0]
		out := turn.Apply(m.Heading)
		if !out.IsLink() {
			return reqs
		}
		if r.Fence.Active && r.Fence.SrcID == m.Src {
			r.Fence = network.Fence{}
			if c.opt.Trace != nil {
				c.trace(id, "fence cleared by enable(src=%v)", m.Src)
			}
			if f != nil && f.state == StateOff {
				// Resume detection now that the foreign chain cleared.
				if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, vcPtr{port: geom.Local}); ok {
					f.state = StateDD
					f.ptr, f.ptrPkt = ptr, pid
					f.deadline = s.Now + c.opt.TDD
				}
			}
		}
		// A mismatched enable is forwarded untouched, not dropped
		// (Section IV-B).
		consumeTurn(m)
		return append(reqs, outReq{out, m})

	case MsgCheckProbe:
		if len(m.Turns) == 0 {
			if f != nil && id == m.Src && f.state == StateCheckProbe && m.Seq == f.seq {
				c.checkProbeReturned(f)
			}
			return reqs
		}
		// Forwarded only while this router is still part of the fenced
		// chain and the dependence persists (Section IV-A3).
		if !(r.Fence.Active && r.Fence.SrcID == m.Src && r.Fence.In == m.inPort()) {
			return reqs
		}
		if !c.dependenceExists(id, r.Fence.In, m.Vnet, r.Fence.Out) {
			return reqs
		}
		out := m.Turns[0].Apply(m.Heading)
		if out != r.Fence.Out {
			return reqs
		}
		consumeTurn(m)
		return append(reqs, outReq{out, m})
	}
	return reqs
}

// forkProbe implements the Probe Fork Unit: if every VC of the probe's
// vnet at its input port is occupied, the probe forks out of every
// (non-ejection) output port those packets are waiting on, appending the
// corresponding turn; otherwise the chain is broken here and the probe is
// dropped.
func (c *Controller) forkProbe(id geom.NodeID, r *network.Router, m *Message, reqs []outReq) []outReq {
	s := c.sim
	in := m.inPort()
	base := m.Vnet * s.Cfg.VCsPerVnet
	var wanted [geom.NumPorts]bool
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		vc := &r.In[in][base+i]
		if vc.Pkt == nil {
			if c.opt.Trace != nil {
				c.trace(id, "probe(src=%v in=%v vnet=%d turns=%d) dropped: free VC", m.Src, in, m.Vnet, len(m.Turns))
			}
			return reqs // a free VC means no deadlock through this port
		}
		out := s.OutputOf(vc.Pkt, id)
		if out.IsLink() {
			wanted[out] = true
		}
	}
	// A bubble occupant on this port extends the chain too.
	if b := &r.Bubble; b.Present && b.InPort == in && b.VC.Pkt != nil {
		if out := s.OutputOf(b.VC.Pkt, id); out.IsLink() {
			wanted[out] = true
		}
	}
	for _, out := range geom.LinkDirs {
		if !wanted[out] {
			continue
		}
		turn, ok := geom.TurnBetween(m.Heading, out)
		if !ok {
			continue // U-turns cannot occur in a dependence chain
		}
		if len(m.Turns) >= c.opt.MaxTurns {
			continue // turn capacity exhausted: drop (Section IV-B)
		}
		fork := c.newMsg()
		fork.Type = MsgProbe
		fork.Src = m.Src
		fork.Vnet = m.Vnet
		fork.Turns = append(append(fork.Turns[:0], m.Turns...), turn)
		fork.Heading = m.Heading
		fork.Seq = m.Seq
		fork.OutPort = m.OutPort
		reqs = append(reqs, outReq{out, fork})
	}
	return reqs
}

// --- FSM events -----------------------------------------------------------

func (c *Controller) probeReturned(f *fsm, m *Message) {
	s := c.sim
	s.Stats.ProbesReturned++
	if c.opt.Trace != nil {
		c.trace(f.node, "probe returned: path len %d, sending disable", len(m.Turns)+1)
	}
	f.seq++ // new recovery round
	f.turnBuf = append(f.turnBuf[:0], m.Turns...)
	f.tDR = c.hopLatency * f.pathLen()
	f.probeIn = m.inPort()
	f.probeOut = m.OutPort
	f.vnet = m.Vnet
	c.send(f.node, MsgDisable, f.vnet, f.probeOut, f.turnBuf, f.seq)
	s.Stats.DisablesSent++
	f.state = StateDisable
	f.deadline = s.Now + f.tDR
}

func (c *Controller) disableReturned(f *fsm, m *Message) {
	s := c.sim
	r := &s.Routers[f.node]
	// The sender validates its own dependence too; if the chain moved on,
	// the disable is ignored and the S_DISABLE timeout sends the enable.
	// Likewise if a foreign chain fenced this router in the meantime: we
	// must not overwrite that fence.
	if !c.dependenceExists(f.node, f.probeIn, f.vnet, f.probeOut) {
		return
	}
	if r.Fence.Active && r.Fence.SrcID != f.node {
		return
	}
	if c.opt.Spin {
		// SPIN-style recovery: rotate the whole latched cycle one hop in
		// place. The fences stay up and a check_probe retraces the path;
		// if it returns, the same chain persists and is rotated again —
		// the same fences-held loop bubble-mode uses, which is what stops
		// fresh injections from refilling the ring between steps. When
		// the check_probe dies, the enable tears down and detection
		// resumes.
		if !c.spinCycle(f) {
			return // chain moved on; the S_DISABLE timeout cleans up
		}
		s.Stats.DeadlockRecoveries++
		r.Fence = network.Fence{Active: true, In: f.probeIn, Out: f.probeOut, SrcID: f.node}
		f.recoveryStart = s.Now
		c.send(f.node, MsgCheckProbe, f.vnet, f.probeOut, f.turnBuf, f.seq)
		s.Stats.CheckProbesSent++
		f.state = StateCheckProbe
		f.deadline = s.Now + f.tDR
		return
	}
	r.Fence = network.Fence{Active: true, In: f.probeIn, Out: f.probeOut, SrcID: f.node}
	r.Bubble.Active = true
	r.Bubble.InPort = f.probeIn
	f.state = StateSBActive
	f.bubbleWasOccupied = false
	f.recoveryStart = s.Now
	f.lastGrants = r.Grants()
	f.deadline = s.Now + c.sbActiveGuard(f)
	s.Stats.DeadlockRecoveries++
	if c.opt.Trace != nil {
		c.trace(f.node, "recovery started: bubble on, fence in=%v out=%v occupant=%v upstream=%v", f.probeIn, f.probeOut, r.Bubble.VC.Pkt, s.Topo.Neighbor(f.node, f.probeIn))
	}
}

// sbActiveGuard is the liveness bound on S_SB_ACTIVE: the paper's FSM
// keeps the counter off in this state, relying on the fenced chain to
// occupy and vacate the bubble. When chains cross, another chain's fence
// can stall this one indefinitely; after the guard expires with an empty
// bubble we tear down and retry detection from scratch.
func (c *Controller) sbActiveGuard(f *fsm) int64 {
	g := 8 * f.tDR
	if g < 4*c.opt.TDD {
		g = 4 * c.opt.TDD
	}
	return g
}

func (c *Controller) checkProbeReturned(f *fsm) {
	s := c.sim
	r := &s.Routers[f.node]
	if c.opt.Spin {
		// The chain persists: rotate it again and keep checking.
		if c.spinCycle(f) {
			c.send(f.node, MsgCheckProbe, f.vnet, f.probeOut, f.turnBuf, f.seq)
			s.Stats.CheckProbesSent++
			f.deadline = s.Now + f.tDR
			return
		}
		c.sendEnable(f)
		return
	}
	r.Bubble.Active = true
	f.state = StateSBActive
	f.bubbleWasOccupied = false
	f.deadline = s.Now + c.sbActiveGuard(f)
}

func (c *Controller) enableReturned(f *fsm) {
	s := c.sim
	c.trace(f.node, "enable returned: recovery complete")
	if f.recoveryStart > 0 {
		c.recoveryDurations = append(c.recoveryDurations, RecoveryRecord{
			Node: f.node, PathLen: f.pathLen(), Duration: s.Now - f.recoveryStart,
		})
		f.recoveryStart = 0
	}
	r := &s.Routers[f.node]
	if r.Fence.Active && r.Fence.SrcID == f.node {
		r.Fence = network.Fence{}
	}
	f.turnBuf = f.turnBuf[:0] // keep the capacity for the next round
	if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, f.ptr); ok {
		f.state = StateDD
		f.ptr, f.ptrPkt = ptr, pid
		f.deadline = s.Now + c.opt.TDD
	} else {
		f.state = StateOff
	}
}

// spinLink is one router's slot on a latched dependency cycle, as
// reconstructed by buildSpinChain. Hoisted to package scope so the chain
// can live in the Controller's reusable scratch slice.
type spinLink struct {
	vc   *network.VC
	node geom.NodeID
	in   geom.Direction
}

// buildSpinChain reconstructs the latched cycle's walk into c.spinChain's
// backing: it starts at the originator going out f.probeOut and enters
// each subsequent router per the turn buffer, closing back at the
// originator via f.probeIn. At every router it selects one packet on the
// chain (at the path's input port, wanting the path's output). ok=false
// means the chain dissolved since the disable validated it.
func (c *Controller) buildSpinChain(f *fsm) (chain []spinLink, ok bool) {
	s := c.sim
	chain = c.spinChain[:0]
	node := f.node
	heading := f.probeOut
	pick := func(n geom.NodeID, in, out geom.Direction) *network.VC {
		r := &s.Routers[n]
		base := f.vnet * s.Cfg.VCsPerVnet
		for i := 0; i < s.Cfg.VCsPerVnet; i++ {
			vc := &r.In[in][base+i]
			if vc.Pkt != nil && vc.HeadReady(s.Now) && s.OutputOf(vc.Pkt, n) == out {
				return vc
			}
		}
		return nil
	}
	// The originator's chain packet sits at f.probeIn wanting f.probeOut.
	vc := pick(f.node, f.probeIn, f.probeOut)
	if vc == nil {
		return chain, false
	}
	chain = append(chain, spinLink{vc, f.node, f.probeIn})
	for _, turn := range f.turnBuf {
		next := s.Topo.Neighbor(node, heading)
		if next == geom.InvalidNode {
			return chain, false
		}
		in := heading.Opposite()
		out := turn.Apply(heading)
		vc := pick(next, in, out)
		if vc == nil {
			return chain, false
		}
		chain = append(chain, spinLink{vc, next, in})
		node, heading = next, out
	}
	// The walk must close: the final hop re-enters the originator.
	if s.Topo.Neighbor(node, heading) != f.node || heading.Opposite() != f.probeIn {
		return chain, false
	}
	return chain, true
}

// spinCycle performs one synchronized rotation of the latched dependency
// cycle: each selected packet moves into the slot its successor vacates.
// All packets advance one hop in one step; the cycle provides its own
// buffering. Returns false (no movement) if the chain dissolved since
// the disable validated it.
func (c *Controller) spinCycle(f *fsm) bool {
	s := c.sim
	chain, ok := c.buildSpinChain(f)
	c.spinChain = chain[:0] // keep the (possibly grown) backing
	if !ok {
		return false
	}
	// Rotate: packet i moves into the slot packet i+1 vacates (its next
	// hop on its own route). All moves are simultaneous, so snapshot the
	// occupants first.
	n := len(chain)
	pkts := c.spinPkts[:0]
	for _, l := range chain {
		pkts = append(pkts, l.vc.Pkt)
	}
	c.spinPkts = pkts[:0]
	for i := range chain {
		dst := chain[(i+1)%n]
		p := pkts[i]
		dst.vc.Pkt = p
		dst.vc.ReadyAt = s.Now + c.hopLatency
		p.Hop++
		s.Stats.HopMoves++
		s.Stats.LinkCycles[network.ClassFlit] += int64(p.Len)
	}
	// Occupancy counts are unchanged at every router (one out, one in,
	// both on link-side ports); only progress bookkeeping updates.
	s.LastProgress = s.Now
	s.Stats.SpinRotations++
	return true
}

// sendEnable transitions f into S_ENABLE and emits the enable along the
// latched path.
func (c *Controller) sendEnable(f *fsm) {
	s := c.sim
	c.send(f.node, MsgEnable, f.vnet, f.probeOut, f.turnBuf, f.seq)
	s.Stats.EnablesSent++
	f.state = StateEnable
	f.enableRetries = 0
	f.deadline = s.Now + f.tDR
}

// --- FSM counter ticks ------------------------------------------------------

func (c *Controller) tickAll() {
	for _, f := range c.fsmList {
		c.tickFSM(f)
	}
}

func (c *Controller) tickFSM(f *fsm) {
	s := c.sim
	r := &s.Routers[f.node]
	now := s.Now
	switch f.state {
	case StateOff:
		if r.Fence.Active && r.Fence.SrcID != f.node {
			// Parked by a foreign disable; the matching enable re-arms us.
			return
		}
		if r.OccupiedNonLocal() == 0 {
			return // nothing to watch; skip the VC scan (hot path)
		}
		if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, vcPtr{port: geom.Local}); ok {
			f.state = StateDD
			f.ptr, f.ptrPkt = ptr, pid
			f.deadline = now + c.opt.TDD
		}

	case StateDD:
		vc := watchedVC(r, f.ptr)
		if vc.Pkt == nil || vc.Pkt.ID != f.ptrPkt {
			// The watched flit left: advance round-robin, restart counter;
			// S_OFF if the router drained.
			if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, f.ptr); ok {
				f.ptr, f.ptrPkt = ptr, pid
				f.deadline = now + c.opt.TDD
			} else {
				f.state = StateOff
			}
			return
		}
		if now < f.deadline {
			return
		}
		out := s.OutputOf(vc.Pkt, f.node)
		if !out.IsLink() {
			// Waiting on ejection: never part of a dependence cycle. Move
			// the pointer along.
			if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, f.ptr); ok {
				f.ptr, f.ptrPkt = ptr, pid
			}
			f.deadline = now + c.opt.TDD
			return
		}
		if c.opt.Trace != nil {
			c.trace(f.node, "tDD expired: probing out=%v for pkt %d", out, vc.Pkt.ID)
		}
		c.send(f.node, MsgProbe, vc.Pkt.Vnet, out, nil, f.seq)
		s.Stats.ProbesSent++
		f.probeOut = out
		f.vnet = vc.Pkt.Vnet
		f.deadline = now + c.opt.TDD + f.jitter()
		// Rotate the watch pointer so a router wedged in several
		// directions probes each of them across successive rounds (the
		// paper's FSM keeps watching the same VC, which starves cycles
		// exiting other ports when the watched chain is a dead end).
		if ptr, pid, ok := nextOccupiedVC(r, s.Cfg, f.ptr); ok {
			f.ptr, f.ptrPkt = ptr, pid
		}

	case StateDisable:
		if now >= f.deadline {
			// The disable was dropped somewhere; clear the partial fences.
			c.trace(f.node, "S_DISABLE timeout")
			c.sendEnable(f)
		}

	case StateSBActive:
		b := &r.Bubble
		if g := r.Grants(); g != f.lastGrants {
			// Local progress: the fenced chain is rotating (possibly
			// slowly — a long ring of 5-flit packets advances one step per
			// ~path×len cycles). Renew the no-progress guard.
			f.lastGrants = g
			f.deadline = now + c.sbActiveGuard(f)
		}
		if b.VC.Pkt != nil {
			if !f.bubbleWasOccupied || b.VC.Pkt.ID != f.bubblePktID {
				// A fresh occupant means the chain advanced: renew the
				// guard.
				f.bubbleWasOccupied = true
				f.bubblePktID = b.VC.Pkt.ID
				f.deadline = now + c.sbActiveGuard(f)
			}
			if now >= f.deadline {
				// The occupant is itself wedged on a different dependency
				// chain; holding our fences any longer starves the rest of
				// the network. Release them and resume detection — the
				// resident packet drains whenever its own chain resolves.
				c.trace(f.node, "S_SB_ACTIVE guard expired with occupied bubble; tearing down")
				b.Active = false
				c.sendEnable(f)
			}
			return
		}
		reclaimed := f.bubbleWasOccupied
		if !reclaimed && !c.dependenceExists(f.node, f.probeIn, f.vnet, f.probeOut) {
			// Liveness guard beyond the paper's FSM: the disable's
			// validation round can pass on a congested (not deadlocked)
			// chain that then drains into regular VCs without ever using
			// the bubble. Treat the vanished dependence as a reclaim so
			// the fences are torn down.
			reclaimed = true
		}
		if !reclaimed && now >= f.deadline {
			// Guard expiry: a crossing chain's fence is starving this one.
			// Tear down and retry detection later.
			c.trace(f.node, "S_SB_ACTIVE guard expired; tearing down")
			reclaimed = true
		}
		if !reclaimed {
			return
		}
		b.Active = false
		f.bubbleWasOccupied = false
		if c.opt.DisableCheckProbe {
			c.sendEnable(f)
			return
		}
		c.send(f.node, MsgCheckProbe, f.vnet, f.probeOut, f.turnBuf, f.seq)
		s.Stats.CheckProbesSent++
		f.state = StateCheckProbe
		f.deadline = now + f.tDR

	case StateCheckProbe:
		if now >= f.deadline {
			// No return: the chain is gone; clean up.
			c.trace(f.node, "S_CHECK_PROBE timeout")
			c.sendEnable(f)
		}

	case StateEnable:
		if now >= f.deadline {
			f.enableRetries++
			if f.enableRetries > 32 {
				// The latched path itself died (runtime link/router
				// failure mid-recovery): the enable can never complete
				// its loop. Fences up to the break were cleared by
				// earlier transmissions; sweep the ones beyond it (no
				// enable will ever reach them), then release our own
				// state and resume detection.
				c.trace(f.node, "enable retry limit: abandoning round")
				c.sweepFences(f.node)
				c.enableReturned(f)
				return
			}
			// The enable was dropped or lost arbitration: retransmit.
			c.send(f.node, MsgEnable, f.vnet, f.probeOut, f.turnBuf, f.seq)
			s.Stats.EnablesSent++
			f.deadline = now + f.tDR + f.jitter()
		}
	}
}
