package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/topology"
)

func TestPlacementCount8x8Is21(t *testing.T) {
	if got := PlacementCount(8, 8); got != 21 {
		t.Fatalf("8x8 bubble count = %d, want 21 (paper Section III)", got)
	}
	if got := len(Placement(8, 8)); got != 21 {
		t.Fatalf("Placement(8,8) has %d nodes, want 21", got)
	}
}

func TestPlacementCount16x16Is89(t *testing.T) {
	if got := PlacementCount(16, 16); got != 89 {
		t.Fatalf("16x16 bubble count = %d, want 89 (paper Table I)", got)
	}
}

// The larger meshes the scaling experiments run at (sbsweep -fig
// scalegrid, the 32x32 bench scenario): beyond the paper's table, so
// the expected counts come from the closed form — pinned here so a
// placement change shows up as a placement diff, not as a mysterious
// Stats divergence in the 32x32/64x64 differential and scaling tiers.
func TestPlacementCountScalingMeshes(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{32, 369}, {64, 1505}} {
		if got := PlacementCount(tc.n, tc.n); got != tc.want {
			t.Fatalf("%dx%d bubble count = %d, want %d", tc.n, tc.n, got, tc.want)
		}
		if got := len(Placement(tc.n, tc.n)); got != tc.want {
			t.Fatalf("Placement(%d,%d) has %d nodes, want %d", tc.n, tc.n, got, tc.want)
		}
	}
}

func TestNoBubblesOnFirstRowOrColumn(t *testing.T) {
	for i := 0; i < 32; i++ {
		if HasStaticBubble(geom.Coord{X: 0, Y: i}) {
			t.Fatalf("bubble on first column at y=%d", i)
		}
		if HasStaticBubble(geom.Coord{X: i, Y: 0}) {
			t.Fatalf("bubble on first row at x=%d", i)
		}
	}
}

func TestPlacementConditions(t *testing.T) {
	// Spot-check the three conditions from Section III.
	wants := []struct {
		c    geom.Coord
		want bool
	}{
		{geom.Coord{X: 1, Y: 1}, true},  // cond 1
		{geom.Coord{X: 5, Y: 1}, true},  // cond 1 (1 ≡ 5 mod 4)
		{geom.Coord{X: 1, Y: 3}, true},  // cond 2
		{geom.Coord{X: 5, Y: 7}, true},  // cond 2
		{geom.Coord{X: 3, Y: 1}, true},  // cond 3
		{geom.Coord{X: 7, Y: 5}, true},  // cond 3
		{geom.Coord{X: 4, Y: 4}, true},  // cond 1 (0 ≡ 0)
		{geom.Coord{X: 2, Y: 1}, false}, //
		{geom.Coord{X: 2, Y: 4}, false}, // (4k+2, 4l)
		{geom.Coord{X: 1, Y: 4}, false}, // (4k+1, 4l)
		{geom.Coord{X: 3, Y: 4}, false}, // (4k+3, 4l)
		{geom.Coord{X: 2, Y: 3}, false}, // (4k+2, 4l-1)
		{geom.Coord{X: 2, Y: 5}, false}, // (4k+2, 4l+1)
		{geom.Coord{X: 0, Y: 0}, false}, // first row/col
	}
	for _, w := range wants {
		if got := HasStaticBubble(w.c); got != w.want {
			t.Errorf("HasStaticBubble(%v) = %v, want %v", w.c, got, w.want)
		}
	}
}

func TestClosedFormMatchesEnumeration(t *testing.T) {
	for w := 1; w <= 20; w++ {
		for h := 1; h <= 20; h++ {
			if e, c := PlacementCount(w, h), PlacementCountClosedForm(w, h); e != c {
				t.Fatalf("%dx%d: enumeration %d != closed form %d", w, h, e, c)
			}
		}
	}
}

func TestClosedFormMatchesEnumerationProperty(t *testing.T) {
	f := func(w, h uint8) bool {
		width, height := int(w%64)+1, int(h%64)+1
		return PlacementCount(width, height) == PlacementCountClosedForm(width, height)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacementScalesLinearlyInMinDimension(t *testing.T) {
	// The paper notes the count scales with min(m, n): a 4×N strip should
	// grow linearly and stay far below N²/2.
	prev := 0
	for n := 8; n <= 64; n *= 2 {
		c := PlacementCount(4, n)
		if c <= prev {
			t.Fatalf("count not growing: %d then %d", prev, c)
		}
		if c > 2*n {
			t.Fatalf("4x%d count %d super-linear", n, c)
		}
		prev = c
	}
}

func TestCoverageLemmaOnHealthyMeshes(t *testing.T) {
	for _, size := range []struct{ w, h int }{
		{2, 2}, {3, 3}, {4, 4}, {5, 5}, {8, 8}, {9, 9}, {12, 12}, {13, 13},
		{2, 9}, {9, 2}, {3, 12}, {16, 5},
	} {
		topo := topology.NewMesh(size.w, size.h)
		if !VerifyCoverage(topo) {
			cyc := CoverageCounterexample(topo)
			t.Fatalf("%dx%d mesh: cycle avoids all bubbles: %v", size.w, size.h, cyc)
		}
	}
}

func TestCoverageLemmaOnRandomIrregularTopologies(t *testing.T) {
	// The corollary: every irregular topology derived from the mesh also
	// has every cycle covered.
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		topo := topology.NewMesh(8, 8)
		topology.RandomLinkFaults(topo, rng, rng.Intn(60))
		topology.RandomRouterFaults(topo, rng, rng.Intn(20))
		if !VerifyCoverage(topo) {
			t.Fatalf("trial %d: coverage violated on %v: cycle %v",
				trial, topo, CoverageCounterexample(topo))
		}
	}
}

func TestCoverageLemmaLargerMeshRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		topo := topology.NewMesh(12, 12)
		topology.RandomLinkFaults(topo, rng, rng.Intn(100))
		if !VerifyCoverage(topo) {
			t.Fatalf("12x12 trial %d: coverage violated", trial)
		}
	}
}

func TestCustomCoverage(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	// Bubble-everywhere trivially covers.
	all := map[geom.NodeID]bool{}
	for i := 0; i < 16; i++ {
		all[geom.NodeID(i)] = true
	}
	if !VerifyCustomCoverage(topo, all) {
		t.Fatal("bubble-everywhere must cover")
	}
	// No bubbles cannot cover a mesh with cycles.
	if VerifyCustomCoverage(topo, map[geom.NodeID]bool{}) {
		t.Fatal("empty placement cannot cover a 4x4 mesh")
	}
}

func TestCoverageCounterexampleNilWhenCovered(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	if cyc := CoverageCounterexample(topo); cyc != nil {
		t.Fatalf("unexpected counterexample %v", cyc)
	}
}

func TestPlacementDensityReasonable(t *testing.T) {
	// Bubble overhead should stay a small fraction of routers on square
	// meshes (21/64 ≈ 33%, 89/256 ≈ 35% — versus escape VC's extra buffer
	// at 100% of routers × 5 ports).
	for _, n := range []int{8, 16, 32, 64} {
		c := PlacementCount(n, n)
		frac := float64(c) / float64(n*n)
		if frac > 0.40 {
			t.Fatalf("%dx%d placement density %.2f too high", n, n, frac)
		}
	}
}
