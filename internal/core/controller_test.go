package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// mk builds a small sim with SB attached for white-box protocol tests.
func mk(t *testing.T, w, h int, tdd int64) (*network.Sim, *Controller) {
	t.Helper()
	topo := topology.NewMesh(w, h)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: tdd})
	return s, c
}

func TestBeatsPriorityTable(t *testing.T) {
	s, c := mk(t, 2, 2, 20)
	r := &s.Routers[0]
	cp := &Message{Type: MsgCheckProbe, Src: 1}
	dis := &Message{Type: MsgDisable, Src: 2}
	en := &Message{Type: MsgEnable, Src: 3}
	pr := &Message{Type: MsgProbe, Src: 9}

	if !c.beats(cp, dis, r) || !c.beats(cp, pr, r) || !c.beats(cp, en, r) {
		t.Fatal("check_probe must beat everything")
	}
	if !c.beats(dis, pr, r) || !c.beats(en, pr, r) {
		t.Fatal("disable/enable must beat probes")
	}
	// disable vs enable depends on the fence (is_deadlock bit).
	r.Fence.Active = false
	if !c.beats(dis, en, r) || c.beats(en, dis, r) {
		t.Fatal("without a fence the disable wins")
	}
	r.Fence.Active = true
	if !c.beats(en, dis, r) || c.beats(dis, en, r) {
		t.Fatal("with a fence the enable wins")
	}
	// Same type: higher source id wins.
	a, b := &Message{Type: MsgProbe, Src: 5}, &Message{Type: MsgProbe, Src: 7}
	if c.beats(a, b, r) || !c.beats(b, a, r) {
		t.Fatal("higher node-id must win same-type arbitration")
	}
}

func TestForkProbeRequiresAllVCsOccupied(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	r := &s.Routers[1]
	// Probe heading East into node 1 (input port West), vnet 0.
	m := &Message{Type: MsgProbe, Src: 5, Vnet: 0, At: 1, Heading: geom.East}
	// Empty port: dropped.
	if reqs := c.forkProbe(1, r, m, nil); reqs != nil {
		t.Fatalf("probe at empty port should drop, got %d reqs", len(reqs))
	}
	// Fill 3 of 4 vnet-0 VCs: still dropped.
	for i := 0; i < 3; i++ {
		p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
		p.Hop = 1
		r.In[geom.West][i].Pkt = p
	}
	if reqs := c.forkProbe(1, r, m, nil); reqs != nil {
		t.Fatal("probe with a free VC should drop")
	}
	// Fill the 4th: forks out of East (all packets want East).
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	p.Hop = 1
	r.In[geom.West][3].Pkt = p
	reqs := c.forkProbe(1, r, m, nil)
	if len(reqs) != 1 || reqs[0].out != geom.East {
		t.Fatalf("fork = %+v, want one East fork", reqs)
	}
	if len(reqs[0].m.Turns) != 1 || reqs[0].m.Turns[0] != geom.Straight {
		t.Fatalf("turns = %v, want [S]", reqs[0].m.Turns)
	}
}

func TestForkProbeEjectionOnlyDrops(t *testing.T) {
	// All packets waiting for ejection: the probe is dropped (walk-through
	// step 4a).
	s, c := mk(t, 3, 1, 20)
	r := &s.Routers[1]
	for i := 0; i < 4; i++ {
		p := s.NewPacket(0, 1, 0, 1, routing.Route{geom.East})
		p.Hop = 1 // at destination, wants Local
		r.In[geom.West][i].Pkt = p
	}
	m := &Message{Type: MsgProbe, Src: 5, Vnet: 0, At: 1, Heading: geom.East}
	if reqs := c.forkProbe(1, r, m, nil); reqs != nil {
		t.Fatal("ejection-bound packets must not propagate probes")
	}
}

func TestForkProbeTurnCapacity(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	c.opt.MaxTurns = 2
	r := &s.Routers[1]
	for i := 0; i < 4; i++ {
		p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
		p.Hop = 1
		r.In[geom.West][i].Pkt = p
	}
	m := &Message{Type: MsgProbe, Src: 5, Vnet: 0, At: 1, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight, geom.Straight}}
	if reqs := c.forkProbe(1, r, m, nil); reqs != nil {
		t.Fatal("probe at turn capacity must drop")
	}
}

func TestForkProbeForksToMultipleOutputs(t *testing.T) {
	s, c := mk(t, 3, 3, 20)
	center := geom.NodeID(4)
	r := &s.Routers[center]
	// Two packets want North, two want East; probe enters heading East.
	for i, want := range []geom.Direction{geom.North, geom.North, geom.East, geom.East} {
		dst := s.Topo.Neighbor(center, want)
		p := s.NewPacket(3, dst, 0, 1, routing.Route{geom.East, want})
		p.Hop = 1
		r.In[geom.West][i].Pkt = p
	}
	m := &Message{Type: MsgProbe, Src: 8, Vnet: 0, At: center, Heading: geom.East}
	reqs := c.forkProbe(center, r, m, nil)
	if len(reqs) != 2 {
		t.Fatalf("forks = %d, want 2", len(reqs))
	}
	outs := map[geom.Direction]bool{}
	for _, rq := range reqs {
		outs[rq.out] = true
		// Each fork is an independent copy.
		if len(rq.m.Turns) != 1 {
			t.Fatalf("fork turns = %v", rq.m.Turns)
		}
	}
	if !outs[geom.North] || !outs[geom.East] {
		t.Fatalf("fork outputs = %v", outs)
	}
}

func TestDependenceExistsChecksVnetAndBubble(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	node := geom.NodeID(1)
	r := &s.Routers[node]
	p := s.NewPacket(0, 2, 1, 1, routing.Route{geom.East, geom.East})
	p.Hop = 1
	r.In[geom.West][1*s.Cfg.VCsPerVnet].Pkt = p // vnet 1 slot
	if !c.dependenceExists(node, geom.West, 1, geom.East) {
		t.Fatal("vnet-1 dependence should be visible")
	}
	if c.dependenceExists(node, geom.West, 0, geom.East) {
		t.Fatal("vnet-0 must not see vnet-1 packets")
	}
	if c.dependenceExists(node, geom.West, 1, geom.North) {
		t.Fatal("wrong output must not match")
	}
	if c.dependenceExists(node, geom.Local, 1, geom.East) {
		t.Fatal("local port never carries chain dependence")
	}
	// Bubble occupant counts.
	r.In[geom.West][1*s.Cfg.VCsPerVnet].Pkt = nil
	r.Bubble.Present = true
	r.Bubble.InPort = geom.West
	r.Bubble.VC.Pkt = p
	if !c.dependenceExists(node, geom.West, 1, geom.East) {
		t.Fatal("bubble occupant dependence should be visible")
	}
}

func TestDisableInstallsAndEnableClearsFence(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	node := geom.NodeID(1)
	r := &s.Routers[node]
	// A packet at West wanting East makes the dependence real.
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	p.Hop = 1
	r.In[geom.West][0].Pkt = p

	dis := &Message{Type: MsgDisable, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	reqs := c.processOne(node, r, nil, dis, nil)
	if len(reqs) != 1 || reqs[0].out != geom.East {
		t.Fatalf("disable should forward East, got %+v", reqs)
	}
	if !r.Fence.Active || r.Fence.In != geom.West || r.Fence.Out != geom.East || r.Fence.SrcID != 7 {
		t.Fatalf("fence = %+v", r.Fence)
	}

	// A second disable from a different chain is dropped.
	dis2 := &Message{Type: MsgDisable, Src: 9, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	if reqs := c.processOne(node, r, nil, dis2, nil); reqs != nil {
		t.Fatal("second disable must be dropped while fenced")
	}

	// A mismatched enable forwards but does not clear.
	enWrong := &Message{Type: MsgEnable, Src: 9, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	if reqs := c.processOne(node, r, nil, enWrong, nil); len(reqs) != 1 {
		t.Fatal("mismatched enable must still be forwarded")
	}
	if !r.Fence.Active {
		t.Fatal("mismatched enable must not clear the fence")
	}

	// The matching enable clears and forwards.
	en := &Message{Type: MsgEnable, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	if reqs := c.processOne(node, r, nil, en, nil); len(reqs) != 1 {
		t.Fatal("matching enable must forward")
	}
	if r.Fence.Active {
		t.Fatal("matching enable must clear the fence")
	}
}

func TestDisableDroppedWhenDependenceGone(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	node := geom.NodeID(1)
	r := &s.Routers[node]
	dis := &Message{Type: MsgDisable, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	if reqs := c.processOne(node, r, nil, dis, nil); reqs != nil {
		t.Fatal("disable with no matching dependence must drop")
	}
	if r.Fence.Active {
		t.Fatal("no fence should be installed")
	}
	_ = s
}

func TestCheckProbeRequiresMatchingFence(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	node := geom.NodeID(1)
	r := &s.Routers[node]
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	p.Hop = 1
	r.In[geom.West][0].Pkt = p
	cp := &Message{Type: MsgCheckProbe, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	// No fence: dropped.
	if reqs := c.processOne(node, r, nil, cp, nil); reqs != nil {
		t.Fatal("check_probe without fence must drop")
	}
	// Fence from another source: dropped.
	r.Fence = network.Fence{Active: true, In: geom.West, Out: geom.East, SrcID: 9}
	cp2 := &Message{Type: MsgCheckProbe, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	if reqs := c.processOne(node, r, nil, cp2, nil); reqs != nil {
		t.Fatal("check_probe with foreign fence must drop")
	}
	// Matching fence and live dependence: forwarded along the fence out.
	r.Fence.SrcID = 7
	cp3 := &Message{Type: MsgCheckProbe, Src: 7, Vnet: 0, At: node, Heading: geom.East,
		Turns: []geom.Turn{geom.Straight}, Seq: 1}
	reqs := c.processOne(node, r, nil, cp3, nil)
	if len(reqs) != 1 || reqs[0].out != geom.East {
		t.Fatalf("check_probe should forward East, got %+v", reqs)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	a := &fsm{node: 5, rngState: 12345}
	b := &fsm{node: 5, rngState: 12345}
	for i := 0; i < 1000; i++ {
		ja, jb := a.jitter(), b.jitter()
		if ja != jb {
			t.Fatal("jitter must be deterministic for equal state")
		}
		if ja < 0 || ja >= 16 {
			t.Fatalf("jitter %d outside [0,16)", ja)
		}
	}
}

func TestNextOccupiedVCIncludesBubble(t *testing.T) {
	s, _ := mk(t, 3, 1, 20)
	r := &s.Routers[1]
	r.Bubble.Present = true
	r.Bubble.InPort = geom.West
	// Empty router: nothing to watch.
	if _, _, ok := nextOccupiedVC(r, s.Cfg, vcPtr{port: geom.Local}); ok {
		t.Fatal("empty router should yield no pointer")
	}
	// Only the bubble occupied: the pointer must find it. Placement goes
	// through the Sim helper so the occupancy mirror (which feeds the
	// scan fast path) stays consistent with buffer contents.
	p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	s.PlaceBubblePacket(1, geom.West, p)
	ptr, pid, ok := nextOccupiedVC(r, s.Cfg, vcPtr{port: geom.Local})
	if !ok || ptr.slot != bubbleSlot || pid != p.ID {
		t.Fatalf("pointer = %+v pid=%d ok=%v", ptr, pid, ok)
	}
	if watchedVC(r, ptr) != &r.Bubble.VC {
		t.Fatal("watchedVC must resolve the bubble slot")
	}
	// Round robin continues past the bubble back to regular VCs.
	q := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
	s.PlacePacket(1, geom.North, 3, q)
	ptr2, pid2, ok := nextOccupiedVC(r, s.Cfg, ptr)
	if !ok || ptr2.port != geom.North || pid2 != q.ID {
		t.Fatalf("rotation after bubble = %+v pid=%d", ptr2, pid2)
	}
}

func TestFSMPathLen(t *testing.T) {
	f := &fsm{turnBuf: []geom.Turn{geom.LeftTurn, geom.LeftTurn, geom.Straight}}
	if f.pathLen() != 4 {
		t.Fatalf("pathLen = %d, want turns+1", f.pathLen())
	}
}

func TestProbeSeqPreservedThroughForks(t *testing.T) {
	s, c := mk(t, 3, 1, 20)
	r := &s.Routers[1]
	for i := 0; i < 4; i++ {
		p := s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East})
		p.Hop = 1
		r.In[geom.West][i].Pkt = p
	}
	m := &Message{Type: MsgProbe, Src: 5, Vnet: 0, At: 1, Heading: geom.East,
		Seq: 42, OutPort: geom.North}
	reqs := c.forkProbe(1, r, m, nil)
	if len(reqs) != 1 || reqs[0].m.Seq != 42 || reqs[0].m.OutPort != geom.North {
		t.Fatalf("fork lost context: %+v", reqs[0].m)
	}
}

func TestTraceHookReceivesEvents(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	events := 0
	Attach(s, Options{TDD: 10, Trace: func(now int64, node geom.NodeID, ev string) { events++ }})
	enqueueClockwiseRing(s, 12)
	s.Run(4000)
	if events == 0 {
		t.Fatal("trace hook never fired during a recovery")
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Type: MsgProbe, Src: 3, At: 7, Heading: geom.North,
		Turns: []geom.Turn{geom.LeftTurn}}
	if m.String() != "probe(src=3 at=7 heading=N turns=1)" {
		t.Fatalf("String = %q", m.String())
	}
	if m.inPort() != geom.South {
		t.Fatalf("inPort = %v", m.inPort())
	}
}
