package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The 256-core configuration from Table I: 16×16 mesh, 89 bubbles.

func TestScale16x16PlacementAndCoverage(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	if got := len(Placement(16, 16)); got != 89 {
		t.Fatalf("16x16 placement = %d, want 89", got)
	}
	if !VerifyCoverage(topo) {
		t.Fatal("coverage lemma must hold at 16x16")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		irr := topology.NewMesh(16, 16)
		topology.RandomLinkFaults(irr, rng, rng.Intn(150))
		topology.RandomRouterFaults(irr, rng, rng.Intn(40))
		if !VerifyCoverage(irr) {
			t.Fatalf("trial %d: 16x16 coverage violated", trial)
		}
	}
}

func TestScale16x16RecoveryWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("16x16 soak skipped in -short mode")
	}
	topo := topology.RandomIrregular(16, 16, topology.LinkFaults, 30, 5)
	min := routing.NewMinimal(topo)
	// Run the soak sharded: the parallel stepper is byte-identical to the
	// sequential core (see internal/network/shard.go) and cuts the
	// full-CI wall clock enough to keep this test in the default tier.
	s := network.New(topo, network.Config{Shards: 4}, rand.New(rand.NewSource(1)))
	Attach(s, Options{TDD: 34})
	rng := rand.New(rand.NewSource(2))
	offered := int64(0)
	for cyc := 0; cyc < 6000; cyc++ {
		if cyc < 4000 {
			for n := 0; n < 256; n++ {
				if !topo.RouterAlive(geom.NodeID(n)) || rng.Float64() >= 0.03 {
					continue
				}
				dst := geom.NodeID(rng.Intn(256))
				r, ok := min.Route(geom.NodeID(n), dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
				offered++
			}
		}
		s.Step()
	}
	for i := 0; i < 300000 && s.InFlight()+s.QueuedPackets() > 0; i += 200 {
		s.Run(200)
	}
	if s.Stats.Delivered != offered {
		t.Fatalf("16x16: delivered %d of %d (in flight %d, queued %d, recoveries %d)",
			s.Stats.Delivered, offered, s.InFlight(), s.QueuedPackets(),
			s.Stats.DeadlockRecoveries)
	}
}

func TestScale16x16ConstructedDeadlock(t *testing.T) {
	// A wedged loop far from low-id bubble routers still recovers.
	topo := topology.NewMesh(16, 16)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	Attach(s, Options{TDD: 20})
	loop := []geom.NodeID{
		topo.ID(geom.Coord{X: 12, Y: 12}),
		topo.ID(geom.Coord{X: 12, Y: 13}),
		topo.ID(geom.Coord{X: 13, Y: 13}),
		topo.ID(geom.Coord{X: 13, Y: 12}),
	}
	total := 0
	for i, n := range loop {
		next, next2 := loop[(i+1)%4], loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	s.Run(30000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, total)
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recovery at 16x16")
	}
}

func TestNonSquareMeshCoverageAndRecovery(t *testing.T) {
	// Rectangular meshes are first-class: the placement rule is n×m.
	for _, sz := range [][2]int{{4, 12}, {12, 4}, {6, 10}} {
		topo := topology.NewMesh(sz[0], sz[1])
		if !VerifyCoverage(topo) {
			t.Fatalf("%dx%d coverage violated", sz[0], sz[1])
		}
	}
	// Recovery on a 4x12 strip.
	topo := topology.NewMesh(4, 12)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	Attach(s, Options{TDD: 20})
	loop := []geom.NodeID{
		topo.ID(geom.Coord{X: 1, Y: 5}),
		topo.ID(geom.Coord{X: 1, Y: 6}),
		topo.ID(geom.Coord{X: 2, Y: 6}),
		topo.ID(geom.Coord{X: 2, Y: 5}),
	}
	total := 0
	for i, n := range loop {
		next, next2 := loop[(i+1)%4], loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	s.Run(30000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("4x12: delivered %d of %d", s.Stats.Delivered, total)
	}
}

func TestUnidirectionalFaultCoverage(t *testing.T) {
	// uDIREC-style unidirectional link failures only remove channels, so
	// the coverage lemma holds a fortiori (fewer cycles than the
	// bidirectional graph).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		topo := topology.NewMesh(8, 8)
		for k := 0; k < 30; k++ {
			n := geom.NodeID(rng.Intn(64))
			d := geom.LinkDirs[rng.Intn(4)]
			topo.DisableDirectedLink(n, d)
		}
		if !VerifyCoverage(topo) {
			t.Fatalf("trial %d: unidirectional coverage violated", trial)
		}
	}
}

func TestUnidirectionalFaultRecovery(t *testing.T) {
	// Minimal routing handles one-way channels natively; recovery must
	// still drain a constructed deadlock when some reverse channels are
	// dead nearby.
	topo := topology.NewMesh(4, 4)
	topo.DisableDirectedLink(topo.ID(geom.Coord{X: 0, Y: 2}), geom.East)
	topo.DisableDirectedLink(topo.ID(geom.Coord{X: 3, Y: 1}), geom.North)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	Attach(s, Options{TDD: 20})
	total := buildDeadlockOn44(s, 12)
	s.Run(30000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, total)
	}
}
