package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/network"
)

// MsgType identifies one of the four bufferless control messages of the
// recovery protocol (paper Section IV).
type MsgType int8

// The four control messages. Priority at an output mux is
// check_probe > disable/enable > probe (> flit), per Section IV-C.
const (
	MsgProbe MsgType = iota
	MsgDisable
	MsgEnable
	MsgCheckProbe
)

func (t MsgType) String() string {
	switch t {
	case MsgProbe:
		return "probe"
	case MsgDisable:
		return "disable"
	case MsgEnable:
		return "enable"
	case MsgCheckProbe:
		return "check_probe"
	}
	return fmt.Sprintf("MsgType(%d)", int8(t))
}

// linkClass maps a message type to its link-utilization class.
func (t MsgType) linkClass() network.LinkClass {
	switch t {
	case MsgProbe:
		return network.ClassProbe
	case MsgDisable:
		return network.ClassDisable
	case MsgEnable:
		return network.ClassEnable
	default:
		return network.ClassCheckProbe
	}
}

// priority returns the output-mux priority of the message type (higher
// wins).
func (t MsgType) priority() int {
	switch t {
	case MsgCheckProbe:
		return 3
	case MsgDisable, MsgEnable:
		return 2
	default:
		return 1
	}
}

// Message is one in-flight control message. Control messages are
// bufferless: each hop costs one cycle of router processing plus one
// cycle of link traversal, and a message that loses output arbitration is
// dropped (the originating FSM's timeout handles retransmission).
type Message struct {
	Type MsgType
	// Src is the static-bubble router that originated the message;
	// node-id ties at an output port are broken in favor of higher Src.
	Src geom.NodeID
	// Vnet is the message class of the dependency chain under
	// investigation (buffer dependencies are per-vnet).
	Vnet int
	// At is the router that will process the message at cycle NextAt.
	At geom.NodeID
	// Heading is the direction traveled to arrive at At (the message
	// entered on input port Heading.Opposite()).
	Heading geom.Direction
	// Turns is the 2-bit-per-hop L/R/S path: accumulated by probes,
	// consumed front-first by disable/enable/check_probe.
	Turns []geom.Turn
	// NextAt is the cycle the message is processed at At.
	NextAt int64
	// Seq is the originator's recovery-round number. Stale messages from
	// an earlier round (possible after an S_ENABLE retransmission) must
	// not complete a later round, so the FSM only accepts returns whose
	// Seq matches its current round.
	Seq int64
	// OutPort is the output port the originating probe was first sent
	// from; carried through forks so that a return latches the correct
	// IO-priority output even after the detection pointer moved on.
	OutPort geom.Direction
}

func (m *Message) String() string {
	return fmt.Sprintf("%v(src=%v at=%v heading=%v turns=%d)", m.Type, m.Src, m.At, m.Heading, len(m.Turns))
}

// inPort returns the input port the message arrived on.
func (m *Message) inPort() geom.Direction { return m.Heading.Opposite() }
