package core

import (
	"fmt"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/network"
)

// State is the recovery FSM state of one static-bubble router (Fig. 5 of
// the paper).
type State int8

// The six FSM states.
const (
	// StateOff: counter off, no packets buffered at non-local ports.
	StateOff State = iota
	// StateDD: deadlock detection — the counter tracks one occupied VC
	// round-robin; expiry at tDD sends a probe.
	StateDD
	// StateDisable: our probe returned and the disable was sent; waiting
	// up to tDR = 2×path for it to return.
	StateDisable
	// StateSBActive: the disable returned; the bubble is on, the chain
	// is fenced, and the deadlocked ring advances one step.
	StateSBActive
	// StateCheckProbe: the bubble was reclaimed; a check_probe is probing
	// whether the chain still exists.
	StateCheckProbe
	// StateEnable: recovery is winding down; an enable is clearing fences
	// along the latched path.
	StateEnable
)

func (s State) String() string {
	switch s {
	case StateOff:
		return "S_OFF"
	case StateDD:
		return "S_DD"
	case StateDisable:
		return "S_DISABLE"
	case StateSBActive:
		return "S_SB_ACTIVE"
	case StateCheckProbe:
		return "S_CHECK_PROBE"
	case StateEnable:
		return "S_ENABLE"
	}
	return fmt.Sprintf("State(%d)", int8(s))
}

// inRecovery reports whether the FSM has committed to resolving a
// specific dependency chain (it rejects foreign disables/enables while
// set, per Section IV-B).
func (s State) inRecovery() bool {
	return s == StateDisable || s == StateSBActive || s == StateCheckProbe || s == StateEnable
}

// vcPtr identifies the VC the detection counter currently watches.
// slot == bubbleSlot refers to the router's static bubble (a stale
// occupant left by a torn-down recovery must be watched like any other
// stuck packet, or its chain becomes undetectable at this router).
type vcPtr struct {
	port geom.Direction
	slot int // index into Router.In[port], or bubbleSlot
}

// bubbleSlot is the sentinel slot index for the static bubble.
const bubbleSlot = -1

// fsm is the per-static-bubble-router counter FSM.
type fsm struct {
	node  geom.NodeID
	state State

	// deadline is the cycle at which the current threshold expires
	// (counter value ≥ threshold). Meaningful in DD/Disable/CheckProbe/
	// Enable states.
	deadline int64
	// tDR is 2× the latched path length, set when the probe returns.
	tDR int64

	// ptr and ptrPkt track the watched VC and its resident packet in
	// StateDD ("flit leaves" is detected as a packet change).
	ptr    vcPtr
	ptrPkt int64

	// Recovery context, latched when the probe returns.
	turnBuf  []geom.Turn    // the Turn Buffer
	probeOut geom.Direction // output port the probe was sent from
	probeIn  geom.Direction // input port the probe returned on
	vnet     int            // vnet of the chain under recovery

	// seq is the recovery-round number, bumped when a probe return opens
	// a new round; message returns are only honored when their Seq
	// matches.
	seq int64
	// rngState drives the per-FSM retransmission jitter (an LCG seeded by
	// the node id). Identical thresholds at every router would phase-lock
	// retransmissions: in a frozen deadlock, the same pair of probes then
	// collides at the same output in every round, starving one forever.
	// Real implementations break such livelocks with an LFSR; we do the
	// same, deterministically per node.
	rngState uint64

	// recoveryStart is the cycle the current round's disable returned
	// (recovery began); used to report recovery durations.
	recoveryStart int64
	// enableRetries counts S_ENABLE retransmissions this round; a bounded
	// retry limit covers the pathological case of the latched path dying
	// mid-recovery (the enable can then never return).
	enableRetries int

	// lastGrants snapshots the router's grant counter: any new grant at
	// the fenced router is chain progress and renews the S_SB_ACTIVE
	// guard (rotation of a long ring with multi-flit packets is slow but
	// alive).
	lastGrants int64

	// bubbleWasOccupied is set once a packet enters the active bubble,
	// so the FSM can detect the subsequent reclaim; bubblePktID identifies
	// the current occupant so a fresh arrival (progress) renews the
	// liveness guard.
	bubbleWasOccupied bool
	bubblePktID       int64
}

// reset returns the FSM to S_OFF with all round context cleared, as if
// freshly attached — used when its router powers off, dies, or
// recovers. Three fields survive: node (identity), rngState (the
// deterministic jitter stream must not rewind — replaying it would
// re-phase-lock retransmissions the stream already decorrelated), and
// seq (stale in-flight messages from pre-death rounds must never match
// a post-recovery round's sequence number). turnBuf keeps its capacity.
func (f *fsm) reset() {
	f.state = StateOff
	f.deadline = 0
	f.tDR = 0
	f.ptr = vcPtr{}
	f.ptrPkt = 0
	f.turnBuf = f.turnBuf[:0]
	f.probeOut = 0
	f.probeIn = 0
	f.vnet = 0
	f.recoveryStart = 0
	f.enableRetries = 0
	f.lastGrants = 0
	f.bubbleWasOccupied = false
	f.bubblePktID = 0
}

// jitter returns a small pseudo-random delay in [0, 16) to decorrelate
// retransmission phases across FSMs.
func (f *fsm) jitter() int64 {
	f.rngState = f.rngState*6364136223846793005 + 1442695040888963407
	return int64((f.rngState >> 33) % 16)
}

// pathLen returns the hop length of the latched dependency cycle: one hop
// per recorded turn plus the closing hop back into the originator.
func (f *fsm) pathLen() int64 { return int64(len(f.turnBuf)) + 1 }

// nextOccupiedVC scans non-local input VCs (plus the static bubble, as
// the final pseudo-slot) round-robin starting after `from` and returns the
// first occupied one. ok is false if every candidate is empty.
func nextOccupiedVC(r *network.Router, cfg network.Config, from vcPtr) (vcPtr, int64, bool) {
	slots := cfg.SlotsPerPort()
	total := geom.NumLinkDirs*slots + 1 // +1: the bubble pseudo-slot
	start := 0
	switch {
	case from.slot == bubbleSlot:
		start = geom.NumLinkDirs*slots + 1
	case from.port.IsLink():
		start = int(from.port)*slots + from.slot + 1
	}
	// Fast path: the network's occupancy mirror hands us every candidate
	// as one bit word in this scan's exact cyclic order, so the
	// round-robin winner is the first set bit at or after start
	// (wrapping) — two TrailingZeros64 instead of walking ~total slots.
	if w, ok := r.OccupiedScanWord(); ok {
		if w == 0 {
			return vcPtr{}, 0, false
		}
		idx := bits.TrailingZeros64(w & (^uint64(0) << uint(start%total)))
		if idx == 64 {
			idx = bits.TrailingZeros64(w)
		}
		if idx == geom.NumLinkDirs*slots {
			return vcPtr{r.Bubble.InPort, bubbleSlot}, r.Bubble.VC.Pkt.ID, true
		}
		port := geom.Direction(idx / slots)
		slot := idx % slots
		return vcPtr{port, slot}, r.In[port][slot].Pkt.ID, true
	}
	for k := 0; k < total; k++ {
		idx := (start + k) % total
		if idx == geom.NumLinkDirs*slots {
			if r.Bubble.Present && r.Bubble.VC.Pkt != nil {
				return vcPtr{r.Bubble.InPort, bubbleSlot}, r.Bubble.VC.Pkt.ID, true
			}
			continue
		}
		port := geom.Direction(idx / slots)
		slot := idx % slots
		vc := &r.In[port][slot]
		if vc.Pkt != nil {
			return vcPtr{port, slot}, vc.Pkt.ID, true
		}
	}
	return vcPtr{}, 0, false
}

// watchedVC returns the VC the pointer refers to.
func watchedVC(r *network.Router, p vcPtr) *network.VC {
	if p.slot == bubbleSlot {
		return &r.Bubble.VC
	}
	return &r.In[p.port][p.slot]
}
