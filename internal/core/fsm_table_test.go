package core

// The transition table of the six-state static-bubble counter FSM
// (paper Fig. 5), exercised edge by edge against a live simulator: every
// case arranges one precise router/buffer state, fires exactly one FSM
// input (a counter tick at a chosen cycle, or one control-message
// delivery through the real receive path), and pins the resulting state
// plus the observable side effects (messages sent, fences, bubble
// activation, Stats counters). Timeouts are probed AT the deadline
// boundary — deadline-1 must do nothing, deadline must fire — and the
// S_SB_ACTIVE <-> S_CHECK_PROBE edge is driven around the loop twice,
// since re-entry (a reclaimed bubble whose chain persists) is where
// stale per-round state would surface.

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// fsmHarness wires a single static-bubble router's FSM to a live 4x4
// mesh simulator. The simulator is never stepped: the table drives
// tickFSM and processOne directly, with h.at() moving the clock.
type fsmHarness struct {
	t    *testing.T
	s    *network.Sim
	c    *Controller
	topo *topology.Topology
	node geom.NodeID
	r    *network.Router
	f    *fsm
}

func newFSMHarness(t *testing.T, opt Options) *fsmHarness {
	t.Helper()
	topo := topology.NewMesh(4, 4)
	node := topo.ID(geom.Coord{X: 1, Y: 1}) // interior: all four links live
	s := network.New(topo, network.Config{}, nil)
	if opt.TDD == 0 {
		opt.TDD = 20
	}
	opt.Placement = []geom.NodeID{node}
	c := Attach(s, opt)
	return &fsmHarness{t: t, s: s, c: c, topo: topo, node: node, r: &s.Routers[node], f: c.fsms[node]}
}

// at moves the simulator clock (the FSM reads time only through s.Now).
func (h *fsmHarness) at(now int64) { h.s.Now = now }

// tick runs one counter tick of the FSM under test.
func (h *fsmHarness) tick() { h.c.tickFSM(h.f) }

// deliver pushes one control message through the real receive path at
// the FSM's router.
func (h *fsmHarness) deliver(m *Message) { h.c.processOne(h.node, h.r, h.f, m, nil) }

// stuck places a head-ready single-flit packet into slot `slot` of input
// port `in` at router id, wanting output `out`.
func (h *fsmHarness) stuck(id geom.NodeID, in geom.Direction, slot int, out geom.Direction) *network.Packet {
	h.t.Helper()
	p := h.s.NewPacket(id, h.topo.Neighbor(id, out), 0, 1, routing.Route{out})
	h.s.PlacePacket(id, in, slot, p)
	return p
}

// latch puts the FSM into S_DISABLE exactly as a returned probe would:
// a three-turn path latched, t_DR set, round opened — and, unless
// broken, the originator-side dependence (a packet at probeIn wanting
// probeOut) that disable validation re-checks.
func (h *fsmHarness) latch(withDependence bool) *network.Packet {
	h.t.Helper()
	f := h.f
	f.seq++
	f.turnBuf = []geom.Turn{geom.Straight, geom.Straight, geom.Straight}
	f.probeOut = geom.East
	f.probeIn = geom.North
	f.vnet = 0
	f.tDR = h.c.hopLatency * f.pathLen()
	f.state = StateDisable
	f.deadline = h.s.Now + f.tDR
	if withDependence {
		return h.stuck(h.node, f.probeIn, 0, f.probeOut)
	}
	return nil
}

// disableReturn is the originator's own disable completing its loop.
func (h *fsmHarness) disableReturn() {
	h.deliver(&Message{Type: MsgDisable, Src: h.node, Heading: geom.East, Seq: h.f.seq})
}

// checkProbeReturn is the originator's check_probe completing its loop.
func (h *fsmHarness) checkProbeReturn() {
	h.deliver(&Message{Type: MsgCheckProbe, Src: h.node, Heading: geom.East, Seq: h.f.seq})
}

// activate drives latch + disable return: the FSM lands in S_SB_ACTIVE
// with the bubble on and its own fence installed.
func (h *fsmHarness) activate() *network.Packet {
	h.t.Helper()
	dep := h.latch(true)
	h.disableReturn()
	if h.f.state != StateSBActive {
		h.t.Fatalf("activate: state %v after disable return", h.f.state)
	}
	return dep
}

// occupyBubble parks a packet in the (active) bubble.
func (h *fsmHarness) occupyBubble() *network.Packet {
	p := h.s.NewPacket(h.node, h.topo.Neighbor(h.node, geom.East), 0, 1, routing.Route{geom.East})
	h.s.PlaceBubblePacket(h.node, h.f.probeIn, p)
	return p
}

// latchRing places a four-packet dependence cycle around the unit square
// at (1,1)->(2,1)->(2,2)->(1,2) and latches it into the FSM as a
// returned probe would — the rotatable chain the SPIN cases need.
func (h *fsmHarness) latchRing() []geom.NodeID {
	h.t.Helper()
	nodes := []geom.NodeID{
		h.topo.ID(geom.Coord{X: 1, Y: 1}),
		h.topo.ID(geom.Coord{X: 2, Y: 1}),
		h.topo.ID(geom.Coord{X: 2, Y: 2}),
		h.topo.ID(geom.Coord{X: 1, Y: 2}),
	}
	n := len(nodes)
	headings := make([]geom.Direction, n)
	for i := range nodes {
		headings[i] = geom.DirectionBetween(h.topo.Coord(nodes[i]), h.topo.Coord(nodes[(i+1)%n]))
	}
	for i, nd := range nodes {
		in := headings[(i+n-1)%n].Opposite()
		// A multi-lap route: after each rotation the packet still wants
		// the ring's next output (a one-hop route would want ejection and
		// dissolve the chain after the first rotation).
		route := make(routing.Route, 2*n)
		for k := range route {
			route[k] = headings[(i+k)%n]
		}
		p := h.s.NewPacket(nd, nd, 0, 1, route)
		h.s.PlacePacket(nd, in, 0, p)
	}
	f := h.f
	f.seq++
	f.turnBuf = nil
	for i := 1; i < n; i++ {
		turn, ok := geom.TurnBetween(headings[i-1], headings[i])
		if !ok {
			h.t.Fatalf("ring step %d is a U-turn", i)
		}
		f.turnBuf = append(f.turnBuf, turn)
	}
	f.probeOut = headings[0]
	f.probeIn = headings[n-1].Opposite()
	f.vnet = 0
	f.tDR = h.c.hopLatency * f.pathLen()
	f.state = StateDisable
	f.deadline = h.s.Now + f.tDR
	return nodes
}

func TestFSMTransitionTable(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		// run arranges the precondition state and fires the transition
		// input; intermediate assertions live inside it.
		run  func(h *fsmHarness)
		want State
	}{
		// ---- S_OFF -------------------------------------------------------
		{
			name: "off/empty-router-stays-off",
			run:  func(h *fsmHarness) { h.tick() },
			want: StateOff,
		},
		{
			name: "off/occupied-vc-arms-detection",
			run: func(h *fsmHarness) {
				p := h.stuck(h.node, geom.East, 0, geom.West)
				h.tick()
				if h.f.ptrPkt != p.ID {
					h.t.Fatalf("watch pointer on packet %d, want %d", h.f.ptrPkt, p.ID)
				}
				if h.f.deadline != h.s.Now+h.c.opt.TDD {
					h.t.Fatalf("deadline %d, want now+TDD=%d", h.f.deadline, h.s.Now+h.c.opt.TDD)
				}
			},
			want: StateDD,
		},
		{
			name: "off/occupied-bubble-arms-detection",
			run: func(h *fsmHarness) {
				// A stale occupant left by a torn-down recovery must be
				// watched like any stuck packet (bubbleSlot pseudo-VC).
				h.occupyBubble()
				h.tick()
				if h.f.ptr.slot != bubbleSlot {
					h.t.Fatalf("watch pointer slot %d, want bubbleSlot", h.f.ptr.slot)
				}
			},
			want: StateDD,
		},
		{
			name: "off/foreign-fence-keeps-parked",
			run: func(h *fsmHarness) {
				h.stuck(h.node, geom.East, 0, geom.West)
				h.r.Fence = network.Fence{Active: true, In: geom.East, Out: geom.West, SrcID: h.node + 1}
				h.tick()
			},
			want: StateOff,
		},

		// ---- S_DD --------------------------------------------------------
		{
			name: "dd/watched-packet-leaves-advances-pointer",
			run: func(h *fsmHarness) {
				p1 := h.stuck(h.node, geom.East, 0, geom.West)
				p2 := h.stuck(h.node, geom.West, 0, geom.East)
				h.tick() // off -> dd, watching one of the two
				watched, other := p1, p2
				if h.f.ptrPkt == p2.ID {
					watched, other = p2, p1
				}
				h.s.RemovePacket(watchedVC(h.r, h.f.ptr), h.node, h.f.ptr.port)
				h.at(5)
				h.tick()
				if h.f.ptrPkt != other.ID {
					h.t.Fatalf("pointer on %d after %d left, want %d", h.f.ptrPkt, watched.ID, other.ID)
				}
				if h.f.deadline != 5+h.c.opt.TDD {
					h.t.Fatalf("counter not restarted: deadline %d", h.f.deadline)
				}
			},
			want: StateDD,
		},
		{
			name: "dd/router-drains-disarms",
			run: func(h *fsmHarness) {
				h.stuck(h.node, geom.East, 0, geom.West)
				h.tick()
				h.s.RemovePacket(watchedVC(h.r, h.f.ptr), h.node, h.f.ptr.port)
				h.tick()
			},
			want: StateOff,
		},
		{
			name: "dd/timeout-fires-exactly-at-deadline",
			run: func(h *fsmHarness) {
				h.stuck(h.node, geom.East, 0, geom.West)
				h.tick() // deadline = TDD
				h.at(h.c.opt.TDD - 1)
				h.tick()
				if h.s.Stats.ProbesSent != 0 {
					h.t.Fatal("probe sent one cycle before the threshold expired")
				}
				h.at(h.c.opt.TDD)
				h.tick()
				if h.s.Stats.ProbesSent != 1 {
					h.t.Fatalf("ProbesSent = %d at the deadline, want 1", h.s.Stats.ProbesSent)
				}
				if h.f.probeOut != geom.West {
					h.t.Fatalf("probe sent out %v, want West", h.f.probeOut)
				}
				// Counter restarts with decorrelation jitter in [0,16).
				if d := h.f.deadline - (h.s.Now + h.c.opt.TDD); d < 0 || d >= 16 {
					h.t.Fatalf("post-probe deadline offset %d outside [0,16)", d)
				}
			},
			want: StateDD,
		},
		{
			name: "dd/ejection-wanting-packet-never-probed",
			run: func(h *fsmHarness) {
				// Empty route: OutputOf is Local — waiting on ejection is
				// never a dependence cycle.
				p := h.s.NewPacket(h.node, h.node, 0, 1, nil)
				h.s.PlacePacket(h.node, geom.East, 0, p)
				h.tick()
				h.at(h.c.opt.TDD)
				h.tick()
				if h.s.Stats.ProbesSent != 0 {
					h.t.Fatal("probed an ejection-wanting packet")
				}
				if h.f.deadline != h.s.Now+h.c.opt.TDD {
					h.t.Fatal("counter not restarted after skipping ejection packet")
				}
			},
			want: StateDD,
		},
		{
			name: "dd/probe-return-latches-path-sends-disable",
			run: func(h *fsmHarness) {
				h.stuck(h.node, geom.North, 0, geom.East)
				h.tick()
				seq := h.f.seq
				h.deliver(&Message{
					Type: MsgProbe, Src: h.node, Heading: geom.South,
					Turns: []geom.Turn{geom.Straight, geom.LeftTurn, geom.Straight},
					Seq:   seq, OutPort: geom.East,
				})
				if h.s.Stats.DisablesSent != 1 {
					h.t.Fatalf("DisablesSent = %d, want 1", h.s.Stats.DisablesSent)
				}
				if h.f.seq != seq+1 {
					h.t.Fatal("probe return must open a new recovery round")
				}
				if want := h.c.hopLatency * 4; h.f.tDR != want {
					h.t.Fatalf("tDR = %d, want hopLatency*pathLen = %d", h.f.tDR, want)
				}
				if h.f.probeOut != geom.East || h.f.probeIn != geom.North {
					h.t.Fatalf("latched ports %v/%v, want East/North", h.f.probeOut, h.f.probeIn)
				}
			},
			want: StateDisable,
		},
		{
			name: "dd/foreign-disable-parks-detection",
			run: func(h *fsmHarness) {
				h.stuck(h.node, geom.East, 0, geom.West)
				h.tick() // arm detection first
				// Higher-id SB router's disable passes through: heading
				// East (entered on West), straight turn -> out East; the
				// dependence West->East must exist for acceptance.
				h.stuck(h.node, geom.West, 1, geom.East)
				h.deliver(&Message{
					Type: MsgDisable, Src: h.node + 1, Heading: geom.East,
					Turns: []geom.Turn{geom.Straight, geom.Straight}, Seq: 1,
				})
				if !h.r.Fence.Active || h.r.Fence.SrcID != h.node+1 {
					h.t.Fatalf("foreign fence not installed: %+v", h.r.Fence)
				}
			},
			want: StateOff,
		},
		{
			name: "off/matching-enable-clears-fence-and-rearms",
			run: func(h *fsmHarness) {
				src := h.node + 1
				h.stuck(h.node, geom.West, 0, geom.East)
				h.r.Fence = network.Fence{Active: true, In: geom.West, Out: geom.East, SrcID: src}
				h.deliver(&Message{
					Type: MsgEnable, Src: src, Heading: geom.East,
					Turns: []geom.Turn{geom.Straight, geom.Straight}, Seq: 1,
				})
				if h.r.Fence.Active {
					h.t.Fatal("matching enable must clear the fence")
				}
			},
			want: StateDD,
		},

		// ---- S_DISABLE ---------------------------------------------------
		{
			name: "disable/return-activates-bubble",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.disableReturn()
				if !h.r.Bubble.Active || h.r.Bubble.InPort != h.f.probeIn {
					h.t.Fatalf("bubble not on at probeIn: %+v", h.r.Bubble)
				}
				if !h.r.Fence.Active || h.r.Fence.SrcID != h.node {
					h.t.Fatalf("own fence not installed: %+v", h.r.Fence)
				}
				if h.s.Stats.DeadlockRecoveries != 1 {
					h.t.Fatalf("DeadlockRecoveries = %d, want 1", h.s.Stats.DeadlockRecoveries)
				}
			},
			want: StateSBActive,
		},
		{
			name: "disable/return-ignored-when-dependence-gone",
			run: func(h *fsmHarness) {
				h.latch(false)
				h.disableReturn()
				if h.r.Bubble.Active {
					h.t.Fatal("bubble turned on without a validated dependence")
				}
			},
			want: StateDisable,
		},
		{
			name: "disable/return-ignored-under-foreign-fence",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.r.Fence = network.Fence{Active: true, In: geom.West, Out: geom.East, SrcID: h.node + 1}
				h.disableReturn()
				if h.r.Fence.SrcID != h.node+1 {
					h.t.Fatal("foreign fence overwritten")
				}
			},
			want: StateDisable,
		},
		{
			name: "disable/stale-seq-return-dropped",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.deliver(&Message{Type: MsgDisable, Src: h.node, Heading: geom.East, Seq: h.f.seq - 1})
			},
			want: StateDisable,
		},
		{
			name: "disable/timeout-at-boundary-sends-enable",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.at(h.f.deadline - 1)
				h.tick()
				if h.s.Stats.EnablesSent != 0 || h.f.state != StateDisable {
					h.t.Fatal("fired one cycle before the disable timeout")
				}
				h.at(h.f.deadline)
				h.tick()
				if h.s.Stats.EnablesSent != 1 {
					h.t.Fatalf("EnablesSent = %d at the deadline, want 1", h.s.Stats.EnablesSent)
				}
			},
			want: StateEnable,
		},

		// ---- S_SB_ACTIVE -------------------------------------------------
		{
			name: "sbactive/occupant-latches-and-renews-guard",
			run: func(h *fsmHarness) {
				h.activate()
				h.occupyBubble()
				h.at(10)
				h.tick()
				if !h.f.bubbleWasOccupied {
					h.t.Fatal("occupant not latched")
				}
				if h.f.deadline != 10+h.c.sbActiveGuard(h.f) {
					h.t.Fatal("guard not renewed on fresh occupant")
				}
			},
			want: StateSBActive,
		},
		{
			name: "sbactive/reclaim-sends-check-probe",
			run: func(h *fsmHarness) {
				h.activate()
				p := h.occupyBubble()
				h.tick() // latch the occupant
				h.s.RemovePacket(&h.r.Bubble.VC, h.node, h.f.probeIn)
				_ = p
				h.tick()
				if h.r.Bubble.Active {
					h.t.Fatal("bubble still on after reclaim")
				}
				if h.s.Stats.CheckProbesSent != 1 {
					h.t.Fatalf("CheckProbesSent = %d, want 1", h.s.Stats.CheckProbesSent)
				}
			},
			want: StateCheckProbe,
		},
		{
			name: "sbactive/vanished-dependence-reclaims",
			run: func(h *fsmHarness) {
				dep := h.activate()
				// The congested-not-deadlocked chain drains through regular
				// VCs without ever touching the bubble.
				vc := h.r.VCAt(h.s.Cfg, h.f.probeIn, 0, 0)
				if vc.Pkt != dep {
					h.t.Fatal("dependence packet not where expected")
				}
				h.s.RemovePacket(vc, h.node, h.f.probeIn)
				h.tick()
			},
			want: StateCheckProbe,
		},
		{
			name: "sbactive/guard-expiry-empty-bubble-tears-down",
			run: func(h *fsmHarness) {
				h.activate() // dependence stays put, bubble never used
				h.at(h.f.deadline)
				h.tick()
			},
			want: StateCheckProbe,
		},
		{
			name: "sbactive/guard-expiry-occupied-bubble-sends-enable",
			run: func(h *fsmHarness) {
				h.activate()
				h.occupyBubble()
				h.tick() // latch occupant, renew guard
				h.at(h.f.deadline)
				h.tick() // wedged occupant: tear down, occupant stays resident
				if h.r.Bubble.Active {
					h.t.Fatal("bubble still on after teardown")
				}
				if h.r.Bubble.VC.Pkt == nil {
					h.t.Fatal("teardown must not evict the resident packet")
				}
				if h.s.Stats.EnablesSent != 1 {
					h.t.Fatalf("EnablesSent = %d, want 1", h.s.Stats.EnablesSent)
				}
			},
			want: StateEnable,
		},
		{
			name: "sbactive/check-probe-ablation-goes-straight-to-enable",
			opt:  Options{DisableCheckProbe: true},
			run: func(h *fsmHarness) {
				h.activate()
				h.occupyBubble()
				h.tick()
				h.s.RemovePacket(&h.r.Bubble.VC, h.node, h.f.probeIn)
				h.tick()
				if h.s.Stats.CheckProbesSent != 0 {
					h.t.Fatal("check_probe sent despite the ablation")
				}
			},
			want: StateEnable,
		},

		// ---- S_CHECK_PROBE (re-entrant edges) ----------------------------
		{
			name: "checkprobe/return-reactivates-bubble-twice",
			run: func(h *fsmHarness) {
				h.activate()
				for round := 1; round <= 2; round++ {
					h.occupyBubble()
					h.tick() // latch
					h.s.RemovePacket(&h.r.Bubble.VC, h.node, h.f.probeIn)
					h.tick() // reclaim -> S_CHECK_PROBE
					if h.f.state != StateCheckProbe {
						h.t.Fatalf("round %d: state %v after reclaim", round, h.f.state)
					}
					h.checkProbeReturn() // chain persists -> re-enter S_SB_ACTIVE
					if h.f.state != StateSBActive || !h.r.Bubble.Active {
						h.t.Fatalf("round %d: check_probe return did not re-activate (state %v)", round, h.f.state)
					}
					if h.f.bubbleWasOccupied {
						h.t.Fatalf("round %d: stale occupant latch survived re-entry", round)
					}
				}
				if h.s.Stats.CheckProbesSent != 2 {
					h.t.Fatalf("CheckProbesSent = %d, want 2", h.s.Stats.CheckProbesSent)
				}
			},
			want: StateSBActive,
		},
		{
			name: "checkprobe/stale-seq-return-dropped",
			run: func(h *fsmHarness) {
				h.activate()
				h.occupyBubble()
				h.tick()
				h.s.RemovePacket(&h.r.Bubble.VC, h.node, h.f.probeIn)
				h.tick()
				h.deliver(&Message{Type: MsgCheckProbe, Src: h.node, Heading: geom.East, Seq: h.f.seq - 1})
			},
			want: StateCheckProbe,
		},
		{
			name: "checkprobe/timeout-at-boundary-sends-enable",
			run: func(h *fsmHarness) {
				h.activate()
				h.occupyBubble()
				h.tick()
				h.s.RemovePacket(&h.r.Bubble.VC, h.node, h.f.probeIn)
				h.tick() // -> S_CHECK_PROBE, deadline = now + tDR
				h.at(h.f.deadline - 1)
				h.tick()
				if h.f.state != StateCheckProbe {
					h.t.Fatal("fired one cycle before the check_probe timeout")
				}
				h.at(h.f.deadline)
				h.tick()
				if h.s.Stats.EnablesSent != 1 {
					h.t.Fatalf("EnablesSent = %d, want 1", h.s.Stats.EnablesSent)
				}
			},
			want: StateEnable,
		},

		// ---- S_ENABLE ----------------------------------------------------
		{
			name: "enable/return-clears-fence-resumes-detection",
			run: func(h *fsmHarness) {
				// Start past cycle 0: recoveryStart == 0 means "no round
				// open" to the record keeper.
				h.at(1)
				h.activate()
				h.occupyBubble()
				h.tick()
				h.at(h.f.deadline)
				h.tick() // guard expiry with occupied bubble -> S_ENABLE
				h.deliver(&Message{Type: MsgEnable, Src: h.node, Heading: geom.East, Seq: h.f.seq})
				if h.r.Fence.Active {
					h.t.Fatal("own fence not cleared on enable return")
				}
				if recs := h.c.RecoveryRecords(); len(recs) != 1 || recs[0].PathLen != 4 {
					h.t.Fatalf("recovery records = %+v, want one with PathLen 4", recs)
				}
				// The dependence packet and the stale bubble occupant are
				// still buffered: detection must resume, not switch off.
			},
			want: StateDD,
		},
		{
			name: "enable/return-on-drained-router-switches-off",
			run: func(h *fsmHarness) {
				dep := h.latch(true)
				h.disableReturn()
				vc := h.r.VCAt(h.s.Cfg, h.f.probeIn, 0, 0)
				if vc.Pkt != dep {
					h.t.Fatal("dependence packet not where expected")
				}
				h.s.RemovePacket(vc, h.node, h.f.probeIn)
				h.tick() // vanished dependence -> S_CHECK_PROBE
				h.at(h.f.deadline)
				h.tick() // timeout -> S_ENABLE
				h.deliver(&Message{Type: MsgEnable, Src: h.node, Heading: geom.East, Seq: h.f.seq})
			},
			want: StateOff,
		},
		{
			name: "enable/timeout-at-boundary-retransmits",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.at(h.f.deadline)
				h.tick() // disable timeout -> S_ENABLE, EnablesSent = 1
				h.at(h.f.deadline - 1)
				h.tick()
				if h.s.Stats.EnablesSent != 1 {
					h.t.Fatal("retransmitted one cycle early")
				}
				h.at(h.f.deadline)
				h.tick()
				if h.s.Stats.EnablesSent != 2 {
					h.t.Fatalf("EnablesSent = %d after retransmission deadline, want 2", h.s.Stats.EnablesSent)
				}
				if h.f.enableRetries != 1 {
					h.t.Fatalf("enableRetries = %d, want 1", h.f.enableRetries)
				}
			},
			want: StateEnable,
		},
		{
			name: "enable/retry-limit-abandons-round",
			run: func(h *fsmHarness) {
				h.latch(true)
				h.at(h.f.deadline)
				h.tick() // -> S_ENABLE
				h.f.enableRetries = 32
				sent := h.s.Stats.EnablesSent
				h.at(h.f.deadline)
				h.tick() // 33rd retry: abandon, resume detection
				if h.s.Stats.EnablesSent != sent {
					h.t.Fatal("abandoning round must not retransmit")
				}
				// The dependence packet is still buffered: back to S_DD.
			},
			want: StateDD,
		},

		// ---- SPIN mode ---------------------------------------------------
		{
			name: "spin/disable-return-rotates-and-checks",
			opt:  Options{Spin: true},
			run: func(h *fsmHarness) {
				h.latchRing()
				h.disableReturn()
				if h.s.Stats.SpinRotations != 1 {
					h.t.Fatalf("SpinRotations = %d, want 1", h.s.Stats.SpinRotations)
				}
				if h.s.Stats.DeadlockRecoveries != 1 || h.s.Stats.CheckProbesSent != 1 {
					h.t.Fatalf("recoveries %d / check_probes %d, want 1/1",
						h.s.Stats.DeadlockRecoveries, h.s.Stats.CheckProbesSent)
				}
				if h.r.Bubble.Active {
					h.t.Fatal("SPIN must not switch the bubble on")
				}
			},
			want: StateCheckProbe,
		},
		{
			name: "spin/check-probe-return-re-rotates",
			opt:  Options{Spin: true},
			run: func(h *fsmHarness) {
				h.latchRing()
				h.disableReturn()
				// The rotation stamps ReadyAt = now + hopLatency; the next
				// rotation needs the heads ready again.
				h.at(h.s.Now + h.c.hopLatency)
				h.checkProbeReturn()
				if h.s.Stats.SpinRotations != 2 {
					h.t.Fatalf("SpinRotations = %d, want 2", h.s.Stats.SpinRotations)
				}
				if h.s.Stats.CheckProbesSent != 2 {
					h.t.Fatalf("CheckProbesSent = %d, want 2", h.s.Stats.CheckProbesSent)
				}
			},
			want: StateCheckProbe,
		},
		{
			name: "spin/check-probe-return-chain-gone-enables",
			opt:  Options{Spin: true},
			run: func(h *fsmHarness) {
				nodes := h.latchRing()
				h.disableReturn()
				h.at(h.s.Now + h.c.hopLatency)
				// Break the ring at its second router.
				r2 := &h.s.Routers[nodes[1]]
				for _, in := range geom.LinkDirs {
					for i := range r2.In[in] {
						h.s.RemovePacket(&r2.In[in][i], nodes[1], in)
					}
				}
				h.checkProbeReturn()
				if h.s.Stats.SpinRotations != 1 {
					h.t.Fatalf("SpinRotations = %d, want 1 (no rotation of a broken chain)", h.s.Stats.SpinRotations)
				}
				if h.s.Stats.EnablesSent != 1 {
					h.t.Fatalf("EnablesSent = %d, want 1", h.s.Stats.EnablesSent)
				}
			},
			want: StateEnable,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newFSMHarness(t, tc.opt)
			tc.run(h)
			if h.f.state != tc.want {
				t.Fatalf("final state %v, want %v", h.f.state, tc.want)
			}
		})
	}
}

// TestFSMSpinRotationMovesEveryPacket pins the SPIN rotation semantics
// end to end: after one rotation each ring slot holds its predecessor's
// packet with its hop count advanced.
func TestFSMSpinRotationMovesEveryPacket(t *testing.T) {
	h := newFSMHarness(t, Options{Spin: true})
	nodes := h.latchRing()
	n := len(nodes)
	before := make([]*network.Packet, n)
	headings := make([]geom.Direction, n)
	for i := range nodes {
		headings[i] = geom.DirectionBetween(h.topo.Coord(nodes[i]), h.topo.Coord(nodes[(i+1)%n]))
	}
	for i, nd := range nodes {
		in := headings[(i+n-1)%n].Opposite()
		before[i] = h.s.Routers[nd].VCAt(h.s.Cfg, in, 0, 0).Pkt
	}
	h.disableReturn()
	for i, nd := range nodes {
		in := headings[(i+n-1)%n].Opposite()
		got := h.s.Routers[nd].VCAt(h.s.Cfg, in, 0, 0).Pkt
		want := before[(i+n-1)%n]
		if got != want {
			t.Fatalf("slot %d holds packet %v, want predecessor's %v", i, got, want)
		}
		if got.Hop != 1 {
			t.Fatalf("slot %d packet hop = %d, want 1", i, got.Hop)
		}
	}
}
