package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// FuzzCoverageLemma drives the coverage lemma with arbitrary fault
// patterns: whatever combination of link and router failures the fuzzer
// invents, no buffer-dependency cycle may avoid all static bubbles.
// Run with `go test -fuzz=FuzzCoverageLemma ./internal/core`.
func FuzzCoverageLemma(f *testing.F) {
	f.Add(uint8(8), uint8(8), int64(1), uint8(20), uint8(5))
	f.Add(uint8(5), uint8(9), int64(77), uint8(40), uint8(0))
	f.Add(uint8(12), uint8(3), int64(123), uint8(0), uint8(15))
	f.Add(uint8(2), uint8(2), int64(9), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, w, h uint8, seed int64, linkFaults, routerFaults uint8) {
		width := int(w%12) + 2
		height := int(h%12) + 2
		topo := topology.NewMesh(width, height)
		rng := rand.New(rand.NewSource(seed))
		lf := int(linkFaults) % (topology.MaxFaults(width, height, topology.LinkFaults) + 1)
		rf := int(routerFaults) % (width*height/2 + 1)
		topology.RandomLinkFaults(topo, rng, lf)
		topology.RandomRouterFaults(topo, rng, rf)
		if !VerifyCoverage(topo) {
			t.Fatalf("coverage violated on %dx%d with %d link + %d router faults (seed %d): cycle %v",
				width, height, lf, rf, seed, CoverageCounterexample(topo))
		}
	})
}

// FuzzClosedFormCount cross-checks the closed-form bubble count against
// enumeration for arbitrary mesh shapes.
func FuzzClosedFormCount(f *testing.F) {
	f.Add(uint8(8), uint8(8))
	f.Add(uint8(16), uint8(16))
	f.Add(uint8(1), uint8(200))
	f.Fuzz(func(t *testing.T, w, h uint8) {
		width, height := int(w)+1, int(h)+1
		if e, c := PlacementCount(width, height), PlacementCountClosedForm(width, height); e != c {
			t.Fatalf("%dx%d: enumeration %d != closed form %d", width, height, e, c)
		}
	})
}

// FuzzUnidirectionalCoverage exercises the lemma under uDIREC-style
// one-way channel failures.
func FuzzUnidirectionalCoverage(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(99), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, kills uint8) {
		topo := topology.NewMesh(8, 8)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < int(kills); k++ {
			n := geom.NodeID(rng.Intn(64))
			topo.DisableDirectedLink(n, geom.LinkDirs[rng.Intn(4)])
		}
		if !VerifyCoverage(topo) {
			t.Fatalf("unidirectional coverage violated (seed %d, kills %d)", seed, kills)
		}
	})
}
