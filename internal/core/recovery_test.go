package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// enqueueClockwiseRing primes a 2x2 mesh with a guaranteed deadlock:
// every node streams perNode 5-flit packets two hops clockwise.
func enqueueClockwiseRing(s *network.Sim, perNode int) int {
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	total := 0
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := s.Topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := s.Topo.Neighbor(mid, d2)
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

func TestRingDeadlockRecovers(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20})
	if got := c.BubbleRouters(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("2x2 placement = %v, want [3]", got)
	}
	total := enqueueClockwiseRing(s, 12)
	s.Run(20000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (in flight %d, queued %d, state %v)",
			s.Stats.Delivered, total, s.InFlight(), s.QueuedPackets(), c.FSMState(3))
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected at least one deadlock recovery")
	}
	if s.Stats.ProbesSent == 0 || s.Stats.ProbesReturned == 0 {
		t.Fatalf("probe stats: sent %d returned %d", s.Stats.ProbesSent, s.Stats.ProbesReturned)
	}
	if s.Stats.BubbleOccupancies == 0 {
		t.Fatal("expected packets to pass through the static bubble")
	}
}

func TestRingDeadlockRecoveryClearsAllFences(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20})
	enqueueClockwiseRing(s, 12)
	s.Run(20000)
	for id := range s.Routers {
		if s.Routers[id].Fence.Active {
			t.Fatalf("router %d fence still active after drain", id)
		}
		if s.Routers[id].Bubble.Active {
			t.Fatalf("router %d bubble still active after drain", id)
		}
	}
	if st := c.FSMState(3); st != StateOff {
		t.Fatalf("FSM state after drain = %v, want S_OFF", st)
	}
	if c.InFlightMessages() != 0 {
		t.Fatalf("%d control messages still in flight", c.InFlightMessages())
	}
}

func TestRecoveryWithoutCheckProbeAblation(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	Attach(s, Options{TDD: 20, DisableCheckProbe: true})
	total := enqueueClockwiseRing(s, 12)
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("ablation: delivered %d of %d", s.Stats.Delivered, total)
	}
	if s.Stats.CheckProbesSent != 0 {
		t.Fatal("ablation must not send check probes")
	}
}

func TestNoProbesUnderLightLoad(t *testing.T) {
	// Paper Section V-D: at low loads flits leave before even a tiny tDD
	// expires; with the default tDD no probes should appear.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	Attach(s, Options{})
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(3))
	for cyc := 0; cyc < 2000; cyc++ {
		for n := 0; n < 64; n++ {
			if rng.Float64() < 0.002 {
				dst := geom.NodeID(rng.Intn(64))
				if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, 0, 5, r))
				}
			}
		}
		s.Step()
	}
	if s.Stats.ProbesSent != 0 {
		t.Fatalf("sent %d probes at low load, want 0", s.Stats.ProbesSent)
	}
	if s.Stats.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

func TestCongestionFalsePositiveIsHarmless(t *testing.T) {
	// Stall ejection at one node long enough to trip tDD. The probe is
	// sent but the input port is not fully occupied, so it is dropped and
	// the network proceeds normally once the stall ends.
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	c := Attach(s, Options{TDD: 10})
	// One packet from node 1 to node 3 (a bubble node), stalled at
	// ejection.
	s.Routers[3].OutFreeAt[geom.Local] = 100
	p := s.NewPacket(1, 3, 0, 5, routing.Route{geom.North})
	s.Enqueue(p)
	s.Run(400)
	if p.DeliveredAt < 0 {
		t.Fatal("packet should be delivered after the stall")
	}
	if s.Stats.DeadlockRecoveries != 0 {
		t.Fatal("a pure ejection stall must not trigger recovery")
	}
	if c.FSMState(3) != StateOff {
		t.Fatalf("FSM should be off, got %v", c.FSMState(3))
	}
}

// buildDeadlockOn44 primes a 4-node square loop on a 4x4 mesh around the
// cycle (1,1)→(2,1)→(2,2)→(1,2)→(1,1) (counterclockwise in id terms).
func buildDeadlockOn44(s *network.Sim, perNode int) int {
	topo := s.Topo
	loop := []geom.NodeID{
		topo.ID(geom.Coord{X: 1, Y: 1}),
		topo.ID(geom.Coord{X: 2, Y: 1}),
		topo.ID(geom.Coord{X: 2, Y: 2}),
		topo.ID(geom.Coord{X: 1, Y: 2}),
	}
	total := 0
	for i, n := range loop {
		next := loop[(i+1)%4]
		next2 := loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

func TestInnerLoopDeadlockRecoversOn4x4(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	Attach(s, Options{TDD: 20})
	total := buildDeadlockOn44(s, 12)
	s.Run(30000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d)",
			s.Stats.Delivered, total, s.Stats.DeadlockRecoveries)
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recoveries on the inner loop")
	}
}

func TestHighLoadRandomTrafficAlwaysDrains(t *testing.T) {
	// Liveness under deadlock-inducing uniform-random minimal-routing
	// traffic on irregular topologies: after injection stops, the network
	// must drain completely (deadlocks recovered), across several seeds.
	// The 0.10 flits/node/cycle load is well beyond the deadlock-onset
	// rates of Fig. 3 and an order of magnitude beyond real workloads
	// (Section I); recoveries are expected to fire.
	totalRecoveries := int64(0)
	for seed := int64(0); seed < 4; seed++ {
		topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, seed)
		min := routing.NewMinimal(topo)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
		Attach(s, Options{TDD: 24, Placement: Placement(6, 6)})
		rng := rand.New(rand.NewSource(seed + 100))
		offered := int64(0)
		for cyc := 0; cyc < 4000; cyc++ {
			if cyc < 2500 {
				for n := 0; n < 36; n++ {
					if !topo.RouterAlive(geom.NodeID(n)) {
						continue
					}
					if rng.Float64() < 0.10 {
						dst := geom.NodeID(rng.Intn(36))
						r, ok := min.Route(geom.NodeID(n), dst, rng)
						if !ok {
							s.Drop()
							continue
						}
						ln := 1
						if rng.Intn(2) == 0 {
							ln = 5
						}
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
						offered++
					}
				}
			}
			s.Step()
		}
		// Allow a long drain horizon.
		for i := 0; i < 200000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
			s.Run(100)
		}
		if s.InFlight()+s.QueuedPackets() != 0 {
			t.Fatalf("seed %d: %d in flight, %d queued after drain horizon (recoveries %d, probes %d)",
				seed, s.InFlight(), s.QueuedPackets(), s.Stats.DeadlockRecoveries, s.Stats.ProbesSent)
		}
		if s.Stats.Delivered != offered {
			t.Fatalf("seed %d: delivered %d of %d", seed, s.Stats.Delivered, offered)
		}
		totalRecoveries += s.Stats.DeadlockRecoveries
	}
	if totalRecoveries == 0 {
		t.Fatal("no deadlock recoveries across all seeds: the load did not exercise recovery")
	}
}

func TestSaturationCollapseCharacterization(t *testing.T) {
	// Known limitation (also the motivation for the SPIN/SWAP follow-up
	// work): with one spare buffer per SB router, deeply oversubscribed
	// traffic can strand occupants in every reachable bubble and exhaust
	// the design's recovery capacity — the network stops draining even
	// though every individual deadlocked ring is covered. This test pins
	// the *graceful* part of that behaviour: recoveries keep firing,
	// substantial traffic is still delivered, the liveness guards tear
	// fences down (no permanent protocol-held resources at non-recovering
	// routers), and accounting stays consistent.
	seed := int64(0)
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, seed)
	min := routing.NewMinimal(topo)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
	c := Attach(s, Options{TDD: 24, Placement: Placement(6, 6)})
	rng := rand.New(rand.NewSource(seed + 100))
	offered := int64(0)
	for cyc := 0; cyc < 4000; cyc++ {
		if cyc < 2500 {
			for n := 0; n < 36; n++ {
				if !topo.RouterAlive(geom.NodeID(n)) {
					continue
				}
				if rng.Float64() < 0.30 { // ~20x oversubscription
					dst := geom.NodeID(rng.Intn(36))
					r, ok := min.Route(geom.NodeID(n), dst, rng)
					if !ok {
						s.Drop()
						continue
					}
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 1+4*rng.Intn(2), r))
					offered++
				}
			}
		}
		s.Step()
	}
	s.Run(30000)
	if s.Stats.Delivered+s.InFlight()+s.QueuedPackets() != offered {
		t.Fatal("conservation violated under saturation collapse")
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recoveries under saturation")
	}
	if s.Stats.Delivered < offered/20 {
		t.Fatalf("delivered only %d of %d even before collapse", s.Stats.Delivered, offered)
	}
	// Every active fence must belong to an FSM currently in recovery;
	// stale fences would mean the teardown guards failed.
	inRecovery := map[geom.NodeID]bool{}
	for _, n := range c.BubbleRouters() {
		if c.FSMState(n).inRecovery() {
			inRecovery[n] = true
		}
	}
	for id := range s.Routers {
		fe := s.Routers[id].Fence
		if fe.Active && !inRecovery[fe.SrcID] {
			t.Fatalf("router %d holds a stale fence from %v (FSM state %v)",
				id, fe.SrcID, c.FSMState(fe.SrcID))
		}
	}
}

func TestTwoIndependentDeadlocksRecoverInParallel(t *testing.T) {
	// An 8x8 mesh with two disjoint 4-node loops, each covered by its own
	// bubble router.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(6)))
	Attach(s, Options{TDD: 20})
	mk := func(ox, oy int) int {
		loop := []geom.NodeID{
			topo.ID(geom.Coord{X: ox, Y: oy}),
			topo.ID(geom.Coord{X: ox + 1, Y: oy}),
			topo.ID(geom.Coord{X: ox + 1, Y: oy + 1}),
			topo.ID(geom.Coord{X: ox, Y: oy + 1}),
		}
		total := 0
		for i, n := range loop {
			next := loop[(i+1)%4]
			next2 := loop[(i+2)%4]
			d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
			d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
			for k := 0; k < 10; k++ {
				s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
				total++
			}
		}
		return total
	}
	total := mk(0, 0) + mk(5, 5)
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d)", s.Stats.Delivered, total, s.Stats.DeadlockRecoveries)
	}
	if s.Stats.DeadlockRecoveries < 2 {
		t.Fatalf("expected recoveries in both loops, got %d", s.Stats.DeadlockRecoveries)
	}
}

func TestAttachSkipsDeadBubbleRouters(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	bubble := topo.ID(geom.Coord{X: 1, Y: 1})
	topo.DisableRouter(bubble)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	c := Attach(s, Options{})
	for _, n := range c.BubbleRouters() {
		if n == bubble {
			t.Fatal("dead router must not carry an FSM")
		}
	}
	if len(c.BubbleRouters()) != 20 {
		t.Fatalf("expected 20 live bubble routers, got %d", len(c.BubbleRouters()))
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	run := func() network.Stats {
		topo := topology.NewMesh(2, 2)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		Attach(s, Options{TDD: 20})
		enqueueClockwiseRing(s, 12)
		s.Run(20000)
		return s.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("recovery not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestMsgTypeStringsAndPriorities(t *testing.T) {
	if MsgProbe.String() != "probe" || MsgDisable.String() != "disable" ||
		MsgEnable.String() != "enable" || MsgCheckProbe.String() != "check_probe" {
		t.Fatal("unexpected MsgType strings")
	}
	if MsgType(9).String() != "MsgType(9)" {
		t.Fatal("fallback string broken")
	}
	if !(MsgCheckProbe.priority() > MsgDisable.priority() &&
		MsgDisable.priority() == MsgEnable.priority() &&
		MsgEnable.priority() > MsgProbe.priority()) {
		t.Fatal("priority order violates Section IV-C")
	}
}

func TestStateStrings(t *testing.T) {
	wants := map[State]string{
		StateOff: "S_OFF", StateDD: "S_DD", StateDisable: "S_DISABLE",
		StateSBActive: "S_SB_ACTIVE", StateCheckProbe: "S_CHECK_PROBE",
		StateEnable: "S_ENABLE", State(9): "State(9)",
	}
	for st, w := range wants {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), w)
		}
	}
	if StateOff.inRecovery() || StateDD.inRecovery() {
		t.Error("Off/DD are not recovery states")
	}
	for _, st := range []State{StateDisable, StateSBActive, StateCheckProbe, StateEnable} {
		if !st.inRecovery() {
			t.Errorf("%v should be a recovery state", st)
		}
	}
}

// primeRectLoop wedges a w×h rectangle of routers anchored at (x0, y0)
// with clockwise streams (each packet travels half the perimeter).
func primeRectLoop(s *network.Sim, x0, y0, w, h, perNode int) int {
	topo := s.Topo
	var loop []geom.NodeID
	for x := x0; x < x0+w; x++ {
		loop = append(loop, topo.ID(geom.Coord{X: x, Y: y0}))
	}
	for y := y0 + 1; y < y0+h; y++ {
		loop = append(loop, topo.ID(geom.Coord{X: x0 + w - 1, Y: y}))
	}
	for x := x0 + w - 2; x >= x0; x-- {
		loop = append(loop, topo.ID(geom.Coord{X: x, Y: y0 + h - 1}))
	}
	for y := y0 + h - 2; y > y0; y-- {
		loop = append(loop, topo.ID(geom.Coord{X: x0, Y: y}))
	}
	n := len(loop)
	total := 0
	for i, src := range loop {
		hops := n / 2
		var route routing.Route
		cur := src
		for k := 1; k <= hops; k++ {
			next := loop[(i+k)%n]
			route = append(route, geom.DirectionBetween(s.Topo.Coord(cur), s.Topo.Coord(next)))
			cur = next
		}
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(src, cur, 0, 5, route))
			total++
		}
	}
	return total
}

func TestRecoveryLatencyScalesWithPathLength(t *testing.T) {
	// Table I: SB's deadlock-resolution time depends on the length of the
	// deadlocked path (the disable/enable must traverse it). Wedge loops
	// of growing perimeter and compare measured recovery durations.
	type loopCase struct {
		w, h      int
		perimeter int
	}
	cases := []loopCase{{2, 2, 4}, {3, 3, 8}, {4, 4, 12}}
	meanDur := make([]float64, len(cases))
	for ci, lc := range cases {
		topo := topology.NewMesh(8, 8)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(int64(ci)+1)))
		c := Attach(s, Options{TDD: 20})
		total := primeRectLoop(s, 1, 1, lc.w, lc.h, 8)
		s.Run(60000)
		if s.Stats.Delivered != int64(total) {
			t.Fatalf("%dx%d loop: delivered %d of %d", lc.w, lc.h, s.Stats.Delivered, total)
		}
		recs := c.RecoveryRecords()
		if len(recs) == 0 {
			t.Fatalf("%dx%d loop: no recovery records", lc.w, lc.h)
		}
		var sum float64
		var maxPath int64
		for _, r := range recs {
			sum += float64(r.Duration)
			if r.PathLen > maxPath {
				maxPath = r.PathLen
			}
			// Each recovery spans at least the disable+enable round trips.
			if r.Duration < 2*r.PathLen {
				t.Fatalf("recovery duration %d below the 2x path-length floor (path %d)",
					r.Duration, r.PathLen)
			}
		}
		meanDur[ci] = sum / float64(len(recs))
		if maxPath < int64(lc.perimeter) {
			t.Fatalf("%dx%d loop: longest latched path %d < perimeter %d",
				lc.w, lc.h, maxPath, lc.perimeter)
		}
	}
	if !(meanDur[0] < meanDur[2]) {
		t.Fatalf("recovery duration does not grow with path length: %v", meanDur)
	}
}

func TestRecoveryWithSlowerRouters(t *testing.T) {
	// The protocol's fixed-delay property must hold for any configured
	// router/link latency, not just the paper's 1+1.
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{RouterLatency: 2, LinkLatency: 2},
		rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 30})
	total := enqueueClockwiseRing(s, 12)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d with 2+2 latency", s.Stats.Delivered, total)
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recoveries")
	}
	for _, r := range c.RecoveryRecords() {
		if r.Duration < 4*r.PathLen {
			t.Fatalf("duration %d below 4x path %d (hop latency 4)", r.Duration, r.PathLen)
		}
	}
}

func TestSpinModeRecoversRingWithoutBubble(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	Attach(s, Options{TDD: 20, Spin: true})
	total := enqueueClockwiseRing(s, 12)
	s.Run(20000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("spin mode delivered %d of %d (rotations %d)",
			s.Stats.Delivered, total, s.Stats.SpinRotations)
	}
	if s.Stats.SpinRotations == 0 {
		t.Fatal("expected spin rotations")
	}
	if s.Stats.BubbleOccupancies != 0 {
		t.Fatal("spin mode must not use the bubble")
	}
}

func TestSpinModeHandlesLargerLoops(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	Attach(s, Options{TDD: 20, Spin: true})
	total := primeRectLoop(s, 1, 1, 4, 4, 8)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (rotations %d)",
			s.Stats.Delivered, total, s.Stats.SpinRotations)
	}
}

func TestSpinModeOutperformsBubbleUnderSaturation(t *testing.T) {
	// SPIN's rotation needs no spare buffer, so it cannot be poisoned by
	// stranded occupants: on the saturation-collapse workload (see
	// TestSaturationCollapseCharacterization) it sustains recovery far
	// longer and delivers a multiple of plain Static Bubble's traffic.
	// (Neither fully drains a 20x oversubscription — the full SPIN
	// protocol's probe enhancements are not modeled.)
	run := func(spin bool) int64 {
		seed := int64(0)
		topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, seed)
		min := routing.NewMinimal(topo)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
		Attach(s, Options{TDD: 24, Placement: Placement(6, 6), Spin: spin})
		rng := rand.New(rand.NewSource(seed + 100))
		for cyc := 0; cyc < 4000; cyc++ {
			if cyc < 2500 {
				for n := 0; n < 36; n++ {
					if !topo.RouterAlive(geom.NodeID(n)) {
						continue
					}
					if rng.Float64() < 0.30 {
						dst := geom.NodeID(rng.Intn(36))
						r, ok := min.Route(geom.NodeID(n), dst, rng)
						if !ok {
							s.Drop()
							continue
						}
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 1+4*rng.Intn(2), r))
					}
				}
			}
			s.Step()
		}
		s.Run(30000)
		return s.Stats.Delivered
	}
	bubble := run(false)
	spin := run(true)
	if spin < bubble*3/2 {
		t.Fatalf("SPIN delivered %d, plain SB %d; expected a clear advantage", spin, bubble)
	}
}

func TestLivenessMatrixAcrossConfigurations(t *testing.T) {
	// Drain-liveness across the configuration space: every option
	// combination must deliver every packet of a deadlock-inducing
	// workload.
	// fullDrain variants hold the fences through a chain's whole drain
	// (the check_probe loop) and detect promptly; they must deliver every
	// packet. The partial variants disable one of those properties and
	// lose the race against ring refill near saturation — a measured
	// finding (the paper's footnote 7 frames check_probe as a latency
	// optimization only; at this load it is load-bearing for drain
	// completeness). They still must deliver the vast majority.
	configs := []struct {
		name      string
		opt       Options
		fullDrain bool
	}{
		{"default", Options{TDD: 24}, true},
		{"spin", Options{TDD: 24, Spin: true}, true},
		{"hair_trigger", Options{TDD: 5}, true},
		{"no_check_probe", Options{TDD: 24, DisableCheckProbe: true}, false},
		{"slow_detect", Options{TDD: 100}, false},
		{"tight_turn_capacity", Options{TDD: 24, MaxTurns: 16}, false},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 2; seed++ {
				topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, seed)
				min := routing.NewMinimal(topo)
				s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
				opt := cfg.opt
				opt.Placement = Placement(6, 6)
				Attach(s, opt)
				rng := rand.New(rand.NewSource(seed + 100))
				offered := int64(0)
				for cyc := 0; cyc < 4000; cyc++ {
					if cyc < 2500 {
						for n := 0; n < 36; n++ {
							if !topo.RouterAlive(geom.NodeID(n)) || rng.Float64() >= 0.10 {
								continue
							}
							dst := geom.NodeID(rng.Intn(36))
							r, ok := min.Route(geom.NodeID(n), dst, rng)
							if !ok {
								s.Drop()
								continue
							}
							ln := 1
							if rng.Intn(2) == 0 {
								ln = 5
							}
							s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
							offered++
						}
					}
					s.Step()
				}
				for i := 0; i < 300000 && s.InFlight()+s.QueuedPackets() > 0; i += 200 {
					s.Run(200)
				}
				if cfg.fullDrain {
					if s.Stats.Delivered != offered {
						t.Fatalf("seed %d: delivered %d of %d (recoveries %d, spins %d)",
							seed, s.Stats.Delivered, offered,
							s.Stats.DeadlockRecoveries, s.Stats.SpinRotations)
					}
				} else if s.Stats.Delivered < offered*60/100 {
					t.Fatalf("seed %d: delivered %d of %d — even a degraded variant should clear 60%%",
						seed, s.Stats.Delivered, offered)
				}
			}
		})
	}
}

func TestEnableRetryLimitReleasesAfterPathDeath(t *testing.T) {
	// Kill a link of the latched cycle while the recovery is in flight:
	// the enable can never complete its loop, and without a retry bound
	// the FSM would hold its own fence forever.
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20})
	enqueueClockwiseRing(s, 12)
	// Wait for a recovery to start, then sever a ring link.
	for i := 0; i < 4000 && s.Stats.DeadlockRecoveries == 0; i++ {
		s.Step()
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("no recovery started")
	}
	topo.DisableLink(0, geom.North) // ring link 0→2 dies mid-recovery
	s.Run(40000)
	if st := c.FSMState(3); st.inRecovery() {
		t.Fatalf("FSM stuck in %v after path death", st)
	}
	if s.Routers[3].Fence.Active {
		t.Fatal("originator's fence must be released after abandoning the round")
	}
}
