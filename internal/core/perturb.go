package core

import "repro/internal/geom"

// Verdict is a Perturber's decision about one control-message
// transmission. The zero value delivers the message untouched.
type Verdict struct {
	// Drop loses the message in flight (the originating FSM's timeout
	// handles retransmission, exactly as for an arbitration loss).
	Drop bool
	// Delay adds extra cycles on top of the nominal hop latency; it must
	// be non-negative. A held-back message can be overtaken by later
	// messages on the same link, which is how reordering is modeled.
	Delay int64
	// Dup delivers an additional deep copy of the message (its own Turns
	// buffer — duplicates must never alias pooled message state).
	Dup bool
	// DupDelay is the extra delay of the duplicate relative to the
	// nominal arrival; it must be non-negative.
	DupDelay int64
}

// Perturber is the control-plane perturbation hook (Options.Perturb):
// it is consulted once per control-message transmission over a link —
// original sends, per-hop forwards, and probe forks alike — and returns
// a Verdict. Implementations must be deterministic given their own seed
// and the call sequence; the controller calls it in a fixed order each
// cycle, so identically seeded simulations stay byte-identical (the
// property the differential harness checks).
//
// The default path (Options.Perturb == nil) costs one nil check and
// allocates nothing.
type Perturber interface {
	PerturbMsg(now int64, from geom.NodeID, out geom.Direction, typ MsgType) Verdict
}

// transmit places m in flight after applying any configured
// perturbation. It owns m: the message is either appended to the
// in-flight set (possibly delayed) or recycled (dropped). from/out name
// the link the message is crossing.
func (c *Controller) transmit(m *Message, from geom.NodeID, out geom.Direction) {
	if c.opt.Perturb == nil {
		c.msgs = append(c.msgs, m)
		return
	}
	v := c.opt.Perturb.PerturbMsg(c.sim.Now, from, out, m.Type)
	if v.Dup {
		// Deep copy: the duplicate gets its own Turns buffer. Sharing the
		// original's backing array would corrupt both copies as each hop
		// consumes turns, and recycling one would poison the other
		// (freeMsg resets Turns in place).
		d := c.newMsg()
		d.Type = m.Type
		d.Src = m.Src
		d.Vnet = m.Vnet
		d.At = m.At
		d.Heading = m.Heading
		d.Turns = append(d.Turns[:0], m.Turns...)
		d.NextAt = m.NextAt + v.DupDelay
		d.Seq = m.Seq
		d.OutPort = m.OutPort
		c.msgs = append(c.msgs, d)
		if c.opt.Trace != nil {
			c.trace(from, "perturb: duplicated %v(src=%v) out=%v (+%d cycles)", m.Type, m.Src, out, v.DupDelay)
		}
	}
	if v.Drop {
		if c.opt.Trace != nil {
			c.trace(from, "perturb: dropped %v(src=%v) out=%v", m.Type, m.Src, out)
		}
		c.freeMsg(m)
		return
	}
	m.NextAt += v.Delay
	if c.opt.Trace != nil && v.Delay > 0 {
		c.trace(from, "perturb: delayed %v(src=%v) out=%v by %d cycles", m.Type, m.Src, out, v.Delay)
	}
	c.msgs = append(c.msgs, m)
}

// CheckMessagePool verifies the control-message pool invariants: no
// message is pooled twice (a double free), no in-flight message is
// simultaneously pooled (a use-after-free), and no two distinct pooled
// or in-flight messages alias one Turns backing array. Used by the
// perturbation fuzz target — duplication and drop paths each recycle
// exactly once, and this check is how a violation surfaces.
func (c *Controller) CheckMessagePool() error {
	seen := make(map[*Message]string, len(c.msgPool)+len(c.msgs))
	for _, m := range c.msgPool {
		if m == nil {
			return errMsgPool("nil entry in pool")
		}
		if where, dup := seen[m]; dup {
			return errMsgPool("message pooled twice (" + where + ")")
		}
		seen[m] = "pool"
	}
	for _, m := range c.msgs {
		if where, dup := seen[m]; dup {
			return errMsgPool("in-flight message also " + where)
		}
		seen[m] = "in-flight"
	}
	turns := make(map[*geom.Turn]string, len(seen))
	for m, where := range seen {
		if cap(m.Turns) == 0 {
			continue
		}
		head := &m.Turns[:cap(m.Turns)][0]
		if prev, dup := turns[head]; dup {
			return errMsgPool("turn buffer aliased between " + prev + " and " + where + " messages")
		}
		turns[head] = where
	}
	return nil
}

// errMsgPool is the error type of CheckMessagePool violations.
type errMsgPool string

func (e errMsgPool) Error() string { return "core: message pool corrupted: " + string(e) }
