package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Tests for the corner cases the paper answers explicitly in Section
// IV-B ("The Devil is in the Details"). Each test name quotes the
// question it covers.

// "What happens if there are two or more static bubble nodes in a
// deadlocked cycle and both send out probes?" — the higher id resolves.
func TestQATwoSBNodesOnOneCycleHigherIDResolves(t *testing.T) {
	// The 3x3 boundary ring of an 8x8 mesh anchored at (1,1) passes SB
	// routers 9, 11, 25, 27 (27 highest).
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20})
	total := primeRectLoop(s, 1, 1, 3, 3, 8)
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, total)
	}
	recs := c.RecoveryRecords()
	if len(recs) == 0 {
		t.Fatal("no recoveries")
	}
	for _, r := range recs {
		if r.Node != 27 {
			t.Fatalf("recovery resolved by %v; the highest-id SB on the cycle is 27", r.Node)
		}
	}
}

// "What if there are deadlocks in two cycles that are both sharing only
// one static bubble?" — it resolves them one after the other.
func TestQATwoCyclesSharingOneSBResolveSerially(t *testing.T) {
	// On a 4x4 mesh the SB routers are 5=(1,1), 7=(3,1), 10=(2,2),
	// 13=(1,3), 15=(3,3). Wedge the two unit squares sharing corner (1,1): the
	// square at (0,0) and the square at (1,1). Only SB 5 covers the first;
	// 5 is also on the second.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	Attach(s, Options{TDD: 20})
	total := primeRectLoop(s, 0, 0, 2, 2, 10) + primeRectLoop(s, 1, 1, 2, 2, 10)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d)",
			s.Stats.Delivered, total, s.Stats.DeadlockRecoveries)
	}
	if s.Stats.DeadlockRecoveries < 2 {
		t.Fatalf("expected serial recoveries of both cycles, got %d", s.Stats.DeadlockRecoveries)
	}
}

// "Can a probe loop around infinitely due to buffer dependency?" — no:
// the turn capacity bounds it.
func TestQAProbeTurnCapacityBoundsTraversal(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	// Tiny turn capacity: probes die before completing the 12-hop loop.
	c := Attach(s, Options{TDD: 20, MaxTurns: 4})
	total := primeRectLoop(s, 1, 1, 4, 4, 8) // 12-hop perimeter
	s.Run(8000)
	if s.Stats.ProbesReturned != 0 {
		t.Fatalf("probe returned despite turn capacity 4 on a 12-hop cycle (returns=%d)",
			s.Stats.ProbesReturned)
	}
	if s.Stats.Delivered >= int64(total) {
		t.Fatal("without completed probes the wedge must persist")
	}
	_ = c
}

// "Can false positives lead to enabling of the static bubble?" — yes,
// under congestion-made dependence cycles, and it is harmless: the chain
// moves one step and the bubble turns off again.
func TestQAFalsePositiveActivationIsHarmless(t *testing.T) {
	// A ring workload that is congested but NOT deadlocked: same square
	// streams but with only 2 packets per corner (the 16 regular VCs of
	// the ring ports never all fill for long). Recovery may or may not
	// trigger; either way everything drains and all state clears.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	c := Attach(s, Options{TDD: 5}) // hair-trigger detection
	total := primeRectLoop(s, 1, 1, 2, 2, 2)
	s.Run(10000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, total)
	}
	for id := range s.Routers {
		if s.Routers[id].Fence.Active || s.Routers[id].Bubble.Active {
			t.Fatalf("router %d left with active fence/bubble after drain", id)
		}
	}
	for _, n := range c.BubbleRouters() {
		if st := c.FSMState(n); st != StateOff {
			t.Fatalf("FSM %v left in %v", n, st)
		}
	}
}

// "Can a non static bubble node receive more than one disable, one after
// the other?" — a second disable is dropped while the is_deadlock bit is
// set (verified at unit level in controller_test.go); here we verify the
// system-level consequence: two simultaneous deadlocked cycles crossing
// at a shared router still both resolve.
func TestQACrossingCyclesSharingARouterBothResolve(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	Attach(s, Options{TDD: 20})
	// Two unit squares sharing corner (2,2): loops at (1,1) and (2,2).
	total := primeRectLoop(s, 1, 1, 2, 2, 10) + primeRectLoop(s, 2, 2, 2, 2, 10)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d)",
			s.Stats.Delivered, total, s.Stats.DeadlockRecoveries)
	}
}

// "What happens if a disable gets dropped midway and does not return to
// the sender node?" — the S_DISABLE timeout sends an enable that clears
// the partial fences.
func TestQADroppedDisableFencesAreCleared(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(6)))
	c := Attach(s, Options{TDD: 20})
	enqueueClockwiseRing(s, 12)

	// Sabotage: the moment any fence appears at router 2, clear the
	// dependence there by teleporting its chain packets' desire (simulate
	// the chain moving on), so any in-flight check_probe/disable logic
	// sees a vanished dependence. Simplest robust sabotage: watch for
	// fences and then allow the run to continue; the protocol's own
	// timeouts must never leave a stale fence regardless.
	for i := 0; i < 20000; i++ {
		s.Step()
	}
	for id := range s.Routers {
		fe := s.Routers[id].Fence
		if fe.Active && !c.FSMState(fe.SrcID).inRecovery() {
			t.Fatalf("stale fence at %d from %v", id, fe.SrcID)
		}
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatal("network did not drain")
	}
}

// "Which state does the FSM of a static bubble node go to, if it receives
// a disable from a higher-id static bubble node?" — S_OFF, resuming on
// the matching enable. Exercised at system level: both SB routers on a
// shared cycle end the run in S_OFF with everything delivered.
func TestQALowerSBNodeParksAndResumes(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	c := Attach(s, Options{TDD: 20})
	total := primeRectLoop(s, 1, 1, 3, 3, 8) // SBs 9, 11, 25, 27 on the ring
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, total)
	}
	for _, n := range []geom.NodeID{9, 11, 25, 27} {
		if st := c.FSMState(n); st != StateOff {
			t.Fatalf("SB %v finished in %v, want S_OFF", n, st)
		}
	}
}

// Sanity helper shared with recovery tests: the rectangle primer must
// produce the documented perimeter.
func TestPrimeRectLoopShape(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(8)))
	total := primeRectLoop(s, 1, 1, 3, 3, 1)
	if total != 8 {
		t.Fatalf("3x3 rect primes %d packets per round, want 8", total)
	}
	// All enqueued routes are valid.
	for id := range s.NIQueue {
		for vnet := range s.NIQueue[id] {
			q := &s.NIQueue[id][vnet]
			for i := 0; i < q.Len(); i++ {
				p := q.At(i)
				if err := routing.Route(p.Route).Validate(topo, p.Src, p.Dst); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}
