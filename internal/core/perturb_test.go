package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/topology"
)

// dupAll duplicates every transmission (no loss, no delay) — the
// worst case for the deep-copy rule: every in-flight message has a twin
// that must not share its Turns backing array.
type dupAll struct{ dupDelay int64 }

func (d dupAll) PerturbMsg(int64, geom.NodeID, geom.Direction, MsgType) Verdict {
	return Verdict{Dup: true, DupDelay: d.dupDelay}
}

// TestDuplicationDeepCopies is the regression test for the freeMsg audit:
// a duplicated control message must carry its own Turns buffer. If the
// duplicate aliased the original's backing array, consuming turns on one
// copy (or recycling it — freeMsg truncates Turns in place) would corrupt
// the other. The test inspects the in-flight set directly after forcing a
// duplicate of a message that carries turns.
func TestDuplicationDeepCopies(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20, Perturb: dupAll{dupDelay: 2}})
	enqueueClockwiseRing(s, 12)

	checked := 0
	for cyc := 0; cyc < 4000; cyc++ {
		s.Step()
		// Scan the in-flight set for sibling copies: same identity, both
		// holding turns. Any shared backing array is the bug.
		for i, a := range c.msgs {
			if cap(a.Turns) == 0 {
				continue
			}
			ah := &a.Turns[:1][0]
			for _, b := range c.msgs[i+1:] {
				if cap(b.Turns) == 0 {
					continue
				}
				if ah == &b.Turns[:1][0] {
					t.Fatalf("cycle %d: messages %v and %v alias one Turns buffer", s.Now, a, b)
				}
			}
			if a.Type != MsgProbe && len(a.Turns) > 0 {
				checked++
			}
		}
		if err := c.CheckMessagePool(); err != nil {
			t.Fatalf("cycle %d: %v", s.Now, err)
		}
	}
	if checked == 0 {
		t.Fatal("no turn-carrying disable/enable/check_probe was ever duplicated — scenario too weak")
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recoveries under full duplication")
	}
}

// TestDuplicatedRoundStillDrains runs the guaranteed ring deadlock to
// completion with every message duplicated at zero extra delay (twins
// processed in the same cycle at the same router — the tightest aliasing
// and double-free window) and checks pool integrity plus full drain.
func TestDuplicatedRoundStillDrains(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s, Options{TDD: 20, Perturb: dupAll{dupDelay: 0}})
	total := enqueueClockwiseRing(s, 12)
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d under full duplication (state %v)",
			s.Stats.Delivered, total, c.FSMState(3))
	}
	if err := c.CheckMessagePool(); err != nil {
		t.Fatal(err)
	}
	if c.InFlightMessages() != 0 {
		t.Fatalf("%d control messages still in flight after drain", c.InFlightMessages())
	}
}
