package core

// Fuzz battery for the irregular-topology sampler and fault injector —
// the input space every experiment sweep and the differential harness
// draw from. For arbitrary mesh shapes, fault kinds and counts, the
// generated topology must satisfy the structural invariants the
// simulator and the recovery protocol rely on: sane edges (no
// self-links, no duplicates, canonical orientation, directed symmetry
// under the undirected fault models), exact fault accounting, graph
// queries that agree with each other (components partition the alive
// set, Connected and BFS distances consistent with them — "connected or
// reported", never silently wrong), determinism in the seed, and the
// paper's coverage corollary: the Section III placement covers every
// irregular topology derived from the mesh, checked through
// VerifyCoverage before AND after a second round of runtime fault
// injection (the round-trip that reconfiguration performs live).

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// checkTopologyInvariants runs the full structural battery on t.
func checkTopologyInvariants(t *testing.T, topo *topology.Topology) {
	t.Helper()
	w, h := topo.Width(), topo.Height()

	// Edge sanity: canonical orientation, in-mesh endpoints, no
	// self-links, no duplicates.
	seen := make(map[topology.UndirectedLink]bool)
	for _, l := range topo.AliveUndirectedLinks() {
		if l.Dir != geom.North && l.Dir != geom.East {
			t.Fatalf("link %v: non-canonical direction %v", l, l.Dir)
		}
		nb := topo.Neighbor(l.From, l.Dir)
		if nb == geom.InvalidNode {
			t.Fatalf("link %v leaves the mesh", l)
		}
		if nb == l.From {
			t.Fatalf("self-link at %v", l.From)
		}
		if got := geom.DirectionBetween(topo.Coord(l.From), topo.Coord(nb)); got != l.Dir {
			t.Fatalf("link %v: endpoints %v,%v are not %v-adjacent", l, l.From, nb, l.Dir)
		}
		if seen[l] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l] = true
	}

	// Directed-channel consistency: under the undirected fault models a
	// channel is usable iff its reverse is, and dead routers have no
	// usable channels in either direction.
	for id := 0; id < w*h; id++ {
		n := geom.NodeID(id)
		for _, d := range geom.LinkDirs {
			nb := topo.Neighbor(n, d)
			if nb == geom.InvalidNode {
				if topo.HasLink(n, d) {
					t.Fatalf("router %v has a %v link off the mesh edge", n, d)
				}
				continue
			}
			if topo.HasLink(n, d) != topo.HasLink(nb, d.Opposite()) {
				t.Fatalf("asymmetric channel %v<->%v (%v)", n, nb, d)
			}
			if !topo.RouterAlive(n) && topo.HasLink(n, d) {
				t.Fatalf("dead router %v still has a usable %v channel", n, d)
			}
		}
	}

	// Graph queries agree: components partition the alive set, and
	// Connected / BFSDistances match component membership.
	alive := topo.AliveRouters()
	comp := make(map[geom.NodeID]int)
	total := 0
	for ci, c := range topo.ConnectedComponents() {
		if len(c) == 0 {
			t.Fatal("empty connected component")
		}
		for _, n := range c {
			if !topo.RouterAlive(n) {
				t.Fatalf("dead router %v in component %d", n, ci)
			}
			if _, dup := comp[n]; dup {
				t.Fatalf("router %v in two components", n)
			}
			comp[n] = ci
		}
		total += len(c)
	}
	if total != len(alive) {
		t.Fatalf("components cover %d routers, %d alive", total, len(alive))
	}
	if len(alive) > 0 {
		src := alive[0]
		dist := topo.BFSDistances(src)
		for _, n := range alive {
			sameComp := comp[n] == comp[src]
			if reach := dist[n] >= 0; reach != sameComp {
				t.Fatalf("BFS reach(%v->%v)=%v but same-component=%v", src, n, reach, sameComp)
			}
			if topo.Connected(src, n) != sameComp {
				t.Fatalf("Connected(%v,%v) disagrees with components", src, n)
			}
		}
	}

	// The coverage corollary: the mesh placement covers every irregular
	// topology derived from it — no buffer-dependency cycle avoids all
	// static-bubble routers.
	if !VerifyCoverage(topo) {
		t.Fatalf("coverage violated on %dx%d irregular topology:\n%v\ncycle: %v",
			w, h, topo, CoverageCounterexample(topo))
	}
}

func FuzzIrregularTopologyInvariants(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(8), uint8(18), uint8(0))
	f.Add(int64(42), uint8(16), uint8(16), uint8(30), uint8(0))
	f.Add(int64(5), uint8(4), uint8(12), uint8(9), uint8(1))
	f.Add(int64(-7), uint8(2), uint8(2), uint8(255), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, wb, hb, faultByte, modeByte uint8) {
		w := 2 + int(wb%9)
		h := 2 + int(hb%9)
		kind := topology.LinkFaults
		if modeByte&1 != 0 {
			kind = topology.RouterFaults
		}
		k := int(faultByte) % (topology.MaxFaults(w, h, kind) + 1)

		topo := topology.RandomIrregular(w, h, kind, k, seed)

		// Exact fault accounting.
		switch kind {
		case topology.LinkFaults:
			if topo.AliveRouterCount() != w*h {
				t.Fatalf("link faults removed a router: %d alive of %d", topo.AliveRouterCount(), w*h)
			}
			if got, want := topo.AliveLinkCount(), topology.MaxFaults(w, h, kind)-k; got != want {
				t.Fatalf("%d links alive after %d faults, want %d", got, k, want)
			}
		case topology.RouterFaults:
			if got, want := topo.AliveRouterCount(), w*h-k; got != want {
				t.Fatalf("%d routers alive after %d faults, want %d", got, k, want)
			}
		}

		checkTopologyInvariants(t, topo)

		// Determinism in the seed: the sampler is the cache key of every
		// sweep cell, so an unstable draw would poison result caches.
		again := topology.RandomIrregular(w, h, kind, k, seed)
		if topo.String() != again.String() {
			t.Fatal("RandomIrregular is not deterministic in its seed")
		}
		for id := 0; id < w*h; id++ {
			n := geom.NodeID(id)
			if topo.RouterAlive(n) != again.RouterAlive(n) {
				t.Fatalf("router %v aliveness differs between identical draws", n)
			}
			for _, d := range geom.LinkDirs {
				if topo.HasLink(n, d) != again.HasLink(n, d) {
					t.Fatalf("channel %v/%v differs between identical draws", n, d)
				}
			}
		}

		// Round-trip: a second round of runtime fault injection (what
		// reconfig performs live) must preserve every invariant,
		// including coverage.
		rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
		if links := topo.AliveLinkCount(); links > 0 {
			topology.RandomLinkFaults(topo, rng, rng.Intn(links+1)/2)
		}
		if routers := topo.AliveRouterCount(); routers > 1 {
			topology.RandomRouterFaults(topo, rng, rng.Intn(routers))
		}
		checkTopologyInvariants(t, topo)
	})
}
