package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The design-time half of the framework: where do the bubbles go, and is
// every possible dependency cycle covered?
func ExamplePlacement() {
	fmt.Println("8x8 bubbles:", core.PlacementCount(8, 8))
	fmt.Println("16x16 bubbles:", core.PlacementCountClosedForm(16, 16))
	fmt.Println("(1,1) has bubble:", core.HasStaticBubble(geom.Coord{X: 1, Y: 1}))
	fmt.Println("(0,5) has bubble:", core.HasStaticBubble(geom.Coord{X: 0, Y: 5}))
	// Output:
	// 8x8 bubbles: 21
	// 16x16 bubbles: 89
	// (1,1) has bubble: true
	// (0,5) has bubble: false
}

// The coverage lemma holds on the mesh and on anything derived from it.
func ExampleVerifyCoverage() {
	topo := topology.NewMesh(8, 8)
	fmt.Println("full mesh covered:", core.VerifyCoverage(topo))
	topology.RandomLinkFaults(topo, rand.New(rand.NewSource(1)), 25)
	topology.RandomRouterFaults(topo, rand.New(rand.NewSource(2)), 6)
	fmt.Println("irregular derivative covered:", core.VerifyCoverage(topo))
	// Output:
	// full mesh covered: true
	// irregular derivative covered: true
}

// The runtime half: attach recovery to a simulator, wedge a ring, watch
// it drain.
func ExampleAttach() {
	topo := topology.NewMesh(2, 2)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(sim, core.Options{TDD: 20})

	// Every node streams two hops clockwise: a guaranteed deadlock.
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	total := 0
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		for k := 0; k < 12; k++ {
			sim.Enqueue(sim.NewPacket(n, topo.Neighbor(mid, d2), 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	sim.Run(20000)
	fmt.Println("delivered:", sim.Stats.Delivered == int64(total))
	fmt.Println("recoveries happened:", sim.Stats.DeadlockRecoveries > 0)
	// Output:
	// delivered: true
	// recoveries happened: true
}
