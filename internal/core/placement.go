// Package core implements the paper's contribution: the Static Bubble
// framework for deadlock-free irregular on-chip topologies.
//
// It has two halves, matching Sections III and IV of the paper:
//
//   - The placement algorithm selects, at design time, the subset of mesh
//     routers that receive one extra packet buffer (a static bubble), such
//     that every possible buffer-dependency cycle — in every irregular
//     topology derivable from the mesh — passes through at least one
//     static-bubble router (21 routers in an 8×8 mesh, 89 in 16×16).
//
//   - The recovery microarchitecture: a 6-state counter FSM per
//     static-bubble router and four bufferless control messages (probe,
//     disable, check_probe, enable) that detect a deadlocked dependency
//     chain, fence it, drain it through the bubble one step at a time,
//     and restore normal operation.
package core

import (
	"repro/internal/geom"
	"repro/internal/topology"
)

// HasStaticBubble reports whether the placement algorithm of Section III
// assigns a static bubble to mesh coordinate c: no bubbles on the first
// row or column, and otherwise a bubble iff one of
//
//	(1) x mod 4 == y mod 4
//	(2) x mod 4 == 1 and y mod 4 == 3
//	(3) x mod 4 == 3 and y mod 4 == 1
func HasStaticBubble(c geom.Coord) bool {
	if c.X <= 0 || c.Y <= 0 {
		return false
	}
	xm, ym := c.X%4, c.Y%4
	return xm == ym || (xm == 1 && ym == 3) || (xm == 3 && ym == 1)
}

// Placement returns the static-bubble routers of a width×height mesh in
// ascending id order.
func Placement(width, height int) []geom.NodeID {
	var out []geom.NodeID
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			c := geom.Coord{X: x, Y: y}
			if HasStaticBubble(c) {
				out = append(out, c.IDOf(width))
			}
		}
	}
	return out
}

// PlacementCount returns the number of static bubbles the algorithm
// places on a width×height mesh by direct enumeration (the canonical
// count; see also PlacementCountClosedForm).
func PlacementCount(width, height int) int {
	n := 0
	for y := 1; y < height; y++ {
		for x := 1; x < width; x++ {
			if HasStaticBubble(geom.Coord{X: x, Y: y}) {
				n++
			}
		}
	}
	return n
}

// PlacementCountClosedForm evaluates the bubble count in closed form via
// residue-class (diagonal) decomposition. The placement condition is
// equivalent to
//
//	(x−y) ≡ 0 (mod 4)   OR   (x+y) ≡ 0 (mod 4) with x odd
//
// over 1 ≤ x ≤ width−1, 1 ≤ y ≤ height−1, and the two clauses are
// disjoint (the second forces x odd, the first with x+y≡0 forces x even).
// This replaces Equation 1 of the paper, whose transcription in our
// source text is corrupted; it is property-tested equal to the exact
// enumeration and reproduces the paper's stated counts (21 for 8×8, 89
// for 16×16). Like Equation 1, it scales linearly in min(width, height).
func PlacementCountClosedForm(width, height int) int {
	// cnt(r, n) = |{ v : 1 ≤ v ≤ n−1, v mod 4 == r }|.
	cnt := func(r, n int) int {
		if n-1 < 1 {
			return 0
		}
		// Values r, r+4, r+8, ... within [1, n-1].
		first := r
		if first == 0 {
			first = 4
		}
		if first > n-1 {
			return 0
		}
		return (n-1-first)/4 + 1
	}
	total := 0
	// Clause 1: x ≡ y (mod 4).
	for r := 0; r < 4; r++ {
		total += cnt(r, width) * cnt(r, height)
	}
	// Clause 2: (x ≡ 1, y ≡ 3) or (x ≡ 3, y ≡ 1).
	total += cnt(1, width)*cnt(3, height) + cnt(3, width)*cnt(1, height)
	return total
}

// VerifyCoverage checks the placement lemma on topology t: it returns
// true iff no buffer-dependency cycle (no-U-turn directed cycle in the
// channel graph) can avoid every static-bubble router. This holds for the
// full mesh and, as the paper's corollary states, for every irregular
// topology derived from it.
func VerifyCoverage(t *topology.Topology) bool {
	return !t.HasNoUTurnCycleExcluding(func(n geom.NodeID) bool {
		return HasStaticBubble(t.Coord(n))
	})
}

// CoverageCounterexample returns a buffer-dependency cycle avoiding all
// static-bubble routers, or nil if the lemma holds on t. Useful for
// debugging alternate placements.
func CoverageCounterexample(t *topology.Topology) []geom.NodeID {
	return t.FindNoUTurnCycle(func(n geom.NodeID) bool {
		return HasStaticBubble(t.Coord(n))
	})
}

// VerifyCustomCoverage checks the lemma for an arbitrary placement set,
// supporting hand-optimized placements (the paper notes some exist with
// fewer bubbles).
func VerifyCustomCoverage(t *topology.Topology, bubbles map[geom.NodeID]bool) bool {
	return !t.HasNoUTurnCycleExcluding(func(n geom.NodeID) bool { return bubbles[n] })
}
