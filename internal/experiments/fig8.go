package experiments

import (
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/topology"
)

// LowLoadRate is the injection rate (flits/node/cycle) used for the
// low-load latency sweep; deadlocks are absent at this rate (Fig. 3), so
// the escape-VC and SB schemes differ from the spanning tree only through
// path length.
const LowLoadRate = 0.02

// Fig8Row is one point of the low-load latency sweep: per-scheme average
// and maximum packet latency, normalized to the spanning-tree baseline,
// averaged over sampled topologies.
type Fig8Row struct {
	Pattern string
	Kind    topology.FaultKind
	Faults  int
	// AvgNorm and MaxNorm are indexed by Scheme.
	AvgNorm [3]float64
	MaxNorm [3]float64
	// AvgAbs is the absolute spanning-tree average latency (cycles), for
	// reference.
	AvgAbs  float64
	Sampled int
}

// Fig8 reproduces the low-load latency comparison (paper Fig. 8) for the
// given traffic patterns ("uniform_random", "bit_complement") across link
// and router fault sweeps. Nil arguments select the paper's ranges.
func Fig8(p Params, patterns []string, faultSteps map[topology.FaultKind][]int) []Fig8Row {
	p = p.withDefaults()
	if patterns == nil {
		patterns = []string{"uniform_random", "bit_complement"}
	}
	if faultSteps == nil {
		faultSteps = map[topology.FaultKind][]int{
			topology.LinkFaults:   stepRange(1, 47, 6),
			topology.RouterFaults: stepRange(1, 29, 4),
		}
	}
	var rows []Fig8Row
	for _, pattern := range patterns {
		for _, kind := range []topology.FaultKind{topology.LinkFaults, topology.RouterFaults} {
			for _, k := range faultSteps[kind] {
				rows = append(rows, fig8Point(p, pattern, kind, k))
			}
		}
	}
	return rows
}

func fig8Point(p Params, pattern string, kind topology.FaultKind, faults int) Fig8Row {
	type res struct {
		Avg, Max [3]float64
		OK       bool
	}
	key := func(i int) *sweep.Key {
		return p.cellKey("fig8").Str("pattern", pattern).
			Str("kind", kind.String()).Int("faults", faults).Int("topo", i)
	}
	results := sweep.Run(p.engine(), p.Topologies, key,
		func(i int, seed int64) (res, error) {
			topo := p.SampleTopology(kind, faults, i)
			var r res
			r.OK = true
			for _, sch := range Schemes {
				inst := p.Build(topo.Clone(), sch, sweep.SubSeed(seed, 2*int(sch)))
				inj := inst.Injector(inst.Pattern(pattern), LowLoadRate, sweep.SubSeed(seed, 2*int(sch)+1))
				m := measure(p, inst, inj)
				if m.Delivered == 0 {
					r.OK = false
					return r, nil
				}
				r.Avg[sch] = m.AvgLatency
				r.Max[sch] = m.MaxLatency
			}
			return r, nil
		})
	row := Fig8Row{Pattern: pattern, Kind: kind, Faults: faults}
	var avgN, maxN [3][]float64
	var treeAbs []float64
	for _, res := range results {
		if !res.OK() || !res.Value.OK {
			continue
		}
		r := res.Value
		treeAbs = append(treeAbs, r.Avg[SpanningTree])
		for _, sch := range Schemes {
			avgN[sch] = append(avgN[sch], safeRatio(r.Avg[sch], r.Avg[SpanningTree]))
			maxN[sch] = append(maxN[sch], safeRatio(r.Max[sch], r.Max[SpanningTree]))
		}
	}
	for _, sch := range Schemes {
		row.AvgNorm[sch] = mean(avgN[sch])
		row.MaxNorm[sch] = mean(maxN[sch])
	}
	row.AvgAbs = mean(treeAbs)
	row.Sampled = len(treeAbs)
	return row
}

// PrintFig8 writes the sweep.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Fig 8: low-load latency normalized to spanning tree (rate %.2f flits/node/cycle)\n", LowLoadRate)
	fmt.Fprintf(w, "%-16s %-8s %-7s %-10s %-10s %-10s %-10s %-9s %s\n",
		"pattern", "kind", "faults", "eVC avg", "SB avg", "eVC max", "SB max", "tree(cyc)", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-8s %-7d %-10.3f %-10.3f %-10.3f %-10.3f %-9.1f %d\n",
			r.Pattern, r.Kind, r.Faults,
			r.AvgNorm[EscapeVC], r.AvgNorm[StaticBubble],
			r.MaxNorm[EscapeVC], r.MaxNorm[StaticBubble],
			r.AvgAbs, r.Sampled)
	}
}
