package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adversary"
)

// tinySpace keeps the smoke search cheap: one fault setting, two
// topologies, aggressive loads, and a couple of knob levels.
func tinySpace() adversary.Space {
	return adversary.Space{
		FaultKinds:  []string{"link"},
		FaultCounts: []int{18},
		Topologies:  2,
		Patterns:    []string{"uniform_random"},
		Traffics:    []string{"bernoulli", "pareto"},
		Rates:       []float64{0.09, 0.15},
		Loss:        []float64{0, 0.2},
		Jitter:      []float64{0, 0.3},
		Reorder:     []float64{0},
		Dup:         []float64{0, 0.2},
	}
}

func tinyParams() Params {
	return Params{
		Width: 8, Height: 8,
		WarmupCycles:  300,
		MeasureCycles: 2000,
		TDD:           24,
	}
}

// TestAdversarySmoke: the end-to-end search runs, produces a non-empty
// sorted SLO table, and is reproducible for a fixed seed and budget —
// the acceptance gate for `sbsweep -fig adversary`.
func TestAdversarySmoke(t *testing.T) {
	cfg := adversary.Config{
		Space: tinySpace(), Restarts: 3, Generations: 4, Neighbors: 3,
		MaxEvals: 24, TopK: 6, Seed: 9,
	}
	r1, err := Adversary(tinyParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Result.Table) == 0 || r1.Result.Evals == 0 {
		t.Fatalf("empty search result: %+v", r1.Result)
	}
	found := false
	for _, e := range r1.Result.Table {
		if e.Outcome.Recoveries > 0 || e.Outcome.Wedged {
			found = true
		}
		if e.Outcome.Wedged {
			// A wedge is a legitimate (and maximal) adversarial finding:
			// per-hop control loss makes full-cycle probe traversal
			// exponentially unlikely, pinning the deadlock in place.
			t.Logf("worst case found: wedged at %s", r1.Space.Describe(e.Gene))
		}
	}
	if !found {
		t.Error("search surfaced neither a recovery nor a wedge — space too tame for an adversary")
	}

	r2, err := Adversary(tinyParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Result.Evals != r2.Result.Evals || len(r1.Result.Table) != len(r2.Result.Table) {
		t.Fatalf("search not reproducible: %+v vs %+v", r1.Result, r2.Result)
	}
	for i := range r1.Result.Table {
		if r1.Result.Table[i] != r2.Result.Table[i] {
			t.Fatalf("table row %d not reproducible:\n%+v\n%+v", i, r1.Result.Table[i], r2.Result.Table[i])
		}
	}

	var buf bytes.Buffer
	PrintAdversary(&buf, r1)
	if !strings.Contains(buf.String(), "score") {
		t.Fatal("table print missing header")
	}
	buf.Reset()
	if err := AdversaryCSV(&buf, r1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(r1.Result.Table)+1 {
		t.Fatalf("CSV has %d lines for %d rows", lines, len(r1.Result.Table))
	}
}

// TestAdversaryPerturbationHurts: the same storm scenario must score at
// least as bad (higher) with a lossy control plane as without — sanity
// that the evaluator actually feeds the knobs through to the simulation.
func TestAdversaryPerturbationHurts(t *testing.T) {
	sp := tinySpace()
	p := tinyParams()
	clean := adversaryEvaluate(p, sp, adversary.Gene{Topo: 1, Rate: 1}, 77)
	lossy := adversaryEvaluate(p, sp, adversary.Gene{Topo: 1, Rate: 1, Loss: 1, Jitter: 1, Dup: 1}, 77)
	if clean.Recoveries == 0 {
		t.Skip("baseline scenario triggered no recoveries at this scale")
	}
	if lossy == clean {
		t.Fatal("perturbation knobs had no effect on the evaluation")
	}
}
