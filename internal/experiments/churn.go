package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// The churn experiment measures what the paper's static analysis cannot:
// availability and recovery-latency SLOs under *continuous* dynamic
// irregularity. Links and routers fail and recover as a Poisson process
// for the whole run (millions of cycles at full scale), with events
// freely overlapping — a second element dies while the first repairs,
// a router recovers while a neighbor is draining. Three contenders:
//
//   - static_bubble: minimal routing + SB recovery. No reconfiguration
//     stall at all; each event costs only the in-place repair of the
//     affected packets (reconfig.Manager), and deadlock recovery is
//     local (the SB FSMs, kept consistent via reconfig.SchemeHandler).
//   - sp_tree: Ariadne-style spanning-tree re-election. Every event
//     triggers a global re-election that stalls injection network-wide
//     for TreeStall cycles ("1000s of cycles", paper Section I).
//   - dbr: a DBR-style dynamic reconfiguration baseline (ValadBeigi et
//     al., PAPERS.md): the up*/down* structure is patched incrementally,
//     so only routers within DBRRadius hops of the event stall, for the
//     much shorter DBRStall window.
//
// Recovery latency of an event is the span from the event to the later
// of (a) its stall window closing and (b) the last packet the event
// damaged leaving the network; availability is the fraction of
// (alive ∧ unstalled) node-cycles. Percentiles come from the streaming
// stats.Quantile sketch (a full-scale run observes millions of packet
// latencies), merged across seeds — exercising the sharded-collection
// merge path.

// ChurnConfig parameterizes the churn process and the baselines' stall
// model. Zero values select full-scale defaults.
type ChurnConfig struct {
	// Cycles is the churn phase length. Default 1_000_000.
	Cycles int
	// Rate is the injection rate per node-cycle. Default 0.01 (below
	// every contender's saturation so the comparison isolates
	// reconfiguration downtime, like the failures experiment).
	Rate float64
	// MeanFail is the mean cycles between failure events (Poisson).
	// Default 2500.
	MeanFail float64
	// MeanRepair is the mean downtime before a failed element recovers.
	// Default 4000.
	MeanRepair float64
	// RouterFrac is the fraction of failure events that hit a router
	// (the rest hit links). Default 0.25.
	RouterFrac float64
	// TreeStall is sp_tree's global injection stall per event. Default
	// 2000 (the failures experiment's "1000s of cycles").
	TreeStall int
	// DBRStall and DBRRadius bound dbr's regional stall: routers within
	// DBRRadius Manhattan hops of the event stall DBRStall cycles.
	// Defaults 250 and 3.
	DBRStall  int
	DBRRadius int
	// TableUpdateRate is how many routing-table entries a router can
	// install per cycle. Each applied event's recovery window is extended
	// to cover installing the entries its recompile rewrote (full rebuild
	// charges the whole table; an incremental repair or a cache hit
	// charges only what changed). Deterministic by construction — the
	// model consumes rewritten-entry counts, never wall time. Default 64.
	TableUpdateRate int
	// Seeds is the number of independent runs per contender. Default 3.
	Seeds int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Cycles == 0 {
		c.Cycles = 1_000_000
	}
	if c.Rate == 0 {
		c.Rate = 0.01
	}
	if c.MeanFail == 0 {
		c.MeanFail = 2500
	}
	if c.MeanRepair == 0 {
		c.MeanRepair = 4000
	}
	if c.RouterFrac == 0 {
		c.RouterFrac = 0.25
	}
	if c.TreeStall == 0 {
		c.TreeStall = 2000
	}
	if c.DBRStall == 0 {
		c.DBRStall = 250
	}
	if c.DBRRadius == 0 {
		c.DBRRadius = 3
	}
	if c.TableUpdateRate == 0 {
		c.TableUpdateRate = 64
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	return c
}

// QuickChurn returns a reduced-scale churn configuration for tests.
func QuickChurn() ChurnConfig {
	return ChurnConfig{
		Cycles:     40_000,
		MeanFail:   1500,
		MeanRepair: 2500,
		Seeds:      2,
	}
}

// Churn contenders.
const (
	churnSB = iota
	churnTree
	churnDBR
)

var churnKinds = []int{churnSB, churnTree, churnDBR}

func churnLabel(kind int) string {
	switch kind {
	case churnSB:
		return StaticBubble.String()
	case churnTree:
		return SpanningTree.String()
	default:
		return "dbr"
	}
}

// ChurnRow is one contender's aggregate over the churn sweep.
type ChurnRow struct {
	Label string
	// Stall is the per-event stall charged (0 for static_bubble; the
	// dbr figure is regional, the sp_tree one global).
	Stall  int
	Events int64
	// Recovery-latency SLOs in cycles (streaming percentiles over every
	// fail/recover event across all seeds).
	RecP50, RecP99, RecP999 float64
	// Availability is usable (alive ∧ unstalled) node-cycles over total
	// node-cycles.
	Availability float64
	// Delivered-packet latency SLOs.
	PktP50, PktP99, PktP999                   float64
	Delivered, Lost, DroppedUnreach, Rerouted int64
	// Censored counts events whose damaged packets had not all exited
	// by run end (their latency is recorded as of the final cycle).
	Censored int64
	Sampled  int
	// CmpP50Ns/CmpP99Ns are measured epoch compile cost percentiles in
	// wall nanoseconds per applied event. Observability only and
	// nondeterministic — the recovery fold above uses the deterministic
	// entries-rewritten model (ChurnConfig.TableUpdateRate), never wall
	// time, so every other field stays byte-reproducible.
	CmpP50Ns, CmpP99Ns float64
	// Compiled-table cache and compiler work counters summed over seeds.
	// Populated for static_bubble, whose live tables the reconfig.Manager
	// owns; the baselines model their own rebuild cost instead.
	TabHits, TabMisses, TabIncremental, TabFull             int64
	ColsShared, ColsRepaired, ColsRebuilt, EntriesRewritten int64
}

// churnCell is one seed's outcome (exported fields: sweep cache value).
// The sketches are pointers: encoding/json only consults Quantile's
// pointer-receiver MarshalJSON through an addressable value, and the
// cache marshals the cell from an interface, where value fields are
// not addressable — a by-value sketch would round-trip as {}.
type churnCell struct {
	Rec, Pkt, Cmp                             *stats.Quantile
	AvailUp, AvailTot                         int64
	Events, Censored                          int64
	Delivered, Lost, DroppedUnreach, Rerouted int64
	Tab                                       reconfig.TableStats
	Stats                                     network.Stats
	OK                                        bool
}

// Churn runs the continuous-churn comparison.
func Churn(p Params, cfg ChurnConfig) []ChurnRow {
	p = p.withDefaults()
	cfg = cfg.withDefaults()
	var rows []ChurnRow
	for _, kind := range churnKinds {
		kind := kind
		stall := 0
		switch kind {
		case churnTree:
			stall = cfg.TreeStall
		case churnDBR:
			stall = cfg.DBRStall
		}
		row := ChurnRow{Label: churnLabel(kind), Stall: stall}
		key := func(i int) *sweep.Key {
			return p.cellKey("churn").Str("scheme", row.Label).
				Int("cycles", cfg.Cycles).Float("rate", cfg.Rate).
				Float("mean_fail", cfg.MeanFail).Float("mean_repair", cfg.MeanRepair).
				Float("router_frac", cfg.RouterFrac).
				Int("tree_stall", cfg.TreeStall).Int("dbr_stall", cfg.DBRStall).
				Int("dbr_radius", cfg.DBRRadius).
				// In the key because it changes the recovery fold — note
				// cell seeds derive from the key, so adding it reseeded
				// every churn cell relative to pre-accounting runs.
				Int("upd_rate", cfg.TableUpdateRate).Int("run", i)
		}
		results := sweep.Run(p.engine(), cfg.Seeds, key,
			func(i int, seed int64) (churnCell, error) {
				return churnRun(p, cfg, kind, seed), nil
			})
		var rec, pkt, cmp stats.Quantile
		var up, tot int64
		for _, res := range results {
			// Nil sketches mean a cache entry from an incompatible cell
			// shape; treat it like a failed cell rather than reporting
			// zero percentiles.
			if !res.OK() || !res.Value.OK || res.Value.Rec == nil || res.Value.Pkt == nil ||
				res.Value.Cmp == nil {
				continue
			}
			c := res.Value
			rec.Merge(c.Rec)
			pkt.Merge(c.Pkt)
			cmp.Merge(c.Cmp)
			row.Events += c.Events
			row.Censored += c.Censored
			row.Delivered += c.Delivered
			row.Lost += c.Lost
			row.DroppedUnreach += c.DroppedUnreach
			row.Rerouted += c.Rerouted
			row.TabHits += c.Tab.Hits
			row.TabMisses += c.Tab.Misses
			row.TabIncremental += c.Tab.Incremental
			row.TabFull += c.Tab.Full
			row.ColsShared += c.Tab.ColsShared
			row.ColsRepaired += c.Tab.ColsRepaired
			row.ColsRebuilt += c.Tab.ColsRebuilt
			row.EntriesRewritten += c.Tab.EntriesRewritten
			up += c.AvailUp
			tot += c.AvailTot
			row.Sampled++
		}
		if tot > 0 {
			row.Availability = float64(up) / float64(tot)
		}
		row.RecP50 = rec.Percentile(50)
		row.RecP99 = rec.Percentile(99)
		row.RecP999 = rec.Percentile(99.9)
		row.PktP50 = pkt.Percentile(50)
		row.PktP99 = pkt.Percentile(99)
		row.PktP999 = pkt.Percentile(99.9)
		row.CmpP50Ns = cmp.Percentile(50)
		row.CmpP99Ns = cmp.Percentile(99)
		rows = append(rows, row)
	}
	return rows
}

// churnEvent tracks one fail/recover event's recovery progress. An
// event is recovered when its stall window closed, its rewritten table
// entries finished installing, and its last damaged packet exited.
type churnEvent struct {
	at          int64
	stallEnd    int64
	compileEnd  int64
	lastExit    int64
	outstanding int
}

func (e *churnEvent) end() int64 {
	end := e.stallEnd
	if e.compileEnd > end {
		end = e.compileEnd
	}
	if e.lastExit > end {
		end = e.lastExit
	}
	return end
}

// pendingRecover is a scheduled element recovery.
type pendingRecover struct {
	at int64
	ev reconfig.Event
}

// churnRun executes one contender over one churn timeline. The run is
// fully deterministic in (p, cfg, kind, seed) and shard-count
// independent: all reconfiguration happens between Steps, and the
// sharded stepper is byte-identical to the event core.
func churnRun(p Params, cfg ChurnConfig, kind int, seed int64) (out churnCell) {
	p = p.withDefaults()
	cfg = cfg.withDefaults()
	out.Rec = new(stats.Quantile)
	out.Pkt = new(stats.Quantile)
	out.Cmp = new(stats.Quantile)
	topo := topology.NewMesh(p.Width, p.Height)
	numNodes := topo.NumNodes()
	s := network.New(topo, network.Config{Shards: p.Shards}, rand.New(rand.NewSource(sweep.SubSeed(seed, 0))))

	var ctl *core.Controller
	if kind == churnSB {
		ctl = core.Attach(s, core.Options{TDD: p.TDD, Spin: p.SpinMode})
	}
	mgr := reconfig.New(s)
	if ctl != nil {
		mgr.SetScheme(ctl)
	}

	// Routing: SB routes through the manager's live tables; the
	// baselines rebuild their up*/down* structure after every event.
	// rebuildAlg returns the modeled table-install work (entries
	// rewritten) and the measured rebuild wall time. sp_tree re-elects
	// globally and reinstalls its whole table; dbr's defining trait is
	// incremental patching, so it is charged only the entries its patch
	// actually rewrote (the incremental recompiler is property-tested
	// bit-identical to a full rebuild, so routes are unchanged).
	var alg routing.Algorithm
	var baseUD *routing.UpDown
	rebuildAlg := func() (entries, wallNs int64) {
		if kind == churnSB {
			return 0, 0
		}
		t0 := time.Now()
		if kind == churnDBR && baseUD != nil {
			var st routing.RecompileStats
			baseUD, st = baseUD.Recompile(topo)
			entries = st.EntriesRewritten
		} else {
			baseUD = routing.NewUpDownRooted(topo, routing.RootLowestID)
			entries = baseUD.TableEntries()
		}
		alg = baseUD.TreeAlgorithm()
		return entries, time.Since(t0).Nanoseconds()
	}
	if kind == churnSB {
		alg = mgr.Algorithm()
	}
	rebuildAlg()

	// Event attribution: OnRepair/OnDeliver assign damaged packets to
	// the event that broke their route; an event's recovery ends when
	// its last damaged packet exits and its stall window closed.
	owner := make(map[int64]*churnEvent)
	var open []*churnEvent
	var cur *churnEvent
	mgr.OnRepair = func(pk *network.Packet, dropped bool) {
		if prev, ok := owner[pk.ID]; ok {
			prev.outstanding--
			prev.lastExit = s.Now
			delete(owner, pk.ID)
		}
		if !dropped && cur != nil {
			owner[pk.ID] = cur
			cur.outstanding++
		}
	}
	s.OnDeliver = func(pk *network.Packet) {
		out.Pkt.Add(float64(pk.Latency()))
		if ev, ok := owner[pk.ID]; ok {
			ev.outstanding--
			ev.lastExit = s.Now
			delete(owner, pk.ID)
		}
	}

	// Stall bookkeeping. sp_tree stalls every node; dbr only the region
	// around the event.
	var globalStallUntil int64
	stallUntil := make([]int64, numNodes)
	var dbrMaxStall int64
	chargeStall := func(at geom.NodeID, now int64) int64 {
		switch kind {
		case churnTree:
			globalStallUntil = now + int64(cfg.TreeStall)
			return globalStallUntil
		case churnDBR:
			end := now + int64(cfg.DBRStall)
			ec := topo.Coord(at)
			for n := 0; n < numNodes; n++ {
				c := topo.Coord(geom.NodeID(n))
				dx, dy := c.X-ec.X, c.Y-ec.Y
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				if dx+dy <= cfg.DBRRadius && end > stallUntil[n] {
					stallUntil[n] = end
				}
			}
			if end > dbrMaxStall {
				dbrMaxStall = end
			}
			return end
		default:
			return now // static_bubble: no stall
		}
	}

	// submitEvent applies ev now, attributing repairs and charging the
	// contender's stall.
	aliveCount := numNodes
	submitEvent := func(ev reconfig.Event, now int64) {
		e := &churnEvent{at: now}
		cur = e
		tb0 := mgr.TableStats()
		outcome, _ := mgr.Submit(ev)
		cur = nil
		if outcome != reconfig.OutApplied && outcome != reconfig.OutRevoked {
			return
		}
		e.stallEnd = chargeStall(ev.Node, now)
		e.lastExit = now
		aliveCount = topo.AliveRouterCount()
		// Table-install cost: SB charges the manager's compile delta (an
		// LRU hit charges zero — the precompiled table swaps in); the
		// baselines charge their structure rebuild. Entry counts are
		// deterministic; wall time feeds only the Cmp sketch.
		var entries, wallNs int64
		if kind == churnSB {
			tb := mgr.TableStats()
			entries = tb.EntriesRewritten - tb0.EntriesRewritten
			wallNs = tb.CompileNs - tb0.CompileNs
		} else {
			entries, wallNs = rebuildAlg()
		}
		upd := int64(cfg.TableUpdateRate)
		e.compileEnd = now + (entries+upd-1)/upd
		open = append(open, e)
		out.Events++
		out.Cmp.Add(float64(wallNs))
	}

	erng := rand.New(rand.NewSource(sweep.SubSeed(seed, 1)))
	rng := rand.New(rand.NewSource(sweep.SubSeed(seed, 2)))
	var recovers []pendingRecover
	scheduleRecover := func(now int64, ev reconfig.Event) {
		at := now + 1 + int64(erng.ExpFloat64()*cfg.MeanRepair)
		i := len(recovers)
		recovers = append(recovers, pendingRecover{at: at, ev: ev})
		for i > 0 && recovers[i-1].at > at {
			recovers[i-1], recovers[i] = recovers[i], recovers[i-1]
			i--
		}
	}
	nextFail := int64(1 + erng.ExpFloat64()*cfg.MeanFail)

	horizon := int64(cfg.Cycles)
	for cyc := int64(0); cyc < horizon; cyc++ {
		now := s.Now
		// Due recoveries first (they were scheduled before this fail).
		for len(recovers) > 0 && recovers[0].at <= now {
			ev := recovers[0].ev
			recovers = recovers[:copy(recovers, recovers[1:])]
			submitEvent(ev, now)
		}
		if now >= nextFail {
			nextFail = now + 1 + int64(erng.ExpFloat64()*cfg.MeanFail)
			if erng.Float64() < cfg.RouterFrac {
				// Kill a router (keep at least half the mesh up so the
				// process can't grind the network away entirely).
				alive := topo.AliveRouters()
				if len(alive) > numNodes/2 {
					n := alive[erng.Intn(len(alive))]
					submitEvent(reconfig.Event{Kind: reconfig.EvFailRouter, Node: n}, now)
					scheduleRecover(now, reconfig.Event{Kind: reconfig.EvRecoverRouter, Node: n})
				}
			} else {
				links := topo.AliveUndirectedLinks()
				if len(links) > numNodes {
					l := links[erng.Intn(len(links))]
					submitEvent(reconfig.Event{Kind: reconfig.EvFailLink, Node: l.From, Dir: l.Dir}, now)
					scheduleRecover(now, reconfig.Event{Kind: reconfig.EvRecoverLink, Node: l.From, Dir: l.Dir})
				}
			}
		}
		// Close out events whose stall ended, table install finished, and
		// damage drained.
		if len(open) > 0 {
			kept := open[:0]
			for _, e := range open {
				if e.outstanding == 0 && now >= e.stallEnd && now >= e.compileEnd {
					out.Rec.Add(float64(e.end() - e.at))
				} else {
					kept = append(kept, e)
				}
			}
			open = kept
		}
		// Availability + injection, gated by the contender's stalls.
		usable := aliveCount
		switch {
		case kind == churnTree && now < globalStallUntil:
			usable = 0
		case kind == churnDBR && now < dbrMaxStall:
			usable = 0
			for n := 0; n < numNodes; n++ {
				if stallUntil[n] <= now && topo.RouterAlive(geom.NodeID(n)) {
					usable++
				}
			}
		}
		out.AvailUp += int64(usable)
		out.AvailTot += int64(numNodes)
		if usable > 0 {
			for n := 0; n < numNodes; n++ {
				src := geom.NodeID(n)
				if rng.Float64() >= cfg.Rate {
					continue
				}
				if !topo.RouterAlive(src) {
					continue
				}
				if kind == churnTree && now < globalStallUntil {
					continue
				}
				if kind == churnDBR && stallUntil[n] > now {
					continue
				}
				dst := geom.NodeID(rng.Intn(numNodes))
				if dst == src || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := alg.Route(src, dst, rng); ok {
					ln := 1
					if rng.Intn(2) == 0 {
						ln = 5
					}
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), ln, r))
				} else {
					s.Drop()
				}
			}
		}
		s.Step()
	}
	// Drain: stop injecting and failing, apply the remaining scheduled
	// recoveries on time, and let in-flight traffic land.
	for i := int64(0); i < 40*int64(p.Width*p.Height)*10; i++ {
		now := s.Now
		for len(recovers) > 0 && recovers[0].at <= now {
			ev := recovers[0].ev
			recovers = recovers[:copy(recovers, recovers[1:])]
			submitEvent(ev, now)
		}
		if len(recovers) == 0 && s.InFlight()+s.QueuedPackets() == 0 {
			break
		}
		s.Step()
	}
	// Close the books: events still open are censored at the final cycle.
	endNow := s.Now
	for _, e := range open {
		end := e.end()
		if e.outstanding > 0 {
			end = endNow
			out.Censored++
		}
		if end < e.at {
			end = e.at
		}
		out.Rec.Add(float64(end - e.at))
	}
	out.Delivered = s.Stats.Delivered
	out.Lost = s.Stats.Lost
	out.DroppedUnreach = s.Stats.DroppedUnreachable
	out.Rerouted = mgr.Rerouted
	if kind == churnSB {
		out.Tab = mgr.TableStats()
	}
	out.Stats = s.Stats
	// Conservation must hold to the cycle even under overlapped churn.
	out.OK = s.Stats.Delivered > 0 &&
		s.Stats.Offered == s.Stats.Delivered+int64(s.InFlight())+int64(s.QueuedPackets())+s.Stats.Lost
	return out
}

// ChurnShardStats runs the static_bubble churn workload at the given
// shard count and returns the final simulator statistics — the CI churn
// smoke tier byte-compares the result across shard counts.
func ChurnShardStats(p Params, cfg ChurnConfig, shards int, seed int64) network.Stats {
	p = p.withDefaults()
	p.Shards = shards
	cell := churnRun(p, cfg, churnSB, seed)
	return cell.Stats
}

// PrintChurn writes the contender table.
func PrintChurn(w io.Writer, cfg ChurnConfig, rows []ChurnRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Continuous churn: Poisson fail/recover events (mean every %.0f cycles, repair %.0f) over %d cycles\n",
		cfg.MeanFail, cfg.MeanRepair, cfg.Cycles)
	fmt.Fprintf(w, "%-14s %-6s %-7s %-9s %-9s %-9s %-7s %-9s %-9s %-9s %-10s %-6s %-5s %-10s %-10s %s\n",
		"scheme", "stall", "events", "recP50", "recP99", "recP99.9", "avail%", "pktP50", "pktP99", "pktP99.9",
		"delivered", "lost", "cens", "cmpP50ns", "cmpP99ns", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-6d %-7d %-9.0f %-9.0f %-9.0f %-7.3f %-9.0f %-9.0f %-9.0f %-10d %-6d %-5d %-10.0f %-10.0f %d\n",
			r.Label, r.Stall, r.Events, r.RecP50, r.RecP99, r.RecP999,
			100*r.Availability, r.PktP50, r.PktP99, r.PktP999,
			r.Delivered, r.Lost, r.Censored, r.CmpP50Ns, r.CmpP99Ns, r.Sampled)
	}
	for _, r := range rows {
		if r.TabHits+r.TabMisses == 0 {
			continue
		}
		fmt.Fprintf(w, "tables[%s]: hits=%d misses=%d incremental=%d full=%d cols shared=%d repaired=%d rebuilt=%d entries_rewritten=%d\n",
			r.Label, r.TabHits, r.TabMisses, r.TabIncremental, r.TabFull,
			r.ColsShared, r.ColsRepaired, r.ColsRebuilt, r.EntriesRewritten)
	}
}

// ChurnCSV emits the comparison as CSV.
func ChurnCSV(w io.Writer, rows []ChurnRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Label, d(int64(r.Stall)), d(r.Events),
			f(r.RecP50), f(r.RecP99), f(r.RecP999),
			f(r.Availability),
			f(r.PktP50), f(r.PktP99), f(r.PktP999),
			d(r.Delivered), d(r.Lost), d(r.DroppedUnreach), d(r.Rerouted),
			d(r.Censored), d(int64(r.Sampled)),
			f(r.CmpP50Ns), f(r.CmpP99Ns),
			d(r.TabHits), d(r.TabMisses), d(r.TabIncremental), d(r.TabFull),
			d(r.ColsShared), d(r.ColsRepaired), d(r.ColsRebuilt), d(r.EntriesRewritten),
		}
	}
	return writeCSV(w, []string{
		"scheme", "stall", "events",
		"rec_p50", "rec_p99", "rec_p999", "availability",
		"pkt_p50", "pkt_p99", "pkt_p999",
		"delivered", "lost", "dropped_unreachable", "rerouted", "censored", "sampled",
		"cmp_p50_ns", "cmp_p99_ns",
		"tab_hits", "tab_misses", "tab_incremental", "tab_full",
		"cols_shared", "cols_repaired", "cols_rebuilt", "entries_rewritten",
	}, out)
}
