package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fig8Grid is the reduced Fig. 8 grid the determinism and cancellation
// tests sweep: 3 cells x Quick().Topologies = 12 jobs.
var fig8Grid = map[topology.FaultKind][]int{
	topology.LinkFaults:   {1, 5},
	topology.RouterFaults: {2},
}

func renderFig8(t *testing.T, e *sweep.Engine) string {
	t.Helper()
	p := Quick()
	p.Engine = e
	var buf bytes.Buffer
	PrintFig8(&buf, Fig8(p, []string{"uniform_random"}, fig8Grid))
	return buf.String()
}

// TestFig8Determinism is the tentpole regression: the rendered sweep is
// byte-identical regardless of worker count, GOMAXPROCS, or whether the
// cells came from live simulation or the on-disk cache — and a
// warm-cache rerun performs zero simulations.
func TestFig8Determinism(t *testing.T) {
	ref := renderFig8(t, sweep.New(sweep.Config{Workers: 1}))
	if !strings.Contains(ref, "uniform_random") {
		t.Fatalf("reference output suspicious:\n%s", ref)
	}

	if got := renderFig8(t, sweep.New(sweep.Config{Workers: 8})); got != ref {
		t.Errorf("workers=8 output differs from workers=1:\n%s\n--- vs ---\n%s", got, ref)
	}

	prev := runtime.GOMAXPROCS(1)
	got := renderFig8(t, sweep.New(sweep.Config{Workers: 8}))
	runtime.GOMAXPROCS(prev)
	if got != ref {
		t.Errorf("GOMAXPROCS=1 output differs:\n%s\n--- vs ---\n%s", got, ref)
	}

	cache := &sweep.Cache{Dir: t.TempDir(), Salt: CodeVersion}
	cold := sweep.New(sweep.Config{Workers: 4, Cache: cache})
	if got := renderFig8(t, cold); got != ref {
		t.Errorf("cold-cache output differs:\n%s\n--- vs ---\n%s", got, ref)
	}
	st := cold.Stats()
	if st.Executed != st.Jobs || st.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v", st)
	}
	if cache.Len() != st.Jobs {
		t.Fatalf("cache holds %d entries after %d jobs", cache.Len(), st.Jobs)
	}

	warm := sweep.New(sweep.Config{Workers: 4, Cache: cache, Resume: true})
	if got := renderFig8(t, warm); got != ref {
		t.Errorf("warm-cache output differs:\n%s\n--- vs ---\n%s", got, ref)
	}
	if st := warm.Stats(); st.Executed != 0 || st.CacheHits != st.Jobs {
		t.Fatalf("warm rerun simulated: stats = %+v, want zero executions", st)
	}
}

// TestCacheKeyGolden pins the canonical cache keys and addresses for a
// fixed parameter grid. If this fails, simulation-affecting parameters
// were added, removed, or re-encoded: update the golden file with
// -update AND bump experiments.CodeVersion so stale cache entries are
// never reused.
func TestCacheKeyGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, p := range []Params{
		{},
		Quick(),
		{BaseSeed: 7, TDD: 64, SpinMode: true},
	} {
		for _, cell := range []*sweep.Key{
			p.cellKey("fig8").Str("pattern", "uniform_random").
				Str("kind", topology.LinkFaults.String()).Int("faults", 5).Int("topo", 0),
			p.cellKey("fig9").Str("kind", topology.RouterFaults.String()).
				Int("faults", 2).Int("topo", 1),
		} {
			fmt.Fprintf(&buf, "%s\n  %s\n", cell.Canonical(), cell.Hash(CodeVersion))
		}
	}
	golden := filepath.Join("testdata", "cache_keys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("cache keys changed — existing cache entries are orphaned.\n"+
			"If intended, rerun with -update and bump CodeVersion.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestCacheKeyCoversSimulationParams(t *testing.T) {
	base := Quick()
	baseHash := base.cellKey("fig8").Int("topo", 0).Hash(CodeVersion)

	// Every simulation-affecting field must move the address.
	mutations := map[string]Params{
		"Width":         {Width: 6, Height: 8, Topologies: 4, WarmupCycles: 300, MeasureCycles: 2000},
		"WarmupCycles":  func() Params { p := Quick(); p.WarmupCycles = 301; return p }(),
		"MeasureCycles": func() Params { p := Quick(); p.MeasureCycles = 2001; return p }(),
		"TDD":           func() Params { p := Quick(); p.TDD = 64; return p }(),
		"EscapeTimeout": func() Params { p := Quick(); p.EscapeTimeout = 50; return p }(),
		"BaseSeed":      func() Params { p := Quick(); p.BaseSeed = 1; return p }(),
		"SpinMode":      func() Params { p := Quick(); p.SpinMode = true; return p }(),
		"TreeBaselineAllLinks": func() Params {
			p := Quick()
			p.TreeBaselineAllLinks = true
			return p
		}(),
	}
	for field, p := range mutations {
		if p.cellKey("fig8").Int("topo", 0).Hash(CodeVersion) == baseHash {
			t.Errorf("changing %s does not change the cache key", field)
		}
	}

	// Topologies is a sweep extent, not cell content: growing the sample
	// must reuse the cells already on disk.
	wider := Quick()
	wider.Topologies = 50
	if wider.cellKey("fig8").Int("topo", 0).Hash(CodeVersion) != baseHash {
		t.Error("changing Topologies re-addresses existing cells")
	}
}

// TestSweepCancellationAndResume interrupts a sweep after two completed
// jobs, checks only complete cache entries remain, then resumes and
// verifies the finished output matches an uninterrupted run without
// re-simulating the cells already done.
func TestSweepCancellationAndResume(t *testing.T) {
	ref := renderFig8(t, sweep.New(sweep.Config{Workers: 1}))
	cache := &sweep.Cache{Dir: t.TempDir(), Salt: CodeVersion}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := sweep.New(sweep.Config{
		Workers: 1, Cache: cache, Ctx: ctx,
		Progress: func(s stats.ProgressSnapshot) {
			if s.Done >= 2 {
				cancel()
			}
		},
	})
	renderFig8(t, interrupted)
	st := interrupted.Stats()
	if st.Executed != 2 {
		t.Fatalf("interrupted run executed %d jobs, want 2: %+v", st.Executed, st)
	}
	if st.Cancelled == 0 || st.Executed+st.Cancelled != st.Jobs {
		t.Fatalf("interrupted run stats inconsistent: %+v", st)
	}

	// Only complete, parseable envelopes may exist on disk.
	if cache.Len() != st.Executed {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), st.Executed)
	}
	filepath.WalkDir(cache.Dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d == nil || d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("incomplete temp entry left behind: %s", p)
			return nil
		}
		raw, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Errorf("unreadable entry %s: %v", p, rerr)
			return nil
		}
		var env struct {
			Key   string          `json:"key"`
			Salt  string          `json:"salt"`
			Value json.RawMessage `json:"value"`
		}
		if jerr := json.Unmarshal(raw, &env); jerr != nil || env.Key == "" || len(env.Value) == 0 {
			t.Errorf("corrupt entry %s: %v", p, jerr)
		}
		return nil
	})

	// Resume: only the remainder simulates, and the output is identical
	// to the uninterrupted reference.
	resumed := sweep.New(sweep.Config{Workers: 4, Cache: cache, Resume: true})
	if got := renderFig8(t, resumed); got != ref {
		t.Errorf("resumed output differs from uninterrupted run:\n%s\n--- vs ---\n%s", got, ref)
	}
	rst := resumed.Stats()
	if rst.CacheHits != st.Executed {
		t.Errorf("resume re-simulated cached cells: %+v", rst)
	}
	if rst.Executed != rst.Jobs-st.Executed {
		t.Errorf("resume executed %d jobs, want %d: %+v", rst.Executed, rst.Jobs-st.Executed, rst)
	}
}
