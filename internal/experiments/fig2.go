package experiments

import (
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/topology"
)

// Fig2Row is one point of the Fig. 2 sweep: the fraction of sampled
// irregular topologies that are deadlock-prone (contain a cycle in their
// topology graph) at a given fault count.
type Fig2Row struct {
	Kind          topology.FaultKind
	Faults        int
	ProneFraction float64
	Sampled       int
}

// Fig2 sweeps the irregular-topology space over increasing link and
// router fault counts and reports the deadlock-prone percentage
// (paper Fig. 2). faultSteps selects the fault counts per kind; nil
// selects the paper's full range with step 5.
func Fig2(p Params, faultSteps map[topology.FaultKind][]int) []Fig2Row {
	p = p.withDefaults()
	if faultSteps == nil {
		faultSteps = map[topology.FaultKind][]int{
			topology.LinkFaults:   stepRange(1, 96, 5),
			topology.RouterFaults: stepRange(1, 46, 5),
		}
	}
	var rows []Fig2Row
	for _, kind := range []topology.FaultKind{topology.LinkFaults, topology.RouterFaults} {
		for _, k := range faultSteps[kind] {
			if k > topology.MaxFaults(p.Width, p.Height, kind) {
				continue
			}
			key := func(i int) *sweep.Key {
				return p.cellKey("fig2").
					Str("kind", kind.String()).Int("faults", k).Int("topo", i)
			}
			prone := sweep.Run(p.engine(), p.Topologies, key,
				func(i int, seed int64) (bool, error) {
					return p.SampleTopology(kind, k, i).HasTopologyCycle(), nil
				})
			n, sampled := 0, 0
			for _, r := range prone {
				if !r.OK() {
					continue
				}
				sampled++
				if r.Value {
					n++
				}
			}
			row := Fig2Row{Kind: kind, Faults: k, Sampled: sampled}
			if sampled > 0 {
				row.ProneFraction = float64(n) / float64(sampled)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// stepRange returns lo, lo+step, ..., ≤ hi.
func stepRange(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

// PrintFig2 writes the sweep as an aligned table.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintf(w, "Fig 2: deadlock-prone irregular topologies (8x8 mesh substrate)\n")
	fmt.Fprintf(w, "%-8s %-7s %-12s %s\n", "kind", "faults", "prone(%)", "sampled")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-7d %-12.1f %d\n", r.Kind, r.Faults, 100*r.ProneFraction, r.Sampled)
	}
}
