package experiments

// Micro/meso benchmarks of the simulator core: each scenario is run
// twice on identical seeds — once through the event-driven Sim.Step and
// once through the refmodel full scan — timing both and checking they
// land on identical Stats. Results feed BENCH_sim.json (sbsweep -fig
// bench, also produced as a CI artifact) and EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/memprof"
	"repro/internal/network"
	"repro/internal/network/refmodel"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// SimBenchResult is one scenario's event-vs-refmodel timing comparison
// at one shard count.
type SimBenchResult struct {
	Scenario string `json:"scenario"`
	// Shards is the event core's shard count for this row (1 = the
	// plain sequential event core). All shard counts of one scenario
	// produce — and are verified to produce — identical Stats.
	Shards int `json:"shards"`
	Cycles int `json:"cycles"`
	// Warmup is the cycle count excluded from the allocation window:
	// pools, arenas, scratch buffers and lazy routing tables grow to
	// their steady size there. Timing covers the whole run; allocation
	// metrics cover only cycles [Warmup, Cycles).
	Warmup int `json:"warmup_cycles"`
	// Wall nanoseconds per simulated cycle under each core.
	EventNsPerCycle float64 `json:"event_ns_per_cycle"`
	RefNsPerCycle   float64 `json:"refmodel_ns_per_cycle"`
	// Build nanoseconds for each run's scenario construction before
	// cycle 0: topology sampling plus routing-table compilation (or a
	// compiled-table cache hit — the refmodel run goes first, so event
	// rows of cached scenarios show the hit cost, not the compile).
	EventBuildNs int64 `json:"event_build_ns"`
	RefBuildNs   int64 `json:"refmodel_build_ns"`
	// Speedup is refmodel time / event time (>1 means the event core wins).
	Speedup float64 `json:"speedup"`
	// Post-warmup heap allocation rate of the event core (objects and
	// bytes per simulated cycle, traffic generation included). The
	// zero-alloc steady-state scenarios gate on this being exactly 0.
	EventAllocsPerCycle float64 `json:"event_allocs_per_cycle"`
	EventBytesPerCycle  float64 `json:"event_bytes_per_cycle"`
	// Delivered (identical under both cores — verified) sizes the workload.
	Delivered int64 `json:"delivered"`
	// GoMaxProcs records the host parallelism the timings were taken
	// under. Consumers comparing shard counts (the benchdiff scaling
	// gate) must ignore sharded rows taken with GoMaxProcs below the
	// shard count: with fewer cores than shards the parallel phases can
	// only show scheduling overhead, never speedup.
	GoMaxProcs int `json:"gomaxprocs"`
}

// simScenario builds a fresh deterministic simulation and its per-cycle
// traffic source. Every build() of one scenario must produce the exact
// same trajectory — for any shard count — so the cores can be timed on
// identical work.
type simScenario struct {
	name   string
	cycles int
	// warmup must be < cycles; see SimBenchResult.Warmup.
	warmup int
	build  func(shards int) (*network.Sim, func())
}

// simBenchScenarios covers the three load regimes the event core must
// handle: a large mostly-idle mesh (the win case: sleeping routers cost
// nothing), a saturated mesh (the guard case: everything is awake, so
// scheduler overhead must stay negligible), and a deadlock-recovery
// burst on an irregular topology (the correctness-hard case: fences,
// bubbles and probe storms waking routers out of band).
func simBenchScenarios() []simScenario {
	return []simScenario{
		{
			name:   "idle_mesh_16x16",
			cycles: 30000,
			warmup: 5000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(16, 16)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(11)))
				core.Attach(s, core.Options{})
				s.PrewarmPool(512, 32, 16)
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.002, rand.New(rand.NewSource(12)))
				// Trickle traffic for the first half, then a drained tail:
				// the regime where routers sleep and the full scan pays for
				// 256 no-op routers every cycle.
				return s, func() {
					if s.Now < 15000 {
						inj.Tick(s)
					}
				}
			},
		},
		{
			// Past the saturation point NI queues grow for the whole run
			// (~2.2 packets/cycle), so steady-state recycling alone cannot
			// make the window alloc-free: the pool keeps minting packets it
			// never gets back and the rings keep resizing — historically
			// ~4.6 objects/cycle of measured "leak". The prewarm is
			// therefore sized for the full run's peak live population
			// (≈13.5k packets at cycle 4000) and ring high-water, which restores
			// exactly-zero window allocation and lets the gate cover the
			// saturated regime — sequential and sharded — rather than
			// excluding it.
			name:   "saturation_8x8",
			cycles: 4000,
			warmup: 1000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(8, 8)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(21)))
				core.Attach(s, core.Options{}).PrewarmMessages(4096)
				s.PrewarmPool(20480, 16, 512)
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.35, rand.New(rand.NewSource(22)))
				return s, func() { inj.Tick(s) }
			},
		},
		{
			// Offered load (~0.15 flits/node/cycle) below the uniform-random
			// saturation point (~0.19): the in-flight population — and with
			// it every pool, arena and scratch buffer — reaches a stable
			// size inside the warmup, so the measured window is the
			// archetypal inject→deliver→recycle steady state the zero-alloc
			// gate asserts on. saturation_8x8 above sits past saturation
			// (queues grow without bound) and stays alloc-free only because
			// its prewarm covers the whole run's growth; this scenario is
			// the regime where recycling alone sustains the zero.
			name:   "saturation_steady_8x8",
			cycles: 6000,
			warmup: 3000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(8, 8)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(41)))
				core.Attach(s, core.Options{})
				s.PrewarmPool(1024, 16, 32)
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.15, rand.New(rand.NewSource(42)))
				return s, func() { inj.Tick(s) }
			},
		},
		{
			// The mid-size steady saturation regime: 256 routers just
			// below the 16×16 uniform-random saturation point (bisection
			// scaling halves the 8×8 point: ~0.19*(8/16) ≈ 0.095
			// flits/node/cycle). Nearly the whole fabric stays busy every
			// cycle with a bounded in-flight population — the regime the
			// dense stepper's hysteretic switch targets — so this row is
			// benchdiff-gated alongside the 8×8 saturation rows to keep
			// the dense win from regressing at a size where the sharded
			// stepper is also competitive.
			name:   "saturation_steady_16x16",
			cycles: 4000,
			warmup: 2000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(16, 16)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(51)))
				core.Attach(s, core.Options{})
				s.PrewarmPool(4096, 32, 64)
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.09, rand.New(rand.NewSource(52)))
				return s, func() { inj.Tick(s) }
			},
		},
		{
			// The sharded stepper's headline regime: a 1024-router mesh
			// just below its uniform-random saturation point (which scales
			// with the bisection, ~0.19*(8/32) ≈ 0.05 flits/node/cycle), so
			// the whole fabric is busy every cycle while the in-flight
			// population stays bounded. This is the scenario the
			// shards=4-vs-1 scaling gate (benchdiff) and the EXPERIMENTS.md
			// scaling section measure.
			name:   "saturation_steady_32x32",
			cycles: 3000,
			warmup: 1500,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(32, 32)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(61)))
				core.Attach(s, core.Options{}).PrewarmMessages(2048)
				s.PrewarmPool(16384, 64, 128)
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.04, rand.New(rand.NewSource(62)))
				return s, func() { inj.Tick(s) }
			},
		},
		{
			// Continuous churn on a 16×16 mesh: elements fail mid-run and
			// recover through the reconfig event queue while Static Bubble
			// traffic keeps flowing. This is the regime the overlap-safe
			// reconfiguration path (epoch bumps, table-cache lookups,
			// in-place repair, SchemeHandler resets) adds to the hot loop,
			// and the scenario the churn benchdiff gate tracks. All shard
			// counts replay the identical fail/recover timeline: the
			// manager mutates only between Steps, which the seam protocol
			// makes shard-invariant.
			name:   "churn_16x16",
			cycles: 20000,
			warmup: 4000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(16, 16)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(71)))
				ctl := core.Attach(s, core.Options{})
				mgr := reconfig.New(s)
				mgr.SetScheme(ctl)
				alg := mgr.Algorithm()
				rng := rand.New(rand.NewSource(72))
				num := topo.NumNodes()
				return s, func() {
					now := s.Now
					if now%800 == 400 {
						// Fail one element; queue its recovery behind the next
						// failure so events overlap (fail at t, fail at t+800,
						// first recovery at t+1200).
						if rng.Intn(4) == 0 {
							alive := topo.AliveRouters()
							n := alive[rng.Intn(len(alive))]
							mgr.Submit(reconfig.Event{Kind: reconfig.EvFailRouter, Node: n})
							mgr.SubmitAt(now+1200, reconfig.Event{Kind: reconfig.EvRecoverRouter, Node: n})
						} else {
							links := topo.AliveUndirectedLinks()
							l := links[rng.Intn(len(links))]
							mgr.Submit(reconfig.Event{Kind: reconfig.EvFailLink, Node: l.From, Dir: l.Dir})
							mgr.SubmitAt(now+1200, reconfig.Event{Kind: reconfig.EvRecoverLink, Node: l.From, Dir: l.Dir})
						}
					}
					mgr.Tick()
					// 0.01 packets/node/cycle of 5-flit packets ≈ 0.05
					// flits/node/cycle — about half the 16×16 uniform-random
					// saturation point, so queues stay bounded even with a few
					// elements down and the timing is gate-stable.
					for n := 0; n < num; n++ {
						src := geom.NodeID(n)
						if rng.Float64() >= 0.01 || !topo.RouterAlive(src) {
							continue
						}
						dst := geom.NodeID(rng.Intn(num))
						if dst == src || !topo.RouterAlive(dst) {
							continue
						}
						if r, ok := alg.Route(src, dst, rng); ok {
							s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
						} else {
							s.Drop()
						}
					}
				}
			},
		},
		{
			// The same continuous-churn regime at 32×32 (1024 routers):
			// the scale where per-event table recompilation used to cost a
			// visible slice of the run. With the incremental recompiler a
			// single-element flap repairs a handful of columns instead of
			// rebuilding 2·n² entries, and flap-backs hit the manager's
			// fingerprint LRU outright; this scenario (benchdiff-gated)
			// keeps that on the hot path the gate watches.
			name:   "churn_32x32",
			cycles: 8000,
			warmup: 2000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.NewMesh(32, 32)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(81)))
				ctl := core.Attach(s, core.Options{})
				mgr := reconfig.New(s)
				mgr.SetScheme(ctl)
				alg := mgr.Algorithm()
				rng := rand.New(rand.NewSource(82))
				num := topo.NumNodes()
				return s, func() {
					now := s.Now
					if now%800 == 400 {
						if rng.Intn(4) == 0 {
							alive := topo.AliveRouters()
							n := alive[rng.Intn(len(alive))]
							mgr.Submit(reconfig.Event{Kind: reconfig.EvFailRouter, Node: n})
							mgr.SubmitAt(now+1200, reconfig.Event{Kind: reconfig.EvRecoverRouter, Node: n})
						} else {
							links := topo.AliveUndirectedLinks()
							l := links[rng.Intn(len(links))]
							mgr.Submit(reconfig.Event{Kind: reconfig.EvFailLink, Node: l.From, Dir: l.Dir})
							mgr.SubmitAt(now+1200, reconfig.Event{Kind: reconfig.EvRecoverLink, Node: l.From, Dir: l.Dir})
						}
					}
					mgr.Tick()
					// 0.005 packets/node/cycle of 5-flit packets ≈ 0.025
					// flits/node/cycle — half the 32×32 uniform-random
					// saturation point (≈0.05), so queues stay bounded with
					// elements down and the timing is gate-stable.
					for n := 0; n < num; n++ {
						src := geom.NodeID(n)
						if rng.Float64() >= 0.005 || !topo.RouterAlive(src) {
							continue
						}
						dst := geom.NodeID(rng.Intn(num))
						if dst == src || !topo.RouterAlive(dst) {
							continue
						}
						if r, ok := alg.Route(src, dst, rng); ok {
							s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
						} else {
							s.Drop()
						}
					}
				}
			},
		},
		{
			name:   "recovery_burst_8x8_irregular",
			cycles: 4000,
			warmup: 1000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(31)))
				// Hair-trigger detection keeps recovery storms running for
				// most of the window.
				core.Attach(s, core.Options{TDD: 24})
				inj := traffic.NewInjector(topo.AliveRouters(), routing.MinimalFor(topo),
					traffic.NewUniformRandom(topo.AliveRouters()), 0.12, rand.New(rand.NewSource(32)))
				return s, func() { inj.Tick(s) }
			},
		},
		{
			// Per-hop adaptive routing on a heavily faulted 16×16: every
			// traversal consults the routing tables at every router, so
			// this scenario is bound by routing-table lookups rather than
			// switch traversal — the regime the compiled flat tables (and
			// their cross-run cache) exist for. adaptive.Attach requires
			// the unsharded stepper, so all shard counts of this row time
			// the same sequential core (verified-identical Stats as ever).
			name:   "route_heavy_adaptive_16x16",
			cycles: 4000,
			warmup: 1000,
			build: func(shards int) (*network.Sim, func()) {
				topo := topology.RandomIrregular(16, 16, topology.LinkFaults, 40, 7)
				s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(51)))
				core.Attach(s, core.Options{})
				c := adaptive.Attach(s)
				s.PrewarmPool(2048, 32, 32)
				alive := topo.AliveRouters()
				rng := rand.New(rand.NewSource(52))
				return s, func() {
					for _, src := range alive {
						if rng.Float64() >= 0.05 {
							continue
						}
						dst := alive[rng.Intn(len(alive))]
						if dst == src || !c.Reachable(src, dst) {
							continue
						}
						s.Enqueue(c.NewPacket(src, dst, 0, 5))
					}
				}
			},
		},
	}
}

// runSimScenario executes one scenario under the chosen core and returns
// its final stats, the stepping wall time, and the post-warmup heap
// allocation delta. Only the step calls are timed: traffic generation is
// identical under both cores and would otherwise dilute the comparison.
// The allocation window covers everything after the warmup cycle —
// injection included, since a zero-alloc steady state that excluded
// traffic generation would be meaningless.
// simBenchReps is how many times each (scenario, core, shards, procs)
// cell is run; the fastest rep is recorded. Back-to-back runs on a
// shared host differ by double-digit percent, and the minimum is the
// stablest estimator of the code's intrinsic cost — single-shot rows
// made the speedup gates flake.
const simBenchReps = 3

// benchProcCounts returns the GOMAXPROCS settings to measure for a
// shard count. Every configuration gets a single-proc row — the
// apples-to-apples baseline the speedup and scaling gates compare —
// and sharded configurations add one multi-proc variant (procs =
// min(shards, NumCPU)) on hosts with the cores to run it, so
// BENCH_sim.json records real parallel scaling rather than time-sliced
// workers.
func benchProcCounts(shards int) []int {
	if shards <= 1 || runtime.NumCPU() <= 1 {
		return []int{1}
	}
	procs := shards
	if n := runtime.NumCPU(); procs > n {
		procs = n
	}
	return []int{1, procs}
}

// runSimScenarioBest runs one bench cell simBenchReps times under the
// given GOMAXPROCS and keeps the fastest rep's timings. Stats must
// agree across reps — every build is deterministic, so divergence is a
// determinism bug, not noise. The allocation delta folds by min for
// the same reason the timing does: the runtime's own park/unpark
// machinery occasionally allocates in a rep, while a real per-cycle
// leak shows up in every rep.
func runSimScenarioBest(sc simScenario, useRef bool, shards, procs int) (network.Stats, time.Duration, time.Duration, memprof.Delta, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var stats network.Stats
	var bestDur, bestBuild time.Duration
	var bestAlloc memprof.Delta
	for rep := 0; rep < simBenchReps; rep++ {
		st, dur, build, alloc := runSimScenario(sc, useRef, shards)
		if rep == 0 {
			stats, bestDur, bestBuild, bestAlloc = st, dur, build, alloc
			continue
		}
		if st != stats {
			return stats, 0, 0, memprof.Delta{}, fmt.Errorf(
				"bench %s (shards=%d, procs=%d): rep %d diverged from rep 0\nrep:   %+v\nfirst: %+v",
				sc.name, shards, procs, rep, st, stats)
		}
		if dur < bestDur {
			bestDur, bestBuild = dur, build
		}
		if alloc.Allocs < bestAlloc.Allocs {
			bestAlloc = alloc
		}
	}
	return stats, bestDur, bestBuild, bestAlloc, nil
}

func runSimScenario(sc simScenario, useRef bool, shards int) (network.Stats, time.Duration, time.Duration, memprof.Delta) {
	b0 := time.Now()
	s, tick := sc.build(shards)
	buildDur := time.Since(b0)
	step := s.Step
	if useRef {
		step = refmodel.New(s).Step
	}
	var total time.Duration
	var base memprof.Snapshot
	for c := 0; c < sc.cycles; c++ {
		if c == sc.warmup {
			base = memprof.Take()
		}
		tick()
		t0 := time.Now()
		step()
		total += time.Since(t0)
	}
	return s.Stats, total, buildDur, memprof.Take().Since(base)
}

// compileBenchSpecs parameterize the routing-table recompilation
// benchmark rows appended to BENCH_sim.json. Each epoch flaps one
// random link (fail on even epochs, recover it on odd ones — the
// fingerprint-cache-free worst case of churn's dominant event shape)
// and times the incremental recompile against a from-scratch parallel
// compile of the same topology, asserting bit-identical tables outside
// the timed region. The row reuses the SimBenchResult shape:
// EventNsPerCycle is incremental ns/epoch, RefNsPerCycle is full
// ns/epoch, Speedup = full/incremental — the ≥10x single-link-churn
// claim compile_32x32 demonstrates and the benchdiff gate on
// compile_64x64 protects.
var compileBenchSpecs = []struct {
	name         string
	w, h, epochs int
	seed         int64
}{
	{"compile_32x32", 32, 32, 24, 91},
	{"compile_64x64", 64, 64, 8, 92},
}

func runCompileBench(name string, w, h, epochs int, seed int64) (SimBenchResult, error) {
	topo := topology.NewMesh(w, h)
	rng := rand.New(rand.NewSource(seed))
	min := routing.NewMinimal(topo)
	var flapFrom geom.NodeID
	var flapDir geom.Direction
	var incNs, fullNs int64
	for e := 0; e < epochs; e++ {
		if e%2 == 0 {
			links := topo.AliveUndirectedLinks()
			l := links[rng.Intn(len(links))]
			flapFrom, flapDir = l.From, l.Dir
			topo.DisableLink(flapFrom, flapDir)
		} else {
			topo.EnableLink(flapFrom, flapDir)
		}
		t0 := time.Now()
		inc, st := min.Recompile(topo)
		incNs += time.Since(t0).Nanoseconds()
		t0 = time.Now()
		full := routing.NewMinimal(topo)
		fullNs += time.Since(t0).Nanoseconds()
		if st.Full {
			return SimBenchResult{}, fmt.Errorf("bench %s epoch %d: single-link delta took the full-compile fallback (%+v)", name, e, st)
		}
		if !routing.MinimalTablesEqual(inc, full) {
			return SimBenchResult{}, fmt.Errorf("bench %s epoch %d: incremental recompile diverged from full compile", name, e)
		}
		min = inc
	}
	ep := float64(epochs)
	return SimBenchResult{
		Scenario:        name,
		Shards:          1,
		Cycles:          epochs,
		EventNsPerCycle: float64(incNs) / ep,
		RefNsPerCycle:   float64(fullNs) / ep,
		Speedup:         safeRatio(float64(fullNs), float64(incNs)),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
	}, nil
}

// BenchShardCounts are the event-core shard counts BENCH_sim.json is
// parametrized over.
var BenchShardCounts = []int{1, 2, 4}

// SimBench runs every benchmark scenario under the refmodel full scan
// and under the event core at each of BenchShardCounts, verifies every
// run lands on identical Stats, and returns one timing row per
// (scenario, shard count). The refmodel pass runs first so the event
// passes cannot benefit from warmer caches.
func SimBench() ([]SimBenchResult, error) {
	var out []SimBenchResult
	for _, sc := range simBenchScenarios() {
		refStats, refDur, refBuild, _, err := runSimScenarioBest(sc, true, 1, 1)
		if err != nil {
			return nil, err
		}
		measured := float64(sc.cycles - sc.warmup)
		for _, shards := range BenchShardCounts {
			for _, procs := range benchProcCounts(shards) {
				evStats, evDur, evBuild, evAlloc, err := runSimScenarioBest(sc, false, shards, procs)
				if err != nil {
					return nil, err
				}
				if evStats != refStats {
					return nil, fmt.Errorf("bench %s (shards=%d, procs=%d): cores diverged\nevent:    %+v\nrefmodel: %+v",
						sc.name, shards, procs, evStats, refStats)
				}
				out = append(out, SimBenchResult{
					Scenario:            sc.name,
					Shards:              shards,
					Cycles:              sc.cycles,
					Warmup:              sc.warmup,
					EventNsPerCycle:     float64(evDur.Nanoseconds()) / float64(sc.cycles),
					RefNsPerCycle:       float64(refDur.Nanoseconds()) / float64(sc.cycles),
					EventBuildNs:        evBuild.Nanoseconds(),
					RefBuildNs:          refBuild.Nanoseconds(),
					Speedup:             safeRatio(float64(refDur.Nanoseconds()), float64(evDur.Nanoseconds())),
					EventAllocsPerCycle: float64(evAlloc.Allocs) / measured,
					EventBytesPerCycle:  float64(evAlloc.Bytes) / measured,
					Delivered:           evStats.Delivered,
					GoMaxProcs:          procs,
				})
			}
		}
	}
	for _, cb := range compileBenchSpecs {
		row, err := runCompileBench(cb.name, cb.w, cb.h, cb.epochs, cb.seed)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ZeroAllocScenarios names the scenarios whose post-warmup window must
// allocate nothing: the drained idle mesh, the below-saturation
// inject→deliver→recycle loops (8x8 sequential and 32x32 sharded), and
// the past-saturation mesh whose full-run growth is prewarmed. Only the
// recovery-storm and adaptive-routing scenarios stay ungated: their
// windows are dominated by controller message churn and lazy
// routing-table state whose growth is legitimate. Every gated scenario
// is checked at every BenchShardCounts entry, so the sharded stepper's
// sinks, plans and wheels are held to the same zero as the sequential
// core — at saturation included.
var ZeroAllocScenarios = map[string]bool{
	"idle_mesh_16x16":         true,
	"saturation_8x8":          true,
	"saturation_steady_8x8":   true,
	"saturation_steady_16x16": true,
	"saturation_steady_32x32": true,
}

// zeroAllocNoiseBudget is the absolute number of heap objects a gated
// run may allocate before the gate fails. The window is measured with
// ReadMemStats, which counts every goroutine — including the runtime's
// own park/unpark machinery for the sharded stepper's workers, which
// very occasionally allocates a sudog or grows a deferred cache (≈1
// object per multi-thousand-cycle run, nondeterministically). A real
// per-cycle leak shows up as hundreds of objects per run, so a small
// absolute budget rejects leaks without flaking on scheduler noise.
const zeroAllocNoiseBudget = 8

// CheckZeroAlloc fails if any zero-alloc steady-state scenario reported
// heap allocation in its measured window, at any shard count (beyond
// the scheduler-noise budget above). This is the regression gate CI
// runs over BENCH_sim.json.
func CheckZeroAlloc(rs []SimBenchResult) error {
	checked := 0
	for _, r := range rs {
		if !ZeroAllocScenarios[r.Scenario] {
			continue
		}
		checked++
		window := float64(r.Cycles - r.Warmup)
		if r.EventAllocsPerCycle*window > zeroAllocNoiseBudget {
			return fmt.Errorf("zero-alloc gate: %s (shards=%d) allocated %.4g objects/cycle (%.4g B/cycle) after warmup",
				r.Scenario, r.Shards, r.EventAllocsPerCycle, r.EventBytesPerCycle)
		}
	}
	if checked == 0 {
		return fmt.Errorf("zero-alloc gate: no gated scenarios present in results")
	}
	return nil
}

// WriteSimBenchJSON writes results as indented JSON (the BENCH_sim.json
// format: a top-level array of SimBenchResult).
func WriteSimBenchJSON(w io.Writer, rs []SimBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// PrintSimBench renders the comparison as a table.
func PrintSimBench(w io.Writer, rs []SimBenchResult) {
	fmt.Fprintf(w, "%-30s %7s %8s %14s %14s %8s %11s %12s %12s %10s\n",
		"scenario", "shards", "cycles", "event ns/cyc", "ref ns/cyc", "speedup", "build us", "allocs/cyc", "bytes/cyc", "delivered")
	for _, r := range rs {
		fmt.Fprintf(w, "%-30s %7d %8d %14.0f %14.0f %7.2fx %11.0f %12.3f %12.1f %10d\n",
			r.Scenario, r.Shards, r.Cycles, r.EventNsPerCycle, r.RefNsPerCycle, r.Speedup,
			float64(r.EventBuildNs)/1e3, r.EventAllocsPerCycle, r.EventBytesPerCycle, r.Delivered)
	}
}
