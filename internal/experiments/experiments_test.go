package experiments

import (
	"bytes"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSchemeStrings(t *testing.T) {
	if SpanningTree.String() != "sp_tree" || EscapeVC.String() != "escape_vc" ||
		StaticBubble.String() != "static_bubble" || Scheme(9).String() != "Scheme(9)" {
		t.Fatal("unexpected scheme strings")
	}
	if SpanningTree.EnergyKey() != "tree" || EscapeVC.EnergyKey() != "evc" ||
		StaticBubble.EnergyKey() != "sb" {
		t.Fatal("unexpected energy keys")
	}
}

func TestBuildSchemes(t *testing.T) {
	p := Quick()
	topo := topology.NewMesh(8, 8)
	tree := p.Build(topo.Clone(), SpanningTree, 1)
	if tree.UpDown == nil || tree.Alg.Name() != "spanning_tree" || tree.SB != nil {
		t.Fatal("spanning tree instance misconfigured")
	}
	p.TreeBaselineAllLinks = true
	treeAL := p.Build(topo.Clone(), SpanningTree, 1)
	if treeAL.Alg.Name() != "updown" {
		t.Fatal("all-links baseline variant misconfigured")
	}
	p.TreeBaselineAllLinks = false
	evc := p.Build(topo.Clone(), EscapeVC, 1)
	if evc.UpDown == nil || evc.Sim.VCFilter == nil || evc.Sim.OutputOverride == nil {
		t.Fatal("escape VC instance misconfigured")
	}
	sb := p.Build(topo.Clone(), StaticBubble, 1)
	if sb.SB == nil || len(sb.SB.BubbleRouters()) != 21 {
		t.Fatal("static bubble instance misconfigured")
	}
}

func TestSampleTopologyDeterministic(t *testing.T) {
	p := Quick()
	a := p.SampleTopology(topology.LinkFaults, 10, 3)
	b := p.SampleTopology(topology.LinkFaults, 10, 3)
	if a.AliveLinkCount() != b.AliveLinkCount() || a.String() != b.String() {
		t.Fatal("sampling not deterministic")
	}
	c := p.SampleTopology(topology.LinkFaults, 10, 4)
	if a.String() != c.String() {
		// strings only count totals; topologies may still differ — fine.
		_ = c
	}
}

func TestFig2Shape(t *testing.T) {
	p := Quick()
	p.Topologies = 12
	rows := Fig2(p, map[topology.FaultKind][]int{
		topology.LinkFaults:   {1, 5, 90},
		topology.RouterFaults: {1, 40},
	})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Fig2Row{}
	for _, r := range rows {
		byKey[r.Kind.String()+string(rune('0'+r.Faults/10))] = r
	}
	// Low fault counts: essentially all topologies deadlock-prone.
	for _, r := range rows {
		if r.Faults <= 5 && r.ProneFraction < 0.99 {
			t.Fatalf("at %d %v faults prone fraction %.2f, want ~1", r.Faults, r.Kind, r.ProneFraction)
		}
		// Very high link-fault counts: heavily fragmented, fewer cycles.
		if r.Kind == topology.LinkFaults && r.Faults >= 90 && r.ProneFraction > 0.5 {
			t.Fatalf("at %d link faults prone fraction %.2f, want low", r.Faults, r.ProneFraction)
		}
	}
	var buf bytes.Buffer
	PrintFig2(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig3Shape(t *testing.T) {
	p := Quick()
	p.Topologies = 4
	p.MeasureCycles = 3000
	rows := Fig3(p, []int{5}, []float64{0.05, 0.15, 0.30})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	cum := rows[0].CumulativeDeadlocked
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("cumulative deadlock fraction must be monotone in rate")
		}
	}
	// At 0.30 flits/node/cycle with 5 link faults most topologies deadlock
	// (Fig 3 shows onset at 0.1–0.3).
	if cum[len(cum)-1] < 0.5 {
		t.Fatalf("cumulative at 0.30 = %.2f, expected most topologies deadlocked", cum[len(cum)-1])
	}
	var buf bytes.Buffer
	PrintFig3(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(Quick(), nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SBBuffers != 21 || rows[0].EscapeBuffers != 320 {
		t.Fatalf("8x8 row = %+v", rows[0])
	}
	if rows[1].SBBuffers != 89 || rows[1].EscapeBuffers != 1280 {
		t.Fatalf("16x16 row = %+v", rows[1])
	}
	for _, r := range rows {
		if !r.ClosedFormAgrees || !r.CoverageVerified {
			t.Fatalf("verification failed: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig8LowLoadShape(t *testing.T) {
	p := Quick()
	p.Topologies = 5
	rows := Fig8(p, []string{"uniform_random"}, map[topology.FaultKind][]int{
		topology.LinkFaults:   {15},
		topology.RouterFaults: {8},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sampled == 0 {
			t.Fatalf("no topologies sampled for %+v", r)
		}
		// Minimal-route schemes must not be slower than the tree at low
		// load (they equal it at worst); the paper reports ~20% savings.
		if r.AvgNorm[StaticBubble] > 1.02 {
			t.Fatalf("SB latency norm %.3f > 1 at %v=%d", r.AvgNorm[StaticBubble], r.Kind, r.Faults)
		}
		if r.AvgNorm[EscapeVC] > 1.02 {
			t.Fatalf("eVC latency norm %.3f > 1", r.AvgNorm[EscapeVC])
		}
		if r.AvgNorm[SpanningTree] != 1.0 {
			t.Fatalf("tree norm %.3f != 1", r.AvgNorm[SpanningTree])
		}
		// No deadlocks at low load: SB and eVC should be close.
		diff := r.AvgNorm[StaticBubble] - r.AvgNorm[EscapeVC]
		if diff > 0.1 || diff < -0.1 {
			t.Fatalf("SB and eVC diverge at low load: %.3f vs %.3f",
				r.AvgNorm[StaticBubble], r.AvgNorm[EscapeVC])
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig9ThroughputShape(t *testing.T) {
	p := Quick()
	p.Topologies = 4
	p.MeasureCycles = 4000
	rows := Fig9(p, map[topology.FaultKind][]int{
		topology.LinkFaults: {10},
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Norm[SpanningTree] != 1.0 {
		t.Fatalf("tree norm = %.3f", r.Norm[SpanningTree])
	}
	// The paper's headline: SB throughput well above the tree, and above
	// escape VC (which reserves a VC).
	if r.Norm[StaticBubble] <= 1.0 {
		t.Fatalf("SB throughput norm %.3f, want > 1 (tree)", r.Norm[StaticBubble])
	}
	if r.Norm[StaticBubble] <= r.Norm[EscapeVC]*0.95 {
		t.Fatalf("SB %.3f should be at or above eVC %.3f", r.Norm[StaticBubble], r.Norm[EscapeVC])
	}
	var buf bytes.Buffer
	PrintFig9(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig10EnergyShape(t *testing.T) {
	p := Quick()
	p.Topologies = 3
	rows := Fig10(p, []int{7})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var tree, sb, evc Fig10Row
	for _, r := range rows {
		switch r.Scheme {
		case SpanningTree:
			tree = r
		case StaticBubble:
			sb = r
		case EscapeVC:
			evc = r
		}
	}
	if tree.Total != 1.0 {
		t.Fatalf("tree total = %.3f, want 1", tree.Total)
	}
	// Escape VC pays the Table-I buffer overhead in leakage.
	if evc.RouterLeakage <= sb.RouterLeakage {
		t.Fatalf("eVC leakage %.3f should exceed SB %.3f", evc.RouterLeakage, sb.RouterLeakage)
	}
	// Minimal routes reduce dynamic energy versus the tree.
	if sb.LinkDynamic > tree.LinkDynamic*1.02 {
		t.Fatalf("SB link dynamic %.3f should not exceed tree %.3f", sb.LinkDynamic, tree.LinkDynamic)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig11ThresholdShape(t *testing.T) {
	p := Quick()
	p.Topologies = 2
	p.MeasureCycles = 6000
	rows := Fig11(p, []int64{5, 60})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, high := rows[0], rows[1]
	// Fewer probes at higher thresholds (exponential decline in the paper).
	if low.ProbesSent <= high.ProbesSent {
		t.Fatalf("probes at tDD=5 (%.0f) should exceed tDD=60 (%.0f)",
			low.ProbesSent, high.ProbesSent)
	}
	// Flits dominate link usage in all configurations.
	for _, r := range rows {
		if r.FlitUtil <= r.ProbeUtil {
			t.Fatalf("flit utilization %.4f should dominate probes %.4f", r.FlitUtil, r.ProbeUtil)
		}
	}
	var buf bytes.Buffer
	PrintFig11(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig12AppShape(t *testing.T) {
	p := Quick()
	p.Topologies = 2
	apps := []traffic.AppProfile{traffic.Rodinia()[4]} // BFS: light
	rows := Fig12(p, apps, map[topology.FaultKind][]int{
		topology.LinkFaults:   {4},
		topology.RouterFaults: {4},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sampled == 0 {
			t.Fatalf("no usable topologies: %+v", r)
		}
		// Minimal-route schemes should be at least as good as the tree.
		if r.Norm[StaticBubble] < 0.9 {
			t.Fatalf("SB app throughput norm %.3f unexpectedly low", r.Norm[StaticBubble])
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig13ParsecShape(t *testing.T) {
	p := Quick()
	p.Topologies = 2
	apps := []traffic.AppProfile{traffic.Parsec()[3]} // swaptions: lightest
	rows := Fig13(p, apps)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Sampled == 0 {
		t.Fatal("no usable topologies")
	}
	// PARSEC loads see no deadlocks: SB ≈ eVC runtime, both ≤ tree.
	if r.RuntimeNorm[StaticBubble] > 1.05 {
		t.Fatalf("SB runtime norm %.3f > 1", r.RuntimeNorm[StaticBubble])
	}
	// SB EDP beats eVC EDP (buffer overhead) and the tree.
	if r.EDPNorm[StaticBubble] >= r.EDPNorm[EscapeVC] {
		t.Fatalf("SB EDP %.3f should beat eVC %.3f", r.EDPNorm[StaticBubble], r.EDPNorm[EscapeVC])
	}
	if r.EDPNorm[StaticBubble] >= 1.0 {
		t.Fatalf("SB EDP %.3f should beat the tree", r.EDPNorm[StaticBubble])
	}
	var buf bytes.Buffer
	PrintFig13(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestStepRange(t *testing.T) {
	got := stepRange(1, 10, 3)
	want := []int{1, 4, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("stepRange = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stepRange = %v, want %v", got, want)
		}
	}
}

func TestMeanAndSafeRatio(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
	if mean([]float64{2, 4}) != 3 {
		t.Fatal("mean broken")
	}
	if safeRatio(4, 2) != 2 || safeRatio(4, 0) != 1 {
		t.Fatal("safeRatio broken")
	}
}

func TestMCReachable(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	if !mcReachable(topo) {
		t.Fatal("healthy mesh must be usable")
	}
	heavy := topology.NewMesh(4, 4)
	for i := 0; i < 12; i++ {
		heavy.DisableRouter(topology.NewMesh(4, 4).AliveRouters()[i])
	}
	if mcReachable(heavy) {
		t.Fatal("mostly-dead mesh should be rejected")
	}
}

func TestAblationVariants(t *testing.T) {
	p := Quick()
	rows := Ablation(p)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.Recoveries == 0 {
			t.Fatalf("variant %s never recovered", r.Variant)
		}
		if r.RecoveryCycles >= 200000 {
			t.Fatalf("variant %s failed to drain", r.Variant)
		}
	}
	if byName["paper_placement"].Buffers != 21 {
		t.Fatalf("paper placement buffers = %d", byName["paper_placement"].Buffers)
	}
	if byName["bubble_everywhere"].Buffers != 64 {
		t.Fatalf("everywhere buffers = %d", byName["bubble_everywhere"].Buffers)
	}
	if byName["paper_no_check_probe"].CheckProbes != 0 {
		t.Fatal("no-check-probe variant sent check probes")
	}
	if byName["paper_placement"].CheckProbes == 0 {
		t.Fatal("paper variant should use check probes")
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestScaleStudyShape(t *testing.T) {
	p := Quick()
	p.Topologies = 2
	p.MeasureCycles = 1500
	rows := Scale(p, [][2]int{{4, 4}, {6, 6}})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Bubbles != 5 { // 4x4: diagonal (1,1),(2,2),(3,3) plus (1,3),(3,1)
		t.Fatalf("4x4 bubbles = %d", rows[0].Bubbles)
	}
	if rows[1].Bubbles != 11 {
		t.Fatalf("6x6 bubbles = %d", rows[1].Bubbles)
	}
	for _, r := range rows {
		if r.BubbleFraction <= 0 || r.BubbleFraction > 0.5 {
			t.Fatalf("bubble fraction %.3f out of range", r.BubbleFraction)
		}
		if r.Norm[StaticBubble] <= 0 {
			t.Fatalf("degenerate saturation result: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintScale(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFailureTimelineShape(t *testing.T) {
	p := Quick()
	p.Topologies = 2
	p.MeasureCycles = 3000
	rows := FailureTimeline(p, 800, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]FailureTimelineRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Sampled == 0 || r.Delivered == 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	if byLabel["static_bubble"].ReconfigStall != 0 {
		t.Fatal("SB must pay no reconfiguration stall")
	}
	if byLabel["sp_tree"].ReconfigStall != 800 {
		t.Fatal("tree must pay the stall")
	}
	// With stalls, the tree schemes inject (and so deliver) less.
	if byLabel["static_bubble"].Delivered <= byLabel["sp_tree"].Delivered {
		t.Fatalf("SB delivered %d should exceed stalled tree %d",
			byLabel["static_bubble"].Delivered, byLabel["sp_tree"].Delivered)
	}
	if _, ok := byLabel["disha"]; !ok {
		t.Fatal("DISHA row missing")
	}
	var buf bytes.Buffer
	PrintFailureTimeline(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestInstancePatternVariants(t *testing.T) {
	p := Quick()
	inst := p.Build(topology.NewMesh(4, 4), StaticBubble, 1)
	if inst.Pattern("bit_complement").Name() != "bit_complement" {
		t.Fatal("bit_complement pattern")
	}
	if inst.Pattern("transpose").Name() != "transpose" {
		t.Fatal("transpose pattern")
	}
	if inst.Pattern("anything_else").Name() != "uniform_random" {
		t.Fatal("default pattern")
	}
}

func TestMeasureWindowing(t *testing.T) {
	// The measurement window must exclude warmup deliveries from the
	// window-latency average but keep cumulative stats intact.
	p := Quick()
	p.WarmupCycles = 500
	p.MeasureCycles = 1500
	inst := p.Build(topology.NewMesh(4, 4), StaticBubble, 1)
	inj := inst.Injector(inst.Pattern("uniform_random"), 0.05, 2)
	m := measure(p, inst, inj)
	if m.Delivered <= 0 {
		t.Fatal("no deliveries in the window")
	}
	if m.AvgLatency <= 0 || m.AcceptedFlits <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.Cycles != int64(p.WarmupCycles+p.MeasureCycles) {
		t.Fatalf("cycles = %d", m.Cycles)
	}
	// Window deliveries must be below cumulative deliveries (warmup
	// traffic existed).
	if m.Delivered >= m.Stats.Delivered {
		t.Fatal("window should exclude warmup deliveries")
	}
}
