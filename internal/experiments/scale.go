package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/topology"
)

// ScaleRow is one mesh size of the scale study: placement cost and
// saturation throughput of the three schemes at a fixed relative fault
// level.
type ScaleRow struct {
	Width, Height int
	// Bubbles is the SB placement size; BubbleFraction its share of
	// routers.
	Bubbles        int
	BubbleFraction float64
	// Faults is the absolute link-fault count used (≈10% of links).
	Faults int
	// Norm is saturation throughput normalized to the spanning tree;
	// Abs the tree's absolute accepted rate.
	Norm    [3]float64
	Abs     float64
	Sampled int
}

// Scale is an extension beyond the paper's evaluation: it repeats the
// Fig. 9 saturation measurement across mesh sizes (the paper simulates
// 8×8 only and gives 16×16 placement counts in Table I), showing that the
// placement cost stays sublinear in routers while the throughput
// advantage persists. Nil sizes selects 4×4, 8×8, and 12×12.
func Scale(p Params, sizes [][2]int) []ScaleRow {
	p = p.withDefaults()
	if sizes == nil {
		sizes = [][2]int{{4, 4}, {8, 8}, {12, 12}}
	}
	var rows []ScaleRow
	for _, sz := range sizes {
		pp := p
		pp.Width, pp.Height = sz[0], sz[1]
		faults := topology.MaxFaults(sz[0], sz[1], topology.LinkFaults) / 10
		point := fig9PointWith(pp, topology.LinkFaults, faults)
		rows = append(rows, ScaleRow{
			Width: sz[0], Height: sz[1],
			Bubbles:        core.PlacementCount(sz[0], sz[1]),
			BubbleFraction: float64(core.PlacementCount(sz[0], sz[1])) / float64(sz[0]*sz[1]),
			Faults:         faults,
			Norm:           point.Norm,
			Abs:            point.Abs,
			Sampled:        point.Sampled,
		})
	}
	return rows
}

// fig9PointWith reuses the Fig. 9 measurement at explicit params.
func fig9PointWith(p Params, kind topology.FaultKind, faults int) Fig9Row {
	return fig9Point(p, kind, faults)
}

// PrintScale writes the study.
func PrintScale(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "Scale study: placement cost and saturation advantage across mesh sizes\n")
	fmt.Fprintf(w, "%-8s %-9s %-9s %-7s %-10s %-10s %-14s %s\n",
		"mesh", "bubbles", "frac", "faults", "eVC", "SB", "tree(fl/n/cy)", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%dx%-6d %-9d %-9.3f %-7d %-10.3f %-10.3f %-14.4f %d\n",
			r.Width, r.Height, r.Bubbles, r.BubbleFraction, r.Faults,
			r.Norm[EscapeVC], r.Norm[StaticBubble], r.Abs, r.Sampled)
	}
}
