package experiments

import (
	"strings"
	"testing"
)

// benchSimScenario runs one named scenario under one core per iteration
// (compatible with the CI smoke tier's -benchtime=1x).
func benchSimScenario(b *testing.B, name string, ref bool) {
	for _, sc := range simBenchScenarios() {
		if sc.name != name {
			continue
		}
		var cycles int64
		for i := 0; i < b.N; i++ {
			stats, _, _, _ := runSimScenario(sc, ref, 1)
			if stats.Delivered == 0 {
				b.Fatalf("%s delivered nothing", name)
			}
			cycles += int64(sc.cycles)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
		return
	}
	b.Fatalf("unknown scenario %q", name)
}

func BenchmarkSimEventIdleMesh(b *testing.B) { benchSimScenario(b, "idle_mesh_16x16", false) }
func BenchmarkSimRefIdleMesh(b *testing.B)   { benchSimScenario(b, "idle_mesh_16x16", true) }
func BenchmarkSimEventSaturation(b *testing.B) {
	benchSimScenario(b, "saturation_8x8", false)
}
func BenchmarkSimRefSaturation(b *testing.B) { benchSimScenario(b, "saturation_8x8", true) }
func BenchmarkSimEventSaturationSteady(b *testing.B) {
	benchSimScenario(b, "saturation_steady_8x8", false)
}
func BenchmarkSimRefSaturationSteady(b *testing.B) {
	benchSimScenario(b, "saturation_steady_8x8", true)
}
func BenchmarkSimEventRecoveryBurst(b *testing.B) {
	benchSimScenario(b, "recovery_burst_8x8_irregular", false)
}
func BenchmarkSimRefRecoveryBurst(b *testing.B) {
	benchSimScenario(b, "recovery_burst_8x8_irregular", true)
}
func BenchmarkSimEventRouteHeavyAdaptive(b *testing.B) {
	benchSimScenario(b, "route_heavy_adaptive_16x16", false)
}
func BenchmarkSimRefRouteHeavyAdaptive(b *testing.B) {
	benchSimScenario(b, "route_heavy_adaptive_16x16", true)
}

// TestSimBenchCoresAgree runs every benchmark scenario under the
// refmodel and the event core at every BenchShardCounts entry, and
// requires identical Stats (SimBench errors on any divergence). The
// timing numbers themselves are environment-dependent and are asserted
// only by inspection (EXPERIMENTS.md / BENCH_sim.json), but a speedup
// below 1 on the big idle mesh would mean the event core lost its entire
// reason to exist, so flag it.
func TestSimBenchCoresAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("bench scenarios are seconds-long; skipped under -short")
	}
	rs, err := SimBench()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(simBenchScenarios())*len(BenchShardCounts) + len(compileBenchSpecs); len(rs) != want {
		t.Fatalf("expected %d rows (%d scenarios x %d shard counts + %d compile rows), got %d",
			want, len(simBenchScenarios()), len(BenchShardCounts), len(compileBenchSpecs), len(rs))
	}
	for _, r := range rs {
		if strings.HasPrefix(r.Scenario, "compile_") {
			// Compile rows time the recompiler, not the simulator: their
			// "event" core is the incremental recompile, their "refmodel"
			// the from-scratch parallel compile. Single-link churn must
			// keep incremental epochs ≥10x cheaper than cold compiles at
			// 32x32 — the headline claim of the incremental recompiler
			// (the margin is ~100x, so 10x is noise-safe).
			if r.Scenario == "compile_32x32" && r.Speedup < 10 {
				t.Errorf("%s: incremental epoch only %.1fx cheaper than full recompile (want >=10x)",
					r.Scenario, r.Speedup)
			}
			t.Logf("%s: incremental %.0f ns/epoch, full %.0f ns/epoch, speedup %.1fx",
				r.Scenario, r.EventNsPerCycle, r.RefNsPerCycle, r.Speedup)
			continue
		}
		if r.Delivered == 0 {
			t.Errorf("%s (shards=%d): delivered nothing — scenario is not exercising the core",
				r.Scenario, r.Shards)
		}
		t.Logf("%s shards=%d: event %.0f ns/cyc, refmodel %.0f ns/cyc, speedup %.2fx, %.3f allocs/cyc, %.1f B/cyc",
			r.Scenario, r.Shards, r.EventNsPerCycle, r.RefNsPerCycle, r.Speedup,
			r.EventAllocsPerCycle, r.EventBytesPerCycle)
	}
	if rs[0].Speedup < 1 {
		t.Errorf("event core slower than full scan on the idle mesh (%.2fx)", rs[0].Speedup)
	}
	// The pooled steady-state scenarios must be allocation-free in their
	// measured windows — the tentpole property of the packet/route arenas.
	if err := CheckZeroAlloc(rs); err != nil {
		t.Error(err)
	}
}
