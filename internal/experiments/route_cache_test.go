package experiments

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestSweepSharesCompiledTables is the ISSUE's cross-sweep acceptance
// property: building every scheme over 100 seeds of one topology — each
// on its own Clone(), as the figure sweeps do — must compile exactly one
// routing table per (topology content, algorithm) pair and serve the
// rest from the cache.
func TestSweepSharesCompiledTables(t *testing.T) {
	routing.ResetTableCache()
	defer routing.ResetTableCache()

	p := Quick()
	base := p.SampleTopology(topology.LinkFaults, 16, 0)
	const seeds = 100
	for seed := 0; seed < seeds; seed++ {
		for _, sch := range Schemes {
			inst := p.Build(base.Clone(), sch, int64(seed))
			if inst.Alg == nil {
				t.Fatalf("scheme %v built no algorithm", sch)
			}
		}
	}
	s := routing.CacheStats()
	// Distinct artifacts: "minimal" (EscapeVC + StaticBubble share it),
	// "updown/lowest_id" (SpanningTree), "updown/median" (EscapeVC).
	if s.Compiles != 3 {
		t.Fatalf("%d seeds x %d schemes compiled %d tables, want 3 (%s)",
			seeds, len(Schemes), s.Compiles, s)
	}
	// Requests: 1 per SpanningTree + 2 per EscapeVC + 1 per StaticBubble.
	wantHits := int64(seeds*4 - 3)
	if s.Hits != wantHits || s.Entries != 3 {
		t.Fatalf("stats %+v, want %d hits / 3 entries", s, wantHits)
	}
}
