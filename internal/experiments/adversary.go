package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/perturb"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AdversaryResult bundles the search outcome with the space it searched
// (needed to render gene indices as physical settings).
type AdversaryResult struct {
	Space  adversary.Space
	Result adversary.Result
}

// Adversary runs the worst-case SLO search: an adversarial hill climb
// over (topology faults × traffic × control-plane perturbation), with
// every candidate evaluated as a full Static Bubble simulation on the
// sweep engine. Each generation's candidate batch is one sweep.Run, so
// evaluations parallelize across workers and land in the on-disk result
// cache under gene-content keys — a repeated or resumed search replays
// instantly.
func Adversary(p Params, cfg adversary.Config) (AdversaryResult, error) {
	p = p.withDefaults()
	if cfg.Space.Topologies == 0 {
		cfg.Space = adversary.DefaultSpace()
	}
	sp := cfg.Space
	eng := p.engine()

	eval := func(genes []adversary.Gene) []adversary.Outcome {
		key := func(i int) *sweep.Key { return adversaryCellKey(p, sp, genes[i]) }
		results := sweep.Run(eng, len(genes), key,
			func(i int, seed int64) (adversary.Outcome, error) {
				return adversaryEvaluate(p, sp, genes[i], seed), nil
			})
		outs := make([]adversary.Outcome, len(genes))
		for i, r := range results {
			if r.OK() {
				outs[i] = r.Value
			}
			// A cancelled or panicked cell scores zero: the search simply
			// never climbs toward it.
		}
		return outs
	}

	res, err := adversary.Search(cfg, eval)
	return AdversaryResult{Space: sp, Result: res}, err
}

// adversaryCellKey is the cache/seed identity of one gene evaluation. It
// encodes the gene's physical settings (not its indices), so reshaping
// the search space never aliases or orphans cached cells.
func adversaryCellKey(p Params, sp adversary.Space, g adversary.Gene) *sweep.Key {
	return p.cellKey("adversary").
		Str("kind", sp.FaultKinds[g.Kind]).
		Int("faults", sp.FaultCounts[g.Faults]).
		Int("topo", g.Topo).
		Str("pattern", sp.Patterns[g.Pattern]).
		Str("traffic", sp.Traffics[g.Traffic]).
		Float("rate", sp.Rates[g.Rate]).
		Float("loss", sp.Loss[g.Loss]).
		Float("jitter", sp.Jitter[g.Jitter]).
		Float("reorder", sp.Reorder[g.Reorder]).
		Float("dup", sp.Dup[g.Dup])
}

// adversaryEvaluate measures one gene: build the damaged topology,
// attach Static Bubble behind the configured perturber, drive the
// configured traffic process for warmup+measure, then attempt a bounded
// drain to detect a wedged network. Deterministic per (gene, seed).
func adversaryEvaluate(p Params, sp adversary.Space, g adversary.Gene, seed int64) adversary.Outcome {
	kind := topology.LinkFaults
	if sp.FaultKinds[g.Kind] == "router" {
		kind = topology.RouterFaults
	}
	faults := sp.FaultCounts[g.Faults]
	if max := topology.MaxFaults(p.Width, p.Height, kind); faults > max {
		faults = max
	}
	topo := p.SampleTopology(kind, faults, g.Topo)

	s := network.New(topo, network.Config{Shards: p.Shards}, rand.New(rand.NewSource(sweep.SubSeed(seed, 0))))
	knobs := perturb.Knobs{
		Loss:    sp.Loss[g.Loss],
		Jitter:  sp.Jitter[g.Jitter],
		Reorder: sp.Reorder[g.Reorder],
		Dup:     sp.Dup[g.Dup],
	}
	var pb *perturb.Perturber
	var pbIface core.Perturber
	if !knobs.IsZero() {
		pb = perturb.New(perturb.Config{Default: knobs, Seed: sweep.SubSeed(seed, 1)})
		pbIface = pb
	}
	c := core.Attach(s, core.Options{TDD: p.TDD, Spin: p.SpinMode, Perturb: pbIface})
	inst := &Instance{Scheme: StaticBubble, Sim: s, Alg: routing.MinimalFor(topo), SB: c}

	alive := topo.AliveRouters()
	pattern := inst.Pattern(sp.Patterns[g.Pattern])
	rate := sp.Rates[g.Rate]
	var inj interface{ Tick(*network.Sim) }
	switch sp.Traffics[g.Traffic] {
	case "pareto":
		inj = traffic.NewParetoOnOff(alive, inst.Alg, pattern, rate,
			rand.New(rand.NewSource(sweep.SubSeed(seed, 2))))
	case "tenants":
		// Two-tenant mix: a latency-sensitive control-heavy class plus a
		// bulk class on the chosen pattern, splitting the gene's rate.
		inj = traffic.NewTenantMix(alive, inst.Alg, []traffic.TenantClass{
			{Name: "latency", Pattern: traffic.NewUniformRandom(alive), RateFlits: rate * 0.3,
				CtrlFraction: 0.9, CtrlVnet: 0, DataVnet: 1},
			{Name: "bulk", Pattern: pattern, RateFlits: rate * 0.7,
				CtrlFraction: 0.1, DataLen: 5, CtrlVnet: 2, DataVnet: 2},
		}, sweep.SubSeed(seed, 2))
	default: // "bernoulli"
		inj = inst.Injector(pattern, rate, sweep.SubSeed(seed, 2))
	}

	m := measure(p, inst, inj)

	var out adversary.Outcome
	out.Recoveries = m.Stats.DeadlockRecoveries
	out.DeadlockFreq = float64(m.Stats.DeadlockRecoveries) / float64(m.Cycles) * 1000
	out.AvgLatency = m.AvgLatency
	out.Delivered = m.Delivered
	var sample stats.Sample
	for _, r := range c.RecoveryRecords() {
		sample.Add(float64(r.Duration))
	}
	out.RecoveryP50 = sample.Percentile(50)
	out.RecoveryP99 = sample.Percentile(99)
	out.Wedged = drainWedged(s)
	return out
}

// drainWedged stops injection and gives the network a bounded chance to
// make progress. Wedged means a full progress window elapsed with
// packets in the network, not a single delivery, and not a single
// completed recovery — the protocol has failed to restore liveness.
// Saturated-but-live configurations keep delivering and pass; a deadlock
// mid-recovery completes a round and passes. The adversarial search
// rewards this outcome maximally (it is the SLO-breaking one): per-hop
// probe loss makes a full cycle traversal exponentially unlikely in the
// cycle length, so sufficiently hostile control planes can pin a
// deadlock in place indefinitely while probes retransmit forever.
func drainWedged(s *network.Sim) bool {
	const window = 2000
	const windows = 5
	for w := 0; w < windows; w++ {
		if s.InFlight() == 0 && s.QueuedPackets() == 0 {
			return false
		}
		delivered, recovered := s.Stats.Delivered, s.Stats.DeadlockRecoveries
		s.Run(window)
		if s.Stats.Delivered == delivered && s.Stats.DeadlockRecoveries == recovered {
			return true
		}
	}
	// Still draining but making progress every window: live.
	return false
}

// AdversaryConfig builds the search configuration for a scale preset;
// evals caps unique simulations (0 keeps the preset default).
func AdversaryConfig(quick bool, seed int64, evals int) adversary.Config {
	cfg := adversary.Config{Seed: seed}
	if quick {
		cfg.Restarts, cfg.Generations, cfg.Neighbors = 2, 3, 2
		cfg.MaxEvals, cfg.TopK = 12, 8
	} else {
		cfg.Restarts, cfg.Generations, cfg.Neighbors = 4, 8, 3
		cfg.MaxEvals, cfg.TopK = 80, 12
	}
	if evals > 0 {
		cfg.MaxEvals = evals
	}
	return cfg
}

// PrintAdversary writes the worst-case SLO table.
func PrintAdversary(w io.Writer, r AdversaryResult) {
	fmt.Fprintf(w, "Adversarial worst-case SLO search (%d unique evals, %d proposals)\n",
		r.Result.Evals, r.Result.Proposed)
	fmt.Fprintf(w, "%-9s %-44s %-8s %-8s %-8s %-8s %-9s %s\n",
		"score", "scenario", "recov", "rec/kcy", "p50", "p99", "avg_lat", "wedged")
	for _, e := range r.Result.Table {
		o := e.Outcome
		fmt.Fprintf(w, "%-9.1f %-44s %-8d %-8.3f %-8.0f %-8.0f %-9.1f %v\n",
			o.Score(), r.Space.Describe(e.Gene), o.Recoveries, o.DeadlockFreq,
			o.RecoveryP50, o.RecoveryP99, o.AvgLatency, o.Wedged)
	}
}

// AdversaryCSV writes the table in machine-readable form.
func AdversaryCSV(w io.Writer, r AdversaryResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"score", "kind", "faults", "topo", "pattern", "traffic", "rate",
		"loss", "jitter", "reorder", "dup",
		"recoveries", "recoveries_per_kcycle", "recovery_p50", "recovery_p99",
		"avg_latency", "delivered", "wedged",
	}); err != nil {
		return err
	}
	sp := r.Space
	for _, e := range r.Result.Table {
		g, o := e.Gene, e.Outcome
		rec := []string{
			fmt.Sprintf("%.2f", o.Score()),
			sp.FaultKinds[g.Kind], strconv.Itoa(sp.FaultCounts[g.Faults]), strconv.Itoa(g.Topo),
			sp.Patterns[g.Pattern], sp.Traffics[g.Traffic], fmt.Sprintf("%.3f", sp.Rates[g.Rate]),
			fmt.Sprintf("%.3f", sp.Loss[g.Loss]), fmt.Sprintf("%.3f", sp.Jitter[g.Jitter]),
			fmt.Sprintf("%.3f", sp.Reorder[g.Reorder]), fmt.Sprintf("%.3f", sp.Dup[g.Dup]),
			strconv.FormatInt(o.Recoveries, 10), fmt.Sprintf("%.4f", o.DeadlockFreq),
			fmt.Sprintf("%.1f", o.RecoveryP50), fmt.Sprintf("%.1f", o.RecoveryP99),
			fmt.Sprintf("%.2f", o.AvgLatency), strconv.FormatInt(o.Delivered, 10),
			strconv.FormatBool(o.Wedged),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
