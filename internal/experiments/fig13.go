package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/energy"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig13Row is one PARSEC-like workload's runtime and network EDP, per
// scheme, normalized to the spanning tree, with 4 link faults.
type Fig13Row struct {
	App string
	// RuntimeNorm and EDPNorm are indexed by Scheme.
	RuntimeNorm [3]float64
	EDPNorm     [3]float64
	Sampled     int
}

// Fig13 reproduces the PARSEC full-system comparison (paper Fig. 13):
// application runtime (a) and network EDP (b) with 4 link faults.
// Nil apps selects the built-in PARSEC-like profiles.
func Fig13(p Params, apps []traffic.AppProfile) []Fig13Row {
	p = p.withDefaults()
	if apps == nil {
		apps = traffic.Parsec()
	}
	const faults = 4
	var rows []Fig13Row
	for _, app := range apps {
		maxCycles := appHorizon(app)
		type res struct {
			Runtime [3]float64
			EDP     [3]float64
			OK      bool
		}
		key := func(i int) *sweep.Key {
			return p.cellKey("fig13").Str("app", app.Name).
				Int("faults", faults).Int("topo", i)
		}
		results := sweep.Run(p.engine(), p.Topologies, key,
			func(i int, seed int64) (res, error) {
				var r res
				topo := p.SampleTopology(topology.LinkFaults, faults, i)
				if !mcReachable(topo) {
					return r, nil
				}
				r.OK = true
				for _, sch := range Schemes {
					inst := p.Build(topo.Clone(), sch, sweep.SubSeed(seed, 2*int(sch)))
					run := traffic.NewAppRun(inst.Sim, inst.Alg, app,
						rand.New(rand.NewSource(sweep.SubSeed(seed, 2*int(sch)+1))))
					out := run.Run(inst.Sim, maxCycles)
					if out.Runtime == 0 {
						r.OK = false
						break
					}
					r.Runtime[sch] = float64(out.Runtime)
					model := energy.Default32nm()
					extra := energy.SchemeOverheadBuffers(inst.Sim, sch.EnergyKey())
					b := model.Compute(inst.Sim, extra, inst.Sim.Now)
					r.EDP[sch] = b.EDP(float64(out.Runtime))
				}
				return r, nil
			})
		row := Fig13Row{App: app.Name}
		var rt, edp [3][]float64
		for _, res := range results {
			if !res.OK() || !res.Value.OK {
				continue
			}
			r := res.Value
			for _, sch := range Schemes {
				rt[sch] = append(rt[sch], safeRatio(r.Runtime[sch], r.Runtime[SpanningTree]))
				edp[sch] = append(edp[sch], safeRatio(r.EDP[sch], r.EDP[SpanningTree]))
			}
		}
		for _, sch := range Schemes {
			row.RuntimeNorm[sch] = mean(rt[sch])
			row.EDPNorm[sch] = mean(edp[sch])
		}
		row.Sampled = len(rt[SpanningTree])
		rows = append(rows, row)
	}
	return rows
}

// PrintFig13 writes runtime and EDP tables.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintf(w, "Fig 13: PARSEC-like runtime (a) and network EDP (b), 4 link faults, normalized to spanning tree\n")
	fmt.Fprintf(w, "%-16s %-12s %-12s %-10s %-10s %s\n",
		"app", "eVC runtime", "SB runtime", "eVC EDP", "SB EDP", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12.3f %-12.3f %-10.3f %-10.3f %d\n",
			r.App, r.RuntimeNorm[EscapeVC], r.RuntimeNorm[StaticBubble],
			r.EDPNorm[EscapeVC], r.EDPNorm[StaticBubble], r.Sampled)
	}
}
