package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// AblationRow compares design variants of the Static Bubble framework on
// a fixed recovery workload: the Section III placement, bubbles at every
// router (upper bound on cost), and the check_probe fast-path on/off.
type AblationRow struct {
	Variant string
	// Buffers is the number of extra buffers the variant adds to the mesh.
	Buffers int
	// RecoveryCycles is the mean number of cycles from workload start to
	// full drain of a constructed ring deadlock.
	RecoveryCycles float64
	// Recoveries and CheckProbes are protocol activity counts.
	Recoveries  float64
	CheckProbes float64
	Runs        int
}

// Ablation runs the design-choice ablations DESIGN.md calls out, on a
// constructed square-loop deadlock placed at several positions of the
// mesh.
func Ablation(p Params) []AblationRow {
	p = p.withDefaults()
	everywhere := make([]geom.NodeID, p.Width*p.Height)
	for i := range everywhere {
		everywhere[i] = geom.NodeID(i)
	}
	variants := []struct {
		name      string
		placement []geom.NodeID
		noCheck   bool
		spin      bool
	}{
		{"paper_placement", nil, false, false},
		{"paper_no_check_probe", nil, true, false},
		{"bubble_everywhere", everywhere, false, false},
		{"spin_followup", nil, false, true},
	}
	positions := [][2]int{{0, 0}, {2, 2}, {4, 3}, {5, 5}, {1, 4}}
	var rows []AblationRow
	for _, v := range variants {
		v := v
		type res struct {
			Buffers                            int
			RecoveryCycles, Recov, CheckProbes float64
		}
		key := func(i int) *sweep.Key {
			return p.cellKey("ablation").Str("variant", v.name).
				Int("x", positions[i][0]).Int("y", positions[i][1])
		}
		// The constructed ring-deadlock workload is fully deterministic;
		// the job seed is unused by design (the cell is still cached).
		results := sweep.Run(p.engine(), len(positions), key,
			func(i int, seed int64) (res, error) {
				pos := positions[i]
				topo := topology.NewMesh(p.Width, p.Height)
				s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
				c := core.Attach(s, core.Options{
					TDD:               p.TDD,
					Placement:         v.placement,
					DisableCheckProbe: v.noCheck,
					Spin:              v.spin,
				})
				var r res
				r.Buffers = len(c.BubbleRouters())
				total := primeSquareLoop(s, pos[0], pos[1], 10)
				start := s.Now
				for s.Stats.Delivered < int64(total) && s.Now-start < 200000 {
					s.Step()
				}
				r.RecoveryCycles = float64(s.Now - start)
				r.Recov = float64(s.Stats.DeadlockRecoveries)
				r.CheckProbes = float64(s.Stats.CheckProbesSent)
				return r, nil
			})
		row := AblationRow{Variant: v.name}
		for _, res := range results {
			if !res.OK() {
				continue
			}
			row.Buffers = res.Value.Buffers
			row.RecoveryCycles += res.Value.RecoveryCycles
			row.Recoveries += res.Value.Recov
			row.CheckProbes += res.Value.CheckProbes
			row.Runs++
		}
		if row.Runs > 0 {
			row.RecoveryCycles /= float64(row.Runs)
			row.Recoveries /= float64(row.Runs)
			row.CheckProbes /= float64(row.Runs)
		}
		rows = append(rows, row)
	}
	return rows
}

// primeSquareLoop wedges the unit square at (x, y) with clockwise 2-hop
// streams, perNode packets per corner, and returns the total offered.
func primeSquareLoop(s *network.Sim, x, y, perNode int) int {
	topo := s.Topo
	loop := []geom.NodeID{
		topo.ID(geom.Coord{X: x, Y: y}),
		topo.ID(geom.Coord{X: x, Y: y + 1}),
		topo.ID(geom.Coord{X: x + 1, Y: y + 1}),
		topo.ID(geom.Coord{X: x + 1, Y: y}),
	}
	total := 0
	for i, n := range loop {
		next, next2 := loop[(i+1)%4], loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

// PrintAblation writes the comparison.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation: SB design variants on constructed ring deadlocks (8x8 mesh)\n")
	fmt.Fprintf(w, "%-22s %-9s %-15s %-12s %-12s %s\n",
		"variant", "buffers", "drain(cycles)", "recoveries", "chk_probes", "runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-9d %-15.0f %-12.1f %-12.1f %d\n",
			r.Variant, r.Buffers, r.RecoveryCycles, r.Recoveries, r.CheckProbes, r.Runs)
	}
}
