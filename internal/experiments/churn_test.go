package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// churnTestCfg is small enough for the unit-test tier while still
// producing overlapping events (mean inter-failure 600 cycles against a
// mean 900-cycle repair ⇒ the steady state usually has >1 element down).
func churnTestCfg() ChurnConfig {
	return ChurnConfig{
		Cycles:     12_000,
		MeanFail:   600,
		MeanRepair: 900,
		Seeds:      1,
	}
}

func churnTestParams() Params {
	p := Quick()
	p.Topologies = 1
	return p
}

// TestChurnShape: all three contenders run the churn workload to
// completion with conservation intact, observe events, deliver traffic,
// and order as the downtime model dictates: Static Bubble (no stall)
// must not be less available than the globally-stalling tree re-election.
func TestChurnShape(t *testing.T) {
	rows := Churn(churnTestParams(), churnTestCfg())
	if len(rows) != 3 {
		t.Fatalf("want 3 contenders, got %d", len(rows))
	}
	byLabel := map[string]ChurnRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Sampled == 0 {
			t.Fatalf("%s: no run passed the conservation check", r.Label)
		}
		if r.Events == 0 {
			t.Fatalf("%s: churn produced no applied events", r.Label)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s: delivered nothing", r.Label)
		}
		if r.Availability <= 0 || r.Availability > 1 {
			t.Fatalf("%s: availability %v out of range", r.Label, r.Availability)
		}
		if r.RecP50 < 0 || r.RecP99 < r.RecP50 || r.RecP999 < r.RecP99 {
			t.Fatalf("%s: recovery percentiles not monotone: %v %v %v",
				r.Label, r.RecP50, r.RecP99, r.RecP999)
		}
		if r.PktP99 < r.PktP50 {
			t.Fatalf("%s: packet percentiles not monotone", r.Label)
		}
	}
	sb, tree, dbr := byLabel["static_bubble"], byLabel["sp_tree"], byLabel["dbr"]
	if sb.Stall != 0 || tree.Stall == 0 || dbr.Stall == 0 {
		t.Fatalf("stall model wrong: sb=%d tree=%d dbr=%d", sb.Stall, tree.Stall, dbr.Stall)
	}
	// Compile accounting: SB's manager compiles incrementally under churn
	// and every applied event produced a (possibly zero) compile sample.
	if sb.TabMisses == 0 || sb.TabIncremental == 0 {
		t.Fatalf("static_bubble table counters empty: %+v", sb)
	}
	if sb.CmpP99Ns < sb.CmpP50Ns {
		t.Fatalf("compile percentiles not monotone: p50=%v p99=%v", sb.CmpP50Ns, sb.CmpP99Ns)
	}
	// The baselines model their own rebuilds; manager counters stay zero.
	if tree.TabMisses != 0 || dbr.TabMisses != 0 {
		t.Fatalf("baseline rows should not carry manager table stats: tree=%+v dbr=%+v", tree, dbr)
	}
	if sb.Availability < tree.Availability {
		t.Fatalf("static_bubble availability %v below sp_tree %v despite zero stall",
			sb.Availability, tree.Availability)
	}
	// The tree's global 2000-cycle stall dominates its recovery tail; SB
	// events finish when damaged traffic lands, far sooner.
	if sb.RecP99 >= tree.RecP99 {
		t.Fatalf("static_bubble recP99 %v not below sp_tree %v", sb.RecP99, tree.RecP99)
	}
}

// TestChurnShardEquality: the static_bubble churn run — overlapping
// fail/recover events, in-place repair, controller resets and all — must
// be byte-identical between the sequential core and the 4-shard stepper.
// (The CI churn smoke tier runs the same check under -race.)
func TestChurnShardEquality(t *testing.T) {
	p := churnTestParams()
	cfg := churnTestCfg()
	a := ChurnShardStats(p, cfg, 1, 12345)
	b := ChurnShardStats(p, cfg, 4, 12345)
	if a != b {
		t.Fatalf("churn trajectories diverged across shard counts\nshards=1: %+v\nshards=4: %+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("shard-equality run delivered nothing")
	}
}

// TestChurnDeterminism: same parameters, same rows — the sweep cache
// depends on it.
func TestChurnDeterminism(t *testing.T) {
	p := churnTestParams()
	cfg := churnTestCfg()
	cfg.Cycles = 6000
	a := Churn(p, cfg)
	b := Churn(p, cfg)
	for i := range a {
		// The measured compile-time percentiles are wall clock — the one
		// field pair deliberately outside the determinism contract (the
		// recovery fold uses the deterministic entries model instead).
		a[i].CmpP50Ns, a[i].CmpP99Ns = 0, 0
		b[i].CmpP50Ns, b[i].CmpP99Ns = 0, 0
		if a[i] != b[i] {
			t.Fatalf("row %d differs across reruns:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestChurnCSV: the CSV emitter is well-formed and carries every row.
func TestChurnCSV(t *testing.T) {
	p := churnTestParams()
	cfg := churnTestCfg()
	cfg.Cycles = 6000
	rows := Churn(p, cfg)
	var buf bytes.Buffer
	if err := ChurnCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("want %d lines, got %d", len(rows)+1, len(lines))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("line %d has %d columns, want %d", i, got, wantCols)
		}
	}
	var tbl bytes.Buffer
	PrintChurn(&tbl, cfg, rows)
	for _, label := range []string{"static_bubble", "sp_tree", "dbr"} {
		if !strings.Contains(tbl.String(), label) {
			t.Fatalf("table output missing %s", label)
		}
	}
}
