package experiments

import (
	"repro/internal/network"
)

// RunMetrics is the outcome of one warmup+measure simulation run.
type RunMetrics struct {
	// AvgLatency and MaxLatency are total packet latencies (cycles) over
	// packets delivered in the measurement window.
	AvgLatency float64
	MaxLatency float64
	// AcceptedFlits is the delivered throughput in flits/node/cycle over
	// the measurement window (the saturation-throughput metric when the
	// offered load exceeds capacity).
	AcceptedFlits float64
	// Delivered is the packet count in the measurement window.
	Delivered int64
	// Stats is the final cumulative simulator state (for energy and
	// protocol counters).
	Stats network.Stats
	// Cycles is the total simulated horizon (warmup + measure).
	Cycles int64
}

// measure drives the instance with the given injector for
// p.WarmupCycles + p.MeasureCycles and reports window metrics.
func measure(p Params, inst *Instance, inj interface{ Tick(*network.Sim) }) RunMetrics {
	p = p.withDefaults()
	s := inst.Sim
	for c := 0; c < p.WarmupCycles; c++ {
		inj.Tick(s)
		s.Step()
	}
	base := s.Stats
	baseNow := s.Now
	for c := 0; c < p.MeasureCycles; c++ {
		inj.Tick(s)
		s.Step()
	}
	cur := s.Stats
	window := cur
	window.Delivered -= base.Delivered
	window.SumLatency -= base.SumLatency
	window.DeliveredFlits -= base.DeliveredFlits

	m := RunMetrics{
		MaxLatency: float64(cur.MaxLatency),
		Delivered:  window.Delivered,
		Stats:      cur,
		Cycles:     s.Now,
	}
	if window.Delivered > 0 {
		m.AvgLatency = float64(window.SumLatency) / float64(window.Delivered)
	}
	nodes := s.Topo.AliveRouterCount()
	if nodes > 0 && s.Now > baseNow {
		m.AcceptedFlits = float64(window.DeliveredFlits) / float64(s.Now-baseNow) / float64(nodes)
	}
	return m
}
