package experiments

// Scale16 regenerates the paper's 16×16 scale point (Table I: 256
// routers, 89 static bubbles) as a timing experiment for the sharded
// stepper: one fixed recovery-storm trajectory — an irregular 16×16
// topology under adversarial link faults with injection heavy enough to
// keep deadlock recovery active — run once per shard count. Every run
// must land on byte-identical Stats (the shard determinism contract,
// DESIGN.md §9); the rows then compare wall-clock per simulated cycle
// against the sequential Shards=1 core. Results feed the EXPERIMENTS.md
// scale16 section via sbsweep -fig scale16.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Scale16Result is the timing of the 16×16 recovery storm at one shard
// count.
type Scale16Result struct {
	Shards     int     `json:"shards"`
	Cycles     int     `json:"cycles"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// Speedup is Shards=1 step time / this row's step time.
	Speedup float64 `json:"speedup_vs_1"`
	// Delivered and Recoveries are identical across all rows — verified.
	Delivered  int64 `json:"delivered"`
	Recoveries int64 `json:"deadlock_recoveries"`
	// SBRouters is the static-bubble placement size at 16×16 (paper
	// Table I: 89).
	SBRouters int `json:"sb_routers"`
	// GoMaxProcs records the host parallelism the wall-clock numbers
	// were taken under: with GOMAXPROCS=1 the sharded rows can only
	// show scheduling overhead, never parallel speedup.
	GoMaxProcs int `json:"gomaxprocs"`
}

// Scale16ShardCounts are the shard counts the experiment sweeps.
var Scale16ShardCounts = []int{1, 2, 4, 8}

// scale16Cycles fixes the trajectory length: injection for the first
// half (at a rate past the irregular topology's saturation point, so
// deadlock recovery stays active), then a drain tail, under one fixed
// amount of simulated work.
const (
	scale16Cycles    = 8000
	scale16InjectEnd = 4000
	scale16Rate      = 0.06
)

// runScale16 executes the fixed 16×16 trajectory at one shard count and
// returns the final stats and the stepping wall time. Only Step calls
// are timed; injection is identical across shard counts by construction
// (its rng never observes simulator state beyond RouterAlive, which
// faults fix before cycle 0).
func runScale16(shards int) (network.Stats, time.Duration) {
	topo := topology.RandomIrregular(16, 16, topology.LinkFaults, 30, 5)
	min := routing.MinimalFor(topo)
	s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{TDD: 34})
	rng := rand.New(rand.NewSource(2))
	var total time.Duration
	for cyc := 0; cyc < scale16Cycles; cyc++ {
		if cyc < scale16InjectEnd {
			for n := 0; n < 256; n++ {
				if !topo.RouterAlive(geom.NodeID(n)) || rng.Float64() >= scale16Rate {
					continue
				}
				dst := geom.NodeID(rng.Intn(256))
				r, ok := min.Route(geom.NodeID(n), dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
			}
		}
		t0 := time.Now()
		s.Step()
		total += time.Since(t0)
	}
	return s.Stats, total
}

// Scale16 runs the 16×16 recovery storm at every Scale16ShardCounts
// entry, verifies all shard counts produce byte-identical Stats, and
// returns one timing row per count (Speedup relative to Shards=1).
func Scale16() ([]Scale16Result, error) {
	sbRouters := len(core.Placement(16, 16))
	var out []Scale16Result
	var base network.Stats
	var baseNs float64
	for i, shards := range Scale16ShardCounts {
		stats, dur := runScale16(shards)
		ns := float64(dur.Nanoseconds()) / float64(scale16Cycles)
		if i == 0 {
			base, baseNs = stats, ns
		} else if stats != base {
			return nil, fmt.Errorf("scale16: shards=%d diverged from shards=%d\nshards=%d: %+v\nshards=%d: %+v",
				shards, Scale16ShardCounts[0], shards, stats, Scale16ShardCounts[0], base)
		}
		out = append(out, Scale16Result{
			Shards:     shards,
			Cycles:     scale16Cycles,
			NsPerCycle: ns,
			Speedup:    safeRatio(baseNs, ns),
			Delivered:  stats.Delivered,
			Recoveries: stats.DeadlockRecoveries,
			SBRouters:  sbRouters,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
	}
	return out, nil
}

// WriteScale16JSON writes results as indented JSON (a top-level array of
// Scale16Result).
func WriteScale16JSON(w io.Writer, rs []Scale16Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// PrintScale16 renders the sweep as a table.
func PrintScale16(w io.Writer, rs []Scale16Result) {
	if len(rs) > 0 {
		fmt.Fprintf(w, "16x16 irregular recovery storm: %d SB routers, %d cycles, GOMAXPROCS=%d\n",
			rs[0].SBRouters, rs[0].Cycles, rs[0].GoMaxProcs)
	}
	fmt.Fprintf(w, "%7s %14s %12s %10s %11s\n",
		"shards", "ns/cycle", "speedup", "delivered", "recoveries")
	for _, r := range rs {
		fmt.Fprintf(w, "%7d %14.0f %11.2fx %10d %11d\n",
			r.Shards, r.NsPerCycle, r.Speedup, r.Delivered, r.Recoveries)
	}
}
