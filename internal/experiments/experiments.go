// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each FigN function runs the corresponding
// sweep over sampled irregular topologies and returns printable rows;
// cmd/sbsweep drives them at full scale and bench_test.go at reduced
// scale. EXPERIMENTS.md records measured-vs-paper outcomes.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// CodeVersion salts every cache key of the sweep result cache. Bump it
// whenever a change alters simulated results (routing, simulator timing,
// the recovery protocol, seed derivation, ...) so stale cache entries are
// never wrongly reused; clearing results/cache/ afterwards merely
// reclaims the disk.
const CodeVersion = "sb-sim-1"

// Scheme identifies a deadlock-freedom design under comparison.
type Scheme int

// The three designs of Section V-B.
const (
	// SpanningTree is baseline 1: deadlock avoidance via up*/down*
	// routing (Ariadne-style); non-minimal paths, no recovery needed.
	SpanningTree Scheme = iota
	// EscapeVC is baseline 2: minimal routes plus timeout-triggered
	// escape VCs routed over the spanning tree (Router Parking style).
	EscapeVC
	// StaticBubble is the paper's scheme: minimal routes plus the
	// SB placement and recovery FSMs.
	StaticBubble
)

// Schemes lists all three in presentation order.
var Schemes = []Scheme{SpanningTree, EscapeVC, StaticBubble}

func (s Scheme) String() string {
	switch s {
	case SpanningTree:
		return "sp_tree"
	case EscapeVC:
		return "escape_vc"
	case StaticBubble:
		return "static_bubble"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// EnergyKey returns the scheme key used by energy.SchemeOverheadBuffers.
func (s Scheme) EnergyKey() string {
	switch s {
	case EscapeVC:
		return "evc"
	case StaticBubble:
		return "sb"
	default:
		return "tree"
	}
}

// Params holds the sweep-wide configuration. Zero values select paper
// defaults (8×8 mesh, Table II network, Section V-A sampling).
type Params struct {
	Width, Height int
	// Topologies is the number of sampled irregular topologies per fault
	// count (the paper grows this until trends stabilize; ~100 suffices,
	// smaller values trade accuracy for speed). Default 30.
	Topologies int
	// WarmupCycles and MeasureCycles bound each simulation run.
	// Defaults 1000 and 8000.
	WarmupCycles, MeasureCycles int
	// TDD is the SB detection threshold (Table II: 34).
	TDD int64
	// EscapeTimeout is the escape-VC stuck threshold. Default 34.
	EscapeTimeout int64
	// BaseSeed decorrelates independent sweeps.
	BaseSeed int64
	// SpinMode switches Static Bubble recovery to the follow-up work's
	// synchronized cycle rotation (core.Options.Spin).
	SpinMode bool
	// TreeBaselineAllLinks switches baseline 1 from conservative tree-path
	// routing (via the lowest common ancestor, matching the paper's
	// description and reported magnitudes) to the stronger all-links
	// up*/down* routing with adaptive shortest legal paths.
	TreeBaselineAllLinks bool
	// Engine selects the sweep execution engine (worker count, result
	// cache, cancellation, progress). It is execution configuration
	// only — it never affects simulated results and is excluded from
	// cache keys. Nil selects a default engine (all cores, no cache).
	Engine *sweep.Engine
	// Shards is the per-simulation shard count (network.Config.Shards).
	// Like Engine it is execution configuration only: the sharded
	// stepper is byte-identical to the sequential core, so it never
	// affects simulated results and is excluded from cache keys.
	Shards int
}

func (p Params) withDefaults() Params {
	if p.Width == 0 {
		p.Width = 8
	}
	if p.Height == 0 {
		p.Height = 8
	}
	if p.Topologies == 0 {
		p.Topologies = 30
	}
	if p.WarmupCycles == 0 {
		p.WarmupCycles = 1000
	}
	if p.MeasureCycles == 0 {
		p.MeasureCycles = 8000
	}
	if p.TDD == 0 {
		p.TDD = 34
	}
	if p.EscapeTimeout == 0 {
		p.EscapeTimeout = 34
	}
	return p
}

// Quick returns a reduced-scale parameter set for tests and benches.
func Quick() Params {
	return Params{
		Width: 8, Height: 8,
		Topologies:    4,
		WarmupCycles:  300,
		MeasureCycles: 2000,
	}
}

// Instance bundles one scheme simulation over one topology: the
// simulator, the algorithm that computes packet routes, and the
// up/down structure (needed by the escape scheme and available for
// inspection).
type Instance struct {
	Scheme Scheme
	Sim    *network.Sim
	Alg    routing.Algorithm
	UpDown *routing.UpDown
	SB     *core.Controller
}

// Build constructs a scheme instance over topo. The topology must not be
// mutated afterwards: routing tables come from the process-wide compiled
// cache (routing.MinimalFor/UpDownFor), so every (seed, rate, shard
// count) point over one topology content — including Clone()s, which
// fingerprint identically — shares a single compile.
func (p Params) Build(topo *topology.Topology, sch Scheme, seed int64) *Instance {
	p = p.withDefaults()
	s := network.New(topo, network.Config{Shards: p.Shards}, rand.New(rand.NewSource(seed)))
	inst := &Instance{Scheme: sch, Sim: s}
	switch sch {
	case SpanningTree:
		// Baseline 1 uses Ariadne's topology-agnostic root election; the
		// escape scheme's tree (below) is the optimized Router
		// Parking-style one.
		inst.UpDown = routing.UpDownFor(topo, routing.RootLowestID)
		if p.TreeBaselineAllLinks {
			// Stronger variant: adaptive shortest legal up*/down* paths
			// over all surviving links.
			inst.Alg = inst.UpDown
		} else {
			// The conservative baseline routes along tree paths through
			// the lowest common ancestor ("via the root", paper Section I).
			inst.Alg = inst.UpDown.TreeAlgorithm()
		}
	case EscapeVC:
		inst.UpDown = routing.UpDownFor(topo, routing.RootMedian)
		inst.Alg = routing.MinimalFor(topo)
		escape.Attach(s, inst.UpDown, escape.Options{Timeout: p.EscapeTimeout})
	case StaticBubble:
		inst.Alg = routing.MinimalFor(topo)
		inst.SB = core.Attach(s, core.Options{TDD: p.TDD, Spin: p.SpinMode})
	}
	return inst
}

// Injector builds a Table II synthetic-traffic injector for this
// instance at the given flit rate.
func (inst *Instance) Injector(pattern traffic.Pattern, rate float64, seed int64) *traffic.Injector {
	alive := inst.Sim.Topo.AliveRouters()
	return traffic.NewInjector(alive, inst.Alg, pattern, rate, rand.New(rand.NewSource(seed)))
}

// Pattern builds a named traffic pattern over the instance's topology.
func (inst *Instance) Pattern(name string) traffic.Pattern {
	topo := inst.Sim.Topo
	switch name {
	case "bit_complement":
		return traffic.BitComplement{Width: topo.Width(), Height: topo.Height()}
	case "transpose":
		return traffic.Transpose{Width: topo.Width()}
	default:
		return traffic.NewUniformRandom(topo.AliveRouters())
	}
}

// SampleTopology returns the i-th sampled irregular topology for a fault
// configuration, deterministically derived from the sweep seed.
func (p Params) SampleTopology(kind topology.FaultKind, faults, i int) *topology.Topology {
	p = p.withDefaults()
	seed := p.BaseSeed + int64(kind)*1_000_003 + int64(faults)*10_007 + int64(i)
	return topology.RandomIrregular(p.Width, p.Height, kind, faults, seed)
}

// engine returns the configured execution engine, or a fresh default
// (all cores, no cache, no cancellation) when none was set.
func (p Params) engine() *sweep.Engine {
	if p.Engine != nil {
		return p.Engine
	}
	return sweep.New(sweep.Config{})
}

// cellKey is the cache/seed identity of one simulation cell: the
// experiment name plus every simulation-affecting Params field; callers
// append the cell coordinates (pattern, fault kind/count, topology
// index, ...). Topologies is deliberately absent — it is the sweep's
// extent, not cell content, so growing the sample reuses every cell
// already computed.
func (p Params) cellKey(experiment string) *sweep.Key {
	p = p.withDefaults()
	return sweep.NewKey(experiment).
		Int("w", p.Width).Int("h", p.Height).
		Int("warmup", p.WarmupCycles).Int("measure", p.MeasureCycles).
		Int64("tdd", p.TDD).Int64("escape_timeout", p.EscapeTimeout).
		Int64("base_seed", p.BaseSeed).
		Bool("spin", p.SpinMode).Bool("tree_all_links", p.TreeBaselineAllLinks)
}

// mean returns the arithmetic mean of xs (0 when empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// safeRatio returns a/b, or 1 when b is zero (equal-performance
// fallback for degenerate topologies).
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// mcReachable reports whether the topology keeps a usable "memory
// controller" node reachable from most nodes — the paper only evaluates
// application traffic on topologies that do not disconnect the MCs.
func mcReachable(topo *topology.Topology) bool {
	lc := topo.LargestComponent()
	return len(lc) >= topo.NumNodes()/2
}
