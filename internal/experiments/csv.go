package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// writeCSV writes a header and rows through encoding/csv, panicking on
// writer errors (callers pass in-memory or stdout writers).
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }
func d(v int64) string   { return fmt.Sprintf("%d", v) }

// Fig2CSV emits the Fig. 2 sweep as CSV.
func Fig2CSV(w io.Writer, rows []Fig2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Kind.String(), d(int64(r.Faults)), f(r.ProneFraction), d(int64(r.Sampled))}
	}
	return writeCSV(w, []string{"kind", "faults", "prone_fraction", "sampled"}, out)
}

// Fig3CSV emits the heat map in long form: one row per (faults, rate).
func Fig3CSV(w io.Writer, rows []Fig3Row) error {
	var out [][]string
	for _, r := range rows {
		for i, rate := range r.Rates {
			out = append(out, []string{
				d(int64(r.FaultyLinks)), f(rate), f(r.CumulativeDeadlocked[i]), d(int64(r.Sampled)),
			})
		}
	}
	return writeCSV(w, []string{"faulty_links", "rate", "cumulative_deadlocked", "sampled"}, out)
}

// Table1CSV emits the buffer-cost comparison.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%dx%d", r.Width, r.Height),
			d(int64(r.SBBuffers)), d(int64(r.EscapeBuffers)),
			fmt.Sprint(r.ClosedFormAgrees), fmt.Sprint(r.CoverageVerified),
		}
	}
	return writeCSV(w, []string{"mesh", "sb_buffers", "evc_buffers", "closed_form_agrees", "coverage_verified"}, out)
}

// Fig8CSV emits the low-load latency sweep.
func Fig8CSV(w io.Writer, rows []Fig8Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Pattern, r.Kind.String(), d(int64(r.Faults)),
			f(r.AvgNorm[EscapeVC]), f(r.AvgNorm[StaticBubble]),
			f(r.MaxNorm[EscapeVC]), f(r.MaxNorm[StaticBubble]),
			f(r.AvgAbs), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{
		"pattern", "kind", "faults", "evc_avg_norm", "sb_avg_norm",
		"evc_max_norm", "sb_max_norm", "tree_avg_cycles", "sampled",
	}, out)
}

// Fig9CSV emits the saturation-throughput sweep.
func Fig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Kind.String(), d(int64(r.Faults)),
			f(r.Norm[EscapeVC]), f(r.Norm[StaticBubble]), f(r.Abs), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{"kind", "faults", "evc_norm", "sb_norm", "tree_flits_node_cycle", "sampled"}, out)
}

// Fig10CSV emits the energy breakdown.
func Fig10CSV(w io.Writer, rows []Fig10Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			d(int64(r.FaultyRouters)), r.Scheme.String(),
			f(r.LinkDynamic), f(r.RouterDynamic), f(r.LinkLeakage), f(r.RouterLeakage),
			f(r.Total), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{
		"gated_routers", "scheme", "link_dynamic", "router_dynamic",
		"link_leakage", "router_leakage", "total", "sampled",
	}, out)
}

// Fig11CSV emits the threshold sweep.
func Fig11CSV(w io.Writer, rows []Fig11Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			d(r.TDD), f(r.ProbesSent), f(r.Recoveries),
			f(r.FlitUtil), f(r.ProbeUtil), f(r.DisableUtil), f(r.EnableUtil), f(r.CheckProbeUtil),
			f(r.AvgLatency), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{
		"tdd", "probes_sent", "recoveries", "flit_util", "probe_util",
		"disable_util", "enable_util", "check_probe_util", "avg_latency", "sampled",
	}, out)
}

// Fig12CSV emits the application-throughput scatter.
func Fig12CSV(w io.Writer, rows []Fig12Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.App, r.Kind.String(), d(int64(r.Faults)),
			f(r.Norm[EscapeVC]), f(r.Norm[StaticBubble]), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{"app", "kind", "faults", "evc_norm", "sb_norm", "sampled"}, out)
}

// Fig13CSV emits the PARSEC runtime/EDP comparison.
func Fig13CSV(w io.Writer, rows []Fig13Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.App,
			f(r.RuntimeNorm[EscapeVC]), f(r.RuntimeNorm[StaticBubble]),
			f(r.EDPNorm[EscapeVC]), f(r.EDPNorm[StaticBubble]), d(int64(r.Sampled)),
		}
	}
	return writeCSV(w, []string{
		"app", "evc_runtime_norm", "sb_runtime_norm", "evc_edp_norm", "sb_edp_norm", "sampled",
	}, out)
}

// AblationCSV emits the ablation comparison.
func AblationCSV(w io.Writer, rows []AblationRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Variant, d(int64(r.Buffers)), f(r.RecoveryCycles),
			f(r.Recoveries), f(r.CheckProbes), d(int64(r.Runs)),
		}
	}
	return writeCSV(w, []string{"variant", "buffers", "drain_cycles", "recoveries", "check_probes", "runs"}, out)
}
