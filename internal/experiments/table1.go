package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Table1Row compares the buffer cost of Static Bubble and escape VCs on
// one mesh size (paper Table I).
type Table1Row struct {
	Width, Height int
	// SBBuffers is the number of static bubbles placed (Equation 1).
	SBBuffers int
	// EscapeBuffers is the escape-VC overhead: one VC per port per router
	// (n×m×5).
	EscapeBuffers int
	// ClosedFormAgrees records that the closed-form count matches the
	// enumerated placement.
	ClosedFormAgrees bool
	// CoverageVerified records that the placement lemma holds on the full
	// mesh (every no-U-turn cycle passes a bubble router).
	CoverageVerified bool
}

// Table1 reproduces the quantitative half of Table I for the given mesh
// sizes (nil selects the paper's 8×8 and 16×16). p contributes only the
// sweep engine; the placement analysis has no tunable parameters.
func Table1(p Params, sizes [][2]int) []Table1Row {
	if sizes == nil {
		sizes = [][2]int{{8, 8}, {16, 16}}
	}
	key := func(i int) *sweep.Key {
		return sweep.NewKey("table1").Int("w", sizes[i][0]).Int("h", sizes[i][1])
	}
	results := sweep.Run(p.engine(), len(sizes), key,
		func(i int, seed int64) (Table1Row, error) {
			w, h := sizes[i][0], sizes[i][1]
			topo := topology.NewMesh(w, h)
			return Table1Row{
				Width: w, Height: h,
				SBBuffers:        core.PlacementCount(w, h),
				EscapeBuffers:    w * h * geom.NumPorts,
				ClosedFormAgrees: core.PlacementCount(w, h) == core.PlacementCountClosedForm(w, h),
				CoverageVerified: core.VerifyCoverage(topo),
			}, nil
		})
	var rows []Table1Row
	for _, r := range results {
		if r.OK() {
			rows = append(rows, r.Value)
		}
	}
	return rows
}

// PrintTable1 writes the comparison.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I: additional buffers, Static Bubble vs escape VC\n")
	fmt.Fprintf(w, "%-8s %-12s %-14s %-12s %s\n", "mesh", "SB buffers", "eVC buffers", "closed-form", "coverage")
	for _, r := range rows {
		fmt.Fprintf(w, "%dx%-6d %-12d %-14d %-12v %v\n",
			r.Width, r.Height, r.SBBuffers, r.EscapeBuffers, r.ClosedFormAgrees, r.CoverageVerified)
	}
}
