package experiments

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Fig10Row is one energy bar of the Fig. 10 chart: the four-way breakdown
// for one scheme at one power-gated-router count, averaged over sampled
// topologies and normalized to the spanning tree's total at the same
// fault count.
type Fig10Row struct {
	FaultyRouters int
	Scheme        Scheme
	// Normalized components (sum = Total).
	LinkDynamic   float64
	RouterDynamic float64
	LinkLeakage   float64
	RouterLeakage float64
	Total         float64
	Sampled       int
}

// Fig10 reproduces the network-energy comparison (paper Fig. 10) at low
// load across power-gated router counts (nil selects the paper's
// 2/7/15/30).
func Fig10(p Params, gatedRouters []int) []Fig10Row {
	p = p.withDefaults()
	if gatedRouters == nil {
		gatedRouters = []int{2, 7, 15, 30}
	}
	var rows []Fig10Row
	for _, k := range gatedRouters {
		type res struct {
			B [3]energy.Breakdown
		}
		key := func(i int) *sweep.Key {
			return p.cellKey("fig10").Int("gated", k).Int("topo", i)
		}
		results := sweep.Run(p.engine(), p.Topologies, key,
			func(i int, seed int64) (res, error) {
				topo := p.SampleTopology(topology.RouterFaults, k, i)
				var r res
				for _, sch := range Schemes {
					inst := p.Build(topo.Clone(), sch, sweep.SubSeed(seed, 2*int(sch)))
					inj := inst.Injector(inst.Pattern("uniform_random"), LowLoadRate, sweep.SubSeed(seed, 2*int(sch)+1))
					m := measure(p, inst, inj)
					model := energy.Default32nm()
					extra := energy.SchemeOverheadBuffers(inst.Sim, sch.EnergyKey())
					r.B[sch] = model.Compute(inst.Sim, extra, m.Cycles)
				}
				return r, nil
			})
		// Average each component, then normalize everything to the tree
		// total.
		var avg [3]energy.Breakdown
		n := 0
		for _, res := range results {
			if !res.OK() {
				continue
			}
			r := res.Value
			n++
			for _, sch := range Schemes {
				avg[sch].RouterDynamic += r.B[sch].RouterDynamic
				avg[sch].LinkDynamic += r.B[sch].LinkDynamic
				avg[sch].RouterLeakage += r.B[sch].RouterLeakage
				avg[sch].LinkLeakage += r.B[sch].LinkLeakage
			}
		}
		if n == 0 {
			continue
		}
		treeTotal := avg[SpanningTree].Total() / float64(n)
		for _, sch := range Schemes {
			b := avg[sch]
			norm := func(v float64) float64 { return safeRatio(v/float64(n), treeTotal) }
			rows = append(rows, Fig10Row{
				FaultyRouters: k,
				Scheme:        sch,
				LinkDynamic:   norm(b.LinkDynamic),
				RouterDynamic: norm(b.RouterDynamic),
				LinkLeakage:   norm(b.LinkLeakage),
				RouterLeakage: norm(b.RouterLeakage),
				Total:         norm(b.Total()),
				Sampled:       n,
			})
		}
	}
	return rows
}

// PrintFig10 writes the energy breakdown table.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Fig 10: network energy, normalized to spanning-tree total per fault count\n")
	fmt.Fprintf(w, "%-8s %-14s %-9s %-9s %-9s %-9s %-7s %s\n",
		"gated", "scheme", "linkDyn", "rtrDyn", "linkLeak", "rtrLeak", "total", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-14s %-9.3f %-9.3f %-9.3f %-9.3f %-7.3f %d\n",
			r.FaultyRouters, r.Scheme, r.LinkDynamic, r.RouterDynamic,
			r.LinkLeakage, r.RouterLeakage, r.Total, r.Sampled)
	}
}
