package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/disha"
	"repro/internal/escape"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// FailureTimelineRow is one scheme's outcome when links keep failing
// during a run: the spanning-tree schemes pay a reconfiguration stall
// per failure (the paper cites thousands of cycles for tree
// reconstruction, Section I/II); Static Bubble needs none.
type FailureTimelineRow struct {
	// Label names the design: the three Scheme variants plus "disha"
	// (the Section II-B token scheme, included to complete the paper's
	// argument — it cannot recover at all once a failure breaks its
	// token path).
	Label string
	// ReconfigStall is the cycles of injection downtime charged to this
	// scheme per failure event.
	ReconfigStall int
	Delivered     int64
	AvgLatency    float64
	P99Latency    float64
	Lost          int64
	// RecoveryIntact is the fraction of runs that ended with the scheme's
	// deadlock-recovery capability still functional. The tree and SB
	// schemes rebuild or never depended on global structures; DISHA's
	// fixed token path is typically severed by the failures, leaving any
	// later deadlock unrecoverable even though this run's light traffic
	// never wedged.
	RecoveryIntact float64
	Sampled        int
}

// FailureTimeline is an extension experiment quantifying the paper's
// reconfiguration argument: inject link failures every failurePeriod
// cycles during live traffic and charge tree-based schemes (baseline 1's
// up/down tree and baseline 2's escape tree) a reconfiguration stall per
// failure. Static Bubble only pays the universal NI-table refresh
// (modeled as free for all schemes, per the paper's own zero-cost
// assumption for that part).
func FailureTimeline(p Params, reconfigStall int, failures int) []FailureTimelineRow {
	p = p.withDefaults()
	if reconfigStall == 0 {
		reconfigStall = 2000 // "1000s of cycles" (Section I)
	}
	if failures == 0 {
		failures = 6
	}
	var rows []FailureTimelineRow
	kinds := []int{int(SpanningTree), int(EscapeVC), int(StaticBubble), dishaKind}
	for _, k := range kinds {
		stall := reconfigStall
		label := ""
		switch k {
		case dishaKind:
			label = "disha"
			stall = 0 // DISHA has no reconfiguration story at all
		case int(StaticBubble):
			label = StaticBubble.String()
			stall = 0 // plug-and-play: no tree to rebuild
		default:
			label = Scheme(k).String()
		}
		row := FailureTimelineRow{Label: label, ReconfigStall: stall}
		key := func(i int) *sweep.Key {
			return p.cellKey("failures").Str("scheme", label).
				Int("stall", stall).Int("events", failures).Int("topo", i)
		}
		results := sweep.Run(p.engine(), p.Topologies, key,
			func(i int, seed int64) (failureRes, error) {
				return failureRun(p, k, stall, failures, seed), nil
			})
		var avg, p99 []float64
		intact := 0
		for _, res := range results {
			if !res.OK() || !res.Value.OK {
				continue
			}
			r := res.Value
			row.Delivered += r.Delivered
			row.Lost += r.Lost
			avg = append(avg, r.Avg)
			p99 = append(p99, r.P99)
			if r.Intact {
				intact++
			}
			row.Sampled++
		}
		row.AvgLatency = mean(avg)
		row.P99Latency = mean(p99)
		if row.Sampled > 0 {
			row.RecoveryIntact = float64(intact) / float64(row.Sampled)
		}
		rows = append(rows, row)
	}
	return rows
}

// dishaKind extends the Scheme space for this experiment only.
const dishaKind = 3

// failureRes is one topology's outcome of a failure timeline (exported
// fields: it is the sweep cache's entry value).
type failureRes struct {
	Delivered, Lost int64
	Avg, P99        float64
	Intact          bool
	OK              bool
}

// failureRun executes one scheme over one failure timeline.
func failureRun(p Params, kind, stall, failures int, seed int64) (out failureRes) {
	topo := topology.NewMesh(p.Width, p.Height)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(sweep.SubSeed(seed, 0))))

	// Scheme runtime state, rebuilt at every failure.
	var ud *routing.UpDown
	var alg routing.Algorithm
	rebuild := func() {
		switch kind {
		case int(SpanningTree):
			ud = routing.NewUpDownRooted(topo, routing.RootLowestID)
			alg = ud.TreeAlgorithm()
		case int(EscapeVC):
			ud = routing.NewUpDown(topo)
			alg = routing.NewMinimal(topo)
		default: // StaticBubble and DISHA both route minimally
			alg = routing.NewMinimal(topo)
		}
	}
	rebuild()
	var esc *escape.Controller
	switch kind {
	case int(EscapeVC):
		esc = escape.Attach(s, ud, escape.Options{Timeout: p.EscapeTimeout})
	case int(StaticBubble):
		core.Attach(s, core.Options{TDD: p.TDD})
	}
	var dishaCtl *disha.Controller
	if kind == dishaKind {
		var err error
		dishaCtl, err = disha.Attach(s, disha.Options{Timeout: p.TDD})
		if err != nil {
			out.OK = false
			return out
		}
	}
	mgr := reconfig.New(s)

	var lat stats.LatencyCollector
	s.OnDeliver = func(pk *network.Packet) { lat.Observe(pk.Latency()) }

	rng := rand.New(rand.NewSource(sweep.SubSeed(seed, 1)))
	horizon := p.WarmupCycles + p.MeasureCycles
	failEvery := horizon / (failures + 1)
	stallUntil := 0
	// Below every scheme's saturation so the comparison isolates
	// reconfiguration downtime, not congestion (tree saturates near
	// 0.06 flits/node/cycle; this offers ~0.024).
	const rate = 0.008
	for cyc := 0; cyc < horizon; cyc++ {
		if failures > 0 && cyc > 0 && cyc%failEvery == 0 && cyc/failEvery <= failures {
			// Fail a random alive link; the manager repairs or drops
			// affected traffic, then the scheme rebuilds its structures.
			links := topo.AliveUndirectedLinks()
			l := links[rng.Intn(len(links))]
			mgr.FailLink(l.From, l.Dir)
			rebuild()
			if esc != nil {
				// Escaped packets must follow the new tree.
				esc.SetTree(ud)
			}
			stallUntil = cyc + stall
		}
		if cyc >= stallUntil {
			for n := 0; n < topo.NumNodes(); n++ {
				src := geom.NodeID(n)
				if !topo.RouterAlive(src) || rng.Float64() >= rate {
					continue
				}
				dst := geom.NodeID(rng.Intn(topo.NumNodes()))
				if dst == src || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := alg.Route(src, dst, rng); ok {
					ln := 1
					if rng.Intn(2) == 0 {
						ln = 5
					}
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), ln, r))
				} else {
					s.Drop()
				}
			}
		}
		s.Step()
	}
	// Drain.
	for i := 0; i < 20*horizon && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
		s.Run(100)
	}
	out.Delivered = s.Stats.Delivered
	out.Lost = s.Stats.Lost
	out.Avg = lat.Mean()
	out.P99 = lat.P(99)
	out.Intact = dishaCtl == nil || dishaCtl.TokenPathIntact()
	out.OK = s.Stats.Delivered > 0
	return out
}

// PrintFailureTimeline writes the comparison.
func PrintFailureTimeline(w io.Writer, rows []FailureTimelineRow) {
	fmt.Fprintf(w, "Failure timeline: live link failures with per-failure reconfiguration stalls\n")
	fmt.Fprintf(w, "%-14s %-9s %-12s %-10s %-10s %-6s %-15s %s\n",
		"scheme", "stall", "delivered", "avgLat", "p99Lat", "lost", "recovery-intact", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-9d %-12d %-10.1f %-10.1f %-6d %-15.0f %d\n",
			r.Label, r.ReconfigStall, r.Delivered, r.AvgLatency, r.P99Latency, r.Lost,
			100*r.RecoveryIntact, r.Sampled)
	}
}
