package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/topology"
)

// parseCSV round-trips the output through encoding/csv to prove it is
// well-formed, returning records including the header.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return recs
}

func TestFig2CSV(t *testing.T) {
	p := Quick()
	p.Topologies = 3
	rows := Fig2(p, map[topology.FaultKind][]int{topology.LinkFaults: {1, 5}})
	var buf bytes.Buffer
	if err := Fig2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "kind" || recs[1][0] != "links" {
		t.Fatalf("unexpected content: %v", recs[:2])
	}
}

func TestTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1CSV(&buf, Table1(Quick(), nil)); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][1] != "21" || recs[2][1] != "89" {
		t.Fatalf("bubble counts wrong in CSV: %v", recs)
	}
}

func TestFig3CSVLongForm(t *testing.T) {
	rows := []Fig3Row{{
		FaultyLinks:          5,
		Rates:                []float64{0.1, 0.2},
		CumulativeDeadlocked: []float64{0.25, 0.75},
		Sampled:              4,
	}}
	var buf bytes.Buffer
	if err := Fig3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[2][2] != "0.75" {
		t.Fatalf("cumulative cell = %q", recs[2][2])
	}
}

func TestRemainingCSVEmittersWellFormed(t *testing.T) {
	var buf bytes.Buffer
	check := func(name string, err error, wantCols int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs := parseCSV(t, &buf)
		if len(recs) < 2 {
			t.Fatalf("%s: only %d records", name, len(recs))
		}
		if len(recs[0]) != wantCols {
			t.Fatalf("%s: %d columns, want %d", name, len(recs[0]), wantCols)
		}
		buf.Reset()
	}

	check("fig8", Fig8CSV(&buf, []Fig8Row{{Pattern: "uniform_random", Kind: topology.LinkFaults,
		Faults: 3, AvgNorm: [3]float64{1, 0.9, 0.9}, MaxNorm: [3]float64{1, 0.8, 0.8},
		AvgAbs: 20, Sampled: 5}}), 9)
	check("fig9", Fig9CSV(&buf, []Fig9Row{{Kind: topology.RouterFaults, Faults: 2,
		Norm: [3]float64{1, 2, 3}, Abs: 0.05, Sampled: 5}}), 6)
	check("fig10", Fig10CSV(&buf, []Fig10Row{{FaultyRouters: 7, Scheme: StaticBubble,
		LinkDynamic: 0.1, RouterDynamic: 0.2, LinkLeakage: 0.3, RouterLeakage: 0.4,
		Total: 1.0, Sampled: 5}}), 8)
	check("fig11", Fig11CSV(&buf, []Fig11Row{{TDD: 34, ProbesSent: 100, Recoveries: 3,
		FlitUtil: 0.15, ProbeUtil: 0.02, AvgLatency: 900, Sampled: 4}}), 10)
	check("fig12", Fig12CSV(&buf, []Fig12Row{{App: "BPlus", Kind: topology.LinkFaults,
		Faults: 10, Norm: [3]float64{1, 1.8, 2.6}, Sampled: 5}}), 6)
	check("fig13", Fig13CSV(&buf, []Fig13Row{{App: "canneal",
		RuntimeNorm: [3]float64{1, 0.9, 0.9}, EDPNorm: [3]float64{1, 0.8, 0.75},
		Sampled: 8}}), 6)
	check("ablation", AblationCSV(&buf, []AblationRow{{Variant: "paper_placement",
		Buffers: 21, RecoveryCycles: 200, Recoveries: 2, CheckProbes: 6, Runs: 5}}), 6)
}

func TestCSVNumericFormatting(t *testing.T) {
	if f(0.123456789) != "0.123457" {
		t.Fatalf("f() = %q", f(0.123456789))
	}
	if !strings.Contains(f(4.0), "4") || d(42) != "42" {
		t.Fatal("formatting helpers broken")
	}
}
