package experiments

// ScaleGrid extends scale16 along the mesh-size axis: the same fixed
// recovery-storm recipe at 16×16, 32×32 and 64×64, each run once per
// shard count with byte-identical Stats demanded across all counts.
// It exists to put honest numbers under the sharded stepper's scaling
// story (EXPERIMENTS.md): injection rates are bisection-scaled so every
// size sits in the same past-saturation regime, and each row records
// GOMAXPROCS so a single-CPU measurement (where sharded rows can only
// show overhead) is distinguishable from a real parallel one.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ScaleGridResult is one (mesh size, shard count) timing row.
type ScaleGridResult struct {
	Width      int     `json:"width"`
	Height     int     `json:"height"`
	Shards     int     `json:"shards"`
	Cycles     int     `json:"cycles"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// Speedup is the same size's Shards=1 step time over this row's.
	Speedup float64 `json:"speedup_vs_1"`
	// Delivered and Recoveries are identical across a size's shard
	// counts — verified before any row is emitted.
	Delivered  int64 `json:"delivered"`
	Recoveries int64 `json:"deadlock_recoveries"`
	// SBRouters is the static-bubble placement size for this mesh.
	SBRouters int `json:"sb_routers"`
	// GoMaxProcs records the host parallelism the wall-clock numbers
	// were taken under: with GOMAXPROCS=1 the sharded rows can only
	// show scheduling overhead, never parallel speedup.
	GoMaxProcs int `json:"gomaxprocs"`
}

// scaleGridPoint fixes one mesh size's trajectory. Rates scale with the
// bisection (uniform-random saturation falls roughly linearly in mesh
// edge length), keeping every size past its own saturation point so
// deadlock recovery stays active without the queues exploding; cycle
// counts shrink with size so the grid finishes in minutes.
type scaleGridPoint struct {
	w, h      int
	faults    int
	cycles    int
	injectEnd int
	rate      float64
}

var scaleGridPoints = []scaleGridPoint{
	{16, 16, 30, 8000, 4000, 0.06},
	{32, 32, 60, 3000, 1500, 0.03},
	{64, 64, 120, 1200, 600, 0.02},
}

// ScaleGridShardCounts are the shard counts each size sweeps.
var ScaleGridShardCounts = []int{1, 2, 4, 8}

// runScaleGrid executes one size's fixed trajectory at one shard count.
// Only Step calls are timed; injection draws are identical across shard
// counts by construction (the rng never observes simulator state beyond
// RouterAlive, which faults fix before cycle 0).
func runScaleGrid(pt scaleGridPoint, shards int) (network.Stats, time.Duration) {
	topo := topology.RandomIrregular(pt.w, pt.h, topology.LinkFaults, pt.faults, 5)
	min := routing.MinimalFor(topo)
	s := network.New(topo, network.Config{Shards: shards}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{TDD: 34})
	rng := rand.New(rand.NewSource(2))
	nodes := pt.w * pt.h
	var total time.Duration
	for cyc := 0; cyc < pt.cycles; cyc++ {
		if cyc < pt.injectEnd {
			for n := 0; n < nodes; n++ {
				if !topo.RouterAlive(geom.NodeID(n)) || rng.Float64() >= pt.rate {
					continue
				}
				dst := geom.NodeID(rng.Intn(nodes))
				r, ok := min.Route(geom.NodeID(n), dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
			}
		}
		t0 := time.Now()
		s.Step()
		total += time.Since(t0)
	}
	return s.Stats, total
}

// ScaleGrid runs every size at every shard count, verifies each size's
// shard counts land on byte-identical Stats, and returns the timing
// rows (Speedup relative to the same size's Shards=1 run).
func ScaleGrid() ([]ScaleGridResult, error) {
	var out []ScaleGridResult
	for _, pt := range scaleGridPoints {
		sbRouters := len(core.Placement(pt.w, pt.h))
		var base network.Stats
		var baseNs float64
		for i, shards := range ScaleGridShardCounts {
			stats, dur := runScaleGrid(pt, shards)
			ns := float64(dur.Nanoseconds()) / float64(pt.cycles)
			if i == 0 {
				base, baseNs = stats, ns
			} else if stats != base {
				return nil, fmt.Errorf("scalegrid %dx%d: shards=%d diverged from shards=%d\nshards=%d: %+v\nshards=%d: %+v",
					pt.w, pt.h, shards, ScaleGridShardCounts[0], shards, stats, ScaleGridShardCounts[0], base)
			}
			out = append(out, ScaleGridResult{
				Width:      pt.w,
				Height:     pt.h,
				Shards:     shards,
				Cycles:     pt.cycles,
				NsPerCycle: ns,
				Speedup:    safeRatio(baseNs, ns),
				Delivered:  stats.Delivered,
				Recoveries: stats.DeadlockRecoveries,
				SBRouters:  sbRouters,
				GoMaxProcs: runtime.GOMAXPROCS(0),
			})
		}
	}
	return out, nil
}

// WriteScaleGridJSON writes results as indented JSON (a top-level array
// of ScaleGridResult).
func WriteScaleGridJSON(w io.Writer, rs []ScaleGridResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// PrintScaleGrid renders the sweep as a table, one block per mesh size.
func PrintScaleGrid(w io.Writer, rs []ScaleGridResult) {
	lastSize := 0
	for _, r := range rs {
		if r.Width != lastSize {
			lastSize = r.Width
			fmt.Fprintf(w, "%dx%d irregular recovery storm: %d SB routers, %d cycles, GOMAXPROCS=%d\n",
				r.Width, r.Height, r.SBRouters, r.Cycles, r.GoMaxProcs)
			fmt.Fprintf(w, "%7s %14s %12s %10s %11s\n",
				"shards", "ns/cycle", "speedup", "delivered", "recoveries")
		}
		fmt.Fprintf(w, "%7d %14.0f %11.2fx %10d %11d\n",
			r.Shards, r.NsPerCycle, r.Speedup, r.Delivered, r.Recoveries)
	}
}
