package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig12Row is one scatter point: application throughput of escape VC and
// Static Bubble normalized to the spanning tree, for one Rodinia-like
// workload at one fault count.
type Fig12Row struct {
	App    string
	Kind   topology.FaultKind
	Faults int
	// Norm is application throughput normalized to spanning tree.
	Norm    [3]float64
	Sampled int
}

// Fig12 reproduces the Rodinia application-throughput scatter (paper
// Fig. 12): synthetic Rodinia-like traces over increasing link and router
// faults, only on topologies that keep the memory controller reachable.
// Nil arguments select the paper's ranges.
func Fig12(p Params, apps []traffic.AppProfile, faultSteps map[topology.FaultKind][]int) []Fig12Row {
	p = p.withDefaults()
	if apps == nil {
		apps = traffic.Rodinia()
	}
	if faultSteps == nil {
		faultSteps = map[topology.FaultKind][]int{
			topology.LinkFaults:   {2, 10, 20, 30, 40},
			topology.RouterFaults: {2, 5, 10, 15, 20},
		}
	}
	var rows []Fig12Row
	for _, app := range apps {
		for _, kind := range []topology.FaultKind{topology.LinkFaults, topology.RouterFaults} {
			for _, k := range faultSteps[kind] {
				rows = append(rows, fig12Point(p, app, kind, k))
			}
		}
	}
	return rows
}

func fig12Point(p Params, app traffic.AppProfile, kind topology.FaultKind, faults int) Fig12Row {
	maxCycles := appHorizon(app)
	type res struct {
		Thr [3]float64
		OK  bool
	}
	key := func(i int) *sweep.Key {
		return p.cellKey("fig12").Str("app", app.Name).
			Str("kind", kind.String()).Int("faults", faults).Int("topo", i)
	}
	results := sweep.Run(p.engine(), p.Topologies, key,
		func(i int, seed int64) (res, error) {
			var r res
			topo := p.SampleTopology(kind, faults, i)
			if !mcReachable(topo) {
				return r, nil // skipped: the paper only maps apps on usable chips
			}
			r.OK = true
			for _, sch := range Schemes {
				inst := p.Build(topo.Clone(), sch, sweep.SubSeed(seed, 2*int(sch)))
				run := traffic.NewAppRun(inst.Sim, inst.Alg, app,
					rand.New(rand.NewSource(sweep.SubSeed(seed, 2*int(sch)+1))))
				out := run.Run(inst.Sim, maxCycles)
				r.Thr[sch] = out.Throughput
			}
			if r.Thr[SpanningTree] == 0 {
				r.OK = false
			}
			return r, nil
		})
	row := Fig12Row{App: app.Name, Kind: kind, Faults: faults}
	var norm [3][]float64
	for _, res := range results {
		if !res.OK() || !res.Value.OK {
			continue
		}
		r := res.Value
		for _, sch := range Schemes {
			norm[sch] = append(norm[sch], safeRatio(r.Thr[sch], r.Thr[SpanningTree]))
		}
	}
	for _, sch := range Schemes {
		row.Norm[sch] = mean(norm[sch])
	}
	row.Sampled = len(norm[SpanningTree])
	return row
}

// appHorizon bounds an application run generously relative to its work.
func appHorizon(app traffic.AppProfile) int {
	period := app.BurstLen + app.IdleLen
	if period == 0 {
		period = 1
	}
	h := app.WorkPackets * 300
	if h < 50000 {
		h = 50000
	}
	return h
}

// PrintFig12 writes the scatter as a table.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Fig 12: Rodinia-like application throughput normalized to spanning tree\n")
	fmt.Fprintf(w, "%-14s %-8s %-7s %-10s %-10s %s\n", "app", "kind", "faults", "eVC", "SB", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-8s %-7d %-10.3f %-10.3f %d\n",
			r.App, r.Kind, r.Faults, r.Norm[EscapeVC], r.Norm[StaticBubble], r.Sampled)
	}
}
