package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/deadlock"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Fig3Row is one heat-map column: for a given number of faulty links, the
// cumulative fraction of sampled topologies that have deadlocked at or
// below each injection rate.
type Fig3Row struct {
	FaultyLinks int
	// Rates are the swept injection rates (flits/node/cycle).
	Rates []float64
	// CumulativeDeadlocked[i] is the fraction of topologies that deadlock
	// at rate ≤ Rates[i].
	CumulativeDeadlocked []float64
	Sampled              int
}

// Fig3 reproduces the deadlock-onset heat map (paper Fig. 3): minimal
// adaptive routing with no recovery, uniform random traffic, operational
// deadlock detection; per topology the lowest injection rate that
// deadlocks within the horizon is recorded. faultCounts nil selects
// {1, 5, ..., 45}; rates nil selects 0.02..0.40 step 0.02.
func Fig3(p Params, faultCounts []int, rates []float64) []Fig3Row {
	p = p.withDefaults()
	if faultCounts == nil {
		faultCounts = stepRange(1, 45, 4)
	}
	if rates == nil {
		for r := 0.02; r <= 0.401; r += 0.02 {
			rates = append(rates, math.Round(r*100)/100)
		}
	}
	var rows []Fig3Row
	for _, k := range faultCounts {
		key := func(i int) *sweep.Key {
			return p.cellKey("fig3").
				Int("faults", k).Floats("rates", rates).Int("topo", i)
		}
		// Each job reports the index into rates at which its topology
		// first deadlocked, or len(rates) if it never did.
		onset := sweep.Run(p.engine(), p.Topologies, key,
			func(i int, seed int64) (int, error) {
				topo := p.SampleTopology(topology.LinkFaults, k, i)
				if !topo.HasTopologyCycle() {
					return len(rates), nil // acyclic: can never deadlock
				}
				for ri, rate := range rates {
					if deadlocksAt(p, topo, rate, sweep.SubSeed(seed, ri)) {
						return ri, nil
					}
				}
				return len(rates), nil
			})
		sampled := 0
		for _, o := range onset {
			if o.OK() {
				sampled++
			}
		}
		cum := make([]float64, len(rates))
		for ri := range rates {
			n := 0
			for _, o := range onset {
				if o.OK() && o.Value <= ri {
					n++
				}
			}
			if sampled > 0 {
				cum[ri] = float64(n) / float64(sampled)
			}
		}
		rows = append(rows, Fig3Row{
			FaultyLinks:          k,
			Rates:                rates,
			CumulativeDeadlocked: cum,
			Sampled:              sampled,
		})
	}
	return rows
}

// deadlocksAt runs minimal-routing traffic with no recovery scheme at the
// given rate and reports whether the operational detector fires within
// the measurement horizon.
func deadlocksAt(p Params, topo *topology.Topology, rate float64, seed int64) bool {
	// A bare instance: minimal routes, no recovery attached.
	inst := p.Build(topo, StaticBubble, seed)
	// Strip the SB hooks: Fig 3 characterizes the unprotected network.
	inst.Sim.PreCycle = nil
	inst.Sim.PostCycle = nil
	for id := range inst.Sim.Routers {
		inst.Sim.Routers[id].Bubble.Present = false
	}
	inj := inst.Injector(inst.Pattern("uniform_random"), rate, seed+7777)
	horizon := p.WarmupCycles + p.MeasureCycles
	for c := 0; c < horizon; c++ {
		inj.Tick(inst.Sim)
		inst.Sim.Step()
		// The exact drainability analyzer catches localized deadlocks that
		// a global-progress watcher would miss while unrelated traffic
		// still flows.
		if c%500 == 499 && deadlock.IsDeadlocked(inst.Sim) {
			return true
		}
	}
	return deadlock.IsDeadlocked(inst.Sim)
}

// PrintFig3 writes the heat map as a rate × fault-count grid of
// cumulative deadlock percentages.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Fig 3: cumulative %% of topologies deadlocked at injection rate (uniform random)\n")
	fmt.Fprintf(w, "%-6s", "rate")
	for _, r := range rows {
		fmt.Fprintf(w, " L=%-4d", r.FaultyLinks)
	}
	fmt.Fprintln(w)
	for ri, rate := range rows[0].Rates {
		fmt.Fprintf(w, "%-6.2f", rate)
		for _, r := range rows {
			fmt.Fprintf(w, " %-6.0f", 100*r.CumulativeDeadlocked[ri])
		}
		fmt.Fprintln(w)
	}
}
