package experiments

import (
	"fmt"
	"io"

	"repro/internal/network"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// Fig11HighLoadRate drives the network into the deadlock-prone regime for
// the detection-threshold sweep.
const Fig11HighLoadRate = 0.30

// Fig11Row is one point of the t_DD sweep at high load with 20 router
// faults: probes sent over the horizon and per-class link utilization.
type Fig11Row struct {
	TDD        int64
	ProbesSent float64 // average over topologies
	Recoveries float64
	// Utilization fractions by class over the horizon.
	FlitUtil       float64
	ProbeUtil      float64
	DisableUtil    float64
	EnableUtil     float64
	CheckProbeUtil float64
	// AvgLatency of delivered packets (cycles), to confirm the threshold
	// does not affect steady behaviour.
	AvgLatency float64
	Sampled    int
}

// Fig11 reproduces the deadlock-detection-threshold sweep (paper
// Fig. 11): Static Bubble only, high-load uniform random traffic, 20
// router faults, 10K-cycle horizon. Nil thresholds select
// {5, 10, 20, 34, 60, 100, 200}.
func Fig11(p Params, thresholds []int64) []Fig11Row {
	p = p.withDefaults()
	if thresholds == nil {
		thresholds = []int64{5, 10, 20, 34, 60, 100, 200}
	}
	const faults = 20
	var rows []Fig11Row
	for _, tdd := range thresholds {
		type res struct {
			Probes, Recov, Lat float64
			Util               [network.NumLinkClasses]float64
		}
		pp := p
		pp.TDD = tdd
		key := func(i int) *sweep.Key {
			return pp.cellKey("fig11").
				Float("rate", Fig11HighLoadRate).Int("faults", faults).Int("topo", i)
		}
		results := sweep.Run(p.engine(), p.Topologies, key,
			func(i int, seed int64) (res, error) {
				topo := p.SampleTopology(topology.RouterFaults, faults, i)
				inst := pp.Build(topo, StaticBubble, sweep.SubSeed(seed, 0))
				inj := inst.Injector(inst.Pattern("uniform_random"), Fig11HighLoadRate, sweep.SubSeed(seed, 1))
				m := measure(pp, inst, inj)
				var r res
				r.Probes = float64(m.Stats.ProbesSent)
				r.Recov = float64(m.Stats.DeadlockRecoveries)
				r.Lat = m.AvgLatency
				r.Util = m.Stats.LinkUtilization(m.Cycles, inst.Sim.AliveDirectedLinkCount())
				return r, nil
			})
		row := Fig11Row{TDD: tdd}
		n := 0
		for _, res := range results {
			if !res.OK() {
				continue
			}
			r := res.Value
			n++
			row.ProbesSent += r.Probes
			row.Recoveries += r.Recov
			row.AvgLatency += r.Lat
			row.FlitUtil += r.Util[network.ClassFlit]
			row.ProbeUtil += r.Util[network.ClassProbe]
			row.DisableUtil += r.Util[network.ClassDisable]
			row.EnableUtil += r.Util[network.ClassEnable]
			row.CheckProbeUtil += r.Util[network.ClassCheckProbe]
		}
		if n > 0 {
			f := float64(n)
			row.ProbesSent /= f
			row.Recoveries /= f
			row.AvgLatency /= f
			row.FlitUtil /= f
			row.ProbeUtil /= f
			row.DisableUtil /= f
			row.EnableUtil /= f
			row.CheckProbeUtil /= f
		}
		row.Sampled = n
		rows = append(rows, row)
	}
	return rows
}

// PrintFig11 writes the threshold sweep.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintf(w, "Fig 11: t_DD sweep at high load (rate %.2f, 20 router faults)\n", Fig11HighLoadRate)
	fmt.Fprintf(w, "%-6s %-10s %-10s %-9s %-9s %-9s %-9s %-9s %-9s %s\n",
		"tDD", "probes", "recov", "flit%", "probe%", "disable%", "enable%", "chkprb%", "avgLat", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-10.0f %-10.1f %-9.2f %-9.3f %-9.4f %-9.4f %-9.4f %-9.1f %d\n",
			r.TDD, r.ProbesSent, r.Recoveries,
			100*r.FlitUtil, 100*r.ProbeUtil, 100*r.DisableUtil,
			100*r.EnableUtil, 100*r.CheckProbeUtil, r.AvgLatency, r.Sampled)
	}
}
