package experiments

import (
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/topology"
)

// SaturationRates is the offered-load sweep used to find each scheme's
// saturation throughput: the maximum accepted rate across offered loads.
// A single very high offered load would understate recovery-based schemes,
// which collapse past their knee under unbounded source queues, while a
// deadlock-free tree merely plateaus.
var SaturationRates = []float64{0.06, 0.10, 0.15, 0.22, 0.32, 0.45}

// Fig9Row is one point of the saturation-throughput sweep, normalized to
// the spanning tree.
type Fig9Row struct {
	Kind   topology.FaultKind
	Faults int
	// Norm is accepted throughput normalized to spanning tree, indexed by
	// Scheme; Abs is the spanning tree's absolute accepted rate in
	// flits/node/cycle.
	Norm    [3]float64
	Abs     float64
	Sampled int
}

// Fig9 reproduces the network saturation-throughput comparison
// (paper Fig. 9) with uniform random traffic.
func Fig9(p Params, faultSteps map[topology.FaultKind][]int) []Fig9Row {
	p = p.withDefaults()
	if faultSteps == nil {
		faultSteps = map[topology.FaultKind][]int{
			topology.LinkFaults:   stepRange(1, 97, 8),
			topology.RouterFaults: stepRange(1, 46, 5),
		}
	}
	var rows []Fig9Row
	for _, kind := range []topology.FaultKind{topology.LinkFaults, topology.RouterFaults} {
		for _, k := range faultSteps[kind] {
			if k > topology.MaxFaults(p.Width, p.Height, kind) {
				continue
			}
			rows = append(rows, fig9Point(p, kind, k))
		}
	}
	return rows
}

func fig9Point(p Params, kind topology.FaultKind, faults int) Fig9Row {
	type res struct {
		Thr [3]float64
		OK  bool
	}
	key := func(i int) *sweep.Key {
		return p.cellKey("fig9").Str("kind", kind.String()).Int("faults", faults).
			Floats("rates", SaturationRates).Int("topo", i)
	}
	results := sweep.Run(p.engine(), p.Topologies, key,
		func(i int, seed int64) (res, error) {
			topo := p.SampleTopology(kind, faults, i)
			var r res
			r.OK = true
			for _, sch := range Schemes {
				best := 0.0
				for ri, rate := range SaturationRates {
					stream := int(sch)*2*len(SaturationRates) + 2*ri
					inst := p.Build(topo.Clone(), sch, sweep.SubSeed(seed, stream))
					inj := inst.Injector(inst.Pattern("uniform_random"), rate, sweep.SubSeed(seed, stream+1))
					m := measure(p, inst, inj)
					if m.AcceptedFlits > best {
						best = m.AcceptedFlits
					}
					// Past the knee: accepted throughput has started falling
					// away from the offered load; higher rates only collapse
					// further.
					if m.AcceptedFlits < 0.6*rate && best > m.AcceptedFlits {
						break
					}
				}
				r.Thr[sch] = best
			}
			if r.Thr[SpanningTree] == 0 {
				r.OK = false
			}
			return r, nil
		})
	row := Fig9Row{Kind: kind, Faults: faults}
	var norm [3][]float64
	var abs []float64
	for _, res := range results {
		if !res.OK() || !res.Value.OK {
			continue
		}
		r := res.Value
		abs = append(abs, r.Thr[SpanningTree])
		for _, sch := range Schemes {
			norm[sch] = append(norm[sch], safeRatio(r.Thr[sch], r.Thr[SpanningTree]))
		}
	}
	for _, sch := range Schemes {
		row.Norm[sch] = mean(norm[sch])
	}
	row.Abs = mean(abs)
	row.Sampled = len(abs)
	return row
}

// PrintFig9 writes the sweep.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintf(w, "Fig 9: saturation throughput normalized to spanning tree (uniform random)\n")
	fmt.Fprintf(w, "%-8s %-7s %-10s %-10s %-10s %-14s %s\n",
		"kind", "faults", "tree", "eVC", "SB", "tree(fl/n/cy)", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-7d %-10.3f %-10.3f %-10.3f %-14.4f %d\n",
			r.Kind, r.Faults, r.Norm[SpanningTree], r.Norm[EscapeVC], r.Norm[StaticBubble],
			r.Abs, r.Sampled)
	}
}
