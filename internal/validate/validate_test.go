package validate

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestCleanSimPasses(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{})
	if vs := Check(s, ctrl); len(vs) != 0 {
		t.Fatalf("violations on a clean sim: %v", vs)
	}
	Must(s, ctrl) // must not panic
}

func TestBusySimPassesEveryCycle(t *testing.T) {
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 8, 3)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	ctrl := core.Attach(s, core.Options{TDD: 24})
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(4))
	for cyc := 0; cyc < 2500; cyc++ {
		if cyc < 1800 {
			for n := 0; n < 36; n++ {
				if topo.RouterAlive(geom.NodeID(n)) && rng.Float64() < 0.08 {
					dst := geom.NodeID(rng.Intn(36))
					if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 5, r))
					} else {
						s.Drop()
					}
				}
			}
		}
		s.Step()
		if cyc%100 == 99 {
			if vs := Check(s, ctrl); len(vs) != 0 {
				t.Fatalf("cycle %d: %v", cyc, vs)
			}
		}
	}
}

func TestDetectsStaleFence(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	ctrl := core.Attach(s, core.Options{})
	s.Routers[2].Fence = network.Fence{Active: true, In: geom.West, Out: geom.East, SrcID: 5}
	vs := Check(s, ctrl)
	if len(vs) == 0 {
		t.Fatal("stale fence not detected")
	}
	if vs[0].Invariant != "fence" {
		t.Fatalf("violation = %v", vs[0])
	}
}

func TestDetectsOrphanBubbleActivation(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(6)))
	ctrl := core.Attach(s, core.Options{})
	b := ctrl.BubbleRouters()[0]
	s.Routers[b].Bubble.Active = true
	found := false
	for _, v := range Check(s, ctrl) {
		if v.Invariant == "bubble" {
			found = true
		}
	}
	if !found {
		t.Fatal("orphan bubble activation not detected")
	}
}

func TestDetectsCounterCorruption(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	// Plant a packet without bookkeeping: occupancy invariant must trip.
	p := s.NewPacket(0, 1, 0, 1, routing.Route{geom.East})
	s.Routers[0].In[geom.West][0].Pkt = p
	vs := Check(s, nil)
	if len(vs) == 0 {
		t.Fatal("counter corruption not detected")
	}
}

func TestDetectsDeadRouterWithTraffic(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(8)))
	p := s.NewPacket(0, 1, 0, 5, routing.Route{geom.East})
	s.Enqueue(p)
	s.Run(2)
	topo.DisableRouter(1)
	found := false
	for _, v := range Check(s, nil) {
		if v.Invariant == "dead-router" {
			found = true
		}
	}
	if !found {
		t.Fatal("dead router holding packets not detected")
	}
}

func TestMustPanicsOnViolation(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(9)))
	s.Routers[0].In[geom.West][0].Pkt = s.NewPacket(0, 1, 0, 1, routing.Route{geom.East})
	defer func() {
		if recover() == nil {
			t.Fatal("Must should panic on violations")
		}
	}()
	Must(s, nil)
}

func TestViolationError(t *testing.T) {
	v := Violation{Invariant: "conservation", Detail: "off by one"}
	if v.Error() != "conservation: off by one" {
		t.Fatalf("Error() = %q", v.Error())
	}
}
