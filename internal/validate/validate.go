// Package validate provides runtime invariant checking for simulations:
// conservation of packets, occupancy-counter consistency, fence
// ownership, and bubble-state sanity. Tests use it as a one-call oracle;
// cmd/sbsim exposes it with -check to validate long runs.
package validate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
)

// Violation describes one failed invariant.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) Error() string { return v.Invariant + ": " + v.Detail }

// Check runs every invariant over the simulator (and controller, when
// non-nil) and returns all violations found.
func Check(s *network.Sim, ctrl *core.Controller) []Violation {
	var out []Violation
	report := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	// Conservation: offered = delivered + in-flight + queued + lost.
	total := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost
	if total != s.Stats.Offered {
		report("conservation", "accounted %d != offered %d (delivered %d, inflight %d, queued %d, lost %d)",
			total, s.Stats.Offered, s.Stats.Delivered, s.InFlight(), s.QueuedPackets(), s.Stats.Lost)
	}

	// Occupancy counters match buffer contents; in-flight matches the sum.
	var globalOcc int64
	for id := range s.Routers {
		r := &s.Routers[id]
		occ, nonLocal := 0, 0
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if r.In[port][slot].Pkt != nil {
					occ++
					if port != geom.Local {
						nonLocal++
					}
				}
			}
		}
		if r.Bubble.VC.Pkt != nil {
			occ++
			nonLocal++
			if !r.Bubble.Present {
				report("bubble", "router %d holds a packet in a non-present bubble", id)
			}
		}
		if r.Occupied() != occ {
			report("occupancy", "router %d: counter %d != actual %d", id, r.Occupied(), occ)
		}
		if r.OccupiedNonLocal() != nonLocal {
			report("occupancy", "router %d: non-local counter %d != actual %d",
				id, r.OccupiedNonLocal(), nonLocal)
		}
		// The NI-pending aggregate must equal the sum of ring lengths
		// (the dense stepper's activity predicate trusts it).
		queued := 0
		for vnet := range s.NIQueue[id] {
			queued += s.NIQueue[id][vnet].Len()
		}
		if s.NIPending(geom.NodeID(id)) != queued {
			report("occupancy", "router %d: NI-pending counter %d != actual %d",
				id, s.NIPending(geom.NodeID(id)), queued)
		}
		// The slot-granular occupancy mirror must match buffer contents
		// bit for bit: it drives the dense allocator's classification and
		// the recovery FSM's round-robin scan in every execution mode, so
		// drift would alter results without tripping the differential
		// harness.
		if mirror, ok := s.OccupancyMirror(geom.NodeID(id)); ok {
			slots := s.Cfg.SlotsPerPort()
			var want uint64
			for _, port := range geom.AllPorts {
				for slot := range r.In[port] {
					if r.In[port][slot].Pkt != nil {
						want |= 1 << uint(int(port)*slots+slot)
					}
				}
			}
			if r.Bubble.VC.Pkt != nil {
				want |= 1 << uint(geom.NumPorts*slots)
			}
			if mirror != want {
				report("occupancy", "router %d: mirror %#x != actual %#x", id, mirror, want)
			}
		}
		globalOcc += int64(occ)

		// Dead routers must be empty and unfenced.
		if !s.Topo.RouterAlive(geom.NodeID(id)) {
			if occ != 0 {
				report("dead-router", "router %d is dead but holds %d packets", id, occ)
			}
			if r.Fence.Active {
				report("dead-router", "router %d is dead but fenced", id)
			}
		}

		// Buffered packets must be at a position consistent with their
		// route (the remaining route starts here and is walkable, unless
		// an output override is installed).
		if s.OutputOverride == nil {
			for _, port := range geom.AllPorts {
				for slot := range r.In[port] {
					p := r.In[port][slot].Pkt
					if p == nil {
						continue
					}
					if p.Hop > len(p.Route) {
						report("route", "packet %d hop %d beyond route length %d", p.ID, p.Hop, len(p.Route))
					}
				}
			}
		}
	}
	if globalOcc != s.InFlight() {
		report("occupancy", "global buffered %d != in-flight counter %d", globalOcc, s.InFlight())
	}

	// Fence ownership: every active fence's source must be an SB router
	// whose FSM is mid-recovery (with a controller attached, a stale
	// fence means a teardown guard failed).
	if ctrl != nil {
		inRecovery := map[geom.NodeID]bool{}
		for _, n := range ctrl.BubbleRouters() {
			switch ctrl.FSMState(n) {
			case core.StateDisable, core.StateSBActive, core.StateCheckProbe, core.StateEnable:
				inRecovery[n] = true
			}
		}
		for id := range s.Routers {
			fe := s.Routers[id].Fence
			if fe.Active && !inRecovery[fe.SrcID] {
				report("fence", "router %d fenced by %v whose FSM is %v",
					id, fe.SrcID, ctrl.FSMState(fe.SrcID))
			}
		}
		// Active bubbles belong to recovering FSMs.
		for id := range s.Routers {
			b := &s.Routers[id].Bubble
			if b.Active && !inRecovery[geom.NodeID(id)] {
				report("bubble", "router %d bubble active but FSM is %v",
					id, ctrl.FSMState(geom.NodeID(id)))
			}
		}
	}
	return out
}

// Must panics on the first violation; handy in examples and debugging
// sessions.
func Must(s *network.Sim, ctrl *core.Controller) {
	if vs := Check(s, ctrl); len(vs) > 0 {
		panic(fmt.Sprintf("validate: %d violations, first: %v", len(vs), vs[0]))
	}
}
