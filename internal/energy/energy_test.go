package energy

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{RouterDynamic: 1, LinkDynamic: 2, RouterLeakage: 3, LinkLeakage: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.EDP(5) != 50 {
		t.Fatalf("EDP = %v", b.EDP(5))
	}
}

func TestComputeSinglePacket(t *testing.T) {
	// One 5-flit packet over one hop: exact dynamic accounting.
	topo := topology.NewMesh(2, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	s.Enqueue(s.NewPacket(0, 1, 0, 5, routing.Route{geom.East}))
	const cycles = 20
	s.Run(cycles)
	m := Default32nm()
	b := m.Compute(s, 0, cycles)
	// 5 flit link-hops; 5 injected flits; 5 delivered flits.
	wantRouterDyn := 5*(m.EBufRead+m.EXbar+m.EBufWrite) + 5*m.EBufWrite + 5*(m.EBufRead+m.EXbar)
	if diff := b.RouterDynamic - wantRouterDyn; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("router dynamic = %v, want %v", b.RouterDynamic, wantRouterDyn)
	}
	if b.LinkDynamic != 5*m.ELink {
		t.Fatalf("link dynamic = %v, want %v", b.LinkDynamic, 5*m.ELink)
	}
	// Leakage: 2 routers × (base + 60 buffers×PBuffer) + 2 links.
	wantRouterLeak := float64(cycles) * (2*m.PRouterBase + 120*m.PBuffer)
	if b.RouterLeakage != wantRouterLeak {
		t.Fatalf("router leakage = %v, want %v", b.RouterLeakage, wantRouterLeak)
	}
	if b.LinkLeakage != float64(cycles)*2*m.PLink {
		t.Fatalf("link leakage = %v", b.LinkLeakage)
	}
}

func TestLeakageDropsWithGatedRouters(t *testing.T) {
	m := Default32nm()
	full := topology.NewMesh(8, 8)
	sFull := network.New(full, network.Config{}, rand.New(rand.NewSource(1)))
	gated := topology.NewMesh(8, 8)
	topology.RandomRouterFaults(gated, rand.New(rand.NewSource(2)), 15)
	sGated := network.New(gated, network.Config{}, rand.New(rand.NewSource(1)))
	bFull := m.Compute(sFull, 0, 1000)
	bGated := m.Compute(sGated, 0, 1000)
	if bGated.RouterLeakage >= bFull.RouterLeakage {
		t.Fatal("gating routers must reduce router leakage")
	}
	if bGated.LinkLeakage >= bFull.LinkLeakage {
		t.Fatal("gating routers must reduce link leakage (attached links die)")
	}
	ratio := bGated.RouterLeakage / bFull.RouterLeakage
	if ratio > float64(64-15)/64+0.001 || ratio < float64(64-15)/64-0.001 {
		t.Fatalf("router leakage ratio %.3f, want %.3f", ratio, float64(49)/64)
	}
}

func TestSchemeOverheadBuffers(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{})
	if got := SchemeOverheadBuffers(s, "sb"); got != 21 {
		t.Fatalf("SB overhead = %d, want 21 (Table I)", got)
	}
	if got := SchemeOverheadBuffers(s, "evc"); got != 320 {
		t.Fatalf("escape VC overhead = %d, want 320 (Table I)", got)
	}
	if got := SchemeOverheadBuffers(s, "tree"); got != 0 {
		t.Fatalf("spanning tree overhead = %d, want 0", got)
	}
}

func TestEscapeLeakageExceedsSB(t *testing.T) {
	// Fig. 10's shape: escape VC carries more leakage than SB, which
	// carries marginally more than the spanning tree.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{})
	m := Default32nm()
	tree := m.Compute(s, SchemeOverheadBuffers(s, "tree"), 10000)
	sb := m.Compute(s, SchemeOverheadBuffers(s, "sb"), 10000)
	evc := m.Compute(s, SchemeOverheadBuffers(s, "evc"), 10000)
	if !(tree.RouterLeakage < sb.RouterLeakage && sb.RouterLeakage < evc.RouterLeakage) {
		t.Fatalf("leakage ordering wrong: tree %.0f sb %.0f evc %.0f",
			tree.RouterLeakage, sb.RouterLeakage, evc.RouterLeakage)
	}
}

func TestControlMessagesCostLinkEnergy(t *testing.T) {
	topo := topology.NewMesh(2, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	s.UseLink(0, geom.East, network.ClassProbe)
	s.UseLink(0, geom.East, network.ClassEnable)
	s.Run(1)
	m := Default32nm()
	b := m.Compute(s, 0, 1)
	if b.LinkDynamic != 2*m.ECtrlLink {
		t.Fatalf("control link dynamic = %v, want %v", b.LinkDynamic, 2*m.ECtrlLink)
	}
}

func TestDynamicScalesWithLoad(t *testing.T) {
	run := func(n int) Breakdown {
		topo := topology.NewMesh(4, 1)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		for i := 0; i < n; i++ {
			s.Enqueue(s.NewPacket(0, 3, 0, 5, routing.Route{geom.East, geom.East, geom.East}))
		}
		s.Run(40 + 5*n)
		return Default32nm().Compute(s, 0, int64(40+5*n))
	}
	light, heavy := run(2), run(10)
	if heavy.RouterDynamic <= light.RouterDynamic || heavy.LinkDynamic <= light.LinkDynamic {
		t.Fatal("dynamic energy must grow with traffic")
	}
}
