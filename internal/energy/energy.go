// Package energy provides an analytical NoC energy model standing in for
// DSENT at 32 nm (see DESIGN.md §4): per-flit-event dynamic energies for
// buffers, crossbar, and links, and per-cycle leakage for routers,
// buffers, and link drivers. Absolute values are representative; what the
// experiments rely on — and what the constants preserve — are the ratios
// DSENT reports for mesh routers (buffers and crossbar dominate router
// dynamic energy; links carry roughly 40% of the dynamic total; leakage
// dominates at low utilization; power-gated components leak nothing).
package energy

import (
	"repro/internal/geom"
	"repro/internal/network"
)

// Model holds per-event energies (picojoules) and per-cycle leakage
// (picojoules per cycle).
type Model struct {
	// Dynamic energy per flit event.
	EBufWrite float64 // downstream buffer write per flit
	EBufRead  float64 // upstream buffer read per flit
	EXbar     float64 // crossbar traversal per flit
	ELink     float64 // link traversal per flit
	// ECtrlLink is the link energy per control-message hop (probes,
	// disables, enables, check_probes are 1-flit messages).
	ECtrlLink float64
	// Leakage per cycle.
	PRouterBase float64 // per alive router (control, allocators)
	PBuffer     float64 // per VC buffer
	PLink       float64 // per alive directed link driver
}

// Default32nm returns the reference model.
func Default32nm() Model {
	return Model{
		EBufWrite:   1.0,
		EBufRead:    0.8,
		EXbar:       1.2,
		ELink:       1.8,
		ECtrlLink:   1.8,
		PRouterBase: 2.0,
		PBuffer:     0.12,
		PLink:       0.8,
	}
}

// Breakdown is the four-way energy split of the paper's Fig. 10, in
// picojoules.
type Breakdown struct {
	RouterDynamic float64
	LinkDynamic   float64
	RouterLeakage float64
	LinkLeakage   float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.RouterDynamic + b.LinkDynamic + b.RouterLeakage + b.LinkLeakage
}

// EDP returns the energy-delay product against the given delay metric
// (the experiments use application runtime in cycles, per Fig. 13b).
func (b Breakdown) EDP(delay float64) float64 { return b.Total() * delay }

// SchemeOverheadBuffers returns the extra buffers a deadlock-freedom
// scheme adds to the mesh, per the paper's Table I: the static-bubble
// scheme adds one buffer at each alive SB router; the escape-VC scheme
// adds one VC per port at every alive router (n×m×5 on a full mesh);
// spanning-tree avoidance adds none.
func SchemeOverheadBuffers(s *network.Sim, scheme string) int {
	switch scheme {
	case "sb", "static_bubble":
		n := 0
		for id := range s.Routers {
			if s.Routers[id].Bubble.Present && s.Topo.RouterAlive(geom.NodeID(id)) {
				n++
			}
		}
		return n
	case "evc", "escape":
		return s.Topo.AliveRouterCount() * geom.NumPorts
	default:
		return 0
	}
}

// Compute derives the energy breakdown from the simulator's counters over
// the given horizon. extraBuffers is the scheme's buffer overhead (see
// SchemeOverheadBuffers); dead routers and links contribute no leakage
// (power gating).
func (m Model) Compute(s *network.Sim, extraBuffers int, cycles int64) Breakdown {
	st := &s.Stats
	flitHops := float64(st.LinkCycles[network.ClassFlit])
	ctrlHops := float64(st.LinkCycles[network.ClassProbe] +
		st.LinkCycles[network.ClassDisable] +
		st.LinkCycles[network.ClassEnable] +
		st.LinkCycles[network.ClassCheckProbe])

	// Each flit link-hop implies one upstream buffer read, one crossbar
	// traversal, and one downstream buffer write. Injection adds a write,
	// ejection a read plus a crossbar pass.
	routerDyn := flitHops*(m.EBufRead+m.EXbar+m.EBufWrite) +
		float64(st.InjectedFlits)*m.EBufWrite +
		float64(st.DeliveredFlits)*(m.EBufRead+m.EXbar)
	linkDyn := flitHops*m.ELink + ctrlHops*m.ECtrlLink

	aliveRouters := float64(s.Topo.AliveRouterCount())
	buffers := aliveRouters*float64(s.Cfg.SlotsPerPort()*geom.NumPorts) + float64(extraBuffers)
	routerLeak := float64(cycles) * (aliveRouters*m.PRouterBase + buffers*m.PBuffer)
	linkLeak := float64(cycles) * float64(s.AliveDirectedLinkCount()) * m.PLink

	return Breakdown{
		RouterDynamic: routerDyn,
		LinkDynamic:   linkDyn,
		RouterLeakage: routerLeak,
		LinkLeakage:   linkLeak,
	}
}
