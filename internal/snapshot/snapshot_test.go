package snapshot

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func wedgedSim(t *testing.T) (*network.Sim, *core.Controller) {
	t.Helper()
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{TDD: 1 << 40}) // detection effectively off
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := topo.Neighbor(mid, d2)
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
	}
	s.Run(1500)
	return s, ctrl
}

func TestCaptureWedgedState(t *testing.T) {
	s, ctrl := wedgedSim(t)
	st := Capture(s, ctrl)
	if st.Cycle != s.Now || st.Width != 2 || st.Height != 2 {
		t.Fatalf("header wrong: %+v", st)
	}
	if int64(len(st.Packets)) != s.InFlight() {
		t.Fatalf("packets %d != in flight %d", len(st.Packets), s.InFlight())
	}
	if len(st.Bubbles) != 1 || st.Bubbles[0].Router != 3 {
		t.Fatalf("bubbles = %+v", st.Bubbles)
	}
	if st.Bubbles[0].FSM == "" {
		t.Fatal("FSM state missing with controller supplied")
	}
	// Every captured packet must name a real port and a want.
	for _, p := range st.Packets {
		if p.InPort == "?" || p.Wants == "?" {
			t.Fatalf("bad packet state: %+v", p)
		}
	}
}

func TestCaptureWithoutController(t *testing.T) {
	s, _ := wedgedSim(t)
	st := Capture(s, nil)
	if len(st.Bubbles) != 1 || st.Bubbles[0].FSM != "" {
		t.Fatalf("bubbles = %+v", st.Bubbles)
	}
}

func TestRoundTripJSON(t *testing.T) {
	s, ctrl := wedgedSim(t)
	st := Capture(s, ctrl)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatal("snapshot did not survive the JSON round trip")
	}
}

func TestCapturesFencesMidRecovery(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{TDD: 20})
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := topo.Neighbor(mid, d2)
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
	}
	found := false
	for i := 0; i < 6000 && !found; i++ {
		s.Step()
		st := Capture(s, ctrl)
		if len(st.Fences) > 0 {
			found = true
			for _, fe := range st.Fences {
				if fe.Src != 3 {
					t.Fatalf("fence source = %d, want 3", fe.Src)
				}
			}
		}
	}
	if !found {
		t.Fatal("never captured an active fence")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	take := func() State {
		s, ctrl := wedgedSim(t)
		return Capture(s, ctrl)
	}
	a, b := take(), take()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different snapshots")
	}
}
