// Package snapshot serializes a simulator's observable state to JSON for
// post-mortem analysis, bug reports, and regression goldens. A snapshot
// is diagnostic — it captures where every packet is and what it wants,
// fences, bubbles, and counters — but is not a resumable checkpoint (the
// simulator re-runs deterministically from its seed instead).
package snapshot

import (
	"encoding/json"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
)

// PacketState is one buffered packet's position and intent.
type PacketState struct {
	ID     int64  `json:"id"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Vnet   int    `json:"vnet"`
	Len    int    `json:"len"`
	Hop    int    `json:"hop"`
	Router int    `json:"router"`
	InPort string `json:"in_port"`
	Slot   int    `json:"slot"` // -1 for the static bubble
	Wants  string `json:"wants"`
}

// FenceState is one active is_deadlock restriction.
type FenceState struct {
	Router int    `json:"router"`
	In     string `json:"in"`
	Out    string `json:"out"`
	Src    int    `json:"src"`
}

// BubbleState describes a static-bubble router's runtime state.
type BubbleState struct {
	Router   int    `json:"router"`
	Active   bool   `json:"active"`
	InPort   string `json:"in_port,omitempty"`
	Occupant int64  `json:"occupant,omitempty"` // packet id, 0 if empty
	FSM      string `json:"fsm,omitempty"`
}

// State is the full diagnostic snapshot.
type State struct {
	Cycle        int64         `json:"cycle"`
	Width        int           `json:"width"`
	Height       int           `json:"height"`
	AliveRouters int           `json:"alive_routers"`
	AliveLinks   int           `json:"alive_links"`
	InFlight     int64         `json:"in_flight"`
	Queued       int64         `json:"queued"`
	Stats        network.Stats `json:"stats"`
	Packets      []PacketState `json:"packets,omitempty"`
	Fences       []FenceState  `json:"fences,omitempty"`
	Bubbles      []BubbleState `json:"bubbles,omitempty"`
}

// Capture builds the snapshot of s; ctrl may be nil (FSM states omitted).
func Capture(s *network.Sim, ctrl *core.Controller) State {
	st := State{
		Cycle:        s.Now,
		Width:        s.Topo.Width(),
		Height:       s.Topo.Height(),
		AliveRouters: s.Topo.AliveRouterCount(),
		AliveLinks:   s.Topo.AliveLinkCount(),
		InFlight:     s.InFlight(),
		Queued:       s.QueuedPackets(),
		Stats:        s.Stats,
	}
	for id := range s.Routers {
		r := &s.Routers[id]
		node := geom.NodeID(id)
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if p := r.In[port][slot].Pkt; p != nil {
					st.Packets = append(st.Packets, packetState(s, p, node, port, slot))
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil {
			st.Packets = append(st.Packets, packetState(s, p, node, r.Bubble.InPort, -1))
		}
		if r.Fence.Active {
			st.Fences = append(st.Fences, FenceState{
				Router: id, In: r.Fence.In.String(), Out: r.Fence.Out.String(),
				Src: int(r.Fence.SrcID),
			})
		}
		if r.Bubble.Present {
			b := BubbleState{Router: id, Active: r.Bubble.Active}
			if r.Bubble.Active || r.Bubble.VC.Pkt != nil {
				b.InPort = r.Bubble.InPort.String()
			}
			if r.Bubble.VC.Pkt != nil {
				b.Occupant = r.Bubble.VC.Pkt.ID
			}
			if ctrl != nil {
				b.FSM = ctrl.FSMState(node).String()
			}
			st.Bubbles = append(st.Bubbles, b)
		}
	}
	return st
}

func packetState(s *network.Sim, p *network.Packet, at geom.NodeID, port geom.Direction, slot int) PacketState {
	return PacketState{
		ID: p.ID, Src: int(p.Src), Dst: int(p.Dst), Vnet: p.Vnet, Len: p.Len,
		Hop: p.Hop, Router: int(at), InPort: port.String(), Slot: slot,
		Wants: s.OutputOf(p, at).String(),
	}
}

// EncodeJSON writes any value in the repository's on-disk JSON format
// (indented, trailing newline) — shared by snapshots and the sweep
// result cache (internal/sweep).
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// DecodeJSON parses a value produced by EncodeJSON.
func DecodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// Write serializes the snapshot as indented JSON.
func Write(w io.Writer, st State) error {
	return EncodeJSON(w, st)
}

// Read parses a snapshot produced by Write.
func Read(r io.Reader) (State, error) {
	var st State
	err := DecodeJSON(r, &st)
	return st, err
}
