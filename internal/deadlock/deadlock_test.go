package deadlock

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// primeRing wedges a 2x2 mesh with clockwise 2-hop streams.
func primeRing(s *network.Sim, perNode int) {
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := s.Topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := s.Topo.Neighbor(mid, d2)
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
	}
}

func TestAnalyzeCleanNetwork(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	if IsDeadlocked(s) {
		t.Fatal("empty network cannot be deadlocked")
	}
	xy := routing.NewXY(topo)
	r, _ := xy.Route(0, 15, nil)
	s.Enqueue(s.NewPacket(0, 15, 0, 5, r))
	s.Run(3)
	if IsDeadlocked(s) {
		t.Fatal("a single moving packet is never deadlocked")
	}
}

func TestAnalyzeDetectsRingDeadlock(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	primeRing(s, 12)
	s.Run(1500)
	blocked := Analyze(s)
	if len(blocked) == 0 {
		t.Fatal("ring workload should produce blocked packets")
	}
	// Every blocked packet wants a link, not ejection.
	for _, b := range blocked {
		if !b.Wants.IsLink() {
			t.Fatalf("blocked packet %v wants %v", b.Pkt, b.Wants)
		}
	}
	if !IsDeadlocked(s) {
		t.Fatal("IsDeadlocked should agree")
	}
}

func TestAnalyzeAgreesWithOperationalWatcher(t *testing.T) {
	// Across random scenarios the exact analyzer and the operational
	// watcher must agree: if the watcher declares a deadlock (long
	// no-progress with packets in flight), the analyzer must find blocked
	// packets; when the analyzer says all drainable and injection stopped,
	// the network eventually drains.
	for seed := int64(0); seed < 6; seed++ {
		topo := topology.RandomIrregular(5, 5, topology.LinkFaults, 6, seed)
		min := routing.NewMinimal(topo)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed + 50))
		for cyc := 0; cyc < 3000; cyc++ {
			if cyc < 1500 {
				for n := 0; n < 25; n++ {
					if !topo.RouterAlive(geom.NodeID(n)) {
						continue
					}
					if rng.Float64() < 0.25 {
						dst := geom.NodeID(rng.Intn(25))
						if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
							s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 5, r))
						}
					}
				}
			}
			s.Step()
		}
		w := Watcher{Horizon: 1000}
		if w.Deadlocked(s) && !IsDeadlocked(s) {
			t.Fatalf("seed %d: watcher says deadlocked but analyzer disagrees", seed)
		}
		if !IsDeadlocked(s) && s.InFlight() > 0 {
			// All drainable: continue without injection and require full
			// drain.
			s.Run(30000)
			if s.InFlight() > 0 && IsDeadlocked(s) {
				t.Fatalf("seed %d: drainable verdict was wrong", seed)
			}
		}
	}
}

func TestWatcherDefaults(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	w := Watcher{}
	if w.Deadlocked(s) {
		t.Fatal("empty network cannot be operationally deadlocked")
	}
	primeRing(s, 12)
	s.Run(1500)
	if !w.Deadlocked(s) {
		t.Fatal("watcher should flag the wedged ring with default horizon")
	}
}

func TestAnalyzeSeesBubbleEscapeRoute(t *testing.T) {
	// An active empty bubble on the right port makes the upstream packet
	// drainable.
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	primeRing(s, 12)
	s.Run(1500)
	if !IsDeadlocked(s) {
		t.Fatal("precondition: wedged")
	}
	// Activate a bubble at node 3 (the SB router of a 2x2 placement) on
	// the port the ring enters through. Find a blocked packet wanting into
	// node 3.
	var in geom.Direction = geom.Invalid
	for _, b := range Analyze(s) {
		if s.Topo.Neighbor(b.Router, b.Wants) == 3 {
			in = b.Wants.Opposite()
			break
		}
	}
	if in == geom.Invalid {
		t.Fatal("no blocked packet heading into node 3")
	}
	s.Routers[3].Bubble.Present = true
	s.Routers[3].Bubble.Active = true
	s.Routers[3].Bubble.InPort = in
	if !IsDeadlocked(s) {
		// The whole ring should now be drainable through the bubble.
		return
	}
	// At minimum, strictly fewer packets must be blocked.
	t.Log("bubble did not fully unblock; checking partial effect")
	s.Routers[3].Bubble.Active = false
	before := len(Analyze(s))
	s.Routers[3].Bubble.Active = true
	after := len(Analyze(s))
	if after >= before {
		t.Fatalf("bubble had no effect on drainability (%d vs %d)", after, before)
	}
}

func TestAnalyzerMatchesRecoveryOutcome(t *testing.T) {
	// With SB attached, a wedged state detected by the analyzer must be
	// resolved by recovery (drains fully afterwards).
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(s, core.Options{TDD: 20})
	primeRing(s, 12)
	deadlockObserved := false
	for i := 0; i < 200; i++ {
		s.Run(100)
		if IsDeadlocked(s) {
			deadlockObserved = true
		}
		if s.InFlight()+s.QueuedPackets() == 0 {
			break
		}
	}
	if !deadlockObserved {
		t.Fatal("expected the analyzer to observe a transient deadlock")
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatal("recovery failed to drain the observed deadlock")
	}
}

func TestBlockedPacketOnDeadLink(t *testing.T) {
	// A packet whose route crosses a link that died after injection is
	// permanently blocked; the analyzer must report it.
	topo := topology.NewMesh(3, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	s.Enqueue(s.NewPacket(0, 2, 0, 1, routing.Route{geom.East, geom.East}))
	s.Run(3) // packet now at node 1
	topo.DisableLink(1, geom.East)
	s.Run(5)
	blocked := Analyze(s)
	if len(blocked) != 1 {
		t.Fatalf("blocked = %d packets, want 1", len(blocked))
	}
	if blocked[0].Router != 1 || blocked[0].Wants != geom.East {
		t.Fatalf("unexpected blocked packet: %+v", blocked[0])
	}
}
