// Package deadlock provides ground-truth deadlock analysis over a running
// network simulation: an exact drainability fixpoint over the buffer
// wait-for structure, and an operational detector based on global
// progress. The experiments use these as oracles (paper Figs. 2 and 3);
// the recovery tests use them to cross-check the protocol.
package deadlock

import (
	"repro/internal/geom"
	"repro/internal/network"
)

// BlockedPacket describes one packet that can never move again under the
// current buffer state.
type BlockedPacket struct {
	Pkt    *network.Packet
	Router geom.NodeID
	In     geom.Direction
	// Slot is the VC index within the input port (-1 for a static
	// bubble).
	Slot int
	// Wants is the output port the packet is blocked on.
	Wants geom.Direction
}

// Analyze runs an exact drainability fixpoint over the simulator state: a
// buffered packet is drainable if it wants ejection, or if some VC it
// could move into is free or drainable-and-will-free. Packets outside the
// fixpoint are deadlocked (they can never move regardless of future
// scheduling). Fences are ignored: this reports true buffer deadlocks,
// not protocol-induced stalls.
//
// The analysis is exact for this simulator because routes are fixed at
// the source (each packet has one desired output per router).
func Analyze(s *network.Sim) []BlockedPacket {
	type ref struct {
		router geom.NodeID
		in     geom.Direction
		slot   int // -1 = bubble
	}
	occupied := map[ref]*network.Packet{}
	for id := range s.Routers {
		r := &s.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if p := r.In[port][slot].Pkt; p != nil {
					occupied[ref{geom.NodeID(id), port, slot}] = p
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil {
			occupied[ref{geom.NodeID(id), r.Bubble.InPort, -1}] = p
		}
	}

	drainable := map[ref]bool{}
	// Iterate to fixpoint: O(V·E) worst case, fine at mesh scale.
	for changed := true; changed; {
		changed = false
		for rf, p := range occupied {
			if drainable[rf] {
				continue
			}
			out := s.OutputOf(p, rf.router)
			if out == geom.Local {
				drainable[rf] = true
				changed = true
				continue
			}
			if !out.IsLink() || !s.Topo.HasLink(rf.router, out) {
				continue // wedged on a dead link: never drainable
			}
			nb := s.Topo.Neighbor(rf.router, out)
			in := out.Opposite()
			nbr := &s.Routers[nb]
			base := p.Vnet * s.Cfg.VCsPerVnet
			ok := false
			for i := 0; i < s.Cfg.VCsPerVnet; i++ {
				slot := base + i
				target := ref{nb, in, slot}
				if nbr.In[in][slot].Pkt == nil || drainable[target] {
					ok = true
					break
				}
			}
			if !ok && nbr.Bubble.Present {
				// A present bubble may be activated by recovery, so for
				// ground-truth purposes an empty or drainable bubble on
				// the right port counts as an escape route only when
				// active now.
				if nbr.Bubble.Active && nbr.Bubble.InPort == in {
					target := ref{nb, in, -1}
					if nbr.Bubble.VC.Pkt == nil || drainable[target] {
						ok = true
					}
				}
			}
			if ok {
				drainable[rf] = true
				changed = true
			}
		}
	}

	var blocked []BlockedPacket
	for id := range s.Routers {
		r := &s.Routers[id]
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				p := r.In[port][slot].Pkt
				if p == nil {
					continue
				}
				rf := ref{geom.NodeID(id), port, slot}
				if !drainable[rf] {
					blocked = append(blocked, BlockedPacket{
						Pkt: p, Router: geom.NodeID(id), In: port, Slot: slot,
						Wants: s.OutputOf(p, geom.NodeID(id)),
					})
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil {
			rf := ref{geom.NodeID(id), r.Bubble.InPort, -1}
			if !drainable[rf] {
				blocked = append(blocked, BlockedPacket{
					Pkt: p, Router: geom.NodeID(id), In: r.Bubble.InPort, Slot: -1,
					Wants: s.OutputOf(p, geom.NodeID(id)),
				})
			}
		}
	}
	return blocked
}

// IsDeadlocked reports whether any buffered packet can never drain.
func IsDeadlocked(s *network.Sim) bool { return len(Analyze(s)) > 0 }

// Watcher is the operational deadlock detector used by the topology-space
// sweeps: the network is declared deadlocked when no packet has moved for
// Horizon cycles while packets remain in flight. This matches the paper's
// Fig. 2/3 methodology (observe whether the network deadlocks).
type Watcher struct {
	// Horizon is the no-progress window in cycles; the default used by
	// the experiments is 1000.
	Horizon int64
}

// Deadlocked reports the operational verdict for the current state of s.
func (w Watcher) Deadlocked(s *network.Sim) bool {
	h := w.Horizon
	if h == 0 {
		h = 1000
	}
	return s.InFlight() > 0 && s.Now-s.LastProgress >= h
}
