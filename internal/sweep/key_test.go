package sweep

import "testing"

func TestKeyCanonicalForm(t *testing.T) {
	k := NewKey("fig8").Int("w", 8).Float("rate", 0.05).Bool("spin", true).
		Floats("rates", []float64{0.01, 0.5})
	want := "experiment=fig8|w=8|rate=0.05|spin=true|rates=0.01,0.5"
	if got := k.Canonical(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
}

func TestKeyFieldOrderMatters(t *testing.T) {
	a := NewKey("x").Int("a", 1).Int("b", 2)
	b := NewKey("x").Int("b", 2).Int("a", 1)
	if a.Canonical() == b.Canonical() {
		t.Fatal("field order should be part of the identity")
	}
}

func TestKeyHashAndSeedStability(t *testing.T) {
	// Pinned values: a change here silently re-addresses every on-disk
	// cache entry (hash) or alters every simulated result (seed) — both
	// must be deliberate decisions, the first paired with a CodeVersion
	// bump in internal/experiments.
	k := NewKey("fig8").Int("topo", 3)
	const wantHash = "1b156cb649b8b024e503977b359943e8065603f5a6358db7e3903f7444c33523"
	if got := k.Hash("sb-sim-1"); got != wantHash {
		t.Fatalf("Hash(sb-sim-1) = %s, want %s", got, wantHash)
	}
	if got := k.Seed(); got != -2975852281514953881 {
		t.Fatalf("Seed() = %d, want -2975852281514953881", got)
	}
}

func TestKeySaltAddressesButDoesNotSeed(t *testing.T) {
	k := NewKey("fig9").Int("topo", 0)
	if k.Hash("v1") == k.Hash("v2") {
		t.Fatal("salt must re-address the cache entry")
	}
	// Seed takes no salt input at all: a cache-version bump must never
	// change simulated results, only invalidate stored ones.
	if k.Seed() != NewKey("fig9").Int("topo", 0).Seed() {
		t.Fatal("seed must be a pure function of the canonical key")
	}
}

func TestKeySeedDecorrelation(t *testing.T) {
	// Near-identical keys must give well-separated seeds.
	seen := map[int64]string{}
	for i := 0; i < 1000; i++ {
		k := NewKey("fig8").Int("topo", i)
		s := k.Seed()
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between topo=%d and %s", i, prev)
		}
		seen[s] = k.Canonical()
	}
}

func TestSubSeedStreamsDistinct(t *testing.T) {
	base := NewKey("fig8").Int("topo", 0).Seed()
	seen := map[int64]int{}
	for stream := 0; stream < 64; stream++ {
		s := SubSeed(base, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision between streams %d and %d", stream, prev)
		}
		seen[s] = stream
	}
	if SubSeed(base, 0) != SubSeed(base, 0) {
		t.Fatal("SubSeed must be deterministic")
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	// First three outputs of the canonical SplitMix64 generator seeded
	// with 0 (Steele, Lea & Flood; java.util.SplittableRandom): our
	// finalizer over state i*gamma reproduces the published sequence.
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	var state uint64
	for i, w := range want {
		if got := splitmix64(state); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
		state += 0x9e3779b97f4a7c15
	}
}
