package sweep

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N int
	F float64
	S string
}

func testCache(t *testing.T) *Cache {
	t.Helper()
	return &Cache{Dir: t.TempDir(), Salt: "test-v1"}
}

func TestCacheRoundTrip(t *testing.T) {
	c := testCache(t)
	k := NewKey("fig8").Int("topo", 0)
	in := payload{N: 7, F: 0.123456789012345, S: "x"}
	if err := c.Put(k, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := c.Get(k, &out)
	if err != nil || !hit {
		t.Fatalf("Get = %v, %v, want hit", hit, err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheMiss(t *testing.T) {
	c := testCache(t)
	var out payload
	if hit, err := c.Get(NewKey("fig8").Int("topo", 99), &out); err != nil || hit {
		t.Fatalf("Get on empty cache = %v, %v", hit, err)
	}
}

func TestCacheSaltMismatchIsMiss(t *testing.T) {
	c := testCache(t)
	k := NewKey("fig8").Int("topo", 0)
	if err := c.Put(k, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	// A different salt addresses a different file entirely.
	c2 := &Cache{Dir: c.Dir, Salt: "test-v2"}
	var out payload
	if hit, _ := c2.Get(k, &out); hit {
		t.Fatal("entry written under v1 must not be visible under v2")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	c := testCache(t)
	k := NewKey("fig8").Int("topo", 0)
	if err := c.Put(k, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), []byte("{ truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, err := c.Get(k, &out); err != nil || hit {
		t.Fatalf("corrupt entry: Get = %v, %v, want clean miss", hit, err)
	}
	// A rerun overwrites the corrupt file and the entry works again.
	if err := c.Put(k, payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if hit, _ := c.Get(k, &out); !hit || out.N != 2 {
		t.Fatalf("after rewrite: hit=%v out=%+v", hit, out)
	}
}

func TestCacheWrongKeyInEnvelopeIsMiss(t *testing.T) {
	// Simulate a hash collision: the envelope's stored canonical key
	// disagrees with the requested one, so Get must refuse it.
	c := testCache(t)
	k1 := NewKey("fig8").Int("topo", 0)
	k2 := NewKey("fig8").Int("topo", 1)
	if err := c.Put(k1, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(c.path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.path(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, _ := c.Get(k2, &out); hit {
		t.Fatal("envelope key mismatch must be a miss")
	}
}

func TestCacheAtomicWritesLeaveNoTempFiles(t *testing.T) {
	c := testCache(t)
	for i := 0; i < 20; i++ {
		if err := c.Put(NewKey("fig8").Int("topo", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	filepath.WalkDir(c.Dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && d != nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", p)
		}
		return nil
	})
	if c.Len() != 20 {
		t.Fatalf("Len = %d, want 20", c.Len())
	}
}

func TestCacheClear(t *testing.T) {
	c := testCache(t)
	if err := c.Put(NewKey("x"), payload{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
}

func TestEngineCacheSemantics(t *testing.T) {
	// Writes happen whenever a cache is configured; reads only in resume
	// mode. A plain rerun therefore recomputes (refreshing entries),
	// while -resume skips everything already on disk.
	c := testCache(t)

	cold := New(Config{Workers: 2, Cache: c})
	Run(cold, 8, testKey, func(i int, seed int64) (int, error) { return i, nil })
	if st := cold.Stats(); st.Executed != 8 || st.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v", st)
	}
	if c.Len() != 8 {
		t.Fatalf("cache entries after cold run = %d", c.Len())
	}

	// Plain rerun (no Resume): recomputes all 8.
	rerun := New(Config{Workers: 2, Cache: c})
	Run(rerun, 8, testKey, func(i int, seed int64) (int, error) { return i, nil })
	if st := rerun.Stats(); st.Executed != 8 || st.CacheHits != 0 {
		t.Fatalf("plain rerun stats = %+v", st)
	}

	// Resume run: zero executions, all from cache, values intact.
	warm := New(Config{Workers: 2, Cache: c, Resume: true})
	out := Run(warm, 8, testKey, func(i int, seed int64) (int, error) {
		t.Errorf("job %d executed on a warm resume", i)
		return i, nil
	})
	if st := warm.Stats(); st.Executed != 0 || st.CacheHits != 8 {
		t.Fatalf("warm run stats = %+v", st)
	}
	for i, r := range out {
		if !r.OK() || !r.Cached || r.Value != i {
			t.Fatalf("warm out[%d] = %+v", i, r)
		}
	}
}

func TestEngineResumePartialCache(t *testing.T) {
	c := testCache(t)
	seeded := New(Config{Workers: 1, Cache: c})
	Run(seeded, 4, testKey, func(i int, seed int64) (int, error) { return i * 10, nil })

	// A wider resume sweep simulates only the 6 missing cells.
	resume := New(Config{Workers: 3, Cache: c, Resume: true})
	out := Run(resume, 10, testKey, func(i int, seed int64) (int, error) { return i * 10, nil })
	if st := resume.Stats(); st.Executed != 6 || st.CacheHits != 4 {
		t.Fatalf("partial resume stats = %+v", st)
	}
	for i, r := range out {
		if !r.OK() || r.Value != i*10 {
			t.Fatalf("out[%d] = %+v", i, r)
		}
		if wantCached := i < 4; r.Cached != wantCached {
			t.Fatalf("out[%d].Cached = %v, want %v", i, r.Cached, wantCached)
		}
	}
}

func TestEngineFailedJobsNotCached(t *testing.T) {
	c := testCache(t)
	e := New(Config{Workers: 1, Cache: c})
	Run(e, 4, testKey, func(i int, seed int64) (int, error) {
		if i == 1 {
			panic("bad topology")
		}
		return i, nil
	})
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3 (failed job must not persist)", c.Len())
	}
	var out int
	if hit, _ := c.Get(testKey(1), &out); hit {
		t.Fatal("failed job left a cache entry")
	}
}
