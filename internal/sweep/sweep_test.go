package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

func testKey(i int) *Key {
	return NewKey("test").Int("topo", i)
}

func TestRunPositionalDeterminism(t *testing.T) {
	// The same sweep must yield identical positional results regardless
	// of worker count: out[i] depends only on key(i), never scheduling.
	run := func(workers int) []Result[int64] {
		e := New(Config{Workers: workers})
		return Run(e, 40, testKey, func(i int, seed int64) (int64, error) {
			return seed ^ int64(i), nil
		})
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %+v, want %+v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestRunSeedsDeriveFromKeys(t *testing.T) {
	e := New(Config{Workers: 1})
	var seeds []int64
	Run(e, 3, testKey, func(i int, seed int64) (int, error) {
		seeds = append(seeds, seed)
		return 0, nil
	})
	for i, s := range seeds {
		if want := testKey(i).Seed(); s != want {
			t.Fatalf("job %d seed = %d, want key-derived %d", i, s, want)
		}
	}
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Fatalf("adjacent job seeds collide: %v", seeds)
	}
}

func TestRunPanicCapture(t *testing.T) {
	e := New(Config{Workers: 4})
	out := Run(e, 10, testKey, func(i int, seed int64) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(out[3].Err, &pe) {
		t.Fatalf("out[3].Err = %v, want *PanicError", out[3].Err)
	}
	if pe.Value != "boom" || pe.Stack == "" {
		t.Fatalf("panic not captured: %+v", pe)
	}
	for i, r := range out {
		if i != 3 && (!r.OK() || r.Value != i) {
			t.Fatalf("job %d affected by sibling panic: %+v", i, r)
		}
	}
	st := e.Stats()
	if st.Failed != 1 || st.Executed != 10 {
		t.Fatalf("stats = %+v, want 1 failed of 10 executed", st)
	}
}

func TestRunErrorCounting(t *testing.T) {
	e := New(Config{Workers: 2})
	out := Run(e, 6, testKey, func(i int, seed int64) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	nOK := 0
	for _, r := range out {
		if r.OK() {
			nOK++
		}
	}
	if nOK != 3 {
		t.Fatalf("ok results = %d, want 3", nOK)
	}
	if st := e.Stats(); st.Failed != 3 || st.Jobs != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunCancellation(t *testing.T) {
	// Cancel mid-sweep: the call must return promptly (bounded by the
	// jobs already executing), and every unstarted job must carry the
	// context error rather than a zero value masquerading as a result.
	ctx, cancel := context.WithCancel(context.Background())
	e := New(Config{Workers: 2, Ctx: ctx})
	var started atomic.Int32
	done := make(chan []Result[int])
	go func() {
		done <- Run(e, 100, testKey, func(i int, seed int64) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			time.Sleep(2 * time.Millisecond)
			return i, nil
		})
	}()
	var out []Result[int]
	select {
	case out = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sweep did not return promptly")
	}
	st := e.Stats()
	if st.Cancelled == 0 {
		t.Fatalf("stats = %+v, want cancelled jobs", st)
	}
	if st.Executed >= 100 {
		t.Fatalf("all %d jobs executed despite cancellation", st.Executed)
	}
	nCancelled := 0
	for _, r := range out {
		if errors.Is(r.Err, context.Canceled) {
			nCancelled++
		}
	}
	if nCancelled != st.Cancelled {
		t.Fatalf("%d results carry ctx error, stats say %d", nCancelled, st.Cancelled)
	}
	if st.Executed+st.Cancelled != 100 {
		t.Fatalf("executed %d + cancelled %d != 100", st.Executed, st.Cancelled)
	}
}

func TestRunSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(Config{Workers: 1, Ctx: ctx})
	out := Run(e, 10, testKey, func(i int, seed int64) (int, error) {
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	for i := 0; i <= 2; i++ {
		if !out[i].OK() {
			t.Fatalf("job %d should have completed: %+v", i, out[i])
		}
	}
	for i := 3; i < 10; i++ {
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Fatalf("job %d should be cancelled: %+v", i, out[i])
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	e := New(Config{})
	if out := Run(e, 0, testKey, func(i int, seed int64) (int, error) { return 0, nil }); len(out) != 0 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestEngineAccumulatesAcrossRuns(t *testing.T) {
	e := New(Config{Workers: 1})
	Run(e, 3, testKey, func(i int, seed int64) (int, error) { return i, nil })
	Run(e, 4, testKey, func(i int, seed int64) (int, error) { return i, nil })
	if st := e.Stats(); st.Jobs != 7 || st.Executed != 7 {
		t.Fatalf("stats = %+v, want 7 jobs accumulated", st)
	}
	if s := e.Progress(); s.Total != 7 || s.Done != 7 {
		t.Fatalf("progress = %+v", s)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls atomic.Int32
	e := New(Config{Workers: 4, Progress: func(s stats.ProgressSnapshot) {
		calls.Add(1)
	}})
	Run(e, 12, testKey, func(i int, seed int64) (int, error) { return i, nil })
	if got := calls.Load(); got != 12 {
		t.Fatalf("progress callback fired %d times, want 12", got)
	}
}
