package sweep

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/snapshot"
)

// DefaultCacheDir is where cmd/sbsweep keeps its result cache.
const DefaultCacheDir = "results/cache"

// Cache is a content-addressed on-disk result store. Each entry lives at
// Dir/<hh>/<hash>.json where hash is the salted SHA-256 of the job key's
// canonical form and hh its first two hex digits. Entries are written to
// a temp file and renamed into place, so a killed or cancelled run only
// ever leaves complete entries behind.
type Cache struct {
	// Dir is the cache root.
	Dir string
	// Salt is the code-version salt mixed into every address (see
	// experiments.CodeVersion). Bump it whenever a change alters
	// simulated results: stale entries are then never addressed again.
	// Clearing the directory merely reclaims the disk.
	Salt string
}

// entry is the on-disk envelope. The full canonical key and salt are
// stored alongside the value so a hash collision or a corrupt file is
// detected as a miss, never wrongly reused.
type entry struct {
	Key   string          `json:"key"`
	Salt  string          `json:"salt"`
	Value json.RawMessage `json:"value"`
}

func (c *Cache) path(k *Key) string {
	h := k.Hash(c.Salt)
	return filepath.Join(c.Dir, h[:2], h+".json")
}

// Get loads the cached value for k into out (a pointer) and reports
// whether a valid entry existed. Corrupt or mismatched entries are
// treated as misses (the job reruns and overwrites them).
func (c *Cache) Get(k *Key, out any) (bool, error) {
	f, err := os.Open(c.path(k))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	var e entry
	if err := snapshot.DecodeJSON(f, &e); err != nil {
		return false, nil
	}
	if e.Key != k.Canonical() || e.Salt != c.Salt {
		return false, nil
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		return false, nil
	}
	return true, nil
}

// Put stores v for k atomically (temp file + rename).
func (c *Cache) Put(k *Key, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	e := entry{Key: k.Canonical(), Salt: c.Salt, Value: raw}
	if err := snapshot.EncodeJSON(tmp, e); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Len counts complete entries on disk.
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.Dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && d != nil && !d.IsDir() && strings.HasSuffix(p, ".json") {
			n++
		}
		return nil
	})
	return n
}

// Clear removes the whole cache directory.
func (c *Cache) Clear() error { return os.RemoveAll(c.Dir) }
