package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
)

// Key is the stable identity of one sweep job: an ordered list of
// name=value fields covering everything that affects the job's result
// (experiment name, cell coordinates, and every simulation-affecting
// parameter). The on-disk cache address and the job's RNG seed both
// derive from the canonical form, so adding, removing, or renaming a
// field deliberately re-addresses the cells of the sweeps that use it.
type Key struct {
	parts []string
}

// NewKey starts a key with the experiment name.
func NewKey(experiment string) *Key {
	return (&Key{}).Str("experiment", experiment)
}

// Str appends a string field.
func (k *Key) Str(name, v string) *Key {
	k.parts = append(k.parts, name+"="+v)
	return k
}

// Int appends an integer field.
func (k *Key) Int(name string, v int) *Key { return k.Str(name, strconv.Itoa(v)) }

// Int64 appends a 64-bit integer field.
func (k *Key) Int64(name string, v int64) *Key { return k.Str(name, strconv.FormatInt(v, 10)) }

// Float appends a float field in the shortest round-trippable form.
func (k *Key) Float(name string, v float64) *Key {
	return k.Str(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Floats appends a comma-joined float-list field (rate grids and the
// like, where the whole list shapes the job's result).
func (k *Key) Floats(name string, vs []float64) *Key {
	ss := make([]string, len(vs))
	for i, v := range vs {
		ss[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return k.Str(name, strings.Join(ss, ","))
}

// Bool appends a boolean field.
func (k *Key) Bool(name string, v bool) *Key { return k.Str(name, strconv.FormatBool(v)) }

// Canonical returns the canonical textual form, "a=1|b=x|...".
func (k *Key) Canonical() string { return strings.Join(k.parts, "|") }

// Hash returns the hex SHA-256 address of the salted canonical form.
// The salt is the cache's code-version string: bumping it re-addresses
// every entry at once.
func (k *Key) Hash(salt string) string {
	sum := sha256.Sum256([]byte(salt + "\x00" + k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Seed derives the job's base RNG seed from the canonical form alone —
// not the salt, because a cache-version bump must never alter simulated
// results. The hash word passes through a splitmix64 finalizer so that
// near-identical keys ("topo=1" vs "topo=2") still yield decorrelated
// seed streams.
func (k *Key) Seed() int64 {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return int64(splitmix64(binary.LittleEndian.Uint64(sum[:8])))
}

// SubSeed derives the stream-th decorrelated seed from a job seed, for
// jobs that need several independent RNGs (one per scheme, per offered
// rate, ...).
func SubSeed(seed int64, stream int) int64 {
	return int64(splitmix64(uint64(seed) + uint64(stream)*0x9e3779b97f4a7c15))
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix
// turning structured inputs into independent-looking seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
