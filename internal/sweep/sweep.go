// Package sweep is the reusable sweep/job engine behind the experiment
// harness (internal/experiments): a bounded worker pool with context
// cancellation and panic capture, deterministic per-job seed derivation
// (splitmix-style from the job key), a content-addressed on-disk result
// cache, and progress/ETA reporting through internal/stats.
//
// The contract every sweep relies on: results are positional and every
// job's seed derives only from its key, so a sweep's output is
// byte-identical regardless of worker count, scheduling order, or
// whether cells came from the cache or from live simulation.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/stats"
)

// Config selects how an Engine executes jobs. It is execution
// configuration only: nothing in it may change a job's computed value.
type Config struct {
	// Workers bounds concurrently executing jobs; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, persists every computed job result.
	Cache *Cache
	// Resume additionally reads the cache before executing a job, so an
	// interrupted or repeated sweep only simulates the missing cells.
	// Off by default: a plain rerun recomputes (and refreshes) every
	// entry it touches.
	Resume bool
	// Ctx cancels the sweep between jobs; nil means context.Background.
	// A cancelled engine lets jobs already executing finish (bounded by
	// one job per worker) and marks the rest with ctx.Err().
	Ctx context.Context
	// Progress, when non-nil, is called after every completed job with
	// the engine's cumulative snapshot. Calls are serialized.
	Progress func(stats.ProgressSnapshot)
}

// Engine runs sweeps. One engine may serve many Run calls (cmd/sbsweep
// shares a single engine across all figures); its counters accumulate.
type Engine struct {
	cfg  Config
	prog *stats.Progress

	mu sync.Mutex
	st RunStats

	progMu sync.Mutex
}

// RunStats counts job outcomes over the engine's lifetime.
type RunStats struct {
	Jobs           int // scheduled
	Executed       int // computed by running the job function
	CacheHits      int // satisfied from the result cache
	Failed         int // returned an error or panicked
	Cancelled      int // never started: context cancelled first
	CacheWriteErrs int // results computed but not persisted
}

// New builds an engine; the zero Config selects all cores, no cache,
// and no cancellation.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, prog: stats.NewProgress()}
}

// Context returns the engine's cancellation context.
func (e *Engine) Context() context.Context {
	if e.cfg.Ctx != nil {
		return e.cfg.Ctx
	}
	return context.Background()
}

// Stats returns the cumulative counters.
func (e *Engine) Stats() RunStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

// Progress returns the cumulative progress snapshot (timing included).
func (e *Engine) Progress() stats.ProgressSnapshot { return e.prog.Snapshot() }

func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) note(f func(*RunStats)) {
	e.mu.Lock()
	f(&e.st)
	e.mu.Unlock()
}

func (e *Engine) emitProgress() {
	if e.cfg.Progress == nil {
		return
	}
	e.progMu.Lock()
	e.cfg.Progress(e.prog.Snapshot())
	e.progMu.Unlock()
}

// Result is one job's outcome.
type Result[T any] struct {
	Value T
	// Err is nil on success; a context error for jobs the cancellation
	// prevented from starting; a *PanicError for captured panics.
	Err error
	// Cached reports that Value came from the result cache.
	Cached bool
}

// OK reports whether the job produced a value.
func (r Result[T]) OK() bool { return r.Err == nil }

// PanicError wraps a panic captured from a job, so one faulty topology
// run fails that job instead of the process.
type PanicError struct {
	Value any
	Stack string
}

func (p *PanicError) Error() string { return fmt.Sprintf("job panic: %v", p.Value) }

// Run executes n jobs on e's pool and returns positional results:
// out[i] is job i's outcome no matter which worker ran it or in what
// order. key(i) must fully describe job i — it addresses the cache and
// derives the seed passed to fn. fn must only touch state owned by its
// own index.
func Run[T any](e *Engine, n int, key func(i int) *Key, fn func(i int, seed int64) (T, error)) []Result[T] {
	out := make([]Result[T], n)
	if n == 0 {
		return out
	}
	e.note(func(st *RunStats) { st.Jobs += n })
	e.prog.Grow(n)
	ctx := e.Context()
	workers := e.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				out[i] = Result[T]{Err: err}
				e.note(func(st *RunStats) { st.Cancelled++ })
				continue
			}
			out[i] = runOne(e, key(i), i, fn)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = runOne(e, key(i), i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			out[i] = Result[T]{Err: ctx.Err()}
			e.note(func(st *RunStats) { st.Cancelled++ })
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// runOne resolves a single job: cache lookup (in resume mode), then
// execution with panic capture, then cache write-back.
func runOne[T any](e *Engine, k *Key, i int, fn func(i int, seed int64) (T, error)) Result[T] {
	var r Result[T]
	c := e.cfg.Cache
	if c != nil && e.cfg.Resume {
		if hit, err := c.Get(k, &r.Value); err == nil && hit {
			r.Cached = true
			e.note(func(st *RunStats) { st.CacheHits++ })
			e.prog.ObserveCached()
			e.emitProgress()
			return r
		}
	}
	if err := e.Context().Err(); err != nil {
		e.note(func(st *RunStats) { st.Cancelled++ })
		return Result[T]{Err: err}
	}
	start := time.Now()
	r.Value, r.Err = call(fn, i, k.Seed())
	elapsed := time.Since(start)
	err := r.Err
	e.note(func(st *RunStats) {
		st.Executed++
		if err != nil {
			st.Failed++
		}
	})
	e.prog.ObserveExecuted(elapsed, err == nil)
	if err == nil && c != nil {
		if perr := c.Put(k, r.Value); perr != nil {
			e.note(func(st *RunStats) { st.CacheWriteErrs++ })
		}
	}
	e.emitProgress()
	return r
}

// call invokes fn with panic capture.
func call[T any](fn func(i int, seed int64) (T, error), i int, seed int64) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	return fn(i, seed)
}
