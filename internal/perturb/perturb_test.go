package perturb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// enqueueRing primes a 2x2 mesh with a guaranteed deadlock: every node
// streams perNode 5-flit packets two hops clockwise (the same fixture
// internal/core's recovery tests use).
func enqueueRing(s *network.Sim, perNode int) int {
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	total := 0
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := s.Topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := s.Topo.Neighbor(mid, d2)
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

// runStorm drives a seeded mixed-traffic storm on the golden scenario's
// irregular 8x8 topology (known to trigger thousands of probes) with SB
// recovery attached and returns the final Stats.
func runStorm(t *testing.T, p core.Perturber) (network.Stats, *core.Controller) {
	t.Helper()
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	c := core.Attach(s, core.Options{TDD: 24, Perturb: p})
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(5))
	for cyc := 0; cyc < 3000; cyc++ {
		if cyc < 2000 {
			for n := 0; n < topo.NumNodes(); n++ {
				src := geom.NodeID(n)
				if !topo.RouterAlive(src) || rng.Float64() >= 0.09 {
					continue
				}
				dst := geom.NodeID(rng.Intn(topo.NumNodes()))
				r, ok := min.Route(src, dst, rng)
				if !ok {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), ln, r))
			}
		}
		s.Step()
	}
	return s.Stats, c
}

// TestZeroKnobsIdenticalTrajectory: attaching a perturber with all-zero
// knobs must leave the trajectory byte-identical to no perturber at all —
// the layer only acts when a knob fires, never by existing.
func TestZeroKnobsIdenticalTrajectory(t *testing.T) {
	base, _ := runStorm(t, nil)
	zero, _ := runStorm(t, New(Config{Seed: 99}))
	if base != zero {
		t.Fatalf("zero-knob perturber changed the trajectory:\nbase %+v\nzero %+v", base, zero)
	}
}

// TestDeterministicUnderPerturbation: identical seeds and knobs produce
// identical trajectories and identical perturbation counters.
func TestDeterministicUnderPerturbation(t *testing.T) {
	cfg := Config{Default: Knobs{Loss: 0.3, Jitter: 0.4, Reorder: 0.2, Dup: 0.25}, Seed: 7}
	p1 := New(cfg)
	p2 := New(cfg)
	st1, _ := runStorm(t, p1)
	st2, _ := runStorm(t, p2)
	if st1 != st2 {
		t.Fatalf("same seed diverged:\n%+v\n%+v", st1, st2)
	}
	if p1.Dropped != p2.Dropped || p1.Delayed != p2.Delayed ||
		p1.Reordered != p2.Reordered || p1.Duplicated != p2.Duplicated {
		t.Fatalf("perturbation counters diverged: %+v vs %+v", p1, p2)
	}
	if p1.Dropped == 0 || p1.Delayed == 0 || p1.Reordered == 0 || p1.Duplicated == 0 {
		t.Fatalf("expected every knob to fire during a storm: %+v", p1)
	}
}

// TestPerturbationChangesTrajectory: a firing knob must actually change
// the run (guards against the layer silently not being wired in).
func TestPerturbationChangesTrajectory(t *testing.T) {
	base, _ := runStorm(t, nil)
	lossy, _ := runStorm(t, New(Config{Default: Knobs{Loss: 0.5}, Seed: 7}))
	if base == lossy {
		t.Fatal("50% control-message loss left the trajectory unchanged")
	}
}

// TestRecoveryUnderLossyControlPlane: with every control-message class
// randomly dropped, delayed, reordered, and duplicated, the guaranteed
// ring deadlock must still be recovered and fully drained — the FSM
// timeouts and retransmissions are the mechanism under test.
func TestRecoveryUnderLossyControlPlane(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	p := New(Config{Default: Knobs{Loss: 0.25, Jitter: 0.5, Reorder: 0.3, Dup: 0.3}, Seed: 21})
	c := core.Attach(s, core.Options{TDD: 20, Perturb: p})
	total := enqueueRing(s, 12)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d under lossy control plane (in flight %d, state %v)",
			s.Stats.Delivered, total, s.InFlight(), c.FSMState(3))
	}
	if err := c.CheckMessagePool(); err != nil {
		t.Fatal(err)
	}
	for id := range s.Routers {
		if s.Routers[id].Fence.Active {
			t.Fatalf("router %d fence still active after drain", id)
		}
	}
}

// TestControlPlaneOutageThenRecovery: while every probe is lost, no
// recovery can begin (the deadlock sits wedged); once the outage lifts
// the protocol completes normally. SetDefault is the knob path the fuzz
// target drives.
func TestControlPlaneOutageThenRecovery(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	p := New(Config{Default: Knobs{Loss: 1}, Only: []core.MsgType{core.MsgProbe}, Seed: 4})
	c := core.Attach(s, core.Options{TDD: 20, Perturb: p})
	total := enqueueRing(s, 12)
	s.Run(5000)
	if s.Stats.DeadlockRecoveries != 0 {
		t.Fatalf("recovery started despite total probe loss (%d recoveries)", s.Stats.DeadlockRecoveries)
	}
	if s.Stats.ProbesSent == 0 {
		t.Fatal("expected probe retransmissions during the outage")
	}
	if p.Dropped == 0 {
		t.Fatal("outage dropped nothing")
	}
	p.SetDefault(Knobs{})
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d after outage lifted (state %v)", s.Stats.Delivered, total, c.FSMState(3))
	}
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected a recovery once the outage lifted")
	}
}

// TestPerLinkOverride: a per-link override must shadow the default on
// that link only. With the default lossless and one link fully lossy,
// drops happen and are confined to the configured link.
func TestPerLinkOverride(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	// The 2x2 SB router is node 3; its probe for the clockwise ring exits
	// South toward node 1. Losing that directed link's control messages
	// stalls detection exactly like a total outage.
	p := New(Config{PerLink: map[Link]Knobs{{From: 3, Dir: geom.South}: {Loss: 1}}, Seed: 4})
	core.Attach(s, core.Options{TDD: 20, Perturb: p})
	enqueueRing(s, 12)
	s.Run(5000)
	if p.Dropped == 0 {
		t.Fatal("per-link loss never fired")
	}
	if s.Stats.DeadlockRecoveries != 0 {
		t.Fatalf("recovery started despite the probe link being dead (%d recoveries)", s.Stats.DeadlockRecoveries)
	}
	// Clearing the override restores the default (lossless) path.
	p.SetLink(Link{From: 3, Dir: geom.South}, Knobs{})
	s.Run(40000)
	if s.Stats.DeadlockRecoveries == 0 {
		t.Fatal("expected recovery after the override was removed")
	}
}

// TestOnlyFiltersClasses: a perturber restricted to probes must never
// touch disables/enables (message-pool counters confirm via a dup-only
// config: duplicates appear only for the probe class).
func TestOnlyFiltersClasses(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	p := New(Config{Default: Knobs{Dup: 1}, Only: []core.MsgType{core.MsgDisable}, Seed: 8})
	c := core.Attach(s, core.Options{TDD: 20, Perturb: p})
	total := enqueueRing(s, 12)
	s.Run(40000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d with duplicated disables", s.Stats.Delivered, total)
	}
	if p.Duplicated == 0 {
		t.Fatal("disable duplication never fired")
	}
	if p.Duplicated > s.Stats.DisablesSent*6 {
		// Disables are sent once per round and forwarded once per hop on a
		// ≤4-hop ring: duplicates far beyond that bound mean the Only
		// filter leaked onto probes (sent by the thousands in a storm).
		t.Fatalf("implausibly many duplicates (%d) for %d disables sent — Only filter leaking?",
			p.Duplicated, s.Stats.DisablesSent)
	}
	if err := c.CheckMessagePool(); err != nil {
		t.Fatal(err)
	}
}
