// Package perturb is the control-plane perturbation layer: a SimNet-style
// fault model (loss, delay jitter, reordering, duplication knobs) applied
// to the Static Bubble controller's bufferless control messages — probes,
// disables, enables, and check_probes — and to nothing else. Data flits
// are untouched; the point is to stress the recovery FSM with the failure
// modes a real control plane sees (probes that vanish, disables that
// arrive late or twice) which the paper never measures.
//
// A Perturber implements core.Perturber and attaches through
// core.Options.Perturb. All randomness comes from a private splitmix64
// stream seeded at construction, drawn once per intercepted transmission
// in the controller's deterministic call order — so two identically
// seeded simulations (event, refmodel, or sharded core) remain
// byte-identical under perturbation, and a recorded worst case replays
// exactly.
package perturb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// Knobs is one link's (or the default) perturbation intensity. The zero
// value is a no-op. Probabilities are in [0, 1] and evaluated
// independently per transmission, in a fixed order (duplicate, loss,
// reorder, jitter) so knob combinations draw identically everywhere.
type Knobs struct {
	// Loss is the probability a message is dropped in flight.
	Loss float64
	// Jitter is the probability a message is delayed by a uniform draw
	// in [1, JitterMax] extra cycles. JitterMax <= 0 defaults to 4.
	Jitter    float64
	JitterMax int64
	// Reorder is the probability a message is held back ReorderDelay
	// extra cycles. Because later messages on the link keep their nominal
	// latency, they overtake the held one — an arrival-order inversion,
	// which is what "reordering" means for a bufferless hop-by-hop
	// transport. ReorderDelay <= 0 defaults to 6 (three nominal hops).
	Reorder      float64
	ReorderDelay int64
	// Dup is the probability an extra deep copy of the message is
	// delivered DupDelay cycles after the original (<= 0 defaults to 2).
	Dup      float64
	DupDelay int64
}

// IsZero reports whether the knobs perturb nothing.
func (k Knobs) IsZero() bool {
	return k.Loss == 0 && k.Jitter == 0 && k.Reorder == 0 && k.Dup == 0
}

func (k Knobs) String() string {
	return fmt.Sprintf("loss=%.3g jitter=%.3g reorder=%.3g dup=%.3g", k.Loss, k.Jitter, k.Reorder, k.Dup)
}

// Link identifies one directed link: the transmitting router and its
// output direction.
type Link struct {
	From geom.NodeID
	Dir  geom.Direction
}

// Config assembles a Perturber.
type Config struct {
	// Default applies to every link without a PerLink override.
	Default Knobs
	// PerLink overrides the default on specific directed links (e.g.
	// only the links of a victim region are lossy).
	PerLink map[Link]Knobs
	// Only, when non-empty, restricts perturbation to the listed message
	// types; empty perturbs all four control messages.
	Only []core.MsgType
	// Seed seeds the private randomness stream.
	Seed int64
}

// Perturber implements core.Perturber over a Config. Construct with New;
// the zero value is not usable.
type Perturber struct {
	def     Knobs
	perLink map[Link]Knobs
	typeOK  [4]bool
	rng     uint64

	// Counters report what the layer actually did, for tests and the
	// adversary's SLO table.
	Dropped    int64
	Delayed    int64
	Reordered  int64
	Duplicated int64
}

// New builds a deterministic Perturber from cfg.
func New(cfg Config) *Perturber {
	p := &Perturber{
		def:     cfg.Default,
		perLink: cfg.PerLink,
		rng:     splitmix64(uint64(cfg.Seed) ^ 0xda3e39cb94b95bdb),
	}
	if len(cfg.Only) == 0 {
		for i := range p.typeOK {
			p.typeOK[i] = true
		}
	} else {
		for _, t := range cfg.Only {
			if t >= 0 && int(t) < len(p.typeOK) {
				p.typeOK[int(t)] = true
			}
		}
	}
	return p
}

// SetDefault replaces the default knobs mid-run (the fuzz target drives
// knob sequences this way). Per-link overrides are unaffected.
func (p *Perturber) SetDefault(k Knobs) { p.def = k }

// SetLink installs (or, with zero knobs, removes) a per-link override.
func (p *Perturber) SetLink(l Link, k Knobs) {
	if p.perLink == nil {
		p.perLink = make(map[Link]Knobs)
	}
	if k.IsZero() {
		delete(p.perLink, l)
		return
	}
	p.perLink[l] = k
}

// next advances the private splitmix64 stream.
func (p *Perturber) next() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	x := p.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit returns a float in [0, 1).
func (p *Perturber) unit() float64 { return float64(p.next()>>11) / (1 << 53) }

// uintn returns a uniform draw in [0, n).
func (p *Perturber) uintn(n int64) int64 { return int64(p.next() % uint64(n)) }

// PerturbMsg implements core.Perturber. The draw order is fixed
// (duplicate, loss, reorder, jitter) and each enabled knob's Bernoulli
// draw happens exactly once whether or not any other knob fired, so the
// stream position never depends on another knob's outcome. A dropped
// message still burns the reorder/jitter draws; only the drop wins.
func (p *Perturber) PerturbMsg(now int64, from geom.NodeID, out geom.Direction, typ core.MsgType) core.Verdict {
	if !p.typeOK[int(typ)&3] {
		return core.Verdict{}
	}
	k := p.def
	if len(p.perLink) > 0 {
		if o, ok := p.perLink[Link{from, out}]; ok {
			k = o
		}
	}
	var v core.Verdict
	if k.Dup > 0 && p.unit() < k.Dup {
		v.Dup = true
		v.DupDelay = k.DupDelay
		if v.DupDelay <= 0 {
			v.DupDelay = 2
		}
		p.Duplicated++
	}
	drop := k.Loss > 0 && p.unit() < k.Loss
	if k.Reorder > 0 && p.unit() < k.Reorder {
		d := k.ReorderDelay
		if d <= 0 {
			d = 6
		}
		v.Delay += d
		if !drop {
			p.Reordered++
		}
	}
	if k.Jitter > 0 && p.unit() < k.Jitter {
		max := k.JitterMax
		if max <= 0 {
			max = 4
		}
		v.Delay += 1 + p.uintn(max)
		if !drop {
			p.Delayed++
		}
	}
	if drop {
		v.Drop = true
		v.Delay = 0
		p.Dropped++
	}
	return v
}

// splitmix64 is the stream seeding finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var _ core.Perturber = (*Perturber)(nil)
