package perturb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/topology"
)

// knobsFromByte decodes one fuzz-program byte into a knob setting: two
// bits per knob select escalating severity, so the fuzzer explores every
// combination of loss/jitter/reorder/duplication including total outage.
func knobsFromByte(b byte) Knobs {
	levels := [4]float64{0, 0.2, 0.5, 1}
	return Knobs{
		Loss:    levels[b&3],
		Jitter:  levels[(b>>2)&3],
		Reorder: levels[(b>>4)&3],
		Dup:     levels[(b>>6)&3],
	}
}

// FuzzPerturbFSM drives arbitrary knob sequences against the recovery
// FSMs on the guaranteed ring deadlock: each program byte reconfigures
// the perturber for a 200-cycle window (including total control-plane
// outages), and after the program the knobs are zeroed and the network
// must fully recover. Invariants at every step: the message pool stays
// consistent (no double-frees or aliased duplicate buffers); at the end:
// every packet delivers, every FSM returns to S_OFF, no fence stays
// latched, and no control message is left in flight.
//
// Run with `go test -fuzz=FuzzPerturbFSM ./internal/perturb`.
func FuzzPerturbFSM(f *testing.F) {
	f.Add(int64(1), []byte{0x00})
	f.Add(int64(2), []byte{0x03, 0x00, 0xff, 0x0c})             // outage, clean, everything, jitter
	f.Add(int64(3), []byte{0x55, 0xaa, 0x55, 0xaa})             // alternating mid/high mixes
	f.Add(int64(7), []byte{0xc0, 0xc0, 0x30, 0x30, 0x03, 0x03}) // dup-only, reorder-only, loss-only
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		if len(prog) > 48 {
			prog = prog[:48]
		}
		topo := topology.NewMesh(2, 2)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		p := New(Config{Seed: seed})
		c := core.Attach(s, core.Options{TDD: 20, Perturb: p})
		total := enqueueRing(s, 12)

		for _, b := range prog {
			p.SetDefault(knobsFromByte(b))
			s.Run(200)
			if err := c.CheckMessagePool(); err != nil {
				t.Fatalf("knob byte %#02x: %v", b, err)
			}
		}

		// Outage over: with the control plane restored, the FSM timeouts
		// must converge to a full recovery no matter what came before.
		p.SetDefault(Knobs{})
		for i := 0; i < 12 && s.Stats.Delivered != int64(total); i++ {
			s.Run(5000)
		}
		if s.Stats.Delivered != int64(total) {
			t.Fatalf("delivered %d of %d after knobs cleared (state %v, %d ctrl msgs in flight)",
				s.Stats.Delivered, total, c.FSMState(3), c.InFlightMessages())
		}
		if err := c.CheckMessagePool(); err != nil {
			t.Fatal(err)
		}
		// Let straggler control messages (duplicates, delayed copies) land.
		s.Run(2000)
		for _, n := range c.BubbleRouters() {
			if st := c.FSMState(n); st != core.StateOff {
				t.Fatalf("FSM at %d stuck in %v after drain", n, st)
			}
		}
		for id := range s.Routers {
			if s.Routers[id].Fence.Active {
				t.Fatalf("router %d fence still latched after drain", id)
			}
		}
		if n := c.InFlightMessages(); n != 0 {
			t.Fatalf("%d control messages still in flight after drain", n)
		}
	})
}
