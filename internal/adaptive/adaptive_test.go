package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAdaptiveDeliversMinimally(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c := Attach(s)
	src := topo.ID(geom.Coord{X: 0, Y: 0})
	dst := topo.ID(geom.Coord{X: 5, Y: 5})
	pkt := c.NewPacket(src, dst, 0, 5)
	s.Enqueue(pkt)
	s.Run(80)
	if pkt.DeliveredAt < 0 {
		t.Fatal("adaptive packet not delivered")
	}
	if pkt.Hop != 10 {
		t.Fatalf("took %d hops, want minimal 10", pkt.Hop)
	}
}

func TestAdaptiveAvoidsCongestion(t *testing.T) {
	// Saturate one of two minimal first hops; the adaptive choice must
	// route fresh packets around it.
	topo := topology.NewMesh(3, 3)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	c := Attach(s)
	// Fill all vnet-0 VCs at (1,0)'s West port so East-first looks full.
	mid := topo.ID(geom.Coord{X: 1, Y: 0})
	for i := 0; i < s.Cfg.VCsPerVnet; i++ {
		blocker := c.NewPacket(0, mid, 0, 5)
		blocker.Hop = 1
		s.Routers[mid].In[geom.West][i].Pkt = blocker
	}
	s.Routers[mid].OutFreeAt[geom.Local] = 1 << 30 // hold them there
	p := c.NewPacket(0, topo.ID(geom.Coord{X: 1, Y: 1}), 0, 1)
	s.Enqueue(p)
	s.Run(6)
	// The packet's first hop should have been North (free), not East
	// (zero free VCs).
	if s.Routers[topo.ID(geom.Coord{X: 0, Y: 1})].Occupied() == 0 && p.DeliveredAt < 0 {
		t.Fatal("packet did not take the uncongested North hop")
	}
	s.Run(40)
	if p.DeliveredAt < 0 {
		t.Fatal("packet not delivered")
	}
	if p.Hop != 2 {
		t.Fatalf("hops = %d, want 2 (still minimal)", p.Hop)
	}
}

func TestAdaptiveWithStaticBubbleRecovery(t *testing.T) {
	// Full adaptivity changes which cycles form, not whether SB covers
	// them: sustained deadlock-prone traffic drains completely.
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, 3)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	core.Attach(s, core.Options{TDD: 24, Placement: core.Placement(6, 6)})
	c := Attach(s)
	rng := rand.New(rand.NewSource(4))
	offered := int64(0)
	for cyc := 0; cyc < 4000; cyc++ {
		if cyc < 2500 {
			for n := 0; n < 36; n++ {
				src := geom.NodeID(n)
				if !topo.RouterAlive(src) || rng.Float64() >= 0.10 {
					continue
				}
				dst := geom.NodeID(rng.Intn(36))
				if dst == src || !c.Reachable(src, dst) {
					s.Drop()
					continue
				}
				ln := 1
				if rng.Intn(2) == 0 {
					ln = 5
				}
				s.Enqueue(c.NewPacket(src, dst, rng.Intn(3), ln))
				offered++
			}
		}
		s.Step()
	}
	for i := 0; i < 200000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
		s.Run(100)
	}
	if s.Stats.Delivered != offered {
		t.Fatalf("adaptive+SB: delivered %d of %d (in flight %d, recoveries %d)",
			s.Stats.Delivered, offered, s.InFlight(), s.Stats.DeadlockRecoveries)
	}
}

func TestAdaptiveHopCountAlwaysMinimal(t *testing.T) {
	// Adaptivity must never stretch paths: every delivered packet's hop
	// count equals the shortest-path distance.
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 8, 5)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	c := Attach(s)
	min := routing.NewMinimal(topo)
	type issued struct {
		p    *network.Packet
		want int
	}
	var all []issued
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		src := geom.NodeID(rng.Intn(36))
		dst := geom.NodeID(rng.Intn(36))
		if src == dst || !topo.RouterAlive(src) || !c.Reachable(src, dst) {
			continue
		}
		p := c.NewPacket(src, dst, 0, 1)
		s.Enqueue(p)
		all = append(all, issued{p, min.Distance(src, dst)})
	}
	s.Run(20000)
	for _, it := range all {
		if it.p.DeliveredAt < 0 {
			t.Fatal("packet not delivered")
		}
		if it.p.Hop != it.want {
			t.Fatalf("packet took %d hops, shortest is %d", it.p.Hop, it.want)
		}
	}
}

func TestAdaptiveParksWhenDisconnected(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	c := Attach(s)
	p := c.NewPacket(0, 3, 0, 1)
	s.Enqueue(p)
	s.Run(3)
	topo.DisableLink(1, geom.East) // p is at router 1 now, dst unreachable
	s.Run(50)
	if p.DeliveredAt >= 0 {
		t.Fatal("packet cannot have crossed a cut")
	}
	if s.InFlight() != 1 {
		t.Fatal("packet should be parked in the network")
	}
}
