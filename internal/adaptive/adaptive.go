// Package adaptive provides per-hop adaptive minimal routing: at every
// router a packet picks, among the outputs that lie on a shortest path to
// its destination, the one whose downstream input port currently has the
// most free buffers. This is the fully adaptive operating mode the
// paper's Fig. 2 methodology describes ("randomly chooses from one of its
// possible minimal routes without any routing restrictions") with a
// congestion-aware tie-break — deadlock-prone by construction, and
// therefore exactly what Static Bubble exists to protect.
//
// Packets under this scheme carry no source route; the simulator's
// OutputOverride supplies every hop.
package adaptive

import (
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// Controller supplies adaptive outputs for all packets of a simulator.
type Controller struct {
	sim *network.Sim
	min *routing.Minimal
}

// Attach installs adaptive minimal routing on s. It takes over the
// simulator's OutputOverride; schemes that also need an override (the
// escape-VC baseline) are incompatible with it by design — Static Bubble
// composes fine. The routing tables come from the shared compiled-table
// cache, so s.Topo must not be mutated after Attach.
func Attach(s *network.Sim) *Controller {
	c := &Controller{sim: s, min: routing.MinimalFor(s.Topo)}
	// The override probes downstream buffer occupancy, which is only
	// deterministic under the strictly ordered sequential phases.
	s.RequireUnsharded()
	s.OutputOverride = c.output
	return c
}

// Reachable reports whether dst is reachable from src (for source-side
// admission).
func (c *Controller) Reachable(src, dst geom.NodeID) bool {
	return c.min.Reachable(src, dst)
}

// output picks the next hop for p at router `at`. The minimal candidate
// set is one compiled mask load; only the congestion probe touches live
// simulator state.
func (c *Controller) output(p *network.Packet, at geom.NodeID) (geom.Direction, bool) {
	if at == p.Dst {
		return geom.Local, true
	}
	m := c.min.NextHopMask(at, p.Dst)
	if m == 0 {
		// Destination unreachable from here (runtime fault after
		// injection): park the packet (an Invalid want is never granted);
		// the reconfig layer is responsible for repair. Returning
		// ok=false instead would fall back to the (empty) source route
		// and misdeliver the packet here.
		return geom.Invalid, true
	}
	best := geom.Invalid
	bestFree := -1
	// Mask bits enumerate in N,E,S,W order — the same candidate order as
	// the graph walk this replaced, so the first-strictly-greater
	// tie-break picks identical directions.
	for i := 0; i < geom.NumLinkDirs; i++ {
		if m&(1<<uint(i)) == 0 {
			continue
		}
		d := geom.Direction(i)
		free := c.freeVCs(c.min.NeighborOf(at, d), d.Opposite(), p.Vnet)
		if free > bestFree {
			best, bestFree = d, free
		}
	}
	return best, true // Invalid parks the packet when no minimal hop is alive
}

// freeVCs counts free buffers of vnet at router n's input port.
func (c *Controller) freeVCs(n geom.NodeID, in geom.Direction, vnet int) int {
	r := &c.sim.Routers[n]
	base := vnet * c.sim.Cfg.VCsPerVnet
	free := 0
	for i := 0; i < c.sim.Cfg.VCsPerVnet; i++ {
		if r.In[in][base+i].Empty(c.sim.Now) {
			free++
		}
	}
	return free
}

// NewPacket creates a routeless packet for the adaptive scheme.
func (c *Controller) NewPacket(src, dst geom.NodeID, vnet, length int) *network.Packet {
	return c.sim.NewPacket(src, dst, vnet, length, nil)
}
