package adversary

import (
	"testing"
)

// fakeEval scores a gene by the sum of its indices — a smooth landscape
// whose unique maximum is the all-max corner — and records every batch.
type fakeEval struct {
	sp      Space
	batches [][]Gene
	calls   map[string]int
}

func newFakeEval(sp Space) *fakeEval {
	return &fakeEval{sp: sp, calls: map[string]int{}}
}

func (f *fakeEval) eval(genes []Gene) []Outcome {
	f.batches = append(f.batches, append([]Gene(nil), genes...))
	outs := make([]Outcome, len(genes))
	for i, g := range genes {
		f.calls[g.Key()]++
		sum := 0
		for _, p := range g.fields() {
			sum += *p
		}
		outs[i] = Outcome{DeadlockFreq: float64(sum)}
	}
	return outs
}

func smallSpace() Space {
	return Space{
		FaultKinds:  []string{"link"},
		FaultCounts: []int{4, 8},
		Topologies:  2,
		Patterns:    []string{"uniform_random", "transpose"},
		Traffics:    []string{"bernoulli", "pareto"},
		Rates:       []float64{0.1, 0.2},
		Loss:        []float64{0, 0.2},
		Jitter:      []float64{0, 0.2},
		Reorder:     []float64{0, 0.2},
		Dup:         []float64{0, 0.2},
	}
}

// TestSearchDeterministic: identical configs against a deterministic
// evaluator yield identical results — tables, counters, everything.
func TestSearchDeterministic(t *testing.T) {
	cfg := Config{Space: smallSpace(), Restarts: 3, Generations: 6, Neighbors: 4, Seed: 11}
	r1, err1 := Search(cfg, newFakeEval(cfg.Space).eval)
	r2, err2 := Search(cfg, newFakeEval(cfg.Space).eval)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Evals != r2.Evals || r1.Proposed != r2.Proposed {
		t.Fatalf("counters diverged: %+v vs %+v", r1, r2)
	}
	if len(r1.Table) != len(r2.Table) {
		t.Fatalf("table sizes diverged: %d vs %d", len(r1.Table), len(r2.Table))
	}
	for i := range r1.Table {
		if r1.Table[i] != r2.Table[i] {
			t.Fatalf("table row %d diverged: %+v vs %+v", i, r1.Table[i], r2.Table[i])
		}
	}
}

// TestSearchClimbs: on the sum-of-indices landscape the search must do
// clearly better than its random starting points — with this budget it
// should find the global maximum of the small space.
func TestSearchClimbs(t *testing.T) {
	sp := smallSpace()
	cfg := Config{Space: sp, Restarts: 4, Generations: 12, Neighbors: 5, Seed: 3}
	res, err := Search(cfg, newFakeEval(sp).eval)
	if err != nil {
		t.Fatal(err)
	}
	// Global max score: every index at its top value.
	want := 0.0
	for _, n := range sp.axes() {
		want += float64(n - 1)
	}
	if got := res.Best.Outcome.DeadlockFreq; got < want-1 {
		t.Fatalf("best sum %v, want >= %v (search failed to climb)", got, want-1)
	}
	if res.Evals == 0 || res.Proposed == 0 {
		t.Fatal("search did no work")
	}
}

// TestSearchMemoizes: a gene is never evaluated twice, however often the
// mutation stream revisits it.
func TestSearchMemoizes(t *testing.T) {
	sp := smallSpace()
	f := newFakeEval(sp)
	if _, err := Search(Config{Space: sp, Restarts: 4, Generations: 10, Neighbors: 6, Seed: 5}, f.eval); err != nil {
		t.Fatal(err)
	}
	for k, n := range f.calls {
		if n != 1 {
			t.Fatalf("gene %s evaluated %d times", k, n)
		}
	}
}

// TestSearchBudget: MaxEvals is a hard cap on unique evaluations.
func TestSearchBudget(t *testing.T) {
	sp := smallSpace()
	f := newFakeEval(sp)
	res, err := Search(Config{Space: sp, Restarts: 4, Generations: 20, Neighbors: 6, MaxEvals: 15, Seed: 5}, f.eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 15 {
		t.Fatalf("evaluated %d genes, budget 15", res.Evals)
	}
	if len(f.calls) != res.Evals {
		t.Fatalf("call count %d != reported evals %d", len(f.calls), res.Evals)
	}
}

// TestSearchTableSortedAndBounded: the SLO table is score-descending and
// at most TopK long.
func TestSearchTableSortedAndBounded(t *testing.T) {
	sp := smallSpace()
	res, err := Search(Config{Space: sp, Restarts: 4, Generations: 10, Neighbors: 5, TopK: 5, Seed: 7}, newFakeEval(sp).eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table) > 5 {
		t.Fatalf("table has %d rows, TopK 5", len(res.Table))
	}
	for i := 1; i < len(res.Table); i++ {
		if res.Table[i].Outcome.Score() > res.Table[i-1].Outcome.Score() {
			t.Fatalf("table not sorted at row %d", i)
		}
	}
	if res.Best != res.Table[0] {
		t.Fatal("Best is not the table head")
	}
}

// TestWedgedDominates: a wedged outcome outranks any non-wedged one.
func TestWedgedDominates(t *testing.T) {
	wedged := Outcome{Wedged: true}
	busy := Outcome{DeadlockFreq: 50, RecoveryP99: 4000, AvgLatency: 10000}
	if wedged.Score() <= busy.Score() {
		t.Fatalf("wedged score %v not above busy score %v", wedged.Score(), busy.Score())
	}
}

// TestGeneKeyRoundTrip: Key/parseKey are inverse.
func TestGeneKeyRoundTrip(t *testing.T) {
	g := Gene{Kind: 1, Faults: 3, Topo: 2, Pattern: 1, Traffic: 2, Rate: 3, Loss: 1, Jitter: 2, Reorder: 1, Dup: 2}
	back, err := parseKey(g.Key())
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Fatalf("round trip %+v -> %q -> %+v", g, g.Key(), back)
	}
}
