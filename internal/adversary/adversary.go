// Package adversary searches for worst-case operating points of the
// Static Bubble recovery protocol: combinations of topology faults,
// traffic pattern/process, offered load, and control-plane perturbation
// knobs that maximize deadlock frequency and recovery-latency tails.
//
// The search is a batched hill climb with random restarts over a
// quantized gene space. It is deliberately evaluator-agnostic: Search
// takes a batch evaluation callback, and internal/experiments supplies
// the real simulator-backed evaluator (running each batch on the sweep
// engine, so evaluations parallelize and cache like any other sweep
// cell). Everything is deterministic for a fixed Config.Seed as long as
// the evaluator itself is deterministic per gene.
package adversary

import (
	"fmt"
	"sort"
	"strings"
)

// Space quantizes the search dimensions. A Gene indexes into these
// slices, which keeps mutation trivial (±1 on one axis), makes genes
// canonically comparable for memoization, and bounds the search to
// physically meaningful settings.
type Space struct {
	// FaultKinds and FaultCounts select the topology damage; Topologies
	// is the number of sampled instances per (kind, count).
	FaultKinds  []string // "link", "router"
	FaultCounts []int
	Topologies  int
	// Patterns and Traffics name the spatial pattern and arrival process
	// ("bernoulli", "pareto", "tenants"); Rates is the offered load in
	// flits/node/cycle.
	Patterns []string
	Traffics []string
	Rates    []float64
	// Perturbation knob levels (probabilities; zero must be present so
	// the search can turn a knob off).
	Loss, Jitter, Reorder, Dup []float64
}

// DefaultSpace is the standard adversarial search space: the paper's
// fault range, all traffic patterns, Bernoulli vs self-similar arrivals,
// loads from light to past saturation, and perturbation probabilities
// from off to severe.
func DefaultSpace() Space {
	return Space{
		FaultKinds:  []string{"link", "router"},
		FaultCounts: []int{8, 18, 32, 48},
		Topologies:  4,
		Patterns:    []string{"uniform_random", "bit_complement", "transpose", "hotspot"},
		Traffics:    []string{"bernoulli", "pareto", "tenants"},
		Rates:       []float64{0.06, 0.12, 0.2, 0.32},
		Loss:        []float64{0, 0.05, 0.15, 0.3},
		Jitter:      []float64{0, 0.2, 0.5},
		Reorder:     []float64{0, 0.1, 0.3},
		Dup:         []float64{0, 0.1, 0.3},
	}
}

// axes returns the dimension sizes in Gene field order.
func (sp Space) axes() [10]int {
	return [10]int{
		len(sp.FaultKinds), len(sp.FaultCounts), sp.Topologies,
		len(sp.Patterns), len(sp.Traffics), len(sp.Rates),
		len(sp.Loss), len(sp.Jitter), len(sp.Reorder), len(sp.Dup),
	}
}

// Validate reports a configuration error, if any.
func (sp Space) Validate() error {
	for d, n := range sp.axes() {
		if n <= 0 {
			return fmt.Errorf("adversary: space dimension %d is empty", d)
		}
	}
	return nil
}

// Gene is one point of the space: an index per dimension.
type Gene struct {
	Kind, Faults, Topo         int
	Pattern, Traffic, Rate     int
	Loss, Jitter, Reorder, Dup int
}

// fields gives mutation and canonicalization a uniform view.
func (g *Gene) fields() [10]*int {
	return [10]*int{
		&g.Kind, &g.Faults, &g.Topo, &g.Pattern, &g.Traffic, &g.Rate,
		&g.Loss, &g.Jitter, &g.Reorder, &g.Dup,
	}
}

// Key is the canonical memoization identity of a gene.
func (g Gene) Key() string {
	f := g.fields()
	parts := make([]string, len(f))
	for i, p := range f {
		parts[i] = fmt.Sprintf("%d", *p)
	}
	return strings.Join(parts, ".")
}

// Describe renders a gene in the space's own vocabulary.
func (sp Space) Describe(g Gene) string {
	return fmt.Sprintf("%s/%d#%d %s %s@%.2f loss=%.2f jit=%.2f reord=%.2f dup=%.2f",
		sp.FaultKinds[g.Kind], sp.FaultCounts[g.Faults], g.Topo,
		sp.Patterns[g.Pattern], sp.Traffics[g.Traffic], sp.Rates[g.Rate],
		sp.Loss[g.Loss], sp.Jitter[g.Jitter], sp.Reorder[g.Reorder], sp.Dup[g.Dup])
}

// rng is the search's private deterministic stream (splitmix64), so the
// search never depends on global randomness.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// random draws a uniform gene.
func (sp Space) random(r *rng) Gene {
	var g Gene
	for i, p := range g.fields() {
		*p = r.intn(sp.axes()[i])
	}
	return g
}

// mutate perturbs one dimension of g: usually a ±1 step (local search),
// sometimes a uniform redraw of that dimension (escape hatch).
func (sp Space) mutate(g Gene, r *rng) Gene {
	axes := sp.axes()
	d := r.intn(len(axes))
	p := g.fields()[d]
	switch {
	case axes[d] == 1:
		// Degenerate axis: nothing to move; fall through to another call
		// site is pointless, just return unchanged — the dedup layer will
		// discard it.
	case r.intn(4) == 0:
		*p = r.intn(axes[d])
	case r.intn(2) == 0:
		*p = (*p + 1) % axes[d]
	default:
		*p = (*p + axes[d] - 1) % axes[d]
	}
	return g
}

// Outcome is the evaluator's measurement of one gene. All fields are
// maximization targets except Delivered (context only).
type Outcome struct {
	// Recoveries is the completed SB recovery count; DeadlockFreq is
	// recoveries per 1000 simulated cycles.
	Recoveries   int64
	DeadlockFreq float64
	// RecoveryP50/P99 are percentiles of recovery duration (cycles,
	// disable send through enable return).
	RecoveryP50, RecoveryP99 float64
	// AvgLatency is the mean delivered-packet latency in the measurement
	// window; Delivered its packet count.
	AvgLatency float64
	Delivered  int64
	// Wedged reports that the drain phase made no progress: packets
	// remained in flight with no deliveries — the protocol failed to
	// clear the network (the worst possible outcome).
	Wedged bool
}

// Score collapses an outcome into the scalar the search maximizes:
// deadlock frequency dominates, the p99 recovery tail comes next, mean
// latency breaks ties, and a wedged network beats everything — a
// liveness failure is categorically worse than any slow recovery.
func (o Outcome) Score() float64 {
	s := 100*o.DeadlockFreq + o.RecoveryP99 + o.AvgLatency/100
	if o.Wedged {
		s += 1e6
	}
	return s
}

// Entry pairs a gene with its measured outcome in the final SLO table.
type Entry struct {
	Gene    Gene
	Outcome Outcome
}

// Config bounds the search.
type Config struct {
	Space Space
	// Restarts is the number of parallel hill-climb lineages;
	// Generations the number of batched steps. Neighbors is the number
	// of mutations proposed per lineage per generation.
	Restarts, Generations, Neighbors int
	// MaxEvals caps total unique gene evaluations (0 = unlimited).
	MaxEvals int
	// Stagnation is the number of generations a lineage may go without
	// improvement before it restarts from a fresh random gene.
	Stagnation int
	// TopK is the SLO table size.
	TopK int
	// Seed drives every stochastic choice of the search.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	if c.Generations == 0 {
		c.Generations = 8
	}
	if c.Neighbors == 0 {
		c.Neighbors = 3
	}
	if c.Stagnation == 0 {
		c.Stagnation = 3
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	return c
}

// Result is the search outcome: the worst-case table (sorted by
// descending score), the best single entry, and evaluation accounting.
type Result struct {
	Table []Entry
	Best  Entry
	// Evals is the number of unique genes evaluated; Proposed the number
	// of mutations generated (duplicates were served from the memo).
	Evals, Proposed int
}

// Search runs the batched hill climb. eval must return one Outcome per
// gene, in order; it is called once per generation with all genes that
// are not already memoized (possibly empty batches are skipped). For a
// fixed cfg and a deterministic eval, Search is deterministic.
func Search(cfg Config, eval func(genes []Gene) []Outcome) (Result, error) {
	cfg = cfg.withDefaults()
	sp := cfg.Space
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	r := &rng{s: uint64(cfg.Seed)*2654435761 + 1}
	memo := map[string]Outcome{}
	var res Result

	evalAll := func(genes []Gene) error {
		var fresh []Gene
		seen := map[string]bool{}
		for _, g := range genes {
			k := g.Key()
			if _, ok := memo[k]; ok || seen[k] {
				continue
			}
			if cfg.MaxEvals > 0 && res.Evals+len(fresh) >= cfg.MaxEvals {
				break
			}
			seen[k] = true
			fresh = append(fresh, g)
		}
		if len(fresh) == 0 {
			return nil
		}
		outs := eval(fresh)
		if len(outs) != len(fresh) {
			return fmt.Errorf("adversary: evaluator returned %d outcomes for %d genes", len(outs), len(fresh))
		}
		for i, g := range fresh {
			memo[g.Key()] = outs[i]
		}
		res.Evals += len(fresh)
		return nil
	}

	// Lineage state: current gene, its score, and stagnation count.
	cur := make([]Gene, cfg.Restarts)
	stag := make([]int, cfg.Restarts)
	for i := range cur {
		cur[i] = sp.random(r)
	}
	if err := evalAll(cur); err != nil {
		return res, err
	}

	budgetLeft := func() bool { return cfg.MaxEvals <= 0 || res.Evals < cfg.MaxEvals }

	for gen := 0; gen < cfg.Generations && budgetLeft(); gen++ {
		// Propose all lineages' neighborhoods, then evaluate the union in
		// one batch (one sweep.Run downstream — full parallelism).
		props := make([][]Gene, cfg.Restarts)
		var batch []Gene
		for li := range cur {
			for n := 0; n < cfg.Neighbors; n++ {
				g := sp.mutate(cur[li], r)
				props[li] = append(props[li], g)
				batch = append(batch, g)
				res.Proposed++
			}
		}
		if err := evalAll(batch); err != nil {
			return res, err
		}
		for li := range cur {
			curScore, ok := memo[cur[li].Key()]
			best, bestScore := cur[li], -1.0
			if ok {
				bestScore = curScore.Score()
			}
			improved := false
			for _, g := range props[li] {
				o, ok := memo[g.Key()]
				if !ok {
					continue // budget-clipped
				}
				if s := o.Score(); s > bestScore {
					best, bestScore, improved = g, s, true
				}
			}
			if improved {
				cur[li], stag[li] = best, 0
				continue
			}
			stag[li]++
			if stag[li] >= cfg.Stagnation {
				// Local optimum: restart this lineage somewhere fresh.
				cur[li], stag[li] = sp.random(r), 0
				if budgetLeft() {
					if err := evalAll([]Gene{cur[li]}); err != nil {
						return res, err
					}
				}
			}
		}
	}

	// Rank everything ever evaluated; deterministic order (score desc,
	// then key) so ties never depend on map iteration.
	all := make([]Entry, 0, len(memo))
	for k, o := range memo {
		g, err := parseKey(k)
		if err != nil {
			return res, err
		}
		all = append(all, Entry{Gene: g, Outcome: o})
	}
	sort.Slice(all, func(i, j int) bool {
		si, sj := all[i].Outcome.Score(), all[j].Outcome.Score()
		if si != sj {
			return si > sj
		}
		return all[i].Gene.Key() < all[j].Gene.Key()
	})
	if len(all) > cfg.TopK {
		all = all[:cfg.TopK]
	}
	res.Table = all
	if len(all) > 0 {
		res.Best = all[0]
	}
	return res, nil
}

// parseKey inverts Gene.Key.
func parseKey(k string) (Gene, error) {
	var g Gene
	f := g.fields()
	parts := strings.Split(k, ".")
	if len(parts) != len(f) {
		return g, fmt.Errorf("adversary: malformed gene key %q", k)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", f[i]); err != nil {
			return g, fmt.Errorf("adversary: malformed gene key %q: %v", k, err)
		}
	}
	return g, nil
}
