package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func mkLiveSim(t *testing.T, seed int64) (*network.Sim, *Manager) {
	t.Helper()
	topo := topology.NewMesh(6, 6)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
	core.Attach(s, core.Options{})
	return s, New(s)
}

// drive injects uniform traffic through the manager's route computation
// for the given cycles.
func drive(s *network.Sim, m *Manager, rng *rand.Rand, cycles int, rate float64) {
	alive := s.Topo.AliveRouters()
	for c := 0; c < cycles; c++ {
		for _, src := range alive {
			if !s.Topo.RouterAlive(src) || rng.Float64() >= rate {
				continue
			}
			dst := alive[rng.Intn(len(alive))]
			if dst == src {
				continue
			}
			if r, ok := m.Route(src, dst); ok {
				s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 5, r))
			} else {
				s.Drop()
			}
		}
		s.Step()
		m.TryCompleteGates()
	}
}

func conserve(t *testing.T, s *network.Sim) {
	t.Helper()
	total := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost
	if total != s.Stats.Offered {
		t.Fatalf("conservation violated: %d accounted vs %d offered (lost %d)",
			total, s.Stats.Offered, s.Stats.Lost)
	}
}

func TestGracefulGateDrainsFirst(t *testing.T) {
	s, m := mkLiveSim(t, 1)
	rng := rand.New(rand.NewSource(2))
	drive(s, m, rng, 500, 0.05)
	victim := s.Topo.ID(geom.Coord{X: 3, Y: 3})
	if err := m.RequestGate(victim); err != nil {
		t.Fatal(err)
	}
	// Keep traffic flowing; the gate must complete without killing any
	// packet.
	lostBefore := s.Stats.Lost
	for i := 0; i < 4000 && m.PendingGates() > 0; i++ {
		drive(s, m, rng, 1, 0.05)
	}
	if m.PendingGates() != 0 {
		t.Fatal("gate never completed")
	}
	if s.Topo.RouterAlive(victim) {
		t.Fatal("victim still alive after gating")
	}
	if s.Stats.Lost != lostBefore {
		t.Fatal("graceful gating must not lose packets")
	}
	// Traffic continues on the irregular topology; drain fully.
	drive(s, m, rng, 500, 0.05)
	for i := 0; i < 30000 && s.InFlight()+s.QueuedPackets() > 0; i += 50 {
		s.Run(50)
	}
	conserve(t, s)
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatal("network did not drain after gating")
	}
}

func TestGateRejectsDeadRouter(t *testing.T) {
	s, m := mkLiveSim(t, 3)
	victim := geom.NodeID(7)
	s.Topo.DisableRouter(victim)
	if err := m.RequestGate(victim); err == nil {
		t.Fatal("gating a dead router should error")
	}
}

func TestUngateRestores(t *testing.T) {
	s, m := mkLiveSim(t, 4)
	victim := s.Topo.ID(geom.Coord{X: 2, Y: 2})
	if err := m.RequestGate(victim); err != nil {
		t.Fatal(err)
	}
	m.TryCompleteGates() // idle network: gates immediately
	if s.Topo.RouterAlive(victim) {
		t.Fatal("gate should complete on an idle network")
	}
	m.Ungate(victim)
	if !s.Topo.RouterAlive(victim) {
		t.Fatal("ungate failed")
	}
	if _, ok := m.Route(victim, 0); !ok {
		t.Fatal("routes through the restored router should exist")
	}
}

func TestRouteAvoidsPendingGates(t *testing.T) {
	s, m := mkLiveSim(t, 5)
	// Gate the whole middle column except one node: routes from west to
	// east must avoid pending routers.
	var gated []geom.NodeID
	for y := 0; y < 5; y++ {
		n := s.Topo.ID(geom.Coord{X: 3, Y: y})
		if err := m.RequestGate(n); err != nil {
			t.Fatal(err)
		}
		gated = append(gated, n)
	}
	src := s.Topo.ID(geom.Coord{X: 0, Y: 2})
	dst := s.Topo.ID(geom.Coord{X: 5, Y: 2})
	r, ok := m.Route(src, dst)
	if !ok {
		t.Fatal("a detour through (3,5) must exist")
	}
	cur := src
	for _, d := range r {
		cur = s.Topo.Neighbor(cur, d)
		for _, g := range gated {
			if cur == g {
				t.Fatalf("route %v passes pending-gate router %v", r, g)
			}
		}
	}
}

func TestFailLinkReroutesInFlight(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(6)))
	m := New(s)
	// A packet headed 0→3 along the line; kill link 2-3 while it is in
	// flight. It must be rerouted... no detour exists on a line, so it is
	// dropped. Use a 4x2 mesh instead for a detour.
	topo2 := topology.NewMesh(4, 2)
	s2 := network.New(topo2, network.Config{}, rand.New(rand.NewSource(6)))
	m2 := New(s2)
	r, _ := m2.Route(0, 3)
	p := s2.NewPacket(0, 3, 0, 5, r)
	s2.Enqueue(p)
	s2.Run(4) // in flight now
	m2.FailLink(2, geom.East)
	s2.Run(60)
	if p.DeliveredAt < 0 {
		t.Fatalf("packet should be rerouted around the dead link (rerouted=%d)", m2.Rerouted)
	}
	conserve(t, s2)
	_ = m
	_ = s
}

func TestFailLinkDropsWhenDisconnected(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	m := New(s)
	r, _ := m.Route(0, 3)
	p := s.NewPacket(0, 3, 0, 5, r)
	s.Enqueue(p)
	s.Run(4)
	m.FailLink(2, geom.East) // no detour on a line
	if m.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", m.Dropped)
	}
	conserve(t, s)
	if s.InFlight() != 0 {
		t.Fatal("dropped packet still counted in flight")
	}
}

func TestFailRouterLosesResidentTraffic(t *testing.T) {
	topo := topology.NewMesh(3, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(8)))
	m := New(s)
	r, _ := m.Route(0, 2)
	p := s.NewPacket(0, 2, 0, 5, r)
	s.Enqueue(p)
	s.Run(2) // p now buffered at router 1 (granted at cycle 1, leaves at 3)
	if s.Routers[1].Occupied() == 0 {
		t.Fatal("test setup: packet should be at router 1")
	}
	m.FailRouter(1)
	if m.Dropped == 0 {
		t.Fatal("resident packet must be lost with the router")
	}
	conserve(t, s)
	if s.Topo.RouterAlive(1) {
		t.Fatal("router should be dead")
	}
}

func TestFailLinkReroutesQueuedPackets(t *testing.T) {
	topo := topology.NewMesh(4, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(9)))
	m := New(s)
	// Queue many packets 0→3 (the NI will inject them slowly).
	var pkts []*network.Packet
	for i := 0; i < 30; i++ {
		r, _ := m.Route(0, 3)
		p := s.NewPacket(0, 3, 0, 5, r)
		s.Enqueue(p)
		pkts = append(pkts, p)
	}
	m.FailLink(1, geom.East) // many queued routes crossed it
	if m.Rerouted == 0 {
		t.Fatal("queued packets should have been rerouted")
	}
	s.Run(1500)
	for i, p := range pkts {
		if p.DeliveredAt < 0 {
			t.Fatalf("packet %d not delivered after reroute", i)
		}
	}
	conserve(t, s)
}

func TestReconfigUnderLiveTrafficWithRecovery(t *testing.T) {
	// Soak: gates and failures interleaved with live traffic and SB
	// recovery; conservation and drain must hold throughout.
	s, m := mkLiveSim(t, 10)
	rng := rand.New(rand.NewSource(11))
	drive(s, m, rng, 400, 0.08)
	m.FailLink(s.Topo.ID(geom.Coord{X: 2, Y: 2}), geom.East)
	drive(s, m, rng, 400, 0.08)
	if err := m.RequestGate(s.Topo.ID(geom.Coord{X: 4, Y: 4})); err != nil {
		t.Fatal(err)
	}
	drive(s, m, rng, 800, 0.08)
	m.FailRouter(s.Topo.ID(geom.Coord{X: 1, Y: 4}))
	drive(s, m, rng, 400, 0.08)
	conserve(t, s)
	// Drain.
	for i := 0; i < 60000 && s.InFlight()+s.QueuedPackets() > 0; i += 50 {
		s.Run(50)
		m.TryCompleteGates()
	}
	if s.InFlight()+s.QueuedPackets() != 0 {
		t.Fatalf("drain incomplete: %d in flight, %d queued", s.InFlight(), s.QueuedPackets())
	}
	conserve(t, s)
	if !core.VerifyCoverage(s.Topo) {
		t.Fatal("coverage must hold on the post-reconfiguration topology")
	}
}

func TestManagerWorksWithTrafficInjector(t *testing.T) {
	// The manager coexists with the traffic package when routes come from
	// the manager-owned tables.
	s, m := mkLiveSim(t, 12)
	alive := s.Topo.AliveRouters()
	inj := traffic.NewInjector(alive, m.Algorithm(), traffic.NewUniformRandom(alive), 0.05,
		rand.New(rand.NewSource(13)))
	for c := 0; c < 1000; c++ {
		inj.Tick(s)
		s.Step()
	}
	if s.Stats.Delivered == 0 {
		t.Fatal("no traffic flowed")
	}
}
