package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
)

// TestSubmitOutcomeMatrix pins the overlap rules: events are idempotent
// (failing a dead element and recovering an alive one are noops), gates
// report pending, and only real topology changes report applied.
func TestSubmitOutcomeMatrix(t *testing.T) {
	_, m := mkLiveSim(t, 1)
	n := geom.NodeID(14)
	l := geom.NodeID(20)

	if o, err := m.Submit(Event{Kind: EvFailRouter, Node: n}); o != OutApplied || err != nil {
		t.Fatalf("first fail: %v, %v", o, err)
	}
	if o, _ := m.Submit(Event{Kind: EvFailRouter, Node: n}); o != OutNoop {
		t.Fatalf("fail of dead router must be noop, got %v", o)
	}
	if _, err := m.Submit(Event{Kind: EvGate, Node: n}); err == nil {
		t.Fatal("gating a dead router must error")
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverRouter, Node: n}); o != OutApplied {
		t.Fatalf("recover of dead router must apply, got %v", o)
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverRouter, Node: n}); o != OutNoop {
		t.Fatalf("recover of alive router must be noop, got %v", o)
	}

	if o, _ := m.Submit(Event{Kind: EvFailLink, Node: l, Dir: geom.East}); o != OutApplied {
		t.Fatalf("first link fail must apply, got %v", o)
	}
	if o, _ := m.Submit(Event{Kind: EvFailLink, Node: l, Dir: geom.East}); o != OutNoop {
		t.Fatalf("re-failing a dead link must be noop, got %v", o)
	}
	// The same wire named from the other endpoint is also already dead.
	nb := m.topo.Neighbor(l, geom.East)
	if o, _ := m.Submit(Event{Kind: EvFailLink, Node: nb, Dir: geom.West}); o != OutNoop {
		t.Fatalf("failing the mirror direction of a dead link must be noop, got %v", o)
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverLink, Node: nb, Dir: geom.West}); o != OutApplied {
		t.Fatalf("link recovery must apply, got %v", o)
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverLink, Node: l, Dir: geom.East}); o != OutNoop {
		t.Fatalf("recovering an intact link must be noop, got %v", o)
	}

	if o, err := m.Submit(Event{Kind: EvGate, Node: n}); o != OutPending || err != nil {
		t.Fatalf("gate of idle alive router: %v, %v", o, err)
	}
	if o, _ := m.Submit(Event{Kind: EvGate, Node: n}); o != OutPending {
		t.Fatalf("repeated gate request must stay pending, got %v", o)
	}
}

// TestRecoverRevokesPendingGate: a recover submitted while the router is
// still draining revokes the gate — the router never powers off, the
// topology is unchanged, and the epoch does not advance.
func TestRecoverRevokesPendingGate(t *testing.T) {
	s, m := mkLiveSim(t, 2)
	n := geom.NodeID(21)
	before := m.Epoch()
	if o, _ := m.Submit(Event{Kind: EvGate, Node: n}); o != OutPending {
		t.Fatalf("gate: %v", o)
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverRouter, Node: n}); o != OutRevoked {
		t.Fatalf("recover of draining router must revoke, got %v", o)
	}
	if m.PendingGates() != 0 {
		t.Fatalf("gate still pending after revocation")
	}
	if m.Epoch() != before {
		t.Fatalf("revocation must not advance the epoch: %d -> %d", before, m.Epoch())
	}
	if !s.Topo.RouterAlive(n) {
		t.Fatal("revoked router must still be alive")
	}
	// Nothing left to complete.
	if gated := m.TryCompleteGates(); len(gated) != 0 {
		t.Fatalf("revoked gate completed anyway: %v", gated)
	}
}

// TestFailOverridesGateDrain: an abrupt fail during a graceful drain
// wins — the router dies immediately, and the stale gate must not
// power it off (or anything else) a second time.
func TestFailOverridesGateDrain(t *testing.T) {
	s, m := mkLiveSim(t, 3)
	n := geom.NodeID(15)
	if o, _ := m.Submit(Event{Kind: EvGate, Node: n}); o != OutPending {
		t.Fatalf("gate: %v", o)
	}
	e0 := m.Epoch()
	if o, _ := m.Submit(Event{Kind: EvFailRouter, Node: n}); o != OutApplied {
		t.Fatalf("fail during drain must apply, got %v", o)
	}
	if m.PendingGates() != 0 {
		t.Fatal("pending gate survived the abrupt fail")
	}
	if m.Epoch() != e0+1 {
		t.Fatalf("abrupt fail must advance the epoch once: %d -> %d", e0, m.Epoch())
	}
	if gated := m.TryCompleteGates(); len(gated) != 0 {
		t.Fatalf("dead router gated again: %v", gated)
	}
	if s.Topo.RouterAlive(n) {
		t.Fatal("router should be dead")
	}
	if o, _ := m.Submit(Event{Kind: EvRecoverRouter, Node: n}); o != OutApplied {
		t.Fatalf("recover after overridden drain must apply, got %v", o)
	}
}

// TestEpochAdvancesOnlyOnTopologyChange: noops, revocations, and pending
// gates leave the epoch alone; applied events advance it by exactly one;
// a gate-completion batch advances it once regardless of batch size.
func TestEpochAdvancesOnlyOnTopologyChange(t *testing.T) {
	_, m := mkLiveSim(t, 4)
	e := m.Epoch()
	m.Submit(Event{Kind: EvRecoverRouter, Node: 5}) // noop: alive
	m.Submit(Event{Kind: EvRecoverLink, Node: 5, Dir: geom.East})
	if m.Epoch() != e {
		t.Fatalf("noops advanced the epoch")
	}
	m.Submit(Event{Kind: EvGate, Node: 8})
	m.Submit(Event{Kind: EvGate, Node: 27})
	if m.Epoch() != e {
		t.Fatalf("pending gates advanced the epoch before powering off")
	}
	// Idle mesh: both gates complete in one batch.
	if gated := m.TryCompleteGates(); len(gated) != 2 {
		t.Fatalf("expected both gates to complete, got %v", gated)
	}
	if m.Epoch() != e+1 {
		t.Fatalf("gate batch must advance the epoch exactly once: %d -> %d", e, m.Epoch())
	}
	m.Submit(Event{Kind: EvFailLink, Node: 14, Dir: geom.North})
	if m.Epoch() != e+2 {
		t.Fatalf("applied link fail must advance the epoch by one")
	}
}

// TestSubmitAtOrdering: the scheduled queue fires in (cycle,
// submission-order) — a later-submitted event for an earlier cycle runs
// first, and two events due the same cycle run in submission order (here
// fail-then-recover nets out to an alive router; the reverse order would
// leave it dead).
func TestSubmitAtOrdering(t *testing.T) {
	s, m := mkLiveSim(t, 5)
	n := geom.NodeID(9)
	other := geom.NodeID(26)

	m.SubmitAt(30, Event{Kind: EvFailRouter, Node: n})
	m.SubmitAt(30, Event{Kind: EvRecoverRouter, Node: n})
	m.SubmitAt(10, Event{Kind: EvFailRouter, Node: other})
	if m.PendingEvents() != 3 {
		t.Fatalf("queue should hold 3 events, got %d", m.PendingEvents())
	}
	for s.Now < 20 {
		s.Step()
		m.Tick()
	}
	if s.Topo.RouterAlive(other) {
		t.Fatal("cycle-10 fail should have fired by cycle 20")
	}
	if m.PendingEvents() != 2 {
		t.Fatalf("cycle-30 events fired early (pending=%d)", m.PendingEvents())
	}
	for s.Now < 40 {
		s.Step()
		m.Tick()
	}
	if m.PendingEvents() != 0 {
		t.Fatalf("queue not drained: %d", m.PendingEvents())
	}
	if !s.Topo.RouterAlive(n) {
		t.Fatal("same-cycle fail+recover must net out alive (submission order)")
	}
}

// TestScheduledGateOnDeadRouterDegrades: a queued gate whose target died
// before it came due degrades to a noop instead of erroring or wedging
// the queue.
func TestScheduledGateOnDeadRouterDegrades(t *testing.T) {
	s, m := mkLiveSim(t, 6)
	n := geom.NodeID(22)
	m.SubmitAt(50, Event{Kind: EvGate, Node: n})
	if o, _ := m.Submit(Event{Kind: EvFailRouter, Node: n}); o != OutApplied {
		t.Fatal("fail should apply")
	}
	for s.Now < 60 {
		s.Step()
		m.Tick()
	}
	if m.PendingEvents() != 0 || m.PendingGates() != 0 {
		t.Fatalf("stale gate wedged the queue: events=%d gates=%d",
			m.PendingEvents(), m.PendingGates())
	}
	if s.Topo.RouterAlive(n) {
		t.Fatal("router should still be dead")
	}
}

// TestTableCacheReusesFingerprints: flapping one link back and forth
// revisits two topology fingerprints; the per-manager LRU must serve the
// revisits from cache (same *Minimal), not recompile.
func TestTableCacheReusesFingerprints(t *testing.T) {
	_, m := mkLiveSim(t, 7)
	base := m.minimal
	m.Submit(Event{Kind: EvFailLink, Node: 14, Dir: geom.East})
	failed := m.minimal
	if failed == base {
		t.Fatal("table must change when the topology does")
	}
	m.Submit(Event{Kind: EvRecoverLink, Node: 14, Dir: geom.East})
	if m.minimal != base {
		t.Fatal("recovering to a seen fingerprint must reuse the cached table")
	}
	m.Submit(Event{Kind: EvFailLink, Node: 14, Dir: geom.East})
	if m.minimal != failed {
		t.Fatal("re-failing to a seen fingerprint must reuse the cached table")
	}
}

// TestRepairAvoidsPendingGates: in-flight traffic rerouted after a link
// fail must not be detoured through a router that is draining toward
// power-off — the one-shot detour would be invalidated moments later.
func TestRepairAvoidsPendingGates(t *testing.T) {
	s, m := mkLiveSim(t, 8)
	rng := rand.New(rand.NewSource(80))
	drive(s, m, rng, 200, 0.08)
	conserve(t, s)

	// Gate a central router, then immediately fail a link next to it so
	// repairTraffic has to route around both holes at once.
	gate := geom.NodeID(14)
	if o, _ := m.Submit(Event{Kind: EvGate, Node: gate}); o != OutPending {
		t.Fatal("gate should be pending")
	}
	repaired := make(map[int64]bool)
	m.OnRepair = func(p *network.Packet, dropped bool) {
		if !dropped {
			repaired[p.ID] = true
		}
	}
	m.Submit(Event{Kind: EvFailLink, Node: 13, Dir: geom.North})
	m.OnRepair = nil
	conserve(t, s)

	// Pre-gate packets may legitimately still route through the draining
	// router — the drain waits for exactly those. But a packet the link
	// fail just REROUTED must not be detoured into the pending gate: that
	// one-shot detour would be invalidated when the gate completes.
	m.forEachInFlight(func(p *network.Packet, at geom.NodeID) {
		if !repaired[p.ID] {
			return
		}
		cur := at
		for i, d := range p.Route[p.Hop:] {
			cur = m.topo.Neighbor(cur, d)
			if cur == geom.InvalidNode {
				t.Fatalf("packet %d has a malformed remaining route", p.ID)
			}
			if cur == gate && i != len(p.Route[p.Hop:])-1 {
				t.Fatalf("repaired packet %d detoured through the draining router %v", p.ID, gate)
			}
		}
	})
	// Drain to completion: the gate must still complete despite overlap.
	for i := 0; i < 4000 && m.PendingGates() > 0; i++ {
		s.Step()
		m.Tick()
	}
	if m.PendingGates() != 0 {
		t.Fatal("gate never completed under overlapping repair")
	}
	conserve(t, s)
}
