// Package reconfig coordinates safe runtime topology changes over a live
// simulation — the operations the paper's motivating domains perform:
// power-gating routers (NoRD, Router Parking, Panthre) and surviving
// link/router failures (Ariadne, uDIREC). Static Bubble guarantees the
// *resulting* topology is deadlock-free; this package handles the
// transition itself:
//
//   - Gating a router is graceful: new routes avoid it, traffic transiting
//     it drains, and only then does it power off.
//   - A failure is abrupt: packets whose remaining route crosses the dead
//     component are rerouted in place from their current position, or
//     dropped if their destination became unreachable (the paper's
//     methodology drops such packets).
//   - A recovery re-enables the element, refreshes routing, and wakes the
//     routers that can use it again.
//
// The manager is overlap-safe: events arrive as a stream (Submit /
// SubmitAt + Tick) and any interleaving is legal, including events that
// touch the same router. A failure overrides a gate drain in progress on
// the same router; a recovery of a draining router revokes the drain
// (the router never powered off, so nothing rebuilds); repeated fails
// and recovers are idempotent no-ops. Every applied mutation advances
// the reconfiguration epoch (Epoch), the validity domain for compiled
// tables and one-shot detour routes.
//
// After every change the manager rebuilds its minimal-routing tables
// (through a bounded fingerprint-keyed cache, since churn revisits
// topologies), so newly injected packets always use the current
// topology.
package reconfig

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Manager wraps a simulator and its topology with safe mutation
// operations. Create with New; use Route for route computation so that
// pending gates are respected.
type Manager struct {
	sim  *network.Sim
	topo *topology.Topology
	// minimal is rebuilt whenever the topology changes.
	minimal *routing.Minimal
	// tables caches compiled minimal tables by topology fingerprint so a
	// flapping element doesn't recompile all-pairs routing twice.
	tables *tableCache
	// tabStats counts cache and compiler activity; see TableStats.
	tabStats TableStats
	// pendingGate marks routers that must not receive new routes but are
	// still draining.
	pendingGate map[geom.NodeID]bool
	// scheme, when set, is notified after each applied event so recovery
	// protocol state (FSMs, fences) tracks the topology. See SetScheme.
	scheme SchemeHandler
	// epoch counts applied topology mutations. See Epoch.
	epoch int64
	// queue holds scheduled events (SubmitAt) ordered by (at, seq).
	queue []scheduledEvent
	seq   int64
	// OnRepair, when non-nil, observes every packet the manager touches
	// while repairing traffic after a failure: rerouted packets
	// (dropped=false) and discarded ones (dropped=true, fired before the
	// packet is released — read fields only during the callback, as with
	// Sim.OnDeliver). Churn harnesses use it to attribute in-flight
	// damage to the event that caused it.
	OnRepair func(p *network.Packet, dropped bool)
	// Dropped counts packets discarded because a failure disconnected
	// their destination.
	Dropped int64
	// Rerouted counts packets whose route was recomputed in place.
	Rerouted int64
	// routeBuf is the reroute scratch: repairTraffic builds replacement
	// routes here and Sim.SetRoute copies them into the packet's arena
	// span, so repairs don't allocate per packet.
	routeBuf routing.Route
}

// New builds a manager over a live simulation.
func New(s *network.Sim) *Manager {
	m := &Manager{
		sim:         s,
		topo:        s.Topo,
		tables:      newTableCache(),
		pendingGate: make(map[geom.NodeID]bool),
	}
	m.rebuild()
	return m
}

// rebuild refreshes m.minimal for the topology's current state: a
// fingerprint-LRU hit returns the identical object compiled when this
// connectivity was last current (flap-backs are free); a miss runs the
// incremental recompiler against the outgoing tables, sharing every
// column the epoch's delta did not perturb, and falls back to the
// parallel cold compile on the first build or an oversized delta.
func (m *Manager) rebuild() {
	fp := m.topo.Fingerprint()
	if min, ok := m.tables.get(fp); ok {
		m.tabStats.Hits++
		m.minimal = min
		return
	}
	m.tabStats.Misses++
	t0 := time.Now()
	var st routing.RecompileStats
	if m.minimal != nil {
		m.minimal, st = m.minimal.Recompile(m.topo)
	} else {
		m.minimal = routing.NewMinimal(m.topo)
		st = routing.RecompileStats{Full: true, EntriesRewritten: m.minimal.TableEntries()}
	}
	m.tabStats.LastCompileNs = time.Since(t0).Nanoseconds()
	m.tabStats.CompileNs += m.tabStats.LastCompileNs
	if st.Full {
		m.tabStats.Full++
	} else {
		m.tabStats.Incremental++
	}
	m.tabStats.ColsShared += int64(st.ColsShared)
	m.tabStats.ColsRepaired += int64(st.ColsRepaired)
	m.tabStats.ColsRebuilt += int64(st.ColsRebuilt)
	m.tabStats.EntriesRewritten += st.EntriesRewritten
	if m.tables.put(fp, m.minimal) {
		m.tabStats.Evictions++
	}
}

// Route returns a minimal route from src to dst that avoids routers
// pending gating, or ok=false if none exists. Use this instead of a raw
// routing.Minimal while gating operations are in progress.
func (m *Manager) Route(src, dst geom.NodeID) (routing.Route, bool) {
	r, ok := m.minimal.Route(src, dst, m.sim.Rng)
	if !ok {
		return nil, false
	}
	if len(m.pendingGate) == 0 || !m.routeTouches(r, src, m.pendingGate) {
		return r, ok
	}
	// Recompute on a view that excludes pending-gate routers. One-shot:
	// a single reverse BFS for this dst instead of compiling all-pairs
	// tables for a throwaway view (identical rng draws and route).
	view := m.topo.Clone()
	for n := range m.pendingGate {
		view.DisableRouter(n)
	}
	return routing.AppendRouteOneShot(view, nil, src, dst, m.sim.Rng)
}

// routeTouches reports whether route r from src visits any node in set
// (intermediate or final).
func (m *Manager) routeTouches(r routing.Route, src geom.NodeID, set map[geom.NodeID]bool) bool {
	cur := src
	if set[cur] {
		return true
	}
	for _, d := range r {
		cur = m.topo.Neighbor(cur, d)
		if cur == geom.InvalidNode {
			return true // malformed: treat as touching
		}
		if set[cur] {
			return true
		}
	}
	return false
}

// RequestGate marks router n for power-gating: new routes from Route
// avoid it immediately. Call TryCompleteGates each cycle (or after Run
// batches) to power it off once drained.
func (m *Manager) RequestGate(n geom.NodeID) error {
	if !m.topo.RouterAlive(n) {
		return fmt.Errorf("reconfig: router %v is not alive", n)
	}
	m.pendingGate[n] = true
	return nil
}

// TryCompleteGates powers off every pending router that has fully
// drained: no packets buffered at it and no in-flight packet's remaining
// route crossing it. It returns the routers gated this call.
func (m *Manager) TryCompleteGates() []geom.NodeID {
	if len(m.pendingGate) == 0 {
		return nil
	}
	// Collect routers still referenced by in-flight traffic.
	busy := make(map[geom.NodeID]bool)
	for n := range m.pendingGate {
		if m.sim.Routers[n].Occupied() > 0 {
			busy[n] = true
		}
	}
	m.forEachInFlight(func(p *network.Packet, at geom.NodeID) {
		cur := at
		if m.pendingGate[cur] {
			busy[cur] = true
		}
		for _, d := range p.Route[p.Hop:] {
			cur = m.topo.Neighbor(cur, d)
			if cur == geom.InvalidNode {
				break
			}
			if m.pendingGate[cur] {
				busy[cur] = true
			}
		}
	})
	// NI queues also pin routers (their packets have committed routes).
	for id := range m.sim.NIQueue {
		for vnet := range m.sim.NIQueue[id] {
			q := &m.sim.NIQueue[id][vnet]
			for i := 0; i < q.Len(); i++ {
				p := q.At(i)
				cur := p.Src
				if m.pendingGate[cur] {
					busy[cur] = true
				}
				for _, d := range p.Route {
					cur = m.topo.Neighbor(cur, d)
					if cur == geom.InvalidNode {
						break
					}
					if m.pendingGate[cur] {
						busy[cur] = true
					}
				}
			}
		}
	}
	var gated []geom.NodeID
	for n := range m.pendingGate {
		if !busy[n] {
			gated = append(gated, n)
		}
	}
	sort.Slice(gated, func(i, j int) bool { return gated[i] < gated[j] })
	for _, n := range gated {
		delete(m.pendingGate, n)
		m.topo.DisableRouter(n)
	}
	if len(gated) > 0 {
		m.epoch++
		m.rebuild()
		if m.scheme != nil {
			// A power-off is a clean death from the scheme's perspective:
			// any protocol residue at the router must not survive into a
			// later recovery.
			for _, n := range gated {
				m.scheme.RouterFailed(n)
			}
		}
	}
	return gated
}

// PendingGates returns the routers still draining toward power-off.
func (m *Manager) PendingGates() int { return len(m.pendingGate) }

// Ungate revokes a pending gate or powers a gated router back on and
// refreshes routing. Equivalent to Submit(Event{Kind: EvUngate, Node: n}).
func (m *Manager) Ungate(n geom.NodeID) { m.recoverRouter(n) }

// FailLink kills the bidirectional link between n and its neighbor in
// direction d, then repairs all affected traffic: queued and in-flight
// packets whose remaining route crossed the link are rerouted from their
// current position, or dropped if their destination is now unreachable.
// Equivalent to Submit(Event{Kind: EvFailLink, Node: n, Dir: d}).
func (m *Manager) FailLink(n geom.NodeID, d geom.Direction) { m.failLink(n, d) }

// FailRouter kills router n abruptly; packets buffered at n are lost
// (counted as dropped), and other affected traffic is rerouted.
// Equivalent to Submit(Event{Kind: EvFailRouter, Node: n}).
func (m *Manager) FailRouter(n geom.NodeID) { m.failRouter(n) }

// failLink applies a link failure with idempotence: severing an
// already-severed wire is a no-op (no rebuild, no epoch bump).
func (m *Manager) failLink(n geom.NodeID, d geom.Direction) Outcome {
	nb := m.topo.Neighbor(n, d)
	if nb == geom.InvalidNode {
		return OutNoop
	}
	if !m.topo.LinkIntact(n, d) && !m.topo.LinkIntact(nb, d.Opposite()) {
		return OutNoop
	}
	m.topo.DisableLink(n, d)
	m.epoch++
	m.rebuild()
	if m.scheme != nil {
		m.scheme.LinkChanged(n, d, false)
	}
	m.repairTraffic()
	return OutApplied
}

// recoverLink restores the bidirectional link n→d. No traffic repair is
// needed — added capacity breaks no committed route — but both
// endpoints are woken so blocked heads re-arbitrate and queued
// injections resume.
func (m *Manager) recoverLink(n geom.NodeID, d geom.Direction) Outcome {
	nb := m.topo.Neighbor(n, d)
	if nb == geom.InvalidNode {
		return OutNoop
	}
	if m.topo.LinkIntact(n, d) && m.topo.LinkIntact(nb, d.Opposite()) {
		return OutNoop
	}
	m.topo.EnableLink(n, d)
	m.epoch++
	m.rebuild()
	if m.scheme != nil {
		m.scheme.LinkChanged(n, d, true)
	}
	m.sim.Wake(n)
	m.sim.Wake(nb)
	return OutApplied
}

// failRouter applies a router failure. Overlap rules: failing a dead
// router is a no-op; failing a router mid-gate-drain cancels the drain
// and kills it abruptly (resident packets lost) — the failure does not
// wait for the drain it just obsoleted.
func (m *Manager) failRouter(n geom.NodeID) Outcome {
	if !m.topo.RouterAlive(n) {
		return OutNoop
	}
	delete(m.pendingGate, n)
	// Discard the dead router's buffered packets.
	r := &m.sim.Routers[n]
	for _, port := range geom.AllPorts {
		for slot := range r.In[port] {
			if r.In[port][slot].Pkt != nil {
				m.discardVC(&r.In[port][slot], n, port)
			}
		}
	}
	if r.Bubble.VC.Pkt != nil {
		m.discardVC(&r.Bubble.VC, n, r.Bubble.InPort)
	}
	m.topo.DisableRouter(n)
	m.epoch++
	m.rebuild()
	if m.scheme != nil {
		m.scheme.RouterFailed(n)
	}
	m.repairTraffic()
	return OutApplied
}

// recoverRouter revives router n. Overlap rules: recovering a router
// that is still draining toward power-off revokes the drain — it never
// went down, so the topology, tables, and epoch are untouched and
// routes simply stop avoiding it. Recovering an alive router is a
// no-op; recovering a dead one re-enables it, refreshes routing, and
// wakes it and its neighbors (queued injections at the revived router
// resume, and blocked heads pointing at it re-arbitrate).
func (m *Manager) recoverRouter(n geom.NodeID) Outcome {
	if m.pendingGate[n] {
		delete(m.pendingGate, n)
		return OutRevoked
	}
	if m.topo.RouterAlive(n) {
		return OutNoop
	}
	m.topo.EnableRouter(n)
	m.epoch++
	m.rebuild()
	if m.scheme != nil {
		m.scheme.RouterRecovered(n)
	}
	m.sim.Wake(n)
	for _, d := range geom.LinkDirs {
		if nb := m.topo.Neighbor(n, d); nb != geom.InvalidNode && m.topo.RouterAlive(nb) {
			m.sim.Wake(nb)
		}
	}
	return OutApplied
}

// discardVC removes a packet from a VC with full accounting.
func (m *Manager) discardVC(vc *network.VC, at geom.NodeID, port geom.Direction) {
	if m.OnRepair != nil {
		m.OnRepair(vc.Pkt, true)
	}
	m.sim.RemovePacket(vc, at, port)
	m.Dropped++
}

// forEachInFlight visits every buffered packet with its current router.
func (m *Manager) forEachInFlight(fn func(p *network.Packet, at geom.NodeID)) {
	for id := range m.sim.Routers {
		r := &m.sim.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if p := r.In[port][slot].Pkt; p != nil {
					fn(p, geom.NodeID(id))
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil {
			fn(p, geom.NodeID(id))
		}
	}
}

// repairTraffic walks all live traffic and fixes routes broken by the
// last topology change.
//
// Overlap rule: while gates are draining, replacement routes must keep
// avoiding the pending routers, or a failure elsewhere would shove
// repaired traffic through a router that is trying to drain and
// livelock the gate under churn. A detour-avoiding route is preferred;
// if none exists the repair falls back to the full tables (delaying the
// gate beats dropping a deliverable packet), and only then drops.
func (m *Manager) repairTraffic() {
	var view *topology.Topology
	if len(m.pendingGate) > 0 {
		view = m.topo.Clone()
		for n := range m.pendingGate {
			view.DisableRouter(n)
		}
	}
	reroute := func(from, dst geom.NodeID) (routing.Route, bool) {
		if view != nil {
			if nr, ok := routing.AppendRouteOneShot(view, m.routeBuf[:0], from, dst, m.sim.Rng); ok {
				return nr, true
			}
		}
		return m.minimal.AppendRoute(m.routeBuf[:0], from, dst, m.sim.Rng)
	}
	// In-flight packets: reroute from the router they currently occupy.
	type fix struct {
		vc   *network.VC
		at   geom.NodeID
		port geom.Direction
	}
	var broken []fix
	for id := range m.sim.Routers {
		r := &m.sim.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				p := r.In[port][slot].Pkt
				if p != nil && !m.routeValidFrom(p, geom.NodeID(id)) {
					broken = append(broken, fix{&r.In[port][slot], geom.NodeID(id), port})
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil && !m.routeValidFrom(p, geom.NodeID(id)) {
			broken = append(broken, fix{&r.Bubble.VC, geom.NodeID(id), r.Bubble.InPort})
		}
	}
	for _, b := range broken {
		p := b.vc.Pkt
		if nr, ok := reroute(b.at, p.Dst); ok {
			m.setRoute(p, nr)
			m.Rerouted++
			if m.OnRepair != nil {
				m.OnRepair(p, false)
			}
		} else {
			m.discardVC(b.vc, b.at, b.port)
		}
	}
	// Queued packets: reroute from their source.
	for id := range m.sim.NIQueue {
		src := geom.NodeID(id)
		for vnet := range m.sim.NIQueue[id] {
			m.sim.NIQueue[id][vnet].Filter(func(p *network.Packet) bool {
				if m.routeValidFrom(p, src) {
					return true
				}
				if nr, ok := reroute(src, p.Dst); ok {
					m.setRoute(p, nr)
					m.Rerouted++
					if m.OnRepair != nil {
						m.OnRepair(p, false)
					}
					return true
				}
				if m.OnRepair != nil {
					m.OnRepair(p, true)
				}
				m.sim.DiscardQueued(p)
				m.Dropped++
				return false
			})
		}
		m.sim.RecountNIPending(src)
	}
}

// setRoute installs nr (built in m.routeBuf) as p's route. SetRoute
// copies, so the scratch can be reused for the next repair; the grown
// capacity is kept.
func (m *Manager) setRoute(p *network.Packet, nr routing.Route) {
	m.sim.SetRoute(p, nr)
	m.routeBuf = nr[:0]
}

// Algorithm adapts the manager to routing.Algorithm so traffic
// generators route through the manager's live tables (respecting pending
// gates).
func (m *Manager) Algorithm() routing.Algorithm { return managerAlg{m} }

type managerAlg struct{ m *Manager }

func (a managerAlg) Name() string { return "managed_minimal" }

func (a managerAlg) Route(src, dst geom.NodeID, _ *rand.Rand) (routing.Route, bool) {
	return a.m.Route(src, dst)
}

// routeValidFrom reports whether p's remaining route is walkable from at
// over the current topology.
func (m *Manager) routeValidFrom(p *network.Packet, at geom.NodeID) bool {
	cur := at
	for _, d := range p.Route[p.Hop:] {
		if !m.topo.HasLink(cur, d) {
			return false
		}
		cur = m.topo.Neighbor(cur, d)
	}
	return cur == p.Dst
}
