// Package reconfig coordinates safe runtime topology changes over a live
// simulation — the operations the paper's motivating domains perform:
// power-gating routers (NoRD, Router Parking, Panthre) and surviving
// link/router failures (Ariadne, uDIREC). Static Bubble guarantees the
// *resulting* topology is deadlock-free; this package handles the
// transition itself:
//
//   - Gating a router is graceful: new routes avoid it, traffic transiting
//     it drains, and only then does it power off.
//   - A failure is abrupt: packets whose remaining route crosses the dead
//     component are rerouted in place from their current position, or
//     dropped if their destination became unreachable (the paper's
//     methodology drops such packets).
//
// After every change the manager rebuilds its minimal-routing tables, so
// newly injected packets always use the current topology.
package reconfig

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Manager wraps a simulator and its topology with safe mutation
// operations. Create with New; use Routes for route computation so that
// pending gates are respected.
type Manager struct {
	sim  *network.Sim
	topo *topology.Topology
	// minimal is rebuilt whenever the topology changes.
	minimal *routing.Minimal
	// pendingGate marks routers that must not receive new routes but are
	// still draining.
	pendingGate map[geom.NodeID]bool
	// Dropped counts packets discarded because a failure disconnected
	// their destination.
	Dropped int64
	// Rerouted counts packets whose route was recomputed in place.
	Rerouted int64
	// routeBuf is the reroute scratch: repairTraffic builds replacement
	// routes here and Sim.SetRoute copies them into the packet's arena
	// span, so repairs don't allocate per packet.
	routeBuf routing.Route
}

// New builds a manager over a live simulation.
func New(s *network.Sim) *Manager {
	m := &Manager{
		sim:         s,
		topo:        s.Topo,
		pendingGate: make(map[geom.NodeID]bool),
	}
	m.rebuild()
	return m
}

func (m *Manager) rebuild() { m.minimal = routing.NewMinimal(m.topo) }

// Route returns a minimal route from src to dst that avoids routers
// pending gating, or ok=false if none exists. Use this instead of a raw
// routing.Minimal while gating operations are in progress.
func (m *Manager) Route(src, dst geom.NodeID) (routing.Route, bool) {
	r, ok := m.minimal.Route(src, dst, m.sim.Rng)
	if !ok {
		return nil, false
	}
	if len(m.pendingGate) == 0 || !m.routeTouches(r, src, m.pendingGate) {
		return r, ok
	}
	// Recompute on a view that excludes pending-gate routers. One-shot:
	// a single reverse BFS for this dst instead of compiling all-pairs
	// tables for a throwaway view (identical rng draws and route).
	view := m.topo.Clone()
	for n := range m.pendingGate {
		view.DisableRouter(n)
	}
	return routing.AppendRouteOneShot(view, nil, src, dst, m.sim.Rng)
}

// routeTouches reports whether route r from src visits any node in set
// (intermediate or final).
func (m *Manager) routeTouches(r routing.Route, src geom.NodeID, set map[geom.NodeID]bool) bool {
	cur := src
	if set[cur] {
		return true
	}
	for _, d := range r {
		cur = m.topo.Neighbor(cur, d)
		if cur == geom.InvalidNode {
			return true // malformed: treat as touching
		}
		if set[cur] {
			return true
		}
	}
	return false
}

// RequestGate marks router n for power-gating: new routes from Route
// avoid it immediately. Call TryCompleteGates each cycle (or after Run
// batches) to power it off once drained.
func (m *Manager) RequestGate(n geom.NodeID) error {
	if !m.topo.RouterAlive(n) {
		return fmt.Errorf("reconfig: router %v is not alive", n)
	}
	m.pendingGate[n] = true
	return nil
}

// TryCompleteGates powers off every pending router that has fully
// drained: no packets buffered at it and no in-flight packet's remaining
// route crossing it. It returns the routers gated this call.
func (m *Manager) TryCompleteGates() []geom.NodeID {
	if len(m.pendingGate) == 0 {
		return nil
	}
	// Collect routers still referenced by in-flight traffic.
	busy := make(map[geom.NodeID]bool)
	for n := range m.pendingGate {
		if m.sim.Routers[n].Occupied() > 0 {
			busy[n] = true
		}
	}
	m.forEachInFlight(func(p *network.Packet, at geom.NodeID) {
		cur := at
		if m.pendingGate[cur] {
			busy[cur] = true
		}
		for _, d := range p.Route[p.Hop:] {
			cur = m.topo.Neighbor(cur, d)
			if cur == geom.InvalidNode {
				break
			}
			if m.pendingGate[cur] {
				busy[cur] = true
			}
		}
	})
	// NI queues also pin routers (their packets have committed routes).
	for id := range m.sim.NIQueue {
		for vnet := range m.sim.NIQueue[id] {
			q := &m.sim.NIQueue[id][vnet]
			for i := 0; i < q.Len(); i++ {
				p := q.At(i)
				cur := p.Src
				if m.pendingGate[cur] {
					busy[cur] = true
				}
				for _, d := range p.Route {
					cur = m.topo.Neighbor(cur, d)
					if cur == geom.InvalidNode {
						break
					}
					if m.pendingGate[cur] {
						busy[cur] = true
					}
				}
			}
		}
	}
	var gated []geom.NodeID
	for n := range m.pendingGate {
		if !busy[n] {
			gated = append(gated, n)
		}
	}
	for _, n := range gated {
		delete(m.pendingGate, n)
		m.topo.DisableRouter(n)
	}
	if len(gated) > 0 {
		m.rebuild()
	}
	return gated
}

// PendingGates returns the routers still draining toward power-off.
func (m *Manager) PendingGates() int { return len(m.pendingGate) }

// Ungate powers a gated router back on and refreshes routing.
func (m *Manager) Ungate(n geom.NodeID) {
	m.topo.EnableRouter(n)
	delete(m.pendingGate, n)
	m.rebuild()
	// Re-enabling a router is stateless from the simulator's view; tell
	// the event scheduler so pending injections resume immediately.
	m.sim.Wake(n)
}

// FailLink kills the bidirectional link between n and its neighbor in
// direction d, then repairs all affected traffic: queued and in-flight
// packets whose remaining route crossed the link are rerouted from their
// current position, or dropped if their destination is now unreachable.
func (m *Manager) FailLink(n geom.NodeID, d geom.Direction) {
	m.topo.DisableLink(n, d)
	m.rebuild()
	m.repairTraffic()
}

// FailRouter kills router n abruptly; packets buffered at n are lost
// (counted as dropped), and other affected traffic is rerouted.
func (m *Manager) FailRouter(n geom.NodeID) {
	// Discard the dead router's buffered packets.
	r := &m.sim.Routers[n]
	for _, port := range geom.AllPorts {
		for slot := range r.In[port] {
			if r.In[port][slot].Pkt != nil {
				m.discardVC(&r.In[port][slot], n, port)
			}
		}
	}
	if r.Bubble.VC.Pkt != nil {
		m.discardVC(&r.Bubble.VC, n, r.Bubble.InPort)
	}
	m.topo.DisableRouter(n)
	m.rebuild()
	m.repairTraffic()
}

// discardVC removes a packet from a VC with full accounting.
func (m *Manager) discardVC(vc *network.VC, at geom.NodeID, port geom.Direction) {
	m.sim.RemovePacket(vc, at, port)
	m.Dropped++
}

// forEachInFlight visits every buffered packet with its current router.
func (m *Manager) forEachInFlight(fn func(p *network.Packet, at geom.NodeID)) {
	for id := range m.sim.Routers {
		r := &m.sim.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				if p := r.In[port][slot].Pkt; p != nil {
					fn(p, geom.NodeID(id))
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil {
			fn(p, geom.NodeID(id))
		}
	}
}

// repairTraffic walks all live traffic and fixes routes broken by the
// last topology change.
func (m *Manager) repairTraffic() {
	// In-flight packets: reroute from the router they currently occupy.
	type fix struct {
		vc   *network.VC
		at   geom.NodeID
		port geom.Direction
	}
	var broken []fix
	for id := range m.sim.Routers {
		r := &m.sim.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		for _, port := range geom.AllPorts {
			for slot := range r.In[port] {
				p := r.In[port][slot].Pkt
				if p != nil && !m.routeValidFrom(p, geom.NodeID(id)) {
					broken = append(broken, fix{&r.In[port][slot], geom.NodeID(id), port})
				}
			}
		}
		if p := r.Bubble.VC.Pkt; p != nil && !m.routeValidFrom(p, geom.NodeID(id)) {
			broken = append(broken, fix{&r.Bubble.VC, geom.NodeID(id), r.Bubble.InPort})
		}
	}
	for _, b := range broken {
		p := b.vc.Pkt
		if nr, ok := m.minimal.AppendRoute(m.routeBuf[:0], b.at, p.Dst, m.sim.Rng); ok {
			m.setRoute(p, nr)
			m.Rerouted++
		} else {
			m.discardVC(b.vc, b.at, b.port)
		}
	}
	// Queued packets: reroute from their source.
	for id := range m.sim.NIQueue {
		src := geom.NodeID(id)
		for vnet := range m.sim.NIQueue[id] {
			m.sim.NIQueue[id][vnet].Filter(func(p *network.Packet) bool {
				if m.routeValidFrom(p, src) {
					return true
				}
				if nr, ok := m.minimal.AppendRoute(m.routeBuf[:0], src, p.Dst, m.sim.Rng); ok {
					m.setRoute(p, nr)
					m.Rerouted++
					return true
				}
				m.sim.DiscardQueued(p)
				m.Dropped++
				return false
			})
		}
	}
}

// setRoute installs nr (built in m.routeBuf) as p's route. SetRoute
// copies, so the scratch can be reused for the next repair; the grown
// capacity is kept.
func (m *Manager) setRoute(p *network.Packet, nr routing.Route) {
	m.sim.SetRoute(p, nr)
	m.routeBuf = nr[:0]
}

// Algorithm adapts the manager to routing.Algorithm so traffic
// generators route through the manager's live tables (respecting pending
// gates).
func (m *Manager) Algorithm() routing.Algorithm { return managerAlg{m} }

type managerAlg struct{ m *Manager }

func (a managerAlg) Name() string { return "managed_minimal" }

func (a managerAlg) Route(src, dst geom.NodeID, _ *rand.Rand) (routing.Route, bool) {
	return a.m.Route(src, dst)
}

// routeValidFrom reports whether p's remaining route is walkable from at
// over the current topology.
func (m *Manager) routeValidFrom(p *network.Packet, at geom.NodeID) bool {
	cur := at
	for _, d := range p.Route[p.Hop:] {
		if !m.topo.HasLink(cur, d) {
			return false
		}
		cur = m.topo.Neighbor(cur, d)
	}
	return cur == p.Dst
}
