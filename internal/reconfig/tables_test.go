package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func fakeFingerprint(i int) topology.Fingerprint {
	var fp topology.Fingerprint
	fp[0], fp[1] = byte(i), byte(i>>8)
	return fp
}

// TestTableCacheLRU: capacity, eviction order, and recency updates from
// both get and put.
func TestTableCacheLRU(t *testing.T) {
	c := newTableCache()
	min := routing.NewMinimal(topology.NewMesh(2, 2))
	for i := 0; i < tableCacheCap; i++ {
		if c.put(fakeFingerprint(i), min) {
			t.Fatalf("unexpected eviction filling to cap (i=%d)", i)
		}
	}
	if c.len() != tableCacheCap {
		t.Fatalf("len=%d want %d", c.len(), tableCacheCap)
	}
	// Touch entry 0 via get: it becomes most-recently-used, so the next
	// insert must evict entry 1 instead.
	if _, ok := c.get(fakeFingerprint(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	if !c.put(fakeFingerprint(1000), min) {
		t.Fatal("insert at cap should evict")
	}
	if _, ok := c.get(fakeFingerprint(1)); ok {
		t.Fatal("entry 1 should have been evicted (LRU after 0 was touched)")
	}
	if _, ok := c.get(fakeFingerprint(0)); !ok {
		t.Fatal("entry 0 should have survived")
	}
	// put of an existing key refreshes recency without eviction.
	if c.put(fakeFingerprint(2), min) {
		t.Fatal("refreshing put must not evict")
	}
	if !c.put(fakeFingerprint(1001), min) {
		t.Fatal("insert at cap should evict")
	}
	if _, ok := c.get(fakeFingerprint(2)); !ok {
		t.Fatal("refreshed entry 2 should have survived the next eviction")
	}
}

// TestTableCacheChurnSweep drives many more distinct fingerprints than
// the cap through the cache and checks the invariant len <= cap with
// every recent entry resident.
func TestTableCacheChurnSweep(t *testing.T) {
	c := newTableCache()
	min := routing.NewMinimal(topology.NewMesh(2, 2))
	for i := 0; i < 5*tableCacheCap; i++ {
		c.put(fakeFingerprint(i), min)
		if c.len() > tableCacheCap {
			t.Fatalf("cache exceeded cap: %d", c.len())
		}
	}
	for i := 4*tableCacheCap + 1; i < 5*tableCacheCap; i++ {
		if _, ok := c.get(fakeFingerprint(i)); !ok {
			t.Fatalf("recent entry %d evicted early", i)
		}
	}
}

// TestManagerTableStats: the manager's counters track hits, misses,
// incremental compiles, and — critically for the COW contract — a flap
// back to a cached fingerprint returns the identical *routing.Minimal.
func TestManagerTableStats(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	m := New(s)
	st := m.TableStats()
	if st.Misses != 1 || st.Full != 1 || st.Hits != 0 {
		t.Fatalf("construction should cost exactly one full-compile miss: %+v", st)
	}
	before := m.minimal
	m.FailLink(0, geom.East)
	st = m.TableStats()
	if st.Misses != 2 || st.Incremental != 1 {
		t.Fatalf("fail-link should be one incremental miss: %+v", st)
	}
	// On a mesh this small a central link cut perturbs every column, so
	// sharing isn't guaranteed — but the repair path must dominate and
	// the rewrite work must stay far below a full-table recompile.
	full := m.minimal.TableEntries()
	if st.ColsRepaired == 0 {
		t.Fatalf("incremental compile should repair columns: %+v", st)
	}
	if inc := st.EntriesRewritten - full; inc <= 0 || inc >= full/2 {
		t.Fatalf("incremental rewrite work %d not local vs full table %d: %+v", inc, full, st)
	}
	if out, _ := m.Submit(Event{Kind: EvRecoverLink, Node: 0, Dir: geom.East}); out != OutApplied {
		t.Fatalf("recover-link outcome %v", out)
	}
	st = m.TableStats()
	if st.Hits != 1 {
		t.Fatalf("flap back should hit the fingerprint cache: %+v", st)
	}
	if m.minimal != before {
		t.Fatal("flap back must return the identical compiled object")
	}
}
