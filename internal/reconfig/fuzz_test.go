package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/topology"
)

// FuzzReconfigOverlap feeds arbitrary interleavings of reconfiguration
// events — gates, revocations, abrupt kills, link flaps, scheduled
// recoveries — into a live simulation with Static Bubble recovery
// attached, with traffic bursts mixed in. The byte stream is an op
// program: pairs (op, arg) select the event kind and target. Whatever
// the interleaving, the invariants must hold:
//
//   - Submit/Tick never panic and the epoch never moves backwards.
//   - Packet conservation after every step.
//   - No stuck state: once the program ends, gates complete or revoke,
//     the event queue empties, and all traffic drains.
//   - Dead elements stay consistent: a router reported dead has no
//     alive links in the topology's view.
func FuzzReconfigOverlap(f *testing.F) {
	// Seed corpus: the overlap shapes the state machine is built for.
	f.Add([]byte{0x00, 0x0c, 0x02, 0x0c, 0x05, 0x0c}) // gate, then abrupt fail of the same router, then recover
	f.Add([]byte{0x00, 0x07, 0x01, 0x07, 0x00, 0x07, 0x01, 0x07})             // gate/revoke flapping
	f.Add([]byte{0x03, 0x11, 0x03, 0x11, 0x04, 0x11, 0x04, 0x11})             // link down twice, up twice (idempotence)
	f.Add([]byte{0x02, 0x0a, 0x05, 0x0a, 0x02, 0x0a, 0x06, 0x30, 0x05, 0x0a}) // fail, recover, fail again with traffic
	f.Add([]byte{0x07, 0x20, 0x02, 0x09, 0x07, 0x40, 0x05, 0x09, 0x06, 0x10}) // scheduled recovery behind live traffic
	f.Add([]byte{0x00, 0x05, 0x03, 0x05, 0x02, 0x06, 0x06, 0x22, 0x05, 0x06, 0x04, 0x05, 0x01, 0x05})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		topo := topology.NewMesh(5, 5)
		num := topo.NumNodes()
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
		ctl := core.Attach(s, core.Options{TDD: 26})
		m := New(s)
		m.SetScheme(ctl)
		alg := m.Algorithm()
		rng := rand.New(rand.NewSource(11))

		conserved := func(tag string) {
			t.Helper()
			if got := s.Stats.Delivered + s.InFlight() + s.QueuedPackets() + s.Stats.Lost; got != s.Stats.Offered {
				t.Fatalf("%s: conservation violated: Delivered+InFlight+Queued+Lost=%d, Offered=%d",
					tag, got, s.Stats.Offered)
			}
		}
		inject := func(k int) {
			for i := 0; i < k; i++ {
				src := geom.NodeID(rng.Intn(num))
				dst := geom.NodeID(rng.Intn(num))
				if src == dst || !topo.RouterAlive(src) || !topo.RouterAlive(dst) {
					continue
				}
				if r, ok := alg.Route(src, dst, rng); ok {
					s.Enqueue(s.NewPacket(src, dst, rng.Intn(3), 1+4*rng.Intn(2), r))
				} else {
					s.Drop()
				}
			}
		}

		epoch := m.Epoch()
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			node := geom.NodeID(int(arg) % num)
			dir := geom.Direction(int(arg>>5) % int(geom.NumLinkDirs))
			switch op % 8 {
			case 0:
				m.Submit(Event{Kind: EvGate, Node: node}) // errors on dead routers: allowed
			case 1:
				m.Submit(Event{Kind: EvUngate, Node: node})
			case 2:
				// Abrupt kill, but keep at least half the mesh up so the
				// program cannot grind the network away entirely.
				if topo.AliveRouterCount() > num/2 {
					m.Submit(Event{Kind: EvFailRouter, Node: node})
				}
			case 3:
				if len(topo.AliveUndirectedLinks()) > num {
					m.Submit(Event{Kind: EvFailLink, Node: node, Dir: dir})
				}
			case 4:
				m.Submit(Event{Kind: EvRecoverLink, Node: node, Dir: dir})
			case 5:
				m.Submit(Event{Kind: EvRecoverRouter, Node: node})
			case 6:
				inject(1 + int(arg)%8)
			case 7:
				m.SubmitAt(s.Now+1+int64(arg)%64, Event{Kind: EvRecoverRouter, Node: node})
			}
			if e := m.Epoch(); e < epoch {
				t.Fatalf("op %d: epoch moved backwards: %d -> %d", i/2, epoch, e)
			} else {
				epoch = e
			}
			m.Tick()
			for j := 0; j <= int(op)%3; j++ {
				s.Step()
			}
			conserved("mid-program")
		}

		// Wind down: recover everything so pending drains can't be blocked
		// by a dead destination, then pump until quiescent.
		for n := 0; n < num; n++ {
			if !topo.RouterAlive(geom.NodeID(n)) {
				m.Submit(Event{Kind: EvRecoverRouter, Node: geom.NodeID(n)})
			}
		}
		for i := 0; i < 20000; i++ {
			m.Tick()
			if m.PendingEvents() == 0 && m.PendingGates() == 0 && s.InFlight()+s.QueuedPackets() == 0 {
				break
			}
			s.Step()
		}
		if m.PendingGates() != 0 {
			t.Fatalf("stuck gate drain: %d gates never completed or revoked", m.PendingGates())
		}
		if m.PendingEvents() != 0 {
			t.Fatalf("event queue never drained: %d entries", m.PendingEvents())
		}
		if left := s.InFlight() + s.QueuedPackets(); left != 0 {
			t.Fatalf("traffic never drained: %d packets stuck", left)
		}
		conserved("final")

		// Topology self-consistency. LinkIntact by design ignores router
		// aliveness (a gate may legitimately complete during the drain and
		// power its router off), so the invariants are: HasLink implies
		// alive endpoints AND an intact wire, and intactness is symmetric.
		for n := 0; n < num; n++ {
			id := geom.NodeID(n)
			for _, d := range geom.LinkDirs {
				nb := topo.Neighbor(id, d)
				if topo.HasLink(id, d) {
					if !topo.RouterAlive(id) || !topo.RouterAlive(nb) || !topo.LinkIntact(id, d) {
						t.Fatalf("HasLink(%v,%v) with dead endpoint or severed wire", id, d)
					}
				}
				if nb != geom.InvalidNode && topo.LinkIntact(id, d) != topo.LinkIntact(nb, d.Opposite()) {
					t.Fatalf("link intactness asymmetric across %v<->%v", id, nb)
				}
			}
		}
	})
}
