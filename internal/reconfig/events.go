package reconfig

import (
	"fmt"

	"repro/internal/geom"
)

// EventKind enumerates the runtime topology events the manager applies.
type EventKind uint8

const (
	// EvGate requests graceful power-off of a router: routes avoid it,
	// traffic drains, and a later Tick/TryCompleteGates powers it off.
	EvGate EventKind = iota
	// EvUngate revokes a pending gate or powers a gated router back on.
	// It is an alias for EvRecoverRouter; both spellings exist because
	// planned power management and failure recovery arrive from
	// different callers with different intent.
	EvUngate
	// EvFailLink abruptly severs the bidirectional link Node→Dir.
	EvFailLink
	// EvRecoverLink restores the bidirectional link Node→Dir.
	EvRecoverLink
	// EvFailRouter abruptly kills router Node (resident packets lost).
	EvFailRouter
	// EvRecoverRouter revives router Node, or revokes its in-progress
	// gate drain if it never actually powered off.
	EvRecoverRouter
)

func (k EventKind) String() string {
	switch k {
	case EvGate:
		return "gate"
	case EvUngate:
		return "ungate"
	case EvFailLink:
		return "fail_link"
	case EvRecoverLink:
		return "recover_link"
	case EvFailRouter:
		return "fail_router"
	case EvRecoverRouter:
		return "recover_router"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one topology mutation request. Dir is meaningful only for
// the link kinds.
type Event struct {
	Kind EventKind
	Node geom.NodeID
	Dir  geom.Direction
}

func (e Event) String() string {
	switch e.Kind {
	case EvFailLink, EvRecoverLink:
		return fmt.Sprintf("%v(%v,%v)", e.Kind, e.Node, e.Dir)
	default:
		return fmt.Sprintf("%v(%v)", e.Kind, e.Node)
	}
}

// Outcome describes what applying an event actually did. Overlapping
// events make this non-obvious: a recover may merely revoke a pending
// drain, and a repeated fail is a no-op.
type Outcome uint8

const (
	// OutNoop: the event found its target already in the requested state
	// (fail of a dead element, recover of an alive one).
	OutNoop Outcome = iota
	// OutApplied: the topology changed (and the epoch advanced).
	OutApplied
	// OutPending: a gate request was accepted; the drain is in progress.
	OutPending
	// OutRevoked: the event cancelled an in-progress gate drain on the
	// same router. The topology is unchanged (the router never powered
	// off), so the epoch does not advance.
	OutRevoked
)

func (o Outcome) String() string {
	switch o {
	case OutNoop:
		return "noop"
	case OutApplied:
		return "applied"
	case OutPending:
		return "pending"
	case OutRevoked:
		return "revoked"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// SchemeHandler is implemented by recovery schemes (core.Controller)
// that hold per-router protocol state the manager cannot see: FSMs,
// fences installed by in-flight recovery rounds, bubble flags. The
// manager notifies it after each applied topology event so the scheme
// can reset residue that would otherwise outlive the router (a dead
// FSM wedged mid-recovery vetoes quiet-epoch fast-forward forever, and
// its fences block traffic with no enable left to clear them).
//
// The interface lives here, implemented by core, so core never imports
// reconfig (reconfig's tests import core).
type SchemeHandler interface {
	// RouterFailed runs after router n was disabled (abrupt failure or
	// completed gate) and its resident packets discarded.
	RouterFailed(n geom.NodeID)
	// RouterRecovered runs after router n was re-enabled.
	RouterRecovered(n geom.NodeID)
	// LinkChanged runs after the link n→d changed state (alive=false
	// for a failure, true for a recovery).
	LinkChanged(n geom.NodeID, d geom.Direction, alive bool)
}

// scheduledEvent is one queue entry; seq breaks ties among events
// scheduled for the same cycle (submission order wins).
type scheduledEvent struct {
	at  int64
	seq int64
	ev  Event
}

// SetScheme registers a recovery-scheme handler notified after each
// applied event. Pass core.Controller (it implements SchemeHandler) so
// Static Bubble protocol state tracks runtime failures and recoveries.
func (m *Manager) SetScheme(h SchemeHandler) { m.scheme = h }

// Epoch returns the reconfiguration epoch: the number of applied
// topology mutations (gate completions count once per batch). Compiled
// routes and one-shot detours are valid only within the epoch they
// were computed in; callers caching routes must revalidate on change.
func (m *Manager) Epoch() int64 { return m.epoch }

// Submit applies ev immediately, returning what it did. Events are
// idempotent and overlap-safe: failing a dead element or recovering an
// alive one is OutNoop, a fail overrides a same-router gate drain, and
// a recover of a draining router revokes the drain (OutRevoked). The
// only error is a gate request for a dead router.
func (m *Manager) Submit(ev Event) (Outcome, error) {
	return m.apply(ev)
}

// SubmitAt schedules ev for the first Tick at or after cycle `at`.
// Events fire in (cycle, submission-order) order. A scheduled event
// that turns out to be impossible when due (gating a router that died
// in the meantime) degrades to a no-op rather than erroring: with
// overlap allowed, the state it assumed may legitimately be gone.
func (m *Manager) SubmitAt(at int64, ev Event) {
	m.seq++
	m.queue = append(m.queue, scheduledEvent{at: at, seq: m.seq, ev: ev})
	for i := len(m.queue) - 1; i > 0; i-- {
		if m.queue[i-1].at <= m.queue[i].at {
			break
		}
		m.queue[i-1], m.queue[i] = m.queue[i], m.queue[i-1]
	}
}

// PendingEvents returns the number of scheduled events not yet due.
func (m *Manager) PendingEvents() int { return len(m.queue) }

// Tick is the per-cycle pump: it applies every scheduled event due at
// or before the simulator's current cycle, then attempts gate
// completion, returning the routers powered off this call. Call it
// once per cycle (after Step) when using SubmitAt; with Submit only,
// Tick degenerates to TryCompleteGates.
func (m *Manager) Tick() []geom.NodeID {
	now := m.sim.Now
	n := 0
	for n < len(m.queue) && m.queue[n].at <= now {
		n++
	}
	if n > 0 {
		for i := 0; i < n; i++ {
			m.apply(m.queue[i].ev) // impossible-when-due degrades to noop
		}
		m.queue = m.queue[:copy(m.queue, m.queue[n:])]
	}
	return m.TryCompleteGates()
}

// apply dispatches one event through the overlap rules.
func (m *Manager) apply(ev Event) (Outcome, error) {
	switch ev.Kind {
	case EvGate:
		if m.pendingGate[ev.Node] {
			return OutPending, nil
		}
		if err := m.RequestGate(ev.Node); err != nil {
			return OutNoop, err
		}
		return OutPending, nil
	case EvUngate, EvRecoverRouter:
		return m.recoverRouter(ev.Node), nil
	case EvFailRouter:
		return m.failRouter(ev.Node), nil
	case EvFailLink:
		return m.failLink(ev.Node, ev.Dir), nil
	case EvRecoverLink:
		return m.recoverLink(ev.Node, ev.Dir), nil
	}
	return OutNoop, fmt.Errorf("reconfig: unknown event kind %v", ev.Kind)
}
