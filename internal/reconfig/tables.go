package reconfig

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// tableCacheCap bounds the per-Manager compiled-table cache. Churn
// revisits topologies constantly (a link flaps down and back up, a
// router fails and recovers), so a window this size captures nearly
// all repeats while keeping worst-case memory at ~cap × table size.
const tableCacheCap = 32

// tableCache is a tiny fingerprint-keyed LRU of compiled minimal
// routing tables, private to one Manager.
//
// Why not routing.MinimalFor? That process-wide cache is documented as
// off-limits for callers that mutate their topology in place (see
// routing/cache.go): the manager's topology changes on every event, so
// sharing compiled snapshots across simulations keyed by a pointer
// would be wrong, and keying globally by fingerprint would let one
// churn run grow process memory without bound. A per-Manager LRU keeps
// the win (recovering a flapped element reuses the previous compile)
// with a hard cap, and dies with the manager.
//
// Determinism: keys are content fingerprints, so a hit returns exactly
// the table NewMinimal would compile for that connectivity — the
// simulated trajectory is byte-identical with or without hits.
type tableCache struct {
	entries map[topology.Fingerprint]*routing.Minimal
	order   []topology.Fingerprint // front = least recently used
}

func newTableCache() *tableCache {
	return &tableCache{entries: make(map[topology.Fingerprint]*routing.Minimal, tableCacheCap)}
}

func (c *tableCache) get(fp topology.Fingerprint) (*routing.Minimal, bool) {
	min, ok := c.entries[fp]
	if ok {
		c.touch(fp)
	}
	return min, ok
}

func (c *tableCache) put(fp topology.Fingerprint, min *routing.Minimal) {
	if _, ok := c.entries[fp]; ok {
		c.entries[fp] = min
		c.touch(fp)
		return
	}
	if len(c.order) >= tableCacheCap {
		old := c.order[0]
		c.order = c.order[:copy(c.order, c.order[1:])]
		delete(c.entries, old)
	}
	c.entries[fp] = min
	c.order = append(c.order, fp)
}

// touch moves fp to the most-recently-used end.
func (c *tableCache) touch(fp topology.Fingerprint) {
	for i, f := range c.order {
		if f == fp {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = fp
			return
		}
	}
}
