package reconfig

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// tableCacheCap bounds the per-Manager compiled-table cache. Churn
// revisits topologies constantly (a link flaps down and back up, a
// router fails and recovers), so a window this size captures nearly
// all repeats while keeping worst-case memory at ~cap × table size.
const tableCacheCap = 32

// tableCache is a tiny fingerprint-keyed LRU of compiled minimal
// routing tables, private to one Manager. Lookups, inserts, and
// recency updates are all O(1): an index map plus an intrusive
// doubly-linked recency list (the old implementation rescanned and
// recopied an order slice on every touch — O(cap) per access, on the
// per-event path of every churn run).
//
// Why not routing.MinimalFor? That process-wide cache is documented as
// off-limits for callers that mutate their topology in place (see
// routing/cache.go): the manager's topology changes on every event, so
// sharing compiled snapshots across simulations keyed by a pointer
// would be wrong, and keying globally by fingerprint would let one
// churn run grow process memory without bound. A per-Manager LRU keeps
// the win (recovering a flapped element reuses the previous compile)
// with a hard cap, and dies with the manager.
//
// Determinism: keys are content fingerprints, so a hit returns exactly
// the table a compile would produce for that connectivity — the
// simulated trajectory is byte-identical with or without hits. With the
// incremental recompiler the returned object is moreover the *identical*
// object built when that fingerprint was last current, so a flap back to
// a cached fingerprint keeps sharing column pages with its neighbors in
// the flap sequence.
type tableCache struct {
	entries    map[topology.Fingerprint]*tableCacheNode
	head, tail *tableCacheNode // head = least recently used, tail = most
}

type tableCacheNode struct {
	fp         topology.Fingerprint
	min        *routing.Minimal
	prev, next *tableCacheNode
}

func newTableCache() *tableCache {
	return &tableCache{entries: make(map[topology.Fingerprint]*tableCacheNode, tableCacheCap)}
}

func (c *tableCache) get(fp topology.Fingerprint) (*routing.Minimal, bool) {
	nd, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	c.moveToTail(nd)
	return nd.min, true
}

// put inserts or refreshes fp and reports whether an entry was evicted.
func (c *tableCache) put(fp topology.Fingerprint, min *routing.Minimal) (evicted bool) {
	if nd, ok := c.entries[fp]; ok {
		nd.min = min
		c.moveToTail(nd)
		return false
	}
	if len(c.entries) >= tableCacheCap {
		old := c.head
		c.unlink(old)
		delete(c.entries, old.fp)
		evicted = true
	}
	nd := &tableCacheNode{fp: fp, min: min}
	c.entries[fp] = nd
	c.linkTail(nd)
	return evicted
}

func (c *tableCache) len() int { return len(c.entries) }

func (c *tableCache) unlink(nd *tableCacheNode) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		c.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		c.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (c *tableCache) linkTail(nd *tableCacheNode) {
	nd.prev = c.tail
	if c.tail != nil {
		c.tail.next = nd
	} else {
		c.head = nd
	}
	c.tail = nd
}

func (c *tableCache) moveToTail(nd *tableCacheNode) {
	if c.tail == nd {
		return
	}
	c.unlink(nd)
	c.linkTail(nd)
}

// TableStats counts the manager's compiled-table cache and compiler
// activity since construction. Surfaced per contender by the churn
// experiment (sbsweep -fig churn).
type TableStats struct {
	// Hits/Misses/Evictions describe the fingerprint LRU. The initial
	// compile at Manager construction counts as the first miss.
	Hits, Misses, Evictions int64
	// Incremental and Full count how cache misses were compiled.
	Incremental, Full int64
	// Column fates summed over incremental compiles (routing.RecompileStats).
	ColsShared, ColsRepaired, ColsRebuilt int64
	// EntriesRewritten is the deterministic table-install work metric:
	// entries whose value changed across epochs (full compiles charge
	// the whole table).
	EntriesRewritten int64
	// CompileNs is total wall time spent compiling (misses only);
	// LastCompileNs is the most recent miss's compile time. Wall-clock
	// fields are observability only — nothing simulated depends on them.
	CompileNs, LastCompileNs int64
}

// TableStats returns a snapshot of the manager's table-compilation
// counters.
func (m *Manager) TableStats() TableStats { return m.tabStats }
