package reconfig_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

// Gracefully power-gating a router on a live network: routes avoid it
// immediately, it powers off once drained, and no packet is ever lost.
func ExampleManager_RequestGate() {
	topo := topology.NewMesh(6, 6)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	core.Attach(sim, core.Options{})
	mgr := reconfig.New(sim)

	victim := topo.ID(geom.Coord{X: 3, Y: 3})
	if err := mgr.RequestGate(victim); err != nil {
		panic(err)
	}
	// Idle network: the gate completes on the first attempt.
	gated := mgr.TryCompleteGates()
	fmt.Println("gated:", gated)
	fmt.Println("alive:", topo.RouterAlive(victim))
	fmt.Println("lost:", sim.Stats.Lost)
	// Output:
	// gated: [21]
	// alive: false
	// lost: 0
}

// An abrupt link failure mid-flight: affected traffic is rerouted in
// place.
func ExampleManager_FailLink() {
	topo := topology.NewMesh(4, 2)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	mgr := reconfig.New(sim)
	r, _ := mgr.Route(0, 3)
	p := sim.NewPacket(0, 3, 0, 5, r)
	sim.Enqueue(p)
	sim.Run(4) // in flight
	mgr.FailLink(2, geom.East)
	sim.Run(80)
	fmt.Println("delivered:", p.DeliveredAt >= 0)
	fmt.Println("rerouted:", mgr.Rerouted >= 1)
	// Output:
	// delivered: true
	// rerouted: true
}
