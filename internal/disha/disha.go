// Package disha implements the token-based deadlock-recovery scheme of
// Anjan & Pinkston (ISCA'95) that the paper discusses as background
// (Section II-B): deadlocks are detected with per-buffer timeout
// counters; a single token circulates the network on a fixed Hamiltonian
// cycle; a router holding a timed-out packet captures the token and
// drains that packet through a dedicated network of deadlock buffers
// (one per router) routed XY, releasing the token on delivery.
//
// The package exists to make the paper's argument executable: DISHA
// works on a healthy mesh, but on an irregular topology (a) the token's
// fixed circulation path breaks the moment one of its links dies, and
// (b) XY routing over the dedicated buffers cannot reach around faults —
// so recovery silently stops. See the package tests.
package disha

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/topology"
)

// Options configures the controller.
type Options struct {
	// Timeout is the per-buffer deadlock-detection threshold in cycles.
	// Default 34.
	Timeout int64
	// TokenHopCycles is the token's per-hop circulation delay. Default 2
	// (router + link, like any message).
	TokenHopCycles int64
}

// Controller runs DISHA over a simulator.
type Controller struct {
	sim *network.Sim
	opt Options
	// path is the token's Hamiltonian circulation cycle.
	path []geom.NodeID
	// pathIdx locates each router on the path (-1 if absent).
	pathIdx []int
	// tokenPos indexes path; tokenNextMove is the cycle of its next hop.
	tokenPos      int
	tokenNextMove int64
	// tokenHeldBy is the router draining a packet, or InvalidNode;
	// tokenReleaseAt is when the drain completes.
	tokenHeldBy    geom.NodeID
	tokenReleaseAt int64
	// timers per VC, as in the escape scheme.
	timers []vcTimer
	slots  int

	// Recoveries counts packets drained through the deadlock-buffer
	// network; TokenStalls counts cycles the token could not advance
	// because its next path link is dead.
	Recoveries  int64
	TokenStalls int64
}

type vcTimer struct {
	pktID int64
	since int64
}

// HamiltonianCycle constructs the token's circulation path on a
// width×height mesh: serpentine over columns ≥1, returning down column 0.
// The mesh height must be even and both dimensions ≥2 (the classic
// existence condition DISHA relies on).
func HamiltonianCycle(width, height int) ([]geom.NodeID, error) {
	if width < 2 || height < 2 || height%2 != 0 {
		return nil, fmt.Errorf("disha: no Hamiltonian cycle construction for %dx%d (need height even, both ≥2)", width, height)
	}
	var path []geom.NodeID
	id := func(x, y int) geom.NodeID { return geom.Coord{X: x, Y: y}.IDOf(width) }
	for y := 0; y < height; y++ {
		if y%2 == 0 {
			start := 1
			if y == 0 {
				start = 0 // include (0,0) on the bottom row
			}
			for x := start; x < width; x++ {
				path = append(path, id(x, y))
			}
		} else {
			for x := width - 1; x >= 1; x-- {
				path = append(path, id(x, y))
			}
		}
	}
	for y := height - 1; y >= 1; y-- {
		path = append(path, id(0, y))
	}
	return path, nil
}

// Attach installs DISHA on s. The token path is the standard Hamiltonian
// cycle over the full mesh; it is fixed at attach time, exactly as in the
// original design — runtime topology changes are NOT accommodated (that
// is the point the paper makes).
func Attach(s *network.Sim, opt Options) (*Controller, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 34
	}
	if opt.TokenHopCycles == 0 {
		opt.TokenHopCycles = 2
	}
	path, err := HamiltonianCycle(s.Topo.Width(), s.Topo.Height())
	if err != nil {
		return nil, err
	}
	slots := s.Cfg.SlotsPerPort()
	c := &Controller{
		sim:         s,
		opt:         opt,
		path:        path,
		pathIdx:     make([]int, s.Topo.NumNodes()),
		tokenHeldBy: geom.InvalidNode,
		timers:      make([]vcTimer, s.Topo.NumNodes()*geom.NumPorts*slots),
		slots:       slots,
	}
	for i := range c.pathIdx {
		c.pathIdx[i] = -1
	}
	for i, n := range path {
		c.pathIdx[n] = i
	}
	s.PostCycle = append(s.PostCycle, func(sim *network.Sim) { c.tick() })
	return c, nil
}

// TokenAt returns the router currently holding or hosting the token.
func (c *Controller) TokenAt() geom.NodeID { return c.path[c.tokenPos] }

// TokenPathIntact reports whether every link of the token's fixed
// circulation cycle is still alive — once false, DISHA can no longer
// recover deadlocks at routers beyond the break.
func (c *Controller) TokenPathIntact() bool {
	for i, n := range c.path {
		next := c.path[(i+1)%len(c.path)]
		d := geom.DirectionBetween(c.sim.Topo.Coord(n), c.sim.Topo.Coord(next))
		if d == geom.Invalid || !c.sim.Topo.HasLink(n, d) {
			return false
		}
	}
	return true
}

// tick advances timers, circulates the token, and performs captures.
func (c *Controller) tick() {
	s := c.sim
	now := s.Now

	// Release the token when a drain completes.
	if c.tokenHeldBy != geom.InvalidNode && now >= c.tokenReleaseAt {
		c.tokenHeldBy = geom.InvalidNode
	}

	// Token circulation (idle token only).
	if c.tokenHeldBy == geom.InvalidNode && now >= c.tokenNextMove {
		cur := c.path[c.tokenPos]
		next := c.path[(c.tokenPos+1)%len(c.path)]
		d := geom.DirectionBetween(s.Topo.Coord(cur), s.Topo.Coord(next))
		if d == geom.Invalid || !s.Topo.HasLink(cur, d) {
			// The fixed circulation path is broken: the token is stuck.
			// (DISHA has no mechanism to recompute it at runtime.)
			c.TokenStalls++
			c.tokenNextMove = now + c.opt.TokenHopCycles
		} else {
			c.tokenPos = (c.tokenPos + 1) % len(c.path)
			c.tokenNextMove = now + c.opt.TokenHopCycles
		}
	}

	// Timers and capture.
	tokenRouter := c.path[c.tokenPos]
	for id := range s.Routers {
		r := &s.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		base := id * geom.NumPorts * c.slots
		for _, port := range geom.AllPorts {
			pbase := base + int(port)*c.slots
			for slot := 0; slot < c.slots; slot++ {
				vc := &r.In[port][slot]
				p := vc.Pkt
				tm := &c.timers[pbase+slot]
				if p == nil {
					tm.pktID = 0
					continue
				}
				if tm.pktID != p.ID {
					tm.pktID = p.ID
					tm.since = now
					continue
				}
				if now-tm.since < c.opt.Timeout {
					continue
				}
				// Timed out: capture the token if it is here and free.
				if c.tokenHeldBy != geom.InvalidNode || tokenRouter != geom.NodeID(id) {
					continue
				}
				if !c.drain(vc, geom.NodeID(id), port) {
					continue
				}
				tm.pktID = 0
				return // one capture per cycle (single token)
			}
		}
	}
}

// drain moves the packet through the dedicated deadlock-buffer network:
// XY routing, exclusive access (token-held), one hop per TokenHopCycles.
// It fails — and DISHA provides no recourse — if the XY path to the
// destination crosses a dead link.
func (c *Controller) drain(vc *network.VC, at geom.NodeID, port geom.Direction) bool {
	s := c.sim
	p := vc.Pkt
	hops, ok := xyDistance(s.Topo, at, p.Dst)
	if !ok {
		return false // XY path broken: the paper's second failure mode
	}
	delay := int64(hops)*c.opt.TokenHopCycles + int64(p.Len)
	deliverAt := s.Now + delay
	s.DeliverOutOfBand(vc, at, port, deliverAt)
	c.Recoveries++
	// The token is held until the drain completes, then released in
	// place.
	c.tokenHeldBy = at
	c.tokenReleaseAt = deliverAt
	c.tokenNextMove = deliverAt
	return true
}

// xyDistance walks the XY path from src to dst over alive channels.
func xyDistance(t *topology.Topology, src, dst geom.NodeID) (int, bool) {
	cur := src
	hops := 0
	step := func(d geom.Direction) bool {
		if !t.HasLink(cur, d) {
			return false
		}
		cur = t.Neighbor(cur, d)
		hops++
		return true
	}
	a, b := t.Coord(src), t.Coord(dst)
	for t.Coord(cur).X < b.X {
		if !step(geom.East) {
			return 0, false
		}
	}
	for t.Coord(cur).X > b.X {
		if !step(geom.West) {
			return 0, false
		}
	}
	for t.Coord(cur).Y < b.Y {
		if !step(geom.North) {
			return 0, false
		}
	}
	for t.Coord(cur).Y > b.Y {
		if !step(geom.South) {
			return 0, false
		}
	}
	_ = a
	return hops, true
}
