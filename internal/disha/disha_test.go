package disha

import (
	"math/rand"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestHamiltonianCycleValid(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {5, 6}, {3, 4}} {
		path, err := HamiltonianCycle(sz[0], sz[1])
		if err != nil {
			t.Fatalf("%dx%d: %v", sz[0], sz[1], err)
		}
		if len(path) != sz[0]*sz[1] {
			t.Fatalf("%dx%d: path visits %d of %d nodes", sz[0], sz[1], len(path), sz[0]*sz[1])
		}
		seen := map[geom.NodeID]bool{}
		topo := topology.NewMesh(sz[0], sz[1])
		for i, n := range path {
			if seen[n] {
				t.Fatalf("%dx%d: node %v revisited", sz[0], sz[1], n)
			}
			seen[n] = true
			next := path[(i+1)%len(path)]
			d := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
			if d == geom.Invalid {
				t.Fatalf("%dx%d: hop %d not adjacent (%v→%v)", sz[0], sz[1], i, n, next)
			}
		}
	}
}

func TestHamiltonianCycleRejectsOddHeight(t *testing.T) {
	if _, err := HamiltonianCycle(4, 3); err == nil {
		t.Fatal("odd height must be rejected")
	}
	if _, err := HamiltonianCycle(1, 4); err == nil {
		t.Fatal("width 1 must be rejected")
	}
}

// primeRing wedges a 2x2 sub-square of the mesh.
func primeRing(s *network.Sim, x, y, perNode int) int {
	topo := s.Topo
	loop := []geom.NodeID{
		topo.ID(geom.Coord{X: x, Y: y}),
		topo.ID(geom.Coord{X: x, Y: y + 1}),
		topo.ID(geom.Coord{X: x + 1, Y: y + 1}),
		topo.ID(geom.Coord{X: x + 1, Y: y}),
	}
	total := 0
	for i, n := range loop {
		next, next2 := loop[(i+1)%4], loop[(i+2)%4]
		d1 := geom.DirectionBetween(topo.Coord(n), topo.Coord(next))
		d2 := geom.DirectionBetween(topo.Coord(next), topo.Coord(next2))
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, next2, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

func TestDishaRecoversOnHealthyMesh(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c, err := Attach(s, Options{Timeout: 30})
	if err != nil {
		t.Fatal(err)
	}
	total := primeRing(s, 1, 1, 12)
	s.Run(60000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d, token stalls %d)",
			s.Stats.Delivered, total, c.Recoveries, c.TokenStalls)
	}
	if c.Recoveries == 0 {
		t.Fatal("expected token-based recoveries")
	}
	if deadlock.IsDeadlocked(s) {
		t.Fatal("network still deadlocked")
	}
}

func TestDishaTokenBreaksOnIrregularTopology(t *testing.T) {
	// The paper's argument (Section II-B): kill one link on the token's
	// circulation path and DISHA's recovery silently stops — the wedge
	// persists even though the topology remains fully connected.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	c, err := Attach(s, Options{Timeout: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Break a boundary link on the Hamiltonian cycle, far from the wedge.
	topo.DisableLink(topo.ID(geom.Coord{X: 0, Y: 3}), geom.South)
	if len(topo.LargestComponent()) != 16 {
		t.Fatal("setup: topology must stay connected")
	}
	total := primeRing(s, 1, 1, 12)
	s.Run(60000)
	if s.Stats.Delivered == int64(total) {
		t.Fatal("DISHA should NOT fully recover with a broken token path")
	}
	if c.TokenStalls == 0 {
		t.Fatal("expected the token to stall at the dead link")
	}
	if !deadlock.IsDeadlocked(s) {
		t.Fatal("the wedge should persist")
	}
}

func TestDishaXYDrainBreaksAroundFaults(t *testing.T) {
	// Second failure mode: the token circulates fine, but the dedicated
	// network's XY routing cannot reach the destination around a fault.
	// Wedge a ring whose packets' XY drain paths cross a dead link.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	c, err := Attach(s, Options{Timeout: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Break the (2,0)-(2,1) link: the X-then-Y path from (0,0) to (2,2)
	// dies at its turn, while adaptive minimal routes around it survive.
	src := topo.ID(geom.Coord{X: 0, Y: 0})
	dst := topo.ID(geom.Coord{X: 2, Y: 2})
	topo.DisableLink(topo.ID(geom.Coord{X: 2, Y: 0}), geom.North)
	if _, ok := xyDistance(topo, src, dst); ok {
		t.Fatal("setup: XY path should be broken")
	}
	if !routing.NewMinimal(topo).Reachable(src, dst) {
		t.Fatal("setup: destination must remain reachable adaptively")
	}
	// A packet wedged at src for dst cannot be drained by DISHA.
	p := s.NewPacket(src, dst, 0, 5, routing.Route{geom.North, geom.North, geom.East, geom.East})
	vc := &s.Routers[src].In[geom.Local][0]
	vc.Pkt = p
	if ok := c.drain(vc, src, geom.Local); ok {
		t.Fatal("drain must refuse a broken XY path")
	}
}

func TestDishaLatencyReflectsTokenWait(t *testing.T) {
	// Recovery latency includes waiting for the token to circulate to the
	// wedged router — the inefficiency the paper contrasts with SB's
	// local detection.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	c, err := Attach(s, Options{Timeout: 30})
	if err != nil {
		t.Fatal(err)
	}
	total := primeRing(s, 5, 5, 12)
	s.Run(120000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (recoveries %d)", s.Stats.Delivered, total, c.Recoveries)
	}
	// The wedged packets must wait for the token to travel the 64-node
	// loop (2 cycles/hop) to the wedge on top of the detection timeout:
	// worst-observed latency has to exceed timeout + a substantial part
	// of one token revolution. (Draining one packet un-wedges the ring,
	// so later packets flow normally — the tail is bounded.)
	if s.Stats.MaxLatency < 30+100 {
		t.Fatalf("max latency %d too low: no token wait visible", s.Stats.MaxLatency)
	}
}

func TestDishaAttachRejectsOddMesh(t *testing.T) {
	topo := topology.NewMesh(4, 3)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	if _, err := Attach(s, Options{}); err == nil {
		t.Fatal("attach must fail when no Hamiltonian cycle exists")
	}
}
