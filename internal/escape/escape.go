// Package escape implements the paper's second baseline (Section II-B,
// V-B): deadlock recovery with escape virtual channels. Packets travel on
// minimal, deadlock-prone source routes in the regular VCs; one VC per
// vnet per input port is reserved as the escape channel. A per-VC timer
// detects packets stuck beyond a threshold and moves them to escape
// routing: from then on they follow a deadlock-free spanning-tree path
// (up/down tree routing, Router Parking style) and may only occupy escape
// VCs, which the tree's acyclicity guarantees will drain.
package escape

import (
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// EscapeVCIndex is the VC index (within each vnet) reserved for escape
// traffic.
const EscapeVCIndex = 0

// Options configures the escape-VC controller.
type Options struct {
	// Timeout is the stuck-packet threshold in cycles before a packet
	// moves to escape routing; the paper uses a timer comparable to the
	// SB detection threshold. Default 34.
	Timeout int64
}

// vcTimer tracks how long the current occupant of one VC has been parked.
type vcTimer struct {
	pktID int64
	since int64
}

// Controller wires escape-VC recovery into a simulator.
type Controller struct {
	sim     *network.Sim
	updown  *routing.UpDown
	timeout int64
	// timers is indexed router×port×slot (flat), bounded by VC count.
	timers []vcTimer
	slots  int
}

// Attach installs escape-VC recovery on s using the given up/down tree
// for the escape paths. It registers the VC filter (escape VCs reserved),
// the output override (escaped packets follow the tree), and the timeout
// scan.
func Attach(s *network.Sim, ud *routing.UpDown, opt Options) *Controller {
	if opt.Timeout == 0 {
		opt.Timeout = 34
	}
	slots := s.Cfg.SlotsPerPort()
	c := &Controller{
		sim:     s,
		updown:  ud,
		timeout: opt.Timeout,
		timers:  make([]vcTimer, s.Topo.NumNodes()*geom.NumPorts*slots),
		slots:   slots,
	}
	s.VCFilter = func(p *network.Packet, dst geom.NodeID, in geom.Direction, vcIdx int) bool {
		if p.Escaped {
			return vcIdx == EscapeVCIndex
		}
		return vcIdx != EscapeVCIndex
	}
	s.OutputOverride = func(p *network.Packet, at geom.NodeID) (geom.Direction, bool) {
		if !p.Escaped {
			return geom.Invalid, false
		}
		d := c.updown.TreeNextHop(at, p.Dst)
		if d == geom.Invalid {
			// Destination unreachable over the tree (cannot happen within
			// a connected component); park rather than misroute.
			return geom.Local, p.Dst == at
		}
		return d, true
	}
	s.PostCycle = append(s.PostCycle, func(sim *network.Sim) { c.scan() })
	return c
}

// SetTree swaps the spanning tree used for escape paths — called after a
// runtime reconfiguration rebuilds the tree. Escaped packets immediately
// follow the new tree.
func (c *Controller) SetTree(ud *routing.UpDown) { c.updown = ud }

// scan promotes packets stuck longer than the timeout to escape routing.
func (c *Controller) scan() {
	s := c.sim
	now := s.Now
	for id := range s.Routers {
		r := &s.Routers[id]
		if r.Occupied() == 0 {
			continue
		}
		base := id * geom.NumPorts * c.slots
		for _, port := range geom.AllPorts {
			pbase := base + int(port)*c.slots
			for slot := 0; slot < c.slots; slot++ {
				p := r.In[port][slot].Pkt
				tm := &c.timers[pbase+slot]
				if p == nil || p.Escaped {
					tm.pktID = 0
					continue
				}
				if tm.pktID != p.ID {
					// New occupant: restart the timer.
					tm.pktID = p.ID
					tm.since = now
					continue
				}
				if now-tm.since >= c.timeout {
					p.Escaped = true
					s.Stats.EscapeTransfers++
					tm.pktID = 0
				}
			}
		}
	}
}
