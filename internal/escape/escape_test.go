package escape

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// enqueueClockwiseRing primes a 2x2 mesh with a guaranteed deadlock among
// the regular VCs (3 usable per vnet under the escape reservation).
func enqueueClockwiseRing(s *network.Sim, perNode int) int {
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	total := 0
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := s.Topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := s.Topo.Neighbor(mid, d2)
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	return total
}

func TestEscapeRecoversRingDeadlock(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ud := routing.NewUpDown(topo)
	Attach(s, ud, Options{Timeout: 20})
	total := enqueueClockwiseRing(s, 12)
	s.Run(20000)
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d (escape transfers %d)",
			s.Stats.Delivered, total, s.Stats.EscapeTransfers)
	}
	if s.Stats.EscapeTransfers == 0 {
		t.Fatal("expected packets to take the escape path")
	}
}

func TestEscapeVCsStayReserved(t *testing.T) {
	// Under normal (non-deadlocked) traffic, the escape VC slot of each
	// vnet must never hold a packet.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	ud := routing.NewUpDown(topo)
	Attach(s, ud, Options{Timeout: 1 << 40}) // effectively never escape
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(3))
	for cyc := 0; cyc < 500; cyc++ {
		for n := 0; n < 16; n++ {
			if rng.Float64() < 0.05 {
				dst := geom.NodeID(rng.Intn(16))
				if r, ok := min.Route(geom.NodeID(n), dst, rng); ok {
					s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), 5, r))
				}
			}
		}
		s.Step()
		for id := range s.Routers {
			r := &s.Routers[id]
			for _, port := range geom.AllPorts {
				for vnet := 0; vnet < s.Cfg.NumVnets; vnet++ {
					if r.In[port][vnet*s.Cfg.VCsPerVnet+EscapeVCIndex].Pkt != nil {
						t.Fatalf("cycle %d: escape VC occupied by regular traffic", cyc)
					}
				}
			}
		}
	}
	if s.Stats.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
}

func TestEscapedPacketsFollowTree(t *testing.T) {
	// Force a packet to escape immediately and verify it is delivered via
	// tree routing even though its embedded route is wrong.
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	ud := routing.NewUpDown(topo)
	Attach(s, ud, Options{Timeout: 5})
	// A bogus route pointing the wrong way: the packet will stall at its
	// first router (no, it will follow the route; block it instead).
	// Simpler: occupy the packet's desired next hop VCs forever by
	// stalling ejection at the route target, forcing the timeout.
	dst := topo.ID(geom.Coord{X: 3, Y: 3})
	src := topo.ID(geom.Coord{X: 0, Y: 0})
	min := routing.NewMinimal(topo)
	r, _ := min.Route(src, dst, nil)
	p := s.NewPacket(src, dst, 0, 1, r)
	// Stall the first hop: disable the link the route uses after
	// injection is impossible; instead make all VCs at the next router
	// busy by setting OutFreeAt far ahead on the source router's route
	// output — the packet then waits at the source and times out.
	s.Routers[src].OutFreeAt[r[0]] = 200
	s.Enqueue(p)
	s.Run(400)
	if p.DeliveredAt < 0 {
		t.Fatal("escaped packet not delivered")
	}
	if !p.Escaped {
		t.Fatal("packet should have escaped after the stall")
	}
	if s.Stats.EscapeTransfers != 1 {
		t.Fatalf("escape transfers = %d, want 1", s.Stats.EscapeTransfers)
	}
}

func TestEscapeHighLoadDrains(t *testing.T) {
	// The escape-VC scheme guarantees drain on connected irregular
	// topologies: escape paths form a tree (acyclic) with reserved VCs.
	for seed := int64(0); seed < 3; seed++ {
		topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 10, seed)
		min := routing.NewMinimal(topo)
		ud := routing.NewUpDown(topo)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(seed)))
		Attach(s, ud, Options{Timeout: 24})
		rng := rand.New(rand.NewSource(seed + 100))
		offered := int64(0)
		for cyc := 0; cyc < 4000; cyc++ {
			if cyc < 2500 {
				for n := 0; n < 36; n++ {
					if !topo.RouterAlive(geom.NodeID(n)) {
						continue
					}
					if rng.Float64() < 0.10 {
						dst := geom.NodeID(rng.Intn(36))
						r, ok := min.Route(geom.NodeID(n), dst, rng)
						if !ok {
							s.Drop()
							continue
						}
						ln := 1
						if rng.Intn(2) == 0 {
							ln = 5
						}
						s.Enqueue(s.NewPacket(geom.NodeID(n), dst, rng.Intn(3), ln, r))
						offered++
					}
				}
			}
			s.Step()
		}
		for i := 0; i < 200000 && s.InFlight()+s.QueuedPackets() > 0; i += 100 {
			s.Run(100)
		}
		if s.Stats.Delivered != offered {
			t.Fatalf("seed %d: delivered %d of %d (in flight %d, queued %d, escapes %d)",
				seed, s.Stats.Delivered, offered, s.InFlight(), s.QueuedPackets(),
				s.Stats.EscapeTransfers)
		}
	}
}

func TestTimerResetsOnMovement(t *testing.T) {
	// A slow but moving packet must not be forced into the escape path.
	topo := topology.NewMesh(8, 1)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	ud := routing.NewUpDown(topo)
	Attach(s, ud, Options{Timeout: 30})
	// Send a long stream: head-of-line packets wait a little at each hop
	// but keep moving.
	for i := 0; i < 20; i++ {
		s.Enqueue(s.NewPacket(0, 7, 0, 5, routing.Route{
			geom.East, geom.East, geom.East, geom.East, geom.East, geom.East, geom.East,
		}))
	}
	s.Run(800)
	if s.Stats.Delivered != 20 {
		t.Fatalf("delivered %d of 20", s.Stats.Delivered)
	}
	if s.Stats.EscapeTransfers != 0 {
		t.Fatalf("moving traffic escaped %d times; timers should reset on movement",
			s.Stats.EscapeTransfers)
	}
}
