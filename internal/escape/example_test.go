package escape_test

import (
	"fmt"
	"math/rand"

	"repro/internal/escape"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The escape-VC baseline: minimal deadlock-prone routes plus a reserved
// escape channel over the spanning tree for timed-out packets.
func ExampleAttach() {
	topo := topology.NewMesh(2, 2)
	sim := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ud := routing.NewUpDown(topo)
	escape.Attach(sim, ud, escape.Options{Timeout: 20})

	// A guaranteed deadlock: every node streams two hops clockwise.
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	total := 0
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		for k := 0; k < 12; k++ {
			sim.Enqueue(sim.NewPacket(n, topo.Neighbor(mid, d2), 0, 5, routing.Route{d1, d2}))
			total++
		}
	}
	sim.Run(20000)
	fmt.Println("delivered:", sim.Stats.Delivered == int64(total))
	fmt.Println("escape path used:", sim.Stats.EscapeTransfers > 0)
	// Output:
	// delivered: true
	// escape path used: true
}
