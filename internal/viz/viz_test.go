package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestOccupancyMap(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	topo.DisableRouter(4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	s.Enqueue(s.NewPacket(0, 2, 0, 5, routing.Route{geom.East, geom.East}))
	s.Step()
	var buf bytes.Buffer
	Occupancy(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "██") {
		t.Fatal("dead router not rendered")
	}
	if !strings.Contains(out, " 1") {
		t.Fatalf("occupied router not rendered:\n%s", out)
	}
	if !strings.Contains(out, " ·") {
		t.Fatal("empty routers not rendered")
	}
}

func TestFencesMap(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	Fences(&buf, s)
	if !strings.Contains(buf.String(), "(none)") {
		t.Fatal("empty fence list should say none")
	}
	buf.Reset()
	s.Routers[1].Fence = network.Fence{Active: true, In: geom.West, Out: geom.North, SrcID: 3}
	Fences(&buf, s)
	if !strings.Contains(buf.String(), "W→N") || !strings.Contains(buf.String(), "src R3") {
		t.Fatalf("fence not rendered: %q", buf.String())
	}
}

func TestRecoveryMapStates(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{})
	// Mark one bubble active and one full.
	bubbles := ctrl.BubbleRouters()
	s.Routers[bubbles[0]].Bubble.Active = true
	s.Routers[bubbles[1]].Bubble.VC.Pkt = s.NewPacket(0, 1, 0, 1, routing.Route{geom.East})
	var buf bytes.Buffer
	Recovery(&buf, s, ctrl)
	out := buf.String()
	for _, marker := range []string{" o", " A", " F", " ·"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("marker %q missing:\n%s", marker, out)
		}
	}
}

func TestRecoveryMapDeadSBRouter(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	topo.DisableRouter(topo.ID(geom.Coord{X: 1, Y: 1})) // an SB position
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	Recovery(&buf, s, nil)
	if !strings.Contains(buf.String(), " X") {
		t.Fatal("dead SB router should render as X")
	}
}

func TestSummaryDuringLiveRecovery(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ctrl := core.Attach(s, core.Options{TDD: 20})
	hops := map[geom.NodeID]geom.Direction{0: geom.North, 2: geom.East, 3: geom.South, 1: geom.West}
	for _, n := range []geom.NodeID{0, 2, 3, 1} {
		d1 := hops[n]
		mid := topo.Neighbor(n, d1)
		d2 := hops[mid]
		dst := topo.Neighbor(mid, d2)
		for k := 0; k < 12; k++ {
			s.Enqueue(s.NewPacket(n, dst, 0, 5, routing.Route{d1, d2}))
		}
	}
	// Run until a fence is up (mid-recovery), then render.
	sawFence := false
	for i := 0; i < 4000 && !sawFence; i++ {
		s.Step()
		for id := range s.Routers {
			if s.Routers[id].Fence.Active {
				sawFence = true
			}
		}
	}
	if !sawFence {
		t.Fatal("no recovery observed")
	}
	var buf bytes.Buffer
	Summary(&buf, s, ctrl)
	out := buf.String()
	if !strings.Contains(out, "fences") || strings.Contains(out, "(none)") {
		t.Fatalf("expected active fences in summary:\n%s", out)
	}
	if !strings.Contains(out, "FSM R3") {
		t.Fatalf("expected FSM line for router 3:\n%s", out)
	}
}
