// Package viz renders simulator state as ASCII maps — buffer occupancy,
// fences, bubbles, and recovery-FSM states over the mesh. It exists
// because debugging a wedged NoC means looking at exactly these maps;
// cmd/sbsim exposes them with -viz.
package viz

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
)

// Occupancy writes a per-router buffered-packet-count map. Dead routers
// render as "██", empty routers as " ·".
func Occupancy(w io.Writer, s *network.Sim) {
	fmt.Fprintln(w, "occupancy (packets buffered per router):")
	grid(w, s, func(n geom.NodeID) string {
		if !s.Topo.RouterAlive(n) {
			return "██"
		}
		occ := s.Routers[n].Occupied()
		switch {
		case occ == 0:
			return " ·"
		case occ > 99:
			return "++"
		default:
			return fmt.Sprintf("%2d", occ)
		}
	})
}

// Fences writes the is_deadlock fence map: routers with an active fence
// show the fenced turn as in→out compass letters.
func Fences(w io.Writer, s *network.Sim) {
	fmt.Fprintln(w, "fences (active is_deadlock restrictions, in→out):")
	any := false
	for id := range s.Routers {
		fe := s.Routers[id].Fence
		if fe.Active {
			any = true
			fmt.Fprintf(w, "  R%-3d %v  %v→%v (src R%d)\n",
				id, s.Topo.Coord(geom.NodeID(id)), fe.In, fe.Out, fe.SrcID)
		}
	}
	if !any {
		fmt.Fprintln(w, "  (none)")
	}
}

// Recovery writes the static-bubble map: placement, FSM state, and bubble
// occupancy. ctrl may be nil, in which case only bubble hardware state is
// shown.
func Recovery(w io.Writer, s *network.Sim, ctrl *core.Controller) {
	fmt.Fprintln(w, "static bubbles (·=none  o=idle  A=active  F=full  X=dead SB router):")
	grid(w, s, func(n geom.NodeID) string {
		if !core.HasStaticBubble(s.Topo.Coord(n)) {
			return " ·"
		}
		if !s.Topo.RouterAlive(n) {
			return " X"
		}
		b := &s.Routers[n].Bubble
		switch {
		case b.VC.Pkt != nil:
			return " F"
		case b.Active:
			return " A"
		default:
			return " o"
		}
	})
	if ctrl == nil {
		return
	}
	for _, n := range ctrl.BubbleRouters() {
		if st := ctrl.FSMState(n); st != core.StateOff {
			fmt.Fprintf(w, "  FSM R%-3d %v: %v\n", n, s.Topo.Coord(n), st)
		}
	}
}

// Summary writes all three maps.
func Summary(w io.Writer, s *network.Sim, ctrl *core.Controller) {
	Occupancy(w, s)
	Fences(w, s)
	Recovery(w, s, ctrl)
}

// grid renders one cell per mesh position, north row first.
func grid(w io.Writer, s *network.Sim, cell func(geom.NodeID) string) {
	topo := s.Topo
	for y := topo.Height() - 1; y >= 0; y-- {
		fmt.Fprintf(w, "%3d  ", y)
		for x := 0; x < topo.Width(); x++ {
			fmt.Fprint(w, cell(topo.ID(geom.Coord{X: x, Y: y})))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "     ")
	for x := 0; x < topo.Width(); x++ {
		fmt.Fprintf(w, "%2d", x%10)
	}
	fmt.Fprintln(w)
}
