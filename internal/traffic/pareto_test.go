package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestParetoSampleMean: the empirical mean of ParetoSample must match the
// analytic mean alpha*xm/(alpha-1). Shapes in (1,2) have infinite
// variance, so convergence is slow — the tolerance is loose but the seed
// is fixed, making the test deterministic.
func TestParetoSampleMean(t *testing.T) {
	for _, tc := range []struct{ alpha, xm float64 }{
		{1.4, 20}, {1.2, 40}, {1.9, 1}, {3, 10},
	} {
		rng := rand.New(rand.NewSource(11))
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := ParetoSample(rng, tc.alpha, tc.xm)
			if x < tc.xm {
				t.Fatalf("alpha=%v xm=%v: sample %v below scale", tc.alpha, tc.xm, x)
			}
			sum += x
		}
		want := ParetoMean(tc.alpha, tc.xm)
		got := sum / n
		// Heavy tails: accept 15% relative error at this sample size.
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("alpha=%v xm=%v: empirical mean %.2f vs analytic %.2f (rel err %.3f)",
				tc.alpha, tc.xm, got, want, rel)
		}
	}
}

// TestParetoTailHeavierThanExponential: the defining property of the
// on/off periods is their heavy tail. For Pareto(alpha=1.5, xm chosen so
// the mean is m), P[X > 5m] = (xm/5m)^1.5 ≈ 0.0172; for an exponential
// with the same mean it is e^-5 ≈ 0.0067. The empirical exceedance
// frequency at a fixed seed must sit clearly above the exponential's.
func TestParetoTailHeavierThanExponential(t *testing.T) {
	const alpha = 1.5
	const xm = 10.0
	mean := ParetoMean(alpha, xm) // 30
	thresh := 5 * mean

	rng := rand.New(rand.NewSource(17))
	const n = 20000
	exceed := 0
	for i := 0; i < n; i++ {
		if ParetoSample(rng, alpha, xm) > thresh {
			exceed++
		}
	}
	got := float64(exceed) / n
	expTail := math.Exp(-5) // ≈ 0.0067
	if got < 1.5*expTail {
		t.Fatalf("Pareto tail P[X>5·mean] = %.4f not heavier than exponential %.4f", got, expTail)
	}
	// And it should be near the analytic value (xm/thresh)^alpha ≈ 0.0172.
	want := math.Pow(xm/thresh, alpha)
	if math.Abs(got-want) > 0.5*want {
		t.Errorf("tail frequency %.4f far from analytic %.4f", got, want)
	}
}

// TestParetoOnOffMeanRate: over a long run the empirical injection rate
// (flits offered per node per cycle) must be within tolerance of
// MeanRate(). Run open-loop into a large mesh at a low rate so
// backpressure never rejects offers.
func TestParetoOnOffMeanRate(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	alive := topo.AliveRouters()
	min := routing.NewMinimal(topo)
	po := NewParetoOnOff(alive, min, NewUniformRandom(alive), 0.12, rand.New(rand.NewSource(23)))

	const cycles = 60000
	po.Run(s, cycles)

	want := po.MeanRate()
	if want <= 0 || want >= po.PeakRate {
		t.Fatalf("implausible analytic mean rate %v (peak %v)", want, po.PeakRate)
	}
	// Injected flits / (nodes × cycles). Self-traffic redraws make the
	// offered rate slightly below nominal; 15% tolerance covers that plus
	// heavy-tailed variance at this run length.
	got := float64(s.Stats.InjectedFlits) / (float64(len(alive)) * cycles)
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Errorf("empirical rate %.4f vs analytic %.4f (rel err %.3f)", got, want, rel)
	}
}

// TestParetoOnOffBurstiness: compare the dispersion of per-window
// injection counts against a Bernoulli injector at the same mean rate.
// Self-similar traffic must show a strictly larger index of dispersion
// (variance/mean) over coarse windows — that burstiness is the entire
// point of the process.
func TestParetoOnOffBurstiness(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alive := topo.AliveRouters()
	min := routing.NewMinimal(topo)

	perWindow := func(tick func(*network.Sim), s *network.Sim, windows, winLen int) []float64 {
		counts := make([]float64, windows)
		var prev int64
		for w := 0; w < windows; w++ {
			for i := 0; i < winLen; i++ {
				tick(s)
				s.Step()
			}
			counts[w] = float64(s.Stats.Offered - prev)
			prev = s.Stats.Offered
		}
		return counts
	}
	dispersion := func(xs []float64) float64 {
		var sum, sq float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		return sq / float64(len(xs)) / mean
	}

	sP := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	po := NewParetoOnOff(alive, min, NewUniformRandom(alive), 0.12, rand.New(rand.NewSource(23)))
	dPareto := dispersion(perWindow(po.Tick, sP, 200, 100))

	sB := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	inj := NewInjector(alive, min, NewUniformRandom(alive), po.MeanRate(), rand.New(rand.NewSource(23)))
	dBern := dispersion(perWindow(inj.Tick, sB, 200, 100))

	if dPareto < 2*dBern {
		t.Fatalf("Pareto on/off dispersion %.2f not clearly burstier than Bernoulli %.2f", dPareto, dBern)
	}
}

// TestParetoOnOffDeterminism: identically seeded processes drive
// byte-identical trajectories.
func TestParetoOnOffDeterminism(t *testing.T) {
	run := func() network.Stats {
		topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 8, 7)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
		alive := topo.AliveRouters()
		po := NewParetoOnOff(alive, routing.NewMinimal(topo), NewUniformRandom(alive), 0.2, rand.New(rand.NewSource(31)))
		po.Run(s, 5000)
		return s.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed Pareto runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Offered == 0 {
		t.Fatal("no packets injected")
	}
}

// TestParetoOnOffPhasesDecorrelated: the lazy start must not open with
// one synchronized fleet-wide burst — in the first few cycles only a
// duty-cycle-sized fraction of nodes should be ON.
func TestParetoOnOffPhasesDecorrelated(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	alive := topo.AliveRouters()
	po := NewParetoOnOff(alive, routing.NewMinimal(topo), NewUniformRandom(alive), 1.0, rand.New(rand.NewSource(9)))
	po.Tick(s)
	on := 0
	for _, b := range po.on {
		if b {
			on++
		}
	}
	frac := float64(on) / float64(len(po.on))
	duty := po.DutyCycle()
	if frac > 2*duty || frac == 0 {
		t.Fatalf("initial ON fraction %.2f vs duty cycle %.2f — phases look synchronized", frac, duty)
	}
}
