package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestTraceReplayExact: every record of a hand-written trace must enter
// the network at exactly its scheduled cycle and be delivered.
func TestTraceReplayExact(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	recs := []FlowRecord{
		{Cycle: 0, Src: 0, Dst: 15, Vnet: 0, Len: 1},
		{Cycle: 3, Src: 5, Dst: 10, Vnet: 2, Len: 5},
		{Cycle: 3, Src: 12, Dst: 3, Vnet: 1, Len: 2},
		{Cycle: 10, Src: 15, Dst: 0, Vnet: 0, Len: 1},
	}
	ti := NewTraceInjector(recs, routing.NewMinimal(topo), rand.New(rand.NewSource(2)))

	offeredAt := map[int64]int64{}
	for cyc := int64(0); cyc < 200; cyc++ {
		before := s.Stats.Offered
		ti.Tick(s)
		if d := s.Stats.Offered - before; d > 0 {
			offeredAt[cyc] = d
		}
		s.Step()
	}
	want := map[int64]int64{0: 1, 3: 2, 10: 1}
	for c, n := range want {
		if offeredAt[c] != n {
			t.Errorf("cycle %d: offered %d packets, want %d", c, offeredAt[c], n)
		}
	}
	if len(offeredAt) != len(want) {
		t.Errorf("packets offered at unexpected cycles: %v", offeredAt)
	}
	if !ti.Done() {
		t.Error("trace not done after all records fired")
	}
	if s.Stats.Delivered != int64(len(recs)) {
		t.Errorf("delivered %d of %d trace packets", s.Stats.Delivered, len(recs))
	}
}

// TestTraceReplayUnsortedInput: records given out of order replay in
// canonical cycle order (stable for ties), so trace files need no
// pre-sorting to be deterministic.
func TestTraceReplayUnsortedInput(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	recs := []FlowRecord{
		{Cycle: 9, Src: 1, Dst: 2, Len: 1},
		{Cycle: 0, Src: 2, Dst: 1, Len: 1},
		{Cycle: 4, Src: 3, Dst: 0, Len: 1},
	}
	run := func(rs []FlowRecord) network.Stats {
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
		ti := NewTraceInjector(rs, routing.NewMinimal(topo), rand.New(rand.NewSource(2)))
		ti.Run(s, 100)
		return s.Stats
	}
	sorted := []FlowRecord{recs[1], recs[2], recs[0]}
	if a, b := run(recs), run(sorted); a != b {
		t.Fatalf("unsorted trace diverged from sorted:\n%+v\n%+v", a, b)
	}
}

// TestTraceReplayDeterminism: a synthesized trace replayed twice with the
// same seeds produces byte-identical trajectories, including on an
// irregular topology where routing tie-breaks draw randomness.
func TestTraceReplayDeterminism(t *testing.T) {
	topo := topology.RandomIrregular(6, 6, topology.LinkFaults, 8, 7)
	alive := topo.AliveRouters()
	recs := SynthesizeTrace(alive, NewUniformRandom(alive), 0.1, 2000, 13)
	if len(recs) == 0 {
		t.Fatal("synthesized trace is empty")
	}
	run := func() network.Stats {
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
		ti := NewTraceInjector(recs, routing.NewMinimal(topo), rand.New(rand.NewSource(4)))
		ti.Run(s, 6000)
		return s.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed replays diverged:\n%+v\n%+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("replay delivered nothing")
	}
}

// TestTraceReplayLoop: loop mode re-fires the trace each period, turning
// a short trace into a periodic workload.
func TestTraceReplayLoop(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	recs := []FlowRecord{
		{Cycle: 0, Src: 0, Dst: 15, Len: 1},
		{Cycle: 5, Src: 15, Dst: 0, Len: 1},
	}
	ti := NewTraceInjector(recs, routing.NewMinimal(topo), rand.New(rand.NewSource(2)))
	ti.Loop = 20
	for i := 0; i < 100; i++ {
		ti.Tick(s)
		s.Step()
	}
	// 5 full periods in 100 cycles: cycles 0,5,20,25,...,85 → 10 packets.
	if s.Stats.Offered != 10 {
		t.Fatalf("offered %d packets over 5 loop periods, want 10", s.Stats.Offered)
	}
	if ti.Done() {
		t.Fatal("loop-mode trace must never report done")
	}
}

// TestTraceReplayDropsDeadSources: records sourced at a dead router are
// dropped at injection, not silently skipped or crashed on.
func TestTraceReplayDropsDeadSources(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	topo.DisableRouter(5)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	recs := []FlowRecord{
		{Cycle: 0, Src: 5, Dst: 0, Len: 1},  // dead source
		{Cycle: 0, Src: 0, Dst: 0, Len: 1},  // self-traffic
		{Cycle: 1, Src: 0, Dst: 15, Len: 1}, // fine
	}
	ti := NewTraceInjector(recs, routing.NewMinimal(topo), rand.New(rand.NewSource(2)))
	ti.Run(s, 100)
	if s.Stats.DroppedUnreachable != 2 {
		t.Fatalf("dropped %d, want 2", s.Stats.DroppedUnreachable)
	}
	if s.Stats.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", s.Stats.Delivered)
	}
}

// TestTenantMixDeterminismAndIsolation: the multi-tenant mix is
// seed-deterministic, and each tenant's arrival stream is independent of
// the other tenants' presence — removing one tenant leaves the others'
// offered traffic unchanged (per-tenant sub-seeds, not a shared stream).
func TestTenantMixDeterminismAndIsolation(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	alive := topo.AliveRouters()
	min := routing.NewMinimal(topo)
	classes := []TenantClass{
		{Name: "latency", Pattern: NewUniformRandom(alive), RateFlits: 0.05, CtrlFraction: 0.9, CtrlVnet: 0, DataVnet: 1},
		{Name: "bulk", Pattern: BitComplement{Width: 6, Height: 6}, RateFlits: 0.2, CtrlFraction: 0.1, DataLen: 5, CtrlVnet: 2, DataVnet: 2},
	}

	run := func(cs []TenantClass) network.Stats {
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
		m := NewTenantMix(alive, min, cs, 77)
		for i := 0; i < 3000; i++ {
			m.Tick(s)
			s.Step()
		}
		return s.Stats
	}

	a, b := run(classes), run(classes)
	if a != b {
		t.Fatalf("same-seed tenant mixes diverged:\n%+v\n%+v", a, b)
	}
	if a.Offered == 0 {
		t.Fatal("mix offered nothing")
	}

	// Isolation: tenant 0 alone must offer the same packet count whether
	// or not tenant 1 exists in the mix (its sub-seed depends only on its
	// own index and the mix seed).
	solo := run(classes[:1])
	sP := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	mBoth := NewTenantMix(alive, min, classes, 77)
	// Count only tenant 0's offers by ticking its injector alone.
	for i := 0; i < 3000; i++ {
		mBoth.injs[0].Tick(sP)
		sP.Step()
	}
	if solo.Offered != sP.Stats.Offered {
		t.Fatalf("tenant 0 offered %d alone vs %d in the mix — streams not isolated",
			solo.Offered, sP.Stats.Offered)
	}
}

// TestSynthesizeTraceDeterminism: trace synthesis is a pure function of
// its arguments.
func TestSynthesizeTraceDeterminism(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	alive := topo.AliveRouters()
	a := SynthesizeTrace(alive, NewUniformRandom(alive), 0.2, 500, 5)
	b := SynthesizeTrace(alive, NewUniformRandom(alive), 0.2, 500, 5)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	var _ geom.NodeID = a[0].Src
}
