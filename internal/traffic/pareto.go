package traffic

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// ParetoSample draws from a Pareto distribution with shape alpha and
// scale (minimum) xm: P[X > t] = (xm/t)^alpha for t >= xm. For
// 1 < alpha < 2 the distribution has finite mean alpha*xm/(alpha-1) but
// infinite variance — the heavy-tailed on/off periods whose aggregate
// produces self-similar (long-range-dependent) traffic.
func ParetoSample(rng *rand.Rand, alpha, xm float64) float64 {
	// Inverse-CDF: X = xm * U^(-1/alpha), U uniform in (0, 1].
	u := 1 - rng.Float64() // (0, 1]
	return xm * math.Pow(u, -1/alpha)
}

// ParetoMean returns the mean of the Pareto(alpha, xm) distribution
// (infinite for alpha <= 1).
func ParetoMean(alpha, xm float64) float64 {
	if alpha <= 1 {
		return math.Inf(1)
	}
	return alpha * xm / (alpha - 1)
}

// ParetoOnOff drives bursty open-loop traffic: each source node
// alternates ON and OFF periods with Pareto-distributed lengths,
// injecting at PeakRate (flits/node/cycle) only while ON. With shape
// parameters in (1, 2) the period lengths are heavy-tailed and the
// aggregate process is self-similar — the canonical model for measured
// LAN/datacenter burstiness (Willinger et al.), and a much harsher
// arrival process for recovery schemes than Bernoulli injection at the
// same mean rate: deep multi-thousand-cycle bursts pile whole windows of
// packets onto whatever dependency cycles exist.
//
// All stochastic choices draw from the single rng passed at
// construction, in deterministic per-node order, so identically seeded
// runs are byte-identical.
type ParetoOnOff struct {
	inj *Injector
	// PeakRate is the offered load in flits/node/cycle during ON periods.
	PeakRate float64
	// AlphaOn/AlphaOff are the Pareto shapes of the ON and OFF period
	// lengths; MinOn/MinOff the minimum period lengths in cycles.
	AlphaOn, AlphaOff float64
	MinOn, MinOff     float64

	// Per-node burst state: whether the node is in an ON period and how
	// many whole cycles of it remain. Initialized lazily on the first
	// Tick (after the caller has finished adjusting the shape fields).
	on        []bool
	remaining []int64
	started   bool
}

// NewParetoOnOff builds the process over the given source nodes. alg
// routes packets, p picks destinations, peakRate is the ON-period
// offered load. Shapes default to the classic self-similar setting
// alphaOn=1.4, alphaOff=1.2 (Hurst ≈ 0.8); minimum periods default to
// 20-cycle bursts separated by 40-cycle gaps.
func NewParetoOnOff(sources []geom.NodeID, alg routing.Algorithm, p Pattern, peakRate float64, rng *rand.Rand) *ParetoOnOff {
	po := &ParetoOnOff{
		inj:       NewInjector(sources, alg, p, peakRate, rng),
		PeakRate:  peakRate,
		AlphaOn:   1.4,
		AlphaOff:  1.2,
		MinOn:     20,
		MinOff:    40,
		on:        make([]bool, len(sources)),
		remaining: make([]int64, len(sources)),
	}
	return po
}

// Injector exposes the underlying injector for packet-mix configuration
// (CtrlFraction, DataLen, vnets).
func (po *ParetoOnOff) Injector() *Injector { return po.inj }

// MeanRate returns the long-run offered load in flits/node/cycle:
// PeakRate × E[on] / (E[on] + E[off]).
func (po *ParetoOnOff) MeanRate() float64 {
	eon := ParetoMean(po.AlphaOn, po.MinOn)
	eoff := ParetoMean(po.AlphaOff, po.MinOff)
	if math.IsInf(eon, 1) || math.IsInf(eoff, 1) {
		return 0
	}
	return po.PeakRate * eon / (eon + eoff)
}

// DutyCycle returns E[on] / (E[on] + E[off]).
func (po *ParetoOnOff) DutyCycle() float64 {
	eon := ParetoMean(po.AlphaOn, po.MinOn)
	eoff := ParetoMean(po.AlphaOff, po.MinOff)
	return eon / (eon + eoff)
}

// start decorrelates the nodes' initial phases: each node begins ON with
// probability DutyCycle and part-way through its first period, so the
// fleet does not open with one synchronized burst (which would both skew
// the measured mean rate and phase-lock every node's bursts).
func (po *ParetoOnOff) start() {
	po.started = true
	in := po.inj
	duty := po.DutyCycle()
	for i := range in.sources {
		po.on[i] = in.rng.Float64() < duty
		alpha, xm := po.AlphaOff, po.MinOff
		if po.on[i] {
			alpha, xm = po.AlphaOn, po.MinOn
		}
		period := int64(math.Ceil(ParetoSample(in.rng, alpha, xm)))
		po.remaining[i] = 1 + int64(in.rng.Float64()*float64(period))
	}
}

// Tick advances every node's on/off process by one cycle and offers
// traffic from the nodes currently in an ON period.
func (po *ParetoOnOff) Tick(s *network.Sim) {
	if !po.started {
		po.start()
	}
	in := po.inj
	pPkt := po.PeakRate / in.meanLen()
	for i, src := range in.sources {
		if po.remaining[i] <= 0 {
			// Period expired: toggle state and draw the next length.
			po.on[i] = !po.on[i]
			alpha, xm := po.AlphaOff, po.MinOff
			if po.on[i] {
				alpha, xm = po.AlphaOn, po.MinOn
			}
			po.remaining[i] = int64(math.Ceil(ParetoSample(in.rng, alpha, xm)))
		}
		po.remaining[i]--
		if po.on[i] {
			in.offer(s, src, pPkt)
		}
	}
}

// Run drives the simulator for the given number of cycles.
func (po *ParetoOnOff) Run(s *network.Sim, cycles int) {
	for i := 0; i < cycles; i++ {
		po.Tick(s)
		s.Step()
	}
}
