package traffic

import (
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// FlowRecord is one packet of a recorded per-flow trace: inject a
// Len-flit packet from Src to Dst on Vnet at cycle Cycle (relative to
// the start of the replay).
type FlowRecord struct {
	Cycle int64
	Src   geom.NodeID
	Dst   geom.NodeID
	Vnet  int
	Len   int
}

// TraceInjector replays a per-flow trace into a simulator: each Tick
// enqueues every record whose cycle has arrived, routing it with the
// configured algorithm. Replay is seed-deterministic: record order is
// canonical (stable-sorted by cycle, ties in input order) and the only
// randomness is the routing algorithm's tie-breaking, drawn from the rng
// passed at construction.
type TraceInjector struct {
	recs []FlowRecord
	alg  routing.Algorithm
	rng  *rand.Rand
	// Loop, when positive, replays the trace again every Loop cycles
	// (records re-fire at Cycle + k*Loop), turning a finite trace into a
	// periodic workload. Zero replays once.
	Loop int64

	next     int
	offset   int64
	routeBuf routing.Route
}

// NewTraceInjector prepares a replay of recs. The slice is copied and
// canonicalized; the caller keeps its buffer.
func NewTraceInjector(recs []FlowRecord, alg routing.Algorithm, rng *rand.Rand) *TraceInjector {
	cp := append([]FlowRecord(nil), recs...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Cycle < cp[j].Cycle })
	return &TraceInjector{recs: cp, alg: alg, rng: rng}
}

// Remaining returns the number of records not yet injected in the
// current pass.
func (ti *TraceInjector) Remaining() int { return len(ti.recs) - ti.next }

// Done reports whether the whole trace has been injected (never true in
// loop mode).
func (ti *TraceInjector) Done() bool { return ti.Loop <= 0 && ti.next >= len(ti.recs) }

// Tick injects every record due at or before the current cycle. Records
// whose source is dead or whose destination is unreachable are dropped
// at the source (counted by Stats.DroppedUnreachable), mirroring the
// synthetic injector's policy.
func (ti *TraceInjector) Tick(s *network.Sim) {
	for {
		if ti.next >= len(ti.recs) {
			if ti.Loop <= 0 || len(ti.recs) == 0 {
				return
			}
			ti.next = 0
			ti.offset += ti.Loop
		}
		rec := &ti.recs[ti.next]
		if rec.Cycle+ti.offset > s.Now {
			return
		}
		ti.next++
		ti.inject(s, rec)
	}
}

func (ti *TraceInjector) inject(s *network.Sim, rec *FlowRecord) {
	if rec.Src == rec.Dst || !s.Topo.RouterAlive(rec.Src) {
		s.Drop()
		return
	}
	route, ok := routing.AppendRoute(ti.alg, ti.routeBuf[:0], rec.Src, rec.Dst, ti.rng)
	if !ok {
		s.Drop()
		return
	}
	ln := rec.Len
	if ln < 1 {
		ln = 1
	}
	s.Enqueue(s.NewPacket(rec.Src, rec.Dst, rec.Vnet, ln, route))
	if s.PoolingEnabled() {
		ti.routeBuf = route[:0]
	} else {
		ti.routeBuf = nil
	}
}

// Run drives the simulator until the trace is exhausted plus drain
// cycles, or maxCycles, whichever comes first.
func (ti *TraceInjector) Run(s *network.Sim, maxCycles int) {
	for i := 0; i < maxCycles; i++ {
		ti.Tick(s)
		s.Step()
		if ti.Done() && s.InFlight() == 0 && s.QueuedPackets() == 0 {
			return
		}
	}
}

// SynthesizeTrace generates a per-flow trace from a spatial pattern and
// a Bernoulli arrival process — a stand-in for recorded application
// traces that keeps the replay path exercised end-to-end without
// external trace files. Deterministic for a fixed seed.
func SynthesizeTrace(sources []geom.NodeID, p Pattern, rateFlits float64, cycles int, seed int64) []FlowRecord {
	rng := rand.New(rand.NewSource(seed))
	meanLen := 0.5*1 + 0.5*5
	pPkt := rateFlits / meanLen
	var recs []FlowRecord
	for c := 0; c < cycles; c++ {
		for _, src := range sources {
			if rng.Float64() >= pPkt {
				continue
			}
			dst := p.Dest(src, rng)
			if dst == src {
				continue
			}
			vnet, ln := 0, 1
			if rng.Float64() >= 0.5 {
				vnet, ln = 2, 5
			}
			recs = append(recs, FlowRecord{Cycle: int64(c), Src: src, Dst: dst, Vnet: vnet, Len: ln})
		}
	}
	return recs
}

// TenantClass describes one tenant's traffic in a multi-tenant mix: its
// own spatial pattern, offered load, packet mix, and vnet assignment
// (tenants typically map to distinct message classes).
type TenantClass struct {
	Name         string
	Pattern      Pattern
	RateFlits    float64
	CtrlFraction float64 // default 0.5
	DataLen      int     // default 5
	CtrlVnet     int
	DataVnet     int
}

// TenantMix drives several tenant classes over one simulator: each Tick
// offers every tenant's traffic independently. Per-tenant injectors draw
// from decorrelated sub-streams of the mix seed, so adding or reordering
// tenants never perturbs another tenant's arrival sequence.
type TenantMix struct {
	classes []TenantClass
	injs    []*Injector
}

// NewTenantMix builds the mix over the given source nodes.
func NewTenantMix(sources []geom.NodeID, alg routing.Algorithm, classes []TenantClass, seed int64) *TenantMix {
	m := &TenantMix{classes: append([]TenantClass(nil), classes...)}
	for i, tc := range m.classes {
		// Golden-ratio stride (as int64) decorrelates per-tenant streams.
		const stride = -0x61c8864680b583eb // 0x9e3779b97f4a7c15
		sub := seed + int64(i+1)*stride
		inj := NewInjector(sources, alg, tc.Pattern, tc.RateFlits, rand.New(rand.NewSource(sub)))
		if tc.CtrlFraction > 0 {
			inj.CtrlFraction = tc.CtrlFraction
		}
		if tc.DataLen > 0 {
			inj.DataLen = tc.DataLen
		}
		inj.CtrlVnet = tc.CtrlVnet
		if tc.DataVnet > 0 {
			inj.DataVnet = tc.DataVnet
		}
		m.injs = append(m.injs, inj)
	}
	return m
}

// Classes returns the configured tenant classes.
func (m *TenantMix) Classes() []TenantClass { return m.classes }

// Tick offers one cycle of every tenant's traffic.
func (m *TenantMix) Tick(s *network.Sim) {
	for _, inj := range m.injs {
		inj.Tick(s)
	}
}
