package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestUniformRandomCoversAllDestinations(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	u := NewUniformRandom(topo.AliveRouters())
	rng := rand.New(rand.NewSource(1))
	seen := map[geom.NodeID]int{}
	const n = 16000
	for i := 0; i < n; i++ {
		seen[u.Dest(0, rng)]++
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d destinations, want 16", len(seen))
	}
	for dst, cnt := range seen {
		frac := float64(cnt) / n
		if math.Abs(frac-1.0/16) > 0.01 {
			t.Errorf("destination %v frequency %.3f, want ~0.0625", dst, frac)
		}
	}
}

func TestUniformRandomPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformRandom(nil)
}

func TestBitComplement(t *testing.T) {
	b := BitComplement{Width: 8, Height: 8}
	cases := map[geom.Coord]geom.Coord{
		{X: 0, Y: 0}: {X: 7, Y: 7},
		{X: 7, Y: 7}: {X: 0, Y: 0},
		{X: 2, Y: 5}: {X: 5, Y: 2},
		{X: 3, Y: 3}: {X: 4, Y: 4},
	}
	for src, want := range cases {
		if got := b.Dest(src.IDOf(8), nil); got != want.IDOf(8) {
			t.Errorf("bit complement of %v = %v, want %v", src, got.CoordOf(8), want)
		}
	}
	// Involution property.
	for id := geom.NodeID(0); id < 64; id++ {
		if b.Dest(b.Dest(id, nil), nil) != id {
			t.Fatalf("bit complement not an involution at %v", id)
		}
	}
}

func TestTranspose(t *testing.T) {
	tr := Transpose{Width: 8}
	src := geom.Coord{X: 2, Y: 5}.IDOf(8)
	if got := tr.Dest(src, nil); got != (geom.Coord{X: 5, Y: 2}).IDOf(8) {
		t.Fatalf("transpose = %v", got.CoordOf(8))
	}
	for id := geom.NodeID(0); id < 64; id++ {
		if tr.Dest(tr.Dest(id, nil), nil) != id {
			t.Fatal("transpose not an involution")
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	h := Hotspot{Spot: 5, Fraction: 0.3, Uniform: NewUniformRandom(topo.AliveRouters())}
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if h.Dest(0, rng) == 5 {
			hits++
		}
	}
	frac := float64(hits) / n
	// Spot also receives ~1/16 of the uniform share.
	want := 0.3 + 0.7/16
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("hotspot fraction %.3f, want ~%.3f", frac, want)
	}
}

func TestPatternNames(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	u := NewUniformRandom(topo.AliveRouters())
	if u.Name() != "uniform_random" ||
		(BitComplement{}).Name() != "bit_complement" ||
		(Transpose{}).Name() != "transpose" ||
		(Hotspot{Uniform: u}).Name() != "hotspot" {
		t.Fatal("unexpected pattern names")
	}
}

func TestInjectorOfferedRate(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(3)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(4))
	inj := NewInjector(topo.AliveRouters(), min, NewUniformRandom(topo.AliveRouters()), 0.09, rng)
	const cycles = 3000
	inj.Run(s, cycles)
	// Offered flits per node per cycle should approximate the target
	// (self-traffic skips depress it slightly: 1/64 of draws).
	var flits float64 = float64(s.Stats.Offered) * inj.meanLen()
	rate := flits / float64(cycles) / 64
	if math.Abs(rate-0.09*63/64) > 0.01 {
		t.Fatalf("offered rate %.4f, want ~%.4f", rate, 0.09*63.0/64)
	}
}

func TestInjectorDropsUnreachable(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	topo.DisableLink(1, geom.East)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(5)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(6))
	inj := NewInjector(topo.AliveRouters(), min, NewUniformRandom(topo.AliveRouters()), 0.5, rng)
	inj.Run(s, 2000)
	if s.Stats.DroppedUnreachable == 0 {
		t.Fatal("expected drops across the cut")
	}
	if s.Stats.Delivered == 0 {
		t.Fatal("expected deliveries within components")
	}
}

func TestInjectorPacketMix(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(7)))
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(8))
	inj := NewInjector(topo.AliveRouters(), min, NewUniformRandom(topo.AliveRouters()), 0.12, rng)
	inj.Run(s, 4000)
	s.Run(500) // drain
	if s.Stats.Delivered != s.Stats.Offered {
		t.Fatalf("drain incomplete: %d of %d", s.Stats.Delivered, s.Stats.Offered)
	}
	// Flit link cycles / delivered ≈ meanLen × avg hops; just check both
	// classes flowed by looking at per-vnet evidence via total flit count
	// exceeding packet count (data packets are 5 flits).
	if s.Stats.LinkCycles[network.ClassFlit] <= s.Stats.Delivered {
		t.Fatal("expected multi-flit packets in the mix")
	}
}

func TestAppProfilesSane(t *testing.T) {
	all := append(Rodinia(), Parsec()...)
	names := map[string]bool{}
	for _, p := range all {
		if p.Name == "" || p.RateFlits <= 0 || p.WorkPackets <= 0 || p.BurstLen <= 0 {
			t.Fatalf("profile %+v malformed", p)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
	}
	if len(Rodinia()) != 5 {
		t.Fatal("Fig. 12 uses five Rodinia workloads")
	}
	// PARSEC rates are an order of magnitude below Rodinia's heavy hitters.
	for _, p := range Parsec() {
		if p.RateFlits > 0.03 {
			t.Fatalf("PARSEC profile %s rate %.3f too high", p.Name, p.RateFlits)
		}
	}
}

func TestAppRunCompletesOnHealthyMesh(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(9)))
	core.Attach(s, core.Options{})
	min := routing.NewMinimal(topo)
	rng := rand.New(rand.NewSource(10))
	run := NewAppRun(s, min, Parsec()[0], rng)
	res := run.Run(s, 400000)
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if res.Throughput <= 0 || res.Runtime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Delivered < int64(run.Profile.WorkPackets) {
		t.Fatalf("delivered %d < work %d", res.Delivered, run.Profile.WorkPackets)
	}
}

func TestAppRunDeterministic(t *testing.T) {
	run := func() Result {
		topo := topology.NewMesh(6, 6)
		s := network.New(topo, network.Config{}, rand.New(rand.NewSource(11)))
		min := routing.NewMinimal(topo)
		rng := rand.New(rand.NewSource(12))
		return NewAppRun(s, min, Rodinia()[2], rng).Run(s, 200000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("app runs differ: %+v vs %+v", a, b)
	}
}

func TestCenterMostPrefersCenter(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(13)))
	got := centerMost(s, topo.AliveRouters())
	if got != topo.ID(geom.Coord{X: 3, Y: 3}) {
		t.Fatalf("centerMost = %v", got)
	}
	// With the center dead, a neighbor is picked.
	topo.DisableRouter(got)
	got2 := centerMost(s, topo.AliveRouters())
	if geom.ManhattanDistance(topo.Coord(got2), geom.Coord{X: 3, Y: 3}) != 1 {
		t.Fatalf("fallback centerMost = %v", got2)
	}
}
