package traffic

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// AppProfile is a synthetic stand-in for a full-system application trace
// (PARSEC 2.0 / Rodinia in the paper). The parameters encode the
// qualitative properties the paper reports: PARSEC workloads inject an
// order of magnitude below network saturation due to high L1 hit rates;
// Hadoop has heavy collective (hotspot) traffic that saturates every
// design early; BPlus and srad are bandwidth-hungry. Runtime is measured
// as cycles to deliver a fixed amount of work, throughput as delivered
// packets per cycle.
type AppProfile struct {
	Name string
	// RateFlits is the per-node offered load in flits/node/cycle during
	// compute phases.
	RateFlits float64
	// HotspotFraction routes this fraction of packets to a fixed node
	// (memory-controller-style collectives).
	HotspotFraction float64
	// BurstLen and IdleLen alternate: BurstLen cycles at RateFlits, then
	// IdleLen cycles silent, modeling phase behaviour. IdleLen 0 means a
	// steady stream.
	BurstLen, IdleLen int
	// CtrlFraction is the 1-flit (request/coherence) packet share.
	CtrlFraction float64
	// WorkPackets is the fixed work per run: the run completes when this
	// many packets have been delivered.
	WorkPackets int
	// OutstandingWindow, when positive, makes the run closed-loop: each
	// node keeps at most this many requests in flight (an MSHR-style
	// window), so network latency throttles issue rate — the coupling
	// through which path stretch becomes application runtime, as in the
	// paper's full-system PARSEC runs. Zero keeps the open-loop model.
	OutstandingWindow int
	// ThinkTime is the compute delay (cycles) between a request's
	// completion and the node's next issue in closed-loop mode: runtime
	// per request ≈ ThinkTime + network round trip, so the network's
	// latency share is ThinkTime-controlled.
	ThinkTime int
}

// Rodinia returns the five Rodinia profiles used in Fig. 12.
func Rodinia() []AppProfile {
	return []AppProfile{
		// Hadoop: heavy collective traffic that saturates all designs
		// early (Fig. 12 shows no scheme differentiates on it).
		{Name: "Hadoop", RateFlits: 0.40, HotspotFraction: 0.5, BurstLen: 400, IdleLen: 0, CtrlFraction: 0.3, WorkPackets: 3000},
		// BPlus: bandwidth-hungry streaming.
		{Name: "BPlus", RateFlits: 0.20, HotspotFraction: 0.1, BurstLen: 300, IdleLen: 100, CtrlFraction: 0.4, WorkPackets: 2500},
		// kmeans: moderate, bursty.
		{Name: "kmeans", RateFlits: 0.12, HotspotFraction: 0.1, BurstLen: 200, IdleLen: 200, CtrlFraction: 0.5, WorkPackets: 2000},
		// srad: bandwidth-hungry stencil.
		{Name: "srad", RateFlits: 0.18, HotspotFraction: 0.05, BurstLen: 300, IdleLen: 100, CtrlFraction: 0.4, WorkPackets: 2500},
		// BFS: irregular, lighter.
		{Name: "BFS", RateFlits: 0.08, HotspotFraction: 0.15, BurstLen: 150, IdleLen: 250, CtrlFraction: 0.6, WorkPackets: 1500},
	}
}

// Parsec returns PARSEC-like profiles for Fig. 13: low injection rates
// (an order of magnitude under saturation) with coherence-style control
// traffic.
func Parsec() []AppProfile {
	return []AppProfile{
		{Name: "blackscholes", RateFlits: 0.010, HotspotFraction: 0.2, BurstLen: 500, IdleLen: 100, CtrlFraction: 0.6, WorkPackets: 1200, OutstandingWindow: 1, ThinkTime: 120},
		{Name: "canneal", RateFlits: 0.025, HotspotFraction: 0.2, BurstLen: 400, IdleLen: 150, CtrlFraction: 0.6, WorkPackets: 1500, OutstandingWindow: 1, ThinkTime: 45},
		{Name: "fluidanimate", RateFlits: 0.015, HotspotFraction: 0.15, BurstLen: 400, IdleLen: 200, CtrlFraction: 0.6, WorkPackets: 1200, OutstandingWindow: 1, ThinkTime: 75},
		{Name: "swaptions", RateFlits: 0.008, HotspotFraction: 0.1, BurstLen: 600, IdleLen: 100, CtrlFraction: 0.6, WorkPackets: 1000, OutstandingWindow: 1, ThinkTime: 160},
	}
}

// AppRun drives one application profile over a simulator until the work
// completes or maxCycles elapse.
type AppRun struct {
	Profile AppProfile
	inj     *Injector
	phase   int // cycle counter within the burst/idle period
	// outstanding tracks each node's in-flight requests in closed-loop
	// mode by packet id (packets are pool-recycled at delivery, so
	// holding *Packet across cycles is forbidden); doneAt latches each
	// tracked request's delivery cycle via an OnDeliver chain, -1 while
	// in flight. nextIssueAt is the earliest cycle a node may issue
	// again (think time after a completion).
	outstanding map[geom.NodeID][]int64
	doneAt      map[int64]int64
	hooked      bool
	nextIssueAt map[geom.NodeID]int64
	rng         *rand.Rand
	pattern     Pattern
	alg         routing.Algorithm
	routeBuf    routing.Route
}

// NewAppRun prepares a run of profile p on the alive nodes of s's
// topology, using alg for routes. The hotspot is the alive router closest
// to the mesh center (a memory-controller stand-in).
func NewAppRun(s *network.Sim, alg routing.Algorithm, p AppProfile, rng *rand.Rand) *AppRun {
	alive := s.Topo.AliveRouters()
	uniform := NewUniformRandom(alive)
	var pattern Pattern = uniform
	if p.HotspotFraction > 0 {
		pattern = Hotspot{Spot: centerMost(s, alive), Fraction: p.HotspotFraction, Uniform: uniform}
	}
	inj := NewInjector(alive, alg, pattern, p.RateFlits, rng)
	inj.CtrlFraction = p.CtrlFraction
	return &AppRun{
		Profile:     p,
		inj:         inj,
		outstanding: make(map[geom.NodeID][]int64),
		doneAt:      make(map[int64]int64),
		nextIssueAt: make(map[geom.NodeID]int64),
		rng:         rng,
		pattern:     pattern,
		alg:         alg,
	}
}

// hookDeliveries chains onto s.OnDeliver to latch the delivery cycle of
// tracked requests; delivery is the last moment the *Packet may be read
// (the pool recycles it immediately after the hook returns).
func (a *AppRun) hookDeliveries(s *network.Sim) {
	if a.hooked {
		return
	}
	a.hooked = true
	prev := s.OnDeliver
	s.OnDeliver = func(p *network.Packet) {
		if prev != nil {
			prev(p)
		}
		if _, ok := a.doneAt[p.ID]; ok {
			a.doneAt[p.ID] = p.DeliveredAt
		}
	}
}

// tickClosedLoop issues at most one request per node per cycle: a node
// issues when its window has room and its think time since the last
// completion has elapsed, so per-request cost ≈ ThinkTime + round trip.
func (a *AppRun) tickClosedLoop(s *network.Sim, budget int64) int64 {
	p := a.Profile
	a.hookDeliveries(s)
	issued := int64(0)
	for _, src := range s.Topo.AliveRouters() {
		// Retire completed requests and start the think timer. A request
		// retires once its latched delivery cycle has passed — the same
		// condition the pre-pooling code read off the retained packet.
		live := a.outstanding[src][:0]
		for _, id := range a.outstanding[src] {
			if done := a.doneAt[id]; done >= 0 && done <= s.Now {
				a.nextIssueAt[src] = done + int64(p.ThinkTime)
				delete(a.doneAt, id)
			} else {
				live = append(live, id)
			}
		}
		a.outstanding[src] = live
		if budget-issued <= 0 || len(live) >= p.OutstandingWindow {
			continue
		}
		if s.Now < a.nextIssueAt[src] {
			continue
		}
		dst := a.pattern.Dest(src, a.rng)
		if dst == src {
			continue
		}
		route, ok := routing.AppendRoute(a.alg, a.routeBuf[:0], src, dst, a.rng)
		if !ok {
			s.Drop()
			continue
		}
		vnet, ln := a.inj.CtrlVnet, 1
		if a.rng.Float64() >= p.CtrlFraction {
			vnet, ln = a.inj.DataVnet, a.inj.DataLen
		}
		pkt := s.NewPacket(src, dst, vnet, ln, route)
		if s.PoolingEnabled() {
			a.routeBuf = route[:0]
		} else {
			a.routeBuf = nil
		}
		s.Enqueue(pkt)
		a.doneAt[pkt.ID] = -1
		a.outstanding[src] = append(a.outstanding[src], pkt.ID)
		issued++
	}
	return issued
}

// centerMost returns the alive router closest to the mesh center.
func centerMost(s *network.Sim, alive []geom.NodeID) geom.NodeID {
	cx, cy := (s.Topo.Width()-1)/2, (s.Topo.Height()-1)/2
	best := alive[0]
	bestD := 1 << 30
	for _, n := range alive {
		d := geom.ManhattanDistance(s.Topo.Coord(n), geom.Coord{X: cx, Y: cy})
		if d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// Result summarizes a completed application run.
type Result struct {
	Runtime    int64 // cycles until WorkPackets were delivered (or horizon)
	Delivered  int64
	Completed  bool
	Throughput float64 // delivered packets per cycle
	AvgLatency float64
}

// Run executes the application until its work completes or maxCycles
// elapse, and reports the outcome.
func (a *AppRun) Run(s *network.Sim, maxCycles int) Result {
	p := a.Profile
	period := p.BurstLen + p.IdleLen
	start := s.Now
	startDelivered := s.Stats.Delivered
	startOffered := s.Stats.Offered
	startDropped := s.Stats.DroppedUnreachable
	for int(s.Now-start) < maxCycles {
		offered := s.Stats.Offered - startOffered
		dropped := s.Stats.DroppedUnreachable - startDropped
		delivered := s.Stats.Delivered - startDelivered
		// The run completes when the generated (routable) work has
		// drained. Dropped packets never count as work.
		if offered >= int64(p.WorkPackets) && delivered >= offered {
			break
		}
		_ = dropped
		// Offer traffic only while work remains to be generated and we
		// are in a burst phase.
		inBurst := p.IdleLen == 0 || a.phase%period < p.BurstLen
		if inBurst && offered < int64(p.WorkPackets) {
			if p.OutstandingWindow > 0 {
				a.tickClosedLoop(s, int64(p.WorkPackets)-offered)
			} else {
				a.inj.Tick(s)
			}
		}
		s.Step()
		a.phase++
	}
	offered := s.Stats.Offered - startOffered
	delivered := s.Stats.Delivered - startDelivered
	runtime := s.Now - start
	res := Result{
		Runtime:    runtime,
		Delivered:  delivered,
		Completed:  offered >= int64(p.WorkPackets) && delivered >= offered,
		AvgLatency: s.Stats.AvgLatency(),
	}
	if runtime > 0 {
		res.Throughput = float64(delivered) / float64(runtime)
	}
	return res
}
