// Package traffic generates network workloads: the synthetic patterns of
// the paper's evaluation (uniform random and bit-complement with a mix of
// 1-flit control and 5-flit data packets, Table II), auxiliary patterns
// (transpose, hotspot), and parameterized application profiles standing
// in for the PARSEC and Rodinia workloads (see DESIGN.md §4 for the
// substitution rationale).
package traffic

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
)

// Pattern maps a source node to a destination.
type Pattern interface {
	Name() string
	// Dest picks a destination for a packet from src; it may equal src
	// (callers usually skip self-traffic) and need not be reachable.
	Dest(src geom.NodeID, rng *rand.Rand) geom.NodeID
}

// UniformRandom picks any alive router uniformly.
type UniformRandom struct {
	nodes []geom.NodeID
}

// NewUniformRandom builds the pattern over the given candidate
// destinations (normally topo.AliveRouters()).
func NewUniformRandom(nodes []geom.NodeID) *UniformRandom {
	if len(nodes) == 0 {
		panic("traffic: uniform random needs at least one destination")
	}
	return &UniformRandom{nodes: nodes}
}

// Name implements Pattern.
func (u *UniformRandom) Name() string { return "uniform_random" }

// Dest implements Pattern.
func (u *UniformRandom) Dest(_ geom.NodeID, rng *rand.Rand) geom.NodeID {
	return u.nodes[rng.Intn(len(u.nodes))]
}

// BitComplement sends from (x, y) to (W−1−x, H−1−y).
type BitComplement struct {
	Width, Height int
}

// Name implements Pattern.
func (b BitComplement) Name() string { return "bit_complement" }

// Dest implements Pattern.
func (b BitComplement) Dest(src geom.NodeID, _ *rand.Rand) geom.NodeID {
	c := src.CoordOf(b.Width)
	return geom.Coord{X: b.Width - 1 - c.X, Y: b.Height - 1 - c.Y}.IDOf(b.Width)
}

// Transpose sends from (x, y) to (y, x); only defined on square meshes.
type Transpose struct {
	Width int
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t Transpose) Dest(src geom.NodeID, _ *rand.Rand) geom.NodeID {
	c := src.CoordOf(t.Width)
	return geom.Coord{X: c.Y, Y: c.X}.IDOf(t.Width)
}

// Hotspot sends a fraction of traffic to a fixed node (e.g. a memory
// controller) and the rest uniformly.
type Hotspot struct {
	Spot     geom.NodeID
	Fraction float64 // probability a packet targets Spot
	Uniform  *UniformRandom
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(src geom.NodeID, rng *rand.Rand) geom.NodeID {
	if rng.Float64() < h.Fraction {
		return h.Spot
	}
	return h.Uniform.Dest(src, rng)
}

// Injector drives Bernoulli open-loop traffic into a simulator: each
// alive node offers packets at the configured flit rate, with the
// control/data mix of Table II.
type Injector struct {
	// Topo-derived state.
	sources []geom.NodeID
	router  routing.Algorithm
	pattern Pattern
	rng     *rand.Rand
	// routeBuf is the scratch the per-packet route is appended into
	// (recycled when the target sim copies routes into its arena).
	routeBuf routing.Route

	// RateFlits is the offered load in flits/node/cycle.
	RateFlits float64
	// CtrlFraction is the fraction of packets that are 1-flit control
	// packets (the rest are DataLen-flit data packets). Default 0.5.
	CtrlFraction float64
	// DataLen is the data packet length in flits. Default 5.
	DataLen int
	// CtrlVnet and DataVnet are the vnets used by each class
	// (defaults 0 and 2, modeling request and response classes).
	CtrlVnet, DataVnet int
}

// NewInjector builds an injector. sources are the nodes that inject
// (normally the alive routers); alg computes a route per packet.
func NewInjector(sources []geom.NodeID, alg routing.Algorithm, p Pattern, rateFlits float64, rng *rand.Rand) *Injector {
	return &Injector{
		sources:      sources,
		router:       alg,
		pattern:      p,
		rng:          rng,
		RateFlits:    rateFlits,
		CtrlFraction: 0.5,
		DataLen:      5,
		CtrlVnet:     0,
		DataVnet:     2,
	}
}

// meanLen returns the expected packet length under the current mix.
func (in *Injector) meanLen() float64 {
	return in.CtrlFraction*1 + (1-in.CtrlFraction)*float64(in.DataLen)
}

// Tick offers one cycle's worth of traffic to s. Unreachable destinations
// are dropped at the source, per the paper's methodology.
func (in *Injector) Tick(s *network.Sim) {
	pPkt := in.RateFlits / in.meanLen()
	for _, src := range in.sources {
		in.offer(s, src, pPkt)
	}
}

// offer makes one node's injection decision for this cycle: with
// probability pPkt it picks a destination from the pattern, routes, and
// enqueues a packet of the configured control/data mix. The bursty
// arrival processes (ParetoOnOff) reuse this with per-node gating.
func (in *Injector) offer(s *network.Sim, src geom.NodeID, pPkt float64) {
	if in.rng.Float64() >= pPkt {
		return
	}
	dst := in.pattern.Dest(src, in.rng)
	if dst == src {
		return
	}
	// Routes are built in a reusable scratch buffer: NewPacket copies
	// them into the sim's arena under pooling, so injection allocates
	// nothing in steady state. Without pooling NewPacket keeps the
	// slice, so ownership transfers and the scratch must be dropped.
	route, ok := routing.AppendRoute(in.router, in.routeBuf[:0], src, dst, in.rng)
	if !ok {
		s.Drop()
		return
	}
	vnet, ln := in.CtrlVnet, 1
	if in.rng.Float64() >= in.CtrlFraction {
		vnet, ln = in.DataVnet, in.DataLen
	}
	s.Enqueue(s.NewPacket(src, dst, vnet, ln, route))
	if s.PoolingEnabled() {
		in.routeBuf = route[:0]
	} else {
		in.routeBuf = nil
	}
}

// Run drives the simulator for the given number of cycles, offering
// traffic each cycle.
func (in *Injector) Run(s *network.Sim, cycles int) {
	for i := 0; i < cycles; i++ {
		in.Tick(s)
		s.Step()
	}
}
