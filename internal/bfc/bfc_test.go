package bfc

import (
	"math/rand"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestBoundaryRingValid(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 5}} {
		topo := topology.NewMesh(sz[0], sz[1])
		r := BoundaryRing(topo)
		if err := r.Validate(topo); err != nil {
			t.Fatalf("%dx%d: %v", sz[0], sz[1], err)
		}
		wantLen := 2*(sz[0]-1) + 2*(sz[1]-1)
		if r.Len() != wantLen {
			t.Fatalf("%dx%d: ring length %d, want %d", sz[0], sz[1], r.Len(), wantLen)
		}
	}
}

func TestRingValidateRejectsBroken(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	short := Ring{Nodes: []geom.NodeID{0, 1}, Dirs: []geom.Direction{geom.East, geom.West}}
	if short.Validate(topo) == nil {
		t.Fatal("short ring should fail")
	}
	r := BoundaryRing(topo)
	topo.DisableLink(0, geom.East)
	if r.Validate(topo) == nil {
		t.Fatal("ring over a dead channel should fail")
	}
	dup := Ring{
		Nodes: []geom.NodeID{0, 1, 0, 1},
		Dirs:  []geom.Direction{geom.East, geom.West, geom.East, geom.West},
	}
	if dup.Validate(topology.NewMesh(4, 4)) == nil {
		t.Fatal("revisiting ring should fail")
	}
}

func TestRingNext(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := BoundaryRing(topo)
	if r.Next(0) != geom.East {
		t.Fatalf("Next(0) = %v", r.Next(0))
	}
	center := topo.ID(geom.Coord{X: 1, Y: 1})
	if r.Next(center) != geom.Invalid {
		t.Fatal("interior node is not on the boundary ring")
	}
}

func TestAttachRejectsOverlap(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	r := BoundaryRing(topo)
	if _, err := Attach(s, r, r); err == nil {
		t.Fatal("overlapping rings must be rejected")
	}
}

// ringWorkload streams packets along the boundary ring: every ring node
// sends perNode packets halfway around. Routes follow the ring
// exclusively, making the ring deadlock-prone without BFC.
func ringWorkload(s *network.Sim, r Ring, perNode int) int {
	total := 0
	n := r.Len()
	for i, src := range r.Nodes {
		hops := n / 2
		var route routing.Route
		cur := src
		for k := 0; k < hops; k++ {
			d := r.Dirs[(i+k)%n]
			route = append(route, d)
			cur = s.Topo.Neighbor(cur, d)
		}
		for k := 0; k < perNode; k++ {
			s.Enqueue(s.NewPacket(src, cur, 0, 5, route))
			total++
		}
	}
	return total
}

func TestRingWithoutBFCDeadlocks(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	ringWorkload(s, BoundaryRing(topo), 10)
	s.Run(5000)
	if !deadlock.IsDeadlocked(s) {
		t.Fatal("heavy ring workload without BFC should deadlock")
	}
}

func TestRingWithBFCNeverDeadlocks(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(1)))
	c, err := Attach(s, BoundaryRing(topo))
	if err != nil {
		t.Fatal(err)
	}
	total := ringWorkload(s, BoundaryRing(topo), 10)
	for i := 0; i < 400; i++ {
		s.Run(50)
		if deadlock.IsDeadlocked(s) {
			t.Fatalf("deadlock under BFC at cycle %d", s.Now)
		}
		if s.InFlight()+s.QueuedPackets() == 0 {
			break
		}
	}
	if s.Stats.Delivered != int64(total) {
		t.Fatalf("delivered %d of %d under BFC", s.Stats.Delivered, total)
	}
	if c.Denied == 0 {
		t.Fatal("the bubble condition never gated an injection (workload too light?)")
	}
}

func TestBFCSoakOnLargerRing(t *testing.T) {
	// Sustained random ring traffic on an 8x8 boundary (28 nodes): BFC
	// holds the bubble invariant indefinitely.
	topo := topology.NewMesh(8, 8)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(2)))
	ring := BoundaryRing(topo)
	if _, err := Attach(s, ring); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := ring.Len()
	offered := 0
	for cyc := 0; cyc < 6000; cyc++ {
		if cyc < 4000 {
			for i, src := range ring.Nodes {
				if rng.Float64() >= 0.06 {
					continue
				}
				hops := 1 + rng.Intn(n/2)
				var route routing.Route
				cur := src
				for k := 0; k < hops; k++ {
					d := ring.Dirs[(i+k)%n]
					route = append(route, d)
					cur = s.Topo.Neighbor(cur, d)
				}
				s.Enqueue(s.NewPacket(src, cur, 0, 5, route))
				offered++
			}
		}
		s.Step()
		if cyc%500 == 499 && deadlock.IsDeadlocked(s) {
			t.Fatalf("deadlock under BFC at cycle %d", s.Now)
		}
	}
	s.Run(20000)
	if s.Stats.Delivered != int64(offered) {
		t.Fatalf("delivered %d of %d", s.Stats.Delivered, offered)
	}
}

func TestBFCDoesNotBlockOffRingTraffic(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	s := network.New(topo, network.Config{}, rand.New(rand.NewSource(4)))
	if _, err := Attach(s, BoundaryRing(topo)); err != nil {
		t.Fatal(err)
	}
	// Interior traffic is untouched by the filter.
	min := routing.NewMinimal(topo)
	src := topo.ID(geom.Coord{X: 1, Y: 1})
	dst := topo.ID(geom.Coord{X: 2, Y: 2})
	r, _ := min.Route(src, dst, nil)
	p := s.NewPacket(src, dst, 0, 5, r)
	s.Enqueue(p)
	s.Run(40)
	if p.DeliveredAt < 0 {
		t.Fatal("interior packet blocked by ring BFC")
	}
}
