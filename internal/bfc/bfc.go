// Package bfc implements classic (localized) Bubble Flow Control for ring
// sub-networks of a mesh — the technique whose theory Static Bubble
// builds on (paper Section II-C, citing Puente et al.'s adaptive bubble
// router): a ring can never deadlock as long as at least one packet
// buffer in it stays free, so injection into the ring is only allowed
// when it would leave a bubble behind; in-transit ring traffic is never
// blocked by the rule.
//
// The package exists both as a faithful substrate reproduction and as an
// executable statement of the invariant Static Bubble generalizes: BFC
// maintains a bubble statically by gating injection; Static Bubble
// creates one dynamically after detection.
package bfc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/network"
	"repro/internal/topology"
)

// Ring is a directed cycle of routers: the packet at Nodes[i] proceeds to
// Nodes[i+1] via Dirs[i]. Construct by hand or with BoundaryRing.
type Ring struct {
	Nodes []geom.NodeID
	Dirs  []geom.Direction
}

// Len returns the number of hops in the ring.
func (r Ring) Len() int { return len(r.Nodes) }

// Validate checks the ring is a closed walk over alive channels with no
// repeated nodes.
func (r Ring) Validate(t *topology.Topology) error {
	if len(r.Nodes) < 4 || len(r.Nodes) != len(r.Dirs) {
		return fmt.Errorf("bfc: ring needs ≥4 nodes and matching dirs")
	}
	seen := map[geom.NodeID]bool{}
	for i, n := range r.Nodes {
		if seen[n] {
			return fmt.Errorf("bfc: ring revisits node %v", n)
		}
		seen[n] = true
		if !t.HasLink(n, r.Dirs[i]) {
			return fmt.Errorf("bfc: ring hop %d uses dead channel %v→%v", i, n, r.Dirs[i])
		}
		if t.Neighbor(n, r.Dirs[i]) != r.Nodes[(i+1)%len(r.Nodes)] {
			return fmt.Errorf("bfc: ring hop %d does not reach the next node", i)
		}
	}
	return nil
}

// Next returns the ring direction out of node n, or Invalid if n is not
// on the ring.
func (r Ring) Next(n geom.NodeID) geom.Direction {
	for i, rn := range r.Nodes {
		if rn == n {
			return r.Dirs[i]
		}
	}
	return geom.Invalid
}

// BoundaryRing returns the clockwise boundary cycle of a healthy
// width×height mesh (width, height ≥ 2): east along the bottom row, north
// up the right column, west along the top, south down the left.
func BoundaryRing(t *topology.Topology) Ring {
	w, h := t.Width(), t.Height()
	var ring Ring
	add := func(c geom.Coord, d geom.Direction) {
		ring.Nodes = append(ring.Nodes, t.ID(c))
		ring.Dirs = append(ring.Dirs, d)
	}
	for x := 0; x < w-1; x++ {
		add(geom.Coord{X: x, Y: 0}, geom.East)
	}
	for y := 0; y < h-1; y++ {
		add(geom.Coord{X: w - 1, Y: y}, geom.North)
	}
	for x := w - 1; x > 0; x-- {
		add(geom.Coord{X: x, Y: h - 1}, geom.West)
	}
	for y := h - 1; y > 0; y-- {
		add(geom.Coord{X: 0, Y: y}, geom.South)
	}
	return ring
}

// Controller enforces bubble flow control on one or more disjoint rings
// of a simulator by gating injection (local-port) grants.
type Controller struct {
	sim *network.Sim
	// ringDir[node] is the ring output direction at each ring node;
	// arrival[node] is the input port ring transit arrives on.
	ringDir map[geom.NodeID]geom.Direction
	arrival map[geom.NodeID]geom.Direction
	// Denied counts injection grants vetoed by the bubble condition.
	Denied int64
}

// Attach installs BFC for the given rings on s. Rings must be disjoint
// and valid. It chains with any previously installed GrantFilter.
func Attach(s *network.Sim, rings ...Ring) (*Controller, error) {
	c := &Controller{
		sim:     s,
		ringDir: make(map[geom.NodeID]geom.Direction),
		arrival: make(map[geom.NodeID]geom.Direction),
	}
	for _, r := range rings {
		if err := r.Validate(s.Topo); err != nil {
			return nil, err
		}
		for i, n := range r.Nodes {
			if _, dup := c.ringDir[n]; dup {
				return nil, fmt.Errorf("bfc: rings overlap at node %v", n)
			}
			c.ringDir[n] = r.Dirs[i]
			next := r.Nodes[(i+1)%len(r.Nodes)]
			c.arrival[next] = r.Dirs[i].Opposite()
		}
	}
	prev := s.GrantFilter
	s.GrantFilter = func(p *network.Packet, at geom.NodeID, in, out geom.Direction) bool {
		if prev != nil && !prev(p, at, in, out) {
			return false
		}
		return c.allow(p, at, in, out)
	}
	return c, nil
}

// allow implements the bubble condition: entering the ring (from the
// local port or a mesh port off the ring path) requires the downstream
// ring port to keep one free buffer beyond the one this packet will take;
// in-transit ring traffic is exempt.
func (c *Controller) allow(p *network.Packet, at geom.NodeID, in, out geom.Direction) bool {
	ringOut, onRing := c.ringDir[at]
	if !onRing || out != ringOut {
		return true // not a ring movement at all
	}
	if in == c.arrival[at] {
		return true // continuing along the ring
	}
	// Entering the ring: count free VCs of p's vnet at the downstream
	// ring input.
	nb := c.sim.Topo.Neighbor(at, out)
	inPort := out.Opposite()
	free := 0
	base := p.Vnet * c.sim.Cfg.VCsPerVnet
	for i := 0; i < c.sim.Cfg.VCsPerVnet; i++ {
		if c.sim.Routers[nb].In[inPort][base+i].Empty(c.sim.Now) {
			free++
		}
	}
	if free >= 2 {
		return true
	}
	c.Denied++
	return false
}
