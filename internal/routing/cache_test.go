package routing

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// TestCacheSharesAcrossClones: fingerprint-equal topologies (clones,
// identically resampled irregulars) must share one compiled instance per
// algorithm, and distinct algorithms or contents must not collide.
func TestCacheSharesAcrossClones(t *testing.T) {
	ResetTableCache()
	defer ResetTableCache()

	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 12, 4)
	m1 := MinimalFor(topo)
	m2 := MinimalFor(topo.Clone())
	m3 := MinimalFor(topology.RandomIrregular(8, 8, topology.LinkFaults, 12, 4))
	if m1 != m2 || m1 != m3 {
		t.Fatal("fingerprint-equal topologies did not share one compiled Minimal")
	}
	if s := CacheStats(); s.Compiles != 1 || s.Hits != 2 {
		t.Fatalf("after 3 MinimalFor: %+v, want 1 compile / 2 hits", s)
	}

	// Different algorithm and different root policy are distinct entries.
	u1 := UpDownFor(topo, RootMedian)
	u2 := UpDownFor(topo.Clone(), RootLowestID)
	if u1 == u2 {
		t.Fatal("different root policies shared an entry")
	}
	// Mutated content must recompile.
	mut := topo.Clone()
	mut.DisableLink(mut.AliveRouters()[0], pickAliveDir(mut))
	if MinimalFor(mut) == m1 {
		t.Fatal("mutated topology hit the original entry")
	}
	s := CacheStats()
	if s.Compiles != 4 || s.Entries != 4 {
		t.Fatalf("final stats %+v, want 4 compiles / 4 entries", s)
	}
	if s.Bytes <= 0 {
		t.Fatalf("cache reports %d bytes held", s.Bytes)
	}
	if str := s.String(); !strings.Contains(str, "4 compiles") || !strings.Contains(str, "entries") {
		t.Fatalf("unexpected stats rendering %q", str)
	}
}

// pickAliveDir returns a direction with a usable link from the first
// alive router (the sampled topology always keeps one).
func pickAliveDir(t *topology.Topology) geom.Direction {
	n := t.AliveRouters()[0]
	for _, dir := range geom.LinkDirs {
		if t.HasLink(n, dir) {
			return dir
		}
	}
	panic("no usable link at first alive router")
}

// TestCacheSingleflight: many goroutines requesting the same key while
// no entry exists must trigger exactly one compile and all receive the
// same instance.
func TestCacheSingleflight(t *testing.T) {
	ResetTableCache()
	defer ResetTableCache()

	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 10, 9)
	const workers = 16
	got := make([]*Minimal, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = MinimalFor(topo.Clone())
		}(w)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatal("singleflight returned distinct instances")
		}
	}
	s := CacheStats()
	if s.Compiles != 1 || s.Hits != workers-1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 compile / %d hits / 1 entry", s, workers-1)
	}
}

// TestResetTableCache: reset zeroes counters and forgets entries, so the
// next request recompiles (prior references stay usable).
func TestResetTableCache(t *testing.T) {
	ResetTableCache()
	topo := topology.NewMesh(4, 4)
	m1 := MinimalFor(topo)
	ResetTableCache()
	if s := CacheStats(); s != (TableCacheStats{}) {
		t.Fatalf("stats after reset: %+v", s)
	}
	m2 := MinimalFor(topo)
	if m1 == m2 {
		t.Fatal("reset did not drop the entry")
	}
	if m1.Distance(0, 5) != m2.Distance(0, 5) {
		t.Fatal("pre-reset instance no longer usable")
	}
	ResetTableCache()
}
