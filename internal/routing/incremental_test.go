package routing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// randomDeltaStep applies one random fail/recover mutation to t and
// returns a short description. Mutations mirror what reconfig churn
// submits: link fails/recovers (undirected) and router fails/recovers.
func randomDeltaStep(t *topology.Topology, rng *rand.Rand) string {
	n := t.NumNodes()
	switch rng.Intn(4) {
	case 0:
		links := t.AliveUndirectedLinks()
		if len(links) > 0 {
			l := links[rng.Intn(len(links))]
			t.DisableLink(l.From, l.Dir)
			return "fail-link"
		}
	case 1:
		// Recover a random dead link (scan geometric channels).
		for try := 0; try < 32; try++ {
			id := geom.NodeID(rng.Intn(n))
			d := geom.LinkDirs[rng.Intn(geom.NumLinkDirs)]
			if t.Neighbor(id, d) != geom.InvalidNode && !t.LinkIntact(id, d) {
				t.EnableLink(id, d)
				return "recover-link"
			}
		}
	case 2:
		alive := t.AliveRouters()
		if len(alive) > 1 {
			t.DisableRouter(alive[rng.Intn(len(alive))])
			return "fail-router"
		}
	default:
		for try := 0; try < 32; try++ {
			id := geom.NodeID(rng.Intn(n))
			if !t.RouterAlive(id) {
				t.EnableRouter(id)
				return "recover-router"
			}
		}
	}
	return "noop"
}

// TestIncrementalVsFullProperty drives random fail/recover delta
// sequences over random irregular topologies and asserts the
// incremental recompile is bit-identical to a from-scratch compile at
// every step — for the minimal tables and the up*/down* state tables.
func TestIncrementalVsFullProperty(t *testing.T) {
	cases := 12
	steps := 10
	if testing.Short() {
		cases, steps = 5, 6
	}
	for c := 0; c < cases; c++ {
		seed := int64(1000 + c)
		rng := rand.New(rand.NewSource(seed))
		w, h := 4+rng.Intn(5), 4+rng.Intn(5)
		kind := topology.LinkFaults
		if c%2 == 1 {
			kind = topology.RouterFaults
		}
		topo := topology.RandomIrregular(w, h, kind, rng.Intn(w*h/2), seed)
		min := NewMinimal(topo)
		ud := NewUpDownRooted(topo, RootLowestID)
		for s := 0; s < steps; s++ {
			op := randomDeltaStep(topo, rng)
			incMin, mst := min.Recompile(topo)
			fullMin := NewMinimal(topo)
			if !MinimalTablesEqual(incMin, fullMin) {
				t.Fatalf("case %d step %d (%s): incremental minimal diverged from full compile (stats %+v)",
					c, s, op, mst)
			}
			incUD, ust := ud.Recompile(topo)
			fullUD := NewUpDownRooted(topo, RootLowestID)
			if !UpDownTablesEqual(incUD, fullUD) {
				t.Fatalf("case %d step %d (%s): incremental updown diverged from full compile (stats %+v)",
					c, s, op, ust)
			}
			min, ud = incMin, incUD
		}
	}
}

// TestIncrementalColumnSharing checks the COW invariant that makes
// incremental compiles cheap: columns for destinations in a component
// the delta cannot reach are shared pointer-identically, and an empty
// delta shares every column.
func TestIncrementalColumnSharing(t *testing.T) {
	// Split an 8x4 mesh into two 4x4 components by cutting the column-3
	// to column-4 links, then churn a link strictly inside the left
	// component. Right-component destination columns must be shared.
	topo := topology.NewMesh(8, 4)
	for y := 0; y < 4; y++ {
		topo.DisableLink(geom.NodeID(y*8+3), geom.East)
	}
	min := NewMinimal(topo)
	ud := NewUpDownRooted(topo, RootLowestID)

	topo.DisableLink(0, geom.East) // node 0 → node 1, deep inside the left half
	incMin, st := min.Recompile(topo)
	if st.Full || st.ColsShared == 0 {
		t.Fatalf("expected a sharing incremental compile, got %+v", st)
	}
	incUD, ust := ud.Recompile(topo)
	full := NewMinimal(topo)
	if !MinimalTablesEqual(incMin, full) {
		t.Fatal("incremental minimal diverged")
	}
	for y := 0; y < 4; y++ {
		for x := 4; x < 8; x++ {
			dst := geom.NodeID(y*8 + x)
			if !incMin.SharesColumn(min, dst) {
				t.Fatalf("minimal column for right-component dst %d not shared", dst)
			}
			if !ust.Full && !incUD.SharesColumn(ud, dst) {
				t.Fatalf("updown column for right-component dst %d not shared", dst)
			}
		}
	}

	// Empty delta: every column shared, no work counted.
	same, st2 := incMin.Recompile(topo)
	if st2.ColsShared != topo.NumNodes() || st2.EntriesRewritten != 0 {
		t.Fatalf("empty delta should share everything: %+v", st2)
	}
	for dst := 0; dst < topo.NumNodes(); dst++ {
		if !same.SharesColumn(incMin, geom.NodeID(dst)) {
			t.Fatalf("empty-delta column %d not shared", dst)
		}
	}
}

// TestIncrementalRepairIsLocal pins the perf contract behind the churn
// speedup: one link flap on a healthy 32x32 mesh must repair columns by
// rewriting a near-constant number of entries, not rebuild them — the
// deterministic work counters are the flake-free proxy for the ≥10x
// wall-clock claim the compile_* bench scenarios measure.
func TestIncrementalRepairIsLocal(t *testing.T) {
	topo := topology.NewMesh(32, 32)
	n := int64(topo.NumNodes())
	min := NewMinimal(topo)
	topo.DisableLink(geom.NodeID(15*32+15), geom.East)
	inc, st := min.Recompile(topo)
	if st.Full {
		t.Fatalf("single-link delta took the full-compile fallback: %+v", st)
	}
	if st.ColsRebuilt != 0 {
		t.Fatalf("single-link delta rebuilt %d columns from scratch", st.ColsRebuilt)
	}
	// A full compile writes 2·n² entries; the repair must be at least
	// 100x smaller (measured: ~2 mask entries per perturbed column).
	if st.EntriesRewritten*100 > 2*n*n {
		t.Fatalf("repair rewrote %d of %d entries — not local", st.EntriesRewritten, 2*n*n)
	}
	if !MinimalTablesEqual(inc, NewMinimal(topo)) {
		t.Fatal("local repair diverged from full compile")
	}
	// Flap back: the delta inverts and the result must equal the
	// original table bit-for-bit.
	topo.EnableLink(geom.NodeID(15*32+15), geom.East)
	back, _ := inc.Recompile(topo)
	if !MinimalTablesEqual(back, min) {
		t.Fatal("flap-back did not restore the original tables")
	}
}

// TestParallelCompileDeterminism: the cold compile must be byte-identical
// at every worker count (the CI seam-sync tier runs this under -race).
func TestParallelCompileDeterminism(t *testing.T) {
	topo := topology.RandomIrregular(20, 20, topology.LinkFaults, 60, 9)
	g := topo.Flatten()
	seq := compileMinimalWorkers(g, 1)
	ud := newUpDownTree(topo, RootLowestID)
	seqUD := compileUpDownWorkers(g, ud.level, ud.upMask, 1)
	for _, workers := range []int{2, 3, 8} {
		par := compileMinimalWorkers(g, workers)
		a := &Minimal{g: g, tab: seq}
		b := &Minimal{g: g, tab: par}
		if !MinimalTablesEqual(a, b) {
			t.Fatalf("parallel minimal compile (workers=%d) not byte-identical", workers)
		}
		parUD := compileUpDownWorkers(g, ud.level, ud.upMask, workers)
		ua := &UpDown{g: g, level: ud.level, upMask: ud.upMask, tab: seqUD}
		ub := &UpDown{g: g, level: ud.level, upMask: ud.upMask, tab: parUD}
		if !UpDownTablesEqual(ua, ub) {
			t.Fatalf("parallel updown compile (workers=%d) not byte-identical", workers)
		}
	}
}

// FuzzIncrementalCompile decodes a byte string into a topology and a
// mutation sequence and asserts incremental == full at every step.
// Corpus seeds live in testdata/fuzz/FuzzIncrementalCompile.
func FuzzIncrementalCompile(f *testing.F) {
	f.Add([]byte{3, 3, 4, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{5, 2, 0, 9, 9, 9, 1, 200, 3})
	f.Add([]byte{1, 1, 12, 250, 0, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		w := 3 + int(data[0]%6)
		h := 3 + int(data[1]%6)
		faults := int(data[2]) % (w * h / 2)
		seed := int64(len(data))*1315423911 + int64(data[0])<<8 + int64(data[1])
		topo := topology.RandomIrregular(w, h, topology.LinkFaults, faults, seed)
		min := NewMinimal(topo)
		ud := NewUpDownRooted(topo, RootLowestID)
		ops := data[3:]
		if len(ops) > 12 {
			ops = ops[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		for _, b := range ops {
			// Mix the fuzz byte into the mutation choice so the corpus
			// steers the walk while staying in-range.
			rng.Seed(seed ^ int64(b)<<17)
			randomDeltaStep(topo, rng)
			incMin, _ := min.Recompile(topo)
			fullMin := NewMinimal(topo)
			if !MinimalTablesEqual(incMin, fullMin) {
				t.Fatal("incremental minimal diverged from full compile")
			}
			incUD, _ := ud.Recompile(topo)
			fullUD := NewUpDownRooted(topo, RootLowestID)
			if !UpDownTablesEqual(incUD, fullUD) {
				t.Fatal("incremental updown diverged from full compile")
			}
			min, ud = incMin, incUD
		}
	})
}
