package routing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

func TestMinimalOnHealthyMeshMatchesManhattan(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	m := NewMinimal(topo)
	rng := rand.New(rand.NewSource(1))
	for src := geom.NodeID(0); src < 64; src += 7 {
		for dst := geom.NodeID(0); dst < 64; dst += 5 {
			r, ok := m.Route(src, dst, rng)
			if !ok {
				t.Fatalf("route %v→%v not found", src, dst)
			}
			want := geom.ManhattanDistance(topo.Coord(src), topo.Coord(dst))
			if r.Len() != want {
				t.Fatalf("route %v→%v has %d hops, want %d", src, dst, r.Len(), want)
			}
			if err := r.Validate(topo, src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMinimalSelfRoute(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	m := NewMinimal(topo)
	r, ok := m.Route(3, 3, nil)
	if !ok || r.Len() != 0 {
		t.Fatalf("self route = %v ok=%v, want empty ok", r, ok)
	}
}

func TestMinimalOnIrregularIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 20, int64(trial))
		m := NewMinimal(topo)
		for n := 0; n < 20; n++ {
			src := geom.NodeID(rng.Intn(64))
			dst := geom.NodeID(rng.Intn(64))
			if !topo.RouterAlive(src) || !topo.RouterAlive(dst) {
				continue
			}
			r, ok := m.Route(src, dst, rng)
			dist := m.Distance(src, dst)
			if !ok {
				if dist >= 0 {
					t.Fatalf("route %v→%v missing but distance %d", src, dst, dist)
				}
				continue
			}
			if r.Len() != dist {
				t.Fatalf("route %v→%v len %d != BFS dist %d", src, dst, r.Len(), dist)
			}
			if err := r.Validate(topo, src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMinimalUnreachable(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	topo.DisableLink(1, geom.East)
	m := NewMinimal(topo)
	if _, ok := m.Route(0, 3, nil); ok {
		t.Fatal("route across a cut should not exist")
	}
	if m.Reachable(0, 3) {
		t.Fatal("Reachable should be false across a cut")
	}
	if !m.Reachable(0, 1) {
		t.Fatal("Reachable should be true within a component")
	}
	if m.Distance(0, 3) != -1 {
		t.Fatal("Distance across cut should be -1")
	}
}

func TestMinimalDeadEndpoints(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	topo.DisableRouter(4)
	m := NewMinimal(topo)
	if _, ok := m.Route(4, 0, nil); ok {
		t.Fatal("route from dead router should fail")
	}
	if _, ok := m.Route(0, 4, nil); ok {
		t.Fatal("route to dead router should fail")
	}
	if _, ok := m.Route(4, 4, nil); ok {
		t.Fatal("self route at dead router should fail")
	}
}

func TestMinimalRandomizationCoversDAG(t *testing.T) {
	// On a healthy mesh between opposite corners many minimal routes
	// exist; sampling should produce more than one distinct first hop.
	topo := topology.NewMesh(5, 5)
	m := NewMinimal(topo)
	rng := rand.New(rand.NewSource(2))
	first := map[geom.Direction]bool{}
	for i := 0; i < 64; i++ {
		r, ok := m.Route(0, 24, rng)
		if !ok {
			t.Fatal("route must exist")
		}
		first[r[0]] = true
	}
	if len(first) < 2 {
		t.Fatalf("minimal routing never diversified first hop: %v", first)
	}
}

func TestXYHealthyMesh(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	x := NewXY(topo)
	src, dst := topo.ID(geom.Coord{X: 1, Y: 1}), topo.ID(geom.Coord{X: 4, Y: 3})
	r, ok := x.Route(src, dst, nil)
	if !ok {
		t.Fatal("XY route must exist on healthy mesh")
	}
	if err := r.Validate(topo, src, dst); err != nil {
		t.Fatal(err)
	}
	// X first: route must be E,E,E,N,N.
	want := Route{geom.East, geom.East, geom.East, geom.North, geom.North}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("XY route = %v, want %v", r, want)
		}
	}
}

func TestXYFailsOnFault(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	topo.DisableLink(0, geom.East)
	x := NewXY(topo)
	if _, ok := x.Route(0, 3, nil); ok {
		t.Fatal("XY should fail across a dead X link")
	}
}

func TestXYNameAndMinimalName(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	if NewXY(topo).Name() != "xy" || NewMinimal(topo).Name() != "minimal" {
		t.Fatal("unexpected algorithm names")
	}
	if NewUpDown(topo).Name() != "updown" {
		t.Fatal("unexpected updown name")
	}
}

func TestUpDownHealthyMeshRoutesAllPairs(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	u := NewUpDown(topo)
	rng := rand.New(rand.NewSource(3))
	for src := geom.NodeID(0); src < 36; src += 3 {
		for dst := geom.NodeID(0); dst < 36; dst += 4 {
			r, ok := u.Route(src, dst, rng)
			if !ok {
				t.Fatalf("up/down route %v→%v missing on healthy mesh", src, dst)
			}
			if err := r.Validate(topo, src, dst); err != nil {
				t.Fatal(err)
			}
			if err := checkUpDownLegal(u, topo, src, r); err != nil {
				t.Fatalf("%v→%v: %v", src, dst, err)
			}
		}
	}
}

func checkUpDownLegal(u *UpDown, topo *topology.Topology, src geom.NodeID, r Route) error {
	cur := src
	down := false
	for i, d := range r {
		up := u.IsUp(cur, d)
		if up && down {
			return errUpAfterDown(i)
		}
		if !up {
			down = true
		}
		cur = topo.Neighbor(cur, d)
	}
	return nil
}

type errUpAfterDown int

func (e errUpAfterDown) Error() string { return "up channel after down channel" }

func TestUpDownIrregularConnectivityAndLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 25, int64(100+trial))
		u := NewUpDown(topo)
		m := NewMinimal(topo)
		for n := 0; n < 30; n++ {
			src := geom.NodeID(rng.Intn(64))
			dst := geom.NodeID(rng.Intn(64))
			if !topo.RouterAlive(src) || !topo.RouterAlive(dst) {
				continue
			}
			reach := m.Reachable(src, dst)
			r, ok := u.Route(src, dst, rng)
			if ok != reach {
				t.Fatalf("trial %d: up/down routable(%v→%v)=%v but reachable=%v",
					trial, src, dst, ok, reach)
			}
			if !ok {
				continue
			}
			if err := r.Validate(topo, src, dst); err != nil {
				t.Fatal(err)
			}
			if err := checkUpDownLegal(u, topo, src, r); err != nil {
				t.Fatalf("trial %d %v→%v: %v (route %v)", trial, src, dst, err, r)
			}
			if r.Len() < m.Distance(src, dst) {
				t.Fatalf("up/down route shorter than shortest path?!")
			}
		}
	}
}

func TestUpDownDependencyAcyclicProperty(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		kind := topology.LinkFaults
		k := trial
		if trial%2 == 1 {
			kind = topology.RouterFaults
			k = trial / 2
		}
		topo := topology.RandomIrregular(8, 8, kind, k, int64(500+trial))
		u := NewUpDown(topo)
		if !u.DependencyAcyclic() {
			t.Fatalf("trial %d (%v=%d): up/down dependency graph has a cycle", trial, kind, k)
		}
	}
}

func TestUpDownNonMinimalExists(t *testing.T) {
	// The hallmark cost of the spanning-tree baseline: some pair must be
	// routed non-minimally on a topology with enough faults. Sweep a few
	// seeds and require at least one stretched pair.
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 30, seed)
		u := NewUpDown(topo)
		m := NewMinimal(topo)
		for src := geom.NodeID(0); src < 64 && !found; src++ {
			for dst := geom.NodeID(0); dst < 64; dst++ {
				if src == dst || !topo.RouterAlive(src) || !topo.RouterAlive(dst) {
					continue
				}
				md := m.Distance(src, dst)
				ud := u.Distance(src, dst)
				if md >= 0 && ud > md {
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("expected at least one non-minimal up/down route across seeds")
	}
}

func TestUpDownTreeNextHopWalksToDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		topo := topology.RandomIrregular(8, 8, topology.RouterFaults, 8, int64(trial))
		u := NewUpDown(topo)
		m := NewMinimal(topo)
		for n := 0; n < 25; n++ {
			src := geom.NodeID(rng.Intn(64))
			dst := geom.NodeID(rng.Intn(64))
			if !topo.RouterAlive(src) || !topo.RouterAlive(dst) || !m.Reachable(src, dst) {
				continue
			}
			cur := src
			steps := 0
			for cur != dst {
				d := u.TreeNextHop(cur, dst)
				if d == geom.Invalid || d == geom.Local {
					t.Fatalf("trial %d: TreeNextHop(%v,%v) = %v mid-walk", trial, cur, dst, d)
				}
				if !topo.HasLink(cur, d) {
					t.Fatalf("trial %d: tree hop uses dead channel", trial)
				}
				cur = topo.Neighbor(cur, d)
				steps++
				if steps > 200 {
					t.Fatalf("trial %d: tree walk %v→%v did not terminate", trial, src, dst)
				}
			}
			if got := u.TreeNextHop(dst, dst); got != geom.Local {
				t.Fatalf("TreeNextHop at destination = %v, want Local", got)
			}
		}
	}
}

func TestUpDownTreeNextHopAcrossComponents(t *testing.T) {
	topo := topology.NewMesh(4, 1)
	topo.DisableLink(1, geom.East)
	u := NewUpDown(topo)
	if got := u.TreeNextHop(0, 3); got != geom.Invalid {
		t.Fatalf("cross-component TreeNextHop = %v, want Invalid", got)
	}
}

func TestUpDownTreeUsesOnlyTreeEdges(t *testing.T) {
	// Tree next hops must follow parent/child relations exclusively.
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 15, 77)
	u := NewUpDown(topo)
	for n := geom.NodeID(0); n < 64; n++ {
		for dst := geom.NodeID(0); dst < 64; dst += 9 {
			d := u.TreeNextHop(n, dst)
			if d == geom.Invalid || d == geom.Local {
				continue
			}
			next := topo.Neighbor(n, d)
			if u.Parent(n) != next && u.Parent(next) != n {
				t.Fatalf("TreeNextHop(%v,%v)=%v reaches %v which is not a tree neighbor", n, dst, d, next)
			}
		}
	}
}

func TestUpDownRootIsMedianish(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	u := NewUpDown(topo)
	// The 1-median of a healthy odd mesh is its center.
	center := topo.ID(geom.Coord{X: 2, Y: 2})
	if u.Root(0) != center {
		t.Fatalf("root = %v, want center %v", u.Root(0), center)
	}
	if u.Level(center) != 0 || u.Parent(center) != geom.InvalidNode {
		t.Fatal("root must be level 0 with no parent")
	}
}

func TestRouteValidateCatchesBadRoutes(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	if err := (Route{geom.East, geom.West}).Validate(topo, 0, 0); err == nil {
		t.Error("U-turn route should fail validation")
	}
	if err := (Route{geom.North}).Validate(topo, 0, 2); err == nil {
		t.Error("wrong destination should fail validation")
	}
	if err := (Route{geom.Local}).Validate(topo, 0, 0); err == nil {
		t.Error("Local hop should fail validation")
	}
	topo.DisableLink(0, geom.East)
	if err := (Route{geom.East}).Validate(topo, 0, 1); err == nil {
		t.Error("dead channel should fail validation")
	}
}

func TestRouteDestAndString(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	r := Route{geom.East, geom.North}
	if got := r.Dest(topo, 0); got != topo.ID(geom.Coord{X: 1, Y: 1}) {
		t.Fatalf("Dest = %v", got)
	}
	if r.String() != "[E,N]" {
		t.Fatalf("String = %q", r.String())
	}
	bad := Route{geom.North}
	if got := bad.Dest(topo, topo.ID(geom.Coord{X: 0, Y: 3})); got != geom.InvalidNode {
		t.Fatalf("off-mesh Dest = %v, want InvalidNode", got)
	}
}

func TestUpDownSelfAndDeadRoutes(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	topo.DisableRouter(8)
	u := NewUpDown(topo)
	if r, ok := u.Route(2, 2, nil); !ok || r.Len() != 0 {
		t.Fatal("self route should be empty and ok")
	}
	if _, ok := u.Route(8, 0, nil); ok {
		t.Fatal("route from dead router should fail")
	}
	if _, ok := u.Route(0, 8, nil); ok {
		t.Fatal("route to dead router should fail")
	}
	if u.Distance(0, 8) != -1 || u.Distance(8, 0) != -1 {
		t.Fatal("distances involving dead routers must be -1")
	}
}

func TestTreeRouteMatchesTreeNextHop(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 15, 3)
	u := NewUpDown(topo)
	m := NewMinimal(topo)
	for src := geom.NodeID(0); src < 64; src += 5 {
		for dst := geom.NodeID(0); dst < 64; dst += 7 {
			r, ok := u.TreeRoute(src, dst)
			if ok != m.Reachable(src, dst) {
				t.Fatalf("TreeRoute ok=%v but reachable=%v for %v→%v", ok, m.Reachable(src, dst), src, dst)
			}
			if !ok {
				continue
			}
			if err := r.Validate(topo, src, dst); err != nil {
				t.Fatal(err)
			}
			if r.Len() < m.Distance(src, dst) {
				t.Fatal("tree route shorter than shortest path")
			}
		}
	}
}

func TestTreeAlgorithmIsDeterministic(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	alg := NewUpDown(topo).TreeAlgorithm()
	if alg.Name() != "spanning_tree" {
		t.Fatalf("name = %q", alg.Name())
	}
	rng := rand.New(rand.NewSource(1))
	a, _ := alg.Route(0, 35, rng)
	b, _ := alg.Route(0, 35, rng)
	if a.String() != b.String() {
		t.Fatal("tree routes must be deterministic")
	}
}

func TestTreeRoutingHasStretch(t *testing.T) {
	// The conservative baseline must be measurably non-minimal on a
	// healthy mesh (that is its cost).
	topo := topology.NewMesh(8, 8)
	u := NewUpDown(topo)
	m := NewMinimal(topo)
	var tree, min float64
	for src := geom.NodeID(0); src < 64; src++ {
		for dst := geom.NodeID(0); dst < 64; dst++ {
			if src == dst {
				continue
			}
			r, ok := u.TreeRoute(src, dst)
			if !ok {
				t.Fatal("healthy mesh must be tree-routable")
			}
			tree += float64(r.Len())
			min += float64(m.Distance(src, dst))
		}
	}
	if tree/min < 1.1 {
		t.Fatalf("tree stretch %.3f suspiciously low", tree/min)
	}
}

func TestDeterministicWrapper(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	det := Deterministic(NewMinimal(topo))
	if det.Name() != "minimal_det" {
		t.Fatalf("name = %q", det.Name())
	}
	rng := rand.New(rand.NewSource(2))
	first := map[geom.Direction]bool{}
	for i := 0; i < 32; i++ {
		r, ok := det.Route(0, 24, rng)
		if !ok {
			t.Fatal("route must exist")
		}
		first[r[0]] = true
	}
	if len(first) != 1 {
		t.Fatalf("deterministic wrapper produced %d distinct first hops", len(first))
	}
}

func TestRootPolicyLowestID(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	u := NewUpDownRooted(topo, RootLowestID)
	if u.Root(12) != 0 {
		t.Fatalf("lowest-id root = %v, want 0", u.Root(12))
	}
	if !u.DependencyAcyclic() {
		t.Fatal("up/down must stay acyclic with any root")
	}
}
