// Package routing computes source routes over mesh-derived irregular
// topologies. It provides the three route families used in the paper's
// evaluation (Section II-D, V-B):
//
//   - Minimal: randomized shortest paths over the surviving topology with
//     no routing restrictions — deadlock-prone, used by Static Bubble and
//     by the regular VCs of the escape-VC baseline.
//   - XY: dimension-ordered routing for healthy meshes (deadlock-free on a
//     full mesh, inapplicable to irregular topologies).
//   - UpDown: Ariadne-style spanning-tree up*/down* routing — deadlock-free
//     on any connected topology, possibly non-minimal. Baseline 1, and the
//     escape-path routing of baseline 2.
package routing

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/topology"
)

// Route is the sequence of output ports a packet takes, one per hop, from
// source to destination; ejection at the destination is implicit.
type Route []geom.Direction

func (r Route) String() string {
	s := ""
	for i, d := range r {
		if i > 0 {
			s += ","
		}
		s += d.String()
	}
	return "[" + s + "]"
}

// Len returns the hop count of the route.
func (r Route) Len() int { return len(r) }

// Dest returns the node reached by following r from src.
func (r Route) Dest(t *topology.Topology, src geom.NodeID) geom.NodeID {
	cur := src
	for _, d := range r {
		cur = t.Neighbor(cur, d)
		if cur == geom.InvalidNode {
			return geom.InvalidNode
		}
	}
	return cur
}

// Validate checks that r is walkable from src to dst over alive channels
// of t, and contains no U-turns.
func (r Route) Validate(t *topology.Topology, src, dst geom.NodeID) error {
	cur := src
	prev := geom.Invalid
	for i, d := range r {
		if !d.IsLink() {
			return fmt.Errorf("routing: hop %d is %v, not a link direction", i, d)
		}
		if prev != geom.Invalid && d == prev.Opposite() {
			return fmt.Errorf("routing: U-turn at hop %d of %v", i, r)
		}
		if !t.HasLink(cur, d) {
			return fmt.Errorf("routing: hop %d uses dead channel %v→%v", i, cur, d)
		}
		cur = t.Neighbor(cur, d)
		prev = d
	}
	if cur != dst {
		return fmt.Errorf("routing: route %v from %v ends at %v, want %v", r, src, cur, dst)
	}
	return nil
}

// Algorithm produces source routes over a fixed topology. Implementations
// are safe for sequential use; route sampling may consume rng.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Route returns a route from src to dst, or ok=false if dst is
	// unreachable from src under this algorithm.
	Route(src, dst geom.NodeID, rng *rand.Rand) (Route, bool)
}

// RouteAppender is an optional extension of Algorithm for callers that
// recycle route storage: AppendRoute writes the hops onto buf (growing it
// only when cap(buf) is too small) instead of allocating a fresh slice.
// The returned route must consume the rng exactly as Route would, so that
// swapping one for the other never perturbs a seeded trajectory.
type RouteAppender interface {
	AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool)
}

// AppendRoute routes src→dst via a, appending onto buf when a supports
// RouteAppender and falling back to a.Route plus a copy otherwise. On
// ok=false buf is returned unchanged.
func AppendRoute(a Algorithm, buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if ap, ok := a.(RouteAppender); ok {
		return ap.AppendRoute(buf, src, dst, rng)
	}
	r, ok := a.Route(src, dst, rng)
	if !ok {
		return buf, false
	}
	return append(buf, r...), true
}

// Deterministic wraps an Algorithm so that route sampling ignores the
// rng: every source-destination pair always gets the same path, modeling
// table-based routing (Ariadne and its kin populate per-pair tables once
// per reconfiguration; there is no per-packet adaptivity).
func Deterministic(a Algorithm) Algorithm { return deterministic{a} }

type deterministic struct{ inner Algorithm }

func (d deterministic) Name() string { return d.inner.Name() + "_det" }

func (d deterministic) Route(src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	return d.inner.Route(src, dst, nil)
}

func (d deterministic) AppendRoute(buf Route, src, dst geom.NodeID, _ *rand.Rand) (Route, bool) {
	return AppendRoute(d.inner, buf, src, dst, nil)
}
