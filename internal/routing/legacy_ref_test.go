package routing

// Verbatim copies of the pre-compilation lazy-map routing
// implementations, kept test-local as executable references: the
// compiled flat tables must agree with them on every distance, every
// reachability verdict, and — with identical seeded rng streams — every
// sampled route. The spanning-tree construction itself did not change,
// so the up*/down* reference borrows the compiled instance's tree
// (Level/IsUp) and reimplements only the routing that was rewritten.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

// legacyMinimal is the old map-backed lazy-BFS minimal router.
type legacyMinimal struct {
	topo   *topology.Topology
	distTo map[geom.NodeID][]int
}

func newLegacyMinimal(t *topology.Topology) *legacyMinimal {
	return &legacyMinimal{topo: t, distTo: make(map[geom.NodeID][]int)}
}

func (m *legacyMinimal) dist(dst geom.NodeID) []int {
	if d, ok := m.distTo[dst]; ok {
		return d
	}
	d := m.topo.ReverseBFSDistances(dst)
	m.distTo[dst] = d
	return d
}

func (m *legacyMinimal) Reachable(src, dst geom.NodeID) bool {
	if !m.topo.RouterAlive(src) || !m.topo.RouterAlive(dst) {
		return false
	}
	return m.dist(dst)[src] >= 0
}

func (m *legacyMinimal) Distance(src, dst geom.NodeID) int {
	if !m.topo.RouterAlive(src) {
		return -1
	}
	return m.dist(dst)[src]
}

func (m *legacyMinimal) AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, m.topo.RouterAlive(src)
	}
	dist := m.dist(dst)
	if !m.topo.RouterAlive(src) || dist[src] < 0 {
		return buf, false
	}
	route := buf
	cur := src
	for cur != dst {
		var choices [geom.NumLinkDirs]geom.Direction
		n := 0
		for _, d := range geom.LinkDirs {
			if !m.topo.HasLink(cur, d) {
				continue
			}
			nb := m.topo.Neighbor(cur, d)
			if dist[nb] == dist[cur]-1 {
				choices[n] = d
				n++
			}
		}
		if n == 0 {
			return buf, false
		}
		pick := choices[0]
		if rng != nil && n > 1 {
			pick = choices[rng.Intn(n)]
		}
		route = append(route, pick)
		cur = m.topo.Neighbor(cur, pick)
	}
	return route, true
}

// legacyUpDown is the old lazy state-graph up*/down* router over the
// tree of a compiled UpDown.
type legacyUpDown struct {
	topo   *topology.Topology
	u      *UpDown
	distTo map[geom.NodeID][]int
}

func newLegacyUpDown(t *topology.Topology, u *UpDown) *legacyUpDown {
	return &legacyUpDown{topo: t, u: u, distTo: make(map[geom.NodeID][]int)}
}

func (l *legacyUpDown) dist(dst geom.NodeID) []int {
	if d, ok := l.distTo[dst]; ok {
		return d
	}
	n := l.topo.NumNodes()
	dist := make([]int, 2*n)
	for i := range dist {
		dist[i] = -1
	}
	if l.u.Level(dst) >= 0 {
		type state struct {
			node  geom.NodeID
			phase int
		}
		dist[2*int(dst)+phaseUp] = 0
		dist[2*int(dst)+phaseDown] = 0
		queue := []state{{dst, phaseUp}, {dst, phaseDown}}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			sd := dist[2*int(s.node)+s.phase]
			for _, d := range geom.LinkDirs {
				v := l.topo.Neighbor(s.node, d)
				if v == geom.InvalidNode || !l.topo.HasLink(v, d.Opposite()) {
					continue
				}
				if l.u.Level(v) < 0 {
					continue
				}
				chanUp := l.u.IsUp(v, d.Opposite())
				var preds []int
				if chanUp {
					if s.phase == phaseUp {
						preds = []int{phaseUp}
					}
				} else {
					if s.phase == phaseDown {
						preds = []int{phaseUp, phaseDown}
					}
				}
				for _, pv := range preds {
					idx := 2*int(v) + pv
					if dist[idx] < 0 {
						dist[idx] = sd + 1
						queue = append(queue, state{v, pv})
					}
				}
			}
		}
	}
	l.distTo[dst] = dist
	return dist
}

func (l *legacyUpDown) Distance(src, dst geom.NodeID) int {
	if l.u.Level(src) < 0 || l.u.Level(dst) < 0 {
		return -1
	}
	return l.dist(dst)[2*int(src)+phaseUp]
}

func (l *legacyUpDown) AppendRoute(buf Route, src, dst geom.NodeID, rng *rand.Rand) (Route, bool) {
	if src == dst {
		return buf, l.u.Level(src) >= 0
	}
	dist := l.dist(dst)
	if l.u.Level(src) < 0 || dist[2*int(src)+phaseUp] < 0 {
		return buf, false
	}
	route := buf
	cur, phase := src, phaseUp
	for cur != dst {
		curD := dist[2*int(cur)+phase]
		var dirs [geom.NumLinkDirs]geom.Direction
		var phases [geom.NumLinkDirs]int
		n := 0
		for _, d := range geom.LinkDirs {
			if !l.topo.HasLink(cur, d) {
				continue
			}
			nb := l.topo.Neighbor(cur, d)
			chanUp := l.u.IsUp(cur, d)
			if chanUp && phase != phaseUp {
				continue
			}
			nextPhase := phaseDown
			if chanUp {
				nextPhase = phaseUp
			}
			if dist[2*int(nb)+nextPhase] == curD-1 {
				dirs[n], phases[n] = d, nextPhase
				n++
			}
		}
		if n == 0 {
			return buf, false
		}
		pick := 0
		if rng != nil && n > 1 {
			pick = rng.Intn(n)
		}
		route = append(route, dirs[pick])
		cur = l.topo.Neighbor(cur, dirs[pick])
		phase = phases[pick]
	}
	return route, true
}

// equivalenceTopologies samples the topology shapes the equivalence
// tests sweep: a healthy mesh, link-faulted and router-faulted
// irregulars, and a heavily broken one with disconnected components.
func equivalenceTopologies() map[string]*topology.Topology {
	return map[string]*topology.Topology{
		"mesh6x6":         topology.NewMesh(6, 6),
		"links8x8f18":     topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42),
		"routers8x8f10":   topology.RandomIrregular(8, 8, topology.RouterFaults, 10, 7),
		"shattered6x6f30": topology.RandomIrregular(6, 6, topology.LinkFaults, 30, 3),
		"links10x10f30f2": topology.RandomIrregular(10, 10, topology.LinkFaults, 30, 2),
	}
}

// TestMinimalMatchesLegacy checks the compiled minimal router against
// the lazy-map reference on every (src, dst) pair: distances,
// reachability, and routes drawn with identical rng streams.
func TestMinimalMatchesLegacy(t *testing.T) {
	for name, topo := range equivalenceTopologies() {
		t.Run(name, func(t *testing.T) {
			compiled := NewMinimal(topo)
			legacy := newLegacyMinimal(topo)
			n := topo.NumNodes()
			rngC := rand.New(rand.NewSource(1234))
			rngL := rand.New(rand.NewSource(1234))
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					src, dst := geom.NodeID(s), geom.NodeID(d)
					if got, want := compiled.Distance(src, dst), legacy.Distance(src, dst); got != want {
						t.Fatalf("Distance(%v,%v): compiled %d, legacy %d", src, dst, got, want)
					}
					if got, want := compiled.Reachable(src, dst), legacy.Reachable(src, dst); got != want {
						t.Fatalf("Reachable(%v,%v): compiled %v, legacy %v", src, dst, got, want)
					}
					rc, okc := compiled.AppendRoute(nil, src, dst, rngC)
					rl, okl := legacy.AppendRoute(nil, src, dst, rngL)
					if okc != okl {
						t.Fatalf("Route(%v,%v): compiled ok=%v, legacy ok=%v", src, dst, okc, okl)
					}
					if !routesEqual(rc, rl) {
						t.Fatalf("Route(%v,%v): compiled %v, legacy %v", src, dst, rc, rl)
					}
					// Nil-rng routes must be deterministic and equal too.
					rc, _ = compiled.AppendRoute(nil, src, dst, nil)
					rl, _ = legacy.AppendRoute(nil, src, dst, nil)
					if !routesEqual(rc, rl) {
						t.Fatalf("nil-rng Route(%v,%v): compiled %v, legacy %v", src, dst, rc, rl)
					}
				}
			}
		})
	}
}

// TestUpDownMatchesLegacy is the up*/down* counterpart, for both root
// policies; it additionally checks every compiled route is legal (never
// an up channel after a down channel) and exactly Distance hops long.
func TestUpDownMatchesLegacy(t *testing.T) {
	for name, topo := range equivalenceTopologies() {
		for _, policy := range []RootPolicy{RootMedian, RootLowestID} {
			t.Run(name+"/"+policy.String(), func(t *testing.T) {
				compiled := NewUpDownRooted(topo, policy)
				legacy := newLegacyUpDown(topo, compiled)
				n := topo.NumNodes()
				rngC := rand.New(rand.NewSource(99))
				rngL := rand.New(rand.NewSource(99))
				for s := 0; s < n; s++ {
					for d := 0; d < n; d++ {
						src, dst := geom.NodeID(s), geom.NodeID(d)
						if got, want := compiled.Distance(src, dst), legacy.Distance(src, dst); got != want {
							t.Fatalf("Distance(%v,%v): compiled %d, legacy %d", src, dst, got, want)
						}
						rc, okc := compiled.AppendRoute(nil, src, dst, rngC)
						rl, okl := legacy.AppendRoute(nil, src, dst, rngL)
						if okc != okl {
							t.Fatalf("Route(%v,%v): compiled ok=%v, legacy ok=%v", src, dst, okc, okl)
						}
						if !routesEqual(rc, rl) {
							t.Fatalf("Route(%v,%v): compiled %v, legacy %v", src, dst, rc, rl)
						}
						if okc && src != dst {
							if got, want := len(rc), compiled.Distance(src, dst); got != want {
								t.Fatalf("Route(%v,%v): %d hops, Distance %d", src, dst, got, want)
							}
							checkUpDownLegalRef(t, topo, compiled, src, rc)
						}
					}
				}
			})
		}
	}
}

// checkUpDownLegal walks route r from src verifying every hop uses a
// usable channel and no up channel follows a down channel.
func checkUpDownLegalRef(t *testing.T, topo *topology.Topology, u *UpDown, src geom.NodeID, r Route) {
	t.Helper()
	cur, wentDown := src, false
	for i, d := range r {
		if !topo.HasLink(cur, d) {
			t.Fatalf("route hop %d from %v: dead channel %v at %v", i, src, d, cur)
		}
		up := u.IsUp(cur, d)
		if wentDown && up {
			t.Fatalf("route hop %d from %v: up channel %v at %v after a down hop", i, src, d, cur)
		}
		if !up {
			wentDown = true
		}
		cur = topo.Neighbor(cur, d)
	}
}

func routesEqual(a, b Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOneShotMatchesCompiled checks AppendRouteOneShot draws the exact
// same routes as a compiled Minimal given identical rng streams — the
// property reconfig's pending-gate detour path relies on.
func TestOneShotMatchesCompiled(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 18, 42)
	compiled := NewMinimal(topo)
	n := topo.NumNodes()
	rngC := rand.New(rand.NewSource(5))
	rngO := rand.New(rand.NewSource(5))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			src, dst := geom.NodeID(s), geom.NodeID(d)
			rc, okc := compiled.AppendRoute(nil, src, dst, rngC)
			ro, oko := AppendRouteOneShot(topo, nil, src, dst, rngO)
			if okc != oko || !routesEqual(rc, ro) {
				t.Fatalf("(%v,%v): compiled %v/%v, one-shot %v/%v", src, dst, rc, okc, ro, oko)
			}
		}
	}
}
