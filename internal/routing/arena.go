package routing

import "repro/internal/geom"

// Arena is a recycling allocator for Route hop storage. Spans are carved
// out of large backing blocks in power-of-two size classes and returned
// to a per-class free list, so a simulator that keeps routing packets in
// steady state stops allocating entirely: every Get after warm-up is
// served from the free list, and every block stays reachable for the
// arena's whole lifetime (spans handed out never dangle).
//
// An Arena is single-owner and not safe for concurrent use. The sharded
// simulator core satisfies this because packets are created during
// injection and released during commit, both of which run on the
// sequential section of the cycle.
type Arena struct {
	// block is the current carving block; spans are cut at block[used:].
	// Blocks are never reallocated or reused for anything else — a full
	// block is abandoned to the spans already carved from it.
	block []geom.Direction
	used  int
	// free[c] holds returned spans of capacity exactly classCap(c),
	// resliced to length zero.
	free  [arenaNumClasses][]Route
	stats ArenaStats
}

// ArenaStats counts arena traffic for the allocation-observability
// harness (Sim.PoolStats, BENCH_sim.json).
type ArenaStats struct {
	// Gets is the total number of spans handed out.
	Gets int64
	// Reuses is how many of those came from a free list (the remainder
	// were carved fresh; Gets == Reuses in a zero-allocation steady
	// state, except for oversized routes, which are plain allocations).
	Reuses int64
	// Puts is the number of spans returned.
	Puts int64
	// Blocks is the number of backing blocks allocated.
	Blocks int64
	// BlockBytes is the total backing storage, in bytes.
	BlockBytes int64
	// Oversize counts Gets beyond the largest size class, served by a
	// plain make and never recycled.
	Oversize int64
}

const (
	// arenaMinCap is the smallest span capacity handed out; tiny routes
	// share the class to keep free lists dense.
	arenaMinCap = 4
	// arenaNumClasses covers capacities 4, 8, ..., 4096. Routes longer
	// than 4096 hops (impossible on supported topologies) fall back to
	// the plain allocator.
	arenaNumClasses = 11
	// arenaBlockLen is the carving-block length; at least one maximal
	// class span fits per block.
	arenaBlockLen = 4096
)

// classFor returns the smallest size class holding n, or -1 if n exceeds
// the largest class.
func classFor(n int) int {
	c, size := 0, arenaMinCap
	for size < n {
		c++
		size <<= 1
		if c >= arenaNumClasses {
			return -1
		}
	}
	return c
}

func classCap(c int) int { return arenaMinCap << c }

// Get returns a length-zero span with capacity ≥ n, recycling a returned
// span when one is available. Spans of more than the largest class are
// plain allocations (counted, never recycled).
func (a *Arena) Get(n int) Route {
	a.stats.Gets++
	c := classFor(n)
	if c < 0 {
		a.stats.Oversize++
		return make(Route, 0, n)
	}
	if l := a.free[c]; len(l) > 0 {
		span := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[c] = l[:len(l)-1]
		a.stats.Reuses++
		return span
	}
	size := classCap(c)
	if a.used+size > len(a.block) {
		a.block = make([]geom.Direction, arenaBlockLen)
		a.used = 0
		a.stats.Blocks++
		a.stats.BlockBytes += int64(arenaBlockLen) * int64(sizeofDirection)
	}
	// Three-index slice: the span's capacity ends at its own boundary, so
	// an append beyond it can never scribble on a neighboring span.
	span := a.block[a.used : a.used : a.used+size]
	a.used += size
	return span
}

const sizeofDirection = 1 // geom.Direction is an int8

// Put returns a span obtained from Get to its free list. Passing a slice
// the arena did not hand out is safe only if its capacity matches a size
// class; anything smaller than the minimum class is silently dropped.
// The caller must not retain any alias of r after Put.
func (a *Arena) Put(r Route) {
	if cap(r) < arenaMinCap {
		return
	}
	// Find the largest class that fits entirely within cap(r). Arena
	// spans have exact class capacities, so this recovers their class.
	c := 0
	for c+1 < arenaNumClasses && classCap(c+1) <= cap(r) {
		c++
	}
	if classCap(c) > cap(r) {
		return
	}
	a.stats.Puts++
	a.free[c] = append(a.free[c], r[:0])
}

// Copy returns an arena span holding a copy of r.
func (a *Arena) Copy(r Route) Route {
	span := a.Get(len(r))[:len(r)]
	copy(span, r)
	return span
}

// Stats returns a snapshot of the arena counters.
func (a *Arena) Stats() ArenaStats { return a.stats }
