package routing

// Compiled routing instances are immutable after construction, so one
// instance may serve every sweep worker and the sharded core's parallel
// injection phase concurrently. These tests drive shared instances from
// many goroutines; run under -race (CI's race tier does) they prove the
// lazy-map data race the compilation removed stays gone.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/topology"
)

func TestMinimalConcurrentUse(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 15, 11)
	m := NewMinimal(topo)
	n := topo.NumNodes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf Route
			for i := 0; i < 2000; i++ {
				src := geom.NodeID(rng.Intn(n))
				dst := geom.NodeID(rng.Intn(n))
				m.Distance(src, dst)
				m.Reachable(src, dst)
				m.NextHopMask(src, dst)
				buf, _ = m.AppendRoute(buf[:0], src, dst, rng)
				if _, ok := m.Route(src, dst, rng); ok && !m.Reachable(src, dst) {
					t.Error("route succeeded for unreachable pair")
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func TestUpDownConcurrentUse(t *testing.T) {
	topo := topology.RandomIrregular(8, 8, topology.LinkFaults, 15, 11)
	u := NewUpDown(topo)
	n := topo.NumNodes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf Route
			for i := 0; i < 2000; i++ {
				src := geom.NodeID(rng.Intn(n))
				dst := geom.NodeID(rng.Intn(n))
				u.Distance(src, dst)
				u.TreeNextHop(src, dst)
				buf, _ = u.AppendRoute(buf[:0], src, dst, rng)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
