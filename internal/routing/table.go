package routing

import (
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/topology"
)

// This file is the topology compilation layer: it lowers a (topology,
// algorithm) pair into flat arrays so the per-packet hot path never
// walks the graph. For every destination the compiler stores
//
//   - a dense int16 distance row (replacing the lazy map[NodeID][]int
//     caches the BFS implementations used to grow at route time), and
//   - one packed next-hop candidate byte per (node, dst): bit i set
//     means geom.LinkDirs[i] is a legal minimal next hop. AppendRoute
//     then reduces to two array loads plus a popcount-indexed pick per
//     hop, with rng draw semantics identical to the graph walk it
//     replaced (one Intn(candidates) draw iff candidates > 1).
//
// Tables are stored as per-destination column pages rather than one
// n×n slab so an incremental recompile (incremental.go) can share the
// columns an epoch did not perturb pointer-identically with the
// previous epoch's table. A cold compile still allocates each array as
// one contiguous block sliced per column, so the cache behavior of the
// hot path is unchanged.
//
// Compiled tables are immutable after construction, which is what makes
// one instance shareable across the sweep engine's workers, the sharded
// core's parallel injection phase (see race_test.go), and — new with
// column sharing — across the epochs of a churn run; the lazy maps they
// replace mutated under Route and were unsafe to share.

// minCol is one destination's column of the compiled minimal tables.
// Copying the struct aliases the backing arrays: column sharing between
// epochs is exactly assigning a minCol value.
type minCol struct {
	dist []int16 // [node]: directed-hop distance node→dst, -1 unreachable
	mask []uint8 // [node]: bit d set iff d is a minimal next hop toward dst
}

// minTables is the compiled form of minimal routing: all-pairs
// distances and per-(node,dst) candidate masks over a FlatGraph, one
// column page per destination.
type minTables struct {
	n    int
	cols []minCol // [dst]
}

// newMinTables allocates a table with every column backed by one
// contiguous block (the cold-compile layout).
func newMinTables(n int) *minTables {
	dist := make([]int16, n*n)
	mask := make([]uint8, n*n)
	t := &minTables{n: n, cols: make([]minCol, n)}
	for d := 0; d < n; d++ {
		t.cols[d] = minCol{
			dist: dist[d*n : (d+1)*n : (d+1)*n],
			mask: mask[d*n : (d+1)*n : (d+1)*n],
		}
	}
	return t
}

// bytes returns the heap footprint of the table arrays. Shared columns
// are counted once per table that references them, so this is an upper
// bound under incremental column sharing.
func (t *minTables) bytes() int64 {
	var b int64
	for i := range t.cols {
		b += 2*int64(len(t.cols[i].dist)) + int64(len(t.cols[i].mask))
	}
	return b
}

// compileParallelThreshold is the node count below which a cold compile
// runs sequentially: a full 16x16 compile is a few hundred microseconds,
// cheaper than fanning out goroutines.
const compileParallelThreshold = 256

// maxCompileWorkers bounds the cold-compile worker pool (the sweep
// engine's bounded-worker idiom): table compilation is memory-bound, so
// more than a few workers just thrash shared cache.
const maxCompileWorkers = 8

// compileWorkers picks the worker count for an n-destination compile.
func compileWorkers(n int) int {
	if n < compileParallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxCompileWorkers {
		w = maxCompileWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// compileMinimal builds the minimal-routing tables for every destination
// of g: one reverse BFS per destination (O(N) each over the flat
// arrays), then a candidate-mask fill. Large graphs fan destinations
// across a bounded worker pool; every column is computed independently
// and workers write disjoint columns, so the output is byte-identical
// to the sequential compile at any worker count.
func compileMinimal(g *topology.FlatGraph) *minTables {
	return compileMinimalWorkers(g, compileWorkers(g.N))
}

// compileMinimalWorkers is compileMinimal at an explicit worker count
// (exercised directly by the determinism tests).
func compileMinimalWorkers(g *topology.FlatGraph, workers int) *minTables {
	n := g.N
	t := newMinTables(n)
	if workers <= 1 {
		queue := make([]int32, 0, n)
		for dst := 0; dst < n; dst++ {
			queue = compileMinColumn(g, dst, t.cols[dst], queue)
		}
		return t
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queue := make([]int32, 0, n)
			for dst := w; dst < n; dst += workers {
				queue = compileMinColumn(g, dst, t.cols[dst], queue)
			}
		}(w)
	}
	wg.Wait()
	return t
}

// compileMinColumn fills one destination's column: reverse BFS for the
// distance row, then the candidate-mask fill. queue is caller-provided
// scratch (returned so capacity growth is kept).
func compileMinColumn(g *topology.FlatGraph, dst int, col minCol, queue []int32) []int32 {
	row := col.dist
	for i := range row {
		row[i] = -1
	}
	for i := range col.mask {
		col.mask[i] = 0
	}
	if !g.Alive[dst] {
		return queue
	}
	row[dst] = 0
	queue = append(queue[:0], int32(dst))
	for head := 0; head < len(queue); head++ {
		cur := int(queue[head])
		// Predecessors of cur: nodes p with a usable channel p→cur.
		for d := 0; d < geom.NumLinkDirs; d++ {
			p := g.Adj[geom.NumLinkDirs*cur+d]
			if p < 0 || g.Next[geom.NumLinkDirs*int(p)+int(geom.Direction(d).Opposite())] != int32(cur) {
				continue
			}
			if row[p] < 0 {
				row[p] = row[cur] + 1
				queue = append(queue, p)
			}
		}
	}
	// Candidate masks: every usable outgoing channel that decreases
	// the distance by exactly one.
	for v := 0; v < len(row); v++ {
		if row[v] <= 0 {
			continue
		}
		var m uint8
		for d := 0; d < geom.NumLinkDirs; d++ {
			nb := g.Next[geom.NumLinkDirs*v+d]
			if nb >= 0 && row[nb] == row[v]-1 {
				m |= 1 << uint(d)
			}
		}
		col.mask[v] = m
	}
	return queue
}

const (
	phaseUp   = 0 // may still take up channels
	phaseDown = 1 // committed to down channels only
)

// udCol is one destination's column of the compiled up*/down* tables.
type udCol struct {
	dist []int16 // [2*node + phase]: state-graph distance, -1 unreachable
	mask []uint8 // [node]: low nibble = phaseUp, high nibble = phaseDown
}

// udTables is the compiled form of up*/down* routing: distances on the
// (node, phase) state graph and per-(node,dst) candidate masks with the
// two phases packed into one byte (low nibble = phaseUp candidates,
// high nibble = phaseDown candidates), one column page per destination.
type udTables struct {
	n    int
	cols []udCol // [dst]
}

func newUDTables(n int) *udTables {
	dist := make([]int16, 2*n*n)
	mask := make([]uint8, n*n)
	t := &udTables{n: n, cols: make([]udCol, n)}
	for d := 0; d < n; d++ {
		t.cols[d] = udCol{
			dist: dist[2*d*n : 2*(d+1)*n : 2*(d+1)*n],
			mask: mask[d*n : (d+1)*n : (d+1)*n],
		}
	}
	return t
}

func (t *udTables) bytes() int64 {
	var b int64
	for i := range t.cols {
		b += 2*int64(len(t.cols[i].dist)) + int64(len(t.cols[i].mask))
	}
	return b
}

// compileUpDown builds the up*/down* tables. level is the BFS-tree
// level array (-1 dead/unrouted) and upMask[v] has bit d set iff the
// channel v→d is an "up" channel; both come from the spanning-tree
// construction in updown.go. Parallelized over destinations exactly
// like compileMinimal, with the same byte-identical guarantee.
func compileUpDown(g *topology.FlatGraph, level []int, upMask []uint8) *udTables {
	return compileUpDownWorkers(g, level, upMask, compileWorkers(g.N))
}

func compileUpDownWorkers(g *topology.FlatGraph, level []int, upMask []uint8, workers int) *udTables {
	n := g.N
	t := newUDTables(n)
	if workers <= 1 {
		queue := make([]int32, 0, 2*n)
		for dst := 0; dst < n; dst++ {
			queue = compileUDColumn(g, level, upMask, dst, t.cols[dst], queue)
		}
		return t
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queue := make([]int32, 0, 2*n)
			for dst := w; dst < n; dst += workers {
				queue = compileUDColumn(g, level, upMask, dst, t.cols[dst], queue)
			}
		}(w)
	}
	wg.Wait()
	return t
}

// compileUDColumn fills one destination's up*/down* column: BFS over
// (node, phase) states walking legal transitions backward, then the
// per-phase candidate-mask fill. queue is caller-provided scratch.
func compileUDColumn(g *topology.FlatGraph, level []int, upMask []uint8, dst int, col udCol, queue []int32) []int32 {
	row := col.dist
	for i := range row {
		row[i] = -1
	}
	for i := range col.mask {
		col.mask[i] = 0
	}
	if level[dst] < 0 {
		return queue
	}
	// BFS over (node, phase) states, walking legal transitions
	// backward: an up channel keeps phaseUp and requires phaseUp
	// before it; a down channel lands in phaseDown from either phase.
	row[2*dst+phaseUp] = 0
	row[2*dst+phaseDown] = 0
	queue = append(queue[:0], int32(2*dst+phaseUp), int32(2*dst+phaseDown))
	for head := 0; head < len(queue); head++ {
		st := int(queue[head])
		node, phase := st>>1, st&1
		sd := row[st]
		for d := 0; d < geom.NumLinkDirs; d++ {
			v := g.Adj[geom.NumLinkDirs*node+d]
			if v < 0 || g.Next[geom.NumLinkDirs*int(v)+int(geom.Direction(d).Opposite())] != int32(node) {
				continue
			}
			if level[v] < 0 {
				continue
			}
			chanUp := upMask[v]&(1<<uint(geom.Direction(d).Opposite())) != 0 // channel v→node
			var lo, hi int
			switch {
			case chanUp && phase == phaseUp:
				lo, hi = phaseUp, phaseUp
			case !chanUp && phase == phaseDown:
				lo, hi = phaseUp, phaseDown
			default:
				continue
			}
			for pv := lo; pv <= hi; pv++ {
				idx := 2*int(v) + pv
				if row[idx] < 0 {
					row[idx] = sd + 1
					queue = append(queue, int32(idx))
				}
			}
		}
	}
	// Candidate masks per phase.
	n := len(col.mask)
	for v := 0; v < n; v++ {
		if level[v] < 0 {
			continue
		}
		var m uint8
		curUp, curDown := row[2*v+phaseUp], row[2*v+phaseDown]
		for d := 0; d < geom.NumLinkDirs; d++ {
			nb := g.Next[geom.NumLinkDirs*v+d]
			if nb < 0 {
				continue
			}
			chanUp := upMask[v]&(1<<uint(d)) != 0
			next := phaseDown
			if chanUp {
				next = phaseUp
			}
			nd := row[2*int(nb)+next]
			if curUp > 0 && nd == curUp-1 {
				m |= 1 << uint(d)
			}
			// phaseDown may only continue on down channels.
			if !chanUp && curDown > 0 && nd == curDown-1 {
				m |= 1 << (4 + uint(d))
			}
		}
		col.mask[v] = m
	}
	return queue
}

// pickDir returns the k-th set direction of candidate mask m (bit i is
// geom.LinkDirs[i], so candidates enumerate in N,E,S,W order exactly as
// the graph walk did), drawing k from rng iff more than one candidate
// exists — the rng contract every seeded trajectory depends on.
func pickDir(m uint8, rng *rand.Rand) geom.Direction {
	cnt := bits.OnesCount8(uint8(m))
	k := 0
	if rng != nil && cnt > 1 {
		k = rng.Intn(cnt)
	}
	for i := 0; i < geom.NumLinkDirs; i++ {
		if m&(1<<uint(i)) != 0 {
			if k == 0 {
				return geom.Direction(i)
			}
			k--
		}
	}
	return geom.Invalid
}
